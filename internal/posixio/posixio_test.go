package posixio

import (
	"bytes"
	"testing"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/vfs"
)

func setup(t *testing.T, opts Options) (*FS, *core.Tracker, *vfs.View) {
	t.Helper()
	view := vfs.NewStore().NewView()
	tr := core.NewTracker(core.DefaultConfig(), nil, 0)
	user := tr.RegisterUser("alice")
	prog := tr.RegisterProgram("topreco.py", user)
	w := Wrap(view, tr, Agent{User: user, Program: prog}, opts)
	return w, tr, view
}

func countIO(tr *core.Tracker, class model.Class) int {
	return len(tr.Graph().Find(nil, rdf.IRI(rdf.RDFType).Ptr(), class.IRI().Ptr()))
}

func TestWrapperTracksCreateVsOpen(t *testing.T) {
	w, tr, _ := setup(t, DefaultOptions())
	f, err := w.Create("/f.dat")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got := countIO(tr, model.Create); got != 1 {
		t.Errorf("Create activities = %d, want 1", got)
	}
	f2, err := w.Open("/f.dat")
	if err != nil {
		t.Fatal(err)
	}
	f2.Close()
	if got := countIO(tr, model.Open); got != 1 {
		t.Errorf("Open activities = %d, want 1", got)
	}
	// Re-creating an existing file counts as Open (O_CREAT on existing).
	f3, _ := w.OpenFile("/f.dat", vfs.O_RDWR|vfs.O_CREATE)
	f3.Close()
	if got := countIO(tr, model.Open); got != 2 {
		t.Errorf("Open activities after O_CREAT-on-existing = %d, want 2", got)
	}
}

func TestWrapperTracksReadWriteFsync(t *testing.T) {
	w, tr, _ := setup(t, DefaultOptions())
	f, _ := w.Create("/f.dat")
	f.Write([]byte("hello"))
	f.WriteAt([]byte("x"), 0)
	f.Sync()
	f.Close()

	f2, _ := w.Open("/f.dat")
	buf := make([]byte, 5)
	f2.Read(buf)
	f2.ReadAt(buf, 0)
	f2.Close()

	if got := countIO(tr, model.Write); got != 2 {
		t.Errorf("Write activities = %d, want 2", got)
	}
	if got := countIO(tr, model.Read); got != 2 {
		t.Errorf("Read activities = %d, want 2", got)
	}
	if got := countIO(tr, model.Fsync); got != 1 {
		t.Errorf("Fsync activities = %d, want 1", got)
	}
	// The file entity carries the relation edges.
	fileNode := rdf.IRI(model.NodeIRI(model.File, "/f.dat"))
	g := tr.Graph()
	if n := len(g.Find(fileNode.Ptr(), model.WasWrittenBy.IRI().Ptr(), nil)); n != 2 {
		t.Errorf("wasWrittenBy = %d", n)
	}
	if n := len(g.Find(fileNode.Ptr(), model.WasFlushedBy.IRI().Ptr(), nil)); n != 1 {
		t.Errorf("wasFlushedBy = %d", n)
	}
}

func TestWrapperRename(t *testing.T) {
	w, tr, view := setup(t, DefaultOptions())
	w.WriteFile("/old.tdms", []byte("data"))
	if err := w.Rename("/old.tdms", "/new.tdms"); err != nil {
		t.Fatal(err)
	}
	if !view.Exists("/new.tdms") || view.Exists("/old.tdms") {
		t.Error("rename not forwarded")
	}
	if got := countIO(tr, model.Rename); got != 1 {
		t.Errorf("Rename activities = %d, want 1", got)
	}
	newNode := rdf.IRI(model.NodeIRI(model.File, "/new.tdms"))
	oldNode := rdf.IRI(model.NodeIRI(model.File, "/old.tdms"))
	g := tr.Graph()
	if !g.Has(rdf.Triple{S: newNode, P: model.WasDerivedFrom.IRI(), O: oldNode}) {
		t.Error("rename derivation edge missing")
	}
	if n := len(g.Find(newNode.Ptr(), model.WasModifiedBy.IRI().Ptr(), nil)); n != 1 {
		t.Errorf("wasModifiedBy = %d", n)
	}
}

func TestWrapperDirectoryAndLinks(t *testing.T) {
	w, tr, view := setup(t, DefaultOptions())
	if err := w.MkdirAll("/data/raw"); err != nil {
		t.Fatal(err)
	}
	w.WriteFile("/data/raw/f", []byte("x"))
	if err := w.Symlink("/data/raw/f", "/data/latest"); err != nil {
		t.Fatal(err)
	}
	if err := w.Link("/data/raw/f", "/data/hard"); err != nil {
		t.Fatal(err)
	}
	if !view.Exists("/data/latest") || !view.Exists("/data/hard") {
		t.Error("links not forwarded")
	}
	g := tr.Graph()
	if n := len(g.Find(nil, rdf.IRI(rdf.RDFType).Ptr(), model.Directory.IRI().Ptr())); n != 1 {
		t.Errorf("Directory entities = %d, want 1", n)
	}
	if n := len(g.Find(nil, rdf.IRI(rdf.RDFType).Ptr(), model.Link.IRI().Ptr())); n != 2 {
		t.Errorf("Link entities = %d, want 2", n)
	}
}

func TestWrapperXattrs(t *testing.T) {
	w, tr, _ := setup(t, DefaultOptions())
	w.WriteFile("/f", nil)
	if err := w.Setxattr("/f", "user.origin", []byte("sensor")); err != nil {
		t.Fatal(err)
	}
	val, err := w.Getxattr("/f", "user.origin")
	if err != nil || string(val) != "sensor" {
		t.Fatalf("Getxattr = %q, %v", val, err)
	}
	attrNode := rdf.IRI(model.NodeIRI(model.Attribute, "/f/.xattrs/user.origin"))
	g := tr.Graph()
	if n := len(g.Find(attrNode.Ptr(), model.WasWrittenBy.IRI().Ptr(), nil)); n != 1 {
		t.Errorf("xattr wasWrittenBy = %d", n)
	}
	if n := len(g.Find(attrNode.Ptr(), model.WasReadBy.IRI().Ptr(), nil)); n != 1 {
		t.Errorf("xattr wasReadBy = %d", n)
	}
	// Attribute contained in file.
	fileNode := rdf.IRI(model.NodeIRI(model.File, "/f"))
	if !g.Has(rdf.Triple{S: attrNode, P: model.WasDerivedFrom.IRI(), O: fileNode}) {
		t.Error("xattr containment edge missing")
	}
	names, err := w.Listxattr("/f")
	if err != nil || len(names) != 1 {
		t.Errorf("Listxattr = %v, %v", names, err)
	}
}

func TestWrapperReadWriteFileHelpers(t *testing.T) {
	w, _, _ := setup(t, DefaultOptions())
	payload := bytes.Repeat([]byte("abc"), 50000) // bigger than one read buffer
	if err := w.WriteFile("/big", payload); err != nil {
		t.Fatal(err)
	}
	got, err := w.ReadFile("/big")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("ReadFile: %d bytes, %v", len(got), err)
	}
}

func TestWrapperDisabled(t *testing.T) {
	w, tr, view := setup(t, Options{Disabled: true})
	agentTriples := tr.Graph().Len() // user+program registration from setup
	f, _ := w.Create("/f")
	f.Write([]byte("x"))
	f.Sync()
	f.Close()
	w.Mkdir("/d")
	w.Rename("/f", "/g")
	if n := tr.Graph().Len(); n != agentTriples {
		t.Errorf("disabled wrapper still tracked: %d triples (agents alone are %d)", n, agentTriples)
	}
	if !view.Exists("/g") || !view.Exists("/d") {
		t.Error("disabled wrapper did not forward operations")
	}
}

func TestWrapperDataTrackingOff(t *testing.T) {
	w, tr, _ := setup(t, Options{TrackData: false})
	f, _ := w.Create("/f")
	f.Write([]byte("hello"))
	f.Close()
	f2, _ := w.Open("/f")
	f2.Read(make([]byte, 5))
	f2.Close()
	if got := countIO(tr, model.Write); got != 0 {
		t.Errorf("Write tracked despite TrackData=false: %d", got)
	}
	// Metadata ops still tracked.
	if got := countIO(tr, model.Create); got != 1 {
		t.Errorf("Create activities = %d, want 1", got)
	}
}

func TestOptionsFromEnv(t *testing.T) {
	env := map[string]string{"PROVIO_POSIX": "off"}
	lookup := func(k string) (string, bool) { v, ok := env[k]; return v, ok }
	if opts := OptionsFromEnv(lookup); !opts.Disabled {
		t.Error("PROVIO_POSIX=off not honored")
	}
	env = map[string]string{"PROVIO_POSIX_DATA": "false"}
	if opts := OptionsFromEnv(lookup); opts.TrackData {
		t.Error("PROVIO_POSIX_DATA=false not honored")
	}
	env = map[string]string{}
	opts := OptionsFromEnv(lookup)
	if opts.Disabled || !opts.TrackData {
		t.Errorf("default env opts = %+v", opts)
	}
}

func TestWrapperErrorsNotTracked(t *testing.T) {
	w, tr, _ := setup(t, DefaultOptions())
	before := tr.Graph().Len()
	if _, err := w.Open("/missing"); err == nil {
		t.Fatal("expected error")
	}
	if err := w.Rename("/missing", "/x"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := w.Getxattr("/missing", "a"); err == nil {
		t.Fatal("expected error")
	}
	if tr.Graph().Len() != before {
		t.Error("failed operations added provenance")
	}
}

func TestWrapperTransparencyBytes(t *testing.T) {
	// Same writes through wrapped and raw views produce identical bytes.
	raw := vfs.NewStore().NewView()
	raw.WriteFile("/f", []byte("payload"))

	w, _, view := setup(t, DefaultOptions())
	w.WriteFile("/f", []byte("payload"))

	a, _ := raw.ReadFile("/f")
	b, _ := view.ReadFile("/f")
	if !bytes.Equal(a, b) {
		t.Error("wrapper altered file contents")
	}
}
