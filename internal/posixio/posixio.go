// Package posixio implements the PROV-IO Syscall Wrapper: the GOTCHA-style
// interposition layer that monitors POSIX I/O (paper §5). Wrap splices a
// provenance-collecting shim in front of a vfs view; every operation is
// forwarded unchanged — the wrapper never alters I/O semantics — while the
// PROV-IO Library is invoked with the corresponding Activity and Data Object
// records. Like the original wrapper, it is configurable: construction reads
// environment-style options that can disable interposition entirely.
package posixio

import (
	"errors"
	"io"
	"time"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// Agent identifies who performs the wrapped I/O.
type Agent struct {
	User    rdf.Term
	Program rdf.Term
	Thread  rdf.Term
}

// agent returns the most specific agent node.
func (a Agent) agent() rdf.Term {
	switch {
	case !a.Thread.IsZero():
		return a.Thread
	case !a.Program.IsZero():
		return a.Program
	default:
		return a.User
	}
}

// Options configure the wrapper, mirroring the environment variables the C
// prototype reads.
type Options struct {
	// Disabled turns the wrapper into a pure passthrough (PROVIO_POSIX=off).
	Disabled bool
	// TrackData controls whether individual read/write calls are tracked;
	// metadata operations (open, rename, fsync, ...) are always tracked
	// when enabled (PROVIO_POSIX_DATA=off disables the hot path).
	TrackData bool
}

// DefaultOptions tracks everything.
func DefaultOptions() Options { return Options{TrackData: true} }

// OptionsFromEnv builds Options from a lookup function (pass os.LookupEnv in
// real deployments; tests pass a map lookup).
func OptionsFromEnv(lookup func(string) (string, bool)) Options {
	opts := DefaultOptions()
	if v, ok := lookup("PROVIO_POSIX"); ok && (v == "off" || v == "0" || v == "false") {
		opts.Disabled = true
	}
	if v, ok := lookup("PROVIO_POSIX_DATA"); ok && (v == "off" || v == "0" || v == "false") {
		opts.TrackData = false
	}
	return opts
}

// FS is the wrapped filesystem handle.
type FS struct {
	view    *vfs.View
	tracker *core.Tracker
	agent   Agent
	opts    Options
}

// Wrap splices the PROV-IO syscall wrapper in front of view.
func Wrap(view *vfs.View, tracker *core.Tracker, agent Agent, opts Options) *FS {
	return &FS{view: view, tracker: tracker, agent: agent, opts: opts}
}

// View returns the underlying (unwrapped) view.
func (w *FS) View() *vfs.View { return w.view }

func (w *FS) now() time.Duration {
	if c := w.view.Clock(); c != nil {
		return c.Now()
	}
	return 0
}

// track records one I/O activity against an object node.
func (w *FS) track(class model.Class, api string, object rdf.Term, started time.Duration) {
	if w.opts.Disabled {
		return
	}
	w.tracker.TrackIO(class, api, object, w.agent.agent(), started, w.now()-started)
}

// trackObject mints a data-object node unless the wrapper is disabled.
// Attribution to the program agent happens only for creating operations;
// merely accessed objects must not be re-attributed to the accessor, or
// backward lineage would be corrupted.
func (w *FS) trackObject(class model.Class, id, name string, container rdf.Term, creating bool) rdf.Term {
	if w.opts.Disabled {
		return rdf.Term{}
	}
	attributed := rdf.Term{}
	if creating {
		attributed = w.agent.Program
	}
	return w.tracker.TrackDataObject(class, id, name, container, attributed)
}

// fileNode returns the File entity node for a path.
func (w *FS) fileNode(path string, creating bool) rdf.Term {
	return w.trackObject(model.File, path, path, rdf.Term{}, creating)
}

// OpenFile interposes on open(2). O_CREAT on a new file is a Create
// activity; otherwise an Open activity.
func (w *FS) OpenFile(path string, flag int) (*File, error) {
	started := w.now()
	existed := w.view.Exists(path)
	f, err := w.view.OpenFile(path, flag)
	if err != nil {
		return nil, err
	}
	created := flag&vfs.O_CREATE != 0 && !existed
	node := w.fileNode(path, created)
	if created {
		w.track(model.Create, "open", node, started)
	} else {
		w.track(model.Open, "open", node, started)
	}
	return &File{fs: w, f: f, node: node, path: path}, nil
}

// Create interposes on creat(2).
func (w *FS) Create(path string) (*File, error) {
	return w.OpenFile(path, vfs.O_RDWR|vfs.O_CREATE|vfs.O_TRUNC)
}

// Open interposes on open(2) with O_RDONLY.
func (w *FS) Open(path string) (*File, error) {
	return w.OpenFile(path, vfs.O_RDONLY)
}

// Mkdir interposes on mkdir(2), minting a Directory entity.
func (w *FS) Mkdir(path string) error {
	started := w.now()
	if err := w.view.Mkdir(path); err != nil {
		return err
	}
	node := w.trackObject(model.Directory, path, path, rdf.Term{}, true)
	w.track(model.Create, "mkdir", node, started)
	return nil
}

// MkdirAll creates a directory chain; each created level is tracked.
func (w *FS) MkdirAll(path string) error {
	started := w.now()
	if err := w.view.MkdirAll(path); err != nil {
		return err
	}
	node := w.trackObject(model.Directory, path, path, rdf.Term{}, true)
	w.track(model.Create, "mkdir", node, started)
	return nil
}

// Rename interposes on rename(2): a Rename activity with provio:wasModifiedBy.
func (w *FS) Rename(oldp, newp string) error {
	started := w.now()
	if err := w.view.Rename(oldp, newp); err != nil {
		return err
	}
	node := w.fileNode(newp, true) // the new name is produced by this program
	// Record the identity change: the new name derives from the old.
	old := w.fileNode(oldp, false)
	if !node.IsZero() && !old.IsZero() {
		w.tracker.TrackDerivation(node, old)
	}
	w.track(model.Rename, "rename", node, started)
	return nil
}

// Remove interposes on unlink(2)/rmdir(2). Removal is not one of the six
// I/O API classes; it is forwarded untracked, like the C prototype.
func (w *FS) Remove(path string) error { return w.view.Remove(path) }

// Symlink interposes on symlink(2), minting a Link entity.
func (w *FS) Symlink(target, linkp string) error {
	started := w.now()
	if err := w.view.Symlink(target, linkp); err != nil {
		return err
	}
	node := w.trackObject(model.Link, linkp, linkp, rdf.Term{}, true)
	w.track(model.Create, "symlink", node, started)
	return nil
}

// Link interposes on link(2), minting a Link entity.
func (w *FS) Link(oldp, newp string) error {
	started := w.now()
	if err := w.view.Link(oldp, newp); err != nil {
		return err
	}
	node := w.trackObject(model.Link, newp, newp, rdf.Term{}, true)
	w.track(model.Create, "link", node, started)
	return nil
}

// Setxattr interposes on setxattr(2): an Attribute entity written.
func (w *FS) Setxattr(path, name string, value []byte) error {
	started := w.now()
	if err := w.view.Setxattr(path, name, value); err != nil {
		return err
	}
	node := w.trackObject(model.Attribute, path+"/.xattrs/"+name, name, w.fileNode(path, false), true)
	w.track(model.Write, "setxattr", node, started)
	return nil
}

// Getxattr interposes on getxattr(2): an Attribute entity read.
func (w *FS) Getxattr(path, name string) ([]byte, error) {
	started := w.now()
	val, err := w.view.Getxattr(path, name)
	if err != nil {
		return nil, err
	}
	node := w.trackObject(model.Attribute, path+"/.xattrs/"+name, name, w.fileNode(path, false), false)
	w.track(model.Read, "getxattr", node, started)
	return val, nil
}

// Listxattr forwards listxattr(2) untracked (pure metadata enumeration).
func (w *FS) Listxattr(path string) ([]string, error) { return w.view.Listxattr(path) }

// Stat forwards stat(2) untracked.
func (w *FS) Stat(path string) (vfs.FileInfo, error) { return w.view.Stat(path) }

// ReadDir forwards readdir(3) untracked.
func (w *FS) ReadDir(path string) ([]vfs.FileInfo, error) { return w.view.ReadDir(path) }

// ReadFile is the read-whole-file convenience; tracked as one open + reads.
func (w *FS) ReadFile(path string) ([]byte, error) {
	f, err := w.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []byte
	buf := make([]byte, 64<<10)
	for {
		n, err := f.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, err
		}
	}
}

// WriteFile writes data to path, creating or truncating it.
func (w *FS) WriteFile(path string, data []byte) error {
	f, err := w.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// File is a wrapped open file: data operations invoke the PROV-IO Library.
type File struct {
	fs   *FS
	f    *vfs.File
	node rdf.Term
	path string
}

// Name returns the file path.
func (f *File) Name() string { return f.f.Name() }

// Read interposes on read(2).
func (f *File) Read(p []byte) (int, error) {
	started := f.fs.now()
	n, err := f.f.Read(p)
	if err == nil && f.fs.opts.TrackData {
		f.fs.track(model.Read, "read", f.node, started)
	}
	return n, err
}

// ReadAt interposes on pread(2).
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	started := f.fs.now()
	n, err := f.f.ReadAt(p, off)
	if (err == nil || n > 0) && f.fs.opts.TrackData {
		f.fs.track(model.Read, "pread", f.node, started)
	}
	return n, err
}

// Write interposes on write(2).
func (f *File) Write(p []byte) (int, error) {
	started := f.fs.now()
	n, err := f.f.Write(p)
	if err == nil && f.fs.opts.TrackData {
		f.fs.track(model.Write, "write", f.node, started)
	}
	return n, err
}

// WriteAt interposes on pwrite(2).
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	started := f.fs.now()
	n, err := f.f.WriteAt(p, off)
	if err == nil && f.fs.opts.TrackData {
		f.fs.track(model.Write, "pwrite", f.node, started)
	}
	return n, err
}

// Seek forwards lseek(2) untracked.
func (f *File) Seek(offset int64, whence int) (int64, error) { return f.f.Seek(offset, whence) }

// Truncate forwards ftruncate(2) untracked.
func (f *File) Truncate(size int64) error { return f.f.Truncate(size) }

// Sync interposes on fsync(2): an Fsync activity with provio:wasFlushedBy.
func (f *File) Sync() error {
	started := f.fs.now()
	if err := f.f.Sync(); err != nil {
		return err
	}
	f.fs.track(model.Fsync, "fsync", f.node, started)
	return nil
}

// Size returns the current size.
func (f *File) Size() int64 { return f.f.Size() }

// Close forwards close(2) untracked.
func (f *File) Close() error { return f.f.Close() }
