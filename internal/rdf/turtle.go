package rdf

import (
	"bufio"
	"io"
	"sort"
	"sync"
)

// WriteTurtle serializes the graph in Turtle format, grouping triples by
// subject with ';' predicate lists and ',' object lists — the layout the
// PROV-IO paper shows in its provenance snippets. Output is deterministic
// (sorted by subject, predicate, object).
func WriteTurtle(w io.Writer, g *Graph, ns *Namespaces) error {
	bw := bufio.NewWriter(w)
	if ns != nil {
		for _, p := range ns.Prefixes() {
			base, _ := ns.Base(p)
			if _, err := bw.WriteString("@prefix " + p + ": <" + base + "> .\n"); err != nil {
				return err
			}
		}
		if len(ns.Prefixes()) > 0 {
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}

	ts := g.SortedTriples()
	// Group by subject, then by predicate.
	for i := 0; i < len(ts); {
		s := ts[i].S
		j := i
		for j < len(ts) && ts[j].S == s {
			j++
		}
		if err := writeSubjectBlock(bw, ts[i:j], ns); err != nil {
			return err
		}
		i = j
	}
	return bw.Flush()
}

func writeSubjectBlock(bw *bufio.Writer, ts []Triple, ns *Namespaces) error {
	if _, err := bw.WriteString(renderTerm(ts[0].S, ns)); err != nil {
		return err
	}
	for i := 0; i < len(ts); {
		p := ts[i].P
		j := i
		for j < len(ts) && ts[j].P == p {
			j++
		}
		sep := " "
		if i > 0 {
			sep = " ;\n    "
		}
		if _, err := bw.WriteString(sep + renderPredicate(p, ns) + " "); err != nil {
			return err
		}
		for k := i; k < j; k++ {
			if k > i {
				if _, err := bw.WriteString(", "); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(renderTerm(ts[k].O, ns)); err != nil {
				return err
			}
		}
		i = j
	}
	_, err := bw.WriteString(" .\n")
	return err
}

// renderTerm renders a term in Turtle, compacting IRIs with the prefix table.
func renderTerm(t Term, ns *Namespaces) string {
	switch t.Kind {
	case IRITerm:
		if ns != nil {
			if c, ok := ns.Shrink(t.Value); ok {
				return c
			}
		}
		return "<" + t.Value + ">"
	case LiteralTerm:
		s := quoteLiteral(t.Value)
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" {
			if ns != nil {
				if c, ok := ns.Shrink(t.Datatype); ok {
					return s + "^^" + c
				}
			}
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	default:
		return t.String()
	}
}

// renderPredicate renders a predicate, using the Turtle 'a' shorthand for
// rdf:type.
func renderPredicate(p Term, ns *Namespaces) string {
	if p.Kind == IRITerm && p.Value == RDFType {
		return "a"
	}
	return renderTerm(p, ns)
}

// WriteNTriples serializes the graph one triple per line in deterministic
// order.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.SortedTriples() {
		if _, err := bw.WriteString(t.String() + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TermRenderer memoizes the N-Triples rendering of one graph's terms by
// dictionary ID. Because IDs are stable for the lifetime of a graph, a
// renderer owned by a tracker renders each distinct term exactly once across
// all of that tracker's delta flushes — the write-side twin of the query
// executor's memoized ORDER BY term rendering. The cache grows to one string
// per rendered term and is never invalidated (terms are immutable once
// interned).
//
// A TermRenderer is safe for concurrent use; in the flush pipeline the async
// writer goroutine and inline delta flushes may touch it from different
// threads.
type TermRenderer struct {
	g     *Graph
	mu    sync.Mutex
	cache []string
}

// NewTermRenderer returns a renderer memoizing g's terms.
func NewTermRenderer(g *Graph) *TermRenderer {
	return &TermRenderer{g: g}
}

// Graph returns the graph whose terms the renderer memoizes. The store's
// delta-segment path uses it to reach the dictionary when a binary codec
// serializes straight from triple IDs instead of rendered text.
func (r *TermRenderer) Graph() *Graph { return r.g }

// Render returns the N-Triples rendering of the term interned under id,
// computing and caching it on first use. IDs that are not interned (including
// NoID) render as the zero Term.
func (r *TermRenderer) Render(id ID) string {
	return r.render(id, r.g.dict.snapshot())
}

// render is Render against an already-taken dictionary snapshot.
func (r *TermRenderer) render(id ID, terms []Term) string {
	if int(id) >= len(terms) {
		return Term{}.String()
	}
	r.mu.Lock()
	if int(id) >= len(r.cache) {
		grown := make([]string, len(terms))
		copy(grown, r.cache)
		r.cache = grown
	}
	s := r.cache[id]
	if s == "" {
		s = terms[id].String()
		r.cache[id] = s
	}
	r.mu.Unlock()
	return s
}

// WriteNTriples serializes refs of the renderer's graph as N-Triples in
// deterministic (S, P, O) term order, sorting refs in place. This is the
// delta-segment serializer: it renders from 12-byte TripleIDs and the
// memoized per-ID term cache, so a flush materializes no []Triple and
// re-renders no term a previous flush already rendered. The byte output is
// identical to sorting the materialized triples and writing Triple.String.
func (r *TermRenderer) WriteNTriples(w io.Writer, refs []TripleID) error {
	terms := r.g.dict.snapshot()
	// Interning is injective, so distinct IDs always hold distinct terms.
	sort.Slice(refs, func(i, j int) bool {
		a, b := refs[i], refs[j]
		if a.S != b.S {
			return termLess(terms[a.S], terms[b.S])
		}
		if a.P != b.P {
			return termLess(terms[a.P], terms[b.P])
		}
		return a.O != b.O && termLess(terms[a.O], terms[b.O])
	})
	bw := bufio.NewWriter(w)
	for _, t := range refs {
		if _, err := bw.WriteString(r.render(t.S, terms)); err != nil {
			return err
		}
		bw.WriteByte(' ')
		bw.WriteString(r.render(t.P, terms))
		bw.WriteByte(' ')
		bw.WriteString(r.render(t.O, terms))
		if _, err := bw.WriteString(" .\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SortTriples sorts ts in place by (S, P, O); exported for callers that
// serialize partial graphs.
func SortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].S != ts[j].S {
			return termLess(ts[i].S, ts[j].S)
		}
		if ts[i].P != ts[j].P {
			return termLess(ts[i].P, ts[j].P)
		}
		return termLess(ts[i].O, ts[j].O)
	})
}
