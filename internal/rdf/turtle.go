package rdf

import (
	"bufio"
	"io"
	"sort"
)

// WriteTurtle serializes the graph in Turtle format, grouping triples by
// subject with ';' predicate lists and ',' object lists — the layout the
// PROV-IO paper shows in its provenance snippets. Output is deterministic
// (sorted by subject, predicate, object).
func WriteTurtle(w io.Writer, g *Graph, ns *Namespaces) error {
	bw := bufio.NewWriter(w)
	if ns != nil {
		for _, p := range ns.Prefixes() {
			base, _ := ns.Base(p)
			if _, err := bw.WriteString("@prefix " + p + ": <" + base + "> .\n"); err != nil {
				return err
			}
		}
		if len(ns.Prefixes()) > 0 {
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}

	ts := g.SortedTriples()
	// Group by subject, then by predicate.
	for i := 0; i < len(ts); {
		s := ts[i].S
		j := i
		for j < len(ts) && ts[j].S == s {
			j++
		}
		if err := writeSubjectBlock(bw, ts[i:j], ns); err != nil {
			return err
		}
		i = j
	}
	return bw.Flush()
}

func writeSubjectBlock(bw *bufio.Writer, ts []Triple, ns *Namespaces) error {
	if _, err := bw.WriteString(renderTerm(ts[0].S, ns)); err != nil {
		return err
	}
	for i := 0; i < len(ts); {
		p := ts[i].P
		j := i
		for j < len(ts) && ts[j].P == p {
			j++
		}
		sep := " "
		if i > 0 {
			sep = " ;\n    "
		}
		if _, err := bw.WriteString(sep + renderPredicate(p, ns) + " "); err != nil {
			return err
		}
		for k := i; k < j; k++ {
			if k > i {
				if _, err := bw.WriteString(", "); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(renderTerm(ts[k].O, ns)); err != nil {
				return err
			}
		}
		i = j
	}
	_, err := bw.WriteString(" .\n")
	return err
}

// renderTerm renders a term in Turtle, compacting IRIs with the prefix table.
func renderTerm(t Term, ns *Namespaces) string {
	switch t.Kind {
	case IRITerm:
		if ns != nil {
			if c, ok := ns.Shrink(t.Value); ok {
				return c
			}
		}
		return "<" + t.Value + ">"
	case LiteralTerm:
		s := quoteLiteral(t.Value)
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" {
			if ns != nil {
				if c, ok := ns.Shrink(t.Datatype); ok {
					return s + "^^" + c
				}
			}
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	default:
		return t.String()
	}
}

// renderPredicate renders a predicate, using the Turtle 'a' shorthand for
// rdf:type.
func renderPredicate(p Term, ns *Namespaces) string {
	if p.Kind == IRITerm && p.Value == RDFType {
		return "a"
	}
	return renderTerm(p, ns)
}

// WriteNTriples serializes the graph one triple per line in deterministic
// order.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.SortedTriples() {
		if _, err := bw.WriteString(t.String() + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SortTriples sorts ts in place by (S, P, O); exported for callers that
// serialize partial graphs.
func SortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].S != ts[j].S {
			return termLess(ts[i].S, ts[j].S)
		}
		if ts[i].P != ts[j].P {
			return termLess(ts[i].P, ts[j].P)
		}
		return termLess(ts[i].O, ts[j].O)
	})
}
