package rdf

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// randTriple draws from a small term pool so duplicate Adds are frequent —
// the delta cursor must count only triples that actually entered the graph.
func randTriple(rng *rand.Rand) Triple {
	s := IRI(fmt.Sprintf("http://x/s%d", rng.Intn(20)))
	p := IRI(fmt.Sprintf("http://x/p%d", rng.Intn(8)))
	var o Term
	if rng.Intn(2) == 0 {
		o = IRI(fmt.Sprintf("http://x/o%d", rng.Intn(20)))
	} else {
		o = Literal(fmt.Sprintf("v%d", rng.Intn(30)))
	}
	return Triple{S: s, P: p, O: o}
}

func graphsEqual(a, b *Graph) bool {
	if a.Len() != b.Len() {
		return false
	}
	equal := true
	a.ForEachMatch(nil, nil, nil, func(t Triple) bool {
		if !b.Has(t) {
			equal = false
		}
		return equal
	})
	return equal
}

// TestTriplesSinceUnionEqualsGraph is the delta-path property: for any
// interleaving of Adds and cursor snapshots, the union of all deltas equals
// the full graph.
func TestTriplesSinceUnionEqualsGraph(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		union := NewGraph()
		cursor := 0
		steps := 50 + rng.Intn(400)
		for i := 0; i < steps; i++ {
			g.Add(randTriple(rng))
			if rng.Intn(7) == 0 {
				for _, tr := range g.TriplesSince(cursor) {
					union.Add(tr)
				}
				cursor = g.LogLen()
			}
		}
		// Final delta closes the run (the tracker's Close analog).
		for _, tr := range g.TriplesSince(cursor) {
			union.Add(tr)
		}
		if !graphsEqual(g, union) {
			t.Fatalf("seed %d: union of deltas (%d) != graph (%d)", seed, union.Len(), g.Len())
		}
	}
}

// TestTriplesSinceSkipsRemoved: removed triples drop out of later deltas,
// and a re-add after removal surfaces again.
func TestTriplesSinceSkipsRemoved(t *testing.T) {
	g := NewGraph()
	a := Triple{S: IRI("http://x/a"), P: IRI("http://x/p"), O: Literal("1")}
	b := Triple{S: IRI("http://x/b"), P: IRI("http://x/p"), O: Literal("2")}
	g.Add(a)
	g.Add(b)
	g.Remove(a)
	if d := g.TriplesSince(0); len(d) != 1 || d[0] != b {
		t.Fatalf("delta after remove = %v, want just b", d)
	}
	if g.LogLen() != 2 {
		t.Errorf("LogLen = %d, want 2 (monotone under Remove)", g.LogLen())
	}
	g.Add(a) // re-add: new log entry
	if d := g.TriplesSince(2); len(d) != 1 || d[0] != a {
		t.Fatalf("delta after re-add = %v, want just a", d)
	}
}

func TestTriplesSinceBounds(t *testing.T) {
	g := NewGraph()
	g.Add(Triple{S: IRI("http://x/a"), P: IRI("http://x/p"), O: Literal("1")})
	if d := g.TriplesSince(-5); len(d) != 1 {
		t.Errorf("negative cursor: %v", d)
	}
	if d := g.TriplesSince(1); d != nil {
		t.Errorf("cursor at end: %v", d)
	}
	if d := g.TriplesSince(99); d != nil {
		t.Errorf("cursor past end: %v", d)
	}
}

// TestTriplesSinceConcurrent runs adders concurrently with a delta
// collector; after a final catch-up delta, the union must equal the graph
// exactly. This mirrors the tracker's threads-vs-async-flusher interleaving.
func TestTriplesSinceConcurrent(t *testing.T) {
	g := NewGraph()
	const adders = 6
	const perAdder = 300
	var wg sync.WaitGroup
	for w := 0; w < adders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perAdder; i++ {
				g.Add(randTriple(rng))
			}
		}(w)
	}
	union := NewGraph()
	cursor := 0
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		// Capture the target position before extracting: triples added
		// between the two calls are collected next round, never skipped.
		next := g.LogLen()
		for _, tr := range g.TriplesSince(cursor) {
			union.Add(tr)
		}
		cursor = next
	}
	// One final catch-up after every adder finished.
	for _, tr := range g.TriplesSince(cursor) {
		union.Add(tr)
	}
	if !graphsEqual(g, union) {
		t.Fatalf("concurrent deltas: union %d != graph %d", union.Len(), g.Len())
	}
}
