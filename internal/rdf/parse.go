package rdf

import (
	"fmt"
	"io"
	"strings"
	"unicode"
	"unicode/utf8"
)

// ParseError describes a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("rdf: parse error at line %d: %s", e.Line, e.Msg)
}

// ParseTurtle parses a Turtle document into a new graph, returning the graph
// and the prefix table it declared. The parser covers the Turtle subset our
// serializer emits plus common hand-written forms: @prefix directives,
// prefixed names, IRIs, blank nodes, the 'a' keyword, ';' and ',' lists,
// string/numeric/boolean literals, language tags, datatypes, and comments.
func ParseTurtle(r io.Reader) (*Graph, *Namespaces, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, err
	}
	p := &turtleParser{src: string(data), line: 1, ns: NewNamespaces(), g: NewGraph()}
	if err := p.parse(); err != nil {
		return nil, nil, err
	}
	return p.g, p.ns, nil
}

// ParseNTriples parses an N-Triples document (a strict Turtle subset) into a
// new graph.
func ParseNTriples(r io.Reader) (*Graph, error) {
	g, _, err := ParseTurtle(r)
	return g, err
}

type turtleParser struct {
	src  string
	pos  int
	line int
	ns   *Namespaces
	g    *Graph
}

func (p *turtleParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *turtleParser) eof() bool { return p.pos >= len(p.src) }

func (p *turtleParser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *turtleParser) advance() byte {
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
	}
	return c
}

func (p *turtleParser) skipWS() {
	for !p.eof() {
		c := p.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			p.advance()
		case c == '#':
			for !p.eof() && p.peek() != '\n' {
				p.advance()
			}
		default:
			return
		}
	}
}

func (p *turtleParser) expect(c byte) error {
	p.skipWS()
	if p.eof() || p.peek() != c {
		return p.errf("expected %q", string(c))
	}
	p.advance()
	return nil
}

func (p *turtleParser) parse() error {
	for {
		p.skipWS()
		if p.eof() {
			return nil
		}
		if p.hasKeyword("@prefix") {
			if err := p.parsePrefix(); err != nil {
				return err
			}
			continue
		}
		if p.hasKeyword("@base") {
			return p.errf("@base is not supported")
		}
		if err := p.parseStatement(); err != nil {
			return err
		}
	}
}

// hasKeyword consumes kw if it appears at the cursor.
func (p *turtleParser) hasKeyword(kw string) bool {
	if strings.HasPrefix(p.src[p.pos:], kw) {
		p.pos += len(kw)
		return true
	}
	return false
}

func (p *turtleParser) parsePrefix() error {
	p.skipWS()
	start := p.pos
	for !p.eof() && p.peek() != ':' {
		p.advance()
	}
	if p.eof() {
		return p.errf("unterminated @prefix")
	}
	prefix := strings.TrimSpace(p.src[start:p.pos])
	p.advance() // ':'
	p.skipWS()
	iri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.ns.Bind(prefix, iri)
	return p.expect('.')
}

func (p *turtleParser) parseStatement() error {
	subj, err := p.parseTerm(true)
	if err != nil {
		return err
	}
	for {
		p.skipWS()
		pred, err := p.parsePredicate()
		if err != nil {
			return err
		}
		for {
			obj, err := p.parseTerm(false)
			if err != nil {
				return err
			}
			p.g.Add(Triple{S: subj, P: pred, O: obj})
			p.skipWS()
			if p.peek() == ',' {
				p.advance()
				continue
			}
			break
		}
		p.skipWS()
		switch p.peek() {
		case ';':
			p.advance()
			p.skipWS()
			// Allow trailing ';' before '.'.
			if p.peek() == '.' {
				p.advance()
				return nil
			}
			continue
		case '.':
			p.advance()
			return nil
		default:
			return p.errf("expected ';' or '.' after object")
		}
	}
}

func (p *turtleParser) parsePredicate() (Term, error) {
	p.skipWS()
	// 'a' keyword.
	if p.peek() == 'a' {
		next := byte(' ')
		if p.pos+1 < len(p.src) {
			next = p.src[p.pos+1]
		}
		if next == ' ' || next == '\t' || next == '\n' || next == '\r' || next == '<' {
			p.advance()
			return IRI(RDFType), nil
		}
	}
	t, err := p.parseTerm(true)
	if err != nil {
		return Term{}, err
	}
	if !t.IsIRI() {
		return Term{}, p.errf("predicate must be an IRI")
	}
	return t, nil
}

// parseTerm parses one RDF term. subjectPos restricts literals.
func (p *turtleParser) parseTerm(subjectPos bool) (Term, error) {
	p.skipWS()
	if p.eof() {
		return Term{}, p.errf("unexpected end of input")
	}
	switch c := p.peek(); {
	case c == '<':
		iri, err := p.parseIRIRef()
		if err != nil {
			return Term{}, err
		}
		return IRI(iri), nil
	case c == '_':
		return p.parseBlank()
	case c == '"':
		if subjectPos {
			return Term{}, p.errf("literal not allowed as subject/predicate")
		}
		return p.parseStringLiteral()
	case c == '+' || c == '-' || (c >= '0' && c <= '9'):
		if subjectPos {
			return Term{}, p.errf("numeric literal not allowed here")
		}
		return p.parseNumber()
	default:
		// true/false or prefixed name.
		if !subjectPos {
			if p.hasKeyword("true") && p.boundary() {
				return Boolean(true), nil
			}
			if p.hasKeyword("false") && p.boundary() {
				return Boolean(false), nil
			}
		}
		return p.parsePrefixedName()
	}
}

// boundary reports whether the cursor sits at a token boundary.
func (p *turtleParser) boundary() bool {
	if p.eof() {
		return true
	}
	c := p.peek()
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',' || c == ';' || c == '.'
}

func (p *turtleParser) parseIRIRef() (string, error) {
	if err := p.expect('<'); err != nil {
		return "", err
	}
	var b strings.Builder
	for {
		if p.eof() {
			return "", p.errf("unterminated IRI")
		}
		c := p.advance()
		if c == '>' {
			return b.String(), nil
		}
		if c == '\n' {
			return "", p.errf("newline in IRI")
		}
		b.WriteByte(c)
	}
}

func (p *turtleParser) parseBlank() (Term, error) {
	p.advance() // '_'
	if p.eof() || p.peek() != ':' {
		return Term{}, p.errf("expected ':' after '_' in blank node")
	}
	p.advance()
	start := p.pos
	for !p.eof() && isNameChar(rune(p.peek())) {
		p.advance()
	}
	if p.pos == start {
		return Term{}, p.errf("empty blank node label")
	}
	return Blank(p.src[start:p.pos]), nil
}

func (p *turtleParser) parseStringLiteral() (Term, error) {
	p.advance() // opening '"'
	var b strings.Builder
	for {
		if p.eof() {
			return Term{}, p.errf("unterminated string literal")
		}
		c := p.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			if p.eof() {
				return Term{}, p.errf("unterminated escape")
			}
			e := p.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'u', 'U':
				n := 4
				if e == 'U' {
					n = 8
				}
				if p.pos+n > len(p.src) {
					return Term{}, p.errf("truncated \\%c escape", e)
				}
				var r rune
				for i := 0; i < n; i++ {
					d := hexVal(p.advance())
					if d < 0 {
						return Term{}, p.errf("bad hex digit in \\%c escape", e)
					}
					r = r<<4 | rune(d)
				}
				if !utf8.ValidRune(r) {
					return Term{}, p.errf("invalid unicode escape")
				}
				b.WriteRune(r)
			default:
				return Term{}, p.errf("unknown escape \\%c", e)
			}
			continue
		}
		b.WriteByte(c)
	}
	lex := b.String()
	// Optional language tag or datatype.
	if !p.eof() && p.peek() == '@' {
		p.advance()
		start := p.pos
		for !p.eof() && (isAlphaNum(p.peek()) || p.peek() == '-') {
			p.advance()
		}
		if p.pos == start {
			return Term{}, p.errf("empty language tag")
		}
		return LangLiteral(lex, p.src[start:p.pos]), nil
	}
	if strings.HasPrefix(p.src[p.pos:], "^^") {
		p.pos += 2
		dt, err := p.parseTerm(true)
		if err != nil {
			return Term{}, err
		}
		if !dt.IsIRI() {
			return Term{}, p.errf("datatype must be an IRI")
		}
		return TypedLiteral(lex, dt.Value), nil
	}
	return Literal(lex), nil
}

func (p *turtleParser) parseNumber() (Term, error) {
	start := p.pos
	if p.peek() == '+' || p.peek() == '-' {
		p.advance()
	}
	seenDot, seenExp := false, false
	for !p.eof() {
		c := p.peek()
		switch {
		case c >= '0' && c <= '9':
			p.advance()
		case c == '.' && !seenDot && !seenExp:
			// A '.' followed by a non-digit terminates the statement instead.
			if p.pos+1 >= len(p.src) || p.src[p.pos+1] < '0' || p.src[p.pos+1] > '9' {
				goto done
			}
			seenDot = true
			p.advance()
		case (c == 'e' || c == 'E') && !seenExp:
			seenExp = true
			p.advance()
			if !p.eof() && (p.peek() == '+' || p.peek() == '-') {
				p.advance()
			}
		default:
			goto done
		}
	}
done:
	lex := p.src[start:p.pos]
	if lex == "" || lex == "+" || lex == "-" {
		return Term{}, p.errf("malformed number")
	}
	if seenDot || seenExp {
		return TypedLiteral(lex, XSDDouble), nil
	}
	return TypedLiteral(lex, XSDInteger), nil
}

func (p *turtleParser) parsePrefixedName() (Term, error) {
	start := p.pos
	for !p.eof() && p.peek() != ':' && isNameChar(rune(p.peek())) {
		p.advance()
	}
	if p.eof() || p.peek() != ':' {
		return Term{}, p.errf("expected prefixed name")
	}
	prefix := p.src[start:p.pos]
	p.advance() // ':'
	lstart := p.pos
	for !p.eof() && isLocalChar(rune(p.peek())) {
		// A trailing '.' ends the statement, it is not part of the name.
		if p.peek() == '.' {
			if p.pos+1 >= len(p.src) || !isLocalChar(rune(p.src[p.pos+1])) || p.src[p.pos+1] == '.' {
				break
			}
		}
		p.advance()
	}
	local := p.src[lstart:p.pos]
	base, ok := p.ns.Base(prefix)
	if !ok {
		return Term{}, p.errf("unbound prefix %q", prefix)
	}
	return IRI(base + local), nil
}

func isNameChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

func isLocalChar(r rune) bool {
	return isNameChar(r) || r == '.' || r == '/' || r == '#'
}

func isAlphaNum(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}
