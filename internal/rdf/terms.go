// Package rdf implements an in-memory RDF triple store with Turtle and
// N-Triples serialization, replacing the role Redland librdf plays in the
// original PROV-IO prototype.
//
// The store is dictionary-encoded: every distinct term is interned once and
// triples are stored as fixed-size integer tuples in three indexes (SPO, POS,
// OSP), which keeps per-triple memory small when a workflow emits millions of
// provenance records.
package rdf

import (
	"strconv"
	"strings"
)

// TermKind discriminates the three RDF term kinds.
type TermKind uint8

// Term kinds.
const (
	IRITerm TermKind = iota + 1
	BlankTerm
	LiteralTerm
)

// Common XSD datatype IRIs.
const (
	XSDString  = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDouble  = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDLong    = "http://www.w3.org/2001/XMLSchema#long"
	XSDDecimal = "http://www.w3.org/2001/XMLSchema#decimal"
)

// RDFType is the rdf:type predicate IRI.
const RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// Term is a single RDF term: an IRI, a blank node, or a literal.
// The zero Term is invalid; use the constructors.
type Term struct {
	Kind TermKind
	// Value holds the IRI, the blank node label (without "_:"), or the
	// literal lexical form.
	Value string
	// Lang is the language tag for language-tagged literals.
	Lang string
	// Datatype is the datatype IRI for typed literals. Empty means
	// xsd:string for literals.
	Datatype string
}

// IRI returns an IRI term.
func IRI(iri string) Term { return Term{Kind: IRITerm, Value: iri} }

// Blank returns a blank node term with the given label (no "_:" prefix).
func Blank(label string) Term { return Term{Kind: BlankTerm, Value: label} }

// Literal returns a plain (xsd:string) literal term.
func Literal(lexical string) Term { return Term{Kind: LiteralTerm, Value: lexical} }

// LangLiteral returns a language-tagged literal term.
func LangLiteral(lexical, lang string) Term {
	return Term{Kind: LiteralTerm, Value: lexical, Lang: lang}
}

// TypedLiteral returns a literal with an explicit datatype IRI.
func TypedLiteral(lexical, datatype string) Term {
	if datatype == XSDString {
		datatype = ""
	}
	return Term{Kind: LiteralTerm, Value: lexical, Datatype: datatype}
}

// Integer returns an xsd:integer literal.
func Integer(v int64) Term { return TypedLiteral(strconv.FormatInt(v, 10), XSDInteger) }

// Double returns an xsd:double literal.
func Double(v float64) Term { return TypedLiteral(strconv.FormatFloat(v, 'g', -1, 64), XSDDouble) }

// Decimal returns an xsd:decimal literal. The lexical form never uses an
// exponent ('f' formatting), as the xsd:decimal lexical space requires.
func Decimal(v float64) Term { return TypedLiteral(strconv.FormatFloat(v, 'f', -1, 64), XSDDecimal) }

// Boolean returns an xsd:boolean literal.
func Boolean(v bool) Term {
	s := "false"
	if v {
		s = "true"
	}
	return TypedLiteral(s, XSDBoolean)
}

// IsIRI reports whether t is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRITerm }

// IsBlank reports whether t is a blank node.
func (t Term) IsBlank() bool { return t.Kind == BlankTerm }

// IsLiteral reports whether t is a literal.
func (t Term) IsLiteral() bool { return t.Kind == LiteralTerm }

// IsZero reports whether t is the invalid zero Term.
func (t Term) IsZero() bool { return t.Kind == 0 }

// Equal reports whether two terms are identical.
func (t Term) Equal(o Term) bool { return t == o }

// Ptr returns a pointer to a copy of t, convenient for Graph.Find patterns.
func (t Term) Ptr() *Term { return &t }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRITerm:
		return "<" + t.Value + ">"
	case BlankTerm:
		return "_:" + t.Value
	case LiteralTerm:
		s := quoteLiteral(t.Value)
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	default:
		return "<invalid>"
	}
}

// quoteLiteral renders a literal lexical form with N-Triples escaping.
func quoteLiteral(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Triple is a single RDF statement.
type Triple struct {
	S, P, O Term
}

// String renders the triple in N-Triples syntax (without trailing newline).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// Valid reports whether the triple is structurally valid RDF: subject must be
// an IRI or blank node, predicate an IRI, object any term.
func (t Triple) Valid() bool {
	if t.S.Kind != IRITerm && t.S.Kind != BlankTerm {
		return false
	}
	if t.P.Kind != IRITerm {
		return false
	}
	return t.O.Kind == IRITerm || t.O.Kind == BlankTerm || t.O.Kind == LiteralTerm
}
