package rdf

import "sync"

// dictShardCount is the number of stripes in the term dictionary. Interning
// is the first step of every insert, and before striping all rank threads of
// a process serialized on the graph mutex just to map terms to IDs. 16 shards
// push the collision probability low enough that interning is effectively
// uncontended at realistic thread counts, while keeping the per-graph
// footprint (16 small maps) negligible.
const dictShardCount = 16

// dictShard is one stripe: a Term -> ID map under its own read-write lock.
// The read lock is the fast path — after warm-up nearly every record's terms
// (predicates, class IRIs, repeated subjects) are already interned.
type dictShard struct {
	mu sync.RWMutex
	m  map[Term]ID
}

// termDict is the graph's striped, append-only term dictionary. It has two
// halves with separate locks:
//
//   - per-shard Term -> ID maps, striped by a cheap term hash, so concurrent
//     interning by many rank threads does not serialize;
//   - a global append-only ID -> Term table guarded by tmu, whose IDs are
//     dense indexes (allocation order), preserving the pre-striping ID
//     semantics the query planner and insertion log rely on.
//
// Lock ordering: a shard lock may be held while acquiring tmu; tmu is never
// held while acquiring a shard lock.
//
// Terms are never removed (Remove does not un-intern), so the ID -> Term
// table only grows and readers can snapshot the slice header once and index
// it freely: entries below the observed length are immutable.
type termDict struct {
	shards [dictShardCount]dictShard

	tmu   sync.RWMutex
	terms []Term
}

// init allocates the shard maps. Called once from NewGraph.
func (d *termDict) init() {
	for i := range d.shards {
		d.shards[i].m = make(map[Term]ID)
	}
}

// shardOf picks the stripe for a term. The hash is FNV-1a over the tail of
// the lexical value plus the cheap discriminators (kind, lengths): PROV-IO
// IRIs share long namespace prefixes, so the tail carries nearly all the
// entropy and hashing it alone keeps the probe cost independent of IRI
// length.
func (d *termDict) shardOf(t Term) *dictShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
		tail     = 16
	)
	h := uint32(offset32)
	h = (h ^ uint32(t.Kind)) * prime32
	h = (h ^ uint32(len(t.Value))) * prime32
	h = (h ^ uint32(len(t.Lang))) * prime32
	h = (h ^ uint32(len(t.Datatype))) * prime32
	v := t.Value
	if len(v) > tail {
		v = v[len(v)-tail:]
	}
	for i := 0; i < len(v); i++ {
		h = (h ^ uint32(v[i])) * prime32
	}
	return &d.shards[h&(dictShardCount-1)]
}

// intern returns the dictionary ID for t, adding it if new. Safe for
// concurrent use; the common (already-interned) case takes only one shard
// read lock.
func (d *termDict) intern(t Term) ID {
	sh := d.shardOf(t)
	sh.mu.RLock()
	id, ok := sh.m[t]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.m[t]; ok {
		return id
	}
	d.tmu.Lock()
	id = ID(len(d.terms))
	d.terms = append(d.terms, t)
	d.tmu.Unlock()
	sh.m[t] = id
	return id
}

// lookup returns the ID for t and whether it is interned.
func (d *termDict) lookup(t Term) (ID, bool) {
	sh := d.shardOf(t)
	sh.mu.RLock()
	id, ok := sh.m[t]
	sh.mu.RUnlock()
	return id, ok
}

// snapshot returns the current ID -> Term table. The returned slice is
// immutable: concurrent interning may grow d.terms, but entries below the
// snapshot length never change, so any ID observed before the snapshot was
// taken indexes it safely.
func (d *termDict) snapshot() []Term {
	d.tmu.RLock()
	t := d.terms
	d.tmu.RUnlock()
	return t
}

// count returns the number of interned terms.
func (d *termDict) count() int {
	d.tmu.RLock()
	n := len(d.terms)
	d.tmu.RUnlock()
	return n
}

// termAt returns the term interned under id, or the zero Term if id is out
// of range (including NoID).
func (d *termDict) termAt(id ID) Term {
	terms := d.snapshot()
	if int(id) >= len(terms) {
		return Term{}
	}
	return terms[id]
}
