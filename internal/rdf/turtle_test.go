package rdf

import (
	"strings"
	"testing"
)

func TestWriteTurtleGroupsBySubject(t *testing.T) {
	g := NewGraph()
	ns := NewNamespaces()
	ns.Bind("ex", "http://e/")
	g.Add(tr("s", "p", "o1"))
	g.Add(tr("s", "p", "o2"))
	g.Add(tr("s", "q", "o1"))

	var sb strings.Builder
	if err := WriteTurtle(&sb, g, ns); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "@prefix ex: <http://e/> .") {
		t.Errorf("missing prefix declaration:\n%s", out)
	}
	if strings.Count(out, "ex:s ") != 1 {
		t.Errorf("subject should appear once:\n%s", out)
	}
	if !strings.Contains(out, "ex:o1, ex:o2") {
		t.Errorf("object list not comma-grouped:\n%s", out)
	}
	if !strings.Contains(out, ";") {
		t.Errorf("predicate list not semicolon-grouped:\n%s", out)
	}
}

func TestWriteTurtleTypeShorthand(t *testing.T) {
	g := NewGraph()
	g.Add(Triple{IRI("http://e/s"), IRI(RDFType), IRI("http://e/C")})
	ns := NewNamespaces()
	ns.Bind("ex", "http://e/")
	var sb strings.Builder
	if err := WriteTurtle(&sb, g, ns); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ex:s a ex:C .") {
		t.Errorf("rdf:type not rendered as 'a':\n%s", sb.String())
	}
}

func TestTurtleRoundTrip(t *testing.T) {
	g := NewGraph()
	ns := NewNamespaces()
	ns.Bind("ex", "http://e/")
	ns.Bind("prov", "http://www.w3.org/ns/prov#")
	g.Add(Triple{IRI("http://e/file1"), IRI(RDFType), IRI("http://e/File")})
	g.Add(Triple{IRI("http://e/file1"), IRI("http://www.w3.org/ns/prov#wasAttributedTo"), IRI("http://e/prog")})
	g.Add(Triple{IRI("http://e/file1"), IRI("http://e/name"), Literal("west sac.h5")})
	g.Add(Triple{IRI("http://e/file1"), IRI("http://e/size"), Integer(1024)})
	g.Add(Triple{IRI("http://e/file1"), IRI("http://e/score"), Double(0.75)})
	g.Add(Triple{IRI("http://e/file1"), IRI("http://e/valid"), Boolean(true)})
	g.Add(Triple{Blank("b0"), IRI("http://e/p"), LangLiteral("hello", "en")})

	var sb strings.Builder
	if err := WriteTurtle(&sb, g, ns); err != nil {
		t.Fatal(err)
	}
	g2, ns2, err := ParseTurtle(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse error: %v\ndoc:\n%s", err, sb.String())
	}
	if g2.Len() != g.Len() {
		t.Fatalf("round trip changed size: %d -> %d\ndoc:\n%s", g.Len(), g2.Len(), sb.String())
	}
	for _, x := range g.Triples() {
		if !g2.Has(x) {
			t.Errorf("lost triple %v\ndoc:\n%s", x, sb.String())
		}
	}
	if base, ok := ns2.Base("prov"); !ok || base != "http://www.w3.org/ns/prov#" {
		t.Errorf("prefix not round-tripped: %q %v", base, ok)
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	g := NewGraph()
	g.Add(Triple{IRI("http://e/s"), IRI("http://e/p"), Literal("line1\nline2\t\"x\"")})
	g.Add(Triple{Blank("n"), IRI("http://e/p"), TypedLiteral("3.5", XSDDouble)})
	var sb strings.Builder
	if err := WriteNTriples(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseNTriples(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g2.Len())
	}
	for _, x := range g.Triples() {
		if !g2.Has(x) {
			t.Errorf("lost triple %v", x)
		}
	}
}

func TestParseTurtleHandWritten(t *testing.T) {
	doc := `
@prefix prov: <http://www.w3.org/ns/prov#> .
@prefix ex: <http://example.org/> .

# a comment
ex:decimate.h5 prov:wasAttributedTo ex:decimate ;
    ex:size 42 ;
    ex:ratio 0.5 ;
    ex:ok true ;
    ex:label "data product"@en .

_:b1 a prov:Entity .
<http://example.org/raw> prov:wasDerivedFrom ex:decimate.h5 , _:b1 .
`
	g, ns, err := ParseTurtle(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 8 {
		t.Fatalf("Len = %d, want 8; triples: %v", g.Len(), g.Triples())
	}
	if _, ok := ns.Base("prov"); !ok {
		t.Error("prov prefix missing")
	}
	want := Triple{
		IRI("http://example.org/decimate.h5"),
		IRI("http://www.w3.org/ns/prov#wasAttributedTo"),
		IRI("http://example.org/decimate"),
	}
	if !g.Has(want) {
		t.Errorf("missing %v", want)
	}
	if !g.Has(Triple{IRI("http://example.org/decimate.h5"), IRI("http://example.org/size"), Integer(42)}) {
		t.Error("integer literal not parsed")
	}
	if !g.Has(Triple{IRI("http://example.org/decimate.h5"), IRI("http://example.org/ok"), Boolean(true)}) {
		t.Error("boolean literal not parsed")
	}
	if !g.Has(Triple{Blank("b1"), IRI(RDFType), IRI("http://www.w3.org/ns/prov#Entity")}) {
		t.Error("'a' shorthand not parsed")
	}
	if !g.Has(Triple{IRI("http://example.org/raw"), IRI("http://www.w3.org/ns/prov#wasDerivedFrom"), Blank("b1")}) {
		t.Error("object list not parsed")
	}
}

func TestParseTurtleErrors(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"unbound-prefix", `foo:x foo:y foo:z .`},
		{"unterminated-iri", `<http://e/x foo`},
		{"unterminated-string", `<http://e/s> <http://e/p> "abc`},
		{"missing-dot", `<http://e/s> <http://e/p> <http://e/o>`},
		{"literal-subject", `"lit" <http://e/p> <http://e/o> .`},
		{"bad-escape", `<http://e/s> <http://e/p> "a\q" .`},
		{"base-unsupported", `@base <http://e/> .`},
		{"blank-missing-colon", `_x <http://e/p> <http://e/o> .`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, err := ParseTurtle(strings.NewReader(c.doc)); err == nil {
				t.Errorf("expected parse error for %q", c.doc)
			}
		})
	}
}

func TestParseErrorHasLine(t *testing.T) {
	doc := "@prefix ex: <http://e/> .\nex:s ex:p \"x\n"
	_, _, err := ParseTurtle(strings.NewReader(doc))
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type = %T, want *ParseError (err=%v)", err, err)
	}
	if pe.Line < 2 {
		t.Errorf("Line = %d, want >= 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line") {
		t.Errorf("Error() = %q lacks line info", pe.Error())
	}
}

func TestParseUnicodeEscapes(t *testing.T) {
	doc := `<http://e/s> <http://e/p> "é\U0001F600" .`
	g, _, err := ParseTurtle(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(Triple{IRI("http://e/s"), IRI("http://e/p"), Literal("é😀")}) {
		t.Errorf("unicode escapes not decoded: %v", g.Triples())
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	doc := `@prefix ex: <http://e/> .
ex:s ex:p ex:o ; .`
	g, _, err := ParseTurtle(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
}

func TestNamespaceExpandShrink(t *testing.T) {
	ns := NewNamespaces()
	ns.Bind("prov", "http://www.w3.org/ns/prov#")
	ns.Bind("provio", "https://github.com/hpc-io/prov-io#")

	iri, ok := ns.Expand("prov:Entity")
	if !ok || iri != "http://www.w3.org/ns/prov#Entity" {
		t.Errorf("Expand = %q, %v", iri, ok)
	}
	if _, ok := ns.Expand("nope:Entity"); ok {
		t.Error("Expand succeeded for unbound prefix")
	}
	if _, ok := ns.Expand("noColon"); ok {
		t.Error("Expand succeeded without colon")
	}

	c, ok := ns.Shrink("http://www.w3.org/ns/prov#wasDerivedFrom")
	if !ok || c != "prov:wasDerivedFrom" {
		t.Errorf("Shrink = %q, %v", c, ok)
	}
	if _, ok := ns.Shrink("http://other.org/x"); ok {
		t.Error("Shrink matched unrelated IRI")
	}
	// Local names with characters outside PN_LOCAL must not shrink.
	if _, ok := ns.Shrink("http://www.w3.org/ns/prov#a b"); ok {
		t.Error("Shrink produced invalid local name")
	}
}

func TestNamespacesLongestMatch(t *testing.T) {
	ns := NewNamespaces()
	ns.Bind("e", "http://e/")
	ns.Bind("ex", "http://e/x/")
	c, ok := ns.Shrink("http://e/x/y")
	if !ok || c != "ex:y" {
		t.Errorf("Shrink = %q, want ex:y", c)
	}
}

func TestNamespacesClonePrefixes(t *testing.T) {
	ns := NewNamespaces()
	ns.Bind("a", "http://a/")
	c := ns.Clone()
	c.Bind("b", "http://b/")
	if len(ns.Prefixes()) != 1 || len(c.Prefixes()) != 2 {
		t.Errorf("clone not independent: %v vs %v", ns.Prefixes(), c.Prefixes())
	}
}

func TestMustExpandPanics(t *testing.T) {
	ns := NewNamespaces()
	defer func() {
		if recover() == nil {
			t.Error("MustExpand did not panic on unbound prefix")
		}
	}()
	ns.MustExpand("zzz:x")
}
