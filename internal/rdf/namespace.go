package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Namespaces maps prefixes to IRI bases, used for CURIE expansion and
// compact Turtle serialization.
type Namespaces struct {
	prefixToBase map[string]string
}

// NewNamespaces returns an empty prefix table.
func NewNamespaces() *Namespaces {
	return &Namespaces{prefixToBase: make(map[string]string)}
}

// Bind associates prefix with base. Rebinding a prefix replaces it.
func (ns *Namespaces) Bind(prefix, base string) {
	ns.prefixToBase[prefix] = base
}

// Base returns the IRI base bound to prefix.
func (ns *Namespaces) Base(prefix string) (string, bool) {
	b, ok := ns.prefixToBase[prefix]
	return b, ok
}

// Expand resolves a CURIE like "prov:Entity" to a full IRI. If the input has
// no bound prefix it is returned unchanged with ok=false.
func (ns *Namespaces) Expand(curie string) (string, bool) {
	i := strings.Index(curie, ":")
	if i < 0 {
		return curie, false
	}
	base, ok := ns.prefixToBase[curie[:i]]
	if !ok {
		return curie, false
	}
	return base + curie[i+1:], true
}

// Shrink compacts a full IRI into a CURIE using the longest matching base.
// Returns the original IRI with ok=false when no prefix matches or the local
// part is not a valid Turtle PN_LOCAL name.
func (ns *Namespaces) Shrink(iri string) (string, bool) {
	bestPrefix, bestBase := "", ""
	for p, b := range ns.prefixToBase {
		if strings.HasPrefix(iri, b) && len(b) > len(bestBase) {
			bestPrefix, bestBase = p, b
		}
	}
	if bestBase == "" {
		return iri, false
	}
	local := iri[len(bestBase):]
	if !validLocalName(local) {
		return iri, false
	}
	return bestPrefix + ":" + local, true
}

// validLocalName reports whether s can appear as the local part of a Turtle
// prefixed name without escaping. We accept a conservative subset.
func validLocalName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			// digits allowed anywhere in our conservative subset
		case r == '-' || r == '.':
			if i == 0 || i == len(s)-1 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Prefixes returns the bound prefixes in sorted order.
func (ns *Namespaces) Prefixes() []string {
	out := make([]string, 0, len(ns.prefixToBase))
	for p := range ns.prefixToBase {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Clone returns a copy of the prefix table.
func (ns *Namespaces) Clone() *Namespaces {
	c := NewNamespaces()
	for p, b := range ns.prefixToBase {
		c.prefixToBase[p] = b
	}
	return c
}

// MustExpand is Expand but panics when the prefix is unbound. It is intended
// for package-internal constant tables where an unbound prefix is a bug.
func (ns *Namespaces) MustExpand(curie string) string {
	iri, ok := ns.Expand(curie)
	if !ok {
		panic(fmt.Sprintf("rdf: unbound prefix in %q", curie))
	}
	return iri
}
