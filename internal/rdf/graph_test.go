package rdf

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func tr(s, p, o string) Triple {
	return Triple{IRI("http://e/" + s), IRI("http://e/" + p), IRI("http://e/" + o)}
}

func TestGraphAddHasLen(t *testing.T) {
	g := NewGraph()
	if g.Len() != 0 {
		t.Fatalf("empty graph Len = %d", g.Len())
	}
	if !g.Add(tr("s", "p", "o")) {
		t.Fatal("first Add returned false")
	}
	if g.Add(tr("s", "p", "o")) {
		t.Fatal("duplicate Add returned true")
	}
	if !g.Has(tr("s", "p", "o")) {
		t.Fatal("Has missed inserted triple")
	}
	if g.Has(tr("s", "p", "x")) {
		t.Fatal("Has found absent triple")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestGraphRejectsInvalid(t *testing.T) {
	g := NewGraph()
	if g.Add(Triple{Literal("x"), IRI("p"), IRI("o")}) {
		t.Error("Add accepted literal subject")
	}
	if g.Len() != 0 {
		t.Error("invalid triple changed size")
	}
}

func TestGraphRemove(t *testing.T) {
	g := NewGraph()
	g.Add(tr("s", "p", "o"))
	g.Add(tr("s", "p", "o2"))
	if !g.Remove(tr("s", "p", "o")) {
		t.Fatal("Remove returned false for present triple")
	}
	if g.Remove(tr("s", "p", "o")) {
		t.Fatal("Remove returned true for absent triple")
	}
	if g.Has(tr("s", "p", "o")) {
		t.Fatal("removed triple still present")
	}
	if !g.Has(tr("s", "p", "o2")) {
		t.Fatal("sibling triple lost")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	// Removing with never-seen terms must not panic and returns false.
	if g.Remove(tr("zz", "zz", "zz")) {
		t.Fatal("Remove of unknown terms returned true")
	}
}

func TestGraphFindPatterns(t *testing.T) {
	g := NewGraph()
	g.Add(tr("s1", "p1", "o1"))
	g.Add(tr("s1", "p1", "o2"))
	g.Add(tr("s1", "p2", "o1"))
	g.Add(tr("s2", "p1", "o1"))

	s1 := IRI("http://e/s1")
	p1 := IRI("http://e/p1")
	o1 := IRI("http://e/o1")

	cases := []struct {
		name    string
		s, p, o *Term
		want    int
	}{
		{"all", nil, nil, nil, 4},
		{"s", &s1, nil, nil, 3},
		{"p", nil, &p1, nil, 3},
		{"o", nil, nil, &o1, 3},
		{"sp", &s1, &p1, nil, 2},
		{"so", &s1, nil, &o1, 2},
		{"po", nil, &p1, &o1, 2},
		{"spo", &s1, &p1, &o1, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := g.Find(c.s, c.p, c.o)
			if len(got) != c.want {
				t.Errorf("Find returned %d triples, want %d: %v", len(got), c.want, got)
			}
			for _, m := range got {
				if !g.Has(m) {
					t.Errorf("Find returned absent triple %v", m)
				}
			}
		})
	}
}

func TestGraphFindUnknownTerm(t *testing.T) {
	g := NewGraph()
	g.Add(tr("s", "p", "o"))
	unknown := IRI("http://e/none")
	if got := g.Find(&unknown, nil, nil); len(got) != 0 {
		t.Errorf("Find with unknown subject returned %v", got)
	}
	if got := g.Find(nil, &unknown, nil); len(got) != 0 {
		t.Errorf("Find with unknown predicate returned %v", got)
	}
	if got := g.Find(nil, nil, &unknown); len(got) != 0 {
		t.Errorf("Find with unknown object returned %v", got)
	}
}

func TestForEachMatchEarlyStop(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 10; i++ {
		g.Add(tr("s", "p", fmt.Sprintf("o%d", i)))
	}
	n := 0
	g.ForEachMatch(nil, nil, nil, func(Triple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d, want 3", n)
	}
}

func TestSortedTriplesDeterministic(t *testing.T) {
	g := NewGraph()
	g.Add(tr("b", "p", "o"))
	g.Add(tr("a", "q", "o"))
	g.Add(tr("a", "p", "o"))
	g.Add(tr("a", "p", "n"))
	ts := g.SortedTriples()
	want := []Triple{tr("a", "p", "n"), tr("a", "p", "o"), tr("a", "q", "o"), tr("b", "p", "o")}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("position %d: got %v, want %v", i, ts[i], want[i])
		}
	}
}

func TestSubjects(t *testing.T) {
	g := NewGraph()
	g.Add(tr("b", "p", "o"))
	g.Add(tr("a", "p", "o"))
	g.Add(tr("a", "q", "o"))
	subs := g.Subjects()
	if len(subs) != 2 {
		t.Fatalf("Subjects = %v, want 2 entries", subs)
	}
	if subs[0].Value != "http://e/a" || subs[1].Value != "http://e/b" {
		t.Errorf("Subjects not sorted: %v", subs)
	}
}

func TestMergeDeduplicates(t *testing.T) {
	a, b := NewGraph(), NewGraph()
	a.Add(tr("s", "p", "o"))
	a.Add(tr("s", "p", "o2"))
	b.Add(tr("s", "p", "o"))
	b.Add(tr("x", "y", "z"))
	added := a.Merge(b)
	if added != 1 {
		t.Errorf("Merge added %d, want 1", added)
	}
	if a.Len() != 3 {
		t.Errorf("merged Len = %d, want 3", a.Len())
	}
}

func TestClone(t *testing.T) {
	g := NewGraph()
	g.Add(tr("s", "p", "o"))
	c := g.Clone()
	c.Add(tr("s2", "p", "o"))
	if g.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone not independent: g=%d c=%d", g.Len(), c.Len())
	}
}

func TestTermCount(t *testing.T) {
	g := NewGraph()
	g.Add(tr("s", "p", "o"))
	g.Add(tr("s", "p", "o2"))
	if got := g.TermCount(); got != 4 {
		t.Errorf("TermCount = %d, want 4 (s, p, o, o2)", got)
	}
}

func TestGraphConcurrentAdd(t *testing.T) {
	g := NewGraph()
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Add(tr(fmt.Sprintf("s%d", w), "p", fmt.Sprintf("o%d", i)))
				g.Has(tr("s0", "p", "o0"))
				g.Find(nil, nil, nil)
			}
		}(w)
	}
	wg.Wait()
	if g.Len() != workers*per {
		t.Errorf("Len = %d, want %d", g.Len(), workers*per)
	}
}

// Property: for any sequence of triples, Len equals the number of distinct
// valid triples added, and Has holds for each of them.
func TestGraphAddLenProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		g := NewGraph()
		seen := make(map[Triple]bool)
		for _, v := range raw {
			x := tr(fmt.Sprintf("s%d", v%5), fmt.Sprintf("p%d", (v/5)%3), fmt.Sprintf("o%d", (v/15)%4))
			g.Add(x)
			seen[x] = true
		}
		if g.Len() != len(seen) {
			return false
		}
		for x := range seen {
			if !g.Has(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Remove after Add restores the original size and membership.
func TestGraphAddRemoveProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		g := NewGraph()
		var ts []Triple
		for _, v := range raw {
			x := tr(fmt.Sprintf("s%d", v%7), "p", fmt.Sprintf("o%d", v%11))
			if g.Add(x) {
				ts = append(ts, x)
			}
		}
		for _, x := range ts {
			if !g.Remove(x) {
				return false
			}
		}
		return g.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRemoveFromSharedPredicateObjectList(t *testing.T) {
	// Several subjects share one (p, o) pair: the POS index keeps them in
	// one list; removing a middle entry must not disturb the others.
	g := NewGraph()
	for i := 0; i < 5; i++ {
		g.Add(tr(fmt.Sprintf("s%d", i), "type", "File"))
	}
	if !g.Remove(tr("s2", "type", "File")) {
		t.Fatal("remove failed")
	}
	p, o := IRI("http://e/type"), IRI("http://e/File")
	got := g.Find(nil, &p, &o)
	if len(got) != 4 {
		t.Fatalf("POS list = %d entries, want 4", len(got))
	}
	for _, x := range got {
		if x.S == IRI("http://e/s2") {
			t.Error("removed subject still listed")
		}
	}
	// OSP side as well.
	if n := len(g.Find(nil, nil, &o)); n != 4 {
		t.Errorf("OSP lookup = %d, want 4", n)
	}
}

func TestMassSameTypeInsertLinear(t *testing.T) {
	// 50k nodes of the same class exercise the long shared POS list; this
	// must complete quickly (appends, not per-insert scans).
	g := NewGraph()
	p, o := IRI("http://e/type"), IRI("http://e/File")
	for i := 0; i < 50000; i++ {
		g.Add(Triple{S: IRI(fmt.Sprintf("http://e/n%d", i)), P: p, O: o})
	}
	if g.Len() != 50000 {
		t.Fatalf("Len = %d", g.Len())
	}
	n := 0
	g.ForEachMatch(nil, &p, &o, func(Triple) bool { n++; return true })
	if n != 50000 {
		t.Errorf("POS iteration = %d", n)
	}
}
