package rdf

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func idTestGraph() *Graph {
	g := NewGraph()
	for i := 0; i < 8; i++ {
		g.Add(Triple{
			S: IRI(fmt.Sprintf("http://e/s%d", i%4)),
			P: IRI(fmt.Sprintf("http://e/p%d", i%2)),
			O: Integer(int64(i)),
		})
	}
	return g
}

func TestTermIDRoundTrip(t *testing.T) {
	g := idTestGraph()
	term := IRI("http://e/s1")
	id, ok := g.TermID(term)
	if !ok {
		t.Fatal("interned term has no ID")
	}
	if got := g.TermOf(id); got != term {
		t.Errorf("TermOf(TermID(%v)) = %v", term, got)
	}
	if _, ok := g.TermID(IRI("http://e/absent")); ok {
		t.Error("absent term reported as interned")
	}
	if got := g.TermOf(NoID); !got.IsZero() {
		t.Errorf("TermOf(NoID) = %v, want zero", got)
	}
	if got := g.TermOf(ID(g.TermCount())); !got.IsZero() {
		t.Errorf("TermOf(out of range) = %v, want zero", got)
	}
}

// Property: ForEachMatchIDs agrees with ForEachMatch on every pattern shape.
func TestForEachMatchIDsAgreesWithTerms(t *testing.T) {
	f := func(raw []uint8, shape uint8) bool {
		g := NewGraph()
		for _, v := range raw {
			g.Add(Triple{
				S: IRI(fmt.Sprintf("http://e/s%d", v%5)),
				P: IRI(fmt.Sprintf("http://e/p%d", (v/5)%3)),
				O: IRI(fmt.Sprintf("http://e/o%d", (v/15)%5)),
			})
		}
		sT, pT, oT := IRI("http://e/s0"), IRI("http://e/p0"), IRI("http://e/o0")
		var sp, pp, op *Term
		sid, pid, oid := NoID, NoID, NoID
		// An absent term has no ID; an out-of-range ID matches nothing,
		// mirroring ForEachMatch's early return on a failed lookup.
		idOrMiss := func(t Term) ID {
			if id, ok := g.TermID(t); ok {
				return id
			}
			return ID(g.TermCount())
		}
		if shape&1 != 0 {
			sp = &sT
			sid = idOrMiss(sT)
		}
		if shape&2 != 0 {
			pp = &pT
			pid = idOrMiss(pT)
		}
		if shape&4 != 0 {
			op = &oT
			oid = idOrMiss(oT)
		}
		want := map[Triple]bool{}
		g.ForEachMatch(sp, pp, op, func(tr Triple) bool {
			want[tr] = true
			return true
		})
		got := map[Triple]bool{}
		n := 0
		g.ForEachMatchIDs(sid, pid, oid, func(s, p, o ID) bool {
			got[Triple{S: g.TermOf(s), P: g.TermOf(p), O: g.TermOf(o)}] = true
			n++
			return true
		})
		if n != len(want) || len(got) != len(want) {
			return false
		}
		for tr := range want {
			if !got[tr] {
				return false
			}
		}
		if g.CountMatchIDs(sid, pid, oid) != len(want) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestCountMatchIDsShapes(t *testing.T) {
	g := idTestGraph()
	s0, _ := g.TermID(IRI("http://e/s0"))
	p0, _ := g.TermID(IRI("http://e/p0"))
	o0, _ := g.TermID(Integer(0))
	cases := []struct {
		s, p, o ID
		want    int
	}{
		{NoID, NoID, NoID, g.Len()},
		{s0, NoID, NoID, len(g.Find(IRI("http://e/s0").Ptr(), nil, nil))},
		{NoID, p0, NoID, len(g.Find(nil, IRI("http://e/p0").Ptr(), nil))},
		{NoID, NoID, o0, len(g.Find(nil, nil, Integer(0).Ptr()))},
		{s0, p0, NoID, len(g.Find(IRI("http://e/s0").Ptr(), IRI("http://e/p0").Ptr(), nil))},
		{s0, p0, o0, 1},
		{NoID, NoID, ID(1 << 30), 0},
	}
	for i, c := range cases {
		if got := g.CountMatchIDs(c.s, c.p, c.o); got != c.want {
			t.Errorf("case %d: CountMatchIDs = %d, want %d", i, got, c.want)
		}
	}
}

func TestPredStatsMaintained(t *testing.T) {
	g := NewGraph()
	p := IRI("http://e/p")
	add := func(s, o string) { g.Add(Triple{S: IRI(s), P: p, O: IRI(o)}) }
	add("http://e/a", "http://e/x")
	add("http://e/a", "http://e/y")
	add("http://e/b", "http://e/x")
	pid, _ := g.TermID(p)
	if tr, su, ob := g.PredStats(pid); tr != 3 || su != 2 || ob != 2 {
		t.Fatalf("PredStats = (%d,%d,%d), want (3,2,2)", tr, su, ob)
	}
	// Duplicate add changes nothing.
	add("http://e/a", "http://e/x")
	if tr, su, ob := g.PredStats(pid); tr != 3 || su != 2 || ob != 2 {
		t.Fatalf("after dup add PredStats = (%d,%d,%d), want (3,2,2)", tr, su, ob)
	}
	g.Remove(Triple{S: IRI("http://e/a"), P: p, O: IRI("http://e/y")})
	if tr, su, ob := g.PredStats(pid); tr != 2 || su != 2 || ob != 1 {
		t.Fatalf("after remove PredStats = (%d,%d,%d), want (2,2,1)", tr, su, ob)
	}
	g.Remove(Triple{S: IRI("http://e/a"), P: p, O: IRI("http://e/x")})
	g.Remove(Triple{S: IRI("http://e/b"), P: p, O: IRI("http://e/x")})
	if tr, su, ob := g.PredStats(pid); tr != 0 || su != 0 || ob != 0 {
		t.Fatalf("after removing all PredStats = (%d,%d,%d), want zeros", tr, su, ob)
	}
}

func TestIndexStats(t *testing.T) {
	g := idTestGraph()
	su, pr, ob := g.IndexStats()
	if su != 4 || pr != 2 || ob != 8 {
		t.Errorf("IndexStats = (%d,%d,%d), want (4,2,8)", su, pr, ob)
	}
}

// Regression: g.Merge(g) used to deadlock — ForEachMatch held the read lock
// while Add waited on the write lock of the same mutex. Self-merge must be a
// no-op.
func TestMergeSelfIsNoOp(t *testing.T) {
	g := idTestGraph()
	before := g.Len()
	done := make(chan int, 1)
	go func() { done <- g.Merge(g) }()
	select {
	case n := <-done:
		if n != 0 {
			t.Errorf("self-merge added %d triples, want 0", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("self-merge deadlocked")
	}
	if g.Len() != before {
		t.Errorf("self-merge changed size: %d -> %d", before, g.Len())
	}
}
