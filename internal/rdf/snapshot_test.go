package rdf

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// snapRandGraph builds a graph of n random triples drawn from a small
// vocabulary (lots of shared subjects/predicates/objects so every index
// shape — inline, spilled, shared posting lists — gets exercised).
func snapRandGraph(rng *rand.Rand, n int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.Add(tr(
			fmt.Sprintf("s%d", rng.Intn(12)),
			fmt.Sprintf("p%d", rng.Intn(4)),
			fmt.Sprintf("o%d", rng.Intn(9)),
		))
	}
	return g
}

// idsOf collects a pattern enumeration into a sorted-free slice of refs.
func idsOf(fe func(func(s, p, o ID) bool)) []tripleRef {
	var out []tripleRef
	fe(func(s, p, o ID) bool {
		out = append(out, tripleRef{s, p, o})
		return true
	})
	return out
}

// multiset turns refs into a count map (enumeration order differs between
// the live graph's map-walk and the snapshot's insertion-order walk).
func multiset(refs []tripleRef) map[tripleRef]int {
	m := make(map[tripleRef]int, len(refs))
	for _, r := range refs {
		m[r]++
	}
	return m
}

func multisetEq(a, b []tripleRef) bool {
	if len(a) != len(b) {
		return false
	}
	ma, mb := multiset(a), multiset(b)
	if len(ma) != len(mb) {
		return false
	}
	for k, v := range ma {
		if mb[k] != v {
			return false
		}
	}
	return true
}

// snapPatterns enumerates every bound/wildcard combination over the test
// vocabulary, including IDs that exist and the NoID wildcard.
func snapPatterns(g *Graph) [][3]ID {
	var ids []ID
	ids = append(ids, NoID)
	for _, name := range []string{"s0", "s5", "p0", "p2", "o0", "o7"} {
		if id, ok := g.TermID(IRI("http://e/" + name)); ok {
			ids = append(ids, id)
		}
	}
	var pats [][3]ID
	for _, s := range ids {
		for _, p := range ids {
			for _, o := range ids {
				pats = append(pats, [3]ID{s, p, o})
			}
		}
	}
	return pats
}

// TestSnapshotMatchesGraph: every pattern probe (enumeration and count)
// answers identically from the snapshot and from the live locked graph.
func TestSnapshotMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 20; iter++ {
		g := snapRandGraph(rng, 5+rng.Intn(300))
		if iter%3 == 1 {
			// Exercise the post-Remove rebuild path too.
			for _, tp := range g.Triples()[:g.Len()/3] {
				g.Remove(tp)
			}
		}
		snap := g.Snapshot()
		if snap.Len() != g.Len() {
			t.Fatalf("iter %d: snapshot Len = %d, graph Len = %d", iter, snap.Len(), g.Len())
		}
		for _, pat := range snapPatterns(g) {
			s, p, o := pat[0], pat[1], pat[2]
			got := idsOf(func(fn func(s, p, o ID) bool) { snap.ForEachMatchIDs(s, p, o, fn) })
			want := idsOf(func(fn func(s, p, o ID) bool) { g.ForEachMatchIDs(s, p, o, fn) })
			if !multisetEq(got, want) {
				t.Fatalf("iter %d pattern (%v %v %v): snapshot %d rows, graph %d rows",
					iter, s, p, o, len(got), len(want))
			}
			if gc, wc := snap.CountMatchIDs(s, p, o), len(want); gc != wc {
				t.Fatalf("iter %d pattern (%v %v %v): snapshot count %d, want %d", iter, s, p, o, gc, wc)
			}
			if p != NoID && s == NoID && o == NoID {
				t1, s1, o1 := snap.PredStats(p)
				t2, s2, o2 := g.PredStats(p)
				if t1 != t2 || s1 != s2 || o1 != o2 {
					t.Fatalf("iter %d PredStats(%v): snapshot (%d,%d,%d) graph (%d,%d,%d)",
						iter, p, t1, s1, o1, t2, s2, o2)
				}
			}
		}
		s1, p1, o1 := snap.IndexStats()
		s2, p2, o2 := g.IndexStats()
		if s1 != s2 || p1 != p2 || o1 != o2 {
			t.Fatalf("iter %d IndexStats: snapshot (%d,%d,%d) graph (%d,%d,%d)", iter, s1, p1, o1, s2, p2, o2)
		}
	}
}

// TestSnapshotImmutable: mutations after capture are invisible to the
// snapshot, visible to the next one, and removal forces a correct rebuild.
func TestSnapshotImmutable(t *testing.T) {
	g := NewGraph()
	g.Add(tr("a", "p", "b"))
	g.Add(tr("b", "p", "c"))
	s1 := g.Snapshot()
	if s1.Len() != 2 {
		t.Fatalf("s1 Len = %d, want 2", s1.Len())
	}
	// Build s1's index before extending, so the eager-extension path runs.
	if s1.CountMatchIDs(NoID, mustID(t, g, "p"), NoID) != 2 {
		t.Fatal("s1 predicate count wrong")
	}

	g.Add(tr("c", "p", "d"))
	g.Add(tr("a", "q", "e"))
	if s1.Len() != 2 {
		t.Fatalf("s1 grew to %d after Add", s1.Len())
	}
	s2 := g.Snapshot()
	if s2.Len() != 4 {
		t.Fatalf("s2 Len = %d, want 4", s2.Len())
	}
	if s1.CountMatchIDs(NoID, mustID(t, g, "p"), NoID) != 2 {
		t.Fatal("s1 changed after graph mutation")
	}
	if s2.CountMatchIDs(NoID, mustID(t, g, "p"), NoID) != 3 {
		t.Fatal("s2 missed extension delta")
	}
	// The q term was interned after s1: invisible there, visible in s2.
	if _, ok := s1.TermID(IRI("http://e/q")); ok {
		t.Fatal("s1 sees term interned after its capture")
	}
	if _, ok := s2.TermID(IRI("http://e/q")); !ok {
		t.Fatal("s2 missing its own term")
	}

	g.Remove(tr("b", "p", "c"))
	s3 := g.Snapshot()
	if s3.Len() != 3 {
		t.Fatalf("s3 Len = %d, want 3 after Remove", s3.Len())
	}
	if s2.Len() != 4 {
		t.Fatal("s2 changed after Remove")
	}
	// Remove + re-add: the log holds two surviving entries for the triple;
	// the snapshot must deduplicate.
	g.Add(tr("b", "p", "c"))
	s4 := g.Snapshot()
	if s4.Len() != 4 || s4.CountMatchIDs(NoID, NoID, NoID) != 4 {
		t.Fatalf("s4 Len = %d, want 4 after re-add", s4.Len())
	}
}

func mustID(t *testing.T, g *Graph, name string) ID {
	t.Helper()
	id, ok := g.TermID(IRI("http://e/" + name))
	if !ok {
		t.Fatalf("term %s not interned", name)
	}
	return id
}

// TestSnapshotCached: quiescent graphs hand out the identical snapshot;
// appends produce a new one.
func TestSnapshotCached(t *testing.T) {
	g := NewGraph()
	g.Add(tr("a", "p", "b"))
	s1 := g.Snapshot()
	if s2 := g.Snapshot(); s2 != s1 {
		t.Fatal("quiescent Snapshot() returned a new view")
	}
	g.Add(tr("a", "p", "c"))
	if s3 := g.Snapshot(); s3 == s1 {
		t.Fatal("Snapshot() after Add returned the stale view")
	}
}

// TestSnapshotScanRangePartition: concatenating ScanRange over any chunking
// of [0, ScanLen) reproduces ForEachMatchIDs exactly, in order — the
// property morsel-driven execution depends on.
func TestSnapshotScanRangePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 10; iter++ {
		g := snapRandGraph(rng, 50+rng.Intn(400))
		snap := g.Snapshot()
		for _, pat := range snapPatterns(g) {
			s, p, o := pat[0], pat[1], pat[2]
			full := idsOf(func(fn func(s, p, o ID) bool) { snap.ForEachMatchIDs(s, p, o, fn) })
			n := snap.ScanLen(s, p, o)
			if n < len(full) {
				t.Fatalf("ScanLen(%v %v %v) = %d < %d emitted rows", s, p, o, n, len(full))
			}
			chunk := 1 + rng.Intn(7)
			var cat []tripleRef
			for lo := 0; lo < n; lo += chunk {
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				snap.ScanRange(s, p, o, lo, hi, func(si, pi, oi ID) bool {
					cat = append(cat, tripleRef{si, pi, oi})
					return true
				})
			}
			if len(cat) != len(full) {
				t.Fatalf("pattern (%v %v %v): chunked scan %d rows, full scan %d", s, p, o, len(cat), len(full))
			}
			for i := range cat {
				if cat[i] != full[i] {
					t.Fatalf("pattern (%v %v %v): row %d differs: chunked %v, full %v", s, p, o, i, cat[i], full[i])
				}
			}
		}
	}
}

// TestForEachMatchReentrant: a ForEachMatch callback may mutate the graph —
// the former deadlock (RLock held across the callback) is gone, and the
// iteration still sees exactly the pre-mutation triples.
func TestForEachMatchReentrant(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 10; i++ {
		g.Add(tr(fmt.Sprintf("s%d", i), "p", "o"))
	}
	seen := 0
	g.ForEachMatch(nil, nil, nil, func(x Triple) bool {
		seen++
		g.Add(tr(fmt.Sprintf("new%d", seen), "p", "o")) // would deadlock before
		g.Remove(x)
		return true
	})
	if seen != 10 {
		t.Fatalf("iteration saw %d triples, want the 10 pre-mutation ones", seen)
	}
	if g.Len() != 10 {
		t.Fatalf("graph Len = %d after callback mutations, want 10", g.Len())
	}
}

// TestSnapshotConcurrentIngest: snapshots taken while writers append always
// hold a consistent prefix — Len matches watermark-visible triples and every
// scan agrees with the pinned refs.
func TestSnapshotConcurrentIngest(t *testing.T) {
	g := NewGraph()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				g.Add(tr(fmt.Sprintf("w%d-s%d", w, i), fmt.Sprintf("p%d", i%3), fmt.Sprintf("o%d", i%17)))
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		snap := g.Snapshot()
		n := 0
		snap.ForEachMatchIDs(NoID, NoID, NoID, func(s, p, o ID) bool {
			if int(s) >= snap.TermCount() || int(p) >= snap.TermCount() || int(o) >= snap.TermCount() {
				t.Errorf("snapshot emitted ID beyond its term table")
				return false
			}
			n++
			return true
		})
		if n != snap.Len() {
			t.Fatalf("full scan %d rows, Len %d", n, snap.Len())
		}
		if snap.Watermark() > g.LogLen() {
			t.Fatalf("watermark %d beyond log %d", snap.Watermark(), g.LogLen())
		}
	}
	close(stop)
	wg.Wait()
}
