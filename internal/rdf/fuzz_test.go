package rdf

import (
	"strings"
	"testing"
)

// FuzzParseTurtle shakes the Turtle parser with arbitrary documents: it must
// never panic, and any document it accepts must re-serialize and re-parse to
// the same triple count (parse→write→parse fixpoint).
func FuzzParseTurtle(f *testing.F) {
	f.Add("@prefix ex: <http://e/> .\nex:s ex:p ex:o .")
	f.Add(`<http://e/s> <http://e/p> "lit"@en .`)
	f.Add(`<http://e/s> <http://e/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .`)
	f.Add("@prefix ex: <http://e/> .\nex:s ex:p ex:a , ex:b ; ex:q 3.5 .")
	f.Add("_:b0 a <http://e/C> .")
	f.Add("# just a comment\n")
	f.Add("@prefix : <http://e/> .\n:s :p true .")
	f.Fuzz(func(t *testing.T, doc string) {
		g, ns, err := ParseTurtle(strings.NewReader(doc))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var sb strings.Builder
		if err := WriteTurtle(&sb, g, ns); err != nil {
			t.Fatalf("serialize accepted graph: %v", err)
		}
		g2, _, err := ParseTurtle(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("reparse of own output failed: %v\ndoc: %q\nout: %q", err, doc, sb.String())
		}
		if g2.Len() != g.Len() {
			t.Fatalf("fixpoint violated: %d -> %d triples\ndoc: %q", g.Len(), g2.Len(), doc)
		}
	})
}
