package rdf

import (
	"sync"
	"sync/atomic"
)

// Snapshot is an immutable read view of a Graph, pinned at an insertion-log
// watermark. All scan methods run lock-free: a snapshot holds its own term
// table, triple list, and (lazily built) adjacency index, none of which the
// live graph ever mutates, so a long query touches the graph mutex exactly
// once — in Graph.Snapshot — instead of once per triple-pattern probe, and a
// scan callback may freely call Add/Remove/Flush on the underlying graph
// without deadlocking (the mutations are simply not visible to the snapshot).
//
// This is the reader half of the capture-vs-query split: writers keep
// appending under the graph lock while queries run against a pinned prefix
// of the insertion log. Snapshots are cheap when the graph is quiescent
// (the last one is cached and reused until the watermark moves) and
// incremental under ingest (a new snapshot extends the previous one's index
// with the log delta, structurally sharing everything untouched).
type Snapshot struct {
	dict  *termDict
	terms []Term
	// refs is the pinned triple list: the surviving insertion-log prefix at
	// the watermark, one entry per present triple (deduplicated on the rare
	// rebuild-after-Remove path). It is the morsel domain of full scans and
	// the source the index is built from.
	refs        []tripleRef
	watermark   int
	removeEpoch uint64

	// idx is the lazily built adjacency index. Full-graph scans never need
	// it (they walk refs); pattern probes build it on first use. When the
	// previous snapshot's index was already built, Graph.Snapshot extends it
	// eagerly instead, sharing every untouched node.
	idxMu sync.Mutex
	idx   atomic.Pointer[snapIndex]

	// memo caches derived results (query results, lineage closures) keyed by
	// an arbitrary string. A snapshot is immutable, so anything computed from
	// it stays valid for its whole lifetime; because Graph.Snapshot returns a
	// fresh Snapshot whenever the (watermark, removeEpoch) pair moves, the
	// memo dies with the snapshot on any Add or Remove — epoch-keyed
	// invalidation for free. Entries should be treated as read-only by every
	// consumer.
	memo sync.Map
}

// Memo returns the cached value stored under key, if any.
func (s *Snapshot) Memo(key string) (any, bool) { return s.memo.Load(key) }

// SetMemo caches a derived value under key for the snapshot's lifetime.
func (s *Snapshot) SetMemo(key string, v any) { s.memo.Store(key, v) }

// snapPO is one (predicate, object) adjacency entry of a subject.
type snapPO struct{ p, o termID }

// snapSO is one (subject, object) entry of a predicate's flat posting list.
type snapSO struct{ s, o termID }

// snapSubj is a subject's adjacency in a snapshot index. Slices are
// append-shared across snapshot generations: a newer snapshot may append
// past this snapshot's length into the same backing array (builds are
// serialized by Graph.snapMu), which never disturbs entries below it.
type snapSubj struct{ pairs []snapPO }

// snapSrc is an object's (subject, predicate) source list.
type snapSrc struct{ pairs []spair }

// snapPred is a predicate's index node: the flat (s, o) posting list that
// morsel partitioning ranges over, the o -> subjects map behind (? p o)
// probes, and the maintained cardinalities the query planner reads.
type snapPred struct {
	triples  int
	subjects int
	flat     []snapSO
	byObj    map[termID][]termID
}

// snapIndex is a snapshot's adjacency index. The maps are never mutated
// after publication; an extension copies the map headers (and the touched
// nodes) into fresh maps while sharing all untouched slices.
type snapIndex struct {
	spo map[termID]snapSubj
	pos map[termID]snapPred
	osp map[termID]snapSrc
}

// Snapshot returns an immutable read view of the graph pinned at the current
// insertion-log watermark. The view is internally cached: while no triples
// are added or removed, every call returns the same *Snapshot, and after
// appends the next call extends the cached view with just the log delta.
// After a Remove the view is rebuilt from the surviving log (removals are
// rare in provenance workloads; appends are the steady state).
//
// Unlike the Graph scan methods, Snapshot scans take no locks and their
// callbacks may mutate the underlying graph.
func (g *Graph) Snapshot() *Snapshot {
	g.mu.RLock()
	w, re := len(g.log), g.removeEpoch
	g.mu.RUnlock()
	if s := g.snap.Load(); s != nil && s.watermark == w && s.removeEpoch == re {
		return s
	}

	g.snapMu.Lock()
	defer g.snapMu.Unlock()
	base := g.snap.Load()

	g.mu.RLock()
	w, re = len(g.log), g.removeEpoch
	if base != nil && base.watermark == w && base.removeEpoch == re {
		g.mu.RUnlock()
		return base
	}
	incremental := base != nil && base.removeEpoch == re
	var delta []tripleRef
	var refs []tripleRef
	if incremental {
		// Entries below w in the log's backing array are immutable (the log
		// is append-only and reallocation abandons the old array), so the
		// sub-slice stays valid after the lock is dropped.
		delta = g.log[base.watermark:w]
	} else {
		refs = g.survivingRefsLocked()
	}
	g.mu.RUnlock()
	terms := g.dict.snapshot()

	ns := &Snapshot{dict: &g.dict, terms: terms, watermark: w, removeEpoch: re}
	if incremental {
		// Owned append: base.refs is never an alias of g.log, so growing it
		// (serialized by snapMu) cannot collide with concurrent Adds, and
		// base's readers only see their own length.
		ns.refs = append(base.refs, delta...)
		if bix := base.idx.Load(); bix != nil {
			ns.idx.Store(extendSnapIndex(bix, delta))
		}
	} else {
		ns.refs = refs
	}
	g.snap.Store(ns)
	return ns
}

// survivingRefsLocked returns the present triples in insertion-log order,
// deduplicated (a triple removed and re-added has two surviving log entries;
// the first is kept). Caller must hold g.mu. This is the O(graph) rebuild
// path taken only after a Remove invalidated the cached snapshot.
func (g *Graph) survivingRefsLocked() []tripleRef {
	out := make([]tripleRef, 0, g.size)
	seen := make(map[tripleRef]struct{}, g.size)
	for _, r := range g.log {
		if !g.hasLocked(r.s, r.p, r.o) {
			continue
		}
		if _, dup := seen[r]; dup {
			continue
		}
		seen[r] = struct{}{}
		out = append(out, r)
	}
	return out
}

// index returns the snapshot's adjacency index, building it from refs on
// first use. Full scans never call it.
func (s *Snapshot) index() *snapIndex {
	if ix := s.idx.Load(); ix != nil {
		return ix
	}
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if ix := s.idx.Load(); ix != nil {
		return ix
	}
	ix := &snapIndex{
		spo: make(map[termID]snapSubj),
		pos: make(map[termID]snapPred),
		osp: make(map[termID]snapSrc),
	}
	ix.insertAll(s.refs, nil)
	s.idx.Store(ix)
	return ix
}

// extendSnapIndex builds the index of base + delta, copying the top-level
// map headers and mutating only touched nodes; untouched posting lists are
// shared with base. Appends may write past base's slice lengths into shared
// backing arrays — safe because builds are serialized and base's readers are
// bounded by their own lengths.
func extendSnapIndex(base *snapIndex, delta []tripleRef) *snapIndex {
	ix := &snapIndex{
		spo: make(map[termID]snapSubj, len(base.spo)+len(delta)/4),
		pos: make(map[termID]snapPred, len(base.pos)),
		osp: make(map[termID]snapSrc, len(base.osp)+len(delta)/4),
	}
	for k, v := range base.spo {
		ix.spo[k] = v
	}
	for k, v := range base.pos {
		ix.pos[k] = v
	}
	for k, v := range base.osp {
		ix.osp[k] = v
	}
	// byObj maps are shared with base until first touch in this extension.
	touched := make(map[termID]bool, len(base.pos))
	ix.insertAll(delta, touched)
	return ix
}

// insertAll inserts refs into the index. touchedByObj tracks which
// predicates' byObj maps are already private to this build: nil means every
// node is private (from-scratch build), non-nil means byObj maps are shared
// with a base index and must be copied before the first mutation.
func (ix *snapIndex) insertAll(refs []tripleRef, touchedByObj map[termID]bool) {
	for _, r := range refs {
		sub := ix.spo[r.s]
		pNew := true
		for _, po := range sub.pairs {
			if po.p == r.p {
				pNew = false
				break
			}
		}
		sub.pairs = append(sub.pairs, snapPO{p: r.p, o: r.o})
		ix.spo[r.s] = sub

		pn, ok := ix.pos[r.p]
		if !ok {
			pn = snapPred{byObj: make(map[termID][]termID)}
			if touchedByObj != nil {
				touchedByObj[r.p] = true
			}
		} else if touchedByObj != nil && !touchedByObj[r.p] {
			cp := make(map[termID][]termID, len(pn.byObj)+1)
			for k, v := range pn.byObj {
				cp[k] = v
			}
			pn.byObj = cp
			touchedByObj[r.p] = true
		}
		pn.triples++
		if pNew {
			pn.subjects++
		}
		pn.flat = append(pn.flat, snapSO{s: r.s, o: r.o})
		pn.byObj[r.o] = append(pn.byObj[r.o], r.s)
		ix.pos[r.p] = pn

		src := ix.osp[r.o]
		src.pairs = append(src.pairs, spair{s: r.s, p: r.p})
		ix.osp[r.o] = src
	}
}

// ---- read API (mirrors the Graph ID-level API, lock-free) ----

// Len returns the number of triples in the snapshot.
func (s *Snapshot) Len() int { return len(s.refs) }

// Watermark returns the insertion-log position the snapshot is pinned at:
// every triple visible in the snapshot was appended at a log position below
// it.
func (s *Snapshot) Watermark() int { return s.watermark }

// RemoveEpoch returns the graph's remove epoch at pin time. Together with
// Watermark it identifies the exact graph state a snapshot (and anything
// memoized on it) was computed from.
func (s *Snapshot) RemoveEpoch() uint64 { return s.removeEpoch }

// TermCount returns the number of terms in the snapshot's term table.
func (s *Snapshot) TermCount() int { return len(s.terms) }

// TermOf returns the term interned under id, or the zero Term if id is
// outside the snapshot's term table (including NoID).
func (s *Snapshot) TermOf(id ID) Term {
	if int(id) >= len(s.terms) {
		return Term{}
	}
	return s.terms[id]
}

// TermID returns the snapshot-visible dictionary ID of t. Terms interned
// after the snapshot was taken report !ok: the snapshot is self-consistent.
func (s *Snapshot) TermID(t Term) (ID, bool) {
	id, ok := s.dict.lookup(t)
	if !ok || int(id) >= len(s.terms) {
		return 0, false
	}
	return id, true
}

// inRange reports whether the pattern IDs are answerable: NoID is the
// wildcard, any other ID beyond the term table matches nothing.
func (s *Snapshot) inRange(ids ...ID) bool {
	for _, id := range ids {
		if id != NoID && int(id) >= len(s.terms) {
			return false
		}
	}
	return true
}

// ForEachMatchIDs streams the dictionary IDs of all triples matching the
// pattern (NoID = wildcard) to fn; fn returning false stops early. Unlike
// Graph.ForEachMatchIDs no lock is held: fn may mutate the underlying graph.
// Enumeration order is deterministic for a given snapshot (insertion order
// within each index node), and identical to concatenating ScanRange over the
// full domain.
func (s *Snapshot) ForEachMatchIDs(sid, pid, oid ID, fn func(s, p, o ID) bool) {
	s.ScanRange(sid, pid, oid, 0, s.ScanLen(sid, pid, oid), fn)
}

// ForEachMatch streams all triples matching the pattern to fn, rehydrating
// terms from the snapshot's term table. A nil pointer matches any term.
func (s *Snapshot) ForEachMatch(sp, pp, op *Term, fn func(Triple) bool) {
	sid, pid, oid := NoID, NoID, NoID
	var ok bool
	if sp != nil {
		if sid, ok = s.TermID(*sp); !ok {
			return
		}
	}
	if pp != nil {
		if pid, ok = s.TermID(*pp); !ok {
			return
		}
	}
	if op != nil {
		if oid, ok = s.TermID(*op); !ok {
			return
		}
	}
	s.ForEachMatchIDs(sid, pid, oid, func(si, pi, oi ID) bool {
		return fn(Triple{S: s.terms[si], P: s.terms[pi], O: s.terms[oi]})
	})
}

// ScanLen returns the size of the pattern's morsel domain: the number of
// base index items a full enumeration of the pattern walks. Each item emits
// at most one triple, so [0, ScanLen) ranges partition the scan exactly —
// this is the domain the parallel executor splits into morsels.
func (s *Snapshot) ScanLen(sid, pid, oid ID) int {
	if !s.inRange(sid, pid, oid) {
		return 0
	}
	switch {
	case sid != NoID:
		ix := s.index()
		return len(ix.spo[sid].pairs)
	case pid != NoID:
		ix := s.index()
		pn, ok := ix.pos[pid]
		if !ok {
			return 0
		}
		if oid != NoID {
			return len(pn.byObj[oid])
		}
		return len(pn.flat)
	case oid != NoID:
		ix := s.index()
		return len(ix.osp[oid].pairs)
	default:
		return len(s.refs)
	}
}

// ScanRange enumerates the pattern over the base-item range [lo, hi) of its
// morsel domain (see ScanLen), emitting each matching triple to fn. It
// reports false iff fn stopped the scan. Items that fail the residual filter
// (a bound position the domain does not already discriminate on) emit
// nothing, so concatenating adjacent ranges reproduces the full scan.
func (s *Snapshot) ScanRange(sid, pid, oid ID, lo, hi int, fn func(s, p, o ID) bool) bool {
	if lo < 0 {
		lo = 0
	}
	if n := s.ScanLen(sid, pid, oid); hi > n {
		hi = n
	}
	if lo >= hi {
		return true
	}
	switch {
	case sid != NoID:
		for _, po := range s.index().spo[sid].pairs[lo:hi] {
			if pid != NoID && po.p != pid {
				continue
			}
			if oid != NoID && po.o != oid {
				continue
			}
			if !fn(sid, po.p, po.o) {
				return false
			}
		}
	case pid != NoID:
		pn := s.index().pos[pid]
		if oid != NoID {
			for _, si := range pn.byObj[oid][lo:hi] {
				if !fn(si, pid, oid) {
					return false
				}
			}
			return true
		}
		for _, so := range pn.flat[lo:hi] {
			if !fn(so.s, pid, so.o) {
				return false
			}
		}
	case oid != NoID:
		for _, pr := range s.index().osp[oid].pairs[lo:hi] {
			if !fn(pr.s, pr.p, oid) {
				return false
			}
		}
	default:
		for _, r := range s.refs[lo:hi] {
			if !fn(r.s, r.p, r.o) {
				return false
			}
		}
	}
	return true
}

// CountMatchIDs returns the exact number of triples matching the ID pattern
// (NoID = wildcard) — the same cardinality oracle as Graph.CountMatchIDs,
// answered from the snapshot's index without locks.
func (s *Snapshot) CountMatchIDs(sid, pid, oid ID) int {
	if !s.inRange(sid, pid, oid) {
		return 0
	}
	switch {
	case sid != NoID:
		pairs := s.index().spo[sid].pairs
		if pid == NoID && oid == NoID {
			return len(pairs)
		}
		c := 0
		for _, po := range pairs {
			if (pid == NoID || po.p == pid) && (oid == NoID || po.o == oid) {
				c++
			}
		}
		return c
	case pid != NoID:
		pn, ok := s.index().pos[pid]
		if !ok {
			return 0
		}
		if oid != NoID {
			return len(pn.byObj[oid])
		}
		return pn.triples
	case oid != NoID:
		return len(s.index().osp[oid].pairs)
	default:
		return len(s.refs)
	}
}

// PredStats returns the maintained cardinalities of predicate p in the
// snapshot: triple count and distinct subject/object counts.
func (s *Snapshot) PredStats(p ID) (triples, subjects, objects int) {
	if !s.inRange(p) || p == NoID {
		return 0, 0, 0
	}
	pn, ok := s.index().pos[p]
	if !ok {
		return 0, 0, 0
	}
	return pn.triples, pn.subjects, len(pn.byObj)
}

// IndexStats returns the snapshot's distinct subject, predicate, and object
// counts — the planner's global divisors.
func (s *Snapshot) IndexStats() (subjects, predicates, objects int) {
	ix := s.index()
	return len(ix.spo), len(ix.pos), len(ix.osp)
}
