package rdf

import (
	"sort"
	"sync"
)

// ID is the dictionary index of an interned term. IDs are stable for the
// lifetime of a graph: once a term is interned its ID never changes, and
// Remove does not un-intern terms. The zero ID is a valid term ID; the
// sentinel NoID never is.
//
// The ID-level API (TermID, TermOf, ForEachMatchIDs, CountMatchIDs) lets
// read-path consumers — the SPARQL executor, lineage reduction, statistics,
// DOT emission — stay in integer space end-to-end and rehydrate Terms only
// when materializing output.
type ID uint32

// NoID is the wildcard/absent sentinel of the ID-level API: as a pattern
// position it matches any term, as a register value it means "unbound".
const NoID ID = ^ID(0)

// termID is the internal alias kept for the storage layer.
type termID = ID

// Graph is an in-memory, dictionary-encoded RDF graph.
//
// Storage layout: the SPO index is a nested map and serves as the
// authoritative membership structure; the POS and OSP indexes store the
// third position in small slices, appended only after SPO has established
// the triple is new. This keeps per-triple memory near 200 bytes, which
// matters when a 4096-rank workload holds millions of triples across its
// per-process sub-graphs.
//
// A Graph is safe for concurrent use. In the PROV-IO architecture each
// process owns one sub-graph, but within a process many threads (simulated
// MPI ranks or OpenMP workers) may insert records concurrently.
type Graph struct {
	mu    sync.RWMutex
	dict  map[Term]termID
	terms []Term

	spo map[termID]map[termID]map[termID]struct{}
	pos map[termID]map[termID][]termID // p -> o -> subjects
	osp map[termID]map[termID][]termID // o -> s -> predicates

	// pstats maintains per-predicate cardinalities (triple count, distinct
	// subjects, distinct objects) incrementally on Add/Remove. The query
	// planner reads them through PredStats to order joins by estimated
	// result size instead of a static heuristic.
	pstats map[termID]*predStat

	// log records every successful Add in insertion order (12 bytes per
	// triple). It backs the delta cursor of the flush pipeline: a flusher
	// remembers the log position of its last flush and serializes only
	// TriplesSince(position) instead of the whole graph.
	log []tripleRef

	size int
}

// predStat is the per-predicate cardinality record behind PredStats.
type predStat struct {
	triples  int // triples with this predicate
	subjects int // distinct subjects among them
	objects  int // distinct objects among them
}

// tripleRef is one insertion-log entry: the dictionary IDs of an added
// triple.
type tripleRef struct{ s, p, o termID }

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		dict:   make(map[Term]termID),
		spo:    make(map[termID]map[termID]map[termID]struct{}),
		pos:    make(map[termID]map[termID][]termID),
		osp:    make(map[termID]map[termID][]termID),
		pstats: make(map[termID]*predStat),
	}
}

// intern returns the dictionary ID for t, adding it if new.
// Caller must hold g.mu for writing.
func (g *Graph) intern(t Term) termID {
	if id, ok := g.dict[t]; ok {
		return id
	}
	id := termID(len(g.terms))
	g.dict[t] = id
	g.terms = append(g.terms, t)
	return id
}

// lookup returns the ID for t and whether it is interned.
// Caller must hold g.mu (read or write).
func (g *Graph) lookup(t Term) (termID, bool) {
	id, ok := g.dict[t]
	return id, ok
}

// TermID returns the dictionary ID of t and whether t is interned. A term
// that was never added to the graph (in any triple position) has no ID.
func (g *Graph) TermID(t Term) (ID, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.lookup(t)
}

// TermOf returns the term interned under id, or the zero Term if id is out
// of range (including NoID).
func (g *Graph) TermOf(id ID) Term {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if int(id) >= len(g.terms) {
		return Term{}
	}
	return g.terms[id]
}

// appendList adds c to idx[a][b].
func appendList(idx map[termID]map[termID][]termID, a, b, c termID) {
	m2, ok := idx[a]
	if !ok {
		m2 = make(map[termID][]termID, 1)
		idx[a] = m2
	}
	m2[b] = append(m2[b], c)
}

// removeList deletes c from idx[a][b].
func removeList(idx map[termID]map[termID][]termID, a, b, c termID) {
	m2, ok := idx[a]
	if !ok {
		return
	}
	list := m2[b]
	for i, v := range list {
		if v == c {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(m2, b)
		if len(m2) == 0 {
			delete(idx, a)
		}
	} else {
		m2[b] = list
	}
}

// Add inserts a triple. It reports whether the triple was new.
// Invalid triples are rejected (returns false).
func (g *Graph) Add(t Triple) bool {
	if !t.Valid() {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	s, p, o := g.intern(t.S), g.intern(t.P), g.intern(t.O)
	m2, ok := g.spo[s]
	if !ok {
		m2 = make(map[termID]map[termID]struct{}, 1)
		g.spo[s] = m2
	}
	m3, ok := m2[p]
	if !ok {
		m3 = make(map[termID]struct{}, 1)
		m2[p] = m3
	}
	if _, dup := m3[o]; dup {
		return false
	}
	ps := g.pstats[p]
	if ps == nil {
		ps = &predStat{}
		g.pstats[p] = ps
	}
	ps.triples++
	if len(m3) == 0 {
		// First object under (s, p): s is a new distinct subject for p.
		ps.subjects++
	}
	if len(g.pos[p][o]) == 0 {
		// First subject under (p, o): o is a new distinct object for p.
		ps.objects++
	}
	m3[o] = struct{}{}
	appendList(g.pos, p, o, s)
	appendList(g.osp, o, s, p)
	g.log = append(g.log, tripleRef{s, p, o})
	g.size++
	return true
}

// AddAll inserts every triple in ts and returns the number newly added.
func (g *Graph) AddAll(ts []Triple) int {
	n := 0
	for _, t := range ts {
		if g.Add(t) {
			n++
		}
	}
	return n
}

// Remove deletes a triple. It reports whether the triple was present.
func (g *Graph) Remove(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.lookup(t.S)
	if !ok {
		return false
	}
	p, ok := g.lookup(t.P)
	if !ok {
		return false
	}
	o, ok := g.lookup(t.O)
	if !ok {
		return false
	}
	m2, ok := g.spo[s]
	if !ok {
		return false
	}
	m3, ok := m2[p]
	if !ok {
		return false
	}
	if _, ok := m3[o]; !ok {
		return false
	}
	delete(m3, o)
	if ps := g.pstats[p]; ps != nil {
		ps.triples--
		if len(m3) == 0 {
			ps.subjects--
		}
	}
	if len(m3) == 0 {
		delete(m2, p)
		if len(m2) == 0 {
			delete(g.spo, s)
		}
	}
	removeList(g.pos, p, o, s)
	if ps := g.pstats[p]; ps != nil {
		if len(g.pos[p][o]) == 0 {
			ps.objects--
		}
		if ps.triples == 0 {
			delete(g.pstats, p)
		}
	}
	removeList(g.osp, o, s, p)
	g.size--
	return true
}

// Has reports whether the graph contains the triple.
func (g *Graph) Has(t Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s, ok := g.lookup(t.S)
	if !ok {
		return false
	}
	p, ok := g.lookup(t.P)
	if !ok {
		return false
	}
	o, ok := g.lookup(t.O)
	if !ok {
		return false
	}
	m2, ok := g.spo[s]
	if !ok {
		return false
	}
	m3, ok := m2[p]
	if !ok {
		return false
	}
	_, ok = m3[o]
	return ok
}

// Len returns the number of triples in the graph.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.size
}

// TermCount returns the number of distinct interned terms.
func (g *Graph) TermCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.terms)
}

// PredStats returns the maintained cardinalities of predicate p: the number
// of triples with that predicate, and the distinct subject and object counts
// among them. All zero when p is not a predicate of any present triple.
func (g *Graph) PredStats(p ID) (triples, subjects, objects int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ps := g.pstats[p]
	if ps == nil {
		return 0, 0, 0
	}
	return ps.triples, ps.subjects, ps.objects
}

// IndexStats returns the distinct subject, predicate, and object counts of
// the graph — the global cardinalities the query planner divides by when a
// join position is bound by an earlier pattern.
func (g *Graph) IndexStats() (subjects, predicates, objects int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.spo), len(g.pos), len(g.osp)
}

// LogLen returns the length of the insertion log: the total number of
// successful Adds over the graph's lifetime. It is monotone — Remove does
// not shrink it — which makes it usable as a delta cursor.
func (g *Graph) LogLen() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.log)
}

// TriplesSince returns the triples appended at insertion-log positions >= n
// that are still present in the graph, in insertion order.
//
// This is the delta cursor of the incremental flush pipeline: serializing
// TriplesSince(c) and advancing c to LogLen() after each flush yields delta
// segments whose union equals the full graph, while each flush stays
// O(new triples) instead of O(graph). A triple removed and re-added after n
// appears once per surviving log entry; downstream consumers union segments
// into a set, so duplicates are harmless.
func (g *Graph) TriplesSince(n int) []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if n < 0 {
		n = 0
	}
	if n >= len(g.log) {
		return nil
	}
	out := make([]Triple, 0, len(g.log)-n)
	for _, r := range g.log[n:] {
		if m2, ok := g.spo[r.s]; ok {
			if m3, ok := m2[r.p]; ok {
				if _, ok := m3[r.o]; ok {
					out = append(out, Triple{S: g.terms[r.s], P: g.terms[r.p], O: g.terms[r.o]})
				}
			}
		}
	}
	return out
}

// Find returns all triples matching the pattern. A nil pointer matches any
// term in that position. The result order is unspecified.
func (g *Graph) Find(s, p, o *Term) []Triple {
	var out []Triple
	g.ForEachMatch(s, p, o, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// ForEachMatch streams all triples matching the pattern to fn. fn returning
// false stops the iteration early. A nil pointer matches any term.
//
// The callback must not mutate the graph.
func (g *Graph) ForEachMatch(s, p, o *Term, fn func(Triple) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()

	sid, pid, oid := NoID, NoID, NoID
	if s != nil {
		var ok bool
		if sid, ok = g.lookup(*s); !ok {
			return
		}
	}
	if p != nil {
		var ok bool
		if pid, ok = g.lookup(*p); !ok {
			return
		}
	}
	if o != nil {
		var ok bool
		if oid, ok = g.lookup(*o); !ok {
			return
		}
	}
	g.forEachIDs(sid, pid, oid, func(si, pi, oi ID) bool {
		return fn(Triple{S: g.terms[si], P: g.terms[pi], O: g.terms[oi]})
	})
}

// ForEachMatchIDs streams the dictionary IDs of all triples matching the
// pattern to fn, without materializing Terms. NoID matches any term in that
// position; any other ID that is not interned matches nothing. fn returning
// false stops the iteration early.
//
// The callback must not mutate the graph. Nested read-only calls (TermOf,
// further ForEachMatchIDs) are permitted, same as ForEachMatch.
func (g *Graph) ForEachMatchIDs(s, p, o ID, fn func(s, p, o ID) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := len(g.terms)
	if (s != NoID && int(s) >= n) || (p != NoID && int(p) >= n) || (o != NoID && int(o) >= n) {
		return
	}
	g.forEachIDs(s, p, o, fn)
}

// forEachIDs is the shared index-probe loop behind ForEachMatch and
// ForEachMatchIDs. Caller must hold g.mu (read or write); NoID is the
// wildcard.
func (g *Graph) forEachIDs(sid, pid, oid ID, emit func(s, p, o ID) bool) {
	switch {
	case sid != NoID: // SPO index
		m2 := g.spo[sid]
		if pid != NoID {
			m3 := m2[pid]
			if oid != NoID {
				if _, ok := m3[oid]; ok {
					emit(sid, pid, oid)
				}
				return
			}
			for oi := range m3 {
				if !emit(sid, pid, oi) {
					return
				}
			}
			return
		}
		for pi, m3 := range m2 {
			for oi := range m3 {
				if oid != NoID && oi != oid {
					continue
				}
				if !emit(sid, pi, oi) {
					return
				}
			}
		}
	case pid != NoID: // POS index
		m2 := g.pos[pid]
		if oid != NoID {
			for _, si := range m2[oid] {
				if !emit(si, pid, oid) {
					return
				}
			}
			return
		}
		for oi, subjects := range m2 {
			for _, si := range subjects {
				if !emit(si, pid, oi) {
					return
				}
			}
		}
	case oid != NoID: // OSP index
		for si, preds := range g.osp[oid] {
			for _, pi := range preds {
				if !emit(si, pi, oid) {
					return
				}
			}
		}
	default: // full scan
		for si, m2 := range g.spo {
			for pi, m3 := range m2 {
				for oi := range m3 {
					if !emit(si, pi, oi) {
						return
					}
				}
			}
		}
	}
}

// CountMatchIDs returns the exact number of triples matching the ID pattern
// (NoID = wildcard) without enumerating them where an index or maintained
// counter answers directly:
//
//	(s p o) -> 0/1 membership probe     (s p ?) -> len(spo[s][p])
//	(? p o) -> len(pos[p][o])           (s ? o) -> len(osp[o][s])
//	(? p ?) -> maintained predicate count
//	(s ? ?), (? ? o) -> sum over one second-level index map
//	(? ? ?) -> graph size
//
// This is the cardinality oracle behind the query planner's join ordering.
func (g *Graph) CountMatchIDs(s, p, o ID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := len(g.terms)
	if (s != NoID && int(s) >= n) || (p != NoID && int(p) >= n) || (o != NoID && int(o) >= n) {
		return 0
	}
	switch {
	case s != NoID && p != NoID && o != NoID:
		if _, ok := g.spo[s][p][o]; ok {
			return 1
		}
		return 0
	case s != NoID && p != NoID:
		return len(g.spo[s][p])
	case p != NoID && o != NoID:
		return len(g.pos[p][o])
	case s != NoID && o != NoID:
		return len(g.osp[o][s])
	case p != NoID:
		if ps := g.pstats[p]; ps != nil {
			return ps.triples
		}
		return 0
	case s != NoID:
		c := 0
		for _, m3 := range g.spo[s] {
			c += len(m3)
		}
		return c
	case o != NoID:
		c := 0
		for _, preds := range g.osp[o] {
			c += len(preds)
		}
		return c
	default:
		return g.size
	}
}

// Triples returns every triple in the graph in an unspecified order.
func (g *Graph) Triples() []Triple {
	return g.Find(nil, nil, nil)
}

// SortedTriples returns every triple sorted by (S, P, O) string form, which
// gives deterministic serialization output.
func (g *Graph) SortedTriples() []Triple {
	ts := g.Triples()
	SortTriples(ts)
	return ts
}

func termLess(a, b Term) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	if a.Lang != b.Lang {
		return a.Lang < b.Lang
	}
	return a.Datatype < b.Datatype
}

// Subjects returns the distinct subjects in the graph, sorted.
func (g *Graph) Subjects() []Term {
	g.mu.RLock()
	out := make([]Term, 0, len(g.spo))
	for s := range g.spo {
		out = append(out, g.terms[s])
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return termLess(out[i], out[j]) })
	return out
}

// Merge adds every triple of other into g, returning the number newly added.
// Because PROV-IO node IDs are globally unique, merging per-process
// sub-graphs deduplicates shared nodes naturally (paper §5).
//
// Merging a graph into itself is a no-op (returns 0): without the guard,
// g.Merge(g) would deadlock — the iteration holds the read lock while Add
// waits for the write lock on the same mutex.
func (g *Graph) Merge(other *Graph) int {
	if g == other {
		return 0
	}
	n := 0
	other.ForEachMatch(nil, nil, nil, func(t Triple) bool {
		if g.Add(t) {
			n++
		}
		return true
	})
	return n
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	ng := NewGraph()
	ng.Merge(g)
	return ng
}
