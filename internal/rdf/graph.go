package rdf

import (
	"sort"
	"sync"
	"sync/atomic"
)

// ID is the dictionary index of an interned term. IDs are stable for the
// lifetime of a graph: once a term is interned its ID never changes, and
// Remove does not un-intern terms. The zero ID is a valid term ID; the
// sentinel NoID never is.
//
// The ID-level API (TermID, TermOf, ForEachMatchIDs, CountMatchIDs) lets
// read-path consumers — the SPARQL executor, lineage reduction, statistics,
// DOT emission — stay in integer space end-to-end and rehydrate Terms only
// when materializing output.
type ID uint32

// NoID is the wildcard/absent sentinel of the ID-level API: as a pattern
// position it matches any term, as a register value it means "unbound".
const NoID ID = ^ID(0)

// termID is the internal alias kept for the storage layer.
type termID = ID

// Graph is an in-memory, dictionary-encoded RDF graph.
//
// Storage layout: each index level maps a single term ID to one pointer-held
// adjacency node, and everything below that first map level lives inline in
// the node — the SPO index keeps a subject's (predicate, object-set) entries
// in a small in-node array, the OSP index inlines an object's first
// (subject, predicate) source, and posting lists inline their first element.
// Provenance workloads make the inline cases overwhelmingly common: a record
// node has at most six predicates with one object each, and is referenced by
// exactly one other node. Compared to the classic three-level nested-map
// layout this removes roughly eight small heap objects per ingested record
// and cuts per-insert hash-map operations by about two thirds, which matters
// twice over on the ingest path: fewer allocations per insert, and far fewer
// map entries to rehash and scan once a 4096-rank workload holds millions of
// triples.
//
// A Graph is safe for concurrent use. In the PROV-IO architecture each
// process owns one sub-graph, but within a process many threads (simulated
// MPI ranks or OpenMP workers) may insert records concurrently.
type Graph struct {
	mu sync.RWMutex

	// dict is the striped term dictionary. It has its own internal locks so
	// interning — the first step of every insert — happens outside g.mu and
	// concurrent rank threads do not serialize on the graph write lock just
	// to map terms to IDs (see termDict).
	dict termDict

	// spo is the authoritative membership index: subject -> adjacency node.
	// A key is present iff the subject has at least one triple.
	spo map[termID]*subjNode
	// pos maps predicate -> per-predicate node holding the o -> subjects
	// posting lists plus the predicate's maintained cardinalities. The
	// vocabulary is small, so this map stays tiny while its nodes carry the
	// bulk; p-bound iteration is the query engine's workhorse.
	pos map[termID]*predNode
	// osp maps object -> (s, p) sources.
	osp map[termID]*srcSet

	// log records every successful Add in insertion order (12 bytes per
	// triple). It backs the delta cursor of the flush pipeline: a flusher
	// remembers the log position of its last flush and serializes only
	// TriplesSince(position) instead of the whole graph.
	log []tripleRef

	size int

	// removeEpoch counts successful Removes. A cached Snapshot is an exact
	// log prefix only while no triple was removed since it was taken;
	// comparing epochs tells Snapshot() whether the cheap log-delta extension
	// is valid or a full rebuild from surviving log entries is needed.
	removeEpoch uint64

	// snap caches the most recent Snapshot; snapMu serializes its (re)build
	// so concurrent Snapshot() callers do not duplicate the capture work.
	snapMu sync.Mutex
	snap   atomic.Pointer[Snapshot]
}

// objSet is the set of objects under one (subject, predicate) pair. The
// single object is stored inline; the set spills to a map on the second
// distinct object. n is the set size.
type objSet struct {
	single termID
	multi  map[termID]struct{}
	n      int32
}

func (s *objSet) len() int { return int(s.n) }

func (s *objSet) has(o termID) bool {
	if s.multi != nil {
		_, ok := s.multi[o]
		return ok
	}
	return s.n == 1 && s.single == o
}

// add inserts o, reporting whether it was new.
func (s *objSet) add(o termID) bool {
	if s.multi != nil {
		if _, dup := s.multi[o]; dup {
			return false
		}
		s.multi[o] = struct{}{}
		s.n++
		return true
	}
	if s.n == 0 {
		s.single, s.n = o, 1
		return true
	}
	if s.single == o {
		return false
	}
	s.multi = map[termID]struct{}{s.single: {}, o: {}}
	s.n = 2
	return true
}

// remove deletes o, reporting whether it was present. When the spilled set
// shrinks back to one element it is re-inlined.
func (s *objSet) remove(o termID) bool {
	if s.multi != nil {
		if _, ok := s.multi[o]; !ok {
			return false
		}
		delete(s.multi, o)
		s.n--
		if s.n == 1 {
			for v := range s.multi {
				s.single = v
			}
			s.multi = nil
		}
		return true
	}
	if s.n == 1 && s.single == o {
		s.n = 0
		return true
	}
	return false
}

// forEach streams the objects; fn returning false stops early. Returns false
// iff stopped.
func (s *objSet) forEach(fn func(termID) bool) bool {
	if s.multi != nil {
		for o := range s.multi {
			if !fn(o) {
				return false
			}
		}
		return true
	}
	if s.n == 1 {
		return fn(s.single)
	}
	return true
}

// pentry is one (predicate, object set) adjacency entry of a subject.
type pentry struct {
	p    termID
	objs objSet
}

// subjNode is a subject's adjacency: its distinct predicates with their
// object sets. The first entries live in a small in-node array — five slots
// cover every record shape the model emits — with overflow in a slice.
// Entry order is unspecified. Probes are linear: a subject's distinct
// predicate count is bounded by the vocabulary, and scanning a handful of
// inline entries is cheaper than a hash lookup.
type subjNode struct {
	n    int32
	arr  [5]pentry
	rest []pentry
}

// entry returns the adjacency entry for p, or nil.
func (nd *subjNode) entry(p termID) *pentry {
	n := int(nd.n)
	for i := 0; i < n && i < len(nd.arr); i++ {
		if nd.arr[i].p == p {
			return &nd.arr[i]
		}
	}
	for i := range nd.rest {
		if nd.rest[i].p == p {
			return &nd.rest[i]
		}
	}
	return nil
}

// entryOrNew returns the adjacency entry for p, creating it if absent, and
// reports whether it was created. The pointer is valid until the next
// mutation of the node.
func (nd *subjNode) entryOrNew(p termID) (*pentry, bool) {
	if pe := nd.entry(p); pe != nil {
		return pe, false
	}
	if int(nd.n) < len(nd.arr) {
		pe := &nd.arr[nd.n]
		*pe = pentry{p: p}
		nd.n++
		return pe, true
	}
	nd.rest = append(nd.rest, pentry{p: p})
	nd.n++
	return &nd.rest[len(nd.rest)-1], true
}

// removeEntry drops the (now empty) entry for p by swap-delete.
func (nd *subjNode) removeEntry(p termID) {
	total := int(nd.n)
	for i := 0; i < total; i++ {
		var pe *pentry
		if i < len(nd.arr) {
			pe = &nd.arr[i]
		} else {
			pe = &nd.rest[i-len(nd.arr)]
		}
		if pe.p != p {
			continue
		}
		last := total - 1
		var lv pentry
		if last < len(nd.arr) {
			lv = nd.arr[last]
			nd.arr[last] = pentry{}
		} else {
			lv = nd.rest[len(nd.rest)-1]
			nd.rest = nd.rest[:len(nd.rest)-1]
		}
		if i != last {
			if i < len(nd.arr) {
				nd.arr[i] = lv
			} else {
				nd.rest[i-len(nd.arr)] = lv
			}
		} else if last < len(nd.arr) {
			nd.arr[last] = pentry{}
		}
		nd.n--
		return
	}
}

// forEach streams the (predicate, object set) entries; fn returning false
// stops early. Returns false iff stopped.
func (nd *subjNode) forEach(fn func(p termID, objs *objSet) bool) bool {
	n := int(nd.n)
	for i := 0; i < n && i < len(nd.arr); i++ {
		if !fn(nd.arr[i].p, &nd.arr[i].objs) {
			return false
		}
	}
	for i := range nd.rest {
		if !fn(nd.rest[i].p, &nd.rest[i].objs) {
			return false
		}
	}
	return true
}

// idList is a posting list of term IDs (subjects under a (p, o) pair,
// predicates under an (o, s) pair). The first element is inline; duplicates
// are the caller's responsibility, as membership is established against the
// SPO index before any posting list is touched. Order is unspecified.
type idList struct {
	single termID
	rest   []termID
	n      int32
}

func (l *idList) len() int { return int(l.n) }

func (l *idList) add(v termID) {
	if l.n == 0 {
		l.single = v
		l.n = 1
		return
	}
	l.rest = append(l.rest, v)
	l.n++
}

func (l *idList) remove(v termID) bool {
	if l.n == 0 {
		return false
	}
	if l.single == v {
		if l.n == 1 {
			l.n = 0
			return true
		}
		l.single = l.rest[len(l.rest)-1]
		l.rest = l.rest[:len(l.rest)-1]
		l.n--
		return true
	}
	for i, x := range l.rest {
		if x == v {
			l.rest[i] = l.rest[len(l.rest)-1]
			l.rest = l.rest[:len(l.rest)-1]
			l.n--
			return true
		}
	}
	return false
}

func (l *idList) forEach(fn func(termID) bool) bool {
	if l.n >= 1 {
		if !fn(l.single) {
			return false
		}
	}
	for _, v := range l.rest {
		if !fn(v) {
			return false
		}
	}
	return true
}

// predNode is the per-predicate index node: the o -> subjects posting lists
// plus the predicate's maintained cardinalities (the stats the query planner
// reads through PredStats). Folding the stats into the index node means one
// map probe serves both on the insert path.
type predNode struct {
	m     map[termID]*idList
	stats predStat
}

// predStat is the per-predicate cardinality record behind PredStats.
type predStat struct {
	triples  int // triples with this predicate
	subjects int // distinct subjects among them
	objects  int // distinct objects among them
}

// spair is one (subject, predicate) source pair of an OSP entry: 8 scalar
// bytes, so source slices carry no pointers for the GC to trace.
type spair struct{ s, p termID }

// srcSet is one OSP entry: the (subject, predicate) sources of an object.
// The first source is inline — a freshly minted record node is referenced
// exactly once — with further sources in a flat append-only slice. Membership
// is the SPO index's job (add is only called for triples established new
// there), so appends need no dedup probe: inserting a source is a plain
// append instead of a hash-map insert, which keeps hot objects — class IRIs,
// super-class terms, shared agents, each referenced once per record — off
// the map-growth path entirely. The trade is that predsOf and remove scan
// the slice, which only serve the rare (s ? o) count pattern and Remove.
type srcSet struct {
	s1, p1 termID
	pairs  []spair // sources beyond the first
	n      int32
}

func (ss *srcSet) add(s, p termID) {
	if ss.n == 0 {
		ss.s1, ss.p1, ss.n = s, p, 1
		return
	}
	ss.pairs = append(ss.pairs, spair{s, p})
	ss.n++
}

func (ss *srcSet) remove(s, p termID) bool {
	if ss.n == 0 {
		return false
	}
	if ss.s1 == s && ss.p1 == p {
		if ss.n > 1 {
			last := ss.pairs[len(ss.pairs)-1]
			ss.pairs = ss.pairs[:len(ss.pairs)-1]
			ss.s1, ss.p1 = last.s, last.p
		}
		ss.n--
		return true
	}
	for i, pr := range ss.pairs {
		if pr.s == s && pr.p == p {
			ss.pairs[i] = ss.pairs[len(ss.pairs)-1]
			ss.pairs = ss.pairs[:len(ss.pairs)-1]
			ss.n--
			return true
		}
	}
	return false
}

// predsOf returns the number of predicates linking s to this object.
func (ss *srcSet) predsOf(s termID) int {
	c := 0
	if ss.n >= 1 && ss.s1 == s {
		c++
	}
	for _, pr := range ss.pairs {
		if pr.s == s {
			c++
		}
	}
	return c
}

func (ss *srcSet) forEach(fn func(s, p termID) bool) bool {
	if ss.n >= 1 {
		if !fn(ss.s1, ss.p1) {
			return false
		}
	}
	for _, pr := range ss.pairs {
		if !fn(pr.s, pr.p) {
			return false
		}
	}
	return true
}

// tripleRef is one insertion-log entry: the dictionary IDs of an added
// triple.
type tripleRef struct{ s, p, o termID }

// TripleID is a triple in dictionary-ID form: the public counterpart of the
// insertion-log entry. The delta flush pipeline serializes segments straight
// from these 12-byte refs (RefsSince + TermRenderer) instead of
// materializing []Triple.
type TripleID struct{ S, P, O ID }

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	g := &Graph{
		spo: make(map[termID]*subjNode),
		pos: make(map[termID]*predNode),
		osp: make(map[termID]*srcSet),
	}
	g.dict.init()
	return g
}

// lookup returns the ID for t and whether it is interned. The dictionary has
// its own locks; holding g.mu is not required.
func (g *Graph) lookup(t Term) (termID, bool) {
	return g.dict.lookup(t)
}

// TermID returns the dictionary ID of t and whether t is interned. A term
// that was never added to the graph (in any triple position) has no ID.
func (g *Graph) TermID(t Term) (ID, bool) {
	return g.dict.lookup(t)
}

// TermOf returns the term interned under id, or the zero Term if id is out
// of range (including NoID).
func (g *Graph) TermOf(id ID) Term {
	return g.dict.termAt(id)
}

// Add inserts a triple. It reports whether the triple was new.
// Invalid triples are rejected (returns false).
//
// Add is a 1-element batch: the term interning happens against the striped
// dictionary outside the graph lock, and only the index insertion runs under
// g.mu.
func (g *Graph) Add(t Triple) bool {
	if !t.Valid() {
		return false
	}
	r := tripleRef{g.dict.intern(t.S), g.dict.intern(t.P), g.dict.intern(t.O)}
	g.mu.Lock()
	added := g.addRefLocked(r)
	g.mu.Unlock()
	return added
}

// addRefLocked inserts one pre-interned triple into the indexes, maintaining
// predicate stats and the insertion log. It reports whether the triple was
// new. Caller must hold g.mu for writing.
func (g *Graph) addRefLocked(r tripleRef) bool {
	s, p, o := r.s, r.p, r.o
	nd := g.spo[s]
	if nd == nil {
		nd = &subjNode{}
		g.spo[s] = nd
	}
	pe, pairNew := nd.entryOrNew(p)
	if !pe.objs.add(o) {
		return false
	}
	pn := g.pos[p]
	if pn == nil {
		pn = &predNode{m: make(map[termID]*idList, 1)}
		g.pos[p] = pn
	}
	pn.stats.triples++
	if pairNew {
		// First object under (s, p): s is a new distinct subject for p.
		pn.stats.subjects++
	}
	l := pn.m[o]
	if l == nil {
		// First subject under (p, o): o is a new distinct object for p.
		l = &idList{}
		pn.m[o] = l
		pn.stats.objects++
	}
	l.add(s)
	ss := g.osp[o]
	if ss == nil {
		ss = &srcSet{}
		g.osp[o] = ss
	}
	ss.add(s, p)
	g.log = append(g.log, r)
	g.size++
	return true
}

// AddBatch inserts a whole record's triples under one lock acquisition and
// returns the number newly added. Invalid triples are skipped. The graph
// state, per-predicate statistics, and insertion-log order are identical to
// calling Add per triple; the difference is cost: terms are interned against
// the striped dictionary before g.mu is taken, so the critical section is
// just the index insertions, and concurrent rank threads contend once per
// record instead of once per triple.
func (g *Graph) AddBatch(ts []Triple) int {
	if len(ts) == 0 {
		return 0
	}
	// Intern outside the lock. Records repeat terms across adjacent triples
	// (the subject of every triple is usually the record node; rdf:type and
	// class IRIs recur), so reuse the previous triple's IDs when the term is
	// identical — for terms minted once per record the comparison is a
	// pointer-equal string check.
	var arr [12]tripleRef
	refs := arr[:0]
	if len(ts) > len(arr) {
		refs = make([]tripleRef, 0, len(ts))
	}
	var prev Triple
	var pref tripleRef
	havePrev := false
	for _, t := range ts {
		if !t.Valid() {
			continue
		}
		var r tripleRef
		if havePrev && t.S == prev.S {
			r.s = pref.s
		} else {
			r.s = g.dict.intern(t.S)
		}
		if havePrev && t.P == prev.P {
			r.p = pref.p
		} else {
			r.p = g.dict.intern(t.P)
		}
		if havePrev && t.O == prev.O {
			r.o = pref.o
		} else {
			r.o = g.dict.intern(t.O)
		}
		prev, pref, havePrev = t, r, true
		refs = append(refs, r)
	}
	n := 0
	g.mu.Lock()
	for _, r := range refs {
		if g.addRefLocked(r) {
			n++
		}
	}
	g.mu.Unlock()
	return n
}

// AddAll inserts every triple in ts and returns the number newly added. It
// is AddBatch under its historical name.
func (g *Graph) AddAll(ts []Triple) int {
	return g.AddBatch(ts)
}

// Remove deletes a triple. It reports whether the triple was present.
func (g *Graph) Remove(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.lookup(t.S)
	if !ok {
		return false
	}
	p, ok := g.lookup(t.P)
	if !ok {
		return false
	}
	o, ok := g.lookup(t.O)
	if !ok {
		return false
	}
	nd := g.spo[s]
	if nd == nil {
		return false
	}
	pe := nd.entry(p)
	if pe == nil || !pe.objs.remove(o) {
		return false
	}
	pairEmptied := pe.objs.len() == 0
	if pairEmptied {
		nd.removeEntry(p)
		if nd.n == 0 {
			delete(g.spo, s)
		}
	}
	if pn := g.pos[p]; pn != nil {
		pn.stats.triples--
		if pairEmptied {
			pn.stats.subjects--
		}
		if l := pn.m[o]; l != nil && l.remove(s) && l.len() == 0 {
			delete(pn.m, o)
			pn.stats.objects--
		}
		if pn.stats.triples == 0 {
			delete(g.pos, p)
		}
	}
	if ss := g.osp[o]; ss != nil && ss.remove(s, p) && ss.n == 0 {
		delete(g.osp, o)
	}
	g.size--
	g.removeEpoch++
	return true
}

// hasLocked reports membership of (s, p, o). Caller must hold g.mu.
func (g *Graph) hasLocked(s, p, o termID) bool {
	nd := g.spo[s]
	if nd == nil {
		return false
	}
	pe := nd.entry(p)
	return pe != nil && pe.objs.has(o)
}

// Has reports whether the graph contains the triple.
func (g *Graph) Has(t Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s, ok := g.lookup(t.S)
	if !ok {
		return false
	}
	p, ok := g.lookup(t.P)
	if !ok {
		return false
	}
	o, ok := g.lookup(t.O)
	if !ok {
		return false
	}
	return g.hasLocked(s, p, o)
}

// Len returns the number of triples in the graph.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.size
}

// TermCount returns the number of distinct interned terms.
func (g *Graph) TermCount() int {
	return g.dict.count()
}

// PredStats returns the maintained cardinalities of predicate p: the number
// of triples with that predicate, and the distinct subject and object counts
// among them. All zero when p is not a predicate of any present triple.
func (g *Graph) PredStats(p ID) (triples, subjects, objects int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	pn := g.pos[p]
	if pn == nil {
		return 0, 0, 0
	}
	return pn.stats.triples, pn.stats.subjects, pn.stats.objects
}

// IndexStats returns the distinct subject, predicate, and object counts of
// the graph — the global cardinalities the query planner divides by when a
// join position is bound by an earlier pattern.
func (g *Graph) IndexStats() (subjects, predicates, objects int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.spo), len(g.pos), len(g.osp)
}

// LogLen returns the length of the insertion log: the total number of
// successful Adds over the graph's lifetime. It is monotone — Remove does
// not shrink it — which makes it usable as a delta cursor.
func (g *Graph) LogLen() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.log)
}

// TriplesSince returns the triples appended at insertion-log positions >= n
// that are still present in the graph, in insertion order.
//
// This is the delta cursor of the incremental flush pipeline: serializing
// TriplesSince(c) and advancing c to LogLen() after each flush yields delta
// segments whose union equals the full graph, while each flush stays
// O(new triples) instead of O(graph). A triple removed and re-added after n
// appears once per surviving log entry; downstream consumers union segments
// into a set, so duplicates are harmless.
func (g *Graph) TriplesSince(n int) []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if n < 0 {
		n = 0
	}
	if n >= len(g.log) {
		return nil
	}
	terms := g.dict.snapshot()
	out := make([]Triple, 0, len(g.log)-n)
	for _, r := range g.log[n:] {
		if g.hasLocked(r.s, r.p, r.o) {
			out = append(out, Triple{S: terms[r.s], P: terms[r.p], O: terms[r.o]})
		}
	}
	return out
}

// RefsSince is TriplesSince in ID space: the surviving insertion-log entries
// at positions >= n as 12-byte TripleIDs, plus the log position the delta
// extends to (the caller's next cursor). Capturing the end position under
// the same lock as the refs closes the race TriplesSince+LogLen had: no
// insert can slip between the snapshot and the cursor advance.
//
// This is the write-side ID-space path: the flush pipeline hands these refs
// to a TermRenderer, which rehydrates each distinct term at most once across
// all of a tracker's flushes, instead of materializing a []Triple per delta.
func (g *Graph) RefsSince(n int) (refs []TripleID, end int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if n < 0 {
		n = 0
	}
	end = len(g.log)
	if n >= end {
		return nil, end
	}
	refs = make([]TripleID, 0, end-n)
	for _, r := range g.log[n:] {
		if g.hasLocked(r.s, r.p, r.o) {
			refs = append(refs, TripleID{S: r.s, P: r.p, O: r.o})
		}
	}
	return refs, end
}

// Find returns all triples matching the pattern. A nil pointer matches any
// term in that position. The result order is unspecified.
func (g *Graph) Find(s, p, o *Term) []Triple {
	var out []Triple
	g.ForEachMatch(s, p, o, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// ForEachMatch streams all triples matching the pattern to fn. fn returning
// false stops the iteration early. A nil pointer matches any term.
//
// ForEachMatch iterates a Snapshot of the graph, so no lock is held across
// the callback: fn may call Add, Remove, or any other graph method without
// deadlocking. Mutations made during the iteration are not visible to it —
// fn sees exactly the triples present when the iteration started.
func (g *Graph) ForEachMatch(s, p, o *Term, fn func(Triple) bool) {
	g.Snapshot().ForEachMatch(s, p, o, fn)
}

// ForEachMatchIDs streams the dictionary IDs of all triples matching the
// pattern to fn, without materializing Terms. NoID matches any term in that
// position; any other ID that is not interned matches nothing. fn returning
// false stops the iteration early.
//
// Locking contract: the graph read lock IS held across fn, so fn must not
// call Add, Remove, or any other mutating method — doing so deadlocks.
// Nested read-only calls (TermOf, further ForEachMatchIDs) are permitted.
// Callers that need re-entrancy, or that probe many patterns per logical
// query, should take a Snapshot and use its lock-free scan methods instead;
// this locked form is kept for one-shot probes against the live graph.
func (g *Graph) ForEachMatchIDs(s, p, o ID, fn func(s, p, o ID) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := g.dict.count()
	if (s != NoID && int(s) >= n) || (p != NoID && int(p) >= n) || (o != NoID && int(o) >= n) {
		return
	}
	g.forEachIDs(s, p, o, fn)
}

// forEachIDs is the shared index-probe loop behind ForEachMatch and
// ForEachMatchIDs. Caller must hold g.mu (read or write); NoID is the
// wildcard.
func (g *Graph) forEachIDs(sid, pid, oid ID, emit func(s, p, o ID) bool) {
	switch {
	case sid != NoID: // SPO index
		nd := g.spo[sid]
		if nd == nil {
			return
		}
		if pid != NoID {
			pe := nd.entry(pid)
			if pe == nil {
				return
			}
			if oid != NoID {
				if pe.objs.has(oid) {
					emit(sid, pid, oid)
				}
				return
			}
			pe.objs.forEach(func(oi termID) bool { return emit(sid, pid, oi) })
			return
		}
		nd.forEach(func(pi termID, objs *objSet) bool {
			if oid != NoID {
				if objs.has(oid) {
					return emit(sid, pi, oid)
				}
				return true
			}
			return objs.forEach(func(oi termID) bool { return emit(sid, pi, oi) })
		})
	case pid != NoID: // POS index
		pn := g.pos[pid]
		if pn == nil {
			return
		}
		if oid != NoID {
			if l := pn.m[oid]; l != nil {
				l.forEach(func(si termID) bool { return emit(si, pid, oid) })
			}
			return
		}
		for oi, l := range pn.m {
			if !l.forEach(func(si termID) bool { return emit(si, pid, oi) }) {
				return
			}
		}
	case oid != NoID: // OSP index
		if ss := g.osp[oid]; ss != nil {
			ss.forEach(func(si, pi termID) bool { return emit(si, pi, oid) })
		}
	default: // full scan
		for si, nd := range g.spo {
			ok := nd.forEach(func(pi termID, objs *objSet) bool {
				return objs.forEach(func(oi termID) bool { return emit(si, pi, oi) })
			})
			if !ok {
				return
			}
		}
	}
}

// CountMatchIDs returns the exact number of triples matching the ID pattern
// (NoID = wildcard) without enumerating them where an index or maintained
// counter answers directly:
//
//	(s p o) -> 0/1 membership probe     (s p ?) -> SPO object-set size
//	(? p o) -> POS posting-list length  (s ? o) -> OSP per-subject count
//	(? p ?) -> maintained predicate count
//	(s ? ?) -> sum over the subject's adjacency entries
//	(? ? o) -> OSP source count
//	(? ? ?) -> graph size
//
// This is the cardinality oracle behind the query planner's join ordering.
func (g *Graph) CountMatchIDs(s, p, o ID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := g.dict.count()
	if (s != NoID && int(s) >= n) || (p != NoID && int(p) >= n) || (o != NoID && int(o) >= n) {
		return 0
	}
	switch {
	case s != NoID && p != NoID && o != NoID:
		if g.hasLocked(s, p, o) {
			return 1
		}
		return 0
	case s != NoID && p != NoID:
		if nd := g.spo[s]; nd != nil {
			if pe := nd.entry(p); pe != nil {
				return pe.objs.len()
			}
		}
		return 0
	case p != NoID && o != NoID:
		if pn := g.pos[p]; pn != nil {
			if l := pn.m[o]; l != nil {
				return l.len()
			}
		}
		return 0
	case s != NoID && o != NoID:
		if ss := g.osp[o]; ss != nil {
			return ss.predsOf(s)
		}
		return 0
	case p != NoID:
		if pn := g.pos[p]; pn != nil {
			return pn.stats.triples
		}
		return 0
	case s != NoID:
		c := 0
		if nd := g.spo[s]; nd != nil {
			nd.forEach(func(_ termID, objs *objSet) bool {
				c += objs.len()
				return true
			})
		}
		return c
	case o != NoID:
		if ss := g.osp[o]; ss != nil {
			return int(ss.n)
		}
		return 0
	default:
		return g.size
	}
}

// Triples returns every triple in the graph in an unspecified order.
func (g *Graph) Triples() []Triple {
	return g.Find(nil, nil, nil)
}

// SortedTriples returns every triple sorted by (S, P, O) string form, which
// gives deterministic serialization output.
func (g *Graph) SortedTriples() []Triple {
	ts := g.Triples()
	SortTriples(ts)
	return ts
}

// TermLess reports whether a sorts before b in the canonical term order
// (Kind, Value, Lang, Datatype) — the order behind SortedTriples and every
// deterministic serialization, exported for the segment codec layer.
func TermLess(a, b Term) bool { return termLess(a, b) }

func termLess(a, b Term) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	if a.Lang != b.Lang {
		return a.Lang < b.Lang
	}
	return a.Datatype < b.Datatype
}

// Subjects returns the distinct subjects in the graph, sorted.
func (g *Graph) Subjects() []Term {
	g.mu.RLock()
	terms := g.dict.snapshot()
	out := make([]Term, 0, len(g.spo))
	for s := range g.spo {
		out = append(out, terms[s])
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return termLess(out[i], out[j]) })
	return out
}

// Merge adds every triple of other into g, returning the number newly added.
// Because PROV-IO node IDs are globally unique, merging per-process
// sub-graphs deduplicates shared nodes naturally (paper §5).
//
// Merging a graph into itself is a no-op (returns 0): without the guard,
// g.Merge(g) would deadlock — the iteration holds the read lock while Add
// waits for the write lock on the same mutex.
func (g *Graph) Merge(other *Graph) int {
	if g == other {
		return 0
	}
	// Chunked AddBatch keeps lock acquisitions on g to one per chunk instead
	// of one per triple while bounding the staging buffer.
	const chunk = 512
	n := 0
	buf := make([]Triple, 0, chunk)
	other.ForEachMatch(nil, nil, nil, func(t Triple) bool {
		buf = append(buf, t)
		if len(buf) == chunk {
			n += g.AddBatch(buf)
			buf = buf[:0]
		}
		return true
	})
	n += g.AddBatch(buf)
	return n
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	ng := NewGraph()
	ng.Merge(g)
	return ng
}
