package segcodec

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
)

func TestRegistry(t *testing.T) {
	for _, want := range []struct{ name, ext string }{
		{"nt", ".nt"}, {"ttl", ".ttl"}, {"pbs", ".pbs"},
	} {
		c, ok := ByName(want.name)
		if !ok {
			t.Fatalf("ByName(%q) not registered", want.name)
		}
		if c.Ext() != want.ext {
			t.Errorf("%s: ext %q, want %q", want.name, c.Ext(), want.ext)
		}
		byExt, ok := ByExt(want.ext)
		if !ok || byExt.Name() != want.name {
			t.Errorf("ByExt(%q) = %v, want codec %q", want.ext, byExt, want.name)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("ByName(bogus) should not resolve")
	}
	exts := Exts()
	if len(exts) < 3 {
		t.Fatalf("Exts() = %v, want at least nt/ttl/pbs", exts)
	}
}

func TestDetect(t *testing.T) {
	if c := Detect(pbsMagic); c.Name() != "pbs" {
		t.Errorf("Detect(magic) = %s, want pbs", c.Name())
	}
	for _, text := range []string{"", "<a> <b> <c> .", "@prefix x: <urn:x> .", "PBT not the magic"} {
		if c := Detect([]byte(text)); c.Name() != "nt" {
			t.Errorf("Detect(%q) = %s, want nt fallback", text, c.Name())
		}
	}
}

// sortedNT renders the canonical N-Triples bytes of a graph — the multiset
// fingerprint the round-trip assertions compare.
func sortedNT(t *testing.T, g *rdf.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rdf.WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// randomGraph builds a graph with adversarial term shapes: shared IRI
// prefixes (exercising front-coding), literals with quotes, escapes,
// newlines, unicode, language tags, and datatypes.
func randomGraph(rng *rand.Rand, n int) *rdf.Graph {
	g := rdf.NewGraph()
	values := []string{"plain", `with "quotes"`, "tab\there", "nl\nthere", "back\\slash", "ünïcødé 数据", ""}
	langs := []string{"", "en", "en-US"}
	dts := []string{"", rdf.XSDInteger, rdf.XSDDouble, "urn:custom:dt"}
	subj := func() rdf.Term {
		if rng.Intn(5) == 0 {
			return rdf.Blank(fmt.Sprintf("b%d", rng.Intn(8)))
		}
		return rdf.IRI(fmt.Sprintf("http://provio.example/node/%c/%d", 'a'+rng.Intn(3), rng.Intn(16)))
	}
	pred := func() rdf.Term {
		return rdf.IRI(fmt.Sprintf("http://www.w3.org/ns/prov#p%d", rng.Intn(6)))
	}
	obj := func() rdf.Term {
		switch rng.Intn(3) {
		case 0:
			return subj()
		case 1:
			return rdf.LangLiteral(values[rng.Intn(len(values))], langs[rng.Intn(len(langs))])
		default:
			return rdf.TypedLiteral(values[rng.Intn(len(values))], dts[rng.Intn(len(dts))])
		}
	}
	for i := 0; i < n; i++ {
		g.Add(rdf.Triple{S: subj(), P: pred(), O: obj()})
	}
	return g
}

// TestBinaryRoundTripProperty is the parity property of the acceptance
// criteria: for randomized graphs, the chain nt -> pbs -> nt reproduces the
// identical triple multiset (canonical N-Triples bytes are equal).
func TestBinaryRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 5+rng.Intn(120))
		want := sortedNT(t, g)

		// nt -> graph (the text leg).
		fromText := rdf.NewGraph()
		if err := NTriples.Decode(strings.NewReader(want), fromText); err != nil {
			t.Fatalf("seed %d: nt decode: %v", seed, err)
		}

		// graph -> pbs -> graph (the binary leg).
		var bin bytes.Buffer
		if err := Binary.Encode(&bin, fromText, nil); err != nil {
			t.Fatalf("seed %d: pbs encode: %v", seed, err)
		}
		fromBin := rdf.NewGraph()
		if err := Binary.Decode(bytes.NewReader(bin.Bytes()), fromBin); err != nil {
			t.Fatalf("seed %d: pbs decode: %v", seed, err)
		}

		if got := sortedNT(t, fromBin); got != want {
			t.Fatalf("seed %d: nt -> pbs -> nt changed the graph\nwant %d bytes\ngot  %d bytes", seed, len(want), len(got))
		}
		// Determinism: re-encoding yields identical bytes.
		var bin2 bytes.Buffer
		if err := Binary.Encode(&bin2, fromBin, nil); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bin.Bytes(), bin2.Bytes()) {
			t.Fatalf("seed %d: pbs encoding is not deterministic", seed)
		}
	}
}

// TestEncodeRefsMatchesEncode pins that the ID-space fast path produces
// byte-identical segments to the term-space encoder.
func TestEncodeRefsMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(rng, 200)
	refs, _ := g.RefsSince(0)

	var viaRefs, viaGraph bytes.Buffer
	if err := Binary.(RefsEncoder).EncodeRefs(&viaRefs, refs, g); err != nil {
		t.Fatal(err)
	}
	if err := Binary.Encode(&viaGraph, g, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaRefs.Bytes(), viaGraph.Bytes()) {
		t.Fatalf("EncodeRefs (%d bytes) differs from Encode (%d bytes)", viaRefs.Len(), viaGraph.Len())
	}
}

// TestEncodeRefsDuplicates: refs may repeat a triple (remove + re-add keeps
// both surviving log entries); the segment must still hold the set.
func TestEncodeRefsDuplicates(t *testing.T) {
	g := rdf.NewGraph()
	tr := rdf.Triple{S: rdf.IRI("urn:s"), P: rdf.IRI("urn:p"), O: rdf.Literal("o")}
	g.Add(tr)
	refs, _ := g.RefsSince(0)
	refs = append(refs, refs[0], refs[0])

	var buf bytes.Buffer
	if err := Binary.(RefsEncoder).EncodeRefs(&buf, refs, g); err != nil {
		t.Fatal(err)
	}
	out := rdf.NewGraph()
	if err := Binary.Decode(bytes.NewReader(buf.Bytes()), out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || !out.Has(tr) {
		t.Fatalf("decoded %d triples, want the 1 original", out.Len())
	}
}

func TestBinaryEmptySegment(t *testing.T) {
	var buf bytes.Buffer
	if err := Binary.Encode(&buf, rdf.NewGraph(), nil); err != nil {
		t.Fatal(err)
	}
	out := rdf.NewGraph()
	if err := Binary.Decode(bytes.NewReader(buf.Bytes()), out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("empty segment decoded %d triples", out.Len())
	}
}

// TestBinarySmallerThanText sanity-checks the size motivation on a
// realistic record workload: front-coded dictionary + ID columns should
// undercut rendered N-Triples substantially.
func TestBinarySmallerThanText(t *testing.T) {
	g := rdf.NewGraph()
	for i := 0; i < 500; i++ {
		rec := model.IOActivityRecord{
			Class: model.Write, API: "H5Dwrite", PID: 7, Seq: i,
			Object: rdf.IRI(model.NodeIRI(model.Dataset, fmt.Sprintf("/f.h5/d%d", i))),
			Agent:  rdf.IRI(model.NodeIRI(model.Program, "prog")),
		}
		ts, _ := rec.AppendTriples(nil)
		g.AddBatch(ts)
	}
	var nt, pbs bytes.Buffer
	if err := NTriples.Encode(&nt, g, nil); err != nil {
		t.Fatal(err)
	}
	if err := Binary.Encode(&pbs, g, nil); err != nil {
		t.Fatal(err)
	}
	if pbs.Len()*2 >= nt.Len() {
		t.Errorf("pbs %d bytes vs nt %d bytes: expected at least 2x smaller", pbs.Len(), nt.Len())
	}
}

// validSegment returns an encoded two-triple segment for corruption tests.
func validSegment(t *testing.T) []byte {
	t.Helper()
	g := rdf.NewGraph()
	g.Add(rdf.Triple{S: rdf.IRI("urn:a"), P: rdf.IRI("urn:p"), O: rdf.Literal("x")})
	g.Add(rdf.Triple{S: rdf.IRI("urn:b"), P: rdf.IRI("urn:p"), O: rdf.IRI("urn:a")})
	var buf bytes.Buffer
	if err := Binary.Encode(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinaryDecodeCorruption: every structural mutilation must surface
// ErrCorrupt — never a panic, never silent acceptance.
func TestBinaryDecodeCorruption(t *testing.T) {
	good := validSegment(t)
	cases := map[string][]byte{
		"empty":           {},
		"bad magic":       append([]byte("XXXX"), good[4:]...),
		"magic only":      good[:4],
		"truncated dict":  good[:6],
		"truncated mid":   good[: len(good)/2 : len(good)/2],
		"missing crc":     good[:len(good)-2],
		"trailing bytes":  append(append([]byte{}, good...), 0x00),
		"version bump":    append([]byte{'P', 'B', 'S', 0x02}, good[4:]...),
		"wrong kind byte": nil, // built below
	}
	// Flip a byte inside the dictionary payload so the CRC no longer holds.
	crcFlip := append([]byte{}, good...)
	crcFlip[8] ^= 0xFF
	cases["crc mismatch"] = crcFlip

	// A kind byte of 0x07 inside an otherwise well-framed segment.
	kindBad := append([]byte{}, good...)
	// dict frame starts after magic: uvarint len, then payload begins with
	// uvarint termCount then kind byte.
	kindBad[6] = 0x07 // first term's kind byte (len(varint)=1, count varint=1)
	// refresh nothing: CRC now fails, which is also an ErrCorrupt — fine,
	// but build a properly re-framed bad-kind segment too below.
	cases["wrong kind byte"] = kindBad

	for name, data := range cases {
		g := rdf.NewGraph()
		err := Binary.Decode(bytes.NewReader(data), g)
		if name == "version bump" && err == nil {
			// Version byte is part of the magic; a bumped version fails the
			// prefix check.
			t.Errorf("%s: decode accepted corrupt input", name)
			continue
		}
		if err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", name, err)
		}
		if g.Len() != 0 && name != "trailing bytes" {
			// Partial state in the scratch graph is acceptable only when the
			// damage is detected after the triple block (trailing bytes).
			t.Logf("%s: note: %d triples were staged before the error", name, g.Len())
		}
	}
}

// TestBinaryTruncationExhaustive: EVERY strict prefix of a binary segment —
// sealed or unsealed — must be rejected with an error wrapping ErrCorrupt.
// The exceptions are structural frame boundaries: cutting at the end of the
// triple frame yields a valid legacy (pre-stats) segment, and cutting a
// sealed segment at its payload/seal boundary yields the valid unsealed
// payload. Those prefixes are indistinguishable from older files at codec
// level; the store auditor closes them with chain analysis (internal/core
// verify).
func TestBinaryTruncationExhaustive(t *testing.T) {
	payload := validSegment(t)
	legacy := StripStats(payload)
	if len(legacy) == len(payload) {
		t.Fatal("validSegment carries no stats frame")
	}
	sealed := AppendChain(payload, Chain{Seq: 3, Prev: [32]byte{9}})
	cases := []struct {
		name       string
		data       []byte
		boundaries map[int]bool // prefix lengths that legitimately decode
	}{
		{"unsealed", payload, map[int]bool{len(legacy): true}},
		{"sealed", sealed, map[int]bool{len(legacy): true, len(payload): true}},
	}
	for _, tc := range cases {
		for n := 0; n < len(tc.data); n++ {
			err := Binary.Decode(bytes.NewReader(tc.data[:n]), rdf.NewGraph())
			if tc.boundaries[n] {
				if err != nil {
					t.Errorf("%s: frame-boundary prefix %d must decode as a legacy segment: %v", tc.name, n, err)
				}
				continue
			}
			if err == nil {
				t.Fatalf("%s: prefix %d/%d accepted", tc.name, n, len(tc.data))
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s: prefix %d: error does not wrap ErrCorrupt: %v", tc.name, n, err)
			}
		}
	}
}

// TestTextTruncationExhaustive: the text codecs have no framing, so a torn
// line-oriented file may parse as a smaller valid graph — the reason text
// stores carry .sum sidecars. The codec-level contract is only: never panic,
// and any accepted prefix decodes to a subset of the full graph.
func TestTextTruncationExhaustive(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.Triple{S: rdf.IRI("urn:a"), P: rdf.IRI("urn:p"), O: rdf.Literal("x")})
	g.Add(rdf.Triple{S: rdf.IRI("urn:b"), P: rdf.IRI("urn:p"), O: rdf.IRI("urn:a")})
	for _, codec := range []Codec{NTriples, Turtle} {
		var buf bytes.Buffer
		if err := codec.Encode(&buf, g, nil); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		for n := 0; n < len(data); n++ {
			into := rdf.NewGraph()
			if err := codec.Decode(bytes.NewReader(data[:n]), into); err != nil {
				continue
			}
			if into.Len() > g.Len() {
				t.Fatalf("%s: prefix %d decoded MORE triples (%d) than the full file (%d)",
					codec.Name(), n, into.Len(), g.Len())
			}
		}
	}
}

// TestBinaryDecodeRejectsInvalidTriple frames a structurally valid segment
// whose triple is not valid RDF (literal subject) and expects an error.
func TestBinaryDecodeRejectsInvalidTriple(t *testing.T) {
	// Encode a graph, then rebuild the segment with the object dictionary
	// entry used in subject position by crafting it through writeSegment.
	terms := []rdf.Term{rdf.Literal("lit"), rdf.IRI("urn:p")}
	var buf bytes.Buffer
	if err := writeSegment(&buf, terms, [][3]uint32{{0, 1, 1}}); err != nil {
		t.Fatal(err)
	}
	err := Binary.Decode(bytes.NewReader(buf.Bytes()), rdf.NewGraph())
	if err == nil {
		t.Fatal("decode accepted a literal-subject triple")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v does not wrap ErrCorrupt", err)
	}
}

// TestTextCodecsRoundTrip exercises the nt and ttl codecs through the same
// Codec interface the store uses.
func TestTextCodecsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 60)
	want := sortedNT(t, g)
	for _, c := range []Codec{NTriples, Turtle} {
		var buf bytes.Buffer
		if err := c.Encode(&buf, g, model.Namespaces()); err != nil {
			t.Fatalf("%s encode: %v", c.Name(), err)
		}
		out := rdf.NewGraph()
		if err := c.Decode(bytes.NewReader(buf.Bytes()), out); err != nil {
			t.Fatalf("%s decode: %v", c.Name(), err)
		}
		if got := sortedNT(t, out); got != want {
			t.Errorf("%s round trip changed the graph", c.Name())
		}
	}
}
