package segcodec

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// The pack container (.psk) is the on-disk form of the store's compacted
// segment levels (DESIGN.md "Leveled segments & pushdown"): one file holding
// many store files byte-for-byte verbatim, fronted by a header that carries
// each member's name, extent, and stats block plus a pack-level stats union.
//
// Members travel verbatim on purpose: a packed segment's bytes — seal
// included — are exactly what was audited before packing, so file digests,
// chain links, and externally recorded chain heads survive leveled
// compaction unchanged (the same property PR 7's verbatim relocation gives
// cross-backend migration). The header exists for readers: per-member stats
// let a pruned read skip members — or the whole pack — without fetching
// member bytes, and member extents let a backend with range reads fetch only
// the members a query needs.
//
// Layout:
//
//	magic      4 bytes  'P' 'S' 'K' <version=0x01>
//	header frame        frame{ header block }
//	member bytes        each member's verbatim file bytes, concatenated
//
//	header block:
//	  uvarint level
//	  uvarint memberCount
//	  per member: uvarint nameLen | name | uvarint size
//	              uvarint statsLen | stats payload      (0 = no stats)
//	  uvarint packStatsLen | pack stats payload         (0 = no stats)
//
// Member names keep their original store-file names; opaque members (chain
// sidecar files, which are not RDF) ride along for the auditor and are
// skipped by Decode. Stats payloads reuse the 'STA\x01' encoding of the
// segment stats frame.
type packCodec struct{}

var pskMagic = []byte{'P', 'S', 'K', 0x01}

func (packCodec) Name() string  { return "psk" }
func (packCodec) Ext() string   { return ".psk" }
func (packCodec) Magic() []byte { return pskMagic }

// Encode is not supported: packs hold files, not graphs. Build them with
// EncodePack.
func (packCodec) Encode(io.Writer, *rdf.Graph, *rdf.Namespaces) error {
	return fmt.Errorf("segcodec: psk is a container format; build packs with EncodePack")
}

// Decode unions every RDF member of the pack into the graph, routing each
// member through the codec its own magic bytes identify — so an exhaustive
// (unpruned) read of a leveled store needs no pack-specific logic beyond
// this method. Non-codec members (integrity sidecars) are skipped.
func (packCodec) Decode(r io.Reader, into *rdf.Graph) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	h, err := DecodePackHeader(data)
	if err != nil {
		return err
	}
	if int64(len(data)) < h.WantSize {
		return fmt.Errorf("%w: pack is %d bytes, header promises %d", ErrTruncated, len(data), h.WantSize)
	}
	if int64(len(data)) > h.WantSize {
		return fmt.Errorf("%w: %d trailing bytes after pack body", ErrCorrupt, int64(len(data))-h.WantSize)
	}
	for _, m := range h.Members {
		if _, ok := ByExt(filepath.Ext(m.Name)); !ok {
			continue // opaque member (e.g. a chain sidecar)
		}
		seg := data[m.Off : m.Off+m.Size]
		if err := Detect(seg).Decode(bytes.NewReader(seg), into); err != nil {
			return fmt.Errorf("pack member %s: %w", m.Name, err)
		}
	}
	return nil
}

// PackEntry is one member handed to EncodePack.
type PackEntry struct {
	Name string
	Data []byte
	// Stats is the member's stats block (nil = none; the member then always
	// matches during pruning).
	Stats *SegStats
}

// PackMember is one member of a decoded pack header.
type PackMember struct {
	Name     string
	Off      int64 // byte offset of the member's verbatim bytes in the pack file
	Size     int64
	Stats    SegStats
	HasStats bool
}

// PackHeader is the decoded header of a pack file.
type PackHeader struct {
	Level   int
	Members []PackMember
	// Stats is the pack-level union (zero SegStats with HasStats false when
	// absent): if it cannot match, no member can.
	Stats    SegStats
	HasStats bool
	// BodyOff is where member bytes start; WantSize is the total file size
	// the header implies.
	BodyOff  int64
	WantSize int64
}

// CanMatchMember reports whether a triple pattern could match the member —
// always true for members without stats.
func (m *PackMember) CanMatchMember(s, p, o *rdf.Term) bool {
	return !m.HasStats || m.Stats.CanMatch(s, p, o)
}

// EncodePack writes a pack holding the entries verbatim. packStats is the
// pack-level stats union (nil to omit). Nested packs are rejected: a pack
// member must be an ordinary store file.
func EncodePack(w io.Writer, level int, entries []PackEntry, packStats *SegStats) error {
	if level < 1 {
		return fmt.Errorf("segcodec: pack level %d out of range (levels start at 1)", level)
	}
	var h bytes.Buffer
	putUvarint(&h, uint64(level))
	putUvarint(&h, uint64(len(entries)))
	var bodyLen int
	for _, e := range entries {
		if filepath.Ext(e.Name) == Pack.Ext() {
			return fmt.Errorf("segcodec: pack member %s is itself a pack", e.Name)
		}
		putUvarint(&h, uint64(len(e.Name)))
		h.WriteString(e.Name)
		putUvarint(&h, uint64(len(e.Data)))
		if e.Stats != nil {
			sp := e.Stats.encode()
			putUvarint(&h, uint64(len(sp)))
			h.Write(sp)
		} else {
			putUvarint(&h, 0)
		}
		bodyLen += len(e.Data)
	}
	if packStats != nil {
		sp := packStats.encode()
		putUvarint(&h, uint64(len(sp)))
		h.Write(sp)
	} else {
		putUvarint(&h, 0)
	}

	out := bytes.NewBuffer(make([]byte, 0, len(pskMagic)+h.Len()+bodyLen+16))
	out.Write(pskMagic)
	writeFrame(out, h.Bytes())
	for _, e := range entries {
		out.Write(e.Data)
	}
	_, err := w.Write(out.Bytes())
	return err
}

// DecodePackHeader parses a pack's header from data, which may be just a
// prefix of the file (the lazy-read path fetches the head of the pack and
// retries with more bytes on ErrTruncated). Member offsets are absolute file
// offsets; member bytes need not be present in data.
func DecodePackHeader(data []byte) (*PackHeader, error) {
	if !bytes.HasPrefix(data, pskMagic) {
		if len(data) < len(pskMagic) && bytes.HasPrefix(pskMagic, data) {
			return nil, fmt.Errorf("%w inside PSK magic", ErrTruncated)
		}
		return nil, fmt.Errorf("%w: missing PSK magic", ErrCorrupt)
	}
	rest := data[len(pskMagic):]
	payload, rest, err := readFrame(rest)
	if err != nil {
		return nil, fmt.Errorf("%w: pack header frame: %w", ErrCorrupt, err)
	}
	h := &PackHeader{BodyOff: int64(len(data) - len(rest))}

	level, payload, err := getUvarint(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: pack level: %v", ErrCorrupt, err)
	}
	h.Level = int(level)
	count, payload, err := getUvarint(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: pack member count: %v", ErrCorrupt, err)
	}
	// Every member costs at least 3 header bytes (three varints).
	if count > uint64(len(payload))/3+1 {
		return nil, fmt.Errorf("%w: member count %d exceeds header payload", ErrCorrupt, count)
	}
	off := h.BodyOff
	h.Members = make([]PackMember, 0, count)
	for i := uint64(0); i < count; i++ {
		var m PackMember
		if m.Name, payload, err = getString(payload); err != nil {
			return nil, fmt.Errorf("%w: member %d name: %v", ErrCorrupt, i, err)
		}
		var size uint64
		if size, payload, err = getUvarint(payload); err != nil {
			return nil, fmt.Errorf("%w: member %d size: %v", ErrCorrupt, i, err)
		}
		var sp string
		if sp, payload, err = getString(payload); err != nil {
			return nil, fmt.Errorf("%w: member %d stats: %v", ErrCorrupt, i, err)
		}
		if len(sp) > 0 {
			if m.Stats, err = parseStatsPayload([]byte(sp)); err != nil {
				return nil, fmt.Errorf("%w: member %d stats: %v", ErrCorrupt, i, err)
			}
			m.HasStats = true
		}
		m.Off, m.Size = off, int64(size)
		off += int64(size)
		h.Members = append(h.Members, m)
	}
	var sp string
	if sp, payload, err = getString(payload); err != nil {
		return nil, fmt.Errorf("%w: pack stats: %v", ErrCorrupt, err)
	}
	if len(sp) > 0 {
		if h.Stats, err = parseStatsPayload([]byte(sp)); err != nil {
			return nil, fmt.Errorf("%w: pack stats: %v", ErrCorrupt, err)
		}
		h.HasStats = true
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in pack header", ErrCorrupt, len(payload))
	}
	h.WantSize = off
	return h, nil
}
