package segcodec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// binCodec is the PROV-IO binary segment format (.pbs): a dictionary-encoded
// ID-space layout so encoding from insertion-log refs renders no term text
// and decoding interns terms without tokenizing or unescaping.
//
// On-disk layout (all integers are unsigned varints unless noted):
//
//	magic      4 bytes  'P' 'B' 'S' <version=0x01>
//	dict frame          frame{ term dictionary block }
//	triple frame        frame{ triple ID columns }
//	stats frame         frame{ 'S' 'T' 'A' 0x01 ... }   optional (see stats.go)
//	chain frame         frame{ 'C' 'H' 'N' 0x01 ... }   optional (see chain.go)
//
//	frame{payload} = uvarint(len(payload)) | payload | crc32-IEEE(payload), LE
//
// The encoder always writes the stats frame; files from before it existed
// (or with the frame stripped) decode identically — stats only gate segment
// pruning, never correctness. When present, the frame must byte-match the
// stats recomputed from the decoded contents, so a decodable segment can
// never carry stats that would prune wrongly.
//
// The dictionary block is the segment's delta of newly seen terms: every
// distinct term the segment's triples use, exactly once, sorted in the
// canonical term order and front-coded (each IRI stores only the byte length
// shared with its predecessor plus the differing suffix — PROV-IO IRIs share
// long namespace prefixes, so this is where the size win comes from):
//
//	uvarint termCount
//	per term: kind byte | uvarint sharedPrefix | uvarint suffixLen | suffix
//	          literals append: uvarint langLen | lang | uvarint dtLen | dt
//
// Local IDs are positional: the i-th dictionary entry is ID i. Segments are
// self-contained — a segment never references terms from an earlier
// segment's dictionary, because Flush and Compact delete earlier segments
// and a cross-segment delta chain would be unreadable after crash recovery.
//
// The triple block stores the (s, p, o) local-ID triples sorted ascending,
// column-major, delta-encoded: the S column as non-negative uvarint deltas
// (sorted, so monotone), the P and O columns as zig-zag signed deltas.
//
//	uvarint tripleCount
//	S column | P column | O column
type binCodec struct{}

var pbsMagic = []byte{'P', 'B', 'S', 0x01}

func (binCodec) Name() string  { return "pbs" }
func (binCodec) Ext() string   { return ".pbs" }
func (binCodec) Magic() []byte { return pbsMagic }

func (binCodec) Encode(w io.Writer, g *rdf.Graph, _ *rdf.Namespaces) error {
	return encodeTermTriples(w, g.Triples())
}

// EncodeTriples serializes a bare (delta-segment) triple slice.
func (binCodec) EncodeTriples(w io.Writer, ts []rdf.Triple) error {
	return encodeTermTriples(w, ts)
}

// encodeTermTriples builds the segment-local dictionary by term value.
func encodeTermTriples(w io.Writer, ts []rdf.Triple) error {
	terms, tris := termTriples(ts)
	return writeSegment(w, terms, tris)
}

// termTriples builds the canonically sorted segment-local term dictionary of
// a triple slice plus the triples as local-ID rows (unsorted, undeduplicated
// — writeSegment and ComputeGraphStats normalize them).
func termTriples(ts []rdf.Triple) ([]rdf.Term, [][3]uint32) {
	idx := make(map[rdf.Term]uint32, 3*len(ts)/2)
	var terms []rdf.Term
	collect := func(t rdf.Term) {
		if _, ok := idx[t]; !ok {
			idx[t] = 0
			terms = append(terms, t)
		}
	}
	for _, t := range ts {
		collect(t.S)
		collect(t.P)
		collect(t.O)
	}
	sort.Slice(terms, func(i, j int) bool { return rdf.TermLess(terms[i], terms[j]) })
	for i, t := range terms {
		idx[t] = uint32(i)
	}
	tris := make([][3]uint32, len(ts))
	for i, t := range ts {
		tris[i] = [3]uint32{idx[t.S], idx[t.P], idx[t.O]}
	}
	return terms, tris
}

// EncodeRefs is the ID-space fast path: the segment-local dictionary is
// deduplicated on integer graph IDs (no term hashing), and terms are
// fetched from the source dictionary once per distinct ID.
func (binCodec) EncodeRefs(w io.Writer, refs []rdf.TripleID, src TermSource) error {
	local := make(map[rdf.ID]uint32, 3*len(refs)/2)
	var gids []rdf.ID
	collect := func(id rdf.ID) {
		if _, ok := local[id]; !ok {
			local[id] = 0
			gids = append(gids, id)
		}
	}
	for _, r := range refs {
		collect(r.S)
		collect(r.P)
		collect(r.O)
	}
	terms := make([]rdf.Term, len(gids))
	for i, id := range gids {
		terms[i] = src.TermOf(id)
	}
	order := make([]int, len(gids))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return rdf.TermLess(terms[order[a]], terms[order[b]]) })
	sorted := make([]rdf.Term, len(order))
	for li, oi := range order {
		sorted[li] = terms[oi]
		local[gids[oi]] = uint32(li)
	}
	tris := make([][3]uint32, len(refs))
	for i, r := range refs {
		tris[i] = [3]uint32{local[r.S], local[r.P], local[r.O]}
	}
	return writeSegment(w, sorted, tris)
}

// sortDedupTriples sorts local-ID triples into the canonical (s, p, o)
// order and drops duplicates in place.
func sortDedupTriples(tris [][3]uint32) [][3]uint32 {
	sort.Slice(tris, func(i, j int) bool {
		a, b := tris[i], tris[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	dedup := tris[:0]
	for i, t := range tris {
		if i == 0 || t != tris[i-1] {
			dedup = append(dedup, t)
		}
	}
	return dedup
}

// writeSegment emits the framed segment: tris are local-ID triples (indexes
// into terms), sorted and deduplicated here so output is deterministic and
// identical whichever encode entry point produced them. A stats frame
// summarizing the segment (see SegStats) follows the triple block.
func writeSegment(w io.Writer, terms []rdf.Term, tris [][3]uint32) error {
	tris = sortDedupTriples(tris)

	var dict bytes.Buffer
	putUvarint(&dict, uint64(len(terms)))
	prev := ""
	for _, t := range terms {
		dict.WriteByte(byte(t.Kind))
		shared := commonPrefixLen(prev, t.Value)
		putUvarint(&dict, uint64(shared))
		putUvarint(&dict, uint64(len(t.Value)-shared))
		dict.WriteString(t.Value[shared:])
		if t.Kind == rdf.LiteralTerm {
			putUvarint(&dict, uint64(len(t.Lang)))
			dict.WriteString(t.Lang)
			putUvarint(&dict, uint64(len(t.Datatype)))
			dict.WriteString(t.Datatype)
		}
		prev = t.Value
	}

	var col bytes.Buffer
	putUvarint(&col, uint64(len(tris)))
	var prevS uint32
	for _, t := range tris {
		putUvarint(&col, uint64(t[0]-prevS))
		prevS = t[0]
	}
	var prevP, prevO int64
	for _, t := range tris {
		putSvarint(&col, int64(t[1])-prevP)
		prevP = int64(t[1])
	}
	for _, t := range tris {
		putSvarint(&col, int64(t[2])-prevO)
		prevO = int64(t[2])
	}

	st := ComputeStats(terms, tris)
	sta := st.encode()

	bw := bytes.NewBuffer(make([]byte, 0, len(pbsMagic)+dict.Len()+col.Len()+len(sta)+36))
	bw.Write(pbsMagic)
	writeFrame(bw, dict.Bytes())
	writeFrame(bw, col.Bytes())
	writeFrame(bw, sta)
	_, err := w.Write(bw.Bytes())
	return err
}

func (binCodec) Decode(r io.Reader, into *rdf.Graph) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if !bytes.HasPrefix(data, pbsMagic) {
		if len(data) < len(pbsMagic) && bytes.HasPrefix(pbsMagic, data) {
			return fmt.Errorf("%w inside PBS magic", ErrTruncated)
		}
		return fmt.Errorf("%w: missing PBS magic", ErrCorrupt)
	}
	rest := data[len(pbsMagic):]
	dict, rest, err := readFrame(rest)
	if err != nil {
		return fmt.Errorf("%w: dictionary block: %w", ErrCorrupt, err)
	}
	cols, rest, err := readFrame(rest)
	if err != nil {
		return fmt.Errorf("%w: triple block: %w", ErrCorrupt, err)
	}
	// After the data frames: an optional stats frame, then an optional chain
	// frame (the integrity seal appended by the store), in that order.
	// Anything else is structural damage.
	var statsPayload []byte
	sawChain := false
	for len(rest) != 0 {
		if sawChain {
			return fmt.Errorf("%w: %d trailing bytes after chain frame", ErrCorrupt, len(rest))
		}
		var fp []byte
		fp, rest, err = readFrame(rest)
		if err != nil {
			return fmt.Errorf("%w: footer frame: %w", ErrCorrupt, err)
		}
		switch {
		case bytes.HasPrefix(fp, staMagic):
			if statsPayload != nil {
				return fmt.Errorf("%w: duplicate stats frame", ErrCorrupt)
			}
			statsPayload = fp
		case bytes.HasPrefix(fp, chainMagic):
			if _, err := parseChainPayload(fp); err != nil {
				return fmt.Errorf("%w: chain frame: %v", ErrCorrupt, err)
			}
			sawChain = true
		default:
			return fmt.Errorf("%w: unrecognized footer frame", ErrCorrupt)
		}
	}
	terms, err := decodeDict(dict)
	if err != nil {
		return fmt.Errorf("%w: dictionary block: %v", ErrCorrupt, err)
	}
	ss, ps, os, err := decodeCols(cols, terms)
	if err != nil {
		return fmt.Errorf("%w: triple block: %v", ErrCorrupt, err)
	}
	if statsPayload != nil {
		// The stats frame must be exactly what the encoder would derive from
		// this content — a forged or stale summary could prune segments that
		// still hold answers, so it is rejected instead of trusted.
		tris := make([][3]uint32, len(ss))
		for i := range tris {
			tris[i] = [3]uint32{ss[i], ps[i], os[i]}
		}
		canon := ComputeStats(terms, tris)
		if want := canon.encode(); !bytes.Equal(want, statsPayload) {
			return fmt.Errorf("%w: stats frame does not match segment contents", ErrCorrupt)
		}
	}
	if err := materializeTriples(terms, ss, ps, os, into); err != nil {
		return fmt.Errorf("%w: triple block: %v", ErrCorrupt, err)
	}
	return nil
}

// decodeDict rebuilds the front-coded term dictionary.
func decodeDict(p []byte) ([]rdf.Term, error) {
	n, p, err := getUvarint(p)
	if err != nil {
		return nil, err
	}
	// Every entry costs at least 3 payload bytes (kind + two varints), so a
	// count beyond that is corrupt — checked before allocating.
	if n > uint64(len(p))/3+1 {
		return nil, fmt.Errorf("term count %d exceeds payload", n)
	}
	terms := make([]rdf.Term, 0, n)
	prev := ""
	for i := uint64(0); i < n; i++ {
		if len(p) == 0 {
			return nil, fmt.Errorf("truncated at term %d", i)
		}
		kind := rdf.TermKind(p[0])
		p = p[1:]
		if kind != rdf.IRITerm && kind != rdf.BlankTerm && kind != rdf.LiteralTerm {
			return nil, fmt.Errorf("term %d: invalid kind %d", i, kind)
		}
		var shared uint64
		if shared, p, err = getUvarint(p); err != nil {
			return nil, err
		}
		if shared > uint64(len(prev)) {
			return nil, fmt.Errorf("term %d: shared prefix %d exceeds previous value length %d", i, shared, len(prev))
		}
		var suffix string
		if suffix, p, err = getString(p); err != nil {
			return nil, fmt.Errorf("term %d: %v", i, err)
		}
		t := rdf.Term{Kind: kind, Value: prev[:shared] + suffix}
		if kind == rdf.LiteralTerm {
			if t.Lang, p, err = getString(p); err != nil {
				return nil, fmt.Errorf("term %d lang: %v", i, err)
			}
			if t.Datatype, p, err = getString(p); err != nil {
				return nil, fmt.Errorf("term %d datatype: %v", i, err)
			}
		}
		prev = t.Value
		terms = append(terms, t)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%d trailing bytes", len(p))
	}
	return terms, nil
}

// decodeCols walks the delta-encoded ID columns into per-column local-ID
// arrays, range-checking every ID against the dictionary.
func decodeCols(p []byte, terms []rdf.Term) (ss, ps, os []uint32, err error) {
	n, p, err := getUvarint(p)
	if err != nil {
		return nil, nil, nil, err
	}
	// Three varints of at least one byte each per triple.
	if n > uint64(len(p))/3+1 {
		return nil, nil, nil, fmt.Errorf("triple count %d exceeds payload", n)
	}
	nt := uint64(len(terms))
	ss = make([]uint32, n)
	var s uint64
	for i := range ss {
		d, r, err := getUvarint(p)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("S column at %d: %v", i, err)
		}
		p = r
		s += d
		if s >= nt {
			return nil, nil, nil, fmt.Errorf("S column at %d: term ID %d out of range (%d terms)", i, s, nt)
		}
		ss[i] = uint32(s)
	}
	readCol := func(name string) ([]uint32, error) {
		col := make([]uint32, n)
		var v int64
		for i := range col {
			d, r, err := getSvarint(p)
			if err != nil {
				return nil, fmt.Errorf("%s column at %d: %v", name, i, err)
			}
			p = r
			v += d
			if v < 0 || uint64(v) >= nt {
				return nil, fmt.Errorf("%s column at %d: term ID %d out of range (%d terms)", name, i, v, nt)
			}
			col[i] = uint32(v)
		}
		return col, nil
	}
	if ps, err = readCol("P"); err != nil {
		return nil, nil, nil, err
	}
	if os, err = readCol("O"); err != nil {
		return nil, nil, nil, err
	}
	if len(p) != 0 {
		return nil, nil, nil, fmt.Errorf("%d trailing bytes", len(p))
	}
	return ss, ps, os, nil
}

// materializeTriples unions the decoded ID columns into the graph in
// batches, validating RDF shape per triple.
func materializeTriples(terms []rdf.Term, ss, ps, os []uint32, into *rdf.Graph) error {
	const chunk = 1024
	batch := make([]rdf.Triple, 0, chunk)
	for i := range ss {
		t := rdf.Triple{S: terms[ss[i]], P: terms[ps[i]], O: terms[os[i]]}
		if !t.Valid() {
			return fmt.Errorf("triple %d is not valid RDF (S kind %d, P kind %d, O kind %d)",
				i, t.S.Kind, t.P.Kind, t.O.Kind)
		}
		batch = append(batch, t)
		if len(batch) == chunk {
			into.AddBatch(batch)
			batch = batch[:0]
		}
	}
	into.AddBatch(batch)
	return nil
}

// ---- framing and varint primitives ----

var crcTable = crc32.IEEETable

// writeFrame appends uvarint(len) | payload | crc32(payload).
func writeFrame(w *bytes.Buffer, payload []byte) {
	putUvarint(w, uint64(len(payload)))
	w.Write(payload)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, crcTable))
	w.Write(crc[:])
}

// readFrame consumes one frame, verifying length and checksum. A frame cut
// short by a torn write (missing payload or checksum bytes, or a length
// varint with no terminator) reports ErrTruncated so callers can tell torn
// writes from in-place tampering.
func readFrame(p []byte) (payload, rest []byte, err error) {
	n, consumed := binary.Uvarint(p)
	switch {
	case consumed > 0:
		p = p[consumed:]
	case consumed == 0:
		// Buffer ended mid-varint: every byte so far had the continuation
		// bit set — a prefix of a longer encoding.
		return nil, nil, fmt.Errorf("%w in frame length varint", ErrTruncated)
	default:
		return nil, nil, fmt.Errorf("frame length varint overflows")
	}
	if n > uint64(len(p)) || uint64(len(p))-n < 4 {
		return nil, nil, fmt.Errorf("frame length %d exceeds remaining %d bytes: %w", n, len(p), ErrTruncated)
	}
	payload, p = p[:n], p[n:]
	want := binary.LittleEndian.Uint32(p[:4])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, nil, fmt.Errorf("CRC mismatch: computed %08x, stored %08x", got, want)
	}
	return payload, p[4:], nil
}

func putUvarint(w *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	w.Write(buf[:binary.PutUvarint(buf[:], v)])
}

func putSvarint(w *bytes.Buffer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	w.Write(buf[:binary.PutVarint(buf[:], v)])
}

func getUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad uvarint")
	}
	return v, p[n:], nil
}

func getSvarint(p []byte) (int64, []byte, error) {
	v, n := binary.Varint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad varint")
	}
	return v, p[n:], nil
}

// getString reads uvarint length-prefixed bytes as a string.
func getString(p []byte) (string, []byte, error) {
	n, p, err := getUvarint(p)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(p)) {
		return "", nil, fmt.Errorf("string length %d exceeds remaining %d bytes", n, len(p))
	}
	return string(p[:n]), p[n:], nil
}

func commonPrefixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}
