package segcodec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// statsOfGraph encodes a graph and extracts the embedded stats frame.
func statsOfGraph(t *testing.T, g *rdf.Graph) (SegStats, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := Binary.Encode(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	st, ok := StatsOf(buf.Bytes())
	if !ok {
		t.Fatal("freshly encoded segment carries no stats frame")
	}
	return st, buf.Bytes()
}

// TestStatsNeverFalseNegative is the soundness property pruning rests on:
// for randomized graphs, every term actually present in a column must pass
// CanMatch when probed in that position — a stats block may only ever say
// "definitely absent" about terms that are absent.
func TestStatsNeverFalseNegative(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 3+rng.Intn(80))
		st, _ := statsOfGraph(t, g)
		for _, tr := range g.Triples() {
			s, p, o := tr.S, tr.P, tr.O
			if !st.CanMatch(&s, nil, nil) {
				t.Fatalf("seed %d: subject %v pruned despite being present", seed, s)
			}
			if !st.CanMatch(nil, &p, nil) {
				t.Fatalf("seed %d: predicate %v pruned despite being present", seed, p)
			}
			if !st.CanMatch(nil, nil, &o) {
				t.Fatalf("seed %d: object %v pruned despite being present", seed, o)
			}
			if !st.CanMatch(&s, &p, &o) {
				t.Fatalf("seed %d: full triple pruned despite being present", seed)
			}
			if !st.CanContainNode(s) || !st.CanContainNode(o) {
				t.Fatalf("seed %d: node probe pruned a present S/O term", seed)
			}
		}
		if !st.CanMatch(nil, nil, nil) && g.Len() > 0 {
			t.Fatalf("seed %d: wildcard pattern pruned a non-empty segment", seed)
		}
	}
}

// TestStatsPrunesAbsent checks the useful direction on a controlled graph:
// terms far outside the segment are pruned by zone map or predicate list.
func TestStatsPrunesAbsent(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.Triple{S: rdf.IRI("urn:m/a"), P: rdf.IRI("urn:p1"), O: rdf.IRI("urn:m/b")})
	g.Add(rdf.Triple{S: rdf.IRI("urn:m/c"), P: rdf.IRI("urn:p2"), O: rdf.Literal("x")})
	st, _ := statsOfGraph(t, g)

	absentPred := rdf.IRI("urn:never")
	if st.CanMatch(nil, &absentPred, nil) {
		t.Error("absent predicate not pruned by the distinct-predicate list")
	}
	absentNode := rdf.IRI("urn:zzzz/way-past-the-zone")
	if st.CanMatch(&absentNode, nil, nil) {
		t.Error("absent subject not pruned")
	}
	if st.CanContainNode(absentNode) {
		t.Error("absent node not pruned by the node probe")
	}

	empty, _ := statsOfGraph(t, rdf.NewGraph())
	someIRI := rdf.IRI("urn:m/a")
	if empty.CanMatch(nil, nil, nil) || empty.CanMatch(&someIRI, nil, nil) {
		t.Error("empty segment must match nothing")
	}
}

// TestStatsRoundTrip: the stats payload encoding is self-inverse and strict
// about trailing garbage.
func TestStatsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 64)
	st, _ := statsOfGraph(t, g)
	enc := st.encode()
	back, err := parseStatsPayload(enc)
	if err != nil {
		t.Fatal(err)
	}
	if re := back.encode(); !bytes.Equal(re, enc) {
		t.Fatal("stats payload does not round-trip byte-identically")
	}
	if _, err := parseStatsPayload(append(enc, 0)); err == nil {
		t.Fatal("trailing byte after stats payload accepted")
	}
}

// TestStatsFrameCorruptionMatrix is the corruption-matrix entry for the new
// frame: flipping any bit of the stats frame must yield a classified
// ErrCorrupt from Decode and an always-match (ok=false) answer from StatsOf
// — never wrong stats, never a panic.
func TestStatsFrameCorruptionMatrix(t *testing.T) {
	good := validSegment(t)
	legacyLen := len(StripStats(good))
	if legacyLen == len(good) {
		t.Fatal("segment carries no stats frame")
	}
	want, ok := StatsOf(good)
	if !ok {
		t.Fatal("intact segment must expose stats")
	}
	for off := legacyLen; off < len(good); off++ {
		for bit := uint(0); bit < 8; bit++ {
			mut := append([]byte{}, good...)
			mut[off] ^= 1 << bit
			if st, ok := StatsOf(mut); ok {
				// The CRC covers the whole frame, so any accepted read must
				// be byte-identical stats — and a flip inside the frame that
				// still reads back the same stats cannot happen.
				if !bytes.Equal(st.encode(), want.encode()) {
					t.Fatalf("offset %d bit %d: corrupted stats accepted with different contents", off, bit)
				}
			}
			err := Binary.Decode(bytes.NewReader(mut), rdf.NewGraph())
			if err == nil {
				t.Fatalf("offset %d bit %d: decode accepted a flipped stats frame", off, bit)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("offset %d bit %d: error %v does not wrap ErrCorrupt", off, bit, err)
			}
		}
	}
}

// TestStatsForgedCanonicalFrameRejected: a structurally valid stats frame
// that does not match the segment contents (here: spliced from a different
// segment, CRC re-framed correctly) must be rejected by Decode — stats can
// never make a reader believe wrong things about a decodable segment.
func TestStatsForgedCanonicalFrameRejected(t *testing.T) {
	good := validSegment(t)
	other := rdf.NewGraph()
	other.Add(rdf.Triple{S: rdf.IRI("urn:q"), P: rdf.IRI("urn:q"), O: rdf.Literal("q")})
	var otherBuf bytes.Buffer
	if err := Binary.Encode(&otherBuf, other, nil); err != nil {
		t.Fatal(err)
	}
	otherStats, _, ok := statsSplit(otherBuf.Bytes())
	if !ok {
		t.Fatal("no stats frame in donor segment")
	}
	forged := append([]byte{}, StripStats(good)...)
	fb := bytes.NewBuffer(forged)
	writeFrame(fb, otherStats)
	err := Binary.Decode(bytes.NewReader(fb.Bytes()), rdf.NewGraph())
	if err == nil {
		t.Fatal("decode accepted a spliced stats frame from another segment")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v does not wrap ErrCorrupt", err)
	}
}

// TestStatsLegacySegmentsAlwaysMatch: files without a stats frame (pre-stats
// .pbs, text formats) must answer "could match" so pruning degrades to
// decoding, never to dropping.
func TestStatsLegacySegmentsAlwaysMatch(t *testing.T) {
	legacy := StripStats(validSegment(t))
	if _, ok := StatsOf(legacy); ok {
		t.Fatal("legacy segment without a stats frame reported stats")
	}
	if _, ok := StatsOf([]byte("<urn:a> <urn:p> <urn:b> .\n")); ok {
		t.Fatal("text file reported stats")
	}
	// Sealed legacy file: chain frame present, no stats frame.
	sealedLegacy := AppendChain(legacy, Chain{Seq: 1, Prev: [32]byte{4}})
	if _, ok := StatsOf(sealedLegacy); ok {
		t.Fatal("sealed legacy segment reported stats")
	}
	if _, ok := ChainOf(sealedLegacy); !ok {
		t.Fatal("chain seal lost on a legacy segment")
	}
	// And the seal still resolves when a stats frame IS present.
	sealedNew := AppendChain(validSegment(t), Chain{Seq: 2, Prev: [32]byte{5}})
	if ch, ok := ChainOf(sealedNew); !ok || ch.Seq != 2 {
		t.Fatal("chain seal not found behind the stats frame")
	}
	if _, ok := StatsOf(sealedNew); !ok {
		t.Fatal("stats frame not found on a sealed segment")
	}
	if !bytes.Equal(StripChain(sealedNew), validSegment(t)) {
		t.Fatal("StripChain must preserve the stats frame")
	}
}

// TestBloomNoFalseNegatives hammers the filter directly.
func TestBloomNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 300)
	terms, _ := termTriples(g.Triples())
	b := newBloom(len(terms))
	for _, tm := range terms {
		b.Add(tm)
	}
	for _, tm := range terms {
		if !b.Has(tm) {
			t.Fatalf("bloom false negative for %v", tm)
		}
	}
	// False-positive rate sanity: far-away terms should mostly miss.
	misses := 0
	const probes = 1000
	for i := 0; i < probes; i++ {
		if !b.Has(rdf.IRI(string(rune('a'+i%26)) + "://absent.example/" + string(rune('0'+i%10)))) {
			misses++
		}
	}
	if misses < probes/2 {
		t.Errorf("bloom rejects only %d/%d absent terms — filter is saturated", misses, probes)
	}
}
