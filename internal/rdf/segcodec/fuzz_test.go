package segcodec

import (
	"bytes"
	"testing"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// FuzzSegcodecDecode hammers the binary decoder with arbitrary bytes. The
// contract under test: Decode returns an error for anything that is not a
// well-formed segment and never panics, over-allocates on lying counts, or
// loops. Valid encodings must round-trip.
func FuzzSegcodecDecode(f *testing.F) {
	// Seed with valid segments of increasing shape complexity...
	empty := &bytes.Buffer{}
	if err := Binary.Encode(empty, rdf.NewGraph(), nil); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())

	g := rdf.NewGraph()
	g.Add(rdf.Triple{S: rdf.IRI("urn:a"), P: rdf.IRI("urn:p"), O: rdf.Literal("x")})
	g.Add(rdf.Triple{S: rdf.IRI("urn:abc"), P: rdf.IRI("urn:p"), O: rdf.LangLiteral("héllo", "en")})
	g.Add(rdf.Triple{S: rdf.Blank("b0"), P: rdf.IRI("urn:q"), O: rdf.TypedLiteral("42", rdf.XSDInteger)})
	one := &bytes.Buffer{}
	if err := Binary.Encode(one, g, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(one.Bytes())

	// ...with a chain-sealed segment and prefixes of it (torn-write shapes)...
	sealed := AppendChain(one.Bytes(), Chain{Root: true, Seq: 0, Prev: [32]byte{1, 2, 3}})
	f.Add(sealed)
	f.Add(sealed[:len(one.Bytes())+3]) // cut inside the chain frame
	f.Add(sealed[:len(sealed)-1])

	// ...and with targeted corruptions of those seeds.
	f.Add([]byte{})
	f.Add(pbsMagic)
	f.Add(append(append([]byte{}, pbsMagic...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)) // huge frame length
	trunc := append([]byte{}, one.Bytes()...)
	f.Add(trunc[:len(trunc)/2])
	flip := append([]byte{}, one.Bytes()...)
	flip[len(flip)/2] ^= 0x80
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		into := rdf.NewGraph()
		err := Binary.Decode(bytes.NewReader(data), into)
		if err != nil {
			return // rejected: fine, as long as we did not panic
		}
		// Accepted input must re-encode to the identical bytes once any
		// chain seal is stripped: the payload format is canonical, so
		// encode(decode(x)) == StripChain(x) for any accepted x, and a seal
		// survives a decode/strip round-trip unchanged. Legacy inputs from
		// before the stats frame existed are the one tolerated divergence:
		// re-encoding adds the canonical stats frame, so for them the
		// equality holds after StripStats. (An accepted input WITH a stats
		// frame always has the canonical one — Decode rejects mismatches —
		// so no other divergence is possible.)
		var re bytes.Buffer
		if err := Binary.Encode(&re, into, nil); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		canon := re.Bytes()
		if sc := StripChain(data); !bytes.Equal(canon, sc) {
			canon = StripStats(canon)
			if !bytes.Equal(canon, sc) {
				t.Fatalf("accepted input is not canonical: %d payload bytes in, %d bytes re-encoded",
					len(sc), re.Len())
			}
		}
		if ch, ok := ChainOf(data); ok {
			resealed := AppendChain(canon, ch)
			if !bytes.Equal(resealed, data) {
				t.Fatal("seal did not survive the decode/re-seal round-trip")
			}
		}
	})
}
