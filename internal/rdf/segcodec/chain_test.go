package segcodec

import (
	"bytes"
	"errors"
	"testing"

	"github.com/hpc-io/prov-io/internal/rdf"
)

func sealedSegment(t *testing.T, c Chain) []byte {
	t.Helper()
	g := rdf.NewGraph()
	g.Add(rdf.Triple{S: rdf.IRI("urn:a"), P: rdf.IRI("urn:p"), O: rdf.Literal("x")})
	g.Add(rdf.Triple{S: rdf.IRI("urn:b"), P: rdf.IRI("urn:p"), O: rdf.Literal("y")})
	var buf bytes.Buffer
	if err := Binary.Encode(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	return AppendChain(buf.Bytes(), c)
}

func TestChainRoundTrip(t *testing.T) {
	want := Chain{Root: true, Seq: 7}
	for i := range want.Prev {
		want.Prev[i] = byte(i * 3)
	}
	data := sealedSegment(t, want)

	got, ok := ChainOf(data)
	if !ok {
		t.Fatal("ChainOf: no chain found in sealed segment")
	}
	if got != want {
		t.Fatalf("ChainOf = %+v, want %+v", got, want)
	}
	if want.PrevIsZero() {
		t.Fatal("PrevIsZero true for non-zero prev")
	}
	if !(Chain{}).PrevIsZero() {
		t.Fatal("PrevIsZero false for zero prev")
	}

	// A sealed file must still decode, and stripping the seal must recover
	// the exact unsealed bytes.
	into := rdf.NewGraph()
	if err := Binary.Decode(bytes.NewReader(data), into); err != nil {
		t.Fatalf("Decode of sealed segment: %v", err)
	}
	if into.Len() != 2 {
		t.Fatalf("sealed segment decoded %d triples, want 2", into.Len())
	}
	stripped := StripChain(data)
	var re bytes.Buffer
	if err := Binary.Encode(&re, into, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stripped, re.Bytes()) {
		t.Fatal("StripChain does not recover the canonical encoding")
	}
	if _, ok := ChainOf(stripped); ok {
		t.Fatal("ChainOf found a chain in a stripped segment")
	}
	if !bytes.Equal(StripChain(stripped), stripped) {
		t.Fatal("StripChain of an unsealed segment must be the identity")
	}
}

func TestChainFrameDamage(t *testing.T) {
	data := sealedSegment(t, Chain{Seq: 3})

	// Flipping any byte of the chain frame must make the file unreadable or
	// the seal unreadable — never silently yield a different seal.
	body := StripChain(data)
	for i := len(body); i < len(data); i++ {
		mut := append([]byte{}, data...)
		mut[i] ^= 0x40
		c, ok := ChainOf(mut)
		if ok && c == (Chain{Seq: 3}) {
			t.Fatalf("byte %d: flipped chain frame still reads as the original seal", i)
		}
		// Decode must reject damaged chain frames (CRC or structure).
		if err := Binary.Decode(bytes.NewReader(mut), rdf.NewGraph()); err == nil {
			t.Fatalf("byte %d: Decode accepted a damaged chain frame", i)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("byte %d: error does not wrap ErrCorrupt: %v", i, err)
		}
	}

	// Two chain frames are one too many.
	double := AppendChain(data, Chain{Seq: 4})
	if err := Binary.Decode(bytes.NewReader(double), rdf.NewGraph()); err == nil {
		t.Fatal("Decode accepted two chain frames")
	}
	// ChainOf must also refuse: the walk expects the chain frame to be final.
	if _, ok := ChainOf(double); ok {
		t.Fatal("ChainOf accepted a double-sealed segment")
	}
}

func TestChainTruncationClassified(t *testing.T) {
	data := sealedSegment(t, Chain{Seq: 1})
	for _, n := range []int{0, 1, 3, len(data) / 2, len(data) - 5, len(data) - 1} {
		err := Binary.Decode(bytes.NewReader(data[:n]), rdf.NewGraph())
		if err == nil {
			t.Fatalf("prefix %d/%d accepted", n, len(data))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix %d: error does not wrap ErrCorrupt: %v", n, err)
		}
	}
	// Prefixes that cut inside a frame must carry the finer truncation class.
	if err := Binary.Decode(bytes.NewReader(data[:len(data)-1]), rdf.NewGraph()); !errors.Is(err, ErrTruncated) {
		t.Fatalf("one-byte truncation not classified as ErrTruncated: %v", err)
	}
	if err := Binary.Decode(bytes.NewReader(data[:2]), rdf.NewGraph()); !errors.Is(err, ErrTruncated) {
		t.Fatalf("magic truncation not classified as ErrTruncated: %v", err)
	}
}
