package segcodec

import (
	"bufio"
	"io"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// ntCodec is the N-Triples text codec: one triple per line, deterministic
// (S, P, O) order. It is the historical delta-segment format and the
// fallback decoder for every non-binary file (its parser accepts the
// N-Triples/Turtle superset, matching the store's old parseFile behavior).
type ntCodec struct{}

func (ntCodec) Name() string  { return "nt" }
func (ntCodec) Ext() string   { return ".nt" }
func (ntCodec) Magic() []byte { return nil }

func (ntCodec) Encode(w io.Writer, g *rdf.Graph, _ *rdf.Namespaces) error {
	return rdf.WriteNTriples(w, g)
}

func (ntCodec) Decode(r io.Reader, into *rdf.Graph) error {
	g, _, err := rdf.ParseTurtle(r)
	if err != nil {
		return err
	}
	into.Merge(g)
	return nil
}

// EncodeTriples writes a bare triple slice sorted in place, one line per
// triple — byte-identical to the store's pre-codec delta-segment writer
// (duplicates are preserved; the merge union dedupes).
func (ntCodec) EncodeTriples(w io.Writer, ts []rdf.Triple) error {
	rdf.SortTriples(ts)
	bw := bufio.NewWriter(w)
	for _, t := range ts {
		if _, err := bw.WriteString(t.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ttlCodec is the Turtle text codec: subject-grouped, prefix-compacted —
// the interchange format the paper's snippets use.
type ttlCodec struct{}

func (ttlCodec) Name() string  { return "ttl" }
func (ttlCodec) Ext() string   { return ".ttl" }
func (ttlCodec) Magic() []byte { return nil }

func (ttlCodec) Encode(w io.Writer, g *rdf.Graph, ns *rdf.Namespaces) error {
	return rdf.WriteTurtle(w, g, ns)
}

func (ttlCodec) Decode(r io.Reader, into *rdf.Graph) error {
	g, _, err := rdf.ParseTurtle(r)
	if err != nil {
		return err
	}
	into.Merge(g)
	return nil
}
