package segcodec

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Chain is the per-file hash-chain seal of the provenance store's integrity
// layer (DESIGN.md "Integrity & fault injection"): every store file commits
// to the SHA-256 digest of the file that preceded it in its process's write
// history, so truncation, reordering, and splicing of segments are
// detectable by provio-verify without trusting file names or mtimes.
//
// For the binary codec the seal travels inside the file as one extra frame
// after the triple block, so a .pbs file and its seal are written atomically:
//
//	frame{ 'C' 'H' 'N' 0x01 | flags | uvarint(seq) | prev[32] }
//
// flags bit 0 marks a chain root (a canonical sub-graph file, sealed by
// Flush or Compact); delta segments carry flags 0 and seq = their segment
// number. prev is the SHA-256 of the predecessor's complete file bytes — for
// a segment, the previous segment (or the canonical file it chains from);
// for a root, the chain head the rewrite superseded, which is what lets a
// verifier authenticate segments left behind by a crash between the
// canonical rewrite and segment removal.
//
// Text formats cannot carry a binary footer, so their seal lives in a
// sidecar file (see internal/core's chain sidecars); this package only
// defines the embedded-footer form and the helpers to add, read, and strip
// it.
type Chain struct {
	Root bool
	Seq  uint64
	Prev [32]byte
}

// chainMagic leads the chain frame payload, distinguishing it from a stray
// third data frame.
var chainMagic = []byte{'C', 'H', 'N', 0x01}

const chainRootFlag = 0x01

// PrevIsZero reports whether the seal chains from the zero digest — the
// start of a process's history.
func (c Chain) PrevIsZero() bool { return c.Prev == [32]byte{} }

// AppendChain returns file with an embedded chain frame appended. file must
// be a complete binary segment (magic + data frames + optional stats frame);
// the result still decodes via the binary codec, which tolerates exactly one
// trailing chain frame.
func AppendChain(file []byte, c Chain) []byte {
	var p bytes.Buffer
	p.Write(chainMagic)
	var flags byte
	if c.Root {
		flags |= chainRootFlag
	}
	p.WriteByte(flags)
	putUvarint(&p, c.Seq)
	p.Write(c.Prev[:])

	out := bytes.NewBuffer(make([]byte, 0, len(file)+p.Len()+12))
	out.Write(file)
	writeFrame(out, p.Bytes())
	return out.Bytes()
}

// parseChainPayload decodes the chain frame payload (after CRC check).
func parseChainPayload(p []byte) (Chain, error) {
	var c Chain
	if !bytes.HasPrefix(p, chainMagic) {
		return c, fmt.Errorf("missing chain magic")
	}
	p = p[len(chainMagic):]
	if len(p) == 0 {
		return c, fmt.Errorf("missing flags byte")
	}
	flags := p[0]
	p = p[1:]
	if flags&^chainRootFlag != 0 {
		return c, fmt.Errorf("unknown chain flags %#02x", flags)
	}
	c.Root = flags&chainRootFlag != 0
	seq, n := binary.Uvarint(p)
	if n <= 0 {
		return c, fmt.Errorf("bad seq varint")
	}
	c.Seq = seq
	p = p[n:]
	if len(p) != len(c.Prev) {
		return c, fmt.Errorf("prev digest is %d bytes, want %d", len(p), len(c.Prev))
	}
	copy(c.Prev[:], p)
	return c, nil
}

// chainSplit locates the embedded chain frame of a binary segment: it walks
// the magic and the two data frames and, if a structurally valid chain frame
// follows, returns the byte offset where it starts. ok is false when the
// file carries no (valid, final) chain frame.
func chainSplit(data []byte) (off int, c Chain, ok bool) {
	if !bytes.HasPrefix(data, pbsMagic) {
		return 0, Chain{}, false
	}
	rest := data[len(pbsMagic):]
	if _, rest, _ = readFrame(rest); rest == nil {
		return 0, Chain{}, false
	}
	if _, rest, _ = readFrame(rest); rest == nil {
		return 0, Chain{}, false
	}
	// Skip the optional stats frame so the seal stays the final frame.
	if fp, after, err := readFrame(rest); err == nil && bytes.HasPrefix(fp, staMagic) {
		rest = after
	}
	off = len(data) - len(rest)
	if len(rest) == 0 {
		return 0, Chain{}, false
	}
	payload, rest, err := readFrame(rest)
	if err != nil || len(rest) != 0 {
		return 0, Chain{}, false
	}
	c, perr := parseChainPayload(payload)
	if perr != nil {
		return 0, Chain{}, false
	}
	return off, c, true
}

// ChainOf extracts the embedded chain seal of a binary segment file.
// ok is false for unsealed, non-binary, or damaged files.
func ChainOf(data []byte) (Chain, bool) {
	_, c, ok := chainSplit(data)
	return c, ok
}

// StripChain returns data without its embedded chain frame (data itself when
// no valid trailing chain frame is present). The result is the canonical
// frame sequence Encode produces.
func StripChain(data []byte) []byte {
	if off, _, ok := chainSplit(data); ok {
		return data[:off]
	}
	return data
}
