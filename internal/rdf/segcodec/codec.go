// Package segcodec is the pluggable segment codec layer of the provenance
// store: it decouples what a store file contains (an RDF sub-graph or delta
// segment) from how it is laid out on disk.
//
// Three codecs are registered: the text formats the store always spoke —
// N-Triples ("nt") and Turtle ("ttl") — and a binary ID-space format
// ("pbs") that serializes dictionary IDs instead of rendered terms, so the
// hot flush/merge paths never tokenize, escape, or re-parse term strings.
// Text formats remain the interchange surface; the binary format is the
// performance surface (DESIGN.md "Store codecs").
//
// Readers never need to be told a file's format: Detect sniffs the magic
// bytes of every registered codec and falls back to the text parser (which
// accepts the N-Triples/Turtle superset), so directories mixing .nt, .ttl,
// and .pbs files merge correctly.
package segcodec

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// Codec serializes and deserializes one on-disk store format.
type Codec interface {
	// Name is the short format name used by -format flags and config files.
	Name() string
	// Ext is the file extension including the leading dot.
	Ext() string
	// Magic returns the leading bytes identifying the format on disk, or
	// nil for text formats (which are identified by not matching any magic).
	Magic() []byte
	// Encode writes g's triples in this format. ns supplies prefix
	// compaction for codecs that use it (Turtle); others ignore it.
	Encode(w io.Writer, g *rdf.Graph, ns *rdf.Namespaces) error
	// Decode reads one document and unions its triples into the supplied
	// graph. Corrupt input must return an error (wrapping ErrCorrupt for
	// structural damage in binary framing), never panic.
	Decode(r io.Reader, into *rdf.Graph) error
}

// TermSource resolves dictionary IDs to terms; *rdf.Graph implements it.
type TermSource interface {
	TermOf(id rdf.ID) rdf.Term
}

// RefsEncoder is the ID-space fast path implemented by codecs that can
// serialize straight from insertion-log refs without rendering terms to
// text. The tracker's delta flush uses it so a binary flush touches only
// 12-byte TripleIDs plus the terms the segment introduces.
type RefsEncoder interface {
	EncodeRefs(w io.Writer, refs []rdf.TripleID, src TermSource) error
}

// TriplesEncoder is implemented by codecs that can serialize a bare triple
// slice (a delta segment) without an enclosing graph.
type TriplesEncoder interface {
	EncodeTriples(w io.Writer, ts []rdf.Triple) error
}

// ErrCorrupt is wrapped by every structural decode failure of the binary
// codec: bad magic, truncated frames, CRC mismatches, out-of-range IDs.
var ErrCorrupt = errors.New("segcodec: corrupt segment")

// ErrTruncated is the truncation sub-class of ErrCorrupt: the input is a
// strict prefix of a well-formed segment (a torn write cut it short).
// errors.Is(err, ErrCorrupt) holds for every ErrTruncated error, so callers
// that only care about "structurally bad" keep working; provio-verify uses
// the finer class to report "truncated" instead of "tampered".
var ErrTruncated = fmt.Errorf("%w: input truncated", ErrCorrupt)

// The registered codecs.
var (
	// NTriples is the one-triple-per-line text codec (.nt).
	NTriples Codec = ntCodec{}
	// Turtle is the prefix-compacted text codec (.ttl).
	Turtle Codec = ttlCodec{}
	// Binary is the ID-space binary segment codec (.pbs).
	Binary Codec = binCodec{}
	// Pack is the leveled pack container (.psk) holding member store files
	// verbatim; see pack.go.
	Pack Codec = packCodec{}
)

// codecs holds the registry in registration order.
var codecs = []Codec{NTriples, Turtle, Binary, Pack}

// Register adds a codec to the registry. Codecs registered later win name
// and extension collisions; built-ins are registered at init.
func Register(c Codec) { codecs = append(codecs, c) }

// All returns the registered codecs in registration order.
func All() []Codec {
	out := make([]Codec, len(codecs))
	copy(out, codecs)
	return out
}

// ByName returns the codec registered under the short format name.
func ByName(name string) (Codec, bool) {
	for i := len(codecs) - 1; i >= 0; i-- {
		if codecs[i].Name() == name {
			return codecs[i], true
		}
	}
	return nil, false
}

// ByExt returns the codec owning a file extension (leading dot included).
func ByExt(ext string) (Codec, bool) {
	for i := len(codecs) - 1; i >= 0; i-- {
		if codecs[i].Ext() == ext {
			return codecs[i], true
		}
	}
	return nil, false
}

// Exts returns every registered file extension in registration order — the
// store derives its accepted sub-graph extensions from this single list.
func Exts() []string {
	out := make([]string, 0, len(codecs))
	for _, c := range codecs {
		out = append(out, c.Ext())
	}
	return out
}

// Detect returns the codec for a file's contents: the codec whose magic
// bytes prefix data, or the N-Triples codec otherwise — its decoder parses
// the N-Triples/Turtle text superset, so any non-binary store file decodes
// through the fallback regardless of extension.
func Detect(data []byte) Codec {
	for i := len(codecs) - 1; i >= 0; i-- {
		if m := codecs[i].Magic(); len(m) > 0 && bytes.HasPrefix(data, m) {
			return codecs[i]
		}
	}
	return NTriples
}
