package segcodec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// buildPack encodes n small member segments plus an opaque sidecar-like
// member and returns the pack bytes, the member graphs' union, and entries.
func buildPack(t *testing.T, n int) ([]byte, *rdf.Graph, []PackEntry) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	union := rdf.NewGraph()
	var entries []PackEntry
	for i := 0; i < n; i++ {
		g := randomGraph(rng, 4+rng.Intn(20))
		union.Merge(g)
		var buf bytes.Buffer
		if err := Binary.Encode(&buf, g, nil); err != nil {
			t.Fatal(err)
		}
		st, ok := StatsOf(buf.Bytes())
		if !ok {
			t.Fatal("member has no stats")
		}
		entries = append(entries, PackEntry{
			Name:  "prov_p000000.seg000" + string(rune('0'+i)) + ".pbs",
			Data:  buf.Bytes(),
			Stats: &st,
		})
	}
	entries = append(entries, PackEntry{
		Name: "prov_p000000.seg0000.pbs.sum",
		Data: []byte("opaque sidecar bytes, not RDF"),
	})
	packStats := ComputeGraphStats(union)
	var pack bytes.Buffer
	if err := EncodePack(&pack, 1, entries, &packStats); err != nil {
		t.Fatal(err)
	}
	return pack.Bytes(), union, entries
}

// TestPackRoundTrip: a pack decodes (through the registered codec machinery)
// to the union of its RDF members, opaque members skipped; the header
// reports verbatim member extents.
func TestPackRoundTrip(t *testing.T) {
	pack, union, entries := buildPack(t, 5)

	if c := Detect(pack); c.Name() != "psk" {
		t.Fatalf("Detect(pack) = %s, want psk", c.Name())
	}
	got := rdf.NewGraph()
	if err := Pack.Decode(bytes.NewReader(pack), got); err != nil {
		t.Fatal(err)
	}
	if sortedNT(t, got) != sortedNT(t, union) {
		t.Fatal("pack decode does not reproduce the member union")
	}

	h, err := DecodePackHeader(pack)
	if err != nil {
		t.Fatal(err)
	}
	if h.Level != 1 || len(h.Members) != len(entries) {
		t.Fatalf("header: level %d, %d members; want 1, %d", h.Level, len(h.Members), len(entries))
	}
	if !h.HasStats {
		t.Fatal("pack-level stats missing")
	}
	if h.WantSize != int64(len(pack)) {
		t.Fatalf("WantSize %d, file is %d bytes", h.WantSize, len(pack))
	}
	for i, m := range h.Members {
		if m.Name != entries[i].Name {
			t.Fatalf("member %d name %q, want %q", i, m.Name, entries[i].Name)
		}
		if !bytes.Equal(pack[m.Off:m.Off+m.Size], entries[i].Data) {
			t.Fatalf("member %d bytes are not verbatim", i)
		}
		if (entries[i].Stats != nil) != m.HasStats {
			t.Fatalf("member %d stats presence mismatch", i)
		}
	}
}

// TestPackHeaderFromPrefix: the lazy-read path parses the header from a
// prefix of the file; too-short prefixes classify as truncated.
func TestPackHeaderFromPrefix(t *testing.T) {
	pack, _, _ := buildPack(t, 4)
	full, err := DecodePackHeader(pack)
	if err != nil {
		t.Fatal(err)
	}
	if full.BodyOff >= int64(len(pack)) {
		t.Fatal("pack has no body")
	}
	h, err := DecodePackHeader(pack[:full.BodyOff])
	if err != nil {
		t.Fatalf("header-only prefix rejected: %v", err)
	}
	if len(h.Members) != len(full.Members) || h.WantSize != full.WantSize {
		t.Fatal("prefix-parsed header differs from full parse")
	}
	for n := 0; n < int(full.BodyOff); n++ {
		if _, err := DecodePackHeader(pack[:n]); err == nil {
			t.Fatalf("header prefix %d/%d accepted", n, full.BodyOff)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix %d: error %v does not wrap ErrCorrupt", n, err)
		}
	}
}

// TestPackCorruption: structural damage anywhere in the pack yields a
// classified error from Decode, never wrong answers or panics.
func TestPackCorruption(t *testing.T) {
	pack, _, _ := buildPack(t, 3)
	if err := Pack.Decode(bytes.NewReader(pack[:len(pack)-3]), rdf.NewGraph()); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated pack: %v, want ErrTruncated", err)
	}
	if err := Pack.Decode(bytes.NewReader(append(append([]byte{}, pack...), 1)), rdf.NewGraph()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: %v, want ErrCorrupt", err)
	}
	for _, off := range []int{5, 9, 20, len(pack) / 2, len(pack) - 8} {
		mut := append([]byte{}, pack...)
		mut[off] ^= 0xFF
		err := Pack.Decode(bytes.NewReader(mut), rdf.NewGraph())
		if err == nil {
			// A flip inside an opaque member's bytes is invisible to Decode
			// (those bytes are skipped); anywhere else it must fail.
			h, herr := DecodePackHeader(pack)
			if herr != nil {
				t.Fatal(herr)
			}
			opaque := false
			for _, m := range h.Members {
				if m.Name == "prov_p000000.seg0000.pbs.sum" &&
					int64(off) >= m.Off && int64(off) < m.Off+m.Size {
					opaque = true
				}
			}
			if !opaque {
				t.Fatalf("flip at %d accepted", off)
			}
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: error %v does not wrap ErrCorrupt", off, err)
		}
	}
}

// TestPackRejectsNestedPack: packs cannot contain packs.
func TestPackRejectsNestedPack(t *testing.T) {
	inner, _, _ := buildPack(t, 2)
	var out bytes.Buffer
	err := EncodePack(&out, 2, []PackEntry{{Name: "prov_pack.l01.0000.psk", Data: inner}}, nil)
	if err == nil {
		t.Fatal("nested pack accepted")
	}
}

// TestPackEncodeRejectsLevelZero: L0 is by definition the loose-segment
// tier; encoding a pack claiming it is invalid.
func TestPackEncodeRejectsLevelZero(t *testing.T) {
	var out bytes.Buffer
	if err := EncodePack(&out, 0, nil, nil); err == nil {
		t.Fatal("level-0 pack accepted")
	}
}
