package segcodec

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// SegStats is the per-segment statistics block behind query pushdown
// (DESIGN.md "Leveled segments & pushdown"): a summary of what a segment can
// possibly contain, cheap enough to consult without decoding the segment.
// Binary segments carry it as a CRC32-framed 'STA\x01' frame between the
// triple block and the chain seal; pack files additionally carry one per
// member plus a pack-level union in their header.
//
// Every field is conservative: a reader may skip a segment only when the
// stats PROVE no triple of interest can be inside. Absent fields (legacy
// files, oversized boundary terms, too many predicates) always read as
// "could match", so pruning can never drop results — at worst it decodes a
// segment it did not need.
//
// The block holds:
//
//   - triple and term counts (a zero-triple segment matches nothing);
//   - a zone map: the minimum and maximum term per column (S, P, O) in the
//     canonical rdf.TermLess order — the dictionary is sorted in that order,
//     so these are the terms of the smallest and largest local ID each
//     column references;
//   - the exact distinct-predicate list (capped; beyond the cap the list is
//     omitted rather than truncated, which would be unsound);
//   - a Bloom filter over every term in the segment's dictionary, so "does
//     term X appear here at all" is answerable with no false negatives.
type SegStats struct {
	Triples uint64
	Terms   uint64
	// ZoneOK marks which per-column zone maps are present; Min/Max are the
	// boundary terms of present columns. A column's zone map is omitted when
	// a boundary term's value exceeds maxZoneValueLen (keeping the frame
	// small and the comparison cheap).
	ZoneOK   [3]bool
	Min, Max [3]rdf.Term
	// Preds is the exact distinct-predicate list in canonical term order,
	// or nil when the segment has more than maxPredList distinct predicates
	// (or the stats block predates the field).
	Preds []rdf.Term
	// Bloom is the term membership filter; an empty filter means absent.
	Bloom Bloom
}

// staMagic leads the stats frame payload, distinguishing it from the chain
// frame and from a stray data frame.
var staMagic = []byte{'S', 'T', 'A', 0x01}

const (
	// maxZoneValueLen bounds the boundary-term values stored in a zone map;
	// columns with longer boundaries omit their zone map (bloom still works).
	maxZoneValueLen = 256
	// maxPredList bounds the exact distinct-predicate list.
	maxPredList = 64
	// bloomBitsPerTerm and bloomHashes size the term filter for roughly a
	// 1% false-positive rate.
	bloomBitsPerTerm = 10
	bloomHashes      = 7
)

// stats flag bits.
const (
	staZoneS = 1 << iota
	staZoneP
	staZoneO
	staPreds
	staBloom
)

// Bloom is a split Bloom filter over term identities (double hashing over a
// 64-bit FNV-1a of the term's kind, value, language, and datatype).
type Bloom struct {
	K    uint8
	Bits []byte
}

// Empty reports whether the filter is absent.
func (b Bloom) Empty() bool { return len(b.Bits) == 0 }

// newBloom returns a filter sized for n terms.
func newBloom(n int) Bloom {
	bits := n * bloomBitsPerTerm
	if bits < 64 {
		bits = 64
	}
	bits = (bits + 63) &^ 63
	return Bloom{K: bloomHashes, Bits: make([]byte, bits/8)}
}

// termHash is the 64-bit FNV-1a over a term's identity.
func termHash(t rdf.Term) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	step := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xFF // field separator outside the byte alphabet boundary
		h *= prime
	}
	h ^= uint64(t.Kind)
	h *= prime
	step(t.Value)
	step(t.Lang)
	step(t.Datatype)
	return h
}

// Add sets the term's bits.
func (b Bloom) Add(t rdf.Term) {
	h := termHash(t)
	h1, h2 := uint32(h), uint32(h>>32)|1
	m := uint32(len(b.Bits) * 8)
	for i := uint32(0); i < uint32(b.K); i++ {
		idx := (h1 + i*h2) % m
		b.Bits[idx/8] |= 1 << (idx % 8)
	}
}

// Has reports whether the term may be in the set (false = definitely not).
func (b Bloom) Has(t rdf.Term) bool {
	if b.Empty() {
		return true
	}
	h := termHash(t)
	h1, h2 := uint32(h), uint32(h>>32)|1
	m := uint32(len(b.Bits) * 8)
	for i := uint32(0); i < uint32(b.K); i++ {
		idx := (h1 + i*h2) % m
		if b.Bits[idx/8]&(1<<(idx%8)) == 0 {
			return false
		}
	}
	return true
}

// ComputeStats derives the stats block of a segment from its sorted term
// dictionary and its sorted, deduplicated local-ID triples — the exact
// arrays writeSegment serializes, so encode and decode agree byte-for-byte
// on the canonical stats frame.
func ComputeStats(terms []rdf.Term, tris [][3]uint32) SegStats {
	st := SegStats{Triples: uint64(len(tris)), Terms: uint64(len(terms))}
	st.Bloom = newBloom(len(terms))
	for _, t := range terms {
		st.Bloom.Add(t)
	}
	if len(tris) == 0 {
		st.Preds = []rdf.Term{}
		return st
	}
	var mn, mx [3]uint32
	for c := 0; c < 3; c++ {
		mn[c], mx[c] = tris[0][c], tris[0][c]
	}
	predSet := make(map[uint32]bool)
	for _, t := range tris {
		for c := 0; c < 3; c++ {
			if t[c] < mn[c] {
				mn[c] = t[c]
			}
			if t[c] > mx[c] {
				mx[c] = t[c]
			}
		}
		predSet[t[1]] = true
	}
	// The dictionary is sorted in canonical term order, so the boundary
	// local IDs map straight to boundary terms.
	for c := 0; c < 3; c++ {
		lo, hi := terms[mn[c]], terms[mx[c]]
		if len(lo.Value) <= maxZoneValueLen && len(hi.Value) <= maxZoneValueLen {
			st.ZoneOK[c] = true
			st.Min[c], st.Max[c] = lo, hi
		}
	}
	if len(predSet) <= maxPredList {
		ids := make([]uint32, 0, len(predSet))
		for id := range predSet {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		st.Preds = make([]rdf.Term, len(ids))
		for i, id := range ids {
			st.Preds[i] = terms[id]
		}
	}
	return st
}

// ComputeGraphStats is ComputeStats over a whole graph — the pack encoder
// uses it to build the pack-level union stats from its members' decoded
// triples (text members included, which carry no stats of their own).
func ComputeGraphStats(g *rdf.Graph) SegStats {
	terms, tris := termTriples(g.Triples())
	sortDedupTriples(tris)
	return ComputeStats(terms, tris)
}

// encode renders the canonical stats frame payload.
func (st *SegStats) encode() []byte {
	var b bytes.Buffer
	b.Write(staMagic)
	putUvarint(&b, st.Triples)
	putUvarint(&b, st.Terms)
	var flags byte
	for c := 0; c < 3; c++ {
		if st.ZoneOK[c] {
			flags |= staZoneS << c
		}
	}
	if st.Preds != nil {
		flags |= staPreds
	}
	if !st.Bloom.Empty() {
		flags |= staBloom
	}
	b.WriteByte(flags)
	for c := 0; c < 3; c++ {
		if st.ZoneOK[c] {
			putTerm(&b, st.Min[c])
			putTerm(&b, st.Max[c])
		}
	}
	if st.Preds != nil {
		putUvarint(&b, uint64(len(st.Preds)))
		for _, p := range st.Preds {
			putTerm(&b, p)
		}
	}
	if !st.Bloom.Empty() {
		b.WriteByte(st.Bloom.K)
		putUvarint(&b, uint64(len(st.Bloom.Bits)))
		b.Write(st.Bloom.Bits)
	}
	return b.Bytes()
}

// parseStatsPayload decodes a stats frame payload (after the CRC check).
func parseStatsPayload(p []byte) (SegStats, error) {
	var st SegStats
	if !bytes.HasPrefix(p, staMagic) {
		return st, fmt.Errorf("missing stats magic")
	}
	p = p[len(staMagic):]
	var err error
	if st.Triples, p, err = getUvarint(p); err != nil {
		return st, fmt.Errorf("triple count: %v", err)
	}
	if st.Terms, p, err = getUvarint(p); err != nil {
		return st, fmt.Errorf("term count: %v", err)
	}
	if len(p) == 0 {
		return st, fmt.Errorf("missing flags byte")
	}
	flags := p[0]
	p = p[1:]
	if flags&^(staZoneS|staZoneP|staZoneO|staPreds|staBloom) != 0 {
		return st, fmt.Errorf("unknown stats flags %#02x", flags)
	}
	for c := 0; c < 3; c++ {
		if flags&(staZoneS<<c) == 0 {
			continue
		}
		st.ZoneOK[c] = true
		if st.Min[c], p, err = getTerm(p); err != nil {
			return st, fmt.Errorf("zone %d min: %v", c, err)
		}
		if st.Max[c], p, err = getTerm(p); err != nil {
			return st, fmt.Errorf("zone %d max: %v", c, err)
		}
	}
	if flags&staPreds != 0 {
		var n uint64
		if n, p, err = getUvarint(p); err != nil {
			return st, fmt.Errorf("predicate count: %v", err)
		}
		if n > maxPredList {
			return st, fmt.Errorf("predicate list of %d exceeds cap %d", n, maxPredList)
		}
		st.Preds = make([]rdf.Term, 0, n)
		for i := uint64(0); i < n; i++ {
			var t rdf.Term
			if t, p, err = getTerm(p); err != nil {
				return st, fmt.Errorf("predicate %d: %v", i, err)
			}
			st.Preds = append(st.Preds, t)
		}
	}
	if flags&staBloom != 0 {
		if len(p) == 0 {
			return st, fmt.Errorf("missing bloom k byte")
		}
		st.Bloom.K = p[0]
		p = p[1:]
		var n uint64
		if n, p, err = getUvarint(p); err != nil {
			return st, fmt.Errorf("bloom size: %v", err)
		}
		if st.Bloom.K == 0 || n == 0 || n > uint64(len(p)) {
			return st, fmt.Errorf("bloom of %d bytes exceeds remaining %d", n, len(p))
		}
		st.Bloom.Bits = append([]byte(nil), p[:n]...)
		p = p[n:]
	}
	if len(p) != 0 {
		return st, fmt.Errorf("%d trailing bytes", len(p))
	}
	return st, nil
}

// putTerm serializes one term (kind, value, and literal tags).
func putTerm(b *bytes.Buffer, t rdf.Term) {
	b.WriteByte(byte(t.Kind))
	putUvarint(b, uint64(len(t.Value)))
	b.WriteString(t.Value)
	if t.Kind == rdf.LiteralTerm {
		putUvarint(b, uint64(len(t.Lang)))
		b.WriteString(t.Lang)
		putUvarint(b, uint64(len(t.Datatype)))
		b.WriteString(t.Datatype)
	}
}

// getTerm deserializes one putTerm-encoded term.
func getTerm(p []byte) (rdf.Term, []byte, error) {
	var t rdf.Term
	if len(p) == 0 {
		return t, nil, fmt.Errorf("missing kind byte")
	}
	t.Kind = rdf.TermKind(p[0])
	p = p[1:]
	if t.Kind != rdf.IRITerm && t.Kind != rdf.BlankTerm && t.Kind != rdf.LiteralTerm {
		return t, nil, fmt.Errorf("invalid term kind %d", t.Kind)
	}
	var err error
	if t.Value, p, err = getString(p); err != nil {
		return t, nil, err
	}
	if t.Kind == rdf.LiteralTerm {
		if t.Lang, p, err = getString(p); err != nil {
			return t, nil, err
		}
		if t.Datatype, p, err = getString(p); err != nil {
			return t, nil, err
		}
	}
	return t, p, nil
}

// inZone reports whether t can lie inside column c's zone map (true when the
// column has no zone map).
func (st *SegStats) inZone(c int, t rdf.Term) bool {
	if !st.ZoneOK[c] {
		return true
	}
	return !rdf.TermLess(t, st.Min[c]) && !rdf.TermLess(st.Max[c], t)
}

// CanMatch reports whether a triple pattern (nil = wildcard per position)
// could match any triple of the segment. False means provably no match, so
// the segment may be skipped without decoding.
func (st *SegStats) CanMatch(s, p, o *rdf.Term) bool {
	if st.Triples == 0 {
		return false
	}
	if p != nil && st.Preds != nil {
		found := false
		for _, t := range st.Preds {
			if t == *p {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for c, t := range []*rdf.Term{s, p, o} {
		if t == nil {
			continue
		}
		if !st.Bloom.Has(*t) {
			return false
		}
		if !st.inZone(c, *t) {
			return false
		}
	}
	return true
}

// CanContainNode reports whether the term could appear in the segment's
// subject or object column — the probe the pruned lineage traversal uses for
// frontier nodes (edges and annotations both touch a node as S or O).
func (st *SegStats) CanContainNode(t rdf.Term) bool {
	if st.Triples == 0 {
		return false
	}
	if !st.Bloom.Has(t) {
		return false
	}
	return st.inZone(0, t) || st.inZone(2, t)
}

// StatsOf extracts the embedded stats frame of a binary segment file.
// ok is false for legacy (pre-stats), non-binary, or damaged files — the
// always-match answer, so callers degrade to decoding.
func StatsOf(data []byte) (SegStats, bool) {
	payload, _, ok := statsSplit(data)
	if !ok {
		return SegStats{}, false
	}
	st, err := parseStatsPayload(payload)
	if err != nil {
		return SegStats{}, false
	}
	return st, true
}

// statsSplit locates the stats frame of a binary segment: payload is the
// frame payload, off the byte offset where the frame starts. ok is false
// when no structurally valid stats frame is present.
func statsSplit(data []byte) (payload []byte, off int, ok bool) {
	if !bytes.HasPrefix(data, pbsMagic) {
		return nil, 0, false
	}
	rest := data[len(pbsMagic):]
	if _, rest, _ = readFrame(rest); rest == nil {
		return nil, 0, false
	}
	if _, rest, _ = readFrame(rest); rest == nil {
		return nil, 0, false
	}
	off = len(data) - len(rest)
	payload, _, err := readFrame(rest)
	if err != nil || !bytes.HasPrefix(payload, staMagic) {
		return nil, 0, false
	}
	return payload, off, true
}

// StripStats returns data without its embedded stats frame (data itself when
// none is present) — the pre-stats payload form, used by canonicality checks
// that compare across format generations.
func StripStats(data []byte) []byte {
	payload, off, ok := statsSplit(data)
	if !ok {
		return data
	}
	var lenBytes bytes.Buffer
	putUvarint(&lenBytes, uint64(len(payload)))
	frameLen := lenBytes.Len() + len(payload) + 4
	out := make([]byte, 0, len(data)-frameLen)
	out = append(out, data[:off]...)
	out = append(out, data[off+frameLen:]...)
	return out
}
