package rdf

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestAddBatchParityWithAdd is the batched-ingest parity property test: for a
// random triple stream containing duplicates and invalid triples, feeding the
// stream through AddBatch in random-sized chunks must leave the graph in a
// state indistinguishable from sequential Add — same added count, same triple
// set, same insertion-log order, same per-predicate statistics, same
// cardinality answers — and the equivalence must survive interleaved Removes.
func TestAddBatchParityWithAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))

	subjects := make([]Term, 10)
	for i := range subjects {
		subjects[i] = IRI(fmt.Sprintf("http://example.org/s/%d", i))
	}
	preds := make([]Term, 6)
	for i := range preds {
		preds[i] = IRI(fmt.Sprintf("http://example.org/p/%d", i))
	}
	objects := []Term{
		IRI("http://example.org/o/0"),
		IRI("http://example.org/o/1"),
		Blank("b0"),
		Literal("zero"),
		Integer(0),
		Integer(42),
		Double(3.5),
		LangLiteral("hallo", "de"),
	}
	objects = append(objects, subjects[:4]...) // subjects reused as objects

	randTriple := func() Triple {
		tr := Triple{
			S: subjects[rng.Intn(len(subjects))],
			P: preds[rng.Intn(len(preds))],
			O: objects[rng.Intn(len(objects))],
		}
		// A slice of the stream is structurally invalid: Add rejects these and
		// AddBatch must skip them without disturbing parity.
		switch r := rng.Intn(100); {
		case r < 4:
			tr.S = Literal("bad-subject")
		case r < 8:
			tr.P = Blank("bad-pred")
		case r < 10:
			tr = Triple{}
		}
		return tr
	}

	const total = 4000
	stream := make([]Triple, total)
	for i := range stream {
		stream[i] = randTriple()
	}

	seq := NewGraph()
	seqAdded := 0
	for _, tr := range stream {
		if seq.Add(tr) {
			seqAdded++
		}
	}

	bat := NewGraph()
	batAdded := 0
	for i := 0; i < len(stream); {
		n := 1 + rng.Intn(9)
		if i+n > len(stream) {
			n = len(stream) - i
		}
		batAdded += bat.AddBatch(stream[i : i+n])
		i += n
	}

	assertParity := func(stage string) {
		t.Helper()
		if seq.Len() != bat.Len() {
			t.Fatalf("%s: Len: sequential %d, batched %d", stage, seq.Len(), bat.Len())
		}
		if seq.LogLen() != bat.LogLen() {
			t.Fatalf("%s: LogLen: sequential %d, batched %d", stage, seq.LogLen(), bat.LogLen())
		}
		// Insertion-log order must be identical term-for-term (surviving
		// entries only, which is what the flush pipeline serializes).
		so, bo := seq.TriplesSince(0), bat.TriplesSince(0)
		if len(so) != len(bo) {
			t.Fatalf("%s: log replay length: sequential %d, batched %d", stage, len(so), len(bo))
		}
		for i := range so {
			if so[i] != bo[i] {
				t.Fatalf("%s: insertion log diverges at %d: %v vs %v", stage, i, so[i], bo[i])
			}
		}
		// Same triple set (lengths equal, so one-sided containment suffices).
		for _, tr := range so {
			if !bat.Has(tr) {
				t.Fatalf("%s: batched graph missing %v", stage, tr)
			}
		}
		// Per-predicate maintained statistics.
		for _, p := range preds {
			sid, sok := seq.TermID(p)
			bid, bok := bat.TermID(p)
			if sok != bok {
				t.Fatalf("%s: predicate %v interned in one graph only", stage, p)
			}
			if !sok {
				continue
			}
			st, ss, sobj := seq.PredStats(sid)
			bt, bs, bobj := bat.PredStats(bid)
			if st != bt || ss != bs || sobj != bobj {
				t.Fatalf("%s: PredStats(%v): sequential (%d,%d,%d), batched (%d,%d,%d)",
					stage, p, st, ss, sobj, bt, bs, bobj)
			}
		}
		// Cardinality oracle parity on random patterns (IDs differ between
		// the graphs — interning order is not part of the contract — so
		// patterns are mapped per graph through TermID).
		idOf := func(g *Graph, tm Term, bound bool) (ID, bool) {
			if !bound {
				return NoID, true
			}
			return g.TermID(tm)
		}
		for i := 0; i < 300; i++ {
			sT := subjects[rng.Intn(len(subjects))]
			pT := preds[rng.Intn(len(preds))]
			oT := objects[rng.Intn(len(objects))]
			sb, pb, ob := rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0
			sid, ok1 := idOf(seq, sT, sb)
			pid, ok2 := idOf(seq, pT, pb)
			oid, ok3 := idOf(seq, oT, ob)
			bsid, ok4 := idOf(bat, sT, sb)
			bpid, ok5 := idOf(bat, pT, pb)
			boid, ok6 := idOf(bat, oT, ob)
			if ok1 != ok4 || ok2 != ok5 || ok3 != ok6 {
				t.Fatalf("%s: interning disagreement for pattern (%v %v %v)", stage, sT, pT, oT)
			}
			if !ok1 || !ok2 || !ok3 {
				continue
			}
			if sc, bc := seq.CountMatchIDs(sid, pid, oid), bat.CountMatchIDs(bsid, bpid, boid); sc != bc {
				t.Fatalf("%s: CountMatchIDs(%v,%v,%v bound=%v,%v,%v): sequential %d, batched %d",
					stage, sT, pT, oT, sb, pb, ob, sc, bc)
			}
		}
	}

	if seqAdded != batAdded {
		t.Fatalf("added count: sequential %d, batched %d", seqAdded, batAdded)
	}
	assertParity("after insert")

	// Remove a random sample (some present, some already removed) from both
	// graphs in the same order; all invariants must keep holding.
	for i := 0; i < 1500; i++ {
		tr := randTriple()
		sr, br := seq.Remove(tr), bat.Remove(tr)
		if sr != br {
			t.Fatalf("Remove(%v): sequential %v, batched %v", tr, sr, br)
		}
	}
	assertParity("after remove")

	// Re-adding after removal must also agree (log grows again, membership
	// filtering in TriplesSince stays consistent).
	for i := 0; i < 1000; i++ {
		tr := randTriple()
		if seq.Add(tr) != (bat.AddBatch([]Triple{tr}) == 1) {
			t.Fatalf("re-add disagreement for %v", tr)
		}
	}
	assertParity("after re-add")
}

// TestAddBatchSkipsInvalid pins AddBatch's rejection semantics: invalid
// triples are skipped (not inserted, not logged, not counted), exactly as Add
// rejects them one at a time.
func TestAddBatchSkipsInvalid(t *testing.T) {
	g := NewGraph()
	n := g.AddBatch([]Triple{
		{S: IRI("http://x/a"), P: IRI("http://x/p"), O: Literal("v")},
		{S: Literal("nope"), P: IRI("http://x/p"), O: Literal("v")}, // literal subject
		{S: IRI("http://x/a"), P: Blank("b"), O: Literal("v")},      // blank predicate
		{}, // zero triple
		{S: IRI("http://x/a"), P: IRI("http://x/p"), O: Literal("v")}, // duplicate
		{S: IRI("http://x/b"), P: IRI("http://x/p"), O: IRI("http://x/a")},
	})
	if n != 2 {
		t.Fatalf("AddBatch added %d, want 2", n)
	}
	if g.Len() != 2 || g.LogLen() != 2 {
		t.Fatalf("Len=%d LogLen=%d, want 2/2", g.Len(), g.LogLen())
	}
}

// TestAddAllDelegatesToBatch keeps AddAll's historical count semantics: the
// number of newly added triples, with duplicates inside the slice counted
// once.
func TestAddAllDelegatesToBatch(t *testing.T) {
	g := NewGraph()
	tr := Triple{S: IRI("http://x/a"), P: IRI("http://x/p"), O: Integer(1)}
	if n := g.AddAll([]Triple{tr, tr, tr}); n != 1 {
		t.Fatalf("AddAll = %d, want 1", n)
	}
	if n := g.AddAll([]Triple{tr}); n != 0 {
		t.Fatalf("AddAll of existing = %d, want 0", n)
	}
}
