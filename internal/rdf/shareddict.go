package rdf

// SharedDict is a standalone interning dictionary with the same striped
// layout and ID semantics as the per-graph term dictionary: dense IDs in
// allocation order, append-only, safe for concurrent use. It exists so a
// federation of independently-decoded graphs (each with its own local ID
// space) can be bridged into one global ID space — core's out-of-core
// LazySource interns every unit's terms here at decode time and keeps a
// per-unit remap table, letting the query executor join across units in
// global ID space without ever merging the graphs.
//
// Because the table is append-only, remap tables built against an earlier
// state stay valid forever: an ID handed out once never changes meaning.
type SharedDict struct {
	d termDict
}

// NewSharedDict returns an empty shared dictionary.
func NewSharedDict() *SharedDict {
	sd := &SharedDict{}
	sd.d.init()
	return sd
}

// Intern returns the global ID for t, adding it if new.
func (sd *SharedDict) Intern(t Term) ID {
	return sd.d.intern(t)
}

// Lookup returns the global ID for t and whether it is interned.
func (sd *SharedDict) Lookup(t Term) (ID, bool) {
	return sd.d.lookup(t)
}

// TermAt returns the term interned under id, or the zero Term if id is out
// of range (including NoID).
func (sd *SharedDict) TermAt(id ID) Term {
	return sd.d.termAt(id)
}

// Count returns the number of interned terms.
func (sd *SharedDict) Count() int {
	return sd.d.count()
}

// RemapSnapshot interns every term of snap into the shared dictionary and
// returns the bridge between the two ID spaces:
//
//   - toGlobal[local] is the global ID for snap's local ID (dense: snap's
//     IDs are allocation-order indexes, so a slice suffices);
//   - toLocal maps a global ID back to snap's local ID, containing exactly
//     the globals whose terms snap has interned.
//
// Both sides are immutable once built. Because interning is deterministic
// in snap's local ID order, re-decoding identical bytes against the same
// dictionary reproduces the identical tables — the property that lets an
// evicted-and-reloaded cache unit resume serving the same global IDs.
func (sd *SharedDict) RemapSnapshot(snap *Snapshot) (toGlobal []ID, toLocal map[ID]ID) {
	n := snap.TermCount()
	toGlobal = make([]ID, n)
	toLocal = make(map[ID]ID, n)
	for local := 0; local < n; local++ {
		g := sd.d.intern(snap.TermOf(ID(local)))
		toGlobal[local] = g
		toLocal[g] = ID(local)
	}
	return toGlobal, toLocal
}
