package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	cases := []struct {
		name string
		term Term
		kind TermKind
	}{
		{"iri", IRI("http://example.org/a"), IRITerm},
		{"blank", Blank("b0"), BlankTerm},
		{"literal", Literal("hello"), LiteralTerm},
		{"lang", LangLiteral("hello", "en"), LiteralTerm},
		{"typed", TypedLiteral("5", XSDInteger), LiteralTerm},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.term.Kind != c.kind {
				t.Fatalf("kind = %v, want %v", c.term.Kind, c.kind)
			}
			if c.term.IsZero() {
				t.Fatal("constructed term reported zero")
			}
		})
	}
}

func TestTermKindPredicates(t *testing.T) {
	if !IRI("x").IsIRI() || IRI("x").IsBlank() || IRI("x").IsLiteral() {
		t.Error("IRI predicates wrong")
	}
	if !Blank("x").IsBlank() || Blank("x").IsIRI() {
		t.Error("Blank predicates wrong")
	}
	if !Literal("x").IsLiteral() || Literal("x").IsIRI() {
		t.Error("Literal predicates wrong")
	}
	var zero Term
	if !zero.IsZero() {
		t.Error("zero Term not reported as zero")
	}
}

func TestTypedLiteralStringCollapses(t *testing.T) {
	// xsd:string typed literals are normalized to plain literals so that
	// Literal("a") and TypedLiteral("a", XSDString) compare equal.
	if TypedLiteral("a", XSDString) != Literal("a") {
		t.Error("xsd:string literal did not collapse to plain literal")
	}
}

func TestNumericLiterals(t *testing.T) {
	if got := Integer(42); got.Value != "42" || got.Datatype != XSDInteger {
		t.Errorf("Integer(42) = %+v", got)
	}
	if got := Integer(-7); got.Value != "-7" {
		t.Errorf("Integer(-7) = %+v", got)
	}
	if got := Double(2.5); got.Value != "2.5" || got.Datatype != XSDDouble {
		t.Errorf("Double(2.5) = %+v", got)
	}
	if got := Boolean(true); got.Value != "true" || got.Datatype != XSDBoolean {
		t.Errorf("Boolean(true) = %+v", got)
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{IRI("http://e/x"), "<http://e/x>"},
		{Blank("n1"), "_:n1"},
		{Literal("hi"), `"hi"`},
		{LangLiteral("hi", "en"), `"hi"@en`},
		{TypedLiteral("5", XSDInteger), `"5"^^<` + XSDInteger + `>`},
		{Literal("a\"b"), `"a\"b"`},
		{Literal("a\nb"), `"a\nb"`},
		{Literal(`a\b`), `"a\\b"`},
		{Literal("a\tb"), `"a\tb"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTripleString(t *testing.T) {
	tr := Triple{IRI("http://e/s"), IRI("http://e/p"), Literal("o")}
	want := `<http://e/s> <http://e/p> "o" .`
	if got := tr.String(); got != want {
		t.Errorf("Triple.String() = %q, want %q", got, want)
	}
}

func TestTripleValid(t *testing.T) {
	s, p, o := IRI("http://e/s"), IRI("http://e/p"), Literal("o")
	cases := []struct {
		name  string
		tr    Triple
		valid bool
	}{
		{"iri-subject", Triple{s, p, o}, true},
		{"blank-subject", Triple{Blank("b"), p, o}, true},
		{"iri-object", Triple{s, p, IRI("http://e/o")}, true},
		{"blank-object", Triple{s, p, Blank("b")}, true},
		{"literal-subject", Triple{o, p, o}, false},
		{"literal-predicate", Triple{s, o, o}, false},
		{"blank-predicate", Triple{s, Blank("b"), o}, false},
		{"zero-object", Triple{s, p, Term{}}, false},
		{"zero-subject", Triple{Term{}, p, o}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.tr.Valid(); got != c.valid {
				t.Errorf("Valid() = %v, want %v", got, c.valid)
			}
		})
	}
}

// Property: literal escaping round-trips through the Turtle parser for any
// string content.
func TestLiteralEscapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if !isValidUTF8ForTest(s) {
			return true // parser operates on UTF-8 documents
		}
		g := NewGraph()
		g.Add(Triple{IRI("http://e/s"), IRI("http://e/p"), Literal(s)})
		var sb strings.Builder
		if err := WriteNTriples(&sb, g); err != nil {
			return false
		}
		g2, err := ParseNTriples(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		return g2.Has(Triple{IRI("http://e/s"), IRI("http://e/p"), Literal(s)})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func isValidUTF8ForTest(s string) bool {
	for _, r := range s {
		if r == 0xFFFD {
			return false
		}
	}
	return true
}
