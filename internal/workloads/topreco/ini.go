// Package topreco reproduces the paper's Top Reco workflow (§3.1, §6.2): a
// machine-learning pipeline for top-quark reconstruction. It reads an
// ".ini" configuration, converts ".root"-style input events into
// TFRecord-framed training/test files, trains a model whose accuracy
// depends on the configured hyperparameters and dataset preselections, and
// reconstructs top quarks from the highest scores. The provenance need is
// metadata version control: the mapping from configuration versions to
// training accuracy.
package topreco

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// INI is a parsed configuration: section -> key -> value. Keys outside any
// section live under "".
type INI struct {
	sections map[string]map[string]string
}

// NewINI returns an empty configuration.
func NewINI() *INI {
	return &INI{sections: map[string]map[string]string{}}
}

// Set stores a value.
func (c *INI) Set(section, key, value string) {
	s, ok := c.sections[section]
	if !ok {
		s = map[string]string{}
		c.sections[section] = s
	}
	s[key] = value
}

// Get reads a value.
func (c *INI) Get(section, key string) (string, bool) {
	v, ok := c.sections[section][key]
	return v, ok
}

// GetDefault reads a value with a fallback.
func (c *INI) GetDefault(section, key, def string) string {
	if v, ok := c.Get(section, key); ok {
		return v
	}
	return def
}

// Sections returns the section names, sorted ("" first when present).
func (c *INI) Sections() []string {
	out := make([]string, 0, len(c.sections))
	for s := range c.sections {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Keys returns a section's keys, sorted.
func (c *INI) Keys(section string) []string {
	s := c.sections[section]
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the total number of keys.
func (c *INI) Len() int {
	n := 0
	for _, s := range c.sections {
		n += len(s)
	}
	return n
}

// ParseINI parses an INI document: [sections], key = value lines, '#' and
// ';' comments, blank lines.
func ParseINI(r io.Reader) (*INI, error) {
	c := NewINI()
	sc := bufio.NewScanner(r)
	section := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == ';' {
			continue
		}
		if line[0] == '[' {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("topreco: ini line %d: unterminated section %q", lineNo, line)
			}
			section = strings.TrimSpace(line[1 : len(line)-1])
			if section == "" {
				return nil, fmt.Errorf("topreco: ini line %d: empty section name", lineNo)
			}
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("topreco: ini line %d: missing '=': %q", lineNo, line)
		}
		key = strings.TrimSpace(key)
		if key == "" {
			return nil, fmt.Errorf("topreco: ini line %d: empty key", lineNo)
		}
		c.Set(section, key, strings.TrimSpace(val))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// WriteINI serializes the configuration deterministically.
func WriteINI(w io.Writer, c *INI) error {
	bw := bufio.NewWriter(w)
	for _, sec := range c.Sections() {
		if sec != "" {
			if _, err := fmt.Fprintf(bw, "[%s]\n", sec); err != nil {
				return err
			}
		}
		for _, k := range c.Keys(sec) {
			v, _ := c.Get(sec, k)
			if _, err := fmt.Fprintf(bw, "%s = %s\n", k, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Flatten returns "section.key" -> value pairs in sorted order — the shape
// the provenance trackers record.
func (c *INI) Flatten() [][2]string {
	var out [][2]string
	for _, sec := range c.Sections() {
		for _, k := range c.Keys(sec) {
			v, _ := c.Get(sec, k)
			name := k
			if sec != "" {
				name = sec + "." + k
			}
			out = append(out, [2]string{name, v})
		}
	}
	return out
}
