package topreco

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/posixio"
	"github.com/hpc-io/prov-io/internal/provlake"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/simclock"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// Instrument selects the provenance system instrumenting the training loop.
type Instrument int

// Instrumentation modes.
const (
	InstrumentNone Instrument = iota
	InstrumentProvIO
	InstrumentProvLake
)

// String names the mode.
func (i Instrument) String() string {
	switch i {
	case InstrumentNone:
		return "baseline"
	case InstrumentProvIO:
		return "prov-io"
	case InstrumentProvLake:
		return "provlake"
	default:
		return "unknown"
	}
}

// Config parameterizes one Top Reco run.
type Config struct {
	Epochs int
	// Events is the training-set size; a quarter as many test events.
	Events int
	// ExtraConfigs pads the configuration with synthetic fields so the
	// Figure 8 sweep can track 20/40/80 configuration entries.
	ExtraConfigs int
	// EpochTime is the modeled wall time of one training epoch (the GNN
	// trains for minutes per epoch on the paper's testbed).
	EpochTime time.Duration
	// Version is the configuration version recorded with this run.
	Version    int
	Instrument Instrument
	Cost       simclock.CostModel
	User       string
	// LearningRate / BatchSize / Preselection override the defaults
	// written into the generated config file.
	LearningRate float64
	BatchSize    int
	Preselection float64
	Seed         int64
}

func (c Config) withDefaults() Config {
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.Events <= 0 {
		c.Events = 2000
	}
	if c.EpochTime == 0 {
		c.EpochTime = 30 * time.Second
	}
	if c.Cost == (simclock.CostModel{}) {
		c.Cost = simclock.Default()
	}
	if c.User == "" {
		c.User = "physicist"
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.Preselection == 0 {
		c.Preselection = 0.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result summarizes one run.
type Result struct {
	Completion    time.Duration
	ProvBytes     int64
	Records       int64
	FinalAccuracy float64
	// AccuracyByEpoch is the per-epoch test accuracy.
	AccuracyByEpoch []float64
	// Store is the PROV-IO store (nil unless InstrumentProvIO).
	Store *core.Store
	// Reconstructed is the number of top-quark candidates picked.
	Reconstructed int
}

// WriteConfigINI materializes the run's .ini configuration file.
func WriteConfigINI(w io.Writer, cfg Config) error {
	ini := NewINI()
	ini.Set("model", "learning_rate", fmt.Sprintf("%g", cfg.LearningRate))
	ini.Set("model", "batch_size", strconv.Itoa(cfg.BatchSize))
	ini.Set("model", "epochs", strconv.Itoa(cfg.Epochs))
	ini.Set("model", "hidden_dim", "64")
	ini.Set("model", "layers", "3")
	ini.Set("data", "preselection", fmt.Sprintf("%g", cfg.Preselection))
	ini.Set("data", "events", strconv.Itoa(cfg.Events))
	ini.Set("data", "seed", strconv.FormatInt(cfg.Seed, 10))
	for i := 0; i < cfg.ExtraConfigs; i++ {
		ini.Set("extra", fmt.Sprintf("param_%03d", i), fmt.Sprintf("value_%d", i))
	}
	return WriteINI(w, ini)
}

// Run executes the workflow: config parse, dataset generation to TFRecord
// files, training with per-epoch provenance, and reconstruction.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	fsStore := vfs.NewStore()
	view := fsStore.NewView()
	clock := simclock.NewClock()
	if err := view.MkdirAll("/topreco"); err != nil {
		return Result{}, err
	}

	// Stage the .ini configuration.
	var iniDoc strings.Builder
	if err := WriteConfigINI(&iniDoc, cfg); err != nil {
		return Result{}, err
	}
	if err := view.WriteFile("/topreco/config.ini", []byte(iniDoc.String())); err != nil {
		return Result{}, err
	}

	// Provenance setup.
	var tracker *core.Tracker
	var provStore *core.Store
	var owner rdf.Term
	var lake *provlake.Workflow
	switch cfg.Instrument {
	case InstrumentProvIO:
		var err error
		provStore, err = core.NewStore(core.VFSBackend{View: fsStore.NewView()}, "/prov", core.FormatTurtle)
		if err != nil {
			return Result{}, err
		}
		provCfg := core.ScenarioConfig(false, "Type", "Configuration", "Metrics", "Program", "User")
		tracker = core.NewTracker(provCfg, provStore, 0).WithClock(clock, cfg.Cost)
		user := tracker.RegisterUser(cfg.User)
		owner = tracker.RegisterProgram("topreco-a1", user)
		tracker.TrackType(owner, "Machine Learning")
	case InstrumentProvLake:
		if err := view.MkdirAll("/prov"); err != nil {
			return Result{}, err
		}
		lake = provlake.NewWorkflow(fsStore.NewView(), "/prov/provlake.jsonl", "topreco", clock, provlake.DefaultCost())
		clock.Advance(300 * time.Millisecond) // ProvLake client/session init
	}

	// POSIX layer (untracked here: Top Reco's provenance need is the
	// extensible-class metadata, not I/O lineage — Table 3).
	noTrack := core.NewTracker(core.DefaultConfig().DisableAll(), nil, 0)
	pfs := posixio.Wrap(view, noTrack, posixio.Agent{}, posixio.Options{Disabled: true})

	// Parse the configuration through the POSIX interface.
	iniData, err := pfs.ReadFile("/topreco/config.ini")
	if err != nil {
		return Result{}, err
	}
	ini, err := ParseINI(strings.NewReader(string(iniData)))
	if err != nil {
		return Result{}, err
	}
	lr, _ := strconv.ParseFloat(ini.GetDefault("model", "learning_rate", "0.1"), 64)
	batch, _ := strconv.Atoi(ini.GetDefault("model", "batch_size", "64"))
	presel, _ := strconv.ParseFloat(ini.GetDefault("data", "preselection", "0.5"), 64)

	// Record the configuration fields.
	flat := ini.Flatten()
	switch cfg.Instrument {
	case InstrumentProvIO:
		for _, kv := range flat {
			tracker.TrackConfiguration(owner, kv[0], rdf.Literal(kv[1]), cfg.Version)
		}
	case InstrumentProvLake:
		for _, kv := range flat {
			lake.SetContext(kv[0], kv[1])
		}
	}

	// Generate events and persist them as TFRecord files ("root" events →
	// train/test datasets).
	train := GenerateEvents(cfg.Seed, cfg.Events, presel)
	test := GenerateEvents(cfg.Seed+1, cfg.Events/4+1, presel)
	for _, part := range []struct {
		path   string
		events []Event
	}{{"/topreco/train.tfrecord", train}, {"/topreco/test.tfrecord", test}} {
		w, err := NewTFRecordWriter(pfs, part.path)
		if err != nil {
			return Result{}, err
		}
		for _, e := range part.events {
			if err := w.Write(e.encode()); err != nil {
				return Result{}, err
			}
		}
		if err := w.Close(); err != nil {
			return Result{}, err
		}
	}
	clock.Advance(cfg.Cost.WriteCost(int64(len(train)+len(test)) * 29))

	// Re-read the training data through the TFRecord reader (the training
	// loop streams from the dataset files).
	rd, err := NewTFRecordReader(pfs, "/topreco/train.tfrecord")
	if err != nil {
		return Result{}, err
	}
	var loaded []Event
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Result{}, err
		}
		e, err := decodeEvent(rec)
		if err != nil {
			return Result{}, err
		}
		loaded = append(loaded, e)
	}
	rd.Close()

	// Training loop with per-epoch provenance (the paper's instrument
	// point: "record the training accuracy at the end of each epoch").
	var m Model
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	var lakeTask *provlake.Task
	if lake != nil {
		lakeTask = lake.StartTask("training", map[string]any{"epochs": cfg.Epochs})
	}
	accs := make([]float64, 0, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		m.TrainEpoch(loaded, lr, batch, rng)
		clock.Advance(cfg.EpochTime)
		acc := m.Evaluate(test)
		accs = append(accs, acc)
		switch cfg.Instrument {
		case InstrumentProvIO:
			tracker.TrackConfigurationAccuracy(owner, "epoch_accuracy",
				rdf.Double(acc), cfg.Version*1000000+epoch, acc)
		case InstrumentProvLake:
			lakeTask.Point(map[string]any{"epoch": epoch, "accuracy": acc})
		}
	}
	final := accs[len(accs)-1]
	if lakeTask != nil {
		lakeTask.End(map[string]any{"final_accuracy": final})
	}

	// Reconstruction from the highest scores.
	picks := Reconstruct(m.Scores(test), 8)
	var out strings.Builder
	for _, p := range picks {
		fmt.Fprintf(&out, "%d\n", p)
	}
	if err := pfs.WriteFile("/topreco/reconstructed.txt", []byte(out.String())); err != nil {
		return Result{}, err
	}

	res := Result{
		Completion:      clock.Now(),
		FinalAccuracy:   final,
		AccuracyByEpoch: accs,
		Store:           provStore,
		Reconstructed:   len(picks),
	}
	switch cfg.Instrument {
	case InstrumentProvIO:
		tracker.TrackMetric(owner, "final_accuracy", rdf.Double(final), cfg.Version)
		if err := tracker.Close(); err != nil {
			return Result{}, err
		}
		recs, _ := tracker.Stats()
		res.Records = recs
		b, err := provStore.TotalBytes()
		if err != nil {
			return Result{}, err
		}
		res.ProvBytes = b
	case InstrumentProvLake:
		if err := lake.Close(); err != nil {
			return Result{}, err
		}
		recs, bytes := lake.Stats()
		res.Records = recs
		res.ProvBytes = bytes
	}
	return res, nil
}

// ModelClasses documents which PROV-IO classes this workflow uses (Table 3
// row: hyperparameter, preselection, training accuracy).
func ModelClasses() []model.Class {
	return []model.Class{model.Type, model.Configuration, model.Metrics}
}
