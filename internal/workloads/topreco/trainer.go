package topreco

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// Event is one collision event: engineered features of a candidate particle
// triplet and the truth label (does the triplet come from a top decay).
type Event struct {
	Features [6]float32
	Label    bool
}

// encode serializes an event as a TFRecord payload.
func (e Event) encode() []byte {
	buf := make([]byte, 6*4+1)
	for i, f := range e.Features {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(f))
	}
	if e.Label {
		buf[24] = 1
	}
	return buf
}

// decodeEvent parses a TFRecord payload back into an event.
func decodeEvent(data []byte) (Event, error) {
	var e Event
	if len(data) != 25 {
		return e, fmt.Errorf("topreco: bad event payload length %d", len(data))
	}
	for i := range e.Features {
		e.Features[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:]))
	}
	e.Label = data[24] == 1
	return e, nil
}

// hidden generating weights for the synthetic truth rule.
var truthWeights = [6]float64{1.2, -0.8, 0.5, 1.7, -1.1, 0.9}

// GenerateEvents synthesizes events deterministically from a seed. The
// preselection cut removes low-|score| events, making the retained set
// easier to classify — which is how dataset preselections influence the
// achievable accuracy, the effect the domain scientists want mapped.
func GenerateEvents(seed int64, n int, preselection float64) []Event {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Event, 0, n)
	for len(out) < n {
		var e Event
		score := 0.0
		for i := range e.Features {
			v := rng.NormFloat64()
			e.Features[i] = float32(v)
			score += truthWeights[i] * v
		}
		// Label noise: events near the decision boundary flip often.
		noise := rng.NormFloat64() * 1.5
		e.Label = score+noise > 0
		if math.Abs(score) < preselection {
			continue // preselection cut
		}
		out = append(out, e)
	}
	return out
}

// Model is a logistic-regression surrogate for the GNN edge/node scorer:
// same training dynamics (epochs, learning rate, batch size → accuracy
// curve) with a fraction of the machinery.
type Model struct {
	W [6]float64
	B float64
}

// TrainEpoch runs one epoch of mini-batch SGD and returns nothing; call
// Evaluate for the accuracy.
func (m *Model) TrainEpoch(events []Event, lr float64, batchSize int, rng *rand.Rand) {
	if batchSize <= 0 {
		batchSize = 32
	}
	idx := rng.Perm(len(events))
	for start := 0; start < len(idx); start += batchSize {
		end := start + batchSize
		if end > len(idx) {
			end = len(idx)
		}
		var gw [6]float64
		var gb float64
		for _, i := range idx[start:end] {
			e := events[i]
			p := m.score(e)
			y := 0.0
			if e.Label {
				y = 1.0
			}
			d := p - y
			for j := range gw {
				gw[j] += d * float64(e.Features[j])
			}
			gb += d
		}
		n := float64(end - start)
		for j := range m.W {
			m.W[j] -= lr * gw[j] / n
		}
		m.B -= lr * gb / n
	}
}

func (m *Model) score(e Event) float64 {
	z := m.B
	for j := range m.W {
		z += m.W[j] * float64(e.Features[j])
	}
	return 1.0 / (1.0 + math.Exp(-z))
}

// Evaluate returns classification accuracy on events.
func (m *Model) Evaluate(events []Event) float64 {
	if len(events) == 0 {
		return 0
	}
	correct := 0
	for _, e := range events {
		if (m.score(e) > 0.5) == e.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(events))
}

// Scores returns the per-event top-candidate scores, the input to the
// reconstructor.
func (m *Model) Scores(events []Event) []float64 {
	out := make([]float64, len(events))
	for i, e := range events {
		out[i] = m.score(e)
	}
	return out
}

// Reconstruct picks the highest-scoring candidates (one per "event window")
// — a stand-in for the final top-quark reconstruction step.
func Reconstruct(scores []float64, window int) []int {
	if window <= 0 {
		window = 8
	}
	var picks []int
	for start := 0; start < len(scores); start += window {
		end := start + window
		if end > len(scores) {
			end = len(scores)
		}
		best := start
		for i := start; i < end; i++ {
			if scores[i] > scores[best] {
				best = i
			}
		}
		picks = append(picks, best)
	}
	return picks
}
