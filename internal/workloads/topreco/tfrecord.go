package topreco

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/hpc-io/prov-io/internal/posixio"
)

// TFRecord framing, wire-compatible with TensorFlow's format: each record is
//
//	uint64  length
//	uint32  masked crc32c(length)
//	bytes   data[length]
//	uint32  masked crc32c(data)
//
// using the Castagnoli polynomial and TensorFlow's CRC mask.
const crcMaskDelta = 0xa282ead8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maskedCRC is TensorFlow's masked crc32c.
func maskedCRC(data []byte) uint32 {
	c := crc32.Checksum(data, castagnoli)
	return ((c >> 15) | (c << 17)) + crcMaskDelta
}

// ErrBadTFRecord reports framing or checksum corruption.
var ErrBadTFRecord = errors.New("topreco: corrupt tfrecord")

// TFRecordWriter frames records onto a wrapped POSIX file.
type TFRecordWriter struct {
	f *posixio.File
	n int
}

// NewTFRecordWriter creates path and returns a writer.
func NewTFRecordWriter(fs *posixio.FS, path string) (*TFRecordWriter, error) {
	f, err := fs.Create(path)
	if err != nil {
		return nil, err
	}
	return &TFRecordWriter{f: f}, nil
}

// Write frames one record.
func (w *TFRecordWriter) Write(data []byte) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(len(data)))
	binary.LittleEndian.PutUint32(hdr[8:], maskedCRC(hdr[:8]))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.f.Write(data); err != nil {
		return err
	}
	var ftr [4]byte
	binary.LittleEndian.PutUint32(ftr[:], maskedCRC(data))
	if _, err := w.f.Write(ftr[:]); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *TFRecordWriter) Count() int { return w.n }

// Close syncs and closes the file.
func (w *TFRecordWriter) Close() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	return w.f.Close()
}

// TFRecordReader iterates over a framed file.
type TFRecordReader struct {
	f   *posixio.File
	off int64
}

// NewTFRecordReader opens path for reading.
func NewTFRecordReader(fs *posixio.FS, path string) (*TFRecordReader, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	return &TFRecordReader{f: f}, nil
}

// Next returns the next record, or io.EOF at end.
func (r *TFRecordReader) Next() ([]byte, error) {
	var hdr [12]byte
	n, err := r.f.ReadAt(hdr[:], r.off)
	if n == 0 && err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, err
	}
	if n < 12 {
		return nil, fmt.Errorf("%w: truncated header", ErrBadTFRecord)
	}
	length := binary.LittleEndian.Uint64(hdr[:8])
	if binary.LittleEndian.Uint32(hdr[8:]) != maskedCRC(hdr[:8]) {
		return nil, fmt.Errorf("%w: header checksum", ErrBadTFRecord)
	}
	if length > 1<<30 {
		return nil, fmt.Errorf("%w: implausible record length %d", ErrBadTFRecord, length)
	}
	payload := make([]byte, length+4)
	if m, err := r.f.ReadAt(payload, r.off+12); m < len(payload) {
		_ = err
		return nil, fmt.Errorf("%w: truncated payload", ErrBadTFRecord)
	}
	data := payload[:length]
	if binary.LittleEndian.Uint32(payload[length:]) != maskedCRC(data) {
		return nil, fmt.Errorf("%w: payload checksum", ErrBadTFRecord)
	}
	r.off += 12 + int64(length) + 4
	return data, nil
}

// Close closes the file.
func (r *TFRecordReader) Close() error { return r.f.Close() }
