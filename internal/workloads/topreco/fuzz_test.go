package topreco

import (
	"io"
	"strings"
	"testing"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/posixio"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// FuzzTFRecordReader feeds arbitrary bytes to the TFRecord reader: it must
// never panic or over-read, and must reject anything whose checksums do not
// match.
func FuzzTFRecordReader(f *testing.F) {
	// Seed with a valid single-record file.
	view := vfs.NewStore().NewView()
	tr := core.NewTracker(core.DefaultConfig().DisableAll(), nil, 0)
	pfs := posixio.Wrap(view, tr, posixio.Agent{}, posixio.Options{Disabled: true})
	w, _ := NewTFRecordWriter(pfs, "/seed")
	w.Write([]byte("seed-record"))
	w.Close()
	seed, _ := view.ReadFile("/seed")
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(make([]byte, 16))

	f.Fuzz(func(t *testing.T, data []byte) {
		view := vfs.NewStore().NewView()
		view.WriteFile("/in", data)
		tr := core.NewTracker(core.DefaultConfig().DisableAll(), nil, 0)
		pfs := posixio.Wrap(view, tr, posixio.Agent{}, posixio.Options{Disabled: true})
		r, err := NewTFRecordReader(pfs, "/in")
		if err != nil {
			t.Fatalf("open in-memory file: %v", err)
		}
		defer r.Close()
		for i := 0; i < 1000; i++ {
			rec, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // rejection is fine
			}
			_ = rec
		}
	})
}

// FuzzParseINI shakes the INI parser: no panics, and accepted documents
// round-trip through WriteINI with the same key count.
func FuzzParseINI(f *testing.F) {
	f.Add("[model]\nlearning_rate = 0.1\n")
	f.Add("key = value\n# comment\n[s]\nk=v")
	f.Add("")
	f.Fuzz(func(t *testing.T, doc string) {
		ini, err := ParseINI(strings.NewReader(doc))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteINI(&sb, ini); err != nil {
			t.Fatalf("serialize accepted INI: %v", err)
		}
		again, err := ParseINI(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("reparse of own output failed: %v\ndoc %q -> %q", err, doc, sb.String())
		}
		if again.Len() != ini.Len() {
			t.Fatalf("fixpoint violated: %d -> %d keys", ini.Len(), again.Len())
		}
	})
}
