package topreco

import (
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/posixio"
	"github.com/hpc-io/prov-io/internal/sparql"
	"github.com/hpc-io/prov-io/internal/vfs"
)

func plainFS(t *testing.T) *posixio.FS {
	t.Helper()
	view := vfs.NewStore().NewView()
	tr := core.NewTracker(core.DefaultConfig().DisableAll(), nil, 0)
	return posixio.Wrap(view, tr, posixio.Agent{}, posixio.Options{Disabled: true})
}

func TestINIRoundTrip(t *testing.T) {
	doc := `
# GNN configuration
top_level = yes

[model]
learning_rate = 0.05
batch_size = 128
; another comment

[data]
preselection = 0.7
`
	ini, err := ParseINI(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := ini.Get("model", "learning_rate"); v != "0.05" {
		t.Errorf("learning_rate = %q", v)
	}
	if v, _ := ini.Get("", "top_level"); v != "yes" {
		t.Errorf("top_level = %q", v)
	}
	if ini.Len() != 4 {
		t.Errorf("Len = %d", ini.Len())
	}
	var sb strings.Builder
	if err := WriteINI(&sb, ini); err != nil {
		t.Fatal(err)
	}
	again, err := ParseINI(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != ini.Len() {
		t.Errorf("round trip changed key count")
	}
	flat := ini.Flatten()
	if len(flat) != 4 || flat[0][0] != "top_level" {
		t.Errorf("Flatten = %v", flat)
	}
}

func TestINIErrors(t *testing.T) {
	cases := []string{"[unterminated", "[]", "no equals", "= novalue"}
	for _, doc := range cases {
		if _, err := ParseINI(strings.NewReader(doc)); err == nil {
			t.Errorf("ParseINI(%q) succeeded", doc)
		}
	}
}

func TestTFRecordRoundTrip(t *testing.T) {
	fs := plainFS(t)
	w, err := NewTFRecordWriter(fs, "/data.tfrecord")
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("first"), {}, []byte("a longer third record with bytes \x00\x01\x02")}
	for _, p := range payloads {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewTFRecordReader(fs, "/data.tfrecord")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i, want := range payloads {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if string(got) != string(want) {
			t.Errorf("record %d = %q, want %q", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestTFRecordDetectsCorruption(t *testing.T) {
	view := vfs.NewStore().NewView()
	tr := core.NewTracker(core.DefaultConfig().DisableAll(), nil, 0)
	fs := posixio.Wrap(view, tr, posixio.Agent{}, posixio.Options{Disabled: true})
	w, _ := NewTFRecordWriter(fs, "/d.tfrecord")
	w.Write([]byte("payload data here"))
	w.Close()
	// Flip a payload byte.
	raw, _ := view.ReadFile("/d.tfrecord")
	raw[14] ^= 0xFF
	view.WriteFile("/d.tfrecord", raw)
	r, _ := NewTFRecordReader(fs, "/d.tfrecord")
	defer r.Close()
	if _, err := r.Next(); err == nil {
		t.Error("corrupt record accepted")
	}
}

func TestTFRecordMaskedCRCKnownValue(t *testing.T) {
	// TensorFlow's masked CRC of an empty buffer is a fixed constant.
	if got := maskedCRC(nil); got != maskedCRC([]byte{}) {
		t.Error("nil and empty differ")
	}
	a, b := maskedCRC([]byte("abc")), maskedCRC([]byte("abd"))
	if a == b {
		t.Error("mask destroyed CRC discrimination")
	}
}

func TestGenerateEventsDeterministic(t *testing.T) {
	a := GenerateEvents(7, 100, 0.5)
	b := GenerateEvents(7, 100, 0.5)
	if len(a) != 100 || len(b) != 100 {
		t.Fatal("wrong event count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generation not deterministic")
		}
	}
	c := GenerateEvents(8, 100, 0.5)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical events")
	}
}

func TestPreselectionImprovesSeparability(t *testing.T) {
	// Train identical models on loose vs tight preselection; the tighter
	// cut must reach higher accuracy (the effect scientists study).
	trainAcc := func(presel float64) float64 {
		train := GenerateEvents(3, 1500, presel)
		test := GenerateEvents(4, 400, presel)
		var m Model
		rng := rand.New(rand.NewSource(5))
		for e := 0; e < 12; e++ {
			m.TrainEpoch(train, 0.1, 64, rng)
		}
		return m.Evaluate(test)
	}
	loose := trainAcc(0.1)
	tight := trainAcc(2.0)
	if tight <= loose {
		t.Errorf("tight preselection acc %.3f <= loose %.3f", tight, loose)
	}
}

func TestTrainingImprovesAccuracy(t *testing.T) {
	train := GenerateEvents(3, 1500, 0.5)
	test := GenerateEvents(4, 400, 0.5)
	var m Model
	rng := rand.New(rand.NewSource(5))
	first := m.Evaluate(test)
	for e := 0; e < 15; e++ {
		m.TrainEpoch(train, 0.1, 64, rng)
	}
	last := m.Evaluate(test)
	if last <= first {
		t.Errorf("training did not improve accuracy: %.3f -> %.3f", first, last)
	}
	if last < 0.6 {
		t.Errorf("final accuracy %.3f implausibly low", last)
	}
}

func TestEventEncodeDecode(t *testing.T) {
	e := Event{Features: [6]float32{1, -2, 3.5, 0, -0.25, 100}, Label: true}
	got, err := decodeEvent(e.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Errorf("round trip: %+v != %+v", got, e)
	}
	if _, err := decodeEvent([]byte{1, 2, 3}); err == nil {
		t.Error("short payload accepted")
	}
}

func TestReconstructPicksMaxima(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.2, 0.4, 0.3, 0.8}
	picks := Reconstruct(scores, 3)
	if len(picks) != 2 || picks[0] != 1 || picks[1] != 5 {
		t.Errorf("picks = %v", picks)
	}
	if got := Reconstruct(nil, 4); len(got) != 0 {
		t.Errorf("empty scores gave %v", got)
	}
}

func fastRun(i Instrument, epochs int) Config {
	return Config{
		Epochs: epochs, Events: 400, EpochTime: 30 * time.Second,
		Instrument: i, Version: 1,
	}
}

func TestRunBaseline(t *testing.T) {
	res, err := Run(fastRun(InstrumentNone, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.ProvBytes != 0 || res.Records != 0 {
		t.Error("baseline produced provenance")
	}
	if len(res.AccuracyByEpoch) != 5 {
		t.Errorf("epochs recorded = %d", len(res.AccuracyByEpoch))
	}
	if res.Completion < 5*30*time.Second {
		t.Errorf("completion %v below compute floor", res.Completion)
	}
	if res.Reconstructed == 0 {
		t.Error("no reconstruction output")
	}
}

func TestRunProvIOTracksConfigToAccuracyMapping(t *testing.T) {
	res, err := Run(fastRun(InstrumentProvIO, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.ProvBytes == 0 {
		t.Fatal("no provenance stored")
	}
	g, err := res.Store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	// Table 5's Top Reco query: configurations with versions and accuracy.
	q := `SELECT ?version ?accuracy WHERE {
		?configuration provio:Version ?version ;
		               provio:hasAccuracy ?accuracy .
	}`
	r, err := sparql.Exec(g, q, model.Namespaces())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Errorf("config-accuracy rows = %d, want 4 (one per epoch): %v", len(r.Rows), r.Rows)
	}
	// The recorded hyperparameters are present.
	q2 := `SELECT ?c WHERE { ?c provio:name "model.learning_rate" . }`
	r2, err := sparql.Exec(g, q2, model.Namespaces())
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Rows) != 1 {
		t.Errorf("learning_rate config rows = %d", len(r2.Rows))
	}
}

func TestRunProvLake(t *testing.T) {
	res, err := Run(fastRun(InstrumentProvLake, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.ProvBytes == 0 || res.Records == 0 {
		t.Errorf("no ProvLake provenance: %+v", res)
	}
}

func TestInstrumentedRunsMatchBaselineAccuracy(t *testing.T) {
	// Instrumentation must not perturb the science.
	base, _ := Run(fastRun(InstrumentNone, 4))
	pio, _ := Run(fastRun(InstrumentProvIO, 4))
	lake, _ := Run(fastRun(InstrumentProvLake, 4))
	if base.FinalAccuracy != pio.FinalAccuracy || base.FinalAccuracy != lake.FinalAccuracy {
		t.Errorf("accuracies diverge: base=%.4f provio=%.4f provlake=%.4f",
			base.FinalAccuracy, pio.FinalAccuracy, lake.FinalAccuracy)
	}
}

func TestOverheadTinyAndDecreasingWithEpochs(t *testing.T) {
	overheadAt := func(epochs int) float64 {
		base, err := Run(fastRun(InstrumentNone, epochs))
		if err != nil {
			t.Fatal(err)
		}
		pio, err := Run(fastRun(InstrumentProvIO, epochs))
		if err != nil {
			t.Fatal(err)
		}
		return float64(pio.Completion-base.Completion) / float64(base.Completion)
	}
	small := overheadAt(5)
	large := overheadAt(40)
	if small <= 0 {
		t.Error("tracking was free")
	}
	if small > 0.01 {
		t.Errorf("overhead %.4f%% too large for Top Reco", small*100)
	}
	if large >= small {
		t.Errorf("overhead should decrease with epochs: %.5f%% -> %.5f%%", small*100, large*100)
	}
}

func TestProvIOStoresLessThanProvLake(t *testing.T) {
	// Figure 8(d-f): PROV-IO always stores fewer bytes. The paper's runs
	// train for many epochs, which is where ProvLake's per-record context
	// embedding accumulates.
	for _, extra := range []int{20, 40, 80} {
		cfgP := fastRun(InstrumentProvIO, 60)
		cfgP.ExtraConfigs = extra
		cfgL := fastRun(InstrumentProvLake, 60)
		cfgL.ExtraConfigs = extra
		p, err := Run(cfgP)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Run(cfgL)
		if err != nil {
			t.Fatal(err)
		}
		if p.ProvBytes >= l.ProvBytes {
			t.Errorf("configs=%d: PROV-IO %d >= ProvLake %d bytes", extra, p.ProvBytes, l.ProvBytes)
		}
	}
}

func TestStorageScalesLinearlyWithEpochs(t *testing.T) {
	// Figure 7(a): provenance size linear in epochs.
	sizeAt := func(epochs int) int64 {
		cfg := fastRun(InstrumentProvIO, epochs)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.ProvBytes
	}
	s10, s20, s40 := sizeAt(10), sizeAt(20), sizeAt(40)
	d1, d2 := s20-s10, s40-s20
	if d1 <= 0 || d2 <= 0 {
		t.Fatalf("sizes not increasing: %d %d %d", s10, s20, s40)
	}
	ratio := float64(d2) / float64(d1*2)
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("growth not linear: deltas %d, %d (ratio %.2f)", d1, d2, ratio)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Epochs <= 0 || cfg.Events <= 0 || cfg.LearningRate == 0 || cfg.Seed == 0 {
		t.Errorf("defaults = %+v", cfg)
	}
	if InstrumentProvIO.String() != "prov-io" || Instrument(9).String() != "unknown" {
		t.Error("instrument names wrong")
	}
	if len(ModelClasses()) != 3 {
		t.Error("ModelClasses should list Type, Configuration, Metrics")
	}
}
