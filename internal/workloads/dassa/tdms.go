// Package dassa reproduces the paper's DASSA workflow (§1.1, §3.2, §6.2):
// parallel analysis of distributed acoustic sensing data. Raw ".tdms" sensor
// files are converted to the hierarchical format by tdms2h5, then analysis
// programs (Decimate, X-Correlation-Stacking) produce data products whose
// backward lineage the domain scientists query at file, dataset, and
// attribute granularity.
package dassa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/hpc-io/prov-io/internal/posixio"
)

// TDMS is a minimal binary sensor-data container standing in for NI's TDMS
// format: a magic header, per-channel metadata properties, and float32
// sample blocks. It is read and written through the POSIX interface, which
// is the point — DASSA mixes POSIX I/O (raw inputs) with library I/O
// (HDF5-style products), and PROV-IO must track both.
type TDMS struct {
	Channels []TDMSChannel
}

// TDMSChannel is one acoustic channel.
type TDMSChannel struct {
	Name       string
	Properties map[string]string
	Samples    []float32
}

const tdmsMagic = "TDSm"

// ErrNotTDMS reports a bad magic header.
var ErrNotTDMS = errors.New("dassa: not a TDMS file")

// WriteTDMS serializes a TDMS container through the (possibly wrapped)
// POSIX layer.
func WriteTDMS(fs *posixio.FS, path string, t *TDMS) error {
	f, err := fs.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	buf := make([]byte, 0, 4096)
	buf = append(buf, tdmsMagic...)
	buf = appendU32(buf, uint32(len(t.Channels)))
	for _, ch := range t.Channels {
		buf = appendStr(buf, ch.Name)
		buf = appendU32(buf, uint32(len(ch.Properties)))
		for _, k := range sortedKeys(ch.Properties) {
			buf = appendStr(buf, k)
			buf = appendStr(buf, ch.Properties[k])
		}
		buf = appendU32(buf, uint32(len(ch.Samples)))
		for _, s := range ch.Samples {
			buf = appendU32(buf, math.Float32bits(s))
		}
	}
	if _, err := f.Write(buf); err != nil {
		return err
	}
	return f.Sync()
}

// ReadTDMS parses a TDMS container through the POSIX layer.
func ReadTDMS(fs *posixio.FS, path string) (*TDMS, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 8 || string(data[:4]) != tdmsMagic {
		return nil, ErrNotTDMS
	}
	pos := 4
	nCh, pos, err := readU32(data, pos)
	if err != nil {
		return nil, err
	}
	if nCh > 1<<16 {
		return nil, fmt.Errorf("dassa: implausible channel count %d", nCh)
	}
	out := &TDMS{}
	for c := 0; c < int(nCh); c++ {
		var ch TDMSChannel
		ch.Name, pos, err = readStr(data, pos)
		if err != nil {
			return nil, err
		}
		var nProps uint32
		nProps, pos, err = readU32(data, pos)
		if err != nil {
			return nil, err
		}
		ch.Properties = make(map[string]string, nProps)
		for i := 0; i < int(nProps); i++ {
			var k, v string
			k, pos, err = readStr(data, pos)
			if err != nil {
				return nil, err
			}
			v, pos, err = readStr(data, pos)
			if err != nil {
				return nil, err
			}
			ch.Properties[k] = v
		}
		var nSamples uint32
		nSamples, pos, err = readU32(data, pos)
		if err != nil {
			return nil, err
		}
		if int(nSamples)*4 > len(data)-pos {
			return nil, fmt.Errorf("dassa: truncated sample block in %s", path)
		}
		ch.Samples = make([]float32, nSamples)
		for i := range ch.Samples {
			var bits uint32
			bits, pos, err = readU32(data, pos)
			if err != nil {
				return nil, err
			}
			ch.Samples[i] = math.Float32frombits(bits)
		}
		out.Channels = append(out.Channels, ch)
	}
	return out, nil
}

func appendU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func readU32(data []byte, pos int) (uint32, int, error) {
	if pos+4 > len(data) {
		return 0, pos, errors.New("dassa: truncated TDMS data")
	}
	return binary.LittleEndian.Uint32(data[pos:]), pos + 4, nil
}

func readStr(data []byte, pos int) (string, int, error) {
	n, pos, err := readU32(data, pos)
	if err != nil {
		return "", pos, err
	}
	if pos+int(n) > len(data) {
		return "", pos, errors.New("dassa: truncated TDMS string")
	}
	return string(data[pos : pos+int(n)]), pos + int(n), nil
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
