package dassa

import (
	"testing"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/posixio"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/sparql"
	"github.com/hpc-io/prov-io/internal/vfs"
)

func fastCfg(l Lineage) Config {
	return Config{
		Files: 8, Ranks: 4, ChannelsPerFile: 2, AttrsPerChannel: 4,
		SampleSamplesPerChannel: 32, Lineage: l,
	}
}

func runDassa(t *testing.T, cfg Config) Result {
	t.Helper()
	store := vfs.NewStore()
	if err := GenerateInputs(store.NewView(), cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTDMSRoundTrip(t *testing.T) {
	view := vfs.NewStore().NewView()
	tr := core.NewTracker(core.DefaultConfig(), nil, 0)
	pfs := posixio.Wrap(view, tr, posixio.Agent{}, posixio.DefaultOptions())
	in := &TDMS{Channels: []TDMSChannel{
		{Name: "ch0", Properties: map[string]string{"units": "strain", "rate": "1000"},
			Samples: []float32{1.5, -2.25, 0}},
		{Name: "ch1", Properties: map[string]string{}, Samples: []float32{42}},
	}}
	if err := WriteTDMS(pfs, "/x.tdms", in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTDMS(pfs, "/x.tdms")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Channels) != 2 {
		t.Fatalf("channels = %d", len(out.Channels))
	}
	if out.Channels[0].Properties["units"] != "strain" {
		t.Error("properties lost")
	}
	if out.Channels[0].Samples[1] != -2.25 {
		t.Errorf("samples = %v", out.Channels[0].Samples)
	}
}

func TestTDMSRejectsCorrupt(t *testing.T) {
	view := vfs.NewStore().NewView()
	tr := core.NewTracker(core.DefaultConfig().DisableAll(), nil, 0)
	pfs := posixio.Wrap(view, tr, posixio.Agent{}, posixio.Options{Disabled: true})
	view.WriteFile("/bad.tdms", []byte("not tdms data"))
	if _, err := ReadTDMS(pfs, "/bad.tdms"); err == nil {
		t.Error("corrupt TDMS accepted")
	}
	view.WriteFile("/trunc.tdms", []byte("TDSm\x05\x00\x00\x00"))
	if _, err := ReadTDMS(pfs, "/trunc.tdms"); err == nil {
		t.Error("truncated TDMS accepted")
	}
}

func TestBaselineProducesProducts(t *testing.T) {
	store := vfs.NewStore()
	cfg := fastCfg(LineageBaseline)
	if err := GenerateInputs(store.NewView(), cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion <= 0 {
		t.Error("no completion time")
	}
	if res.ProvBytes != 0 {
		t.Error("baseline produced provenance")
	}
	// Every product exists and decimation shrank the channel.
	view := store.NewView()
	for i := 0; i < cfg.Files; i++ {
		if !view.Exists(productPath(i)) {
			t.Errorf("product %d missing", i)
		}
		if !view.Exists(convertedPath(i)) {
			t.Errorf("converted file %d missing", i)
		}
	}
}

func TestDecimationShrinksData(t *testing.T) {
	store := vfs.NewStore()
	cfg := fastCfg(LineageBaseline)
	cfg.Files, cfg.Ranks = 1, 1
	cfg.SampleSamplesPerChannel = 64
	cfg.DecimateFactor = 8
	if err := GenerateInputs(store.NewView(), cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(store, cfg); err != nil {
		t.Fatal(err)
	}
	view := store.NewView()
	inInfo, _ := view.Stat(convertedPath(0))
	outInfo, _ := view.Stat(productPath(0))
	if outInfo.Size >= inInfo.Size {
		t.Errorf("decimate output (%d) not smaller than input (%d)", outInfo.Size, inInfo.Size)
	}
}

func TestLineageScenariosTrackProvenance(t *testing.T) {
	for _, l := range []Lineage{FileLineage, DatasetLineage, AttrLineage} {
		t.Run(l.String(), func(t *testing.T) {
			res := runDassa(t, fastCfg(l))
			if res.ProvBytes == 0 || res.Records == 0 {
				t.Errorf("no provenance: %+v", res)
			}
		})
	}
}

func TestAttrLineageTracksMost(t *testing.T) {
	file := runDassa(t, fastCfg(FileLineage))
	ds := runDassa(t, fastCfg(DatasetLineage))
	attr := runDassa(t, fastCfg(AttrLineage))
	if !(attr.Records > ds.Records && ds.Records > file.Records) {
		t.Errorf("record ordering wrong: file=%d dataset=%d attr=%d",
			file.Records, ds.Records, attr.Records)
	}
	if attr.Completion <= file.Completion {
		t.Errorf("attribute lineage should cost most: %v vs %v", attr.Completion, file.Completion)
	}
}

func TestTrackingOverheadReasonable(t *testing.T) {
	base := runDassa(t, fastCfg(LineageBaseline))
	attr := runDassa(t, fastCfg(AttrLineage))
	overhead := float64(attr.Completion-base.Completion) / float64(base.Completion)
	if overhead <= 0 {
		t.Error("tracking was free")
	}
	if overhead > 0.5 {
		t.Errorf("overhead %.1f%% implausibly high", overhead*100)
	}
}

func TestBackwardLineageQuery(t *testing.T) {
	// Paper §6.5: backward lineage of a product via 3 statements per step.
	res := runDassa(t, fastCfg(FileLineage))
	g, err := res.Store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	// Step 1: which program produced the product?
	product := rdf.IRI(model.NodeIRI(model.File, productPath(0)))
	q1 := `SELECT ?program WHERE { <` + product.Value + `> prov:wasAttributedTo ?program . }`
	r1, err := sparql.Exec(g, q1, model.Namespaces())
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != 1 {
		t.Fatalf("program query rows = %d: %v", len(r1.Rows), r1.Rows)
	}
	prog := r1.Rows[0]["program"]
	if prog != rdf.IRI(model.NodeIRI(model.Program, "decimate-a1")) {
		t.Errorf("program = %v, want decimate-a1", prog)
	}
	// Step 2+3: which files were read by activities of that program?
	q2 := `SELECT DISTINCT ?file WHERE {
		?file provio:wasReadBy ?api .
		?api prov:wasAssociatedWith <` + prog.Value + `> .
	}`
	r2, err := sparql.Exec(g, q2, model.Namespaces())
	if err != nil {
		t.Fatal(err)
	}
	// decimate read every converted file; the specific input is among them.
	want := rdf.IRI(model.NodeIRI(model.File, convertedPath(0)))
	found := false
	for _, row := range r2.Rows {
		if row["file"] == want {
			found = true
		}
	}
	if !found {
		t.Errorf("input %v not in decimate's read set: %v", want, r2.Rows)
	}
}

func TestXCorrProducesStack(t *testing.T) {
	store := vfs.NewStore()
	cfg := fastCfg(FileLineage)
	cfg.XCorr = true
	if err := GenerateInputs(store.NewView(), cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	view := store.NewView()
	for r := 0; r < cfg.Ranks; r++ {
		if !view.Exists(xcorrPath(r)) {
			t.Errorf("xcorr output for rank %d missing", r)
		}
	}
	// The xcorr program appears in the provenance.
	g, _ := res.Store.Merge()
	xprog := rdf.IRI(model.NodeIRI(model.Program, "xcorr_stack-a1"))
	if len(g.Find(xprog.Ptr(), nil, nil)) == 0 {
		t.Error("xcorr program agent missing from provenance")
	}
}

func TestProvBytesScaleWithFiles(t *testing.T) {
	small := fastCfg(FileLineage)
	small.Files = 4
	big := fastCfg(FileLineage)
	big.Files = 16
	rs := runDassa(t, small)
	rb := runDassa(t, big)
	if rb.ProvBytes <= rs.ProvBytes {
		t.Errorf("provenance should grow with files: %d vs %d", rs.ProvBytes, rb.ProvBytes)
	}
	// Roughly linear: 4x files within [2x, 8x] bytes.
	ratio := float64(rb.ProvBytes) / float64(rs.ProvBytes)
	if ratio < 2 || ratio > 8 {
		t.Errorf("scaling ratio %.1f not roughly linear", ratio)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Files <= 0 || cfg.Ranks <= 0 || cfg.DecimateFactor <= 1 {
		t.Errorf("defaults = %+v", cfg)
	}
	clamped := Config{Files: 2, Ranks: 8}.withDefaults()
	if clamped.Ranks != 2 {
		t.Errorf("ranks not clamped to files: %d", clamped.Ranks)
	}
}

func TestLineageStrings(t *testing.T) {
	if FileLineage.String() != "file-lineage" || AttrLineage.String() != "attribute-lineage" {
		t.Error("lineage names wrong")
	}
	if Lineage(99).String() != "unknown" {
		t.Error("unknown lineage name")
	}
	if LineageBaseline.ProvConfig() != nil {
		t.Error("baseline must be nil config")
	}
	if !FileLineage.ProvConfig().Enabled(model.File) || FileLineage.ProvConfig().Enabled(model.Dataset) {
		t.Error("file lineage config wrong")
	}
}
