package dassa

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/hdf5"
	"github.com/hpc-io/prov-io/internal/mpi"
	"github.com/hpc-io/prov-io/internal/posixio"
	"github.com/hpc-io/prov-io/internal/simclock"
	"github.com/hpc-io/prov-io/internal/vfs"
	"github.com/hpc-io/prov-io/internal/vol"
)

// Lineage selects the provenance granularity of Table 3's DASSA rows.
type Lineage int

// Lineage scenarios. LineageBaseline disables PROV-IO.
const (
	LineageBaseline Lineage = iota
	FileLineage             // program, I/O API, file
	DatasetLineage          // program, I/O API, dataset
	AttrLineage             // program, I/O API, attribute
)

// String names the scenario like Figure 6(b)'s legend.
func (l Lineage) String() string {
	switch l {
	case LineageBaseline:
		return "baseline"
	case FileLineage:
		return "file-lineage"
	case DatasetLineage:
		return "dataset-lineage"
	case AttrLineage:
		return "attribute-lineage"
	default:
		return "unknown"
	}
}

// ProvConfig returns the PROV-IO configuration for the scenario (nil for
// baseline), per Table 3: I/O API and Program always on, plus one Data
// Object granularity.
func (l Lineage) ProvConfig() *core.Config {
	base := []string{"Create", "Open", "Read", "Write", "Fsync", "Rename", "Program", "User"}
	switch l {
	case FileLineage:
		return core.ScenarioConfig(false, append(base, "File")...)
	case DatasetLineage:
		return core.ScenarioConfig(false, append(base, "Dataset")...)
	case AttrLineage:
		return core.ScenarioConfig(false, append(base, "Attribute")...)
	default:
		return nil
	}
}

// Config parameterizes one DASSA run.
type Config struct {
	// Files is the number of input .tdms files (paper: 128..2048).
	Files int
	// Ranks is the number of compute processes (paper: 32 nodes).
	Ranks int
	// ChannelsPerFile is the number of acoustic channels (datasets per
	// converted file).
	ChannelsPerFile int
	// AttrsPerChannel is the number of metadata attributes per channel —
	// DASSA is attribute-heavy.
	AttrsPerChannel int
	// LogicalFileBytes is the modeled size of one input file (paper:
	// 1.35 TB / 2048 files ≈ 660 MB).
	LogicalFileBytes int64
	// SampleSamplesPerChannel is the actual per-channel sample count
	// written/read (scaled down).
	SampleSamplesPerChannel int
	// DecimateFactor keeps every k-th sample.
	DecimateFactor int
	// ComputePerFile is the modeled analysis compute per file.
	ComputePerFile time.Duration
	// XCorr additionally runs X-Correlation-Stacking over each rank's
	// decimated products (used by the lineage example, not the perf sweep).
	XCorr   bool
	Lineage Lineage
	Cost    simclock.CostModel
	User    string
}

func (c Config) withDefaults() Config {
	if c.Files <= 0 {
		c.Files = 32
	}
	if c.Ranks <= 0 {
		c.Ranks = 32
	}
	if c.Ranks > c.Files {
		c.Ranks = c.Files
	}
	if c.ChannelsPerFile <= 0 {
		c.ChannelsPerFile = 4
	}
	if c.AttrsPerChannel <= 0 {
		c.AttrsPerChannel = 12
	}
	if c.LogicalFileBytes <= 0 {
		c.LogicalFileBytes = 660 << 20
	}
	if c.SampleSamplesPerChannel <= 0 {
		c.SampleSamplesPerChannel = 64
	}
	if c.DecimateFactor <= 1 {
		c.DecimateFactor = 8
	}
	if c.ComputePerFile == 0 {
		c.ComputePerFile = 8 * time.Second
	}
	if c.Cost == (simclock.CostModel{}) {
		c.Cost = simclock.Default()
	}
	if c.User == "" {
		c.User = "dassa-user"
	}
	return c
}

// Result summarizes one run.
type Result struct {
	Completion time.Duration
	ProvBytes  int64
	Records    int64
	Triples    int64
	// Products is the number of decimate outputs produced.
	Products int
	// Store gives access to the provenance store for lineage queries
	// (nil for baseline runs).
	Store *core.Store
}

// GenerateInputs materializes the raw .tdms inputs in a fresh vfs namespace.
// Input staging precedes the timed run (the paper's inputs pre-exist on
// Lustre).
func GenerateInputs(view *vfs.View, cfg Config) error {
	cfg = cfg.withDefaults()
	if err := view.MkdirAll("/das/raw"); err != nil {
		return err
	}
	if err := view.MkdirAll("/das/converted"); err != nil {
		return err
	}
	if err := view.MkdirAll("/das/products"); err != nil {
		return err
	}
	plain := posixio.Wrap(view, core.NewTracker(core.DefaultConfig().DisableAll(), nil, 0), posixio.Agent{}, posixio.Options{Disabled: true})
	for i := 0; i < cfg.Files; i++ {
		t := &TDMS{}
		for c := 0; c < cfg.ChannelsPerFile; c++ {
			ch := TDMSChannel{
				Name:       fmt.Sprintf("channel_%02d", c),
				Properties: map[string]string{},
				Samples:    make([]float32, cfg.SampleSamplesPerChannel),
			}
			for a := 0; a < cfg.AttrsPerChannel; a++ {
				ch.Properties[fmt.Sprintf("prop_%02d", a)] = fmt.Sprintf("value_%d_%d_%d", i, c, a)
			}
			for s := range ch.Samples {
				ch.Samples[s] = float32(math.Sin(float64(i*cfg.ChannelsPerFile+c) + float64(s)*0.1))
			}
			t.Channels = append(t.Channels, ch)
		}
		if err := WriteTDMS(plain, inputPath(i), t); err != nil {
			return err
		}
	}
	return nil
}

func inputPath(i int) string     { return fmt.Sprintf("/das/raw/WestSac_%04d.tdms", i) }
func convertedPath(i int) string { return fmt.Sprintf("/das/converted/WestSac_%04d.h5", i) }
func productPath(i int) string   { return fmt.Sprintf("/das/products/WestSac_%04d.decimate.h5", i) }
func xcorrPath(r int) string     { return fmt.Sprintf("/das/products/xcorr_stack_rank%02d.h5", r) }

// Run executes the DASSA workflow over pre-generated inputs in store.
// Pass the same vfs.Store that GenerateInputs populated.
func Run(fsStore *vfs.Store, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()

	var provStore *core.Store
	provCfg := cfg.Lineage.ProvConfig()
	if provCfg != nil {
		var err error
		provStore, err = core.NewStore(core.VFSBackend{View: fsStore.NewView()}, "/prov", core.FormatTurtle)
		if err != nil {
			return Result{}, err
		}
	}

	trackers := make([]*core.Tracker, cfg.Ranks)
	errCh := make(chan error, cfg.Ranks)

	completion := mpi.Run(cfg.Ranks, func(r *mpi.Rank) {
		view := fsStore.NewView() // uncharged; costs charged explicitly below
		var tracker *core.Tracker
		if provCfg != nil {
			tracker = core.NewTracker(provCfg, provStore, r.ID()).WithClock(r.Clock, cfg.Cost)
		} else {
			tracker = core.NewTracker(core.DefaultConfig().DisableAll(), nil, r.ID())
		}
		trackers[r.ID()] = tracker
		user := tracker.RegisterUser(cfg.User)

		// Two program agents: the converter and the analyzer.
		convProg := tracker.RegisterProgram("tdms2h5-a1", user)
		decProg := tracker.RegisterProgram("decimate-a1", user)

		// POSIX wrapper for the converter's raw-input side.
		posixOpts := posixio.DefaultOptions()
		if provCfg == nil {
			posixOpts.Disabled = true
		}
		pfs := posixio.Wrap(view, tracker, posixio.Agent{User: user, Program: convProg}, posixOpts)

		// VOL stacks per program.
		mk := func(prog vol.Context) vol.Connector {
			var conn vol.Connector = vol.NewCostConnector(vol.NewNative(view), r.Clock, cfg.Cost, byteScale(cfg), 1)
			if provCfg != nil {
				conn = vol.NewProvConnector(conn, tracker, prog, r.Clock)
			}
			return conn
		}
		convConn := mk(vol.Context{User: user, Program: convProg})
		decConn := mk(vol.Context{User: user, Program: decProg})

		var xcorrConn vol.Connector
		var xcorrProg = tracker.RegisterProgram("xcorr_stack-a1", user)
		if cfg.XCorr {
			xcorrConn = mk(vol.Context{User: user, Program: xcorrProg})
		}

		var myProducts []string
		for i := r.ID(); i < cfg.Files; i += cfg.Ranks {
			if err := convertOne(pfs, convConn, r.Clock, cfg, i); err != nil {
				errCh <- fmt.Errorf("tdms2h5 file %d: %w", i, err)
				return
			}
			if err := decimateOne(decConn, r.Clock, cfg, i); err != nil {
				errCh <- fmt.Errorf("decimate file %d: %w", i, err)
				return
			}
			myProducts = append(myProducts, productPath(i))
		}
		if cfg.XCorr && len(myProducts) > 0 {
			if err := xcorrStack(xcorrConn, r.Clock, cfg, myProducts, xcorrPath(r.ID())); err != nil {
				errCh <- fmt.Errorf("xcorr rank %d: %w", r.ID(), err)
				return
			}
		}
		if provCfg != nil {
			if err := tracker.Close(); err != nil {
				errCh <- err
			}
		}
	})

	select {
	case err := <-errCh:
		return Result{}, err
	default:
	}

	res := Result{Completion: completion, Products: cfg.Files, Store: provStore}
	if provCfg != nil {
		for _, tr := range trackers {
			if tr != nil {
				recs, tris := tr.Stats()
				res.Records += recs
				res.Triples += tris
			}
		}
		b, err := provStore.TotalBytes()
		if err != nil {
			return Result{}, err
		}
		res.ProvBytes = b
	}
	return res, nil
}

// byteScale converts sampled bytes to the logical file volume.
func byteScale(cfg Config) float64 {
	sampled := int64(cfg.ChannelsPerFile * cfg.SampleSamplesPerChannel * 4)
	if sampled <= 0 {
		return 1
	}
	s := float64(cfg.LogicalFileBytes) / float64(sampled)
	if s < 1 {
		return 1
	}
	return s
}

// convertOne is the tdms2h5 program: POSIX-read the raw file, write the
// hierarchical equivalent with channel datasets and metadata attributes.
func convertOne(pfs *posixio.FS, conn vol.Connector, clock *simclock.Clock, cfg Config, idx int) error {
	t, err := ReadTDMS(pfs, inputPath(idx))
	if err != nil {
		return err
	}
	// Charge the logical read volume (the sampled read charged ~nothing).
	clock.Advance(cfg.Cost.ReadCost(cfg.LogicalFileBytes))

	f, err := conn.FileCreate(convertedPath(idx))
	if err != nil {
		return err
	}
	for _, ch := range t.Channels {
		ds, err := conn.DatasetCreate(f.Root(), ch.Name, hdf5.TypeFloat32, []int{len(ch.Samples)})
		if err != nil {
			return err
		}
		if err := conn.DatasetWrite(ds, f32bytes(ch.Samples)); err != nil {
			return err
		}
		for _, k := range sortedKeys(ch.Properties) {
			v := ch.Properties[k]
			buf := make([]byte, len(v))
			copy(buf, v)
			if err := conn.AttrCreate(ds, k, hdf5.TypeString(len(buf)), []int{1}, buf); err != nil {
				return err
			}
		}
	}
	// Conversion compute is light relative to analysis.
	clock.Advance(cfg.ComputePerFile / 8)
	if err := conn.FileFlush(f); err != nil {
		return err
	}
	return conn.FileClose(f)
}

// decimateOne is the Decimate analysis program: read the converted file's
// channels and attributes, keep every k-th sample, write the data product.
func decimateOne(conn vol.Connector, clock *simclock.Clock, cfg Config, idx int) error {
	in, err := conn.FileOpen(convertedPath(idx), true)
	if err != nil {
		return err
	}
	out, err := conn.FileCreate(productPath(idx))
	if err != nil {
		return err
	}
	for c := 0; c < cfg.ChannelsPerFile; c++ {
		name := fmt.Sprintf("channel_%02d", c)
		ds, err := conn.DatasetOpen(in.Root(), name)
		if err != nil {
			return err
		}
		// DASSA reads the channel's metadata attributes before the data.
		for a := 0; a < cfg.AttrsPerChannel; a++ {
			if _, _, err := conn.AttrRead(ds, fmt.Sprintf("prop_%02d", a)); err != nil {
				return err
			}
		}
		raw, err := conn.DatasetRead(ds)
		if err != nil {
			return err
		}
		samples := bytesF32(raw)
		dec := make([]float32, 0, len(samples)/cfg.DecimateFactor+1)
		for i := 0; i < len(samples); i += cfg.DecimateFactor {
			dec = append(dec, samples[i])
		}
		ods, err := conn.DatasetCreate(out.Root(), name, hdf5.TypeFloat32, []int{len(dec)})
		if err != nil {
			return err
		}
		if err := conn.DatasetWrite(ods, f32bytes(dec)); err != nil {
			return err
		}
		// Products carry forward the channel metadata.
		for a := 0; a < cfg.AttrsPerChannel; a++ {
			k := fmt.Sprintf("prop_%02d", a)
			val, _, err := conn.AttrRead(ds, k)
			if err != nil {
				return err
			}
			if err := conn.AttrCreate(ods, k, hdf5.TypeString(len(val)), []int{1}, val); err != nil {
				return err
			}
		}
	}
	clock.Advance(cfg.ComputePerFile)
	if err := conn.FileFlush(out); err != nil {
		return err
	}
	if err := conn.FileClose(out); err != nil {
		return err
	}
	return conn.FileClose(in)
}

// xcorrStack is the X-Correlation-Stacking program: correlate and stack all
// of a rank's decimated products into one output.
func xcorrStack(conn vol.Connector, clock *simclock.Clock, cfg Config, inputs []string, outPath string) error {
	var acc []float32
	for _, p := range inputs {
		f, err := conn.FileOpen(p, true)
		if err != nil {
			return err
		}
		ds, err := conn.DatasetOpen(f.Root(), "channel_00")
		if err != nil {
			return err
		}
		raw, err := conn.DatasetRead(ds)
		if err != nil {
			return err
		}
		samples := bytesF32(raw)
		if acc == nil {
			acc = make([]float32, len(samples))
		}
		for i := range samples {
			if i < len(acc) {
				acc[i] += samples[i]
			}
		}
		if err := conn.FileClose(f); err != nil {
			return err
		}
		clock.Advance(cfg.ComputePerFile / 4)
	}
	out, err := conn.FileCreate(outPath)
	if err != nil {
		return err
	}
	ds, err := conn.DatasetCreate(out.Root(), "stack", hdf5.TypeFloat32, []int{len(acc)})
	if err != nil {
		return err
	}
	if err := conn.DatasetWrite(ds, f32bytes(acc)); err != nil {
		return err
	}
	if err := conn.FileFlush(out); err != nil {
		return err
	}
	return conn.FileClose(out)
}

func f32bytes(v []float32) []byte {
	out := make([]byte, len(v)*4)
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(x))
	}
	return out
}

func bytesF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}
