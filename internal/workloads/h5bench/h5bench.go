// Package h5bench reproduces the paper's H5bench-based workflow (§3.3,
// §6.2): a VPIC-style particle I/O benchmark where many MPI ranks access a
// single shared HDF5 file, under three I/O patterns (write+read,
// write+overwrite+read, write+append+read) and three provenance usage
// scenarios (I/O API counts; + durations; users/threads/programs/files).
//
// Eight particle variables are written per timestep (x, y, z, px, py, pz as
// float32, id1/id2 as int64), matching VPIC's layout. The workload writes a
// sampled fraction of the paper's data volume and charges the virtual clock
// for the full logical volume through vol.CostConnector's ByteScale.
package h5bench

import (
	"fmt"
	"time"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/hdf5"
	"github.com/hpc-io/prov-io/internal/mpi"
	"github.com/hpc-io/prov-io/internal/simclock"
	"github.com/hpc-io/prov-io/internal/vfs"
	"github.com/hpc-io/prov-io/internal/vol"
)

// Pattern selects the I/O pattern.
type Pattern int

// The three patterns of Figures 6/7 (c), (d), (e).
const (
	WriteRead Pattern = iota
	WriteOverwriteRead
	WriteAppendRead
)

// String names the pattern like the paper's figure captions.
func (p Pattern) String() string {
	switch p {
	case WriteRead:
		return "write+read"
	case WriteOverwriteRead:
		return "write+overwrite+read"
	case WriteAppendRead:
		return "write+append+read"
	default:
		return "unknown"
	}
}

// Scenario selects the provenance usage scenario of Table 3.
type Scenario int

// Scenarios. ScenarioBaseline disables PROV-IO entirely.
const (
	ScenarioBaseline Scenario = iota
	Scenario1                 // I/O API counts
	Scenario2                 // I/O API counts + durations
	Scenario3                 // user, thread, program, file
)

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case ScenarioBaseline:
		return "baseline"
	case Scenario1:
		return "scenario-1"
	case Scenario2:
		return "scenario-2"
	case Scenario3:
		return "scenario-3"
	default:
		return "unknown"
	}
}

// ProvConfig returns the PROV-IO configuration for a scenario (nil for the
// baseline), per Table 3.
func (s Scenario) ProvConfig() *core.Config {
	switch s {
	case Scenario1:
		return core.ScenarioConfig(false, "Create", "Open", "Read", "Write", "Fsync", "Rename")
	case Scenario2:
		return core.ScenarioConfig(true, "Create", "Open", "Read", "Write", "Fsync", "Rename")
	case Scenario3:
		return core.ScenarioConfig(false, "Create", "Open", "Read", "Write", "Fsync", "Rename",
			"User", "Thread", "Program", "File")
	default:
		return nil
	}
}

// Config parameterizes one run.
type Config struct {
	Ranks int
	// Steps is the number of timesteps.
	Steps int
	// LogicalParticles is the per-rank per-step particle count the clock
	// is charged for (the paper's full volume).
	LogicalParticles int
	// SampleParticles is the per-rank per-step particle count actually
	// written (>=1; scaled down for tractability).
	SampleParticles int
	// ComputePerStep is the emulated computation per timestep (the paper
	// uses 25 s).
	ComputePerStep time.Duration
	// BlocksPerWrite splits each variable's per-step write into this many
	// H5Dwrite calls (h5bench issues multi-block writes).
	BlocksPerWrite int
	Pattern        Pattern
	Scenario       Scenario
	// Cost overrides the cost model (zero value = simclock.Default()).
	Cost simclock.CostModel
	// User is the workflow user agent name.
	User string
	// provOverride replaces the scenario's derived PROV-IO configuration
	// (set via RunWithProvConfig, used by ablation experiments).
	provOverride *core.Config
}

// RunWithProvConfig runs the workload with an explicit PROV-IO
// configuration instead of a Scenario preset.
func RunWithProvConfig(cfg Config, provCfg *core.Config) (Result, error) {
	cfg.provOverride = provCfg
	return Run(cfg)
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 4
	}
	if c.Steps <= 0 {
		c.Steps = 5
	}
	if c.LogicalParticles <= 0 {
		c.LogicalParticles = 4 << 20 // ~4.2M particles/rank/step, ~3.9TB at 4096 ranks
	}
	if c.SampleParticles <= 0 {
		c.SampleParticles = 64
	}
	if c.SampleParticles > c.LogicalParticles {
		c.SampleParticles = c.LogicalParticles
	}
	if c.ComputePerStep == 0 {
		c.ComputePerStep = 25 * time.Second
	}
	if c.BlocksPerWrite <= 0 {
		c.BlocksPerWrite = 4
	}
	if c.BlocksPerWrite > c.SampleParticles {
		c.BlocksPerWrite = c.SampleParticles
	}
	if c.Cost == (simclock.CostModel{}) {
		c.Cost = simclock.Default()
	}
	if c.User == "" {
		c.User = "h5bench-user"
	}
	return c
}

// particle variables: name and datatype, VPIC layout.
var particleVars = []struct {
	name string
	dt   hdf5.Datatype
}{
	{"x", hdf5.TypeFloat32}, {"y", hdf5.TypeFloat32}, {"z", hdf5.TypeFloat32},
	{"px", hdf5.TypeFloat32}, {"py", hdf5.TypeFloat32}, {"pz", hdf5.TypeFloat32},
	{"id1", hdf5.TypeInt64}, {"id2", hdf5.TypeInt64},
}

// Result summarizes one run.
type Result struct {
	Completion time.Duration
	// ProvBytes is the total persisted provenance size (0 for baseline).
	ProvBytes int64
	// Records/Triples are summed across rank trackers.
	Records int64
	Triples int64
	// DatasetVersions is the version count of variable "x" after the run
	// (observable effect of overwrite/append).
	DatasetVersions int
	// Store exposes the provenance store for queries (nil for baseline).
	Store *core.Store
}

// Run executes the workload and returns its (simulated) completion time and
// provenance statistics.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()

	fsStore := vfs.NewStore()
	setupView := fsStore.NewView()
	if err := setupView.MkdirAll("/scratch"); err != nil {
		return Result{}, err
	}

	var provStore *core.Store
	provCfg := cfg.Scenario.ProvConfig()
	if cfg.provOverride != nil {
		provCfg = cfg.provOverride
	}
	if provCfg != nil {
		var err error
		provStore, err = core.NewStore(core.VFSBackend{View: fsStore.NewView()}, "/prov", core.FormatTurtle)
		if err != nil {
			return Result{}, err
		}
	}

	// The shared file is created once (like h5bench's rank-0 create +
	// MPI-IO shared handle). Creation is performed below by rank 0 through
	// its connector so it is tracked.
	filePath := "/scratch/vpic.h5"
	byteScale := float64(cfg.LogicalParticles) / float64(cfg.SampleParticles)
	totalRows := cfg.Ranks * cfg.SampleParticles

	type rankState struct {
		tracker *core.Tracker
		conn    vol.Connector
	}
	states := make([]*rankState, cfg.Ranks)

	var shared struct {
		file *hdf5.File
		err  error
	}

	trackErr := make(chan error, cfg.Ranks)
	completion := mpi.Run(cfg.Ranks, func(r *mpi.Rank) {
		st := &rankState{}
		states[r.ID()] = st

		// Per-rank connector stack: Prov? -> Cost -> Native.
		view := fsStore.NewView() // uncharged; CostConnector charges the rank clock
		var conn vol.Connector = vol.NewCostConnector(vol.NewNative(view), r.Clock, cfg.Cost, byteScale, cfg.Ranks)
		var ctx vol.Context
		if provCfg != nil {
			st.tracker = core.NewTracker(provCfg, provStore, r.ID()).WithClock(r.Clock, cfg.Cost)
			user := st.tracker.RegisterUser(cfg.User)
			prog := st.tracker.RegisterProgram(fmt.Sprintf("h5bench_%s-a1", cfg.Pattern), user)
			thr := st.tracker.RegisterThread(r.ID(), prog)
			ctx = vol.Context{User: user, Program: prog, Thread: thr}
			conn = vol.NewProvConnector(conn, st.tracker, ctx, r.Clock)
		}
		st.conn = conn

		// Rank 0 creates the shared file and datasets.
		if r.ID() == 0 {
			f, err := conn.FileCreate(filePath)
			if err != nil {
				shared.err = err
			} else {
				shared.file = f
				for s := 0; s < cfg.Steps; s++ {
					grp, err := conn.GroupCreate(f.Root(), fmt.Sprintf("Timestep_%d", s))
					if err != nil {
						shared.err = err
						break
					}
					for _, v := range particleVars {
						if _, err := conn.DatasetCreate(grp, v.name, v.dt, []int{totalRows}); err != nil {
							shared.err = err
							break
						}
					}
				}
			}
		}
		r.Barrier()
		if shared.err != nil {
			return
		}
		root := shared.file.Root()

		writePhase := func() error {
			for s := 0; s < cfg.Steps; s++ {
				r.Clock.Advance(cfg.ComputePerStep)
				grp, err := conn.GroupOpen(root, fmt.Sprintf("Timestep_%d", s))
				if err != nil {
					return err
				}
				for _, v := range particleVars {
					ds, err := conn.DatasetOpen(grp, v.name)
					if err != nil {
						return err
					}
					// h5bench issues multi-block writes: the rank's row
					// range is written in BlocksPerWrite H5Dwrite calls.
					base := r.ID() * cfg.SampleParticles
					blocks := cfg.BlocksPerWrite
					for blk := 0; blk < blocks; blk++ {
						start := base + blk*cfg.SampleParticles/blocks
						end := base + (blk+1)*cfg.SampleParticles/blocks
						if blk == blocks-1 {
							end = base + cfg.SampleParticles
						}
						if end <= start {
							continue
						}
						data := make([]byte, (end-start)*v.dt.Size)
						fill(data, byte(r.ID()+s))
						if err := conn.DatasetWriteRows(ds, start, end-start, data); err != nil {
							return err
						}
					}
				}
				r.Barrier()
			}
			return nil
		}

		appendPhase := func() error {
			// Appends extend the shared dataset; ranks take turns to keep
			// row accounting simple (the paper notes appends are memory-
			// hungry and run at low rank counts).
			for s := 0; s < cfg.Steps; s++ {
				r.Clock.Advance(cfg.ComputePerStep)
				grp, err := conn.GroupOpen(root, fmt.Sprintf("Timestep_%d", s))
				if err != nil {
					return err
				}
				for v := 0; v < len(particleVars); v++ {
					if v%cfg.Ranks != r.ID() {
						continue // each variable appended by one rank
					}
					ds, err := conn.DatasetOpen(grp, particleVars[v].name)
					if err != nil {
						return err
					}
					data := make([]byte, cfg.SampleParticles*particleVars[v].dt.Size)
					if err := conn.DatasetAppend(ds, cfg.SampleParticles, data); err != nil {
						return err
					}
				}
				r.Barrier()
			}
			return nil
		}

		readPhase := func() error {
			for s := 0; s < cfg.Steps; s++ {
				grp, err := conn.GroupOpen(root, fmt.Sprintf("Timestep_%d", s))
				if err != nil {
					return err
				}
				for _, v := range particleVars {
					ds, err := conn.DatasetOpen(grp, v.name)
					if err != nil {
						return err
					}
					if _, err := conn.DatasetReadRows(ds, r.ID()*cfg.SampleParticles, cfg.SampleParticles); err != nil {
						return err
					}
				}
				r.Barrier()
			}
			return nil
		}

		var err error
		switch cfg.Pattern {
		case WriteRead:
			if err = writePhase(); err == nil {
				err = readPhase()
			}
		case WriteOverwriteRead:
			if err = writePhase(); err == nil {
				// The overwrite application rewrites the same rows,
				// producing new dataset versions.
				if err = writePhase(); err == nil {
					err = readPhase()
				}
			}
		case WriteAppendRead:
			if err = writePhase(); err == nil {
				if err = appendPhase(); err == nil {
					err = readPhase()
				}
			}
		}
		if err != nil {
			trackErr <- err
			return
		}

		r.Barrier()
		if r.ID() == 0 {
			if err := conn.FileFlush(shared.file); err != nil {
				trackErr <- err
			}
		}
		if st.tracker != nil {
			if err := st.tracker.Close(); err != nil {
				trackErr <- err
			}
		}
	})

	if shared.err != nil {
		return Result{}, shared.err
	}
	select {
	case err := <-trackErr:
		return Result{}, err
	default:
	}

	res := Result{Completion: completion, Store: provStore}
	if shared.file != nil {
		if ds, err := shared.file.Root().OpenDataset("Timestep_0/x"); err == nil {
			res.DatasetVersions = ds.Versions()
		}
		shared.file.Close()
	}
	if provCfg != nil {
		for _, st := range states {
			if st != nil && st.tracker != nil {
				recs, tris := st.tracker.Stats()
				res.Records += recs
				res.Triples += tris
			}
		}
		b, err := provStore.TotalBytes()
		if err != nil {
			return Result{}, err
		}
		res.ProvBytes = b
	}
	return res, nil
}

func fill(b []byte, v byte) {
	for i := range b {
		b[i] = v
	}
}
