package h5bench

import (
	"testing"
	"time"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
)

// fastCfg keeps unit-test runs quick: few ranks, tiny samples.
func fastCfg(p Pattern, s Scenario) Config {
	return Config{
		Ranks: 4, Steps: 2,
		LogicalParticles: 1 << 16, SampleParticles: 16,
		ComputePerStep: 25 * time.Second,
		Pattern:        p, Scenario: s,
	}
}

func TestBaselineRuns(t *testing.T) {
	res, err := Run(fastCfg(WriteRead, ScenarioBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion <= 0 {
		t.Error("no completion time")
	}
	if res.ProvBytes != 0 || res.Records != 0 {
		t.Errorf("baseline produced provenance: %+v", res)
	}
	// 2 steps of 25s compute in the write phase dominate.
	if res.Completion < 50*time.Second {
		t.Errorf("completion %v below compute floor", res.Completion)
	}
}

func TestAllPatternsAllScenarios(t *testing.T) {
	for _, p := range []Pattern{WriteRead, WriteOverwriteRead, WriteAppendRead} {
		for _, s := range []Scenario{ScenarioBaseline, Scenario1, Scenario2, Scenario3} {
			t.Run(p.String()+"/"+s.String(), func(t *testing.T) {
				res, err := Run(fastCfg(p, s))
				if err != nil {
					t.Fatal(err)
				}
				if s != ScenarioBaseline && res.ProvBytes == 0 {
					t.Error("no provenance persisted")
				}
			})
		}
	}
}

func TestTrackingOverheadSmallAndOrdered(t *testing.T) {
	base, err := Run(fastCfg(WriteRead, ScenarioBaseline))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := Run(fastCfg(WriteRead, Scenario1))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Completion <= base.Completion {
		t.Errorf("tracking was free: base %v, tracked %v", base.Completion, s1.Completion)
	}
	overhead := float64(s1.Completion-base.Completion) / float64(base.Completion)
	if overhead > 0.2 {
		t.Errorf("tracking overhead %.1f%% implausibly high", overhead*100)
	}
}

func TestScenario2TracksDurations(t *testing.T) {
	s1, _ := Run(fastCfg(WriteRead, Scenario1))
	s2, _ := Run(fastCfg(WriteRead, Scenario2))
	if s2.ProvBytes <= s1.ProvBytes {
		t.Errorf("scenario-2 (with durations) should store more: %d vs %d", s2.ProvBytes, s1.ProvBytes)
	}
	if s2.Records != s1.Records {
		t.Errorf("scenario-2 record count changed: %d vs %d", s2.Records, s1.Records)
	}
}

func TestScenario3TracksAgentsAndFiles(t *testing.T) {
	cfg3 := Scenario3.ProvConfig()
	if !cfg3.Enabled(model.User) || !cfg3.Enabled(model.Thread) ||
		!cfg3.Enabled(model.Program) || !cfg3.Enabled(model.File) {
		t.Fatal("scenario-3 config missing classes")
	}
	if cfg3.Enabled(model.Dataset) {
		t.Error("scenario-3 should not track datasets")
	}
	s1, _ := Run(fastCfg(WriteRead, Scenario1))
	s3, _ := Run(fastCfg(WriteRead, Scenario3))
	if s3.Records <= s1.Records {
		t.Errorf("scenario-3 should add agent/file records: %d vs %d", s3.Records, s1.Records)
	}
}

func TestOverwritePatternCreatesVersions(t *testing.T) {
	wr, err := Run(fastCfg(WriteRead, ScenarioBaseline))
	if err != nil {
		t.Fatal(err)
	}
	ovw, err := Run(fastCfg(WriteOverwriteRead, ScenarioBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if ovw.DatasetVersions <= wr.DatasetVersions {
		t.Errorf("overwrite did not add dataset versions: %d vs %d", ovw.DatasetVersions, wr.DatasetVersions)
	}
}

func TestOverwriteCostsMoreThanWriteRead(t *testing.T) {
	wr, _ := Run(fastCfg(WriteRead, ScenarioBaseline))
	ovw, _ := Run(fastCfg(WriteOverwriteRead, ScenarioBaseline))
	if ovw.Completion <= wr.Completion {
		t.Errorf("overwrite pattern should take longer: %v vs %v", ovw.Completion, wr.Completion)
	}
}

func TestProvBytesGrowWithRanks(t *testing.T) {
	small := fastCfg(WriteRead, Scenario1)
	small.Ranks = 2
	big := fastCfg(WriteRead, Scenario1)
	big.Ranks = 8
	rs, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.ProvBytes <= rs.ProvBytes {
		t.Errorf("provenance should grow with ranks: %d vs %d", rb.ProvBytes, rs.ProvBytes)
	}
}

func TestScenarioProvConfigs(t *testing.T) {
	if ScenarioBaseline.ProvConfig() != nil {
		t.Error("baseline must have nil config")
	}
	s1 := Scenario1.ProvConfig()
	if s1.Duration {
		t.Error("scenario-1 should not track durations")
	}
	if !Scenario2.ProvConfig().Duration {
		t.Error("scenario-2 must track durations")
	}
	var fromCore *core.Config = s1
	if !fromCore.Enabled(model.Write) {
		t.Error("scenario-1 must track Write")
	}
}

func TestPatternScenarioStrings(t *testing.T) {
	if WriteRead.String() != "write+read" || WriteAppendRead.String() != "write+append+read" {
		t.Error("pattern names wrong")
	}
	if Scenario2.String() != "scenario-2" || ScenarioBaseline.String() != "baseline" {
		t.Error("scenario names wrong")
	}
	if Pattern(99).String() != "unknown" || Scenario(99).String() != "unknown" {
		t.Error("unknown enums should stringify to unknown")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Ranks <= 0 || cfg.Steps <= 0 || cfg.ComputePerStep != 25*time.Second {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.SampleParticles > cfg.LogicalParticles {
		t.Error("sample exceeds logical")
	}
	over := Config{LogicalParticles: 4, SampleParticles: 100}.withDefaults()
	if over.SampleParticles != 4 {
		t.Errorf("sample not clamped: %d", over.SampleParticles)
	}
}

func TestDeterministicCompletion(t *testing.T) {
	a, err := Run(fastCfg(WriteRead, Scenario1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fastCfg(WriteRead, Scenario1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Completion != b.Completion {
		t.Errorf("completion not deterministic: %v vs %v", a.Completion, b.Completion)
	}
	if a.ProvBytes != b.ProvBytes {
		t.Errorf("prov bytes not deterministic: %d vs %d", a.ProvBytes, b.ProvBytes)
	}
}
