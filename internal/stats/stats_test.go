package stats

import (
	"strings"
	"testing"
	"time"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
)

// buildGraph tracks a small mixed workload with durations.
func buildGraph(t *testing.T, duration bool) *rdf.Graph {
	t.Helper()
	cfg := core.ScenarioConfig(duration, "Create", "Open", "Read", "Write", "Fsync", "Rename", "File", "Dataset")
	tr := core.NewTracker(cfg, nil, 0)
	file := tr.TrackDataObject(model.File, "/data/f.h5", "/data/f.h5", rdf.Term{}, rdf.Term{})
	ds := tr.TrackDataObject(model.Dataset, "/data/f.h5/x", "/x", file, rdf.Term{})
	tr.TrackIO(model.Create, "H5Fcreate", file, rdf.Term{}, 0, 2*time.Millisecond)
	tr.TrackIO(model.Create, "H5Dcreate2", ds, rdf.Term{}, 0, time.Millisecond)
	for i := 0; i < 5; i++ {
		tr.TrackIO(model.Write, "H5Dwrite", ds, rdf.Term{}, 0, 10*time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		tr.TrackIO(model.Read, "H5Dread", ds, rdf.Term{}, 0, 4*time.Millisecond)
	}
	tr.TrackIO(model.Fsync, "H5Fflush", file, rdf.Term{}, 0, time.Millisecond)
	tr.TrackIO(model.Rename, "rename", file, rdf.Term{}, 0, time.Millisecond)
	return tr.Graph()
}

func TestComputeOpCounts(t *testing.T) {
	s := Compute(buildGraph(t, false))
	if s.Activities != 12 {
		t.Errorf("Activities = %d, want 12", s.Activities)
	}
	want := map[string]int{"H5Fcreate": 1, "H5Dcreate2": 1, "H5Dwrite": 5, "H5Dread": 3, "H5Fflush": 1, "rename": 1}
	for api, n := range want {
		if s.OpCounts[api] != n {
			t.Errorf("OpCounts[%s] = %d, want %d", api, s.OpCounts[api], n)
		}
	}
	if s.HasDurations {
		t.Error("durations reported despite duration=off")
	}
	if api, _ := s.Bottleneck(); api != "" {
		t.Errorf("Bottleneck = %q without durations", api)
	}
}

func TestComputeDurationsAndBottleneck(t *testing.T) {
	s := Compute(buildGraph(t, true))
	if !s.HasDurations {
		t.Fatal("durations missing")
	}
	if got := s.OpTotal["H5Dwrite"]; got != 50*time.Millisecond {
		t.Errorf("H5Dwrite total = %v, want 50ms", got)
	}
	api, d := s.Bottleneck()
	if api != "H5Dwrite" || d != 50*time.Millisecond {
		t.Errorf("Bottleneck = %s, %v", api, d)
	}
}

func TestObjectProfiles(t *testing.T) {
	s := Compute(buildGraph(t, false))
	hot := s.HottestObjects(0)
	if len(hot) != 2 {
		t.Fatalf("objects = %d, want 2", len(hot))
	}
	top := hot[0]
	if top.Name != "/x" || top.Class != "Dataset" {
		t.Errorf("hottest = %+v", top)
	}
	if top.Writes != 5 || top.Reads != 3 || top.Created != 1 {
		t.Errorf("dataset profile = %+v", top)
	}
	fileProf := hot[1]
	if fileProf.Flushes != 1 || fileProf.Renames != 1 || fileProf.Created != 1 {
		t.Errorf("file profile = %+v", fileProf)
	}
	if got := s.HottestObjects(1); len(got) != 1 {
		t.Errorf("HottestObjects(1) = %d entries", len(got))
	}
}

func TestWriteReport(t *testing.T) {
	s := Compute(buildGraph(t, true))
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"total I/O API invocations: 12", "H5Dwrite", "bottleneck: H5Dwrite", "hottest data objects"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAPINameOf(t *testing.T) {
	cases := map[string]string{
		model.ActivityIRI("H5Dwrite", 3, 7):   "H5Dwrite",
		model.ActivityIRI("read", 0, 1):       "read",
		model.ActivityIRI("adios2_put", 1, 2): "adios2_put",
		"plainname":                           "plainname",
	}
	for iri, want := range cases {
		if got := apiNameOf(iri); got != want {
			t.Errorf("apiNameOf(%q) = %q, want %q", iri, got, want)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	s := Compute(rdf.NewGraph())
	if s.Activities != 0 || len(s.ObjectAccess) != 0 {
		t.Errorf("empty graph summary = %+v", s)
	}
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestTruncate(t *testing.T) {
	if got := truncate("short", 10); got != "short" {
		t.Errorf("truncate = %q", got)
	}
	long := truncate("/a/very/long/path/to/some/file.h5", 12)
	if len(long) > 14 { // ellipsis rune is multi-byte
		t.Errorf("truncate too long: %q", long)
	}
	if !strings.Contains(long, "file.h5") {
		t.Errorf("suffix lost: %q", long)
	}
}

func TestPerAgentBreakdown(t *testing.T) {
	cfg := core.ScenarioConfig(false, "Create", "Open", "Read", "Write", "Fsync", "Rename", "Thread", "Program", "User")
	tr := core.NewTracker(cfg, nil, 0)
	user := tr.RegisterUser("u")
	prog := tr.RegisterProgram("p", user)
	t0 := tr.RegisterThread(0, prog)
	t1 := tr.RegisterThread(1, prog)
	for i := 0; i < 3; i++ {
		tr.TrackIO(model.Write, "write", rdf.Term{}, t0, 0, 0)
	}
	tr.TrackIO(model.Read, "read", rdf.Term{}, t1, 0, 0)

	per := PerAgent(tr.Graph())
	if per["MPI_rank_0"] != 3 {
		t.Errorf("rank 0 ops = %d, want 3", per["MPI_rank_0"])
	}
	if per["MPI_rank_1"] != 1 {
		t.Errorf("rank 1 ops = %d, want 1", per["MPI_rank_1"])
	}
}

func TestWriteWithAgents(t *testing.T) {
	cfg := core.ScenarioConfig(false, "Create", "Open", "Read", "Write", "Fsync", "Rename", "Thread", "Program", "User")
	tr := core.NewTracker(cfg, nil, 0)
	prog := tr.RegisterProgram("p", tr.RegisterUser("u"))
	thr := tr.RegisterThread(0, prog)
	tr.TrackIO(model.Write, "write", rdf.Term{}, thr, 0, 0)
	var sb strings.Builder
	if err := Compute(tr.Graph()).WriteWithAgents(&sb, tr.Graph()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "operations per agent") ||
		!strings.Contains(sb.String(), "MPI_rank_0") {
		t.Errorf("per-agent section missing:\n%s", sb.String())
	}
}
