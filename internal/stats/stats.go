// Package stats computes I/O statistics from PROV-IO provenance graphs —
// the reusable form of the paper's H5bench use case (§3.3): operation
// counts per API, accumulated time per API for bottleneck analysis, and
// per-data-object access profiles, all derived by querying the provenance
// rather than instrumenting the application again.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
)

// Summary holds the derived I/O statistics.
type Summary struct {
	// OpCounts maps API name (e.g. "H5Dwrite") to invocation count.
	OpCounts map[string]int
	// OpTotal maps API name to accumulated elapsed time (zero when the
	// provenance was collected without the duration switch).
	OpTotal map[string]time.Duration
	// ObjectAccess maps a data object's display name to its access profile.
	ObjectAccess map[string]*ObjectProfile
	// Activities is the total number of I/O API invocations.
	Activities int
	// HasDurations reports whether elapsed times were present.
	HasDurations bool
}

// ObjectProfile is one data object's access counts.
type ObjectProfile struct {
	Name    string
	Class   string // File, Dataset, Attribute, ...
	Created int
	Opened  int
	Reads   int
	Writes  int
	Flushes int
	Renames int
}

// total returns the profile's total op count.
func (p *ObjectProfile) total() int {
	return p.Created + p.Opened + p.Reads + p.Writes + p.Flushes + p.Renames
}

// Compute derives a Summary from a provenance graph.
//
// All scans run in dictionary-ID space (rdf.ForEachMatchIDs): predicate and
// class terms are resolved to IDs once up front, per-triple work is integer
// map probes, and subject terms are hydrated only when a count is recorded.
// The whole computation reads one pinned rdf.Snapshot — a single graph-lock
// acquisition, and a consistent view even under concurrent ingest.
func Compute(g *rdf.Graph) *Summary {
	v := g.Snapshot()
	s := &Summary{
		OpCounts:     map[string]int{},
		OpTotal:      map[string]time.Duration{},
		ObjectAccess: map[string]*ObjectProfile{},
	}

	idOf := func(t rdf.Term) rdf.ID {
		if id, ok := v.TermID(t); ok {
			return id
		}
		return rdf.NoID
	}
	// apiName memoizes the IRI→API-name extraction per subject ID.
	names := map[rdf.ID]string{}
	apiName := func(id rdf.ID) string {
		n, ok := names[id]
		if !ok {
			n = apiNameOf(v.TermOf(id).Value)
			names[id] = n
		}
		return n
	}

	// Activities: nodes typed with an I/O API sub-class.
	apiClasses := map[rdf.ID]bool{}
	for _, c := range []model.Class{model.Create, model.Open, model.Read, model.Write, model.Fsync, model.Rename} {
		if id := idOf(c.IRI()); id != rdf.NoID {
			apiClasses[id] = true
		}
	}
	if typeID := idOf(rdf.IRI(rdf.RDFType)); typeID != rdf.NoID {
		v.ForEachMatchIDs(rdf.NoID, typeID, rdf.NoID, func(sub, _, o rdf.ID) bool {
			if !apiClasses[o] {
				return true
			}
			s.Activities++
			s.OpCounts[apiName(sub)]++
			return true
		})
	}

	// Durations.
	if elapsedID := idOf(model.PropElapsed.IRI()); elapsedID != rdf.NoID {
		v.ForEachMatchIDs(rdf.NoID, elapsedID, rdf.NoID, func(sub, _, o rdf.ID) bool {
			ns, err := strconv.ParseInt(v.TermOf(o).Value, 10, 64)
			if err != nil {
				return true
			}
			s.HasDurations = true
			s.OpTotal[apiName(sub)] += time.Duration(ns)
			return true
		})
	}

	// Per-object access profiles from the six provio relations.
	rels := []struct {
		rel   model.Relation
		field func(*ObjectProfile) *int
	}{
		{model.WasCreatedBy, func(p *ObjectProfile) *int { return &p.Created }},
		{model.WasOpenedBy, func(p *ObjectProfile) *int { return &p.Opened }},
		{model.WasReadBy, func(p *ObjectProfile) *int { return &p.Reads }},
		{model.WasWrittenBy, func(p *ObjectProfile) *int { return &p.Writes }},
		{model.WasFlushedBy, func(p *ObjectProfile) *int { return &p.Flushes }},
		{model.WasModifiedBy, func(p *ObjectProfile) *int { return &p.Renames }},
	}
	nameID := idOf(model.PropName.IRI())
	typeID := idOf(rdf.IRI(rdf.RDFType))
	profiles := map[rdf.ID]*ObjectProfile{}
	for _, r := range rels {
		pred := idOf(r.rel.IRI())
		if pred == rdf.NoID {
			continue
		}
		v.ForEachMatchIDs(rdf.NoID, pred, rdf.NoID, func(sub, _, _ rdf.ID) bool {
			prof, ok := profiles[sub]
			if !ok {
				key := v.TermOf(sub).Value
				prof = &ObjectProfile{Name: key, Class: classNameOfID(v, sub, typeID)}
				// Prefer the display name when recorded.
				if nameID != rdf.NoID {
					v.ForEachMatchIDs(sub, nameID, rdf.NoID, func(_, _, o rdf.ID) bool {
						prof.Name = v.TermOf(o).Value
						return false
					})
				}
				profiles[sub] = prof
				s.ObjectAccess[key] = prof
			}
			*r.field(prof)++
			return true
		})
	}
	return s
}

// apiNameOf extracts the API name from an activity IRI like
// ".../api/H5Dwrite-p3-b7".
func apiNameOf(iri string) string {
	name := iri
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	// Strip the "-p<pid>-b<seq>" suffix.
	if i := strings.LastIndex(name, "-b"); i > 0 {
		if j := strings.LastIndex(name[:i], "-p"); j > 0 {
			name = name[:j]
		}
	}
	return name
}

// classNameOfID returns the model class name of a node (empty if untyped or
// when typeID is rdf.NoID, i.e. no rdf:type triple exists in the snapshot).
func classNameOfID(v *rdf.Snapshot, node, typeID rdf.ID) string {
	out := ""
	if typeID == rdf.NoID {
		return out
	}
	v.ForEachMatchIDs(node, typeID, rdf.NoID, func(_, _, o rdf.ID) bool {
		if val := v.TermOf(o).Value; strings.HasPrefix(val, model.ProvIONS) {
			out = strings.TrimPrefix(val, model.ProvIONS)
			return false
		}
		return true
	})
	return out
}

// PerAgent returns per-agent operation counts (keyed by the agent's display
// name) derived from prov:wasAssociatedWith edges — the Recorder-style
// per-rank breakdown for workloads tracked with Thread agents enabled.
func PerAgent(g *rdf.Graph) map[string]int {
	v := g.Snapshot()
	out := map[string]int{}
	assoc, ok := v.TermID(model.AssociatedWith.IRI())
	if !ok {
		return out
	}
	nameID := rdf.NoID
	if id, ok := v.TermID(model.PropName.IRI()); ok {
		nameID = id
	}
	nameOf := map[rdf.ID]string{}
	v.ForEachMatchIDs(rdf.NoID, assoc, rdf.NoID, func(_, _, o rdf.ID) bool {
		key, ok := nameOf[o]
		if !ok {
			agent := v.TermOf(o)
			if !agent.IsIRI() {
				return true
			}
			key = agent.Value
			if nameID != rdf.NoID {
				v.ForEachMatchIDs(o, nameID, rdf.NoID, func(_, _, n rdf.ID) bool {
					key = v.TermOf(n).Value
					return false
				})
			}
			nameOf[o] = key
		}
		out[key]++
		return true
	})
	return out
}

// Bottleneck returns the API with the largest accumulated time (empty when
// durations were not tracked).
func (s *Summary) Bottleneck() (string, time.Duration) {
	var name string
	var best time.Duration
	for api, d := range s.OpTotal {
		if d > best || (d == best && api < name) || name == "" {
			name, best = api, d
		}
	}
	if !s.HasDurations {
		return "", 0
	}
	return name, best
}

// HottestObjects returns the n most-accessed objects, sorted by total ops
// descending (ties by name).
func (s *Summary) HottestObjects(n int) []*ObjectProfile {
	out := make([]*ObjectProfile, 0, len(s.ObjectAccess))
	for _, p := range s.ObjectAccess {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].total() != out[j].total() {
			return out[i].total() > out[j].total()
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Write renders the summary as a text report.
func (s *Summary) Write(w io.Writer) error {
	var b strings.Builder
	b.WriteString("I/O statistics (from PROV-IO provenance)\n")
	fmt.Fprintf(&b, "total I/O API invocations: %d\n\n", s.Activities)

	b.WriteString("operation counts:\n")
	apis := make([]string, 0, len(s.OpCounts))
	for api := range s.OpCounts {
		apis = append(apis, api)
	}
	sort.Slice(apis, func(i, j int) bool {
		if s.OpCounts[apis[i]] != s.OpCounts[apis[j]] {
			return s.OpCounts[apis[i]] > s.OpCounts[apis[j]]
		}
		return apis[i] < apis[j]
	})
	for _, api := range apis {
		fmt.Fprintf(&b, "  %-16s %8d", api, s.OpCounts[api])
		if s.HasDurations {
			fmt.Fprintf(&b, "  %12s total", s.OpTotal[api])
		}
		b.WriteByte('\n')
	}
	if api, d := s.Bottleneck(); api != "" {
		fmt.Fprintf(&b, "\nbottleneck: %s (%s accumulated)\n", api, d)
	}
	hot := s.HottestObjects(10)
	if len(hot) > 0 {
		b.WriteString("\nhottest data objects:\n")
		for _, p := range hot {
			fmt.Fprintf(&b, "  %-40s %-10s create=%d open=%d read=%d write=%d fsync=%d rename=%d\n",
				truncate(p.Name, 40), p.Class, p.Created, p.Opened, p.Reads, p.Writes, p.Flushes, p.Renames)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteWithAgents renders the summary plus a per-agent op breakdown derived
// from the same graph.
func (s *Summary) WriteWithAgents(w io.Writer, g *rdf.Graph) error {
	if err := s.Write(w); err != nil {
		return err
	}
	per := PerAgent(g)
	if len(per) == 0 {
		return nil
	}
	var names []string
	for n := range per {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if per[names[i]] != per[names[j]] {
			return per[names[i]] > per[names[j]]
		}
		return names[i] < names[j]
	})
	var b strings.Builder
	b.WriteString("\noperations per agent:\n")
	for _, n := range names {
		fmt.Fprintf(&b, "  %-32s %8d\n", truncate(n, 32), per[n])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n+1:]
}
