package viz

import (
	"strings"
	"testing"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
)

// dassaGraph builds the Figure 9 style lineage chain.
func dassaGraph() (*rdf.Graph, rdf.Term, rdf.Term) {
	tr := core.NewTracker(core.DefaultConfig(), nil, 0)
	user := tr.RegisterUser("Bob")
	conv := tr.RegisterProgram("tdms2h5", user)
	dec := tr.RegisterProgram("decimate", user)
	raw := tr.TrackDataObject(model.File, "/WestSac.tdms", "WestSac.tdms", rdf.Term{}, rdf.Term{})
	mid := tr.TrackDataObject(model.File, "/WestSac.h5", "WestSac.h5", rdf.Term{}, conv)
	out := tr.TrackDataObject(model.File, "/decimate.h5", "decimate.h5", rdf.Term{}, dec)
	tr.TrackDerivation(mid, raw)
	tr.TrackDerivation(out, mid)
	tr.TrackIO(model.Read, "read", raw, conv, 0, 0)
	tr.TrackIO(model.Write, "H5Dwrite", mid, conv, 0, 0)
	return tr.Graph(), out, raw
}

func TestWriteDOTStructure(t *testing.T) {
	g, _, _ := dassaGraph()
	var sb strings.Builder
	if err := WriteDOT(&sb, g, Options{Title: "DASSA lineage"}); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	if !strings.HasPrefix(dot, "digraph provenance {") || !strings.HasSuffix(dot, "}\n") {
		t.Errorf("not a DOT document:\n%s", dot)
	}
	if !strings.Contains(dot, `label="DASSA lineage"`) {
		t.Error("title missing")
	}
	// Entities are ellipses, activities boxes, agents houses.
	if !strings.Contains(dot, "shape=ellipse") {
		t.Error("no entity shapes")
	}
	if !strings.Contains(dot, "shape=box") {
		t.Error("no activity shapes")
	}
	if !strings.Contains(dot, "shape=house") {
		t.Error("no agent shapes")
	}
	// Relation labels rendered as CURIEs.
	if !strings.Contains(dot, "prov:wasDerivedFrom") {
		t.Error("derivation edge missing")
	}
	if !strings.Contains(dot, "provio:wasReadBy") {
		t.Error("wasReadBy edge missing")
	}
	if !strings.Contains(dot, "prov:actedOnBehalfOf") {
		t.Error("delegation edge missing")
	}
}

func TestWriteDOTDeterministic(t *testing.T) {
	g, _, _ := dassaGraph()
	var a, b strings.Builder
	WriteDOT(&a, g, Options{})
	WriteDOT(&b, g, Options{})
	if a.String() != b.String() {
		t.Error("DOT output not deterministic")
	}
}

func TestLineageHighlight(t *testing.T) {
	g, product, raw := dassaGraph()
	hl := LineageHighlight(g, product)
	if !hl[product.Value] {
		t.Error("product not highlighted")
	}
	if !hl[raw.Value] {
		t.Error("transitive ancestor not highlighted")
	}
	prog := model.NodeIRI(model.Program, "decimate")
	if !hl[prog] {
		t.Error("attributed program not highlighted")
	}
	// Unrelated agent (user) not highlighted via lineage.
	user := model.NodeIRI(model.User, "Bob")
	if hl[user] {
		t.Error("user should not be in the lineage highlight")
	}
}

func TestWriteDOTHighlightsInBlue(t *testing.T) {
	g, product, _ := dassaGraph()
	hl := LineageHighlight(g, product)
	var sb strings.Builder
	if err := WriteDOT(&sb, g, Options{Highlight: hl}); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	if !strings.Contains(dot, "color=blue") {
		t.Error("no blue highlighting emitted")
	}
	// The raw->mid derivation edge is within the highlight set.
	if !strings.Contains(dot, `[label="prov:wasDerivedFrom", color=blue]`) {
		t.Errorf("lineage edge not blue:\n%s", dot)
	}
}

func TestWriteDOTTruncatesLabels(t *testing.T) {
	g := rdf.NewGraph()
	long := strings.Repeat("x", 200)
	a := rdf.IRI(model.NodeIRI(model.File, "/"+long))
	b := rdf.IRI(model.NodeIRI(model.File, "/b"))
	g.Add(rdf.Triple{S: a, P: model.PropName.IRI(), O: rdf.Literal(long)})
	g.Add(rdf.Triple{S: a, P: model.WasDerivedFrom.IRI(), O: b})
	var sb strings.Builder
	if err := WriteDOT(&sb, g, Options{MaxLabel: 20}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `label="`+long) {
		t.Error("long label not truncated")
	}
	if !strings.Contains(sb.String(), "…") {
		t.Error("truncation marker missing")
	}
}

func TestWriteDOTIgnoresNonRelationEdges(t *testing.T) {
	g := rdf.NewGraph()
	a := rdf.IRI("http://x/a")
	g.Add(rdf.Triple{S: a, P: rdf.IRI("http://x/custom"), O: rdf.IRI("http://x/b")})
	var sb strings.Builder
	if err := WriteDOT(&sb, g, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "custom") {
		t.Error("non-model predicate drawn")
	}
}
