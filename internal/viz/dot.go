// Package viz renders provenance (sub)graphs as Graphviz DOT, the
// visualization backend of the PROV-IO User Engine (paper §5, Figure 9).
// Node shapes follow the W3C PROV layout conventions the paper's figures
// use: ellipses for entities, rectangles for activities, houses
// (pentagons) for agents, and notes for extensible records. A highlight set
// marks a queried lineage in blue, reproducing Figure 9's emphasis.
package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
)

// Options controls DOT rendering.
type Options struct {
	// Title is the graph label.
	Title string
	// Highlight marks these node IRIs (and edges among them) in blue.
	Highlight map[string]bool
	// MaxLabel truncates node labels longer than this (0 = 48).
	MaxLabel int
}

// WriteDOT renders g as a DOT document. All graph reads go through one
// pinned rdf.Snapshot: a single lock acquisition, and a consistent rendering
// even while the graph is being written to.
func WriteDOT(w io.Writer, g *rdf.Graph, opts Options) error {
	if opts.MaxLabel <= 0 {
		opts.MaxLabel = 48
	}
	v := g.Snapshot()
	ns := model.Namespaces()

	var b strings.Builder
	b.WriteString("digraph provenance {\n")
	b.WriteString("  rankdir=BT;\n")
	b.WriteString("  node [fontname=\"Helvetica\", fontsize=10];\n")
	b.WriteString("  edge [fontname=\"Helvetica\", fontsize=8];\n")
	if opts.Title != "" {
		fmt.Fprintf(&b, "  label=%q;\n  labelloc=t;\n", opts.Title)
	}

	// All scans below run in dictionary-ID space; node terms are hydrated
	// once through the cache and reused across the type/name/edge passes.
	terms := map[rdf.ID]rdf.Term{}
	termOf := func(id rdf.ID) rdf.Term {
		t, ok := terms[id]
		if !ok {
			t = v.TermOf(id)
			terms[id] = t
		}
		return t
	}
	predID := func(t rdf.Term) rdf.ID {
		if id, ok := v.TermID(t); ok {
			return id
		}
		return rdf.NoID
	}

	// Classify nodes by rdf:type.
	kind := map[string]string{} // IRI -> shape class
	label := map[string]string{}
	if typeID := predID(rdf.IRI(rdf.RDFType)); typeID != rdf.NoID {
		v.ForEachMatchIDs(rdf.NoID, typeID, rdf.NoID, func(s, _, o rdf.ID) bool {
			st, ot := termOf(s), termOf(o)
			if !st.IsIRI() || !ot.IsIRI() {
				return true
			}
			if cls := classOf(ot.Value); cls != "" {
				kind[st.Value] = cls
			}
			return true
		})
	}
	if nameID := predID(model.PropName.IRI()); nameID != rdf.NoID {
		v.ForEachMatchIDs(rdf.NoID, nameID, rdf.NoID, func(s, _, o rdf.ID) bool {
			st, ot := termOf(s), termOf(o)
			if st.IsIRI() && ot.IsLiteral() {
				label[st.Value] = ot.Value
			}
			return true
		})
	}

	// Collect nodes appearing in relation edges. Drawable predicates are
	// resolved to IDs once, so the full scan is a map probe per triple.
	relLabel := relationLabelIDs(v)
	nodes := map[string]bool{}
	type edge struct{ from, to, lbl string }
	var edges []edge
	v.ForEachMatchIDs(rdf.NoID, rdf.NoID, rdf.NoID, func(s, p, o rdf.ID) bool {
		lbl, ok := relLabel[p]
		if !ok {
			return true
		}
		st, ot := termOf(s), termOf(o)
		if !st.IsIRI() || !ot.IsIRI() {
			return true
		}
		nodes[st.Value] = true
		nodes[ot.Value] = true
		edges = append(edges, edge{from: st.Value, to: ot.Value, lbl: lbl})
		return true
	})

	// Deterministic ordering.
	nodeList := make([]string, 0, len(nodes))
	for n := range nodes {
		nodeList = append(nodeList, n)
	}
	sort.Strings(nodeList)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		if edges[i].to != edges[j].to {
			return edges[i].to < edges[j].to
		}
		return edges[i].lbl < edges[j].lbl
	})

	for _, n := range nodeList {
		shape, style := shapeFor(kind[n])
		lbl := label[n]
		if lbl == "" {
			lbl = shortIRI(n, ns)
		}
		if len(lbl) > opts.MaxLabel {
			lbl = lbl[:opts.MaxLabel-1] + "…"
		}
		color := "black"
		fill := ""
		if opts.Highlight[n] {
			color = "blue"
			fill = ", fontcolor=blue"
		}
		fmt.Fprintf(&b, "  %q [label=%q, shape=%s%s, color=%s%s];\n",
			n, lbl, shape, style, color, fill)
	}
	for _, e := range edges {
		color := "black"
		if opts.Highlight[e.from] && opts.Highlight[e.to] {
			color = "blue"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q, color=%s];\n", e.from, e.to, e.lbl, color)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// classOf maps a class IRI to a shape class.
func classOf(iri string) string {
	if !strings.HasPrefix(iri, model.ProvIONS) {
		return ""
	}
	name := strings.TrimPrefix(iri, model.ProvIONS)
	cls, ok := model.ClassByName(name)
	if !ok {
		return ""
	}
	switch cls.Super {
	case model.SuperEntity:
		return "entity"
	case model.SuperActivity:
		return "activity"
	case model.SuperAgent:
		return "agent"
	case model.SuperExtensible:
		return "extensible"
	}
	return ""
}

func shapeFor(class string) (shape, style string) {
	switch class {
	case "entity":
		return "ellipse", ", style=filled, fillcolor=\"#fffbd6\""
	case "activity":
		return "box", ", style=filled, fillcolor=\"#e8d6ff\""
	case "agent":
		return "house", ", style=filled, fillcolor=\"#ffe0c2\""
	case "extensible":
		return "note", ", style=filled, fillcolor=\"#d9f2d9\""
	default:
		return "ellipse", ""
	}
}

// relationLabelIDs maps the dictionary ID of every drawable predicate
// present in the snapshot to its CURIE edge label.
func relationLabelIDs(v *rdf.Snapshot) map[rdf.ID]string {
	out := map[rdf.ID]string{}
	add := func(t rdf.Term, curie string) {
		if id, ok := v.TermID(t); ok {
			out[id] = curie
		}
	}
	for _, r := range model.AllRelations() {
		add(r.IRI(), r.CURIE())
	}
	// Extensible-record links are drawn too.
	for _, r := range []model.Relation{model.PropType, model.PropConfig, model.PropMetric} {
		add(r.IRI(), r.CURIE())
	}
	return out
}

func shortIRI(iri string, ns *rdf.Namespaces) string {
	if c, ok := ns.Shrink(iri); ok {
		return c
	}
	if i := strings.LastIndexAny(iri, "/#"); i >= 0 && i < len(iri)-1 {
		return iri[i+1:]
	}
	return iri
}

// LineageHighlight computes the highlight set for a backward lineage: the
// product node plus everything reachable over prov:wasDerivedFrom and the
// programs those entities are attributed to — the blue path of Figure 9.
func LineageHighlight(g *rdf.Graph, product rdf.Term) map[string]bool {
	v := g.Snapshot()
	out := map[string]bool{product.Value: true}
	root, ok := v.TermID(product)
	if !ok {
		return out
	}
	idOf := func(t rdf.Term) rdf.ID {
		if id, ok := v.TermID(t); ok {
			return id
		}
		return rdf.NoID
	}
	derived := idOf(model.WasDerivedFrom.IRI())
	attr := idOf(model.WasAttributedTo.IRI())
	seen := map[rdf.ID]bool{root: true}
	frontier := []rdf.ID{root}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		if derived != rdf.NoID {
			v.ForEachMatchIDs(cur, derived, rdf.NoID, func(_, _, o rdf.ID) bool {
				if !seen[o] {
					seen[o] = true
					out[v.TermOf(o).Value] = true
					frontier = append(frontier, o)
				}
				return true
			})
		}
		if attr != rdf.NoID {
			v.ForEachMatchIDs(cur, attr, rdf.NoID, func(_, _, o rdf.ID) bool {
				if !seen[o] {
					seen[o] = true
					out[v.TermOf(o).Value] = true
				}
				return true
			})
		}
	}
	return out
}
