// Package viz renders provenance (sub)graphs as Graphviz DOT, the
// visualization backend of the PROV-IO User Engine (paper §5, Figure 9).
// Node shapes follow the W3C PROV layout conventions the paper's figures
// use: ellipses for entities, rectangles for activities, houses
// (pentagons) for agents, and notes for extensible records. A highlight set
// marks a queried lineage in blue, reproducing Figure 9's emphasis.
package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
)

// Options controls DOT rendering.
type Options struct {
	// Title is the graph label.
	Title string
	// Highlight marks these node IRIs (and edges among them) in blue.
	Highlight map[string]bool
	// MaxLabel truncates node labels longer than this (0 = 48).
	MaxLabel int
}

// WriteDOT renders g as a DOT document.
func WriteDOT(w io.Writer, g *rdf.Graph, opts Options) error {
	if opts.MaxLabel <= 0 {
		opts.MaxLabel = 48
	}
	ns := model.Namespaces()

	var b strings.Builder
	b.WriteString("digraph provenance {\n")
	b.WriteString("  rankdir=BT;\n")
	b.WriteString("  node [fontname=\"Helvetica\", fontsize=10];\n")
	b.WriteString("  edge [fontname=\"Helvetica\", fontsize=8];\n")
	if opts.Title != "" {
		fmt.Fprintf(&b, "  label=%q;\n  labelloc=t;\n", opts.Title)
	}

	// Classify nodes by rdf:type.
	kind := map[string]string{} // IRI -> shape class
	label := map[string]string{}
	typePred := rdf.IRI(rdf.RDFType)
	g.ForEachMatch(nil, &typePred, nil, func(t rdf.Triple) bool {
		if !t.S.IsIRI() || !t.O.IsIRI() {
			return true
		}
		if cls := classOf(t.O.Value); cls != "" {
			kind[t.S.Value] = cls
		}
		return true
	})
	namePred := model.PropName.IRI()
	g.ForEachMatch(nil, &namePred, nil, func(t rdf.Triple) bool {
		if t.S.IsIRI() && t.O.IsLiteral() {
			label[t.S.Value] = t.O.Value
		}
		return true
	})

	// Collect nodes appearing in relation edges.
	nodes := map[string]bool{}
	type edge struct{ from, to, lbl string }
	var edges []edge
	g.ForEachMatch(nil, nil, nil, func(t rdf.Triple) bool {
		if !t.S.IsIRI() || !t.O.IsIRI() {
			return true
		}
		lbl, ok := relationLabel(t.P.Value, ns)
		if !ok {
			return true
		}
		nodes[t.S.Value] = true
		nodes[t.O.Value] = true
		edges = append(edges, edge{from: t.S.Value, to: t.O.Value, lbl: lbl})
		return true
	})

	// Deterministic ordering.
	nodeList := make([]string, 0, len(nodes))
	for n := range nodes {
		nodeList = append(nodeList, n)
	}
	sort.Strings(nodeList)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		if edges[i].to != edges[j].to {
			return edges[i].to < edges[j].to
		}
		return edges[i].lbl < edges[j].lbl
	})

	for _, n := range nodeList {
		shape, style := shapeFor(kind[n])
		lbl := label[n]
		if lbl == "" {
			lbl = shortIRI(n, ns)
		}
		if len(lbl) > opts.MaxLabel {
			lbl = lbl[:opts.MaxLabel-1] + "…"
		}
		color := "black"
		fill := ""
		if opts.Highlight[n] {
			color = "blue"
			fill = ", fontcolor=blue"
		}
		fmt.Fprintf(&b, "  %q [label=%q, shape=%s%s, color=%s%s];\n",
			n, lbl, shape, style, color, fill)
	}
	for _, e := range edges {
		color := "black"
		if opts.Highlight[e.from] && opts.Highlight[e.to] {
			color = "blue"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q, color=%s];\n", e.from, e.to, e.lbl, color)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// classOf maps a class IRI to a shape class.
func classOf(iri string) string {
	if !strings.HasPrefix(iri, model.ProvIONS) {
		return ""
	}
	name := strings.TrimPrefix(iri, model.ProvIONS)
	cls, ok := model.ClassByName(name)
	if !ok {
		return ""
	}
	switch cls.Super {
	case model.SuperEntity:
		return "entity"
	case model.SuperActivity:
		return "activity"
	case model.SuperAgent:
		return "agent"
	case model.SuperExtensible:
		return "extensible"
	}
	return ""
}

func shapeFor(class string) (shape, style string) {
	switch class {
	case "entity":
		return "ellipse", ", style=filled, fillcolor=\"#fffbd6\""
	case "activity":
		return "box", ", style=filled, fillcolor=\"#e8d6ff\""
	case "agent":
		return "house", ", style=filled, fillcolor=\"#ffe0c2\""
	case "extensible":
		return "note", ", style=filled, fillcolor=\"#d9f2d9\""
	default:
		return "ellipse", ""
	}
}

// relationLabel returns the CURIE label for predicates worth drawing.
func relationLabel(iri string, ns *rdf.Namespaces) (string, bool) {
	for _, r := range model.AllRelations() {
		if r.IRI().Value == iri {
			return r.CURIE(), true
		}
	}
	// Extensible-record links are drawn too.
	for _, r := range []model.Relation{model.PropType, model.PropConfig, model.PropMetric} {
		if r.IRI().Value == iri {
			return r.CURIE(), true
		}
	}
	return "", false
}

func shortIRI(iri string, ns *rdf.Namespaces) string {
	if c, ok := ns.Shrink(iri); ok {
		return c
	}
	if i := strings.LastIndexAny(iri, "/#"); i >= 0 && i < len(iri)-1 {
		return iri[i+1:]
	}
	return iri
}

// LineageHighlight computes the highlight set for a backward lineage: the
// product node plus everything reachable over prov:wasDerivedFrom and the
// programs those entities are attributed to — the blue path of Figure 9.
func LineageHighlight(g *rdf.Graph, product rdf.Term) map[string]bool {
	out := map[string]bool{product.Value: true}
	frontier := []rdf.Term{product}
	derived := model.WasDerivedFrom.IRI()
	attr := model.WasAttributedTo.IRI()
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		curT := cur
		g.ForEachMatch(&curT, &derived, nil, func(t rdf.Triple) bool {
			if !out[t.O.Value] {
				out[t.O.Value] = true
				frontier = append(frontier, t.O)
			}
			return true
		})
		g.ForEachMatch(&curT, &attr, nil, func(t rdf.Triple) bool {
			out[t.O.Value] = true
			return true
		})
	}
	return out
}
