// Package provlake implements a process-oriented provenance baseline
// modeled on IBM ProvLake, the system the paper compares against (§6.4).
//
// Where PROV-IO is I/O-centric (records data objects, I/O APIs, and their
// relations), ProvLake is workflow-step-centric: the client instruments the
// workflow's execution steps, and each step emits a document carrying the
// full task context — workflow identity, the prospective specification of
// the step, and the complete input/output attribute payloads. That
// per-record context is exactly why Figure 8 shows ProvLake storing more
// bytes and costing slightly more per tracked point than PROV-IO for the
// same instrumentation sites.
//
// Records are persisted as JSON Lines, approximating ProvLake's
// document-oriented backend.
package provlake

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/hpc-io/prov-io/internal/simclock"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// CostModel holds the virtual-time constants for the baseline tracker. The
// defaults sit above PROV-IO's per-record cost: ProvLake's client ships each
// retrospective document to the lineage service (an RPC per record), and the
// document grows with the embedded workflow context.
type CostModel struct {
	PerRecord time.Duration
	PerByte   time.Duration
}

// DefaultCost returns the calibrated baseline cost model.
func DefaultCost() CostModel {
	return CostModel{
		PerRecord: 8 * time.Millisecond,
		PerByte:   800 * time.Nanosecond,
	}
}

// Record is one ProvLake document: retrospective provenance for a task
// execution, embedding the prospective workflow context.
type Record struct {
	Workflow    string            `json:"workflow"`
	WorkflowCtx map[string]string `json:"workflow_context"`
	Task        string            `json:"task"`
	TaskSeq     int               `json:"task_seq"`
	Kind        string            `json:"kind"` // "task_begin", "task_end", "point"
	StartedNs   int64             `json:"started_ns"`
	EndedNs     int64             `json:"ended_ns,omitempty"`
	In          map[string]any    `json:"in,omitempty"`
	Out         map[string]any    `json:"out,omitempty"`
}

// Workflow is a ProvLake client session for one workflow run.
type Workflow struct {
	name string
	view *vfs.View
	path string

	mu      sync.Mutex
	buf     bytes.Buffer
	ctx     map[string]string
	taskSeq int

	clock *simclock.Clock
	cost  CostModel

	nRecords int64
	nBytes   int64
}

// NewWorkflow starts a ProvLake session persisting to path on view. clock
// may be nil (no cost accounting).
func NewWorkflow(view *vfs.View, path, name string, clock *simclock.Clock, cost CostModel) *Workflow {
	return &Workflow{
		name:  name,
		view:  view,
		path:  path,
		ctx:   map[string]string{},
		clock: clock,
		cost:  cost,
	}
}

// SetContext adds prospective workflow context (configuration fields in the
// Top Reco comparison). ProvLake re-embeds this context in every record.
func (w *Workflow) SetContext(key, value string) {
	w.mu.Lock()
	w.ctx[key] = value
	w.mu.Unlock()
}

// ContextSize returns the number of context fields.
func (w *Workflow) ContextSize() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.ctx)
}

// Task is one instrumented workflow step.
type Task struct {
	wf      *Workflow
	name    string
	seq     int
	started time.Duration
	in      map[string]any
}

// StartTask begins a step, capturing its inputs.
func (w *Workflow) StartTask(name string, in map[string]any) *Task {
	w.mu.Lock()
	w.taskSeq++
	seq := w.taskSeq
	w.mu.Unlock()
	t := &Task{wf: w, name: name, seq: seq, started: w.now(), in: in}
	w.emit(Record{
		Task: name, TaskSeq: seq, Kind: "task_begin",
		StartedNs: t.started.Nanoseconds(), In: in,
	})
	return t
}

// End finishes the step, capturing its outputs.
func (t *Task) End(out map[string]any) {
	t.wf.emit(Record{
		Task: t.name, TaskSeq: t.seq, Kind: "task_end",
		StartedNs: t.started.Nanoseconds(),
		EndedNs:   t.wf.now().Nanoseconds(),
		In:        t.in, Out: out,
	})
}

// Point records a single retrospective data point inside a task (e.g. the
// training accuracy at the end of an epoch).
func (t *Task) Point(out map[string]any) {
	t.wf.emit(Record{
		Task: t.name, TaskSeq: t.seq, Kind: "point",
		StartedNs: t.wf.now().Nanoseconds(), Out: out,
	})
}

func (w *Workflow) now() time.Duration {
	if w.clock == nil {
		return 0
	}
	return w.clock.Now()
}

// emit serializes one record, embedding the full workflow context, and
// charges the modeled cost.
func (w *Workflow) emit(r Record) {
	w.mu.Lock()
	r.Workflow = w.name
	r.WorkflowCtx = make(map[string]string, len(w.ctx))
	for k, v := range w.ctx {
		r.WorkflowCtx[k] = v
	}
	data, err := json.Marshal(sortedRecord(r))
	if err != nil {
		// Records are built from marshalable primitives; a failure is a
		// programming error worth surfacing loudly in experiments.
		panic(fmt.Sprintf("provlake: marshal: %v", err))
	}
	w.buf.Write(data)
	w.buf.WriteByte('\n')
	w.nRecords++
	w.nBytes += int64(len(data)) + 1
	w.mu.Unlock()

	if w.clock != nil {
		w.clock.Advance(w.cost.PerRecord + time.Duration(len(data))*w.cost.PerByte)
	}
}

// sortedRecord normalizes map ordering for deterministic output sizes.
// encoding/json already sorts map keys, so this is the identity; kept as a
// named seam for future canonicalization.
func sortedRecord(r Record) Record { return r }

// Stats returns the record and byte counts so far.
func (w *Workflow) Stats() (records, bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nRecords, w.nBytes
}

// Close flushes the JSON-lines document to storage.
func (w *Workflow) Close() error {
	w.mu.Lock()
	data := append([]byte(nil), w.buf.Bytes()...)
	w.mu.Unlock()
	return w.view.WriteFile(w.path, data)
}

// StorageBytes returns the persisted size.
func (w *Workflow) StorageBytes() (int64, error) {
	info, err := w.view.Stat(w.path)
	if err != nil {
		return 0, err
	}
	return info.Size, nil
}

// Load parses a persisted JSON-lines provenance file back into records,
// for query-side tests.
func Load(view *vfs.View, path string) ([]Record, error) {
	data, err := view.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Record
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var r Record
		if err := dec.Decode(&r); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// QueryAccuracies extracts (version, accuracy) pairs from point records —
// the baseline's answer to the Top Reco provenance need, used to verify the
// two systems return equivalent information.
func QueryAccuracies(recs []Record) map[int]float64 {
	out := map[int]float64{}
	for _, r := range recs {
		if r.Kind != "point" || r.Out == nil {
			continue
		}
		v, vok := toInt(r.Out["epoch"])
		a, aok := toFloat(r.Out["accuracy"])
		if vok && aok {
			out[v] = a
		}
	}
	return out
}

func toInt(v any) (int, bool) {
	switch x := v.(type) {
	case int:
		return x, true
	case float64:
		return int(x), true
	default:
		return 0, false
	}
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	default:
		return 0, false
	}
}

// SortRecords orders records by task sequence then kind, for deterministic
// assertions.
func SortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].TaskSeq != recs[j].TaskSeq {
			return recs[i].TaskSeq < recs[j].TaskSeq
		}
		return recs[i].Kind < recs[j].Kind
	})
}
