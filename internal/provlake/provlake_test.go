package provlake

import (
	"fmt"
	"testing"

	"github.com/hpc-io/prov-io/internal/simclock"
	"github.com/hpc-io/prov-io/internal/vfs"
)

func newWF(t *testing.T, clock *simclock.Clock) (*Workflow, *vfs.View) {
	t.Helper()
	view := vfs.NewStore().NewView()
	wf := NewWorkflow(view, "/prov.jsonl", "topreco", clock, DefaultCost())
	return wf, view
}

func TestTaskLifecycleRoundTrip(t *testing.T) {
	wf, view := newWF(t, nil)
	wf.SetContext("learning_rate", "0.01")
	wf.SetContext("batch_size", "64")

	task := wf.StartTask("training", map[string]any{"epochs": 3})
	for e := 0; e < 3; e++ {
		task.Point(map[string]any{"epoch": e, "accuracy": 0.8 + float64(e)*0.05})
	}
	task.End(map[string]any{"final_accuracy": 0.9})
	if err := wf.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := Load(view, "/prov.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 { // begin + 3 points + end
		t.Fatalf("records = %d, want 5", len(recs))
	}
	SortRecords(recs)
	for _, r := range recs {
		if r.Workflow != "topreco" {
			t.Errorf("workflow = %q", r.Workflow)
		}
		if len(r.WorkflowCtx) != 2 {
			t.Errorf("record lacks embedded context: %v", r.WorkflowCtx)
		}
	}
	accs := QueryAccuracies(recs)
	if len(accs) != 3 || accs[2] != 0.9 {
		t.Errorf("accuracies = %v", accs)
	}
}

func TestEveryRecordEmbedsFullContext(t *testing.T) {
	// The process-oriented design re-serializes workflow context per
	// record — the storage disadvantage Figure 8(d-f) measures.
	wf, _ := newWF(t, nil)
	for i := 0; i < 40; i++ {
		wf.SetContext(fmt.Sprintf("cfg%02d", i), "value")
	}
	task := wf.StartTask("t", nil)
	_, before := wf.Stats()
	task.Point(map[string]any{"epoch": 0, "accuracy": 0.5})
	_, after := wf.Stats()
	perRecord := after - before
	if perRecord < 40*10 { // at least ~10 bytes per embedded field
		t.Errorf("record size %d too small to embed 40 context fields", perRecord)
	}
}

func TestStorageGrowsWithContextSize(t *testing.T) {
	sizes := map[int]int64{}
	for _, n := range []int{20, 40, 80} {
		wf, _ := newWF(t, nil)
		for i := 0; i < n; i++ {
			wf.SetContext(fmt.Sprintf("cfg%02d", i), "v")
		}
		task := wf.StartTask("t", nil)
		for e := 0; e < 10; e++ {
			task.Point(map[string]any{"epoch": e, "accuracy": 0.5})
		}
		task.End(nil)
		wf.Close()
		_, b := wf.Stats()
		sizes[n] = b
	}
	if !(sizes[20] < sizes[40] && sizes[40] < sizes[80]) {
		t.Errorf("storage not increasing with configs: %v", sizes)
	}
}

func TestCostCharged(t *testing.T) {
	clock := simclock.NewClock()
	wf, _ := newWF(t, clock)
	wf.SetContext("k", "v")
	task := wf.StartTask("t", nil)
	if clock.Now() == 0 {
		t.Fatal("StartTask charged nothing")
	}
	before := clock.Now()
	task.Point(map[string]any{"epoch": 1, "accuracy": 0.7})
	if clock.Now() <= before {
		t.Error("Point charged nothing")
	}
}

func TestCostScalesWithRecordSize(t *testing.T) {
	small := recordCost(t, 1)
	big := recordCost(t, 80)
	if big <= small {
		t.Errorf("cost should grow with context size: %v vs %v", small, big)
	}
}

func recordCost(t *testing.T, nCtx int) int64 {
	t.Helper()
	clock := simclock.NewClock()
	wf, _ := newWF(t, clock)
	for i := 0; i < nCtx; i++ {
		wf.SetContext(fmt.Sprintf("cfg%03d", i), "value")
	}
	task := wf.StartTask("t", nil)
	before := clock.Now()
	task.Point(map[string]any{"epoch": 1, "accuracy": 0.7})
	return int64(clock.Now() - before)
}

func TestStorageBytesMatchesFile(t *testing.T) {
	wf, _ := newWF(t, nil)
	task := wf.StartTask("t", nil)
	task.End(nil)
	if err := wf.Close(); err != nil {
		t.Fatal(err)
	}
	onDisk, err := wf.StorageBytes()
	if err != nil {
		t.Fatal(err)
	}
	_, tracked := wf.Stats()
	if onDisk != tracked {
		t.Errorf("StorageBytes = %d, Stats bytes = %d", onDisk, tracked)
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	view := vfs.NewStore().NewView()
	view.WriteFile("/bad.jsonl", []byte("{not json}\n"))
	if _, err := Load(view, "/bad.jsonl"); err == nil {
		t.Error("corrupt file loaded without error")
	}
	if _, err := Load(view, "/missing.jsonl"); err == nil {
		t.Error("missing file loaded without error")
	}
}

func TestTaskSequencing(t *testing.T) {
	wf, view := newWF(t, nil)
	t1 := wf.StartTask("a", nil)
	t2 := wf.StartTask("b", nil)
	t1.End(nil)
	t2.End(nil)
	wf.Close()
	recs, _ := Load(view, "/prov.jsonl")
	seqs := map[string]int{}
	for _, r := range recs {
		if r.Kind == "task_begin" {
			seqs[r.Task] = r.TaskSeq
		}
	}
	if seqs["a"] == seqs["b"] || seqs["a"] == 0 || seqs["b"] == 0 {
		t.Errorf("task sequences = %v", seqs)
	}
}
