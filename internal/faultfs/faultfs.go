// Package faultfs is the deterministic fault-injection layer of the
// robustness test harness (DESIGN.md "Integrity & fault injection"): a
// storage-backend decorator that injects I/O errors, torn (prefix-truncated)
// writes, bit-flips, and hard crash points into an otherwise healthy
// backend.
//
// It grew out of the private faultBackend in internal/core's fault tests and
// is shared by those tests, the crash-consistency sweep (core.RunCrashSweep),
// the provio-bench integrity ablation, and fuzz targets. Everything is
// deterministic: behavior depends only on the configured switches, the seed,
// and the sequence of operations — never on wall-clock time or goroutine
// scheduling — so any failing run replays exactly from its parameters.
//
// The package deliberately does not import internal/core: it declares the
// same structural Backend interface, so core's VFSBackend and OSBackend
// satisfy it without an adapter, and an *FS satisfies core.Backend.
package faultfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Backend is the storage interface faultfs decorates — structurally
// identical to core.StoreBackend (and backend.Storage), redeclared here so
// faultfs stays importable from core itself.
type Backend interface {
	MkdirAll(dir string) error
	WriteFile(path string, data []byte) error
	ReadFile(path string) ([]byte, error)
	// List returns the file names (not paths) inside dir, sorted.
	List(dir string) ([]string, error)
	Remove(path string) error
	// Stat returns the file's size in bytes.
	Stat(path string) (int64, error)
	// Caps advertises the backend's capability flags.
	Caps() uint32
}

// ErrInjected is the error returned by operations failed through the
// FailWrites/FailReads/FailList/FailWritesAfter switches.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every operation at and after the configured
// crash point: the simulated process is dead, nothing reaches storage.
var ErrCrashed = errors.New("faultfs: crashed")

// OpKind labels one intercepted backend operation in the trace.
type OpKind uint8

// The operation kinds recorded in the trace. Only mutating operations
// (mkdir, write, remove) count toward the crash point — reads cannot damage
// a store, so crash enumeration over them would only slow the sweep.
const (
	OpMkdir OpKind = iota
	OpWrite
	OpRead
	OpList
	OpRemove
	OpStat
)

func (k OpKind) String() string {
	switch k {
	case OpMkdir:
		return "mkdir"
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpList:
		return "list"
	case OpRemove:
		return "remove"
	case OpStat:
		return "stat"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one traced backend operation.
type Op struct {
	Kind OpKind
	Path string
	Size int // len(data) for writes, 0 otherwise
}

// FS decorates an inner Backend with deterministic fault injection.
// The zero switches make it a transparent pass-through that still traces,
// so a probe run discovers a workload's operation sequence.
type FS struct {
	inner Backend

	mu    sync.Mutex
	rng   *rand.Rand
	trace []Op

	failWrites bool
	failReads  bool
	failList   bool
	failAfter  int // fail writes after this many write attempts; <0 disabled

	flipOneBit bool // flip one seeded bit in the next write's payload

	crashAt   int // mutating-op index at which the process dies; <0 disabled
	crashTorn int // bytes of a crashing write that still reach the inner backend
	crashed   bool

	mutations int // mutating operations attempted so far
	writes    int // WriteFile operations attempted so far
}

// New wraps inner. The seed drives every randomized decision (bit positions
// for flips); two FS with equal seeds and equal operation sequences behave
// identically.
func New(inner Backend, seed int64) *FS {
	return &FS{inner: inner, rng: rand.New(rand.NewSource(seed)), failAfter: -1, crashAt: -1}
}

// FailWrites toggles unconditional write failure.
func (f *FS) FailWrites(on bool) *FS { f.mu.Lock(); f.failWrites = on; f.mu.Unlock(); return f }

// FailReads toggles unconditional read failure.
func (f *FS) FailReads(on bool) *FS { f.mu.Lock(); f.failReads = on; f.mu.Unlock(); return f }

// FailList toggles unconditional directory-listing failure.
func (f *FS) FailList(on bool) *FS { f.mu.Lock(); f.failList = on; f.mu.Unlock(); return f }

// FailWritesAfter arranges for WriteFile to fail with ErrInjected once n
// writes have been attempted (the first n writes pass, later ones fail —
// the partial-flush scenario). A negative n disables the switch.
func (f *FS) FailWritesAfter(n int) *FS { f.mu.Lock(); f.failAfter = n; f.mu.Unlock(); return f }

// FlipOneBit arms a single-bit corruption: the next write's payload reaches
// the inner backend with one seeded bit flipped, then the switch disarms.
// The write itself reports success — the corruption is silent, as a flaky
// device's would be.
func (f *FS) FlipOneBit() *FS { f.mu.Lock(); f.flipOneBit = true; f.mu.Unlock(); return f }

// CrashAt arranges a hard crash at mutating operation index op (0-based,
// counted across mkdir/write/remove). The crashing operation and everything
// after it fail with ErrCrashed and do not reach the inner backend — except
// that if the crashing operation is a write, its first torn bytes are
// persisted, modeling a torn page write. torn <= 0 persists nothing.
// A negative op disables the crash point.
func (f *FS) CrashAt(op, torn int) *FS {
	f.mu.Lock()
	f.crashAt = op
	f.crashTorn = torn
	f.mu.Unlock()
	return f
}

// Heal clears every fault switch (the crash flag included), so recovery code
// can run against the surviving inner state. The trace and operation
// counters are kept.
func (f *FS) Heal() *FS {
	f.mu.Lock()
	f.failWrites, f.failReads, f.failList = false, false, false
	f.failAfter, f.crashAt = -1, -1
	f.flipOneBit = false
	f.crashed = false
	f.mu.Unlock()
	return f
}

// Crashed reports whether the crash point has been reached.
func (f *FS) Crashed() bool { f.mu.Lock(); defer f.mu.Unlock(); return f.crashed }

// Ops returns the number of mutating operations attempted so far.
func (f *FS) Ops() int { f.mu.Lock(); defer f.mu.Unlock(); return f.mutations }

// Trace returns a copy of the full operation trace (reads included).
func (f *FS) Trace() []Op {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Op(nil), f.trace...)
}

// record appends to the trace. Caller holds f.mu.
func (f *FS) recordLocked(k OpKind, path string, size int) {
	f.trace = append(f.trace, Op{Kind: k, Path: path, Size: size})
}

// mutating gates one mutating operation: it advances the crash/quota
// counters and reports what should happen. The returned torn count is >= 0
// only when this exact operation crashes.
func (f *FS) mutating(k OpKind, path string, size int) (fail error, torn int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recordLocked(k, path, size)
	if f.crashed {
		return ErrCrashed, -1
	}
	idx := f.mutations
	f.mutations++
	wIdx := -1
	if k == OpWrite {
		wIdx = f.writes
		f.writes++
	}
	if f.crashAt >= 0 && idx >= f.crashAt {
		f.crashed = true
		return ErrCrashed, f.crashTorn
	}
	if k == OpWrite && (f.failWrites || (f.failAfter >= 0 && wIdx >= f.failAfter)) {
		return fmt.Errorf("write %s: %w", path, ErrInjected), -1
	}
	return nil, -1
}

// MkdirAll implements Backend.
func (f *FS) MkdirAll(dir string) error {
	if err, _ := f.mutating(OpMkdir, dir, 0); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

// WriteFile implements Backend.
func (f *FS) WriteFile(path string, data []byte) error {
	err, torn := f.mutating(OpWrite, path, len(data))
	if err != nil {
		if errors.Is(err, ErrCrashed) && torn > 0 {
			// The torn prefix of the crashing write reaches storage; the
			// caller still observes the crash.
			n := torn
			if n > len(data) {
				n = len(data)
			}
			_ = f.inner.WriteFile(path, data[:n])
		}
		return err
	}
	f.mu.Lock()
	flip := f.flipOneBit
	var bit int
	if flip && len(data) > 0 {
		f.flipOneBit = false
		bit = f.rng.Intn(len(data) * 8)
	} else {
		flip = false
	}
	f.mu.Unlock()
	if flip {
		mut := append([]byte(nil), data...)
		mut[bit/8] ^= 1 << (bit % 8)
		data = mut
	}
	return f.inner.WriteFile(path, data)
}

// ReadFile implements Backend.
func (f *FS) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	f.recordLocked(OpRead, path, 0)
	crashed, fail := f.crashed, f.failReads
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	if fail {
		return nil, ErrInjected
	}
	return f.inner.ReadFile(path)
}

// ReadFileRange reads [off, off+n) of a file, clamped to its size — the
// partial-read capability the store's lazy/pruned pack reads probe for. The
// injected failure modes are ReadFile's: a range read is a read. When the
// inner backend lacks the method the range is sliced out of a whole-file
// read, so decorating a range-less backend does not advertise a capability
// it cannot honor cheaply but stays correct.
func (f *FS) ReadFileRange(path string, off, n int64) ([]byte, error) {
	f.mu.Lock()
	f.recordLocked(OpRead, path, 0)
	crashed, fail := f.crashed, f.failReads
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	if fail {
		return nil, ErrInjected
	}
	if rr, ok := f.inner.(interface {
		ReadFileRange(path string, off, n int64) ([]byte, error)
	}); ok {
		return rr.ReadFileRange(path, off, n)
	}
	data, err := f.inner.ReadFile(path)
	if err != nil {
		return nil, err
	}
	size := int64(len(data))
	if off < 0 {
		off = 0
	}
	if off > size {
		off = size
	}
	if n < 0 || off+n > size {
		n = size - off
	}
	return data[off : off+n], nil
}

// List implements Backend.
func (f *FS) List(dir string) ([]string, error) {
	f.mu.Lock()
	f.recordLocked(OpList, dir, 0)
	crashed, fail := f.crashed, f.failList
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	if fail {
		return nil, ErrInjected
	}
	return f.inner.List(dir)
}

// Remove implements Backend.
func (f *FS) Remove(path string) error {
	if err, _ := f.mutating(OpRemove, path, 0); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

// Stat implements Backend. Stats fail alongside reads: both observe state
// without mutating it.
func (f *FS) Stat(path string) (int64, error) {
	f.mu.Lock()
	f.recordLocked(OpStat, path, 0)
	crashed, fail := f.crashed, f.failReads
	f.mu.Unlock()
	if crashed {
		return 0, ErrCrashed
	}
	if fail {
		return 0, ErrInjected
	}
	return f.inner.Stat(path)
}

// Caps implements Backend, forwarding the inner backend's capabilities:
// fault injection changes behavior, not what the substrate guarantees when
// healthy.
func (f *FS) Caps() uint32 { return f.inner.Caps() }

// Inner returns the decorated backend, letting store code unwrap decorator
// chains to reach capability interfaces (core's misplacement probe).
func (f *FS) Inner() any { return f.inner }
