package faultfs

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// memBackend is a minimal flat-namespace backend for exercising the
// decorator without importing internal/core or internal/vfs.
type memBackend struct{ files map[string][]byte }

func newMem() *memBackend { return &memBackend{files: map[string][]byte{}} }

func (m *memBackend) MkdirAll(string) error { return nil }
func (m *memBackend) WriteFile(path string, data []byte) error {
	m.files[path] = append([]byte(nil), data...)
	return nil
}
func (m *memBackend) ReadFile(path string) ([]byte, error) {
	d, ok := m.files[path]
	if !ok {
		return nil, fmt.Errorf("%s: not found", path)
	}
	return d, nil
}
func (m *memBackend) List(dir string) ([]string, error) {
	var names []string
	for p := range m.files {
		if strings.HasPrefix(p, dir+"/") {
			names = append(names, strings.TrimPrefix(p, dir+"/"))
		}
	}
	sort.Strings(names)
	return names, nil
}
func (m *memBackend) Remove(path string) error {
	if _, ok := m.files[path]; !ok {
		return fmt.Errorf("%s: not found", path)
	}
	delete(m.files, path)
	return nil
}
func (m *memBackend) Stat(path string) (int64, error) {
	d, ok := m.files[path]
	if !ok {
		return 0, fmt.Errorf("%s: not found", path)
	}
	return int64(len(d)), nil
}
func (m *memBackend) Caps() uint32 { return 7 }

func TestStatCapsInner(t *testing.T) {
	mem := newMem()
	fs := New(mem, 1)
	if err := fs.WriteFile("/d/a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if n, err := fs.Stat("/d/a"); err != nil || n != 5 {
		t.Fatalf("Stat = %d, %v", n, err)
	}
	if got := fs.Trace(); got[len(got)-1].Kind != OpStat {
		t.Fatalf("Stat not traced: %+v", got[len(got)-1])
	}
	if fs.Caps() != 7 {
		t.Fatalf("Caps = %d, want inner's 7", fs.Caps())
	}
	if fs.Inner() != any(mem) {
		t.Fatal("Inner did not return the decorated backend")
	}
	fs.FailReads(true)
	if _, err := fs.Stat("/d/a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Stat under FailReads = %v", err)
	}
	fs.Heal()
	fs.CrashAt(0, 0)
	fs.Remove("/d/a") // trip the crash point
	if _, err := fs.Stat("/d/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Stat = %v", err)
	}
}

func TestPassThroughAndTrace(t *testing.T) {
	mem := newMem()
	fs := New(mem, 1)
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d/a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got, err := fs.ReadFile("/d/a"); err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if names, err := fs.List("/d"); err != nil || len(names) != 1 {
		t.Fatalf("List = %v, %v", names, err)
	}
	if err := fs.Remove("/d/a"); err != nil {
		t.Fatal(err)
	}
	if fs.Ops() != 3 { // mkdir + write + remove; reads and lists do not count
		t.Fatalf("Ops = %d, want 3", fs.Ops())
	}
	trace := fs.Trace()
	if len(trace) != 5 {
		t.Fatalf("trace has %d entries, want 5", len(trace))
	}
	want := []Op{
		{OpMkdir, "/d", 0},
		{OpWrite, "/d/a", 5},
		{OpRead, "/d/a", 0},
		{OpList, "/d", 0},
		{OpRemove, "/d/a", 0},
	}
	for i, op := range want {
		if trace[i] != op {
			t.Errorf("trace[%d] = %+v (%s), want %+v", i, trace[i], trace[i].Kind, op)
		}
	}
}

func TestInjectedFailures(t *testing.T) {
	mem := newMem()
	fs := New(mem, 1)
	fs.FailWrites(true).FailReads(true).FailList(true)
	if err := fs.WriteFile("/a", nil); !errors.Is(err, ErrInjected) {
		t.Errorf("write err = %v", err)
	}
	if _, err := fs.ReadFile("/a"); !errors.Is(err, ErrInjected) {
		t.Errorf("read err = %v", err)
	}
	if _, err := fs.List("/"); !errors.Is(err, ErrInjected) {
		t.Errorf("list err = %v", err)
	}
	fs.Heal()
	if err := fs.WriteFile("/a", []byte("x")); err != nil {
		t.Fatalf("write after Heal: %v", err)
	}

	fs.FailWritesAfter(1) // one more write passes (the Heal write already counted)
	if err := fs.WriteFile("/b", []byte("y")); !errors.Is(err, ErrInjected) {
		t.Errorf("write beyond quota err = %v", err)
	}
	if _, ok := mem.files["/b"]; ok {
		t.Error("failed write reached the inner backend")
	}
}

func TestCrashPointAndTornWrite(t *testing.T) {
	mem := newMem()
	fs := New(mem, 1)
	fs.CrashAt(2, 3) // mkdir, write OK; second write crashes with 3 torn bytes
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d/a", []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d/b", []byte("bbbbbb")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing write err = %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("Crashed() false after crash point")
	}
	// The torn prefix persisted; everything after the crash is dead.
	if got := mem.files["/d/b"]; string(got) != "bbb" {
		t.Errorf("torn write persisted %q, want %q", got, "bbb")
	}
	if err := fs.Remove("/d/a"); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash remove err = %v", err)
	}
	if _, err := fs.ReadFile("/d/a"); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash read err = %v", err)
	}
	// Heal models the restart: the inner state survives as the crash left it.
	fs.Heal()
	if got, err := fs.ReadFile("/d/a"); err != nil || string(got) != "aaaa" {
		t.Fatalf("ReadFile after Heal = %q, %v", got, err)
	}

	// torn <= 0 persists nothing at the crash point.
	mem2 := newMem()
	fs2 := New(mem2, 1)
	fs2.CrashAt(0, 0)
	if err := fs2.WriteFile("/x", []byte("data")); !errors.Is(err, ErrCrashed) {
		t.Fatal(err)
	}
	if _, ok := mem2.files["/x"]; ok {
		t.Error("all-or-nothing crash persisted bytes")
	}
}

func TestFlipOneBitDeterministic(t *testing.T) {
	payload := bytes.Repeat([]byte{0x00}, 64)
	run := func(seed int64) []byte {
		mem := newMem()
		fs := New(mem, seed)
		fs.FlipOneBit()
		if err := fs.WriteFile("/f", payload); err != nil {
			t.Fatal(err)
		}
		return mem.files["/f"]
	}
	a, b := run(42), run(42)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruptions")
	}
	if bytes.Equal(a, payload) {
		t.Fatal("FlipOneBit did not corrupt the payload")
	}
	diff := 0
	for i := range a {
		if a[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	// The switch disarms after one write.
	mem := newMem()
	fs := New(mem, 42)
	fs.FlipOneBit()
	fs.WriteFile("/f", payload)
	fs.WriteFile("/g", payload)
	if !bytes.Equal(mem.files["/g"], payload) {
		t.Fatal("second write was corrupted; FlipOneBit must disarm")
	}
}
