package provjson

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
)

// sampleGraph builds the Figure 4(b)-style snippet.
func sampleGraph() *rdf.Graph {
	tr := core.NewTracker(core.DefaultConfig(), nil, 0)
	user := tr.RegisterUser("Bob")
	prog := tr.RegisterProgram("vpicio_uni_h5.exe-a1", user)
	thr := tr.RegisterThread(0, prog)
	file := tr.TrackDataObject(model.File, "/f.h5", "/f.h5", rdf.Term{}, prog)
	ds := tr.TrackDataObject(model.Dataset, "/f.h5/Timestep_0/x", "/Timestep_0/x", file, prog)
	tr.TrackIO(model.Create, "H5Dcreate2", ds, thr, 0, time.Microsecond)
	tr.TrackIO(model.Read, "H5Dread", ds, thr, 0, time.Microsecond)
	return tr.Graph()
}

func TestExportSections(t *testing.T) {
	doc := Export(sampleGraph())
	if len(doc.Entity) != 2 {
		t.Errorf("entities = %d, want 2 (file, dataset)", len(doc.Entity))
	}
	if len(doc.Agent) != 3 {
		t.Errorf("agents = %d, want 3", len(doc.Agent))
	}
	if len(doc.Activity) != 2 {
		t.Errorf("activities = %d, want 2", len(doc.Activity))
	}
	if len(doc.WasGeneratedBy) != 1 {
		t.Errorf("wasGeneratedBy = %d, want 1 (create)", len(doc.WasGeneratedBy))
	}
	if len(doc.Used) != 1 {
		t.Errorf("used = %d, want 1 (read)", len(doc.Used))
	}
	if len(doc.WasAttributedTo) != 2 {
		t.Errorf("wasAttributedTo = %d, want 2", len(doc.WasAttributedTo))
	}
	if len(doc.ActedOnBehalfOf) != 2 {
		t.Errorf("actedOnBehalfOf = %d, want 2 (thread->prog, prog->user)", len(doc.ActedOnBehalfOf))
	}
	if len(doc.WasAssociatedWith) != 2 {
		t.Errorf("wasAssociatedWith = %d, want 2", len(doc.WasAssociatedWith))
	}
	if len(doc.WasDerivedFrom) != 1 {
		t.Errorf("wasDerivedFrom = %d, want 1 (dataset in file)", len(doc.WasDerivedFrom))
	}
}

func TestExportNodeAttributes(t *testing.T) {
	doc := Export(sampleGraph())
	var fileAttrs Attrs
	for id, a := range doc.Entity {
		if a["provio:name"] == "/f.h5" {
			fileAttrs = a
			if !strings.HasPrefix(id, "provio:") {
				t.Errorf("entity id %q not qualified", id)
			}
		}
	}
	if fileAttrs == nil {
		t.Fatal("file entity missing")
	}
	if fileAttrs["prov:type"] != "provio:File" {
		t.Errorf("prov:type = %v", fileAttrs["prov:type"])
	}
}

func TestExportValidJSONAndDeterministic(t *testing.T) {
	g := sampleGraph()
	var a, b strings.Builder
	if err := ExportTo(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := ExportTo(&b, g); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("export not deterministic")
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(a.String()), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, section := range []string{"prefix", "entity", "activity", "agent"} {
		if _, ok := parsed[section]; !ok {
			t.Errorf("section %q missing", section)
		}
	}
}

func TestExportEmptyGraph(t *testing.T) {
	doc := Export(rdf.NewGraph())
	if len(doc.Entity)+len(doc.Activity)+len(doc.Agent) != 0 {
		t.Error("empty graph produced nodes")
	}
	var sb strings.Builder
	if err := Write(&sb, doc); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeDirections(t *testing.T) {
	doc := Export(sampleGraph())
	for _, e := range doc.WasGeneratedBy {
		if !strings.Contains(e.Activity, "H5Dcreate2") {
			t.Errorf("generation activity = %q", e.Activity)
		}
		if !strings.Contains(e.Entity, "dataset/") {
			t.Errorf("generated entity = %q", e.Entity)
		}
	}
	for _, e := range doc.Used {
		if !strings.Contains(e.Activity, "H5Dread") {
			t.Errorf("usage activity = %q", e.Activity)
		}
	}
	for _, e := range doc.ActedOnBehalfOf {
		if e.Delegate == e.Responsible {
			t.Error("self-delegation exported")
		}
	}
}
