// Package provjson exports PROV-IO provenance graphs as W3C PROV-JSON
// documents. The paper chooses RDF/PROV-O "to make PROV-IO compatible with
// other W3C-compliant solutions" (§4.2); this package makes that claim
// concrete by emitting the interchange serialization those tools consume
// (https://www.w3.org/Submission/prov-json/).
//
// Mapping: nodes typed with PROV-IO Entity sub-classes populate "entity",
// Activity sub-classes "activity", Agent sub-classes "agent"; the inherited
// W3C relations populate their standard sections (wasDerivedFrom,
// wasAttributedTo, wasAssociatedWith, actedOnBehalfOf); PROV-IO's I/O
// relations are inverted into "used"/"wasGeneratedBy" where the standard
// has an equivalent (a Create/Write activity generates the object; a
// Read/Open activity uses it), preserving interoperability with viewers
// that only know core PROV.
package provjson

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
)

// Document is a W3C PROV-JSON document.
type Document struct {
	Prefix            map[string]string          `json:"prefix,omitempty"`
	Entity            map[string]Attrs           `json:"entity,omitempty"`
	Activity          map[string]Attrs           `json:"activity,omitempty"`
	Agent             map[string]Attrs           `json:"agent,omitempty"`
	WasDerivedFrom    map[string]DerivationEdge  `json:"wasDerivedFrom,omitempty"`
	WasAttributedTo   map[string]AttributionEdge `json:"wasAttributedTo,omitempty"`
	WasAssociatedWith map[string]AssociationEdge `json:"wasAssociatedWith,omitempty"`
	ActedOnBehalfOf   map[string]DelegationEdge  `json:"actedOnBehalfOf,omitempty"`
	Used              map[string]UsageEdge       `json:"used,omitempty"`
	WasGeneratedBy    map[string]GenerationEdge  `json:"wasGeneratedBy,omitempty"`
}

// Attrs is a node's attribute map.
type Attrs map[string]any

// DerivationEdge is one prov:wasDerivedFrom record.
type DerivationEdge struct {
	GeneratedEntity string `json:"prov:generatedEntity"`
	UsedEntity      string `json:"prov:usedEntity"`
}

// AttributionEdge is one prov:wasAttributedTo record.
type AttributionEdge struct {
	Entity string `json:"prov:entity"`
	Agent  string `json:"prov:agent"`
}

// AssociationEdge is one prov:wasAssociatedWith record.
type AssociationEdge struct {
	Activity string `json:"prov:activity"`
	Agent    string `json:"prov:agent"`
}

// DelegationEdge is one prov:actedOnBehalfOf record.
type DelegationEdge struct {
	Delegate    string `json:"prov:delegate"`
	Responsible string `json:"prov:responsible"`
}

// UsageEdge is one prov:used record.
type UsageEdge struct {
	Activity string `json:"prov:activity"`
	Entity   string `json:"prov:entity"`
}

// GenerationEdge is one prov:wasGeneratedBy record.
type GenerationEdge struct {
	Entity   string `json:"prov:entity"`
	Activity string `json:"prov:activity"`
}

// Export builds the PROV-JSON document for a provenance graph.
func Export(g *rdf.Graph) *Document {
	doc := &Document{
		Prefix: map[string]string{
			"prov":   model.ProvNS,
			"provio": model.ProvIONS,
		},
		Entity:            map[string]Attrs{},
		Activity:          map[string]Attrs{},
		Agent:             map[string]Attrs{},
		WasDerivedFrom:    map[string]DerivationEdge{},
		WasAttributedTo:   map[string]AttributionEdge{},
		WasAssociatedWith: map[string]AssociationEdge{},
		ActedOnBehalfOf:   map[string]DelegationEdge{},
		Used:              map[string]UsageEdge{},
		WasGeneratedBy:    map[string]GenerationEdge{},
	}

	// Classify nodes.
	superOf := map[string]model.Super{}
	classOf := map[string]string{}
	typeP := rdf.IRI(rdf.RDFType)
	g.ForEachMatch(nil, &typeP, nil, func(t rdf.Triple) bool {
		if !t.S.IsIRI() || !strings.HasPrefix(t.O.Value, model.ProvIONS) {
			return true
		}
		name := strings.TrimPrefix(t.O.Value, model.ProvIONS)
		cls, ok := model.ClassByName(name)
		if !ok {
			return true
		}
		superOf[t.S.Value] = cls.Super
		classOf[t.S.Value] = name
		return true
	})

	qid := func(iri string) string {
		if strings.HasPrefix(iri, model.ProvIONS) {
			return "provio:" + strings.TrimPrefix(iri, model.ProvIONS)
		}
		if strings.HasPrefix(iri, model.ProvNS) {
			return "prov:" + strings.TrimPrefix(iri, model.ProvNS)
		}
		return iri
	}

	section := func(iri string) map[string]Attrs {
		switch superOf[iri] {
		case model.SuperEntity, model.SuperExtensible:
			return doc.Entity
		case model.SuperActivity:
			return doc.Activity
		case model.SuperAgent:
			return doc.Agent
		}
		return nil
	}

	// Node attribute maps: prov:type plus literal properties.
	for iri, cls := range classOf {
		sec := section(iri)
		if sec == nil {
			continue
		}
		attrs := Attrs{"prov:type": "provio:" + cls}
		node := rdf.IRI(iri)
		g.ForEachMatch(&node, nil, nil, func(t rdf.Triple) bool {
			if !t.O.IsLiteral() || !strings.HasPrefix(t.P.Value, model.ProvIONS) {
				return true
			}
			attrs[qid(t.P.Value)] = t.O.Value
			return true
		})
		sec[qid(iri)] = attrs
	}

	// Relation sections. Edge IDs are deterministic counters per section.
	counters := map[string]int{}
	edgeID := func(kind string) string {
		counters[kind]++
		return fmt.Sprintf("_:%s%d", kind, counters[kind])
	}

	collect := func(pred rdf.Term, fn func(s, o string)) {
		p := pred
		var pairs [][2]string
		g.ForEachMatch(nil, &p, nil, func(t rdf.Triple) bool {
			if t.S.IsIRI() && t.O.IsIRI() {
				pairs = append(pairs, [2]string{t.S.Value, t.O.Value})
			}
			return true
		})
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i][0] != pairs[j][0] {
				return pairs[i][0] < pairs[j][0]
			}
			return pairs[i][1] < pairs[j][1]
		})
		for _, pr := range pairs {
			fn(pr[0], pr[1])
		}
	}

	collect(model.WasDerivedFrom.IRI(), func(s, o string) {
		doc.WasDerivedFrom[edgeID("wdf")] = DerivationEdge{
			GeneratedEntity: qid(s), UsedEntity: qid(o),
		}
	})
	collect(model.WasAttributedTo.IRI(), func(s, o string) {
		doc.WasAttributedTo[edgeID("wat")] = AttributionEdge{Entity: qid(s), Agent: qid(o)}
	})
	collect(model.AssociatedWith.IRI(), func(s, o string) {
		doc.WasAssociatedWith[edgeID("waw")] = AssociationEdge{Activity: qid(s), Agent: qid(o)}
	})
	collect(model.ActedOnBehalfOf.IRI(), func(s, o string) {
		doc.ActedOnBehalfOf[edgeID("aob")] = DelegationEdge{Delegate: qid(s), Responsible: qid(o)}
	})

	// PROV-IO I/O relations → core PROV usage/generation. The subject is
	// the data object, the object is the activity.
	generate := []model.Relation{model.WasCreatedBy, model.WasWrittenBy, model.WasFlushedBy, model.WasModifiedBy}
	use := []model.Relation{model.WasOpenedBy, model.WasReadBy}
	for _, rel := range generate {
		collect(rel.IRI(), func(obj, act string) {
			doc.WasGeneratedBy[edgeID("wgb")] = GenerationEdge{Entity: qid(obj), Activity: qid(act)}
		})
	}
	for _, rel := range use {
		collect(rel.IRI(), func(obj, act string) {
			doc.Used[edgeID("use")] = UsageEdge{Activity: qid(act), Entity: qid(obj)}
		})
	}
	return doc
}

// Write serializes the document as indented JSON.
func Write(w io.Writer, doc *Document) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ExportTo exports g directly to w.
func ExportTo(w io.Writer, g *rdf.Graph) error {
	return Write(w, Export(g))
}
