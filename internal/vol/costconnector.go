package vol

import (
	"time"

	"github.com/hpc-io/prov-io/internal/hdf5"
	"github.com/hpc-io/prov-io/internal/simclock"
)

// CostConnector charges modeled I/O time to a rank's virtual clock for every
// operation that passes through it. Experiments stack it *below* the
// ProvConnector and above the native connector:
//
//	ProvConnector → CostConnector → Native
//
// so the tracked elapsed durations reflect the modeled I/O cost, and —
// crucially — baseline (untracked) runs use the identical CostConnector
// stack, making tracked/baseline completion-time ratios meaningful.
//
// ByteScale lets a scaled-down workload charge for its full logical volume:
// writing 1/1024 of the paper's bytes with ByteScale=1024 charges the clock
// as if the full volume moved, without materializing terabytes.
type CostConnector struct {
	Passthrough
	clock *simclock.Clock
	cost  simclock.CostModel
	// ByteScale multiplies actual byte counts to logical byte counts
	// (>= 1; 0 is treated as 1).
	ByteScale float64
	// SharedRanks is the number of ranks concurrently using the shared
	// file, enabling the shared-file contention penalty.
	SharedRanks int
}

// NewCostConnector stacks a cost-charging connector on next.
func NewCostConnector(next Connector, clock *simclock.Clock, cost simclock.CostModel, byteScale float64, sharedRanks int) *CostConnector {
	if byteScale < 1 {
		byteScale = 1
	}
	return &CostConnector{
		Passthrough: Passthrough{Next: next},
		clock:       clock, cost: cost,
		ByteScale: byteScale, SharedRanks: sharedRanks,
	}
}

var _ Connector = (*CostConnector)(nil)

func (c *CostConnector) meta() {
	c.clock.Advance(c.cost.MetadataLatency)
}

func (c *CostConnector) data(actual int64, write bool) {
	logical := int64(float64(actual) * c.ByteScale)
	var d time.Duration
	if write {
		d = c.cost.WriteCost(logical)
	} else {
		d = c.cost.ReadCost(logical)
	}
	c.clock.Advance(c.cost.SharedFileCost(d, c.SharedRanks))
}

// FileCreate implements Connector.
func (c *CostConnector) FileCreate(path string) (*hdf5.File, error) {
	c.meta()
	return c.Next.FileCreate(path)
}

// FileOpen implements Connector.
func (c *CostConnector) FileOpen(path string, readonly bool) (*hdf5.File, error) {
	c.meta()
	return c.Next.FileOpen(path, readonly)
}

// FileFlush implements Connector.
func (c *CostConnector) FileFlush(f *hdf5.File) error {
	c.meta()
	return c.Next.FileFlush(f)
}

// GroupCreate implements Connector.
func (c *CostConnector) GroupCreate(parent *hdf5.Group, name string) (*hdf5.Group, error) {
	c.meta()
	return c.Next.GroupCreate(parent, name)
}

// GroupOpen implements Connector.
func (c *CostConnector) GroupOpen(parent *hdf5.Group, path string) (*hdf5.Group, error) {
	c.meta()
	return c.Next.GroupOpen(parent, path)
}

// DatasetCreate implements Connector.
func (c *CostConnector) DatasetCreate(parent *hdf5.Group, name string, dt hdf5.Datatype, dims []int) (*hdf5.Dataset, error) {
	c.meta()
	return c.Next.DatasetCreate(parent, name, dt, dims)
}

// DatasetOpen implements Connector.
func (c *CostConnector) DatasetOpen(parent *hdf5.Group, path string) (*hdf5.Dataset, error) {
	c.meta()
	return c.Next.DatasetOpen(parent, path)
}

// DatasetWrite implements Connector.
func (c *CostConnector) DatasetWrite(ds *hdf5.Dataset, data []byte) error {
	c.data(int64(len(data)), true)
	return c.Next.DatasetWrite(ds, data)
}

// DatasetWriteRows implements Connector.
func (c *CostConnector) DatasetWriteRows(ds *hdf5.Dataset, start, count int, data []byte) error {
	c.data(int64(len(data)), true)
	return c.Next.DatasetWriteRows(ds, start, count, data)
}

// DatasetAppend implements Connector. Appends carry extra bookkeeping
// (offset and memory-range computation), which the paper credits for the
// low relative overhead of the write+append+read pattern; charge the write
// cost plus one metadata round trip.
func (c *CostConnector) DatasetAppend(ds *hdf5.Dataset, rows int, data []byte) error {
	c.meta()
	c.data(int64(len(data)), true)
	return c.Next.DatasetAppend(ds, rows, data)
}

// DatasetRead implements Connector.
func (c *CostConnector) DatasetRead(ds *hdf5.Dataset) ([]byte, error) {
	data, err := c.Next.DatasetRead(ds)
	if err == nil {
		c.data(int64(len(data)), false)
	}
	return data, err
}

// DatasetReadRows implements Connector.
func (c *CostConnector) DatasetReadRows(ds *hdf5.Dataset, start, count int) ([]byte, error) {
	data, err := c.Next.DatasetReadRows(ds, start, count)
	if err == nil {
		c.data(int64(len(data)), false)
	}
	return data, err
}

// AttrCreate implements Connector.
func (c *CostConnector) AttrCreate(host hdf5.Object, name string, dt hdf5.Datatype, dims []int, value []byte) error {
	c.meta()
	return c.Next.AttrCreate(host, name, dt, dims, value)
}

// AttrRead implements Connector.
func (c *CostConnector) AttrRead(host hdf5.Object, name string) ([]byte, hdf5.AttrInfo, error) {
	c.meta()
	return c.Next.AttrRead(host, name)
}

// DatatypeCommit implements Connector.
func (c *CostConnector) DatatypeCommit(parent *hdf5.Group, name string, dt hdf5.Datatype) (*hdf5.NamedDatatype, error) {
	c.meta()
	return c.Next.DatatypeCommit(parent, name, dt)
}

// DatatypeOpen implements Connector.
func (c *CostConnector) DatatypeOpen(parent *hdf5.Group, path string) (*hdf5.NamedDatatype, error) {
	c.meta()
	return c.Next.DatatypeOpen(parent, path)
}

// LinkCreateSoft implements Connector.
func (c *CostConnector) LinkCreateSoft(parent *hdf5.Group, name, target string) error {
	c.meta()
	return c.Next.LinkCreateSoft(parent, name, target)
}

// LinkCreateHard implements Connector.
func (c *CostConnector) LinkCreateHard(parent *hdf5.Group, name, target string) error {
	c.meta()
	return c.Next.LinkCreateHard(parent, name, target)
}
