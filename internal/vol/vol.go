// Package vol implements the Virtual Object Layer: the interception point
// the PROV-IO Lib Connector plugs into (paper §2.2/§5). Every object-level
// API an application issues goes through a Connector; connectors stack, so
// the PROV-IO connector wraps the native one homomorphically — each native
// API has a counterpart that forwards the call unchanged and collects
// provenance around it, keeping tracking transparent to the workflow.
package vol

import (
	"github.com/hpc-io/prov-io/internal/hdf5"
)

// Connector is the VOL plugin interface. The native terminal connector
// executes operations against the hdf5 substrate; wrapping connectors
// forward to the next connector in the stack.
type Connector interface {
	// File operations.
	FileCreate(path string) (*hdf5.File, error)
	FileOpen(path string, readonly bool) (*hdf5.File, error)
	FileFlush(f *hdf5.File) error
	FileClose(f *hdf5.File) error

	// Group operations.
	GroupCreate(parent *hdf5.Group, name string) (*hdf5.Group, error)
	GroupOpen(parent *hdf5.Group, path string) (*hdf5.Group, error)

	// Dataset operations.
	DatasetCreate(parent *hdf5.Group, name string, dt hdf5.Datatype, dims []int) (*hdf5.Dataset, error)
	DatasetOpen(parent *hdf5.Group, path string) (*hdf5.Dataset, error)
	DatasetWrite(ds *hdf5.Dataset, data []byte) error
	DatasetWriteRows(ds *hdf5.Dataset, start, count int, data []byte) error
	DatasetAppend(ds *hdf5.Dataset, rows int, data []byte) error
	DatasetRead(ds *hdf5.Dataset) ([]byte, error)
	DatasetReadRows(ds *hdf5.Dataset, start, count int) ([]byte, error)

	// Attribute operations.
	AttrCreate(host hdf5.Object, name string, dt hdf5.Datatype, dims []int, value []byte) error
	AttrRead(host hdf5.Object, name string) ([]byte, hdf5.AttrInfo, error)

	// Named datatype operations.
	DatatypeCommit(parent *hdf5.Group, name string, dt hdf5.Datatype) (*hdf5.NamedDatatype, error)
	DatatypeOpen(parent *hdf5.Group, path string) (*hdf5.NamedDatatype, error)

	// Link operations.
	LinkCreateSoft(parent *hdf5.Group, name, target string) error
	LinkCreateHard(parent *hdf5.Group, name, target string) error
}
