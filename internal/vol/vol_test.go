package vol

import (
	"bytes"
	"testing"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/hdf5"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/simclock"
	"github.com/hpc-io/prov-io/internal/vfs"
)

func setup(t *testing.T, cfg *core.Config) (*ProvConnector, *core.Tracker, *vfs.View) {
	t.Helper()
	view := vfs.NewStore().NewView()
	tr := core.NewTracker(cfg, nil, 0)
	user := tr.RegisterUser("Bob")
	prog := tr.RegisterProgram("vpicio_uni_h5.exe-a1", user)
	thr := tr.RegisterThread(0, prog)
	ctx := Context{User: user, Program: prog, Thread: thr}
	if err := view.MkdirAll("/data"); err != nil {
		t.Fatal(err)
	}
	pc := NewProvConnector(NewNative(view), tr, ctx, nil)
	return pc, tr, view
}

// runWorkload exercises every connector operation once.
func runWorkload(t *testing.T, c Connector) {
	t.Helper()
	f, err := c.FileCreate("/data/run.h5")
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.GroupCreate(f.Root(), "Timestep_0")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := c.DatasetCreate(g, "x", hdf5.TypeFloat64, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DatasetWrite(ds, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := c.DatasetWriteRows(ds, 2, 2, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if err := c.DatasetAppend(ds, 1, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DatasetRead(ds); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DatasetReadRows(ds, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AttrCreate(ds, "units", hdf5.TypeString(4), []int{1}, []byte("m/s\x00")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AttrRead(ds, "units"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DatatypeCommit(f.Root(), "pid_t", hdf5.TypeUint64); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DatatypeOpen(f.Root(), "pid_t"); err != nil {
		t.Fatal(err)
	}
	if err := c.LinkCreateSoft(f.Root(), "latest", "/Timestep_0/x"); err != nil {
		t.Fatal(err)
	}
	if err := c.LinkCreateHard(f.Root(), "alias", "/Timestep_0/x"); err != nil {
		t.Fatal(err)
	}
	if err := c.FileFlush(f); err != nil {
		t.Fatal(err)
	}
	if err := c.FileClose(f); err != nil {
		t.Fatal(err)
	}
	// Reopen read-only through the connector.
	f2, err := c.FileOpen("/data/run.h5", true)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.GroupOpen(f2.Root(), "Timestep_0")
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := c.DatasetOpen(g2, "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DatasetRead(ds2); err != nil {
		t.Fatal(err)
	}
	if err := c.FileClose(f2); err != nil {
		t.Fatal(err)
	}
}

func TestNativeConnectorExecutes(t *testing.T) {
	view := vfs.NewStore().NewView()
	view.MkdirAll("/data")
	runWorkload(t, NewNative(view))
	if !view.Exists("/data/run.h5") {
		t.Error("file not created")
	}
}

func TestPassthroughForwardsEverything(t *testing.T) {
	view := vfs.NewStore().NewView()
	view.MkdirAll("/data")
	runWorkload(t, &Passthrough{Next: NewNative(view)})
}

func TestProvConnectorTransparency(t *testing.T) {
	// The same workload must produce identical file contents with and
	// without the PROV-IO connector — tracking must not change I/O
	// semantics (paper §4.2: "without changing the original I/O
	// semantics").
	viewA := vfs.NewStore().NewView()
	viewA.MkdirAll("/data")
	runWorkload(t, NewNative(viewA))

	pc, _, viewB := setup(t, core.DefaultConfig())
	runWorkload(t, pc)

	a, err := viewA.ReadFile("/data/run.h5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := viewB.ReadFile("/data/run.h5")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("tracked and untracked runs produced different file bytes")
	}
}

func TestProvConnectorEmitsModelTriples(t *testing.T) {
	pc, tr, _ := setup(t, core.DefaultConfig())
	runWorkload(t, pc)
	g := tr.Graph()

	fileNode := rdf.IRI(model.NodeIRI(model.File, "/data/run.h5"))
	if len(g.Find(fileNode.Ptr(), rdf.IRI(rdf.RDFType).Ptr(), model.File.IRI().Ptr())) != 1 {
		t.Error("file entity missing")
	}
	dsNode := rdf.IRI(model.NodeIRI(model.Dataset, "/data/run.h5/Timestep_0/x"))
	if len(g.Find(dsNode.Ptr(), nil, nil)) == 0 {
		t.Error("dataset entity missing")
	}
	// Dataset is contained in the file.
	if !g.Has(rdf.Triple{S: dsNode, P: model.WasDerivedFrom.IRI(), O: fileNode}) {
		t.Error("dataset->file containment missing")
	}
	// The dataset was created by an H5Dcreate2 activity.
	created := g.Find(dsNode.Ptr(), model.WasCreatedBy.IRI().Ptr(), nil)
	if len(created) != 1 {
		t.Fatalf("wasCreatedBy edges = %d, want 1", len(created))
	}
	// That activity is associated with the thread agent.
	act := created[0].O
	thr := rdf.IRI(model.NodeIRI(model.Thread, "MPI_rank_0"))
	if !g.Has(rdf.Triple{S: act, P: model.AssociatedWith.IRI(), O: thr}) {
		t.Error("activity->thread association missing")
	}
	// Write/read activities exist.
	if n := len(g.Find(dsNode.Ptr(), model.WasWrittenBy.IRI().Ptr(), nil)); n != 3 {
		t.Errorf("wasWrittenBy edges = %d, want 3 (write, overwrite, append)", n)
	}
	if n := len(g.Find(dsNode.Ptr(), model.WasReadBy.IRI().Ptr(), nil)); n != 3 {
		t.Errorf("wasReadBy edges = %d, want 3", n)
	}
	// Attribute entity contained in the dataset.
	attrNode := rdf.IRI(model.NodeIRI(model.Attribute, "/data/run.h5/Timestep_0/x/.attrs/units"))
	if !g.Has(rdf.Triple{S: attrNode, P: model.WasDerivedFrom.IRI(), O: dsNode}) {
		t.Error("attribute->dataset containment missing")
	}
	// Flush tracked as Fsync.
	if n := len(g.Find(fileNode.Ptr(), model.WasFlushedBy.IRI().Ptr(), nil)); n != 1 {
		t.Errorf("wasFlushedBy edges = %d, want 1", n)
	}
	// Link entity exists.
	linkNode := rdf.IRI(model.NodeIRI(model.Link, "/data/run.h5/latest"))
	if len(g.Find(linkNode.Ptr(), rdf.IRI(rdf.RDFType).Ptr(), model.Link.IRI().Ptr())) != 1 {
		t.Error("link entity missing")
	}
	// Datatype entity exists.
	dtNode := rdf.IRI(model.NodeIRI(model.Datatype, "/data/run.h5/pid_t"))
	if len(g.Find(dtNode.Ptr(), rdf.IRI(rdf.RDFType).Ptr(), model.Datatype.IRI().Ptr())) != 1 {
		t.Error("datatype entity missing")
	}
}

func TestProvConnectorScenario1OnlyIOAPI(t *testing.T) {
	// H5bench scenario-1: track only I/O API classes — no entities, no
	// agents.
	cfg := core.ScenarioConfig(false, "Create", "Open", "Read", "Write", "Fsync", "Rename")
	view := vfs.NewStore().NewView()
	view.MkdirAll("/data")
	tr := core.NewTracker(cfg, nil, 0)
	ctx := Context{
		User:    tr.RegisterUser("Bob"),              // disabled -> zero
		Program: tr.RegisterProgram("p", rdf.Term{}), // disabled -> zero
	}
	pc := NewProvConnector(NewNative(view), tr, ctx, nil)
	runWorkload(t, pc)

	g := tr.Graph()
	if n := len(g.Find(nil, rdf.IRI(rdf.RDFType).Ptr(), model.File.IRI().Ptr())); n != 0 {
		t.Errorf("file entities tracked despite disabled class: %d", n)
	}
	if n := len(g.Find(nil, rdf.IRI(rdf.RDFType).Ptr(), model.User.IRI().Ptr())); n != 0 {
		t.Errorf("user agents tracked despite disabled class: %d", n)
	}
	if n := len(g.Find(nil, rdf.IRI(rdf.RDFType).Ptr(), model.Write.IRI().Ptr())); n == 0 {
		t.Error("write activities not tracked")
	}
	// No elapsed triples without the duration switch.
	if n := len(g.Find(nil, model.PropElapsed.IRI().Ptr(), nil)); n != 0 {
		t.Errorf("elapsed tracked despite duration=off: %d", n)
	}
}

func TestProvConnectorScenario2Duration(t *testing.T) {
	cfg := core.ScenarioConfig(true, "Create", "Open", "Read", "Write", "Fsync", "Rename")
	view := vfs.NewStore().NewView()
	view.MkdirAll("/data")
	clock := simclock.NewClock()
	tr := core.NewTracker(cfg, nil, 0)
	pc := NewProvConnector(NewNative(view), tr, Context{}, clock)
	runWorkload(t, pc)

	g := tr.Graph()
	elapsed := g.Find(nil, model.PropElapsed.IRI().Ptr(), nil)
	if len(elapsed) == 0 {
		t.Error("no elapsed triples in duration scenario")
	}
	started := g.Find(nil, model.PropTimestamp.IRI().Ptr(), nil)
	if len(started) != len(elapsed) {
		t.Errorf("startedAt (%d) != elapsed (%d)", len(started), len(elapsed))
	}
}

func TestProvConnectorTimingUsesVirtualClock(t *testing.T) {
	cfg := core.ScenarioConfig(true, "Create", "Write")
	store := vfs.NewStore()
	clock := simclock.NewClock()
	view := store.NewChargedView(clock, simclock.Default())
	tr := core.NewTracker(cfg, nil, 0)
	pc := NewProvConnector(NewNative(view), tr, Context{}, clock)

	f, _ := pc.FileCreate("/f.h5")
	ds, _ := pc.DatasetCreate(f.Root(), "x", hdf5.TypeFloat64, []int{1 << 14})
	if err := pc.DatasetWrite(ds, make([]byte, (1<<14)*8)); err != nil {
		t.Fatal(err)
	}
	pc.FileClose(f)

	g := tr.Graph()
	var sawPositive bool
	g.ForEachMatch(nil, model.PropElapsed.IRI().Ptr(), nil, func(tr rdf.Triple) bool {
		if tr.O.Value != "0" {
			sawPositive = true
		}
		return true
	})
	if !sawPositive {
		t.Error("no positive elapsed durations recorded from virtual clock")
	}
}

func TestProvConnectorErrorPropagation(t *testing.T) {
	pc, tr, _ := setup(t, core.DefaultConfig())
	if _, err := pc.FileOpen("/missing.h5", true); err == nil {
		t.Fatal("expected error for missing file")
	}
	// Failed operations are not tracked as activities.
	if n := len(tr.Graph().Find(nil, rdf.IRI(rdf.RDFType).Ptr(), model.Open.IRI().Ptr())); n != 0 {
		t.Errorf("failed open tracked: %d activities", n)
	}
}

func TestContextAgentPreference(t *testing.T) {
	u, p, th := rdf.IRI("http://u"), rdf.IRI("http://p"), rdf.IRI("http://t")
	if got := (Context{User: u, Program: p, Thread: th}).Agent(); got != th {
		t.Errorf("Agent = %v, want thread", got)
	}
	if got := (Context{User: u, Program: p}).Agent(); got != p {
		t.Errorf("Agent = %v, want program", got)
	}
	if got := (Context{User: u}).Agent(); got != u {
		t.Errorf("Agent = %v, want user", got)
	}
}

func TestFileNodeRefDeduplicates(t *testing.T) {
	pc, tr, _ := setup(t, core.DefaultConfig())
	f, _ := pc.FileCreate("/f.h5")
	g1, _ := pc.GroupCreate(f.Root(), "a")
	pc.GroupCreate(f.Root(), "b")
	_ = g1
	pc.FileClose(f)
	// The file node's record triples appear once in the graph even though
	// three operations referenced the file.
	fileNode := rdf.IRI(model.NodeIRI(model.File, "/f.h5"))
	types := tr.Graph().Find(fileNode.Ptr(), rdf.IRI(rdf.RDFType).Ptr(), nil)
	if len(types) != 1 {
		t.Errorf("file type triples = %d, want 1", len(types))
	}
}
