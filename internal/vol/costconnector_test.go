package vol

import (
	"testing"

	"github.com/hpc-io/prov-io/internal/hdf5"
	"github.com/hpc-io/prov-io/internal/simclock"
	"github.com/hpc-io/prov-io/internal/vfs"
)

func TestCostConnectorChargesOperations(t *testing.T) {
	view := vfs.NewStore().NewView()
	clock := simclock.NewClock()
	cost := simclock.Default()
	cc := NewCostConnector(NewNative(view), clock, cost, 1, 1)

	f, err := cc.FileCreate("/f.h5")
	if err != nil {
		t.Fatal(err)
	}
	if clock.Now() != cost.MetadataLatency {
		t.Errorf("FileCreate charged %v, want %v", clock.Now(), cost.MetadataLatency)
	}
	ds, _ := cc.DatasetCreate(f.Root(), "x", hdf5.TypeUint8, []int{1 << 20})
	before := clock.Now()
	cc.DatasetWrite(ds, make([]byte, 1<<20))
	charged := clock.Now() - before
	want := cost.WriteCost(1 << 20)
	if charged != want {
		t.Errorf("write charged %v, want %v", charged, want)
	}
	before = clock.Now()
	cc.DatasetRead(ds)
	if got := clock.Now() - before; got != cost.ReadCost(1<<20) {
		t.Errorf("read charged %v, want %v", got, cost.ReadCost(1<<20))
	}
}

func TestCostConnectorByteScale(t *testing.T) {
	view := vfs.NewStore().NewView()
	c1 := simclock.NewClock()
	c1024 := simclock.NewClock()
	cost := simclock.Default()

	run := func(cc Connector) {
		f, _ := cc.FileCreate("/f.h5")
		ds, _ := cc.DatasetCreate(f.Root(), "x", hdf5.TypeUint8, []int{1 << 16})
		cc.DatasetWrite(ds, make([]byte, 1<<16))
		cc.FileClose(f)
	}
	run(NewCostConnector(NewNative(view), c1, cost, 1, 1))
	view2 := vfs.NewStore().NewView()
	run(NewCostConnector(NewNative(view2), c1024, cost, 1024, 1))
	if c1024.Now() <= c1.Now() {
		t.Errorf("byte scale had no effect: %v vs %v", c1024.Now(), c1.Now())
	}
}

func TestCostConnectorSharedRanksPenalty(t *testing.T) {
	cost := simclock.Default()
	charge := func(ranks int) int64 {
		view := vfs.NewStore().NewView()
		clock := simclock.NewClock()
		cc := NewCostConnector(NewNative(view), clock, cost, 1, ranks)
		f, _ := cc.FileCreate("/f.h5")
		ds, _ := cc.DatasetCreate(f.Root(), "x", hdf5.TypeUint8, []int{1 << 20})
		before := clock.Now()
		cc.DatasetWrite(ds, make([]byte, 1<<20))
		return int64(clock.Now() - before)
	}
	if charge(4096) <= charge(64) {
		t.Error("shared-file penalty not applied at high rank counts")
	}
}

func TestCostConnectorScaleFloor(t *testing.T) {
	cc := NewCostConnector(nil, simclock.NewClock(), simclock.Default(), 0, 1)
	if cc.ByteScale != 1 {
		t.Errorf("ByteScale floor = %v, want 1", cc.ByteScale)
	}
}

func TestCostConnectorStacksUnderProv(t *testing.T) {
	// ProvConnector -> CostConnector -> Native: elapsed durations in the
	// provenance reflect modeled I/O cost.
	view := vfs.NewStore().NewView()
	clock := simclock.NewClock()
	cost := simclock.Default()
	cc := NewCostConnector(NewNative(view), clock, cost, 1, 1)

	f, _ := cc.FileCreate("/f.h5")
	ds, _ := cc.DatasetCreate(f.Root(), "x", hdf5.TypeUint8, []int{1 << 20})

	// Time one write through the stack by hand (ProvConnector tested
	// elsewhere; here we validate the stacking contract).
	start := clock.Now()
	if err := cc.DatasetWrite(ds, make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if clock.Now()-start < cost.WriteLatency {
		t.Error("stacked write charged less than base latency")
	}
	cc.FileClose(f)
}

func TestCostConnectorMetadataOps(t *testing.T) {
	view := vfs.NewStore().NewView()
	clock := simclock.NewClock()
	cost := simclock.Default()
	cc := NewCostConnector(NewNative(view), clock, cost, 1, 1)

	f, err := cc.FileCreate("/m.h5")
	if err != nil {
		t.Fatal(err)
	}
	ops := []func() error{
		func() error { _, err := cc.GroupCreate(f.Root(), "g"); return err },
		func() error { _, err := cc.GroupOpen(f.Root(), "g"); return err },
		func() error { _, err := cc.DatatypeCommit(f.Root(), "t", hdf5.TypeInt64); return err },
		func() error { _, err := cc.DatatypeOpen(f.Root(), "t"); return err },
		func() error { return cc.LinkCreateSoft(f.Root(), "l", "/g") },
		func() error { return cc.LinkCreateHard(f.Root(), "h", "/g") },
		func() error { return cc.FileFlush(f) },
		func() error {
			g, _ := f.Root().OpenGroup("g")
			return cc.AttrCreate(g, "a", hdf5.TypeInt64, []int{1}, make([]byte, 8))
		},
		func() error {
			g, _ := f.Root().OpenGroup("g")
			_, _, err := cc.AttrRead(g, "a")
			return err
		},
	}
	for i, op := range ops {
		before := clock.Now()
		if err := op(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if clock.Now()-before < cost.MetadataLatency {
			t.Errorf("op %d charged %v, want >= metadata latency", i, clock.Now()-before)
		}
	}
	if err := cc.FileClose(f); err != nil {
		t.Fatal(err)
	}
	// Append and partial reads charge data costs.
	f2, _ := cc.FileOpen("/m.h5", false)
	ds, err := cc.DatasetCreate(f2.Root(), "d", hdf5.TypeUint8, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	before := clock.Now()
	if err := cc.DatasetAppend(ds, 2, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if clock.Now()-before < cost.MetadataLatency+cost.WriteLatency {
		t.Error("append undercharged")
	}
	before = clock.Now()
	if _, err := cc.DatasetReadRows(ds, 0, 2); err != nil {
		t.Fatal(err)
	}
	if clock.Now()-before < cost.ReadLatency {
		t.Error("partial read undercharged")
	}
	cc.FileClose(f2)
}
