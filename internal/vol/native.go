package vol

import (
	"github.com/hpc-io/prov-io/internal/hdf5"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// Native is the terminal connector: it executes every operation directly
// against the hdf5 substrate through one vfs view (the calling process's
// Lustre client).
type Native struct {
	View *vfs.View
}

// NewNative returns a native connector bound to a vfs view.
func NewNative(view *vfs.View) *Native { return &Native{View: view} }

var _ Connector = (*Native)(nil)

// FileCreate implements Connector.
func (n *Native) FileCreate(path string) (*hdf5.File, error) {
	return hdf5.Create(n.View, path)
}

// FileOpen implements Connector.
func (n *Native) FileOpen(path string, readonly bool) (*hdf5.File, error) {
	return hdf5.Open(n.View, path, readonly)
}

// FileFlush implements Connector.
func (n *Native) FileFlush(f *hdf5.File) error { return f.Flush() }

// FileClose implements Connector.
func (n *Native) FileClose(f *hdf5.File) error { return f.Close() }

// GroupCreate implements Connector.
func (n *Native) GroupCreate(parent *hdf5.Group, name string) (*hdf5.Group, error) {
	return parent.CreateGroup(name)
}

// GroupOpen implements Connector.
func (n *Native) GroupOpen(parent *hdf5.Group, path string) (*hdf5.Group, error) {
	return parent.OpenGroup(path)
}

// DatasetCreate implements Connector.
func (n *Native) DatasetCreate(parent *hdf5.Group, name string, dt hdf5.Datatype, dims []int) (*hdf5.Dataset, error) {
	return parent.CreateDataset(name, dt, dims)
}

// DatasetOpen implements Connector.
func (n *Native) DatasetOpen(parent *hdf5.Group, path string) (*hdf5.Dataset, error) {
	return parent.OpenDataset(path)
}

// DatasetWrite implements Connector.
func (n *Native) DatasetWrite(ds *hdf5.Dataset, data []byte) error { return ds.Write(data) }

// DatasetWriteRows implements Connector.
func (n *Native) DatasetWriteRows(ds *hdf5.Dataset, start, count int, data []byte) error {
	return ds.WriteRows(start, count, data)
}

// DatasetAppend implements Connector.
func (n *Native) DatasetAppend(ds *hdf5.Dataset, rows int, data []byte) error {
	return ds.Append(rows, data)
}

// DatasetRead implements Connector.
func (n *Native) DatasetRead(ds *hdf5.Dataset) ([]byte, error) { return ds.Read() }

// DatasetReadRows implements Connector.
func (n *Native) DatasetReadRows(ds *hdf5.Dataset, start, count int) ([]byte, error) {
	return ds.ReadRows(start, count)
}

// AttrCreate implements Connector.
func (n *Native) AttrCreate(host hdf5.Object, name string, dt hdf5.Datatype, dims []int, value []byte) error {
	return hdf5.CreateAttribute(host, name, dt, dims, value)
}

// AttrRead implements Connector.
func (n *Native) AttrRead(host hdf5.Object, name string) ([]byte, hdf5.AttrInfo, error) {
	return hdf5.ReadAttribute(host, name)
}

// DatatypeCommit implements Connector.
func (n *Native) DatatypeCommit(parent *hdf5.Group, name string, dt hdf5.Datatype) (*hdf5.NamedDatatype, error) {
	return parent.CommitDatatype(name, dt)
}

// DatatypeOpen implements Connector.
func (n *Native) DatatypeOpen(parent *hdf5.Group, path string) (*hdf5.NamedDatatype, error) {
	return parent.OpenDatatype(path)
}

// LinkCreateSoft implements Connector.
func (n *Native) LinkCreateSoft(parent *hdf5.Group, name, target string) error {
	return parent.CreateSoftLink(name, target)
}

// LinkCreateHard implements Connector.
func (n *Native) LinkCreateHard(parent *hdf5.Group, name, target string) error {
	return parent.CreateHardLink(name, target)
}

// Passthrough forwards every call to the next connector; PROV-IO-style
// wrapping connectors embed it and override the calls they intercept. This
// mirrors the homomorphic design of HDF5 passthrough VOL connectors.
type Passthrough struct {
	Next Connector
}

var _ Connector = (*Passthrough)(nil)

// FileCreate implements Connector.
func (p *Passthrough) FileCreate(path string) (*hdf5.File, error) { return p.Next.FileCreate(path) }

// FileOpen implements Connector.
func (p *Passthrough) FileOpen(path string, readonly bool) (*hdf5.File, error) {
	return p.Next.FileOpen(path, readonly)
}

// FileFlush implements Connector.
func (p *Passthrough) FileFlush(f *hdf5.File) error { return p.Next.FileFlush(f) }

// FileClose implements Connector.
func (p *Passthrough) FileClose(f *hdf5.File) error { return p.Next.FileClose(f) }

// GroupCreate implements Connector.
func (p *Passthrough) GroupCreate(parent *hdf5.Group, name string) (*hdf5.Group, error) {
	return p.Next.GroupCreate(parent, name)
}

// GroupOpen implements Connector.
func (p *Passthrough) GroupOpen(parent *hdf5.Group, path string) (*hdf5.Group, error) {
	return p.Next.GroupOpen(parent, path)
}

// DatasetCreate implements Connector.
func (p *Passthrough) DatasetCreate(parent *hdf5.Group, name string, dt hdf5.Datatype, dims []int) (*hdf5.Dataset, error) {
	return p.Next.DatasetCreate(parent, name, dt, dims)
}

// DatasetOpen implements Connector.
func (p *Passthrough) DatasetOpen(parent *hdf5.Group, path string) (*hdf5.Dataset, error) {
	return p.Next.DatasetOpen(parent, path)
}

// DatasetWrite implements Connector.
func (p *Passthrough) DatasetWrite(ds *hdf5.Dataset, data []byte) error {
	return p.Next.DatasetWrite(ds, data)
}

// DatasetWriteRows implements Connector.
func (p *Passthrough) DatasetWriteRows(ds *hdf5.Dataset, start, count int, data []byte) error {
	return p.Next.DatasetWriteRows(ds, start, count, data)
}

// DatasetAppend implements Connector.
func (p *Passthrough) DatasetAppend(ds *hdf5.Dataset, rows int, data []byte) error {
	return p.Next.DatasetAppend(ds, rows, data)
}

// DatasetRead implements Connector.
func (p *Passthrough) DatasetRead(ds *hdf5.Dataset) ([]byte, error) {
	return p.Next.DatasetRead(ds)
}

// DatasetReadRows implements Connector.
func (p *Passthrough) DatasetReadRows(ds *hdf5.Dataset, start, count int) ([]byte, error) {
	return p.Next.DatasetReadRows(ds, start, count)
}

// AttrCreate implements Connector.
func (p *Passthrough) AttrCreate(host hdf5.Object, name string, dt hdf5.Datatype, dims []int, value []byte) error {
	return p.Next.AttrCreate(host, name, dt, dims, value)
}

// AttrRead implements Connector.
func (p *Passthrough) AttrRead(host hdf5.Object, name string) ([]byte, hdf5.AttrInfo, error) {
	return p.Next.AttrRead(host, name)
}

// DatatypeCommit implements Connector.
func (p *Passthrough) DatatypeCommit(parent *hdf5.Group, name string, dt hdf5.Datatype) (*hdf5.NamedDatatype, error) {
	return p.Next.DatatypeCommit(parent, name, dt)
}

// DatatypeOpen implements Connector.
func (p *Passthrough) DatatypeOpen(parent *hdf5.Group, path string) (*hdf5.NamedDatatype, error) {
	return p.Next.DatatypeOpen(parent, path)
}

// LinkCreateSoft implements Connector.
func (p *Passthrough) LinkCreateSoft(parent *hdf5.Group, name, target string) error {
	return p.Next.LinkCreateSoft(parent, name, target)
}

// LinkCreateHard implements Connector.
func (p *Passthrough) LinkCreateHard(parent *hdf5.Group, name, target string) error {
	return p.Next.LinkCreateHard(parent, name, target)
}
