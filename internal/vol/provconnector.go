package vol

import (
	"time"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/hdf5"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/simclock"
)

// Context identifies the agents on whose behalf I/O is performed. The
// PROV-IO Lib Connector collects this at initialization (paper §5) so that
// every tracked API invocation can be associated with its thread, program,
// and user.
type Context struct {
	User    rdf.Term
	Program rdf.Term
	Thread  rdf.Term
}

// Agent returns the most specific agent node available (thread, else
// program, else user).
func (c Context) Agent() rdf.Term {
	switch {
	case !c.Thread.IsZero():
		return c.Thread
	case !c.Program.IsZero():
		return c.Program
	default:
		return c.User
	}
}

// ProvConnector is the PROV-IO Lib Connector: a homomorphic VOL connector
// that forwards every call to the next connector and records the PROV-IO
// model's Entity/Activity/Relation triples around it. Tracking follows the
// tracker's Config switches, so disabled sub-classes cost nothing.
type ProvConnector struct {
	Passthrough
	tracker *core.Tracker
	ctx     Context
	clock   *simclock.Clock // for started/elapsed timestamps; may be nil
}

// NewProvConnector stacks a PROV-IO connector on next. clock provides the
// virtual timestamps for duration tracking and may be nil.
func NewProvConnector(next Connector, tracker *core.Tracker, ctx Context, clock *simclock.Clock) *ProvConnector {
	return &ProvConnector{Passthrough: Passthrough{Next: next}, tracker: tracker, ctx: ctx, clock: clock}
}

var _ Connector = (*ProvConnector)(nil)

// Tracker returns the underlying tracker.
func (p *ProvConnector) Tracker() *core.Tracker { return p.tracker }

// now returns the current virtual time (zero without a clock).
func (p *ProvConnector) now() time.Duration {
	if p.clock == nil {
		return 0
	}
	return p.clock.Now()
}

// fileID returns the data-object identity of a file.
func fileID(f *hdf5.File) string { return f.Path() }

// objectID returns the data-object identity of an in-file object.
func objectID(f *hdf5.File, objPath string) string { return f.Path() + objPath }

// attrID returns the data-object identity of an attribute on a host object.
func attrID(host hdf5.Object, name string) string {
	return objectID(host.File(), host.Path()) + "/.attrs/" + name
}

// attribution returns the Program agent for creating operations (a data
// object is attributed to the program that produced it) and the zero term
// for mere accesses — reads must not re-attribute an object to the reading
// program or backward lineage would be corrupted.
func (p *ProvConnector) attribution(creating bool) rdf.Term {
	if creating {
		return p.ctx.Program
	}
	return rdf.Term{}
}

// objectRef mints a node IRI for an enabled Data Object class without
// emitting its record (the record is emitted by the create/open call that
// introduced the object); it returns the zero term for disabled classes.
func (p *ProvConnector) objectRef(class model.Class, id string) rdf.Term {
	if !p.tracker.Config().Enabled(class) {
		return rdf.Term{}
	}
	return rdf.IRI(model.NodeIRI(class, id))
}

// trackFile mints the File entity node.
func (p *ProvConnector) trackFile(f *hdf5.File, creating bool) rdf.Term {
	return p.tracker.TrackDataObject(model.File, fileID(f), f.Path(), rdf.Term{}, p.attribution(creating))
}

// trackGroup mints a Group entity node contained in its file, falling back
// to the file node when Group tracking is disabled — the User Engine's
// granularity knob: with only File enabled, group-level I/O attaches to the
// file entity (the paper's "file lineage" scenario).
func (p *ProvConnector) trackGroup(g *hdf5.Group, creating bool) rdf.Term {
	if !p.tracker.Config().Enabled(model.Group) {
		return p.fileNodeRef(g.File())
	}
	file := p.fileNodeRef(g.File())
	return p.tracker.TrackDataObject(model.Group, objectID(g.File(), g.Path()), g.Path(), file, p.attribution(creating))
}

// trackDataset mints a Dataset entity node contained in its file, with the
// same file-granularity fallback as trackGroup.
func (p *ProvConnector) trackDataset(ds *hdf5.Dataset, creating bool) rdf.Term {
	if !p.tracker.Config().Enabled(model.Dataset) {
		return p.fileNodeRef(ds.File())
	}
	file := p.fileNodeRef(ds.File())
	return p.tracker.TrackDataObject(model.Dataset, objectID(ds.File(), ds.Path()), ds.Path(), file, p.attribution(creating))
}

// trackDatatype mints a Datatype entity node, with file fallback.
func (p *ProvConnector) trackDatatype(t *hdf5.NamedDatatype, creating bool) rdf.Term {
	if !p.tracker.Config().Enabled(model.Datatype) {
		return p.fileNodeRef(t.File())
	}
	file := p.fileNodeRef(t.File())
	return p.tracker.TrackDataObject(model.Datatype, objectID(t.File(), t.Path()), t.Path(), file, p.attribution(creating))
}

// hostRef returns the (non-emitting) node reference for an attribute host,
// falling back dataset/group/datatype → file granularity.
func (p *ProvConnector) hostRef(host hdf5.Object) rdf.Term {
	var class model.Class
	switch host.(type) {
	case *hdf5.Group:
		class = model.Group
	case *hdf5.Dataset:
		class = model.Dataset
	case *hdf5.NamedDatatype:
		class = model.Datatype
	default:
		return rdf.Term{}
	}
	if ref := p.objectRef(class, objectID(host.File(), host.Path())); !ref.IsZero() {
		return ref
	}
	return p.fileNodeRef(host.File())
}

// trackAttr mints an Attribute entity node contained in its host object,
// falling back to the host (then file) node when Attribute tracking is
// disabled.
func (p *ProvConnector) trackAttr(host hdf5.Object, name string, creating bool) rdf.Term {
	if !p.tracker.Config().Enabled(model.Attribute) {
		return p.hostRef(host)
	}
	return p.tracker.TrackDataObject(model.Attribute, attrID(host, name), name, p.hostRef(host), p.attribution(creating))
}

// fileNodeRef returns the file's node IRI without re-emitting its record
// (the record is emitted by FileCreate/FileOpen) — unless File tracking is
// disabled, in which case the zero term suppresses the edge.
func (p *ProvConnector) fileNodeRef(f *hdf5.File) rdf.Term {
	return p.objectRef(model.File, fileID(f))
}

// call wraps a native invocation with timing and emits the activity record.
func (p *ProvConnector) call(class model.Class, api string, object rdf.Term, fn func() error) error {
	started := p.now()
	err := fn()
	if err != nil {
		return err
	}
	p.tracker.TrackIO(class, api, object, p.ctx.Agent(), started, p.now()-started)
	return nil
}

// FileCreate implements Connector (H5Fcreate).
func (p *ProvConnector) FileCreate(path string) (*hdf5.File, error) {
	started := p.now()
	f, err := p.Next.FileCreate(path)
	if err != nil {
		return nil, err
	}
	node := p.trackFile(f, true)
	p.tracker.TrackIO(model.Create, "H5Fcreate", node, p.ctx.Agent(), started, p.now()-started)
	return f, nil
}

// FileOpen implements Connector (H5Fopen).
func (p *ProvConnector) FileOpen(path string, readonly bool) (*hdf5.File, error) {
	started := p.now()
	f, err := p.Next.FileOpen(path, readonly)
	if err != nil {
		return nil, err
	}
	node := p.trackFile(f, false)
	p.tracker.TrackIO(model.Open, "H5Fopen", node, p.ctx.Agent(), started, p.now()-started)
	return f, nil
}

// FileFlush implements Connector (H5Fflush).
func (p *ProvConnector) FileFlush(f *hdf5.File) error {
	return p.call(model.Fsync, "H5Fflush", p.fileNodeRef(f), func() error {
		return p.Next.FileFlush(f)
	})
}

// FileClose implements Connector (H5Fclose). Closing is not one of the six
// I/O API sub-classes, so it is forwarded untracked.
func (p *ProvConnector) FileClose(f *hdf5.File) error {
	return p.Next.FileClose(f)
}

// GroupCreate implements Connector (H5Gcreate2).
func (p *ProvConnector) GroupCreate(parent *hdf5.Group, name string) (*hdf5.Group, error) {
	started := p.now()
	g, err := p.Next.GroupCreate(parent, name)
	if err != nil {
		return nil, err
	}
	node := p.trackGroup(g, true)
	p.tracker.TrackIO(model.Create, "H5Gcreate2", node, p.ctx.Agent(), started, p.now()-started)
	return g, nil
}

// GroupOpen implements Connector (H5Gopen2).
func (p *ProvConnector) GroupOpen(parent *hdf5.Group, path string) (*hdf5.Group, error) {
	started := p.now()
	g, err := p.Next.GroupOpen(parent, path)
	if err != nil {
		return nil, err
	}
	node := p.trackGroup(g, false)
	p.tracker.TrackIO(model.Open, "H5Gopen2", node, p.ctx.Agent(), started, p.now()-started)
	return g, nil
}

// DatasetCreate implements Connector (H5Dcreate2).
func (p *ProvConnector) DatasetCreate(parent *hdf5.Group, name string, dt hdf5.Datatype, dims []int) (*hdf5.Dataset, error) {
	started := p.now()
	ds, err := p.Next.DatasetCreate(parent, name, dt, dims)
	if err != nil {
		return nil, err
	}
	node := p.trackDataset(ds, true)
	p.tracker.TrackIO(model.Create, "H5Dcreate2", node, p.ctx.Agent(), started, p.now()-started)
	return ds, nil
}

// DatasetOpen implements Connector (H5Dopen2).
func (p *ProvConnector) DatasetOpen(parent *hdf5.Group, path string) (*hdf5.Dataset, error) {
	started := p.now()
	ds, err := p.Next.DatasetOpen(parent, path)
	if err != nil {
		return nil, err
	}
	node := p.trackDataset(ds, false)
	p.tracker.TrackIO(model.Open, "H5Dopen2", node, p.ctx.Agent(), started, p.now()-started)
	return ds, nil
}

// DatasetWrite implements Connector (H5Dwrite).
func (p *ProvConnector) DatasetWrite(ds *hdf5.Dataset, data []byte) error {
	return p.call(model.Write, "H5Dwrite", p.trackDataset(ds, false), func() error {
		return p.Next.DatasetWrite(ds, data)
	})
}

// DatasetWriteRows implements Connector (H5Dwrite with hyperslab).
func (p *ProvConnector) DatasetWriteRows(ds *hdf5.Dataset, start, count int, data []byte) error {
	return p.call(model.Write, "H5Dwrite", p.trackDataset(ds, false), func() error {
		return p.Next.DatasetWriteRows(ds, start, count, data)
	})
}

// DatasetAppend implements Connector (H5DOappend).
func (p *ProvConnector) DatasetAppend(ds *hdf5.Dataset, rows int, data []byte) error {
	return p.call(model.Write, "H5DOappend", p.trackDataset(ds, false), func() error {
		return p.Next.DatasetAppend(ds, rows, data)
	})
}

// DatasetRead implements Connector (H5Dread).
func (p *ProvConnector) DatasetRead(ds *hdf5.Dataset) ([]byte, error) {
	started := p.now()
	data, err := p.Next.DatasetRead(ds)
	if err != nil {
		return nil, err
	}
	p.tracker.TrackIO(model.Read, "H5Dread", p.trackDataset(ds, false), p.ctx.Agent(), started, p.now()-started)
	return data, nil
}

// DatasetReadRows implements Connector (H5Dread with hyperslab).
func (p *ProvConnector) DatasetReadRows(ds *hdf5.Dataset, start, count int) ([]byte, error) {
	started := p.now()
	data, err := p.Next.DatasetReadRows(ds, start, count)
	if err != nil {
		return nil, err
	}
	p.tracker.TrackIO(model.Read, "H5Dread", p.trackDataset(ds, false), p.ctx.Agent(), started, p.now()-started)
	return data, nil
}

// AttrCreate implements Connector (H5Acreate2 + H5Awrite).
func (p *ProvConnector) AttrCreate(host hdf5.Object, name string, dt hdf5.Datatype, dims []int, value []byte) error {
	return p.call(model.Create, "H5Acreate2", p.trackAttr(host, name, true), func() error {
		return p.Next.AttrCreate(host, name, dt, dims, value)
	})
}

// AttrRead implements Connector (H5Aopen + H5Aread).
func (p *ProvConnector) AttrRead(host hdf5.Object, name string) ([]byte, hdf5.AttrInfo, error) {
	started := p.now()
	val, info, err := p.Next.AttrRead(host, name)
	if err != nil {
		return nil, info, err
	}
	p.tracker.TrackIO(model.Read, "H5Aread", p.trackAttr(host, name, false), p.ctx.Agent(), started, p.now()-started)
	return val, info, nil
}

// DatatypeCommit implements Connector (H5Tcommit2).
func (p *ProvConnector) DatatypeCommit(parent *hdf5.Group, name string, dt hdf5.Datatype) (*hdf5.NamedDatatype, error) {
	started := p.now()
	t, err := p.Next.DatatypeCommit(parent, name, dt)
	if err != nil {
		return nil, err
	}
	node := p.trackDatatype(t, true)
	p.tracker.TrackIO(model.Create, "H5Tcommit2", node, p.ctx.Agent(), started, p.now()-started)
	return t, nil
}

// DatatypeOpen implements Connector (H5Topen2).
func (p *ProvConnector) DatatypeOpen(parent *hdf5.Group, path string) (*hdf5.NamedDatatype, error) {
	started := p.now()
	t, err := p.Next.DatatypeOpen(parent, path)
	if err != nil {
		return nil, err
	}
	node := p.trackDatatype(t, false)
	p.tracker.TrackIO(model.Open, "H5Topen2", node, p.ctx.Agent(), started, p.now()-started)
	return t, nil
}

// LinkCreateSoft implements Connector (H5Lcreate_soft).
func (p *ProvConnector) LinkCreateSoft(parent *hdf5.Group, name, target string) error {
	node := p.tracker.TrackDataObject(model.Link,
		objectID(parent.File(), joinObjPath(parent.Path(), name)), name,
		p.fileNodeRef(parent.File()), p.ctx.Program)
	return p.call(model.Create, "H5Lcreate_soft", node, func() error {
		return p.Next.LinkCreateSoft(parent, name, target)
	})
}

// LinkCreateHard implements Connector (H5Lcreate_hard).
func (p *ProvConnector) LinkCreateHard(parent *hdf5.Group, name, target string) error {
	node := p.tracker.TrackDataObject(model.Link,
		objectID(parent.File(), joinObjPath(parent.Path(), name)), name,
		p.fileNodeRef(parent.File()), p.ctx.Program)
	return p.call(model.Create, "H5Lcreate_hard", node, func() error {
		return p.Next.LinkCreateHard(parent, name, target)
	})
}

func joinObjPath(base, name string) string {
	if base == "/" {
		return "/" + name
	}
	return base + "/" + name
}
