package sparql

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hpc-io/prov-io/internal/rdf"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

func TestGroupByCount(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?p (COUNT(?e) AS ?n) WHERE { ?e ?p ?o . } GROUP BY ?p`)
	if len(res.Vars) != 2 || res.Vars[0] != "p" || res.Vars[1] != "n" {
		t.Fatalf("vars = %v", res.Vars)
	}
	counts := map[rdf.Term]rdf.Term{}
	for _, r := range res.Rows {
		counts[r["p"]] = r["n"]
	}
	if counts[rdf.IRI(exNS+"size")] != rdf.Integer(3) {
		t.Errorf("size count = %v, want 3", counts[rdf.IRI(exNS+"size")])
	}
	if counts[rdf.IRI("http://www.w3.org/ns/prov#wasDerivedFrom")] != rdf.Integer(2) {
		t.Errorf("derived count = %v", counts[rdf.IRI("http://www.w3.org/ns/prov#wasDerivedFrom")])
	}
}

func TestSumIsTypedInteger(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT (SUM(?s) AS ?total) WHERE { ?e ex:size ?s . }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	got := res.Rows[0]["total"]
	if got != rdf.Integer(1300) {
		t.Errorf("total = %#v, want 1300^^xsd:integer", got)
	}
	if got.Datatype != rdf.XSDInteger {
		t.Errorf("datatype = %q, want xsd:integer", got.Datatype)
	}
}

func TestAvgIsTypedDecimal(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT (AVG(?s) AS ?mean) WHERE { ?e ex:size ?s . }`)
	got := res.Rows[0]["mean"]
	if got.Datatype != rdf.XSDDecimal {
		t.Fatalf("datatype = %q, want xsd:decimal", got.Datatype)
	}
	// (100+500+700)/3 — the lexical form must carry no exponent.
	if got.Value != "433.33333333333337" && got.Value != "433.3333333333333" {
		t.Errorf("mean = %q", got.Value)
	}
	if strings.ContainsAny(got.Value, "eE") {
		t.Errorf("xsd:decimal lexical form uses an exponent: %q", got.Value)
	}
}

func TestSumMixedNumericIsDecimal(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.Triple{S: exIRI("a"), P: exIRI("v"), O: rdf.Integer(2)})
	g.Add(rdf.Triple{S: exIRI("b"), P: exIRI("v"), O: rdf.Double(0.5)})
	res := mustExec(t, g, `SELECT (SUM(?x) AS ?s) WHERE { ?e ex:v ?x . }`)
	got := res.Rows[0]["s"]
	if got.Datatype != rdf.XSDDecimal || got.Value != "2.5" {
		t.Errorf("sum = %#v, want 2.5^^xsd:decimal", got)
	}
}

func TestMinMax(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT (MIN(?s) AS ?lo) (MAX(?s) AS ?hi) WHERE { ?e ex:size ?s . }`)
	if res.Rows[0]["lo"] != rdf.Integer(100) || res.Rows[0]["hi"] != rdf.Integer(700) {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestAggregatesOverEmptySequence(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT (COUNT(?x) AS ?n) (SUM(?x) AS ?s) (MIN(?x) AS ?lo) WHERE { ?e ex:nope ?x . }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (aggregate over empty input yields one row)", len(res.Rows))
	}
	r := res.Rows[0]
	if r["n"] != rdf.Integer(0) || r["s"] != rdf.Integer(0) {
		t.Errorf("count/sum = %v/%v, want 0/0", r["n"], r["s"])
	}
	if _, bound := r["lo"]; bound {
		t.Errorf("MIN over empty sequence should be unbound, got %v", r["lo"])
	}
}

func TestGroupByEmptyInputYieldsNoGroups(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?p (COUNT(?e) AS ?n) WHERE { ?e ex:nope ?o . ?e ?p ?o . } GROUP BY ?p`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d, want 0 (GROUP BY over empty input has no groups)", len(res.Rows))
	}
}

func TestCountDistinctInAggregate(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT (COUNT(DISTINCT ?p) AS ?n) WHERE { ?e ?p ?o . }`)
	if res.Rows[0]["n"] != rdf.Integer(3) {
		t.Errorf("distinct predicates = %v, want 3", res.Rows[0]["n"])
	}
}

func TestGroupByMultipleKeys(t *testing.T) {
	g := rdf.NewGraph()
	for i := 0; i < 12; i++ {
		s := exIRI(fmt.Sprintf("job%d", i))
		g.Add(rdf.Triple{S: s, P: exIRI("rank"), O: rdf.Integer(int64(i % 2))})
		g.Add(rdf.Triple{S: s, P: exIRI("op"), O: rdf.Literal([]string{"read", "write"}[i%2])})
		g.Add(rdf.Triple{S: s, P: exIRI("bytes"), O: rdf.Integer(int64(10 * (i + 1)))})
	}
	res := mustExec(t, g, `SELECT ?rank ?op (SUM(?b) AS ?total) (COUNT(*) AS ?n) WHERE {
		?j ex:rank ?rank . ?j ex:op ?op . ?j ex:bytes ?b .
	} GROUP BY ?rank ?op ORDER BY ?rank`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 groups: %v", len(res.Rows), res.Rows)
	}
	for _, r := range res.Rows {
		if r["n"] != rdf.Integer(6) {
			t.Errorf("group size = %v, want 6", r["n"])
		}
	}
}

func TestAggregateParseErrors(t *testing.T) {
	cases := []string{
		`SELECT (SUM(*) AS ?n) WHERE { ?s ?p ?o . }`,
		`SELECT (COUNT(DISTINCT *) AS ?n) WHERE { ?s ?p ?o . }`,
		`SELECT * WHERE { ?s ?p ?o . } GROUP BY ?p`,
		`SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s ?p ?o . } GROUP BY ?p`,
		`SELECT ?p WHERE { ?s ?p ?o . } GROUP BY`,
		`SELECT (BOUND(?o) AS ?n) WHERE { ?s ?p ?o . }`,
	}
	for _, query := range cases {
		if _, err := Parse(query, nil); err == nil {
			t.Errorf("Parse(%q) accepted an invalid aggregate query", query)
		}
	}
}

// TestAggregateResultsJSONGolden pins the W3C results-JSON rendering of
// aggregate outputs — typed xsd:integer / xsd:decimal literals — to a golden
// fixture. Regenerate with -update.
func TestAggregateResultsJSONGolden(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT (COUNT(*) AS ?n) (SUM(?s) AS ?total) (AVG(?s) AS ?mean) WHERE { ?e ex:size ?s . }`)
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	golden := filepath.Join("testdata", "aggregate_results.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("results JSON drifted from golden\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// Round-trip: parsing the golden recovers the typed literals.
	back, err := ParseResultsJSON(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("ParseResultsJSON: %v", err)
	}
	if back.Rows[0]["total"] != rdf.Integer(1300) {
		t.Errorf("round-trip total = %#v", back.Rows[0]["total"])
	}
	if back.Rows[0]["mean"].Datatype != rdf.XSDDecimal {
		t.Errorf("round-trip mean datatype = %q", back.Rows[0]["mean"].Datatype)
	}
}

// TestAggregateParityRandom is the aggregate arm of the engine-parity
// property: over randomized graphs, random GROUP BY/aggregate queries return
// byte-identical results from the serial executor, the legacy term-space
// oracle, and the parallel executor at every worker count.
func TestAggregateParityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	funcs := []string{"COUNT", "SUM", "MIN", "MAX", "AVG"}
	for iter := 0; iter < 60; iter++ {
		g := bigParityGraph(rng, 150+rng.Intn(300))
		fn := funcs[rng.Intn(len(funcs))]
		distinct := ""
		if fn == "COUNT" && rng.Intn(3) == 0 {
			distinct = "DISTINCT "
		}
		agg := fmt.Sprintf("(%s(%s?b) AS ?agg)", fn, distinct)
		var query string
		if rng.Intn(4) == 0 {
			// Ungrouped: one row over the whole input.
			query = fmt.Sprintf("SELECT %s WHERE { ?a <%sp1> ?b . }", agg, parityNS)
		} else {
			query = fmt.Sprintf("SELECT ?c %s WHERE { ?a <%sp1> ?b . ?a <%sp0> ?c . } GROUP BY ?c", agg, parityNS, parityNS)
		}
		q, err := Parse(query, nil)
		if err != nil {
			t.Fatalf("iter %d: parse %q: %v", iter, query, err)
		}
		serial, err := Eval(g, q)
		if err != nil {
			t.Fatalf("iter %d: serial %q: %v", iter, query, err)
		}
		legacy, err := EvalLegacyNaive(g, q)
		if err != nil {
			t.Fatalf("iter %d: legacy %q: %v", iter, query, err)
		}
		if !identicalResults(serial, legacy) {
			t.Fatalf("iter %d: serial vs legacy diverge for %q\nserial: %v\nlegacy: %v",
				iter, query, rowMultiset(serial), rowMultiset(legacy))
		}
		for _, w := range parityWorkers {
			par, err := EvalParallel(g, q, w)
			if err != nil {
				t.Fatalf("iter %d: parallel(%d) %q: %v", iter, w, query, err)
			}
			if !identicalResults(serial, par) {
				t.Fatalf("iter %d workers=%d: parallel aggregate differs for %q", iter, w, query)
			}
		}
	}
}
