package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

// Error is a SPARQL syntax or evaluation error.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("sparql: line %d: %s", e.Line, e.Msg)
	}
	return "sparql: " + e.Msg
}

var keywords = map[string]bool{
	"PREFIX": true, "SELECT": true, "WHERE": true, "FILTER": true,
	"DISTINCT": true, "ORDER": true, "BY": true, "ASC": true, "DESC": true,
	"LIMIT": true, "OFFSET": true, "REGEX": true, "COUNT": true, "AS": true,
	"OPTIONAL": true, "UNION": true, "BOUND": true, "STR": true,
	"TRUE": true, "FALSE": true, "NOT": true, "EXISTS": true,
	"GROUP": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) eof() bool { return l.pos >= len(l.src) }

func (l *lexer) peek() byte {
	if l.eof() {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
	}
	return c
}

func (l *lexer) skipWS() {
	for !l.eof() {
		c := l.peek()
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			l.advance()
			continue
		}
		if c == '#' {
			for !l.eof() && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		return
	}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	l.skipWS()
	if l.eof() {
		return token{kind: tokEOF, line: l.line}, nil
	}
	line := l.line
	c := l.peek()
	switch c {
	case '{':
		l.advance()
		return token{tokLBrace, "{", line}, nil
	case '}':
		l.advance()
		return token{tokRBrace, "}", line}, nil
	case '(':
		l.advance()
		return token{tokLParen, "(", line}, nil
	case ')':
		l.advance()
		return token{tokRParen, ")", line}, nil
	case '.':
		l.advance()
		return token{tokDot, ".", line}, nil
	case ';':
		l.advance()
		return token{tokSemi, ";", line}, nil
	case ',':
		l.advance()
		return token{tokComma, ",", line}, nil
	case '*':
		l.advance()
		return token{tokStar, "*", line}, nil
	case '+':
		if d := l.peekAt(1); d >= '0' && d <= '9' {
			return l.lexNumber()
		}
		l.advance()
		return token{tokPlus, "+", line}, nil
	case '|':
		l.advance()
		if l.peek() == '|' {
			l.advance()
			return token{tokOrOr, "||", line}, nil
		}
		return token{tokPipe, "|", line}, nil
	case '/':
		l.advance()
		return token{tokSlash, "/", line}, nil
	case '^':
		l.advance()
		if l.peek() == '^' {
			l.advance()
			return token{tokDTSep, "^^", line}, nil
		}
		return token{tokCaret, "^", line}, nil
	case '=':
		l.advance()
		return token{tokEq, "=", line}, nil
	case '!':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return token{tokNeq, "!=", line}, nil
		}
		return token{tokBang, "!", line}, nil
	case '&':
		l.advance()
		if l.peek() != '&' {
			return token{}, l.errf("expected '&&'")
		}
		l.advance()
		return token{tokAndAnd, "&&", line}, nil
	case '<':
		// IRI ref or less-than. An IRI has no spaces before '>'.
		if l.looksLikeIRI() {
			return l.lexIRI()
		}
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return token{tokLe, "<=", line}, nil
		}
		return token{tokLt, "<", line}, nil
	case '>':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return token{tokGe, ">=", line}, nil
		}
		return token{tokGt, ">", line}, nil
	case '?', '$':
		return l.lexVar()
	case '"', '\'':
		return l.lexString()
	case '@':
		return l.lexLangTag()
	case '-':
		return l.lexNumber()
	case ':':
		// Prefixed name with the empty prefix.
		l.advance()
		start := l.pos
		for !l.eof() && isLocalChar(rune(l.peek())) {
			l.advance()
		}
		return token{tokPName, ":" + l.src[start:l.pos], line}, nil
	}
	if c >= '0' && c <= '9' {
		return l.lexNumber()
	}
	return l.lexWord()
}

// looksLikeIRI scans ahead from a '<' for a '>' with no whitespace between.
func (l *lexer) looksLikeIRI() bool {
	for i := l.pos + 1; i < len(l.src); i++ {
		switch l.src[i] {
		case '>':
			return true
		case ' ', '\t', '\n', '\r', '"':
			return false
		}
	}
	return false
}

func (l *lexer) lexIRI() (token, error) {
	line := l.line
	l.advance() // '<'
	start := l.pos
	for !l.eof() && l.peek() != '>' {
		l.advance()
	}
	if l.eof() {
		return token{}, l.errf("unterminated IRI")
	}
	iri := l.src[start:l.pos]
	l.advance() // '>'
	return token{tokIRI, iri, line}, nil
}

func (l *lexer) lexVar() (token, error) {
	line := l.line
	l.advance() // '?' or '$'
	start := l.pos
	for !l.eof() && isWordChar(rune(l.peek())) {
		l.advance()
	}
	if l.pos == start {
		// bare '?' is the zero-or-one path modifier
		return token{tokQuest, "?", line}, nil
	}
	return token{tokVar, l.src[start:l.pos], line}, nil
}

func (l *lexer) lexString() (token, error) {
	line := l.line
	quote := l.advance()
	var b strings.Builder
	for {
		if l.eof() {
			return token{}, l.errf("unterminated string")
		}
		c := l.advance()
		if c == quote {
			break
		}
		if c == '\\' {
			if l.eof() {
				return token{}, l.errf("unterminated escape")
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\', '"', '\'':
				b.WriteByte(e)
			default:
				return token{}, l.errf("unknown escape \\%c", e)
			}
			continue
		}
		b.WriteByte(c)
	}
	return token{tokString, b.String(), line}, nil
}

func (l *lexer) lexLangTag() (token, error) {
	line := l.line
	l.advance() // '@'
	start := l.pos
	for !l.eof() && (isWordChar(rune(l.peek())) || l.peek() == '-') {
		l.advance()
	}
	if l.pos == start {
		return token{}, l.errf("empty language tag")
	}
	return token{tokLangTag, l.src[start:l.pos], line}, nil
}

func (l *lexer) lexNumber() (token, error) {
	line := l.line
	start := l.pos
	if l.peek() == '-' || l.peek() == '+' {
		l.advance()
	}
	digits := false
	for !l.eof() {
		c := l.peek()
		if c >= '0' && c <= '9' {
			digits = true
			l.advance()
			continue
		}
		if c == '.' {
			d := l.peekAt(1)
			if d >= '0' && d <= '9' {
				l.advance()
				continue
			}
		}
		if c == 'e' || c == 'E' {
			d := l.peekAt(1)
			if d >= '0' && d <= '9' || d == '+' || d == '-' {
				l.advance()
				l.advance()
				continue
			}
		}
		break
	}
	if !digits {
		return token{}, l.errf("malformed number")
	}
	return token{tokNumber, l.src[start:l.pos], line}, nil
}

// lexWord lexes keywords, the 'a' shortcut, and prefixed names.
func (l *lexer) lexWord() (token, error) {
	line := l.line
	start := l.pos
	for !l.eof() && (isWordChar(rune(l.peek())) || l.peek() == '-') {
		l.advance()
	}
	word := l.src[start:l.pos]
	if word == "" {
		return token{}, l.errf("unexpected character %q", string(l.peek()))
	}
	// Prefixed name: word followed by ':'.
	if !l.eof() && l.peek() == ':' {
		l.advance() // ':'
		lstart := l.pos
		for !l.eof() && isLocalChar(rune(l.peek())) {
			if l.peek() == '.' {
				// trailing '.' terminates the pattern, not the name
				d := l.peekAt(1)
				if !isLocalChar(rune(d)) || d == '.' {
					break
				}
			}
			l.advance()
		}
		return token{tokPName, word + ":" + l.src[lstart:l.pos], line}, nil
	}
	if word == "a" {
		return token{tokA, "a", line}, nil
	}
	up := strings.ToUpper(word)
	if keywords[up] {
		return token{tokKeyword, up, line}, nil
	}
	return token{}, l.errf("unexpected token %q", word)
}

func isWordChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// isLocalChar accepts characters of a prefixed-name local part. Unlike
// Turtle, '/' is excluded because it separates property-path steps.
func isLocalChar(r rune) bool {
	return isWordChar(r) || r == '-' || r == '.'
}
