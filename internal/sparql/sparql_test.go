package sparql

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"github.com/hpc-io/prov-io/internal/rdf"
)

const exNS = "http://example.org/"

func exIRI(s string) rdf.Term { return rdf.IRI(exNS + s) }

func testNS() *rdf.Namespaces {
	ns := rdf.NewNamespaces()
	ns.Bind("ex", exNS)
	ns.Bind("prov", "http://www.w3.org/ns/prov#")
	return ns
}

// lineageGraph builds the DASSA-style chain the paper's §6.5 walks through:
// WestSac.tdms -> (tdms2h5) -> WestSac.h5 -> (decimate) -> decimate.h5
func lineageGraph() *rdf.Graph {
	g := rdf.NewGraph()
	wasAttr := rdf.IRI("http://www.w3.org/ns/prov#wasAttributedTo")
	derived := rdf.IRI("http://www.w3.org/ns/prov#wasDerivedFrom")
	g.Add(rdf.Triple{S: exIRI("decimate.h5"), P: wasAttr, O: exIRI("decimate")})
	g.Add(rdf.Triple{S: exIRI("WestSac.h5"), P: wasAttr, O: exIRI("tdms2h5")})
	g.Add(rdf.Triple{S: exIRI("decimate.h5"), P: derived, O: exIRI("WestSac.h5")})
	g.Add(rdf.Triple{S: exIRI("WestSac.h5"), P: derived, O: exIRI("WestSac.tdms")})
	g.Add(rdf.Triple{S: exIRI("decimate.h5"), P: rdf.IRI(exNS + "size"), O: rdf.Integer(100)})
	g.Add(rdf.Triple{S: exIRI("WestSac.h5"), P: rdf.IRI(exNS + "size"), O: rdf.Integer(500)})
	g.Add(rdf.Triple{S: exIRI("WestSac.tdms"), P: rdf.IRI(exNS + "size"), O: rdf.Integer(700)})
	return g
}

func mustExec(t *testing.T, g *rdf.Graph, q string) *Result {
	t.Helper()
	res, err := Exec(g, q, testNS())
	if err != nil {
		t.Fatalf("Exec(%q) error: %v", q, err)
	}
	return res
}

func TestSelectSingleVar(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?program WHERE { ex:decimate.h5 prov:wasAttributedTo ?program . }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1: %v", len(res.Rows), res.Rows)
	}
	if got := res.Rows[0]["program"]; got != exIRI("decimate") {
		t.Errorf("program = %v, want ex:decimate", got)
	}
}

func TestSelectStar(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT * WHERE { ?e prov:wasAttributedTo ?p . }`)
	if len(res.Vars) != 2 {
		t.Fatalf("vars = %v", res.Vars)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestPredicateObjectList(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?p ?s WHERE {
		ex:decimate.h5 prov:wasAttributedTo ?p ;
		               ex:size ?s .
	}`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if res.Rows[0]["s"] != rdf.Integer(100) {
		t.Errorf("size = %v", res.Rows[0]["s"])
	}
}

func TestJoinAcrossPatterns(t *testing.T) {
	g := lineageGraph()
	// Which file was produced by the program that produced decimate.h5's input?
	res := mustExec(t, g, `SELECT ?input ?prog WHERE {
		ex:decimate.h5 prov:wasDerivedFrom ?input .
		?input prov:wasAttributedTo ?prog .
	}`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if res.Rows[0]["input"] != exIRI("WestSac.h5") || res.Rows[0]["prog"] != exIRI("tdms2h5") {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestTransitivePath(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?anc WHERE { ex:decimate.h5 prov:wasDerivedFrom+ ?anc . }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (h5 and tdms): %v", len(res.Rows), res.Rows)
	}
	got := map[rdf.Term]bool{}
	for _, r := range res.Rows {
		got[r["anc"]] = true
	}
	if !got[exIRI("WestSac.h5")] || !got[exIRI("WestSac.tdms")] {
		t.Errorf("ancestors = %v", got)
	}
}

func TestZeroOrMorePathIncludesSelf(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?anc WHERE { ex:decimate.h5 prov:wasDerivedFrom* ?anc . }`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (self + 2 ancestors): %v", len(res.Rows), res.Rows)
	}
}

func TestZeroOrOnePath(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?x WHERE { ex:decimate.h5 prov:wasDerivedFrom? ?x . }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (self + direct parent): %v", len(res.Rows), res.Rows)
	}
}

func TestInversePath(t *testing.T) {
	g := lineageGraph()
	// Forward lineage: descendants of WestSac.tdms.
	res := mustExec(t, g, `SELECT ?desc WHERE { ex:WestSac.tdms ^prov:wasDerivedFrom+ ?desc . }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2: %v", len(res.Rows), res.Rows)
	}
}

func TestSequencePath(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?p WHERE { ex:decimate.h5 prov:wasDerivedFrom/prov:wasAttributedTo ?p . }`)
	if len(res.Rows) != 1 || res.Rows[0]["p"] != exIRI("tdms2h5") {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestTransitivePathCycleTerminates(t *testing.T) {
	g := rdf.NewGraph()
	p := rdf.IRI(exNS + "p")
	g.Add(rdf.Triple{S: exIRI("a"), P: p, O: exIRI("b")})
	g.Add(rdf.Triple{S: exIRI("b"), P: p, O: exIRI("a")})
	res := mustExec(t, g, `SELECT ?x WHERE { ex:a ex:p+ ?x . }`)
	if len(res.Rows) != 2 {
		t.Fatalf("cycle closure rows = %d, want 2: %v", len(res.Rows), res.Rows)
	}
}

func TestFilterNumericComparison(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?f WHERE { ?f ex:size ?s . FILTER(?s > 100) }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2: %v", len(res.Rows), res.Rows)
	}
}

func TestFilterEquality(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?f WHERE { ?f ex:size ?s . FILTER(?f = ex:decimate.h5) }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

func TestFilterRegex(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?f WHERE { ?f ex:size ?s . FILTER(REGEX(STR(?f), "\\.h5$")) }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2: %v", len(res.Rows), res.Rows)
	}
}

func TestFilterRegexCaseInsensitive(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?f WHERE { ?f ex:size ?s . FILTER(REGEX(STR(?f), "WESTSAC", "i")) }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2: %v", len(res.Rows), res.Rows)
	}
}

func TestFilterLogical(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?f WHERE { ?f ex:size ?s . FILTER(?s >= 500 && ?s < 700) }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1: %v", len(res.Rows), res.Rows)
	}
	res = mustExec(t, g, `SELECT ?f WHERE { ?f ex:size ?s . FILTER(?s = 100 || ?s = 700) }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2: %v", len(res.Rows), res.Rows)
	}
	res = mustExec(t, g, `SELECT ?f WHERE { ?f ex:size ?s . FILTER(!(?s = 100)) }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2: %v", len(res.Rows), res.Rows)
	}
}

func TestOptional(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?f ?prog WHERE {
		?f ex:size ?s .
		OPTIONAL { ?f prov:wasAttributedTo ?prog . }
	}`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	bound := 0
	for _, r := range res.Rows {
		if _, ok := r["prog"]; ok {
			bound++
		}
	}
	if bound != 2 {
		t.Errorf("bound prog rows = %d, want 2", bound)
	}
}

func TestOptionalWithBoundFilter(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?f WHERE {
		?f ex:size ?s .
		OPTIONAL { ?f prov:wasAttributedTo ?prog . }
		FILTER(!BOUND(?prog))
	}`)
	if len(res.Rows) != 1 || res.Rows[0]["f"] != exIRI("WestSac.tdms") {
		t.Fatalf("rows = %v, want only WestSac.tdms", res.Rows)
	}
}

func TestUnion(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?x WHERE {
		{ ex:decimate.h5 prov:wasAttributedTo ?x . }
		UNION
		{ ex:WestSac.h5 prov:wasAttributedTo ?x . }
	}`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2: %v", len(res.Rows), res.Rows)
	}
}

func TestCountStar(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0]["n"] != rdf.Integer(7) {
		t.Errorf("count = %v, want 7", res.Rows[0]["n"])
	}
}

func TestCountVarDistinct(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT DISTINCT (COUNT(?p) AS ?n) WHERE { ?s ?p ?o . }`)
	if res.Rows[0]["n"] != rdf.Integer(3) {
		t.Errorf("distinct predicate count = %v, want 3", res.Rows[0]["n"])
	}
}

func TestDistinct(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT DISTINCT ?p WHERE { ?s ?p ?o . }`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3: %v", len(res.Rows), res.Rows)
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?f ?s WHERE { ?f ex:size ?s . } ORDER BY DESC(?s) LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0]["s"] != rdf.Integer(700) || res.Rows[1]["s"] != rdf.Integer(500) {
		t.Errorf("order wrong: %v", res.Rows)
	}
	res = mustExec(t, g, `SELECT ?f ?s WHERE { ?f ex:size ?s . } ORDER BY ?s OFFSET 1 LIMIT 1`)
	if len(res.Rows) != 1 || res.Rows[0]["s"] != rdf.Integer(500) {
		t.Errorf("offset+limit wrong: %v", res.Rows)
	}
	res = mustExec(t, g, `SELECT ?f WHERE { ?f ex:size ?s . } OFFSET 10`)
	if len(res.Rows) != 0 {
		t.Errorf("offset beyond end returned rows: %v", res.Rows)
	}
}

func TestTypeShorthandA(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.Triple{S: exIRI("x"), P: rdf.IRI(rdf.RDFType), O: exIRI("File")})
	res := mustExec(t, g, `SELECT ?x WHERE { ?x a ex:File . }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

func TestInQueryPrefixOverridesBase(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.Triple{S: rdf.IRI("http://other/x"), P: rdf.IRI(rdf.RDFType), O: rdf.IRI("http://other/C")})
	res := mustExec(t, g, `PREFIX ex: <http://other/>
SELECT ?x WHERE { ?x a ex:C . }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

func TestVariablePredicate(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?p ?o WHERE { ex:decimate.h5 ?p ?o . }`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3: %v", len(res.Rows), res.Rows)
	}
}

func TestLiteralObjectPattern(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?f WHERE { ?f ex:size 100 . }`)
	if len(res.Rows) != 1 || res.Rows[0]["f"] != exIRI("decimate.h5") {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEmptyResult(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?x WHERE { ?x ex:nonexistent ?y . }`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v, want none", res.Rows)
	}
}

func TestStatementCount(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE {
		?x ex:a ?y ; ex:b ?z .
		OPTIONAL { ?x ex:c ?w . }
		{ ?x ex:d ?v . } UNION { ?x ex:e ?v . }
		FILTER(?y > 1)
	}`, testNS())
	if err != nil {
		t.Fatal(err)
	}
	if got := q.StatementCount(); got != 5 {
		t.Errorf("StatementCount = %d, want 5", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, q string }{
		{"no-select", `WHERE { ?x ?y ?z . }`},
		{"unbound-prefix", `SELECT ?x WHERE { ?x zz:p ?y . }`},
		{"unterminated-group", `SELECT ?x WHERE { ?x ex:p ?y .`},
		{"bad-count", `SELECT (COUNT(?x) ?n) WHERE { ?x ex:p ?y . }`},
		{"bad-limit", `SELECT ?x WHERE { ?x ex:p ?y . } LIMIT abc`},
		{"trailing-garbage", `SELECT ?x WHERE { ?x ex:p ?y . } } }`},
		{"literal-predicate", `SELECT ?x WHERE { ?x "p" ?y . }`},
		{"empty-projection", `SELECT WHERE { ?x ex:p ?y . }`},
		{"unterminated-string", `SELECT ?x WHERE { ?x ex:p "abc . }`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.q, testNS()); err == nil {
				t.Errorf("expected error for %q", c.q)
			}
		})
	}
}

func TestBadRegexPatternErrors(t *testing.T) {
	g := lineageGraph()
	_, err := Exec(g, `SELECT ?f WHERE { ?f ex:size ?s . FILTER(REGEX(STR(?f), "[")) }`, testNS())
	if err == nil {
		t.Error("expected error for invalid regex")
	}
}

func TestDeterministicOrderWithoutOrderBy(t *testing.T) {
	g := rdf.NewGraph()
	for i := 0; i < 20; i++ {
		g.Add(rdf.Triple{S: exIRI(fmt.Sprintf("f%02d", i)), P: rdf.IRI(exNS + "p"), O: rdf.Integer(int64(i))})
	}
	q := `SELECT ?f WHERE { ?f ex:p ?v . }`
	first := mustExec(t, g, q)
	for trial := 0; trial < 5; trial++ {
		again := mustExec(t, g, q)
		for i := range first.Rows {
			if first.Rows[i]["f"] != again.Rows[i]["f"] {
				t.Fatalf("row order not deterministic at %d", i)
			}
		}
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lexAll(`SELECT ?x WHERE { ?x <http://e/p> "s\n" ; a ex:C . FILTER(?x != 3.5) } # c`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("missing EOF token")
	}
	var kinds []tokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
	}
	if kinds[0] != tokKeyword || kinds[1] != tokVar {
		t.Errorf("unexpected token kinds: %v", kinds)
	}
}

func TestLexerErrorsIncludeLine(t *testing.T) {
	_, err := lexAll("SELECT ?x\nWHERE { ?x & ?y }")
	if err == nil {
		t.Fatal("expected lexer error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error lacks line info: %v", err)
	}
}

func TestBGPReorderingSameResults(t *testing.T) {
	// The same BGP written selective-first and selective-last must return
	// identical solutions (join order is a pure optimization).
	g := lineageGraph()
	q1 := `SELECT ?prog ?s WHERE {
		ex:decimate.h5 prov:wasAttributedTo ?prog .
		?f ex:size ?s .
		?f prov:wasAttributedTo ?prog .
	}`
	q2 := `SELECT ?prog ?s WHERE {
		?f ex:size ?s .
		?f prov:wasAttributedTo ?prog .
		ex:decimate.h5 prov:wasAttributedTo ?prog .
	}`
	r1 := mustExec(t, g, q1)
	r2 := mustExec(t, g, q2)
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(r1.Rows), len(r2.Rows))
	}
	for i := range r1.Rows {
		for _, v := range r1.Vars {
			if r1.Rows[i][v] != r2.Rows[i][v] {
				t.Fatalf("row %d differs: %v vs %v", i, r1.Rows[i], r2.Rows[i])
			}
		}
	}
}

func TestBGPUnboundFirstStillCorrect(t *testing.T) {
	// Large graph where naive left-to-right order would enumerate every
	// node before constraining; the reordered join must both finish fast
	// and return the single correct answer.
	g := rdf.NewGraph()
	typeP := rdf.IRI(rdf.RDFType)
	cls := exIRI("File")
	for i := 0; i < 5000; i++ {
		n := exIRI(fmt.Sprintf("f%04d", i))
		g.Add(rdf.Triple{S: n, P: typeP, O: cls})
		g.Add(rdf.Triple{S: n, P: rdf.IRI(exNS + "size"), O: rdf.Integer(int64(i))})
	}
	g.Add(rdf.Triple{S: exIRI("f1234"), P: rdf.IRI(exNS + "special"), O: rdf.Boolean(true)})
	res := mustExec(t, g, `SELECT ?f ?s WHERE {
		?f a ex:File .
		?f ex:size ?s .
		?f ex:special true .
	}`)
	if len(res.Rows) != 1 || res.Rows[0]["s"] != rdf.Integer(1234) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestFilterBetweenPatternsStillApplies(t *testing.T) {
	// A FILTER splits two BGP runs; reordering must not move patterns
	// across it.
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?f ?prog WHERE {
		?f ex:size ?s .
		FILTER(?s > 100)
		?f prov:wasAttributedTo ?prog .
	}`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0]["f"] != exIRI("WestSac.h5") {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestResultsJSONRoundTrip(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?f ?s WHERE { ?f ex:size ?s . } ORDER BY ?s`)
	var sb strings.Builder
	if err := res.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	doc := sb.String()
	for _, want := range []string{`"vars"`, `"bindings"`, `"type": "uri"`, `"type": "literal"`,
		"http://www.w3.org/2001/XMLSchema#integer"} {
		if !strings.Contains(doc, want) {
			t.Errorf("JSON missing %q:\n%s", want, doc)
		}
	}
	back, err := ParseResultsJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(res.Rows) || len(back.Vars) != 2 {
		t.Fatalf("round trip lost rows: %d vs %d", len(back.Rows), len(res.Rows))
	}
	for i := range res.Rows {
		for _, v := range res.Vars {
			if back.Rows[i][v] != res.Rows[i][v] {
				t.Errorf("row %d var %s: %v != %v", i, v, back.Rows[i][v], res.Rows[i][v])
			}
		}
	}
}

func TestResultsJSONUnboundOmitted(t *testing.T) {
	g := lineageGraph()
	res := mustExec(t, g, `SELECT ?f ?prog WHERE {
		?f ex:size ?s .
		OPTIONAL { ?f prov:wasAttributedTo ?prog . }
	}`)
	var sb strings.Builder
	if err := res.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ParseResultsJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	unbound := 0
	for _, row := range back.Rows {
		if _, ok := row["prog"]; !ok {
			unbound++
		}
	}
	if unbound != 1 {
		t.Errorf("unbound prog rows = %d, want 1", unbound)
	}
}

func TestParseResultsJSONRejectsGarbage(t *testing.T) {
	if _, err := ParseResultsJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

// Property: a single-pattern SELECT returns exactly the triples Graph.Find
// returns for the same pattern (the evaluator agrees with the index oracle).
func TestSinglePatternMatchesFindOracle(t *testing.T) {
	f := func(raw []uint8, mode uint8) bool {
		g := rdf.NewGraph()
		for _, v := range raw {
			g.Add(rdf.Triple{
				S: exIRI(fmt.Sprintf("s%d", v%4)),
				P: rdf.IRI(exNS + fmt.Sprintf("p%d", (v/4)%3)),
				O: exIRI(fmt.Sprintf("o%d", (v/12)%4)),
			})
		}
		s0 := exIRI("s0")
		p0 := rdf.IRI(exNS + "p0")
		o0 := exIRI("o0")
		var q string
		var want int
		switch mode % 4 {
		case 0:
			q = `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`
			want = len(g.Find(nil, nil, nil))
		case 1:
			q = `SELECT ?p ?o WHERE { ex:s0 ?p ?o . }`
			want = len(g.Find(&s0, nil, nil))
		case 2:
			q = `SELECT ?s ?o WHERE { ?s ex:p0 ?o . }`
			want = len(g.Find(nil, &p0, nil))
		case 3:
			q = `SELECT ?s ?p WHERE { ?s ?p ex:o0 . }`
			want = len(g.Find(nil, nil, &o0))
		}
		res, err := Exec(g, q, testNS())
		if err != nil {
			return false
		}
		return len(res.Rows) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
