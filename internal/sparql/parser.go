package sparql

import (
	"fmt"
	"strings"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// Parse parses a SPARQL SELECT query. The optional base namespaces are
// consulted for prefixes not declared in the query itself (the user engine
// passes the PROV-IO model's namespace table so queries can omit the
// boilerplate PREFIX block).
func Parse(src string, base *rdf.Namespaces) (*Query, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	ns := rdf.NewNamespaces()
	if base != nil {
		ns = base.Clone()
	}
	p := &parser{toks: toks, q: &Query{Prefixes: ns, Limit: -1}}
	if err := p.parseQuery(); err != nil {
		return nil, err
	}
	return p.q, nil
}

type parser struct {
	toks []token
	pos  int
	q    *Query
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return &Error{Line: p.cur().line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) expectKind(k tokenKind, what string) (token, error) {
	if p.cur().kind != k {
		return token{}, p.errf("expected %s, got %q", what, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) parseQuery() error {
	for p.acceptKeyword("PREFIX") {
		if err := p.parsePrefixDecl(); err != nil {
			return err
		}
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return err
	}
	if p.acceptKeyword("DISTINCT") {
		p.q.Distinct = true
	}
	if err := p.parseProjection(); err != nil {
		return err
	}
	// WHERE keyword is optional before '{'.
	p.acceptKeyword("WHERE")
	g, err := p.parseGroup()
	if err != nil {
		return err
	}
	p.q.Where = g
	if err := p.parseSolutionModifiers(); err != nil {
		return err
	}
	if p.cur().kind != tokEOF {
		return p.errf("unexpected trailing token %q", p.cur().text)
	}
	return p.validateAggregates()
}

// validateAggregates enforces the SPARQL grouping rules our subset supports:
// with aggregates or GROUP BY present, every plain projected variable must be
// a GROUP BY variable, aggregate aliases must be unique and must not shadow a
// plain projection, and SELECT * cannot be grouped.
func (p *parser) validateAggregates() error {
	q := p.q
	if !q.isAggregate() {
		return nil
	}
	if len(q.Vars) == 0 {
		return p.errf("SELECT * cannot be combined with GROUP BY or aggregates")
	}
	grouped := make(map[string]bool, len(q.GroupBy))
	for _, v := range q.GroupBy {
		grouped[v] = true
	}
	aliases := q.aggAliases()
	seen := make(map[string]bool, len(q.Vars))
	for _, v := range q.Vars {
		if seen[v] {
			return p.errf("duplicate projection of ?%s in an aggregate query", v)
		}
		seen[v] = true
		if !aliases[v] && !grouped[v] {
			return p.errf("variable ?%s is projected but neither aggregated nor in GROUP BY", v)
		}
	}
	return nil
}

func (p *parser) parsePrefixDecl() error {
	t, err := p.expectKind(tokPName, "prefix name")
	if err != nil {
		return err
	}
	if !strings.HasSuffix(t.text, ":") {
		// The lexer emits "prefix:local"; a declaration must have empty local.
		i := strings.Index(t.text, ":")
		if i < 0 || t.text[i+1:] != "" {
			return p.errf("malformed PREFIX declaration %q", t.text)
		}
	}
	prefix := strings.TrimSuffix(t.text, ":")
	iri, err := p.expectKind(tokIRI, "IRI")
	if err != nil {
		return err
	}
	p.q.Prefixes.Bind(prefix, iri.text)
	return nil
}

func (p *parser) parseProjection() error {
	if p.cur().kind == tokStar {
		p.pos++
		return nil
	}
	for {
		switch p.cur().kind {
		case tokVar:
			p.q.Vars = append(p.q.Vars, p.next().text)
			continue
		case tokLParen:
			if err := p.parseAggProjection(); err != nil {
				return err
			}
			continue
		}
		break
	}
	if len(p.q.Vars) == 0 {
		return p.errf("SELECT needs '*', variables, or (FUNC(...) AS ?v)")
	}
	return nil
}

// aggFuncs maps projection keywords to aggregate functions.
var aggFuncs = map[string]AggFunc{
	"COUNT": AggCount, "SUM": AggSum, "MIN": AggMin, "MAX": AggMax, "AVG": AggAvg,
}

// parseAggProjection parses one (FUNC(DISTINCT? ?v) AS ?n) projection;
// COUNT also accepts '*'.
func (p *parser) parseAggProjection() error {
	p.pos++ // '('
	t := p.cur()
	fn, ok := AggFunc(0), false
	if t.kind == tokKeyword {
		fn, ok = aggFuncs[t.text]
	}
	if !ok {
		return p.errf("expected aggregate function (COUNT/SUM/MIN/MAX/AVG), got %q", t.text)
	}
	p.pos++
	agg := Aggregate{Func: fn}
	if _, err := p.expectKind(tokLParen, "'('"); err != nil {
		return err
	}
	if p.acceptKeyword("DISTINCT") {
		agg.Distinct = true
	}
	switch p.cur().kind {
	case tokStar:
		if fn != AggCount {
			return p.errf("%s needs a variable, not '*'", fn)
		}
		if agg.Distinct {
			return p.errf("COUNT(DISTINCT *) is not supported")
		}
		p.pos++
		agg.Star = true
	case tokVar:
		agg.Var = p.next().text
	default:
		return p.errf("%s needs a variable", fn)
	}
	if _, err := p.expectKind(tokRParen, "')'"); err != nil {
		return err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return err
	}
	v, err := p.expectKind(tokVar, "variable")
	if err != nil {
		return err
	}
	agg.As = v.text
	if _, err := p.expectKind(tokRParen, "')'"); err != nil {
		return err
	}
	p.q.Aggs = append(p.q.Aggs, agg)
	p.q.Vars = append(p.q.Vars, agg.As)
	return nil
}

func (p *parser) parseGroup() (*Group, error) {
	if _, err := p.expectKind(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	g := &Group{}
	for {
		switch {
		case p.cur().kind == tokRBrace:
			p.pos++
			return g, nil
		case p.cur().kind == tokEOF:
			return nil, p.errf("unterminated group pattern")
		case p.cur().kind == tokKeyword && p.cur().text == "FILTER":
			p.pos++
			e, err := p.parseBrackettedExpr()
			if err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, FilterElem{Expr: e})
		case p.cur().kind == tokKeyword && p.cur().text == "OPTIONAL":
			p.pos++
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, OptionalElem{Group: sub})
		case p.cur().kind == tokLBrace:
			// { A } UNION { B } [UNION { C } ...]
			alt, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			u := UnionElem{Alternatives: []*Group{alt}}
			for p.acceptKeyword("UNION") {
				alt, err := p.parseGroup()
				if err != nil {
					return nil, err
				}
				u.Alternatives = append(u.Alternatives, alt)
			}
			g.Elems = append(g.Elems, u)
		case p.cur().kind == tokDot:
			p.pos++ // stray separator
		default:
			if err := p.parseTriplesBlock(g); err != nil {
				return nil, err
			}
		}
	}
}

// parseTriplesBlock parses: subject (path object ("," object)*)
// (";" path object ("," object)*)* "."?
func (p *parser) parseTriplesBlock(g *Group) error {
	s, err := p.parseNode()
	if err != nil {
		return err
	}
	for {
		path, err := p.parsePath()
		if err != nil {
			return err
		}
		for {
			o, err := p.parseNode()
			if err != nil {
				return err
			}
			g.Elems = append(g.Elems, TriplePattern{S: s, P: path, O: o})
			if p.cur().kind == tokComma {
				p.pos++
				continue
			}
			break
		}
		if p.cur().kind == tokSemi {
			p.pos++
			// Allow dangling ';' before '.' or '}'.
			if p.cur().kind == tokDot || p.cur().kind == tokRBrace {
				break
			}
			continue
		}
		break
	}
	if p.cur().kind == tokDot {
		p.pos++
	}
	return nil
}

func (p *parser) parseNode() (NodePattern, error) {
	switch t := p.cur(); t.kind {
	case tokVar:
		p.pos++
		return NodePattern{Var: t.text}, nil
	case tokIRI:
		p.pos++
		return NodePattern{Term: rdf.IRI(t.text)}, nil
	case tokPName:
		p.pos++
		iri, ok := p.q.Prefixes.Expand(t.text)
		if !ok {
			return NodePattern{}, p.errf("unbound prefix in %q", t.text)
		}
		return NodePattern{Term: rdf.IRI(iri)}, nil
	case tokString:
		p.pos++
		// optional @lang or ^^datatype
		if p.cur().kind == tokLangTag {
			lang := p.next().text
			return NodePattern{Term: rdf.LangLiteral(t.text, lang)}, nil
		}
		if p.cur().kind == tokDTSep {
			p.pos++
			dt, err := p.parseNode()
			if err != nil {
				return NodePattern{}, err
			}
			if !dt.Term.IsIRI() {
				return NodePattern{}, p.errf("datatype must be an IRI")
			}
			return NodePattern{Term: rdf.TypedLiteral(t.text, dt.Term.Value)}, nil
		}
		return NodePattern{Term: rdf.Literal(t.text)}, nil
	case tokNumber:
		p.pos++
		return NodePattern{Term: numberTerm(t.text)}, nil
	case tokKeyword:
		if t.text == "TRUE" || t.text == "FALSE" {
			p.pos++
			return NodePattern{Term: rdf.Boolean(t.text == "TRUE")}, nil
		}
	}
	return NodePattern{}, p.errf("expected term or variable, got %q", p.cur().text)
}

func numberTerm(text string) rdf.Term {
	if strings.ContainsAny(text, ".eE") {
		return rdf.TypedLiteral(text, rdf.XSDDouble)
	}
	return rdf.TypedLiteral(text, rdf.XSDInteger)
}

// parsePath parses the predicate position: a variable, 'a', or a property
// path (sequence of steps separated by '/', each optionally inverted with
// '^' and modified with +, *, ?).
func (p *parser) parsePath() (PathPattern, error) {
	if p.cur().kind == tokVar {
		return PathPattern{Var: p.next().text}, nil
	}
	var steps []PathStep
	for {
		step, err := p.parsePathStep()
		if err != nil {
			return PathPattern{}, err
		}
		steps = append(steps, step)
		if p.cur().kind == tokSlash {
			p.pos++
			continue
		}
		break
	}
	return PathPattern{Steps: steps}, nil
}

func (p *parser) parsePathStep() (PathStep, error) {
	var step PathStep
	if p.cur().kind == tokCaret {
		p.pos++
		step.Inverse = true
	}
	switch t := p.cur(); t.kind {
	case tokA:
		p.pos++
		step.IRI = rdf.IRI(rdf.RDFType)
	case tokIRI:
		p.pos++
		step.IRI = rdf.IRI(t.text)
	case tokPName:
		p.pos++
		iri, ok := p.q.Prefixes.Expand(t.text)
		if !ok {
			return PathStep{}, p.errf("unbound prefix in %q", t.text)
		}
		step.IRI = rdf.IRI(iri)
	default:
		return PathStep{}, p.errf("expected predicate, got %q", t.text)
	}
	switch p.cur().kind {
	case tokPlus:
		p.pos++
		step.Mod = PathOneOrMore
	case tokStar:
		p.pos++
		step.Mod = PathZeroOrMore
	case tokQuest:
		p.pos++
		step.Mod = PathZeroOrOne
	}
	return step, nil
}

func (p *parser) parseSolutionModifiers() error {
	for {
		switch {
		case p.acceptKeyword("GROUP"):
			if err := p.expectKeyword("BY"); err != nil {
				return err
			}
			for p.cur().kind == tokVar {
				p.q.GroupBy = append(p.q.GroupBy, p.next().text)
			}
			if len(p.q.GroupBy) == 0 {
				return p.errf("GROUP BY needs at least one variable")
			}
		case p.acceptKeyword("ORDER"):
			if err := p.expectKeyword("BY"); err != nil {
				return err
			}
			for {
				desc := false
				if p.acceptKeyword("DESC") {
					desc = true
				} else {
					p.acceptKeyword("ASC")
				}
				if p.cur().kind == tokLParen {
					p.pos++
					v, err := p.expectKind(tokVar, "variable")
					if err != nil {
						return err
					}
					if _, err := p.expectKind(tokRParen, "')'"); err != nil {
						return err
					}
					p.q.OrderBy = append(p.q.OrderBy, OrderKey{Var: v.text, Desc: desc})
				} else if p.cur().kind == tokVar {
					p.q.OrderBy = append(p.q.OrderBy, OrderKey{Var: p.next().text, Desc: desc})
				} else {
					break
				}
				if p.cur().kind != tokVar && !(p.cur().kind == tokKeyword && (p.cur().text == "ASC" || p.cur().text == "DESC")) && p.cur().kind != tokLParen {
					break
				}
			}
		case p.acceptKeyword("LIMIT"):
			t, err := p.expectKind(tokNumber, "number")
			if err != nil {
				return err
			}
			n, err := parseInt(t.text)
			if err != nil || n < 0 {
				return p.errf("bad LIMIT %q", t.text)
			}
			p.q.Limit = n
		case p.acceptKeyword("OFFSET"):
			t, err := p.expectKind(tokNumber, "number")
			if err != nil {
				return err
			}
			n, err := parseInt(t.text)
			if err != nil || n < 0 {
				return p.errf("bad OFFSET %q", t.text)
			}
			p.q.Offset = n
		default:
			return nil
		}
	}
}

func parseInt(s string) (int, error) {
	var n int
	_, err := fmt.Sscanf(s, "%d", &n)
	return n, err
}

// ---- FILTER expression parsing (precedence climbing) ----

func (p *parser) parseBrackettedExpr() (Expr, error) {
	if _, err := p.expectKind(tokLParen, "'('"); err != nil {
		return nil, err
	}
	e, err := p.parseOrExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKind(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) parseOrExpr() (Expr, error) {
	l, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOrOr {
		p.pos++
		r, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAndExpr() (Expr, error) {
	l, err := p.parseRelExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokAndAnd {
		p.pos++
		r, err := p.parseRelExpr()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseRelExpr() (Expr, error) {
	l, err := p.parsePrimaryExpr()
	if err != nil {
		return nil, err
	}
	var op string
	switch p.cur().kind {
	case tokEq:
		op = "="
	case tokNeq:
		op = "!="
	case tokLt:
		op = "<"
	case tokGt:
		op = ">"
	case tokLe:
		op = "<="
	case tokGe:
		op = ">="
	default:
		return l, nil
	}
	p.pos++
	r, err := p.parsePrimaryExpr()
	if err != nil {
		return nil, err
	}
	return BinaryExpr{Op: op, L: l, R: r}, nil
}

func (p *parser) parsePrimaryExpr() (Expr, error) {
	switch t := p.cur(); {
	case t.kind == tokBang:
		p.pos++
		x, err := p.parsePrimaryExpr()
		if err != nil {
			return nil, err
		}
		return NotExpr{X: x}, nil
	case t.kind == tokLParen:
		p.pos++
		e, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectKind(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokVar:
		p.pos++
		return VarExpr{Name: t.text}, nil
	case t.kind == tokString:
		p.pos++
		return TermExpr{Term: rdf.Literal(t.text)}, nil
	case t.kind == tokNumber:
		p.pos++
		return TermExpr{Term: numberTerm(t.text)}, nil
	case t.kind == tokIRI:
		p.pos++
		return TermExpr{Term: rdf.IRI(t.text)}, nil
	case t.kind == tokPName:
		p.pos++
		iri, ok := p.q.Prefixes.Expand(t.text)
		if !ok {
			return nil, p.errf("unbound prefix in %q", t.text)
		}
		return TermExpr{Term: rdf.IRI(iri)}, nil
	case t.kind == tokKeyword && t.text == "REGEX":
		p.pos++
		if _, err := p.expectKind(tokLParen, "'('"); err != nil {
			return nil, err
		}
		x, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectKind(tokComma, "','"); err != nil {
			return nil, err
		}
		pat, err := p.expectKind(tokString, "pattern string")
		if err != nil {
			return nil, err
		}
		flags := ""
		if p.cur().kind == tokComma {
			p.pos++
			f, err := p.expectKind(tokString, "flags string")
			if err != nil {
				return nil, err
			}
			flags = f.text
		}
		if _, err := p.expectKind(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return RegexExpr{X: x, Pattern: pat.text, Flags: flags}, nil
	case t.kind == tokKeyword && t.text == "BOUND":
		p.pos++
		if _, err := p.expectKind(tokLParen, "'('"); err != nil {
			return nil, err
		}
		v, err := p.expectKind(tokVar, "variable")
		if err != nil {
			return nil, err
		}
		if _, err := p.expectKind(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return BoundExpr{Name: v.text}, nil
	case t.kind == tokKeyword && t.text == "STR":
		p.pos++
		if _, err := p.expectKind(tokLParen, "'('"); err != nil {
			return nil, err
		}
		x, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectKind(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return StrExpr{X: x}, nil
	case t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE"):
		p.pos++
		return TermExpr{Term: rdf.Boolean(t.text == "TRUE")}, nil
	}
	return nil, p.errf("unexpected token %q in expression", p.cur().text)
}
