package sparql

import (
	"encoding/json"
	"io"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// JSON serialization of query solutions in the W3C "SPARQL 1.1 Query
// Results JSON Format" (application/sparql-results+json), so the user
// engine's answers can feed standard SPARQL tooling.

// jsonResults mirrors the W3C document structure.
type jsonResults struct {
	Head    jsonHead     `json:"head"`
	Results jsonBindings `json:"results"`
}

type jsonHead struct {
	Vars []string `json:"vars"`
}

type jsonBindings struct {
	Bindings []map[string]jsonTerm `json:"bindings"`
}

type jsonTerm struct {
	Type     string `json:"type"` // "uri", "literal", "bnode"
	Value    string `json:"value"`
	Datatype string `json:"datatype,omitempty"`
	Lang     string `json:"xml:lang,omitempty"`
}

func termToJSON(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.IRITerm:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.BlankTerm:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Datatype: t.Datatype, Lang: t.Lang}
	}
}

func jsonToTerm(t jsonTerm) rdf.Term {
	switch t.Type {
	case "uri":
		return rdf.IRI(t.Value)
	case "bnode":
		return rdf.Blank(t.Value)
	default:
		if t.Lang != "" {
			return rdf.LangLiteral(t.Value, t.Lang)
		}
		return rdf.TypedLiteral(t.Value, t.Datatype)
	}
}

// WriteJSON serializes the result in the W3C SPARQL results JSON format.
func (r *Result) WriteJSON(w io.Writer) error {
	doc := jsonResults{Head: jsonHead{Vars: append([]string{}, r.Vars...)}}
	doc.Results.Bindings = make([]map[string]jsonTerm, 0, len(r.Rows))
	for _, row := range r.Rows {
		b := make(map[string]jsonTerm, len(row))
		for _, v := range r.Vars {
			if t, ok := row[v]; ok {
				b[v] = termToJSON(t)
			}
		}
		doc.Results.Bindings = append(doc.Results.Bindings, b)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ParseResultsJSON parses a W3C SPARQL results JSON document back into a
// Result, for round-tripping with external endpoints.
func ParseResultsJSON(r io.Reader) (*Result, error) {
	var doc jsonResults
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, err
	}
	out := &Result{Vars: doc.Head.Vars}
	for _, b := range doc.Results.Bindings {
		row := make(Binding, len(b))
		for v, t := range b {
			row[v] = jsonToTerm(t)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
