package sparql

import (
	"fmt"
	"strings"
	"testing"

	"github.com/hpc-io/prov-io/internal/rdf"
)

const cacheQuery = `SELECT ?e ?s WHERE { ?e <` + exNS + `size> ?s . }`

func execInfo(t *testing.T, g *rdf.Graph, query string, workers int) (*Result, ExecInfo) {
	t.Helper()
	res, info, err := ExecParallelInfo(g, query, nil, workers)
	if err != nil {
		t.Fatalf("ExecParallelInfo(%q): %v", query, err)
	}
	return res, info
}

func TestCacheHitAfterNoop(t *testing.T) {
	g := lineageGraph()
	cold, coldInfo := execInfo(t, g, cacheQuery, 1)
	if coldInfo.CacheHit {
		t.Fatal("first execution reported a cache hit")
	}
	warm, warmInfo := execInfo(t, g, cacheQuery, 1)
	if !warmInfo.CacheHit {
		t.Fatal("repeat against an unchanged graph missed the cache")
	}
	if warm != cold {
		t.Fatal("cache hit returned a different *Result than the cold run")
	}
	if !strings.Contains(warmInfo.Summary(), "cache hit") {
		t.Errorf("Summary() = %q, want a cache-hit report", warmInfo.Summary())
	}
}

func TestCacheMissAfterAdd(t *testing.T) {
	g := lineageGraph()
	cold, _ := execInfo(t, g, cacheQuery, 1)
	g.Add(rdf.Triple{S: exIRI("new.h5"), P: exIRI("size"), O: rdf.Integer(42)})
	fresh, info := execInfo(t, g, cacheQuery, 1)
	if info.CacheHit {
		t.Fatal("Add did not invalidate the result cache")
	}
	if len(fresh.Rows) != len(cold.Rows)+1 {
		t.Fatalf("post-Add rows = %d, want %d", len(fresh.Rows), len(cold.Rows)+1)
	}
}

func TestCacheMissAfterRemove(t *testing.T) {
	g := lineageGraph()
	cold, _ := execInfo(t, g, cacheQuery, 1)
	if !g.Remove(rdf.Triple{S: exIRI("WestSac.tdms"), P: exIRI("size"), O: rdf.Integer(700)}) {
		t.Fatal("Remove failed on a triple the fixture contains")
	}
	fresh, info := execInfo(t, g, cacheQuery, 1)
	if info.CacheHit {
		t.Fatal("Remove did not invalidate the result cache (removeEpoch ignored)")
	}
	if len(fresh.Rows) != len(cold.Rows)-1 {
		t.Fatalf("post-Remove rows = %d, want %d", len(fresh.Rows), len(cold.Rows)-1)
	}
}

func TestCacheKeyedByQueryText(t *testing.T) {
	g := lineageGraph()
	execInfo(t, g, cacheQuery, 1)
	other := `SELECT ?e WHERE { ?e <` + exNS + `size> ?s . }`
	_, info := execInfo(t, g, other, 1)
	if info.CacheHit {
		t.Fatal("a different query hit the first query's cache entry")
	}
}

// bigDecisionGraph pads a graph well past minParallelScan with chains and
// two attribution families, so scans, paths, and UNION alternatives all
// have parallel-sized domains.
func bigDecisionGraph() *rdf.Graph {
	g := rdf.NewGraph()
	derived := rdf.IRI("http://www.w3.org/ns/prov#wasDerivedFrom")
	attr := rdf.IRI("http://www.w3.org/ns/prov#wasAttributedTo")
	for i := 0; i < 400; i++ {
		s := exIRI(fmt.Sprintf("f%d", i))
		g.Add(rdf.Triple{S: s, P: derived, O: exIRI(fmt.Sprintf("f%d", i/2))})
		g.Add(rdf.Triple{S: s, P: attr, O: exIRI([]string{"progA", "progB"}[i%2])})
		g.Add(rdf.Triple{S: s, P: exIRI("size"), O: rdf.Integer(int64(i % 91))})
	}
	return g
}

func decideFor(t *testing.T, g *rdf.Graph, query string, workers int) decision {
	t.Helper()
	q, err := Parse(query, testNS())
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	snap := g.Snapshot()
	return decideParallel(snap, Compile(snap, q), workers)
}

// TestNoSerialFallbackForUnionAndPaths pins the tentpole guarantee: UNION
// and property-path plans with parallel-sized domains decompose into tasks
// instead of falling back to serial.
func TestNoSerialFallbackForUnionAndPaths(t *testing.T) {
	g := bigDecisionGraph()
	cases := []struct {
		query    string
		minTasks int
	}{
		{`SELECT ?x WHERE { { ?x prov:wasAttributedTo ex:progA } UNION { ?x prov:wasAttributedTo ex:progB } }`, 2},
		{`SELECT ?s ?anc WHERE { ?s prov:wasDerivedFrom+ ?anc . }`, 1},
		{`SELECT ?s ?anc WHERE { ?s prov:wasDerivedFrom/prov:wasDerivedFrom ?anc . }`, 1},
		{`SELECT ?x ?s WHERE { { ?x prov:wasAttributedTo ex:progA } UNION { ?x prov:wasDerivedFrom+ ?s } }`, 2},
	}
	for _, c := range cases {
		dec := decideFor(t, g, c.query, 4)
		if dec.reason != "" {
			t.Errorf("%q fell back to serial: %s", c.query, dec.reason)
			continue
		}
		if len(dec.tasks) < c.minTasks {
			t.Errorf("%q decomposed into %d task(s), want >= %d", c.query, len(dec.tasks), c.minTasks)
		}
	}
}

// TestSerialReasonsNamed checks that every remaining serial case reports a
// specific, named reason (surfaced by provio-query -plan and the stderr
// stats line).
func TestSerialReasonsNamed(t *testing.T) {
	big := bigDecisionGraph()
	small := lineageGraph()
	cases := []struct {
		g     *rdf.Graph
		query string
		want  string
		wkrs  int
	}{
		{big, `SELECT ?e ?s WHERE { ?e ex:size ?s . }`, "workers <= 1", 1},
		{small, `SELECT ?e ?s WHERE { ?e ex:size ?s . }`, "below parallel threshold", 4},
		{big, `SELECT ?e WHERE { ?e ex:size ex:no-such-object . }`, "dead constant", 4},
	}
	for _, c := range cases {
		dec := decideFor(t, c.g, c.query, c.wkrs)
		if dec.reason == "" {
			t.Errorf("%q (workers=%d) did not stay serial", c.query, c.wkrs)
			continue
		}
		if !strings.Contains(dec.reason, c.want) {
			t.Errorf("%q: reason = %q, want it to mention %q", c.query, dec.reason, c.want)
		}
	}
}

// TestExplainWorkersShowsDecision: the EXPLAIN rendering ends with the
// parallel decision — tasks for parallel plans, the named reason otherwise.
func TestExplainWorkersShowsDecision(t *testing.T) {
	g := bigDecisionGraph()
	out, err := ExplainWorkers(g, `SELECT ?e ?s WHERE { ?e <`+exNS+`size> ?s . }`, nil, 4)
	if err != nil {
		t.Fatalf("ExplainWorkers: %v", err)
	}
	if !strings.Contains(out, "parallel:") || !strings.Contains(out, "task(s)") {
		t.Errorf("EXPLAIN missing parallel decision:\n%s", out)
	}
	out, err = ExplainWorkers(g, `SELECT ?e ?s WHERE { ?e <`+exNS+`size> ?s . }`, nil, 1)
	if err != nil {
		t.Fatalf("ExplainWorkers: %v", err)
	}
	if !strings.Contains(out, "serial") || !strings.Contains(out, "workers <= 1") {
		t.Errorf("EXPLAIN missing serial reason:\n%s", out)
	}
}
