package sparql

import "github.com/hpc-io/prov-io/internal/rdf"

// Query is a parsed SPARQL SELECT query.
type Query struct {
	Prefixes *rdf.Namespaces
	Distinct bool
	// Vars are the projected output names in SELECT order (without '?'),
	// including aggregate aliases. Empty means '*'.
	Vars []string
	// Aggs are the aggregate projections, in SELECT order. When Aggs or
	// GroupBy is non-empty the query is an aggregate query: solutions are
	// grouped by the GroupBy variables (one global group when GroupBy is
	// empty) and each group emits one output row.
	Aggs []Aggregate
	// GroupBy lists the GROUP BY variables in declaration order.
	GroupBy []string

	Where   *Group
	OrderBy []OrderKey
	Limit   int // -1 means no limit
	Offset  int
}

// AggFunc is an aggregate function.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the SPARQL spelling of the function.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	}
	return "AGG?"
}

// Aggregate is one (FUNC(?var) AS ?alias) projection.
type Aggregate struct {
	Func AggFunc
	// Var is the aggregated variable; Star marks COUNT(*).
	Var  string
	Star bool
	// Distinct marks FUNC(DISTINCT ?var).
	Distinct bool
	// As is the output alias.
	As string
}

// aggAliases returns the set of aggregate output aliases.
func (q *Query) aggAliases() map[string]bool {
	if len(q.Aggs) == 0 {
		return nil
	}
	set := make(map[string]bool, len(q.Aggs))
	for _, a := range q.Aggs {
		set[a.As] = true
	}
	return set
}

// isAggregate reports whether the query groups and aggregates solutions.
func (q *Query) isAggregate() bool { return len(q.Aggs) > 0 || len(q.GroupBy) > 0 }

// OrderKey is one ORDER BY sort key.
type OrderKey struct {
	Var  string
	Desc bool
}

// Group is a group graph pattern: a sequence of triple patterns, filters,
// and nested OPTIONAL/UNION groups, evaluated in order.
type Group struct {
	Elems []GroupElem
}

// GroupElem is one element of a group pattern.
type GroupElem interface{ groupElem() }

// TriplePattern matches triples; each position is a variable or a term, and
// the predicate may be a property path.
type TriplePattern struct {
	S, O NodePattern
	P    PathPattern
}

func (TriplePattern) groupElem() {}

// FilterElem is a FILTER constraint.
type FilterElem struct {
	Expr Expr
}

func (FilterElem) groupElem() {}

// OptionalElem is an OPTIONAL { ... } group.
type OptionalElem struct {
	Group *Group
}

func (OptionalElem) groupElem() {}

// UnionElem is { A } UNION { B } (possibly more alternatives).
type UnionElem struct {
	Alternatives []*Group
}

func (UnionElem) groupElem() {}

// NodePattern is a variable or a concrete term.
type NodePattern struct {
	Var  string // non-empty means variable
	Term rdf.Term
}

// IsVar reports whether the pattern is a variable.
func (n NodePattern) IsVar() bool { return n.Var != "" }

// PathMod is a property-path cardinality modifier.
type PathMod uint8

// Path modifiers.
const (
	PathOnce       PathMod = iota // exactly one step
	PathOneOrMore                 // +
	PathZeroOrMore                // *
	PathZeroOrOne                 // ?
)

// PathPattern is the predicate position: either a variable, or a sequence of
// path steps (a single step in the common case).
type PathPattern struct {
	Var   string
	Steps []PathStep
}

// IsVar reports whether the predicate is a variable.
func (p PathPattern) IsVar() bool { return p.Var != "" }

// PathStep is one step of a property path.
type PathStep struct {
	IRI     rdf.Term
	Mod     PathMod
	Inverse bool // ^iri traverses object→subject
}

// Expr is a FILTER expression node.
type Expr interface{ exprNode() }

// BinaryExpr applies Op to L and R.
type BinaryExpr struct {
	Op   string // "=", "!=", "<", ">", "<=", ">=", "&&", "||"
	L, R Expr
}

func (BinaryExpr) exprNode() {}

// NotExpr negates its operand.
type NotExpr struct{ X Expr }

func (NotExpr) exprNode() {}

// VarExpr references a variable binding.
type VarExpr struct{ Name string }

func (VarExpr) exprNode() {}

// TermExpr is a constant RDF term.
type TermExpr struct{ Term rdf.Term }

func (TermExpr) exprNode() {}

// RegexExpr is REGEX(expr, "pattern") with optional flags.
type RegexExpr struct {
	X       Expr
	Pattern string
	Flags   string
}

func (RegexExpr) exprNode() {}

// BoundExpr is BOUND(?v).
type BoundExpr struct{ Name string }

func (BoundExpr) exprNode() {}

// StrExpr is STR(expr): the string form of a term.
type StrExpr struct{ X Expr }

func (StrExpr) exprNode() {}

// StatementCount returns the number of triple-pattern statements in the
// query, the metric the paper's Table 5 reports per provenance need.
func (q *Query) StatementCount() int {
	if q.Where == nil {
		return 0
	}
	return countStatements(q.Where)
}

func countStatements(g *Group) int {
	n := 0
	for _, e := range g.Elems {
		switch e := e.(type) {
		case TriplePattern:
			n++
		case OptionalElem:
			n += countStatements(e.Group)
		case UnionElem:
			for _, alt := range e.Alternatives {
				n += countStatements(alt)
			}
		}
	}
	return n
}
