package sparql

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// The planner compiles a parsed Query against a concrete Source — a live
// graph or a pinned snapshot — into a Plan: every variable gets a fixed
// register slot, every pattern position is resolved to a dictionary ID (or a
// slot), and each basic graph pattern is join-ordered by index-cardinality
// estimates read from the source's maintained statistics (CountMatchIDs /
// PredStats / IndexStats).
// This replaces the static boundness heuristic the term-space evaluator
// used: "how many triples will this probe actually touch" beats "how many
// positions are constant" whenever predicates differ wildly in frequency,
// which provenance graphs — few relation predicates carrying most triples,
// many annotation predicates carrying few — guarantee.
//
// A Plan is tied to the source it was compiled against (the estimates and
// term IDs are source-specific) and is valid as long as no triples are
// removed; concurrent Adds only make estimates stale, never wrong. Compiling
// against a Snapshot sidesteps both caveats: the snapshot never changes.

// Plan is a compiled, EXPLAIN-able query plan.
type Plan struct {
	q *Query
	// vars lists every variable of the query in slot order; slots maps a
	// variable name to its register index in the executor's rows.
	vars  []string
	slots map[string]int
	// project lists the output variable names in order.
	project []string
	// projSlots are the register slots of project (-1 when the variable
	// never occurs in the WHERE clause and is therefore always unbound).
	projSlots []int
	// root is the compiled WHERE group.
	root *planGroup
	// graphLen records the graph size at compile time (shown by EXPLAIN).
	graphLen int
}

// planGroup is a compiled group graph pattern.
type planGroup struct {
	steps []planStep
}

// planStep is one executable step of a group.
type planStep interface{ planStep() }

// bgpStep is a basic graph pattern whose patterns run in planned order.
type bgpStep struct {
	patterns []compiledPattern
}

// filterStep applies a FILTER constraint.
type filterStep struct {
	expr Expr
}

// optionalStep is a compiled OPTIONAL group.
type optionalStep struct {
	group *planGroup
}

// unionStep is a compiled UNION of alternatives.
type unionStep struct {
	alts []*planGroup
}

func (*bgpStep) planStep()      {}
func (*filterStep) planStep()   {}
func (*optionalStep) planStep() {}
func (*unionStep) planStep()    {}

// posRef is a compiled subject/object position: a register slot for a
// variable, or a constant resolved to its dictionary ID (rdf.NoID when the
// constant is not interned in the graph — such a pattern matches nothing).
type posRef struct {
	slot int // >= 0: variable slot; -1: constant
	id   rdf.ID
}

func (p posRef) isVar() bool { return p.slot >= 0 }

// predRef is a compiled predicate position.
type predRef struct {
	slot   int  // >= 0: variable slot; -1 otherwise
	simple bool // single forward PathOnce step (plain predicate)
	id     rdf.ID
	// steps/stepIDs hold the property path when not simple; stepIDs[i] is
	// the dictionary ID of steps[i].IRI (rdf.NoID when absent).
	steps   []PathStep
	stepIDs []rdf.ID
}

func (p predRef) isVar() bool  { return p.slot >= 0 }
func (p predRef) isPath() bool { return p.slot < 0 && !p.simple }

// compiledPattern is one triple pattern with its plan annotations.
type compiledPattern struct {
	src  TriplePattern
	s, o posRef
	p    predRef
	// est is the planner's cardinality estimate at the position the
	// pattern was placed; approx marks estimates scaled by bound-variable
	// divisors (exact index counts otherwise). idx names the index the
	// executor will probe.
	est    int
	approx bool
	idx    string
}

// Compile builds the plan for q against a source (live graph or snapshot).
func Compile(g Source, q *Query) *Plan {
	set := map[string]struct{}{}
	collectVars(q.Where, set)
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	slots := make(map[string]int, len(vars))
	for i, v := range vars {
		slots[v] = i
	}

	p := &Plan{
		q:        q,
		vars:     vars,
		slots:    slots,
		project:  projectedVars(q),
		graphLen: g.Len(),
	}
	p.projSlots = make([]int, len(p.project))
	for i, v := range p.project {
		if s, ok := slots[v]; ok {
			p.projSlots[i] = s
		} else {
			p.projSlots[i] = -1
		}
	}
	bound := map[int]bool{}
	p.root = compileGroup(g, q.Where, slots, bound)
	return p
}

func compileGroup(g Source, grp *Group, slots map[string]int, bound map[int]bool) *planGroup {
	out := &planGroup{}
	var bgp []compiledPattern
	flush := func() {
		if len(bgp) > 0 {
			out.steps = append(out.steps, &bgpStep{patterns: orderBGP(g, bgp, bound)})
			bgp = nil
		}
	}
	for _, e := range grp.Elems {
		switch e := e.(type) {
		case TriplePattern:
			bgp = append(bgp, compilePattern(g, e, slots))
		case FilterElem:
			flush()
			out.steps = append(out.steps, &filterStep{expr: e.Expr})
		case OptionalElem:
			flush()
			// Optional vars stay out of the outer bound set: at runtime
			// they may be unbound, so later estimates cannot rely on them.
			sub := compileGroup(g, e.Group, slots, copyBoundSet(bound))
			out.steps = append(out.steps, &optionalStep{group: sub})
		case UnionElem:
			flush()
			us := &unionStep{}
			for _, alt := range e.Alternatives {
				us.alts = append(us.alts, compileGroup(g, alt, slots, copyBoundSet(bound)))
			}
			out.steps = append(out.steps, us)
		}
	}
	flush()
	return out
}

func copyBoundSet(b map[int]bool) map[int]bool {
	nb := make(map[int]bool, len(b))
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

func compilePattern(g Source, tp TriplePattern, slots map[string]int) compiledPattern {
	cp := compiledPattern{src: tp}
	cp.s = compilePos(g, tp.S, slots)
	cp.o = compilePos(g, tp.O, slots)
	switch {
	case tp.P.IsVar():
		cp.p = predRef{slot: slots[tp.P.Var]}
	case len(tp.P.Steps) == 1 && tp.P.Steps[0].Mod == PathOnce && !tp.P.Steps[0].Inverse:
		id, ok := g.TermID(tp.P.Steps[0].IRI)
		if !ok {
			id = rdf.NoID
		}
		cp.p = predRef{slot: -1, simple: true, id: id}
	default:
		pr := predRef{slot: -1, steps: tp.P.Steps}
		pr.stepIDs = make([]rdf.ID, len(tp.P.Steps))
		for i, st := range tp.P.Steps {
			id, ok := g.TermID(st.IRI)
			if !ok {
				id = rdf.NoID
			}
			pr.stepIDs[i] = id
		}
		cp.p = pr
	}
	return cp
}

func compilePos(g Source, n NodePattern, slots map[string]int) posRef {
	if n.IsVar() {
		return posRef{slot: slots[n.Var]}
	}
	id, ok := g.TermID(n.Term)
	if !ok {
		id = rdf.NoID
	}
	return posRef{slot: -1, id: id}
}

// orderBGP greedily orders a basic graph pattern by cardinality estimate:
// at each step the remaining pattern with the smallest estimated result
// under the current bound-variable set runs next (ties resolve to textual
// order). Estimates are stamped onto the returned patterns for EXPLAIN.
func orderBGP(g Source, patterns []compiledPattern, bound map[int]bool) []compiledPattern {
	remaining := append([]compiledPattern(nil), patterns...)
	out := make([]compiledPattern, 0, len(patterns))
	for len(remaining) > 0 {
		best := 0
		bestEst, bestApprox, bestIdx := estimatePattern(g, remaining[0], bound)
		for i := 1; i < len(remaining); i++ {
			est, approx, idx := estimatePattern(g, remaining[i], bound)
			if est < bestEst {
				best, bestEst, bestApprox, bestIdx = i, est, approx, idx
			}
		}
		cp := remaining[best]
		cp.est, cp.approx, cp.idx = bestEst, bestApprox, bestIdx
		out = append(out, cp)
		remaining = append(remaining[:best], remaining[best+1:]...)
		markSlotsBound(cp, bound)
	}
	return out
}

func markSlotsBound(cp compiledPattern, bound map[int]bool) {
	if cp.s.isVar() {
		bound[cp.s.slot] = true
	}
	if cp.p.isVar() {
		bound[cp.p.slot] = true
	}
	if cp.o.isVar() {
		bound[cp.o.slot] = true
	}
}

// estimatePattern returns the planner's cardinality estimate for cp under
// the bound-variable set, whether the estimate was scaled by bound-variable
// divisors (approx), and the index the executor will probe.
//
// The base is an exact index count with constants resolved (CountMatchIDs);
// each position held by an already-bound variable then divides the base by
// the relevant distinct-value count — subjects/objects of the predicate
// when it is constant (PredStats), the graph-wide distinct counts otherwise
// (IndexStats) — because one concrete value selects on average base/distinct
// of the matching triples.
func estimatePattern(g Source, cp compiledPattern, bound map[int]bool) (est int, approx bool, idx string) {
	sBound := cp.s.isVar() && bound[cp.s.slot]
	oBound := cp.o.isVar() && bound[cp.o.slot]
	pBound := cp.p.isVar() && bound[cp.p.slot]

	sKnown := !cp.s.isVar() || sBound
	oKnown := !cp.o.isVar() || oBound
	pKnown := !cp.p.isVar() || pBound

	switch {
	case cp.p.isPath():
		idx = "PATH"
	case sKnown:
		idx = "SPO"
	case pKnown:
		idx = "POS"
	case oKnown:
		idx = "OSP"
	default:
		idx = "SCAN"
	}

	// Pattern positions for the base count: constants only.
	s0, p0, o0 := rdf.NoID, rdf.NoID, rdf.NoID
	if !cp.s.isVar() {
		if cp.s.id == rdf.NoID {
			return 0, false, idx
		}
		s0 = cp.s.id
	}
	if !cp.o.isVar() {
		if cp.o.id == rdf.NoID {
			return 0, false, idx
		}
		o0 = cp.o.id
	}
	predConst := rdf.NoID
	switch {
	case cp.p.isVar():
		// wildcard
	case cp.p.simple:
		if cp.p.id == rdf.NoID {
			return 0, false, idx
		}
		p0, predConst = cp.p.id, cp.p.id
	default:
		// Property path: estimate from the first step's predicate count;
		// closure modifiers can expand beyond it, but it still ranks the
		// pattern against its peers.
		first := cp.p.stepIDs[0]
		if first == rdf.NoID {
			if cp.p.steps[0].Mod == PathZeroOrOne || cp.p.steps[0].Mod == PathZeroOrMore {
				return 1, true, idx // zero-length hop survives an absent predicate
			}
			return 0, false, idx
		}
		p0, predConst = first, first
		// The path's own endpoints don't map onto a single index probe;
		// count the first step only.
		s0, o0 = rdf.NoID, rdf.NoID
	}

	est = g.CountMatchIDs(s0, p0, o0)
	if est == 0 {
		return 0, false, idx
	}

	div := func(d int) {
		if d < 1 {
			d = 1
		}
		est = (est + d - 1) / d
		approx = true
	}
	gSub, gPred, gObj := 0, 0, 0
	needGlobal := (sBound && predConst == rdf.NoID) || (oBound && predConst == rdf.NoID) || pBound
	if needGlobal {
		gSub, gPred, gObj = g.IndexStats()
	}
	var pTriples, pSubjects, pObjects int
	if predConst != rdf.NoID && (sBound || oBound) {
		pTriples, pSubjects, pObjects = g.PredStats(predConst)
		_ = pTriples
	}
	if sBound {
		if predConst != rdf.NoID {
			div(pSubjects)
		} else {
			div(gSub)
		}
	}
	if oBound {
		if predConst != rdf.NoID {
			div(pObjects)
		} else {
			div(gObj)
		}
	}
	if pBound {
		div(gPred)
	}
	return est, approx, idx
}

// ---- EXPLAIN rendering ----

// String renders the plan in EXPLAIN form: the slot table, each group step,
// and for basic graph patterns the chosen join order with per-pattern
// cardinality estimates and probe indexes.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "QUERY PLAN (graph: %d triples)\n", p.graphLen)
	if len(p.vars) > 0 {
		b.WriteString("slots:")
		for i, v := range p.vars {
			fmt.Fprintf(&b, " ?%s=%d", v, i)
		}
		b.WriteByte('\n')
	}
	p.writeGroup(&b, p.root, 0)
	b.WriteString("project:")
	if p.q.CountAs != "" {
		what := "*"
		if !p.q.CountAll {
			what = "?" + p.q.Count
		}
		fmt.Fprintf(&b, " COUNT(%s) AS ?%s", what, p.q.CountAs)
	} else {
		for _, v := range p.project {
			b.WriteString(" ?" + v)
		}
	}
	b.WriteByte('\n')
	var mods []string
	if p.q.Distinct {
		mods = append(mods, "DISTINCT")
	}
	for _, k := range p.q.OrderBy {
		dir := "ASC"
		if k.Desc {
			dir = "DESC"
		}
		mods = append(mods, fmt.Sprintf("ORDER BY %s(?%s)", dir, k.Var))
	}
	if p.q.Offset > 0 {
		mods = append(mods, fmt.Sprintf("OFFSET %d", p.q.Offset))
	}
	if p.q.Limit >= 0 {
		mods = append(mods, fmt.Sprintf("LIMIT %d", p.q.Limit))
	}
	if len(mods) > 0 {
		b.WriteString("modifiers: " + strings.Join(mods, " ") + "\n")
	}
	return b.String()
}

func (p *Plan) writeGroup(b *strings.Builder, grp *planGroup, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, st := range grp.steps {
		switch st := st.(type) {
		case *bgpStep:
			fmt.Fprintf(b, "%sBGP (%d pattern(s), cardinality join order):\n", ind, len(st.patterns))
			for i, cp := range st.patterns {
				rel := "="
				if cp.approx {
					rel = "~"
				}
				fmt.Fprintf(b, "%s  %d. %-44s est%s%-8d via %s\n",
					ind, i+1, p.patternString(cp.src), rel, cp.est, cp.idx)
			}
		case *filterStep:
			fmt.Fprintf(b, "%sFILTER %s\n", ind, exprString(st.expr))
		case *optionalStep:
			fmt.Fprintf(b, "%sOPTIONAL:\n", ind)
			p.writeGroup(b, st.group, depth+1)
		case *unionStep:
			fmt.Fprintf(b, "%sUNION (%d alternatives):\n", ind, len(st.alts))
			for i, alt := range st.alts {
				fmt.Fprintf(b, "%s  alt %d:\n", ind, i+1)
				p.writeGroup(b, alt, depth+2)
			}
		}
	}
}

func (p *Plan) patternString(tp TriplePattern) string {
	return p.nodeString(tp.S) + " " + p.pathString(tp.P) + " " + p.nodeString(tp.O)
}

func (p *Plan) nodeString(n NodePattern) string {
	if n.IsVar() {
		return "?" + n.Var
	}
	return p.termString(n.Term)
}

func (p *Plan) termString(t rdf.Term) string {
	if t.IsIRI() && p.q.Prefixes != nil {
		if c, ok := p.q.Prefixes.Shrink(t.Value); ok {
			return c
		}
	}
	return t.String()
}

func (p *Plan) pathString(pp PathPattern) string {
	if pp.IsVar() {
		return "?" + pp.Var
	}
	parts := make([]string, len(pp.Steps))
	for i, st := range pp.Steps {
		s := p.termString(st.IRI)
		if st.Inverse {
			s = "^" + s
		}
		switch st.Mod {
		case PathOneOrMore:
			s += "+"
		case PathZeroOrMore:
			s += "*"
		case PathZeroOrOne:
			s += "?"
		}
		parts[i] = s
	}
	return strings.Join(parts, "/")
}

func exprString(e Expr) string {
	switch e := e.(type) {
	case VarExpr:
		return "?" + e.Name
	case TermExpr:
		return e.Term.String()
	case BoundExpr:
		return "BOUND(?" + e.Name + ")"
	case StrExpr:
		return "STR(" + exprString(e.X) + ")"
	case NotExpr:
		return "!(" + exprString(e.X) + ")"
	case RegexExpr:
		return fmt.Sprintf("REGEX(%s, %q)", exprString(e.X), e.Pattern)
	case BinaryExpr:
		return "(" + exprString(e.L) + " " + e.Op + " " + exprString(e.R) + ")"
	}
	return "?expr"
}
