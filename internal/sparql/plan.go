package sparql

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// The planner compiles a parsed Query against a concrete Source — a live
// graph or a pinned snapshot — into a Plan: every variable gets a fixed
// register slot, every pattern position is resolved to a dictionary ID (or a
// slot), and each basic graph pattern is join-ordered by index-cardinality
// estimates read from the source's maintained statistics (CountMatchIDs /
// PredStats / IndexStats).
//
// The compiled form is a single pipeline of physical operators (scan, path,
// filter, optional, union); OPTIONAL and UNION hold nested pipelines. Both
// the serial executor (exec.go) and the morsel-parallel executor
// (parallel.go) run this one tree — the parallel executor merely partitions
// the leading operator's domain into morsels and runs the identical
// remainder pipeline per morsel, so there is exactly one implementation of
// every operator.
//
// A Plan is tied to the source it was compiled against (the estimates and
// term IDs are source-specific) and is valid as long as no triples are
// removed; concurrent Adds only make estimates stale, never wrong. Compiling
// against a Snapshot sidesteps both caveats: the snapshot never changes.

// Plan is a compiled, EXPLAIN-able query plan.
type Plan struct {
	q *Query
	// vars lists every variable of the query in slot order; slots maps a
	// variable name to its register index in the executor's rows.
	vars  []string
	slots map[string]int
	// project lists the output column names in order (aggregate aliases
	// included).
	project []string
	// projSlots are the register slots of project (-1 when the name never
	// occurs in the WHERE clause — always unbound — or is an aggregate
	// alias).
	projSlots []int
	// ops is the compiled WHERE pipeline.
	ops []physOp
	// Aggregate metadata; aggCols is nil for plain queries. aggCols[i]
	// describes output column i, groupSlots are the GROUP BY registers, and
	// aggSpecs the compiled aggregate projections.
	aggCols    []aggCol
	groupSlots []int
	aggSpecs   []aggSpec
	// graphLen records the graph size at compile time (shown by EXPLAIN).
	graphLen int
}

// physOp is one physical operator of a compiled pipeline. run consumes the
// input rows and produces the operator's output rows (see exec.go for the
// implementations shared by the serial and parallel executors).
type physOp interface {
	run(e *executor, in []idRow) ([]idRow, error)
}

// scanOp joins one index-backed triple pattern against every input row.
type scanOp struct{ cp compiledPattern }

// pathOp evaluates a property-path pattern (closure walk) per input row.
type pathOp struct{ cp compiledPattern }

// filterOp applies a FILTER constraint.
type filterOp struct{ expr Expr }

// optionalOp left-joins a nested pipeline per input row.
type optionalOp struct{ ops []physOp }

// unionOp concatenates the outputs of alternative pipelines per input row.
type unionOp struct{ alts [][]physOp }

// aggCol describes one output column of an aggregate query: a GROUP BY
// variable register (slot >= 0) or an aggregate (agg indexes aggSpecs).
type aggCol struct {
	slot int
	agg  int
}

// aggSpec is one compiled aggregate projection. distinct is the effective
// flag: an explicit FUNC(DISTINCT ?v), or the legacy SELECT DISTINCT
// (COUNT(?v) AS ?n) form, which counts distinct bound values.
type aggSpec struct {
	fn       AggFunc
	slot     int // register of the aggregated variable (-1 for '*' or absent)
	star     bool
	distinct bool
}

// posRef is a compiled subject/object position: a register slot for a
// variable, or a constant resolved to its dictionary ID (rdf.NoID when the
// constant is not interned in the graph — such a pattern matches nothing).
type posRef struct {
	slot int // >= 0: variable slot; -1: constant
	id   rdf.ID
}

func (p posRef) isVar() bool { return p.slot >= 0 }

// predRef is a compiled predicate position.
type predRef struct {
	slot   int  // >= 0: variable slot; -1 otherwise
	simple bool // single forward PathOnce step (plain predicate)
	id     rdf.ID
	// steps/stepIDs hold the property path when not simple; stepIDs[i] is
	// the dictionary ID of steps[i].IRI (rdf.NoID when absent).
	steps   []PathStep
	stepIDs []rdf.ID
}

func (p predRef) isVar() bool  { return p.slot >= 0 }
func (p predRef) isPath() bool { return p.slot < 0 && !p.simple }

// compiledPattern is one triple pattern with its plan annotations.
type compiledPattern struct {
	src  TriplePattern
	s, o posRef
	p    predRef
	// est is the planner's cardinality estimate at the position the
	// pattern was placed; approx marks estimates scaled by bound-variable
	// divisors (exact index counts otherwise). idx names the index the
	// executor will probe.
	est    int
	approx bool
	idx    string
}

// Compile builds the plan for q against a source (live graph or snapshot).
func Compile(g Source, q *Query) *Plan {
	set := map[string]struct{}{}
	collectVars(q.Where, set)
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	slots := make(map[string]int, len(vars))
	for i, v := range vars {
		slots[v] = i
	}

	p := &Plan{
		q:        q,
		vars:     vars,
		slots:    slots,
		project:  projectedVars(q),
		graphLen: g.Len(),
	}
	p.projSlots = make([]int, len(p.project))
	for i, v := range p.project {
		if s, ok := slots[v]; ok {
			p.projSlots[i] = s
		} else {
			p.projSlots[i] = -1
		}
	}
	p.compileAggregates()
	bound := map[int]bool{}
	p.ops = compileGroup(g, q.Where, slots, bound)
	return p
}

// compileAggregates resolves the aggregate metadata: the GROUP BY registers,
// one aggSpec per aggregate, and the per-output-column routing table.
func (p *Plan) compileAggregates() {
	q := p.q
	if !q.isAggregate() {
		return
	}
	p.groupSlots = make([]int, len(q.GroupBy))
	for i, v := range q.GroupBy {
		if s, ok := p.slots[v]; ok {
			p.groupSlots[i] = s
		} else {
			p.groupSlots[i] = -1
		}
	}
	p.aggSpecs = make([]aggSpec, len(q.Aggs))
	aliasIdx := make(map[string]int, len(q.Aggs))
	for i, a := range q.Aggs {
		slot := -1
		if !a.Star {
			if s, ok := p.slots[a.Var]; ok {
				slot = s
			}
		}
		p.aggSpecs[i] = aggSpec{
			fn:       a.Func,
			slot:     slot,
			star:     a.Star,
			distinct: a.Distinct || (q.Distinct && a.Func == AggCount && !a.Star),
		}
		if _, dup := aliasIdx[a.As]; !dup {
			aliasIdx[a.As] = i
		}
	}
	p.aggCols = make([]aggCol, len(p.project))
	for i, v := range p.project {
		if j, ok := aliasIdx[v]; ok {
			p.aggCols[i] = aggCol{slot: -1, agg: j}
		} else {
			p.aggCols[i] = aggCol{slot: p.projSlots[i], agg: -1}
		}
	}
}

// compileGroup compiles one group graph pattern into a pipeline. Consecutive
// triple patterns form a basic graph pattern: they are join-order
// independent, so the batch is cardinality-ordered before each pattern
// becomes its own scan (or path) operator.
func compileGroup(g Source, grp *Group, slots map[string]int, bound map[int]bool) []physOp {
	var ops []physOp
	var bgp []compiledPattern
	flush := func() {
		if len(bgp) == 0 {
			return
		}
		for _, cp := range orderBGP(g, bgp, bound) {
			if cp.p.isPath() {
				ops = append(ops, &pathOp{cp: cp})
			} else {
				ops = append(ops, &scanOp{cp: cp})
			}
		}
		bgp = nil
	}
	for _, e := range grp.Elems {
		switch e := e.(type) {
		case TriplePattern:
			bgp = append(bgp, compilePattern(g, e, slots))
		case FilterElem:
			flush()
			ops = append(ops, &filterOp{expr: e.Expr})
		case OptionalElem:
			flush()
			// Optional vars stay out of the outer bound set: at runtime
			// they may be unbound, so later estimates cannot rely on them.
			sub := compileGroup(g, e.Group, slots, copyBoundSet(bound))
			ops = append(ops, &optionalOp{ops: sub})
		case UnionElem:
			flush()
			u := &unionOp{}
			for _, alt := range e.Alternatives {
				u.alts = append(u.alts, compileGroup(g, alt, slots, copyBoundSet(bound)))
			}
			ops = append(ops, u)
		}
	}
	flush()
	return ops
}

func copyBoundSet(b map[int]bool) map[int]bool {
	nb := make(map[int]bool, len(b))
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

func compilePattern(g Source, tp TriplePattern, slots map[string]int) compiledPattern {
	cp := compiledPattern{src: tp}
	cp.s = compilePos(g, tp.S, slots)
	cp.o = compilePos(g, tp.O, slots)
	switch {
	case tp.P.IsVar():
		cp.p = predRef{slot: slots[tp.P.Var]}
	case len(tp.P.Steps) == 1 && tp.P.Steps[0].Mod == PathOnce && !tp.P.Steps[0].Inverse:
		id, ok := g.TermID(tp.P.Steps[0].IRI)
		if !ok {
			id = rdf.NoID
		}
		cp.p = predRef{slot: -1, simple: true, id: id}
	default:
		pr := predRef{slot: -1, steps: tp.P.Steps}
		pr.stepIDs = make([]rdf.ID, len(tp.P.Steps))
		for i, st := range tp.P.Steps {
			id, ok := g.TermID(st.IRI)
			if !ok {
				id = rdf.NoID
			}
			pr.stepIDs[i] = id
		}
		cp.p = pr
	}
	return cp
}

func compilePos(g Source, n NodePattern, slots map[string]int) posRef {
	if n.IsVar() {
		return posRef{slot: slots[n.Var]}
	}
	id, ok := g.TermID(n.Term)
	if !ok {
		id = rdf.NoID
	}
	return posRef{slot: -1, id: id}
}

// orderBGP greedily orders a basic graph pattern by cardinality estimate:
// at each step the remaining pattern with the smallest estimated result
// under the current bound-variable set runs next (ties resolve to textual
// order). Estimates are stamped onto the returned patterns for EXPLAIN.
func orderBGP(g Source, patterns []compiledPattern, bound map[int]bool) []compiledPattern {
	remaining := append([]compiledPattern(nil), patterns...)
	out := make([]compiledPattern, 0, len(patterns))
	for len(remaining) > 0 {
		best := 0
		bestEst, bestApprox, bestIdx := estimatePattern(g, remaining[0], bound)
		for i := 1; i < len(remaining); i++ {
			est, approx, idx := estimatePattern(g, remaining[i], bound)
			if est < bestEst {
				best, bestEst, bestApprox, bestIdx = i, est, approx, idx
			}
		}
		cp := remaining[best]
		cp.est, cp.approx, cp.idx = bestEst, bestApprox, bestIdx
		out = append(out, cp)
		remaining = append(remaining[:best], remaining[best+1:]...)
		markSlotsBound(cp, bound)
	}
	return out
}

func markSlotsBound(cp compiledPattern, bound map[int]bool) {
	if cp.s.isVar() {
		bound[cp.s.slot] = true
	}
	if cp.p.isVar() {
		bound[cp.p.slot] = true
	}
	if cp.o.isVar() {
		bound[cp.o.slot] = true
	}
}

// estimatePattern returns the planner's cardinality estimate for cp under
// the bound-variable set, whether the estimate was scaled by bound-variable
// divisors (approx), and the index the executor will probe.
//
// The base is an exact index count with constants resolved (CountMatchIDs);
// each position held by an already-bound variable then divides the base by
// the relevant distinct-value count — subjects/objects of the predicate
// when it is constant (PredStats), the graph-wide distinct counts otherwise
// (IndexStats) — because one concrete value selects on average base/distinct
// of the matching triples.
func estimatePattern(g Source, cp compiledPattern, bound map[int]bool) (est int, approx bool, idx string) {
	sBound := cp.s.isVar() && bound[cp.s.slot]
	oBound := cp.o.isVar() && bound[cp.o.slot]
	pBound := cp.p.isVar() && bound[cp.p.slot]

	sKnown := !cp.s.isVar() || sBound
	oKnown := !cp.o.isVar() || oBound
	pKnown := !cp.p.isVar() || pBound

	switch {
	case cp.p.isPath():
		idx = "PATH"
	case sKnown:
		idx = "SPO"
	case pKnown:
		idx = "POS"
	case oKnown:
		idx = "OSP"
	default:
		idx = "SCAN"
	}

	// Pattern positions for the base count: constants only.
	s0, p0, o0 := rdf.NoID, rdf.NoID, rdf.NoID
	if !cp.s.isVar() {
		if cp.s.id == rdf.NoID {
			return 0, false, idx
		}
		s0 = cp.s.id
	}
	if !cp.o.isVar() {
		if cp.o.id == rdf.NoID {
			return 0, false, idx
		}
		o0 = cp.o.id
	}
	predConst := rdf.NoID
	switch {
	case cp.p.isVar():
		// wildcard
	case cp.p.simple:
		if cp.p.id == rdf.NoID {
			return 0, false, idx
		}
		p0, predConst = cp.p.id, cp.p.id
	default:
		// Property path: estimate from the first step's predicate count;
		// closure modifiers can expand beyond it, but it still ranks the
		// pattern against its peers.
		first := cp.p.stepIDs[0]
		if first == rdf.NoID {
			if cp.p.steps[0].Mod == PathZeroOrOne || cp.p.steps[0].Mod == PathZeroOrMore {
				return 1, true, idx // zero-length hop survives an absent predicate
			}
			return 0, false, idx
		}
		p0, predConst = first, first
		// The path's own endpoints don't map onto a single index probe;
		// count the first step only.
		s0, o0 = rdf.NoID, rdf.NoID
	}

	est = g.CountMatchIDs(s0, p0, o0)
	if est == 0 {
		return 0, false, idx
	}

	div := func(d int) {
		if d < 1 {
			d = 1
		}
		est = (est + d - 1) / d
		approx = true
	}
	gSub, gPred, gObj := 0, 0, 0
	needGlobal := (sBound && predConst == rdf.NoID) || (oBound && predConst == rdf.NoID) || pBound
	if needGlobal {
		gSub, gPred, gObj = g.IndexStats()
	}
	var pTriples, pSubjects, pObjects int
	if predConst != rdf.NoID && (sBound || oBound) {
		pTriples, pSubjects, pObjects = g.PredStats(predConst)
		_ = pTriples
	}
	if sBound {
		if predConst != rdf.NoID {
			div(pSubjects)
		} else {
			div(gSub)
		}
	}
	if oBound {
		if predConst != rdf.NoID {
			div(pObjects)
		} else {
			div(gObj)
		}
	}
	if pBound {
		div(gPred)
	}
	return est, approx, idx
}

// ---- EXPLAIN rendering ----

// String renders the plan in EXPLAIN form: the slot table, the operator
// pipeline with per-pattern cardinality estimates and probe indexes, and the
// projection/modifier tail.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "QUERY PLAN (graph: %d triples)\n", p.graphLen)
	if len(p.vars) > 0 {
		b.WriteString("slots:")
		for i, v := range p.vars {
			fmt.Fprintf(&b, " ?%s=%d", v, i)
		}
		b.WriteByte('\n')
	}
	p.writeOps(&b, p.ops, 0)
	b.WriteString("project:")
	for i, v := range p.project {
		if p.aggCols != nil && p.aggCols[i].agg >= 0 {
			b.WriteString(" (" + p.aggString(p.q.Aggs[p.aggCols[i].agg]) + ")")
		} else {
			b.WriteString(" ?" + v)
		}
	}
	b.WriteByte('\n')
	if len(p.q.GroupBy) > 0 {
		b.WriteString("group by:")
		for _, v := range p.q.GroupBy {
			b.WriteString(" ?" + v)
		}
		b.WriteByte('\n')
	}
	var mods []string
	if p.q.Distinct {
		mods = append(mods, "DISTINCT")
	}
	for _, k := range p.q.OrderBy {
		dir := "ASC"
		if k.Desc {
			dir = "DESC"
		}
		mods = append(mods, fmt.Sprintf("ORDER BY %s(?%s)", dir, k.Var))
	}
	if p.q.Offset > 0 {
		mods = append(mods, fmt.Sprintf("OFFSET %d", p.q.Offset))
	}
	if p.q.Limit >= 0 {
		mods = append(mods, fmt.Sprintf("LIMIT %d", p.q.Limit))
	}
	if len(mods) > 0 {
		b.WriteString("modifiers: " + strings.Join(mods, " ") + "\n")
	}
	return b.String()
}

func (p *Plan) aggString(a Aggregate) string {
	what := "?" + a.Var
	if a.Star {
		what = "*"
	}
	if a.Distinct {
		what = "DISTINCT " + what
	}
	return fmt.Sprintf("%s(%s) AS ?%s", a.Func, what, a.As)
}

func (p *Plan) writeOps(b *strings.Builder, ops []physOp, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, op := range ops {
		switch op := op.(type) {
		case *scanOp:
			rel := "="
			if op.cp.approx {
				rel = "~"
			}
			fmt.Fprintf(b, "%sSCAN %-44s est%s%-8d via %s\n",
				ind, p.patternString(op.cp.src), rel, op.cp.est, op.cp.idx)
		case *pathOp:
			rel := "="
			if op.cp.approx {
				rel = "~"
			}
			fmt.Fprintf(b, "%sPATH %-44s est%s%-8d via %s\n",
				ind, p.patternString(op.cp.src), rel, op.cp.est, op.cp.idx)
		case *filterOp:
			fmt.Fprintf(b, "%sFILTER %s\n", ind, exprString(op.expr))
		case *optionalOp:
			fmt.Fprintf(b, "%sOPTIONAL:\n", ind)
			p.writeOps(b, op.ops, depth+1)
		case *unionOp:
			fmt.Fprintf(b, "%sUNION (%d alternatives):\n", ind, len(op.alts))
			for i, alt := range op.alts {
				fmt.Fprintf(b, "%s  alt %d:\n", ind, i+1)
				p.writeOps(b, alt, depth+2)
			}
		}
	}
}

func (p *Plan) patternString(tp TriplePattern) string {
	return p.nodeString(tp.S) + " " + p.pathString(tp.P) + " " + p.nodeString(tp.O)
}

func (p *Plan) nodeString(n NodePattern) string {
	if n.IsVar() {
		return "?" + n.Var
	}
	return p.termString(n.Term)
}

func (p *Plan) termString(t rdf.Term) string {
	if t.IsIRI() && p.q.Prefixes != nil {
		if c, ok := p.q.Prefixes.Shrink(t.Value); ok {
			return c
		}
	}
	return t.String()
}

func (p *Plan) pathString(pp PathPattern) string {
	if pp.IsVar() {
		return "?" + pp.Var
	}
	parts := make([]string, len(pp.Steps))
	for i, st := range pp.Steps {
		s := p.termString(st.IRI)
		if st.Inverse {
			s = "^" + s
		}
		switch st.Mod {
		case PathOneOrMore:
			s += "+"
		case PathZeroOrMore:
			s += "*"
		case PathZeroOrOne:
			s += "?"
		}
		parts[i] = s
	}
	return strings.Join(parts, "/")
}

func exprString(e Expr) string {
	switch e := e.(type) {
	case VarExpr:
		return "?" + e.Name
	case TermExpr:
		return e.Term.String()
	case BoundExpr:
		return "BOUND(?" + e.Name + ")"
	case StrExpr:
		return "STR(" + exprString(e.X) + ")"
	case NotExpr:
		return "!(" + exprString(e.X) + ")"
	case RegexExpr:
		return fmt.Sprintf("REGEX(%s, %q)", exprString(e.X), e.Pattern)
	case BinaryExpr:
		return "(" + exprString(e.L) + " " + e.Op + " " + exprString(e.R) + ")"
	}
	return "?expr"
}
