package sparql

import (
	"sort"
	"strings"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// This file preserves the term-space evaluator that predates the ID-space
// planner/executor split. It materializes a map[string]rdf.Term binding per
// candidate row and probes the graph through ForEachMatch, rehydrating every
// matched triple into full Terms. It is kept verbatim as:
//
//   - the baseline of the abl-query ablation (ID-space vs term-space), and
//   - the oracle of the planner parity tests: EvalLegacyNaive evaluates
//     basic graph patterns in textual left-to-right order with no
//     reordering, so any planner bug that changes the solution multiset
//     shows up against it.

// EvalLegacy evaluates a parsed query with the term-space evaluator, using
// the static greedy selectivity heuristic for BGP join order.
func EvalLegacy(g *rdf.Graph, q *Query) (*Result, error) {
	return evalLegacy(g, q, true)
}

// EvalLegacyNaive evaluates a parsed query with the term-space evaluator in
// naive textual order: basic graph patterns run left-to-right exactly as
// written. Join order is a pure optimization, so the solution multiset must
// equal Eval's for every query.
func EvalLegacyNaive(g *rdf.Graph, q *Query) (*Result, error) {
	return evalLegacy(g, q, false)
}

func evalLegacy(g *rdf.Graph, q *Query, reorder bool) (*Result, error) {
	bindings, err := evalGroupTerms(g, q.Where, []Binding{{}}, reorder)
	if err != nil {
		return nil, err
	}

	// GROUP BY / aggregate projections collapse the solution sequence to one
	// row per group through the shared aggregate arithmetic (foldNumeric,
	// compareTerms), so this oracle stays bit-identical to the ID-space
	// engines.
	if q.isAggregate() {
		return legacyAggregate(q, bindings), nil
	}

	vars := projectedVars(q)

	rows := make([]Binding, 0, len(bindings))
	for _, b := range bindings {
		row := make(Binding, len(vars))
		for _, v := range vars {
			if t, ok := b[v]; ok {
				row[v] = t
			}
		}
		rows = append(rows, row)
	}
	// The finish tail (DISTINCT, total-order sort, OFFSET/LIMIT) is shared
	// with the ID-space executor so the two cannot diverge.
	return finishTermRows(q, vars, rows), nil
}

// legacyAggState accumulates one aggregate over one group in term space.
type legacyAggState struct {
	count int64
	seen  map[string]struct{} // DISTINCT filter, keyed by term string
	vals  []rdf.Term          // SUM/AVG operands, folded at the end
	best  rdf.Term            // MIN/MAX running extreme
	has   bool
}

// legacyAggGroup is one GROUP BY bucket: a representative binding for the
// grouping columns plus per-aggregate state.
type legacyAggGroup struct {
	rep  Binding
	aggs []legacyAggState
}

// legacyAggregate is the term-space mirror of the executor's aggregate
// finisher. The group key concatenates grouping-term strings with a \x00
// separator (same collision caveat as rowKey — acceptable for the oracle;
// the ID-space engines key on fixed-width IDs).
func legacyAggregate(q *Query, bindings []Binding) *Result {
	groups := make(map[string]*legacyAggGroup)
	var order []string
	for _, b := range bindings {
		var kb strings.Builder
		for _, v := range q.GroupBy {
			if t, ok := b[v]; ok {
				kb.WriteString(t.String())
			}
			kb.WriteByte('\x00')
		}
		key := kb.String()
		grp, ok := groups[key]
		if !ok {
			grp = &legacyAggGroup{rep: b, aggs: make([]legacyAggState, len(q.Aggs))}
			groups[key] = grp
			order = append(order, key)
		}
		for i, a := range q.Aggs {
			legacyAccumulate(&grp.aggs[i], q, a, b)
		}
	}
	// No grouping keys and no rows: one group over the empty sequence
	// (COUNT()=0, SUM()=0, MIN/MAX unbound), per the SPARQL algebra.
	if len(order) == 0 && len(q.GroupBy) == 0 {
		groups[""] = &legacyAggGroup{rep: Binding{}, aggs: make([]legacyAggState, len(q.Aggs))}
		order = append(order, "")
	}

	aliases := q.aggAliases()
	rows := make([]Binding, 0, len(order))
	for _, key := range order {
		grp := groups[key]
		row := make(Binding, len(q.Vars))
		for _, v := range q.Vars {
			if aliases[v] {
				continue
			}
			if t, ok := grp.rep[v]; ok {
				row[v] = t
			}
		}
		for i, a := range q.Aggs {
			if t, ok := legacyAggValue(a, &grp.aggs[i]); ok {
				row[a.As] = t
			}
		}
		rows = append(rows, row)
	}
	return finishTermRows(q, q.Vars, rows)
}

// legacyAccumulate feeds one solution into one aggregate's state, applying
// the same effective-DISTINCT rule as the ID-space executor.
func legacyAccumulate(st *legacyAggState, q *Query, a Aggregate, b Binding) {
	if a.Star {
		st.count++
		return
	}
	t, bound := b[a.Var]
	if !bound {
		return
	}
	distinct := a.Distinct || (q.Distinct && a.Func == AggCount && !a.Star)
	if distinct {
		if st.seen == nil {
			st.seen = make(map[string]struct{})
		}
		key := t.String()
		if _, dup := st.seen[key]; dup {
			return
		}
		st.seen[key] = struct{}{}
	}
	switch a.Func {
	case AggCount:
		st.count++
	case AggSum, AggAvg:
		st.vals = append(st.vals, t)
	case AggMin:
		if !st.has || compareTerms(t, st.best) < 0 {
			st.best, st.has = t, true
		}
	case AggMax:
		if !st.has || compareTerms(t, st.best) > 0 {
			st.best, st.has = t, true
		}
	}
}

// legacyAggValue renders one aggregate's final value; ok=false leaves the
// output column unbound (MIN/MAX over the empty sequence, SUM over
// non-numerics).
func legacyAggValue(a Aggregate, st *legacyAggState) (rdf.Term, bool) {
	switch a.Func {
	case AggCount:
		return rdf.Integer(st.count), true
	case AggSum, AggAvg:
		return foldNumeric(a.Func, st.vals)
	default: // MIN/MAX
		if !st.has {
			return rdf.Term{}, false
		}
		return st.best, true
	}
}

func dedupeRows(vars []string, rows []Binding) []Binding {
	seen := make(map[string]struct{}, len(rows))
	out := rows[:0]
	for _, r := range rows {
		k := rowKey(vars, r)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	return out
}

// rowKey builds a dedupe key by concatenating term strings with a \x00
// separator. A literal containing the separator can collide with an
// adjacent column; the ID-space executor replaced this with fixed-width
// ID keys, which cannot collide. Kept for the legacy baseline only.
func rowKey(vars []string, r Binding) string {
	var b strings.Builder
	for _, v := range vars {
		if t, ok := r[v]; ok {
			b.WriteString(t.String())
		}
		b.WriteByte('\x00')
	}
	return b.String()
}

func sortRows(rows []Binding, keys []OrderKey) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			a, aok := rows[i][k.Var]
			b, bok := rows[j][k.Var]
			if !aok && !bok {
				continue
			}
			if !aok {
				return !k.Desc // unbound sorts first ascending
			}
			if !bok {
				return k.Desc
			}
			c := compareTerms(a, b)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// ---- group evaluation ----

func evalGroupTerms(g *rdf.Graph, grp *Group, in []Binding, reorder bool) ([]Binding, error) {
	cur := in
	var bgp []TriplePattern
	flushBGP := func() {
		if len(bgp) > 0 {
			cur = evalBGPTerms(g, bgp, cur, reorder)
			bgp = nil
		}
	}
	for _, e := range grp.Elems {
		var err error
		switch e := e.(type) {
		case TriplePattern:
			// Consecutive triple patterns form a basic graph pattern;
			// they are join-order independent, so they are batched and
			// (when reorder is set) reordered by selectivity.
			bgp = append(bgp, e)
			continue
		case FilterElem:
			flushBGP()
			cur, err = applyFilterTerms(e.Expr, cur)
		case OptionalElem:
			flushBGP()
			cur, err = applyOptionalTerms(g, e.Group, cur, reorder)
		case UnionElem:
			flushBGP()
			cur, err = applyUnionTerms(g, e.Alternatives, cur, reorder)
		}
		if err != nil {
			return nil, err
		}
		if len(cur) == 0 {
			return nil, nil
		}
	}
	flushBGP()
	if len(cur) == 0 {
		return nil, nil
	}
	return cur, nil
}

// evalBGPTerms evaluates a basic graph pattern. With reorder set it uses
// the static greedy heuristic (most constant/already-bound positions first);
// otherwise patterns run in textual order.
func evalBGPTerms(g *rdf.Graph, patterns []TriplePattern, in []Binding, reorder bool) []Binding {
	if !reorder {
		cur := in
		for _, tp := range patterns {
			if len(cur) == 0 {
				return cur
			}
			cur = evalTriplePattern(g, tp, cur)
		}
		return cur
	}
	bound := map[string]bool{}
	for _, b := range in {
		for v := range b {
			bound[v] = true
		}
	}
	remaining := append([]TriplePattern(nil), patterns...)
	cur := in
	for len(remaining) > 0 && len(cur) > 0 {
		best, bestScore := 0, -1
		for i, tp := range remaining {
			s := staticSelectivity(tp, bound)
			if s > bestScore {
				best, bestScore = i, s
			}
		}
		tp := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		cur = evalTriplePattern(g, tp, cur)
		markBound(tp, bound)
	}
	return cur
}

// staticSelectivity scores a pattern by how constrained it is under the
// current bound-variable set: constants and bound variables count, with the
// predicate position weighted highest. This is the pre-planner heuristic;
// the ID-space planner replaced it with index-cardinality estimates.
func staticSelectivity(tp TriplePattern, bound map[string]bool) int {
	score := 0
	posScore := func(n NodePattern, w int) int {
		if !n.IsVar() || bound[n.Var] {
			return w
		}
		return 0
	}
	score += posScore(tp.S, 2)
	score += posScore(tp.O, 2)
	if !tp.P.IsVar() {
		score += 3
		// Property paths with closure modifiers are costlier; prefer plain
		// predicates at equal boundness.
		for _, st := range tp.P.Steps {
			if st.Mod != PathOnce {
				score--
				break
			}
		}
	} else if bound[tp.P.Var] {
		score += 3
	}
	return score
}

func markBound(tp TriplePattern, bound map[string]bool) {
	if tp.S.IsVar() {
		bound[tp.S.Var] = true
	}
	if tp.P.IsVar() {
		bound[tp.P.Var] = true
	}
	if tp.O.IsVar() {
		bound[tp.O.Var] = true
	}
}

func applyFilterTerms(expr Expr, in []Binding) ([]Binding, error) {
	out := in[:0]
	for _, b := range in {
		ok, err := evalBool(expr, b)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, b)
		}
	}
	return out, nil
}

func applyOptionalTerms(g *rdf.Graph, sub *Group, in []Binding, reorder bool) ([]Binding, error) {
	var out []Binding
	for _, b := range in {
		matched, err := evalGroupTerms(g, sub, []Binding{b}, reorder)
		if err != nil {
			return nil, err
		}
		if len(matched) == 0 {
			out = append(out, b)
		} else {
			out = append(out, matched...)
		}
	}
	return out, nil
}

func applyUnionTerms(g *rdf.Graph, alts []*Group, in []Binding, reorder bool) ([]Binding, error) {
	var out []Binding
	for _, alt := range alts {
		matched, err := evalGroupTerms(g, alt, cloneBindings(in), reorder)
		if err != nil {
			return nil, err
		}
		out = append(out, matched...)
	}
	return out, nil
}

func cloneBindings(in []Binding) []Binding {
	out := make([]Binding, len(in))
	for i, b := range in {
		out[i] = b.clone()
	}
	return out
}

// evalTriplePattern extends each input binding with all graph matches.
func evalTriplePattern(g *rdf.Graph, tp TriplePattern, in []Binding) []Binding {
	var out []Binding
	for _, b := range in {
		out = append(out, matchPattern(g, tp, b)...)
	}
	return out
}

func matchPattern(g *rdf.Graph, tp TriplePattern, b Binding) []Binding {
	// Resolve bound positions.
	s := resolveNode(tp.S, b)
	o := resolveNode(tp.O, b)

	if tp.P.IsVar() {
		return matchVarPredicate(g, tp, s, o, b)
	}
	if len(tp.P.Steps) == 1 && tp.P.Steps[0].Mod == PathOnce && !tp.P.Steps[0].Inverse {
		return matchSimple(g, tp, s, tp.P.Steps[0].IRI, o, b)
	}
	return matchPath(g, tp, s, o, b)
}

// resolveNode returns the concrete term for a pattern position, or nil if it
// is an unbound variable.
func resolveNode(n NodePattern, b Binding) *rdf.Term {
	if n.IsVar() {
		if t, ok := b[n.Var]; ok {
			tt := t
			return &tt
		}
		return nil
	}
	tt := n.Term
	return &tt
}

func matchSimple(g *rdf.Graph, tp TriplePattern, s *rdf.Term, p rdf.Term, o *rdf.Term, b Binding) []Binding {
	var out []Binding
	g.ForEachMatch(s, &p, o, func(t rdf.Triple) bool {
		nb := b.clone()
		if tp.S.IsVar() {
			nb[tp.S.Var] = t.S
		}
		if tp.O.IsVar() {
			nb[tp.O.Var] = t.O
		}
		out = append(out, nb)
		return true
	})
	return out
}

func matchVarPredicate(g *rdf.Graph, tp TriplePattern, s, o *rdf.Term, b Binding) []Binding {
	var pTerm *rdf.Term
	if t, ok := b[tp.P.Var]; ok {
		pTerm = &t
	}
	var out []Binding
	g.ForEachMatch(s, pTerm, o, func(t rdf.Triple) bool {
		nb := b.clone()
		if tp.S.IsVar() {
			nb[tp.S.Var] = t.S
		}
		nb[tp.P.Var] = t.P
		if tp.O.IsVar() {
			nb[tp.O.Var] = t.O
		}
		out = append(out, nb)
		return true
	})
	return out
}

// matchPath evaluates a property path (sequence of steps with modifiers).
func matchPath(g *rdf.Graph, tp TriplePattern, s, o *rdf.Term, b Binding) []Binding {
	// Enumerate start nodes.
	starts := map[rdf.Term]struct{}{}
	if s != nil {
		starts[*s] = struct{}{}
	} else {
		// All subjects (and objects, for inverse-starting or zero-length
		// paths) are candidate starts; to stay tractable we enumerate nodes
		// reachable as subjects of the first step (or objects if inverted).
		first := tp.P.Steps[0]
		pred := first.IRI
		g.ForEachMatch(nil, &pred, nil, func(t rdf.Triple) bool {
			if first.Inverse {
				starts[t.O] = struct{}{}
			} else {
				starts[t.S] = struct{}{}
			}
			return true
		})
	}

	var out []Binding
	for start := range starts {
		ends := map[rdf.Term]struct{}{start: {}}
		for _, step := range tp.P.Steps {
			ends = walkStep(g, step, ends)
			if len(ends) == 0 {
				break
			}
		}
		for end := range ends {
			if o != nil && !o.Equal(end) {
				continue
			}
			nb := b.clone()
			if tp.S.IsVar() {
				nb[tp.S.Var] = start
			}
			if tp.O.IsVar() {
				nb[tp.O.Var] = end
			}
			out = append(out, nb)
		}
	}
	return out
}

// walkStep advances a frontier of nodes across one path step.
func walkStep(g *rdf.Graph, step PathStep, frontier map[rdf.Term]struct{}) map[rdf.Term]struct{} {
	oneHop := func(nodes map[rdf.Term]struct{}) map[rdf.Term]struct{} {
		next := map[rdf.Term]struct{}{}
		pred := step.IRI
		for n := range nodes {
			nn := n
			if step.Inverse {
				g.ForEachMatch(nil, &pred, &nn, func(t rdf.Triple) bool {
					next[t.S] = struct{}{}
					return true
				})
			} else {
				g.ForEachMatch(&nn, &pred, nil, func(t rdf.Triple) bool {
					next[t.O] = struct{}{}
					return true
				})
			}
		}
		return next
	}

	switch step.Mod {
	case PathOnce:
		return oneHop(frontier)
	case PathZeroOrOne:
		out := copySet(frontier)
		for n := range oneHop(frontier) {
			out[n] = struct{}{}
		}
		return out
	case PathOneOrMore, PathZeroOrMore:
		out := map[rdf.Term]struct{}{}
		if step.Mod == PathZeroOrMore {
			out = copySet(frontier)
		}
		cur := frontier
		for {
			next := oneHop(cur)
			fresh := map[rdf.Term]struct{}{}
			for n := range next {
				if _, seen := out[n]; !seen {
					out[n] = struct{}{}
					fresh[n] = struct{}{}
				}
			}
			if len(fresh) == 0 {
				return out
			}
			cur = fresh
		}
	}
	return nil
}

func copySet(s map[rdf.Term]struct{}) map[rdf.Term]struct{} {
	out := make(map[rdf.Term]struct{}, len(s))
	for k := range s {
		out[k] = struct{}{}
	}
	return out
}
