package sparql

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// Morsel-driven parallel execution (the Leis et al. model): the plan's
// leading triple-pattern scan — the largest enumeration of the query, by the
// planner's own join ordering — is partitioned into fixed-size morsels along
// the snapshot's adjacency lists, and a bounded pool of workers claims
// morsels off an atomic counter. Each worker owns a full executor (register
// slab arena, term cache) and joins its morsel's seed rows through the whole
// remaining plan, so the only shared state during execution is the immutable
// snapshot and the per-morsel result buckets.
//
// Determinism: Snapshot.ScanRange enumerates a pattern in a fixed order and
// partitions exactly, so concatenating the per-morsel buckets in morsel
// index order reproduces the serial executor's row order bit for bit. Every
// order-sensitive modifier (DISTINCT first-occurrence choice, stable sort
// tie-breaks, OFFSET/LIMIT) then runs on identical input, which is how
// EvalParallel guarantees results identical to Eval rather than merely
// multiset-equal.

const (
	// minParallelScan is the smallest leading-scan domain worth fanning out;
	// below it, goroutine + merge overhead exceeds the scan.
	minParallelScan = 128
	// minMorsel/maxMorsel bound the morsel size: large enough to amortize
	// the claim, small enough to keep workers load-balanced when morsel
	// costs are skewed (one subject with a huge join fan-out).
	minMorsel = 64
	maxMorsel = 8192
	// minParallelSort is the smallest row count worth a parallel sort.
	minParallelSort = 4096
)

// runPlanParallel executes a compiled plan with `workers` goroutines over a
// snapshot, falling back to the serial executor whenever the plan or the
// data cannot be morsel-partitioned profitably.
func runPlanParallel(snap *rdf.Snapshot, p *Plan, workers int) (*Result, error) {
	lead, rest, s0, p0, o0, ok := splitParallel(p)
	if !ok || workers <= 1 {
		return runPlan(snap, p)
	}
	n := snap.ScanLen(s0, p0, o0)
	if n < minParallelScan {
		return runPlan(snap, p)
	}

	morsel := n / (workers * 4)
	if morsel < minMorsel {
		morsel = minMorsel
	}
	if morsel > maxMorsel {
		morsel = maxMorsel
	}
	numMorsels := (n + morsel - 1) / morsel
	if workers > numMorsels {
		workers = numMorsels
	}

	width := len(p.vars)
	seed := make(idRow, width)
	for i := range seed {
		seed[i] = rdf.NoID
	}
	// Per-worker DISTINCT thinning drops rows whose projected key was
	// already seen by this worker. It only ever removes rows the final
	// serial dedupe would have removed anyway (a worker's morsels arrive in
	// increasing index order, so the kept occurrence always precedes the
	// dropped one in serial order), shrinking the merge instead of changing
	// it.
	distinctThin := p.q.Distinct && p.q.CountAs == ""

	buckets := make([][]idRow, numMorsels)
	errs := make([]error, numMorsels)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := &executor{g: snap, plan: p, width: width, cache: make(map[rdf.ID]rdf.Term)}
			var seen map[string]struct{}
			var keyBuf []byte
			if distinctThin {
				seen = make(map[string]struct{})
				keyBuf = make([]byte, 0, 4*len(p.projSlots))
			}
			for {
				m := int(next.Add(1)) - 1
				if m >= numMorsels {
					return
				}
				lo := m * morsel
				hi := lo + morsel
				if hi > n {
					hi = n
				}
				var cur []idRow
				snap.ScanRange(s0, p0, o0, lo, hi, func(si, pi, oi rdf.ID) bool {
					nr := e.newRow(seed)
					if trySet(nr, lead.s.slot, si) && trySet(nr, lead.p.slot, pi) && trySet(nr, lead.o.slot, oi) {
						cur = append(cur, nr)
					}
					return true
				})
				rows, err := e.execGroup(rest, cur)
				if err != nil {
					errs[m] = err
					continue
				}
				if distinctThin {
					out := rows[:0]
					for _, r := range rows {
						keyBuf = e.projKey(keyBuf, r)
						if _, dup := seen[string(keyBuf)]; dup {
							continue
						}
						seen[string(keyBuf)] = struct{}{}
						out = append(out, r)
					}
					rows = out
				}
				buckets[m] = rows
			}
		}()
	}
	wg.Wait()

	// Lowest-morsel error wins: the first error the serial executor would
	// have hit.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	total := 0
	for _, b := range buckets {
		total += len(b)
	}
	rows := make([]idRow, 0, total)
	for _, b := range buckets {
		rows = append(rows, b...)
	}

	// The merge executor runs the shared finish path — COUNT, final
	// DISTINCT, sort, OFFSET/LIMIT, materialization — on the serial-ordered
	// rows, with the chunked parallel sorter installed.
	me := &executor{g: snap, plan: p, width: width, cache: make(map[rdf.ID]rdf.Term)}
	me.sortHook = func(rs []idRow, keys []OrderKey, slots []int) {
		parallelSort(snap, p, workers, rs, keys, slots)
	}
	return me.finish(rows)
}

// splitParallel decides whether the plan is morsel-partitionable and, if so,
// returns the leading pattern, the remainder of the plan as a group (the
// lead BGP's tail patterns followed by every later root step), and the
// pattern's scan-domain IDs (rdf.NoID for variable positions, which are all
// unbound at the leading pattern).
//
// Not partitionable: an empty plan, a leading property path (its closure
// walk has no flat scan domain), a dead leading constant (serial handles
// the empty result for free), or a top-level UNION anywhere in the root
// group — UNION concatenates alternative-major over all accumulated rows,
// which morsel-major merging cannot reproduce in order.
func splitParallel(p *Plan) (lead compiledPattern, rest *planGroup, s0, p0, o0 rdf.ID, ok bool) {
	if len(p.root.steps) == 0 {
		return lead, nil, 0, 0, 0, false
	}
	for _, st := range p.root.steps {
		if _, isUnion := st.(*unionStep); isUnion {
			return lead, nil, 0, 0, 0, false
		}
	}
	bgp, isBGP := p.root.steps[0].(*bgpStep)
	if !isBGP || len(bgp.patterns) == 0 {
		return lead, nil, 0, 0, 0, false
	}
	lead = bgp.patterns[0]
	if lead.p.isPath() {
		return lead, nil, 0, 0, 0, false
	}
	s0, p0, o0 = rdf.NoID, rdf.NoID, rdf.NoID
	if !lead.s.isVar() {
		if lead.s.id == rdf.NoID {
			return lead, nil, 0, 0, 0, false
		}
		s0 = lead.s.id
	}
	if !lead.o.isVar() {
		if lead.o.id == rdf.NoID {
			return lead, nil, 0, 0, 0, false
		}
		o0 = lead.o.id
	}
	if !lead.p.isVar() {
		if lead.p.id == rdf.NoID {
			return lead, nil, 0, 0, 0, false
		}
		p0 = lead.p.id
	}

	var steps []planStep
	if len(bgp.patterns) > 1 {
		steps = append(steps, &bgpStep{patterns: bgp.patterns[1:]})
	}
	steps = append(steps, p.root.steps[1:]...)
	return lead, &planGroup{steps: steps}, s0, p0, o0, true
}

// parallelSort orders rows exactly as sort.SliceStable with the executor
// comparator would: the slice is cut into contiguous chunks, each chunk is
// stably sorted by its own goroutine (with a private executor — the term
// caches the comparator fills are not thread-safe), and adjacent chunks are
// stably merged pairwise, left side winning ties. A stable sort order is
// unique for a fixed comparator and input order, so the result is
// bit-identical to the serial sort.
func parallelSort(snap *rdf.Snapshot, p *Plan, workers int, rows []idRow, keys []OrderKey, slots []int) {
	n := len(rows)
	if n < minParallelSort || workers <= 1 {
		e := &executor{g: snap, plan: p, cache: make(map[rdf.ID]rdf.Term)}
		sort.SliceStable(rows, func(i, j int) bool { return e.rowLess(rows[i], rows[j], keys, slots) })
		return
	}
	chunks := workers
	if chunks > n {
		chunks = n
	}
	bounds := make([]int, chunks+1)
	for i := 0; i <= chunks; i++ {
		bounds[i] = i * n / chunks
	}
	var wg sync.WaitGroup
	for i := 0; i < chunks; i++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			e := &executor{g: snap, plan: p, cache: make(map[rdf.ID]rdf.Term)}
			part := rows[lo:hi]
			sort.SliceStable(part, func(i, j int) bool { return e.rowLess(part[i], part[j], keys, slots) })
		}(bounds[i], bounds[i+1])
	}
	wg.Wait()

	// Pairwise merge rounds until one run remains.
	buf := make([]idRow, n)
	for len(bounds) > 2 {
		var nb []int
		nb = append(nb, bounds[0])
		var mwg sync.WaitGroup
		for i := 0; i+2 < len(bounds); i += 2 {
			mwg.Add(1)
			go func(lo, mid, hi int) {
				defer mwg.Done()
				e := &executor{g: snap, plan: p, cache: make(map[rdf.ID]rdf.Term)}
				mergeRuns(e, rows, buf, lo, mid, hi, keys, slots)
			}(bounds[i], bounds[i+1], bounds[i+2])
			nb = append(nb, bounds[i+2])
		}
		if len(bounds)%2 == 0 {
			// Odd run count: the trailing run rides along unmerged.
			nb = append(nb, bounds[len(bounds)-1])
		}
		mwg.Wait()
		bounds = nb
	}
}

// mergeRuns stably merges rows[lo:mid] and rows[mid:hi] in place (via buf),
// taking from the left run on ties so the merge preserves input order.
func mergeRuns(e *executor, rows, buf []idRow, lo, mid, hi int, keys []OrderKey, slots []int) {
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		// Left wins unless right is strictly less: stability.
		if e.rowLess(rows[j], rows[i], keys, slots) {
			buf[k] = rows[j]
			j++
		} else {
			buf[k] = rows[i]
			i++
		}
		k++
	}
	for i < mid {
		buf[k] = rows[i]
		i, k = i+1, k+1
	}
	for j < hi {
		buf[k] = rows[j]
		j, k = j+1, k+1
	}
	copy(rows[lo:hi], buf[lo:hi])
}
