package sparql

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// Morsel-driven parallel execution (the Leis et al. model) over the unified
// operator pipeline. decideParallel flattens the plan's leading operator
// into a list of independent tasks:
//
//   - a leading scan becomes one task morselized over the source's exact
//     scan domain (ScanLen/ScanRange);
//   - a leading UNION flattens recursively into one task per alternative,
//     each alternative's pipeline concatenated with the remainder of the
//     plan — UNION plans no longer fall back to serial;
//   - a leading property path becomes a task morselized over its
//     deterministic start-node domain (pathStarts) — path plans no longer
//     fall back to serial;
//   - an alternative that cannot be partitioned (leading FILTER/OPTIONAL,
//     dead constant) becomes a single-morsel task running its whole
//     pipeline serially inside one claim.
//
// A bounded pool of workers claims (task, morsel) pairs off one atomic
// counter. Each worker owns a full executor (register slab arena, term
// cache) and runs the identical operator pipeline the serial executor runs,
// so the only shared state during execution is the immutable scan source and
// the per-morsel result buckets.
//
// Correctness does not depend on bucket order: the shared finish path sorts
// with ORDER BY plus every projected variable under a total-order comparator
// (finishSortKeys), so the output bytes are a function of the row multiset
// alone — any task decomposition that preserves the multiset is
// byte-identical to serial execution.

const (
	// minParallelScan is the smallest combined task domain worth fanning
	// out; below it, goroutine + merge overhead exceeds the scan.
	minParallelScan = 128
	// minMorsel/maxMorsel bound the morsel size: large enough to amortize
	// the claim, small enough to keep workers load-balanced when morsel
	// costs are skewed (one subject with a huge join fan-out).
	minMorsel = 64
	maxMorsel = 8192
	// minParallelSort is the smallest row count worth a parallel sort.
	minParallelSort = 4096
)

// parTask is one independent pipeline of a decomposed plan. Exactly one of
// (scan, path, whole) is set.
type parTask struct {
	scan  *scanOp  // lead scan, morselized over the source domain
	path  *pathOp  // lead path, morselized over starts
	whole []physOp // unpartitionable pipeline, run in a single morsel
	// rest is the pipeline after the lead (scan/path tasks).
	rest []physOp
	// s0/p0/o0 are the scan-domain IDs of a scan task (rdf.NoID wildcards).
	s0, p0, o0 rdf.ID
	// starts is the start-node domain of a path task.
	starts []rdf.ID
	// n is the domain size (1 for whole tasks).
	n int
}

// decision is the outcome of parallel planning: the task list, the combined
// morsel domain, and — when execution stays serial — the named reason.
type decision struct {
	tasks  []parTask
	domain int
	reason string
}

// decideParallel decomposes a plan for `workers` goroutines, or names the
// reason it stays serial. The remaining serial cases are intrinsic, not
// unsupported operators: nothing to partition, a dead leading constant
// (the result is empty), a non-scannable leading operator, or a domain too
// small to pay for the fan-out.
func decideParallel(src ScanSource, p *Plan, workers int) decision {
	if workers <= 1 {
		return decision{reason: "workers <= 1 (parallel execution not requested)"}
	}
	if len(p.ops) == 0 {
		return decision{reason: "empty WHERE clause: nothing to partition"}
	}
	switch op := p.ops[0].(type) {
	case *filterOp:
		return decision{reason: "plan starts with FILTER: no leading scan to partition"}
	case *optionalOp:
		return decision{reason: "plan starts with OPTIONAL: no leading scan to partition"}
	case *scanOp:
		if scanDead(op.cp) {
			return decision{reason: "leading pattern matches nothing (dead constant): the serial executor returns the empty result directly"}
		}
	case *pathOp:
		if pathDead(op.cp) {
			return decision{reason: "leading pattern matches nothing (dead constant): the serial executor returns the empty result directly"}
		}
	}
	var dec decision
	flattenTasks(src, p, p.ops, &dec.tasks)
	for _, t := range dec.tasks {
		dec.domain += t.n
	}
	if dec.domain < minParallelScan {
		return decision{reason: fmt.Sprintf("scan domain %d below parallel threshold %d: fan-out costs more than the scan", dec.domain, minParallelScan)}
	}
	return dec
}

// scanDead reports a scan whose constant position is absent from the graph.
func scanDead(cp compiledPattern) bool {
	if !cp.s.isVar() && cp.s.id == rdf.NoID {
		return true
	}
	if !cp.o.isVar() && cp.o.id == rdf.NoID {
		return true
	}
	return !cp.p.isVar() && cp.p.simple && cp.p.id == rdf.NoID
}

// pathDead reports a path whose constant endpoint is absent from the graph.
func pathDead(cp compiledPattern) bool {
	if !cp.s.isVar() && cp.s.id == rdf.NoID {
		return true
	}
	return !cp.o.isVar() && cp.o.id == rdf.NoID
}

// flattenTasks appends the tasks of one pipeline. Leading UNIONs recurse
// (each alternative's pipeline concatenated with the tail); anything that
// cannot expose a scan domain becomes a whole-pipeline single-morsel task,
// which keeps every alternative of a mixed UNION parallelizable instead of
// serializing the whole query.
func flattenTasks(src ScanSource, p *Plan, ops []physOp, tasks *[]parTask) {
	if len(ops) == 0 {
		return
	}
	switch op := ops[0].(type) {
	case *scanOp:
		cp := op.cp
		if scanDead(cp) {
			*tasks = append(*tasks, parTask{whole: ops, n: 1})
			return
		}
		s0, p0, o0 := rdf.NoID, rdf.NoID, rdf.NoID
		if !cp.s.isVar() {
			s0 = cp.s.id
		}
		if !cp.o.isVar() {
			o0 = cp.o.id
		}
		if !cp.p.isVar() {
			p0 = cp.p.id
		}
		*tasks = append(*tasks, parTask{
			scan: op, rest: ops[1:],
			s0: s0, p0: p0, o0: o0,
			n: src.ScanLen(s0, p0, o0),
		})
	case *pathOp:
		cp := op.cp
		if pathDead(cp) {
			*tasks = append(*tasks, parTask{whole: ops, n: 1})
			return
		}
		s := rdf.NoID
		if !cp.s.isVar() {
			s = cp.s.id
		}
		starts := pathStarts(src, cp, s)
		*tasks = append(*tasks, parTask{
			path: op, rest: ops[1:],
			starts: starts, n: len(starts),
		})
	case *unionOp:
		for _, alt := range op.alts {
			pipeline := make([]physOp, 0, len(alt)+len(ops)-1)
			pipeline = append(pipeline, alt...)
			pipeline = append(pipeline, ops[1:]...)
			flattenTasks(src, p, pipeline, tasks)
		}
	default:
		*tasks = append(*tasks, parTask{whole: ops, n: 1})
	}
}

// morselRef is one claimable unit of work: task index plus domain range.
type morselRef struct{ task, lo, hi int }

// runPlanParallel executes a compiled plan with `workers` goroutines over a
// scan source, falling back to the serial executor when decideParallel says
// so.
func runPlanParallel(src ScanSource, p *Plan, workers int) (*Result, error) {
	res, _, err := runPlanParallelInfo(src, p, workers)
	return res, err
}

// runPlanParallelInfo is runPlanParallel plus the execution report the CLI
// and cache layer surface.
func runPlanParallelInfo(src ScanSource, p *Plan, workers int) (*Result, ExecInfo, error) {
	dec := decideParallel(src, p, workers)
	if dec.reason != "" {
		res, err := runPlan(src, p)
		return res, ExecInfo{Workers: workers, SerialReason: dec.reason}, err
	}

	msize := dec.domain / (workers * 4)
	if msize < minMorsel {
		msize = minMorsel
	}
	if msize > maxMorsel {
		msize = maxMorsel
	}
	var morsels []morselRef
	for ti, t := range dec.tasks {
		if t.whole != nil {
			morsels = append(morsels, morselRef{task: ti, lo: 0, hi: 1})
			continue
		}
		for lo := 0; lo < t.n; lo += msize {
			hi := lo + msize
			if hi > t.n {
				hi = t.n
			}
			morsels = append(morsels, morselRef{task: ti, lo: lo, hi: hi})
		}
	}
	if workers > len(morsels) {
		workers = len(morsels)
	}

	seed := seedRow(len(p.vars))
	// Per-worker DISTINCT thinning drops rows whose projected key was
	// already seen by this worker. Representative choice is invisible in the
	// output (rows equal on every projected slot render identically, and
	// under DISTINCT the sort keys are all projected), so thinning only
	// shrinks the merge. Aggregate queries must keep every row.
	distinctThin := p.q.Distinct && !p.q.isAggregate()

	buckets := make([][]idRow, len(morsels))
	errs := make([]error, len(morsels))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := newExecutor(src, p)
			var seen map[string]struct{}
			var keyBuf []byte
			if distinctThin {
				seen = make(map[string]struct{})
				keyBuf = make([]byte, 0, 4*len(p.projSlots))
			}
			for {
				m := int(next.Add(1)) - 1
				if m >= len(morsels) {
					return
				}
				rows, err := runMorsel(e, src, dec.tasks[morsels[m].task], morsels[m], seed)
				if err != nil {
					errs[m] = err
					continue
				}
				if distinctThin {
					out := rows[:0]
					for _, r := range rows {
						keyBuf = e.projKey(keyBuf, r)
						if _, dup := seen[string(keyBuf)]; dup {
							continue
						}
						seen[string(keyBuf)] = struct{}{}
						out = append(out, r)
					}
					rows = out
				}
				buckets[m] = rows
			}
		}()
	}
	wg.Wait()

	// Lowest-morsel error wins: a deterministic choice among the errors the
	// serial executor could have hit.
	for _, err := range errs {
		if err != nil {
			return nil, ExecInfo{Workers: workers, Parallel: true, Tasks: len(dec.tasks)}, err
		}
	}

	total := 0
	for _, b := range buckets {
		total += len(b)
	}
	rows := make([]idRow, 0, total)
	for _, b := range buckets {
		rows = append(rows, b...)
	}

	// The merge executor runs the shared finish path — aggregation, final
	// DISTINCT, sort, OFFSET/LIMIT, materialization — with the chunked
	// parallel sorter installed.
	me := newExecutor(src, p)
	me.sortHook = func(rs []idRow, keys []OrderKey, slots []int) {
		parallelSort(src, p, workers, rs, keys, slots)
	}
	res, err := me.finish(rows)
	return res, ExecInfo{Workers: workers, Parallel: true, Tasks: len(dec.tasks)}, err
}

// runMorsel executes one claimed morsel: the task's leading operator over
// [lo, hi) of its domain, then the remainder pipeline.
func runMorsel(e *executor, src ScanSource, t parTask, m morselRef, seed idRow) ([]idRow, error) {
	switch {
	case t.whole != nil:
		return e.runOps(t.whole, []idRow{e.newRow(seed)})
	case t.path != nil:
		cp := t.path.cp
		o, _ := resolveRef(cp.o, seed) // dead endpoints became whole tasks
		var cur []idRow
		for _, start := range t.starts[m.lo:m.hi] {
			cur = e.extendPathFrom(cp, seed, start, o, cur)
		}
		return e.runOps(t.rest, cur)
	default:
		cp := t.scan.cp
		var cur []idRow
		src.ScanRange(t.s0, t.p0, t.o0, m.lo, m.hi, func(si, pi, oi rdf.ID) bool {
			nr := e.newRow(seed)
			if trySet(nr, cp.s.slot, si) && trySet(nr, cp.p.slot, pi) && trySet(nr, cp.o.slot, oi) {
				cur = append(cur, nr)
			}
			return true
		})
		return e.runOps(t.rest, cur)
	}
}

// parallelSort orders rows exactly as sort.SliceStable with the executor
// comparator would: the slice is cut into contiguous chunks, each chunk is
// stably sorted by its own goroutine (with a private executor — the term
// caches the comparator fills are not thread-safe), and adjacent chunks are
// stably merged pairwise, left side winning ties. A stable sort order is
// unique for a fixed comparator and input order, so the result is
// bit-identical to the serial sort.
func parallelSort(src ScanSource, p *Plan, workers int, rows []idRow, keys []OrderKey, slots []int) {
	n := len(rows)
	if n < minParallelSort || workers <= 1 {
		e := newExecutor(src, p)
		sort.SliceStable(rows, func(i, j int) bool { return e.rowLess(rows[i], rows[j], keys, slots) })
		return
	}
	chunks := workers
	if chunks > n {
		chunks = n
	}
	bounds := make([]int, chunks+1)
	for i := 0; i <= chunks; i++ {
		bounds[i] = i * n / chunks
	}
	var wg sync.WaitGroup
	for i := 0; i < chunks; i++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			e := newExecutor(src, p)
			part := rows[lo:hi]
			sort.SliceStable(part, func(i, j int) bool { return e.rowLess(part[i], part[j], keys, slots) })
		}(bounds[i], bounds[i+1])
	}
	wg.Wait()

	// Pairwise merge rounds until one run remains.
	buf := make([]idRow, n)
	for len(bounds) > 2 {
		var nb []int
		nb = append(nb, bounds[0])
		var mwg sync.WaitGroup
		for i := 0; i+2 < len(bounds); i += 2 {
			mwg.Add(1)
			go func(lo, mid, hi int) {
				defer mwg.Done()
				e := newExecutor(src, p)
				mergeRuns(e, rows, buf, lo, mid, hi, keys, slots)
			}(bounds[i], bounds[i+1], bounds[i+2])
			nb = append(nb, bounds[i+2])
		}
		if len(bounds)%2 == 0 {
			// Odd run count: the trailing run rides along unmerged.
			nb = append(nb, bounds[len(bounds)-1])
		}
		mwg.Wait()
		bounds = nb
	}
}

// mergeRuns stably merges rows[lo:mid] and rows[mid:hi] in place (via buf),
// taking from the left run on ties so the merge preserves input order.
func mergeRuns(e *executor, rows, buf []idRow, lo, mid, hi int, keys []OrderKey, slots []int) {
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		// Left wins unless right is strictly less: stability.
		if e.rowLess(rows[j], rows[i], keys, slots) {
			buf[k] = rows[j]
			j++
		} else {
			buf[k] = rows[i]
			i++
		}
		k++
	}
	for i < mid {
		buf[k] = rows[i]
		i, k = i+1, k+1
	}
	for j < hi {
		buf[k] = rows[j]
		j, k = j+1, k+1
	}
	copy(rows[lo:hi], buf[lo:hi])
}
