package sparql

import (
	"regexp"
	"sort"
	"strconv"
	"strings"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// Binding maps variable names to terms.
type Binding map[string]rdf.Term

// clone copies a binding.
func (b Binding) clone() Binding {
	nb := make(Binding, len(b)+1)
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

// lookupVar implements env for the legacy term-space evaluator.
func (b Binding) lookupVar(name string) (rdf.Term, bool) {
	t, ok := b[name]
	return t, ok
}

// Result is the solution sequence of a SELECT query.
type Result struct {
	// Vars are the projected variable names in order.
	Vars []string
	// Rows are the solutions; each row maps projected vars (a var may be
	// unbound in a row when it comes from an OPTIONAL group).
	Rows []Binding
}

// Exec parses and evaluates a query against g in one call.
func Exec(g *rdf.Graph, query string, base *rdf.Namespaces) (*Result, error) {
	q, err := Parse(query, base)
	if err != nil {
		return nil, err
	}
	return Eval(g, q)
}

// ExecParallel is Exec with a morsel-parallel executor: the leading
// triple-pattern scan is partitioned across a pool of `workers` goroutines
// (see EvalParallel). workers <= 1 is the serial path.
func ExecParallel(g *rdf.Graph, query string, base *rdf.Namespaces, workers int) (*Result, error) {
	q, err := Parse(query, base)
	if err != nil {
		return nil, err
	}
	return EvalParallel(g, q, workers)
}

// Eval evaluates a parsed query against a graph.
//
// Evaluation is split into two phases (the paper's "user engine" read path,
// §4.4): Compile builds a Plan whose basic graph patterns are join-ordered
// by index-cardinality estimates, and the executor runs the plan entirely in
// dictionary-ID space — bindings are fixed-width []rdf.ID registers, and
// terms are rehydrated only when the Result is materialized. EvalLegacy
// keeps the previous term-space evaluator as a baseline.
//
// The plan runs against g.Snapshot(): the graph lock is taken once to pin
// the view, and every index probe after that is lock-free, so queries no
// longer serialize against concurrent ingest (and ingest no longer stalls
// behind long scans). The result reflects exactly the triples present when
// Eval was called.
func Eval(g *rdf.Graph, q *Query) (*Result, error) {
	return EvalOn(g.Snapshot(), q)
}

// EvalOn evaluates a parsed query against an explicit Source — a pinned
// *rdf.Snapshot (what Eval uses) or a live *rdf.Graph, where every index
// probe takes the graph read lock. The live form is the lock-per-probe
// baseline the parallel-query ablation measures against.
func EvalOn(src Source, q *Query) (*Result, error) {
	return runPlan(src, Compile(src, q))
}

// EvalParallel evaluates a parsed query with the morsel-driven parallel
// executor: the plan's leading triple-pattern scan is split into morsels
// over a snapshot's adjacency lists and fanned out to `workers` goroutines,
// each joining its morsel's rows through the rest of the plan with its own
// register arena. Results are merged back into serial row order, so the
// output is identical — row for row — to Eval. workers <= 1, plans the
// morsel scan cannot cover (leading property path, top-level UNION), and
// scans too small to be worth fanning out all fall back to the serial
// executor.
func EvalParallel(g *rdf.Graph, q *Query, workers int) (*Result, error) {
	snap := g.Snapshot()
	return runPlanParallel(snap, Compile(snap, q), workers)
}

// Explain parses the query and returns the planner's EXPLAIN rendering —
// the chosen join order with cardinality estimates — without executing it.
func Explain(g *rdf.Graph, query string, base *rdf.Namespaces) (string, error) {
	q, err := Parse(query, base)
	if err != nil {
		return "", err
	}
	return Compile(g.Snapshot(), q).String(), nil
}

func orderKeysFor(vars []string) []OrderKey {
	ks := make([]OrderKey, len(vars))
	for i, v := range vars {
		ks[i] = OrderKey{Var: v}
	}
	return ks
}

func collectVars(g *Group, set map[string]struct{}) {
	for _, e := range g.Elems {
		switch e := e.(type) {
		case TriplePattern:
			if e.S.IsVar() {
				set[e.S.Var] = struct{}{}
			}
			if e.P.IsVar() {
				set[e.P.Var] = struct{}{}
			}
			if e.O.IsVar() {
				set[e.O.Var] = struct{}{}
			}
		case OptionalElem:
			collectVars(e.Group, set)
		case UnionElem:
			for _, alt := range e.Alternatives {
				collectVars(alt, set)
			}
		}
	}
}

// projectedVars resolves the projection list: the explicit SELECT vars, or
// every variable of the WHERE clause (sorted) for SELECT *.
func projectedVars(q *Query) []string {
	if len(q.Vars) > 0 {
		return q.Vars
	}
	set := map[string]struct{}{}
	collectVars(q.Where, set)
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

// compareTerms orders terms: numerics numerically when both are numeric,
// otherwise by kind then string form.
func compareTerms(a, b rdf.Term) int {
	if av, aok := numericValue(a); aok {
		if bv, bok := numericValue(b); bok {
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			default:
				return 0
			}
		}
	}
	as, bs := a.String(), b.String()
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

func numericValue(t rdf.Term) (float64, bool) {
	if !t.IsLiteral() {
		return 0, false
	}
	switch t.Datatype {
	case rdf.XSDInteger, rdf.XSDDouble, rdf.XSDLong:
		v, err := strconv.ParseFloat(t.Value, 64)
		return v, err == nil
	}
	return 0, false
}

// ---- FILTER expression evaluation ----

// env resolves variable references during FILTER evaluation. The legacy
// evaluator passes Binding maps; the ID-space executor passes register rows
// that hydrate terms on demand.
type env interface {
	lookupVar(name string) (rdf.Term, bool)
}

// value is the evaluated form of an expression: a term or an error state.
type value struct {
	term  rdf.Term
	valid bool
}

func evalBool(e Expr, b env) (bool, error) {
	v, err := evalExpr(e, b)
	if err != nil {
		return false, err
	}
	if !v.valid {
		return false, nil
	}
	return effectiveBool(v.term), nil
}

// effectiveBool implements SPARQL's effective boolean value for our types.
func effectiveBool(t rdf.Term) bool {
	if !t.IsLiteral() {
		return true // bound IRI/blank counts as true in our subset
	}
	switch t.Datatype {
	case rdf.XSDBoolean:
		return t.Value == "true"
	case rdf.XSDInteger, rdf.XSDDouble, rdf.XSDLong:
		v, err := strconv.ParseFloat(t.Value, 64)
		return err == nil && v != 0
	default:
		return t.Value != ""
	}
}

func evalExpr(e Expr, b env) (value, error) {
	switch e := e.(type) {
	case VarExpr:
		t, ok := b.lookupVar(e.Name)
		return value{term: t, valid: ok}, nil
	case TermExpr:
		return value{term: e.Term, valid: true}, nil
	case BoundExpr:
		_, ok := b.lookupVar(e.Name)
		return value{term: rdf.Boolean(ok), valid: true}, nil
	case StrExpr:
		v, err := evalExpr(e.X, b)
		if err != nil || !v.valid {
			return value{}, err
		}
		return value{term: rdf.Literal(termText(v.term)), valid: true}, nil
	case NotExpr:
		v, err := evalExpr(e.X, b)
		if err != nil {
			return value{}, err
		}
		if !v.valid {
			return value{}, nil
		}
		return value{term: rdf.Boolean(!effectiveBool(v.term)), valid: true}, nil
	case RegexExpr:
		v, err := evalExpr(e.X, b)
		if err != nil {
			return value{}, err
		}
		if !v.valid {
			return value{}, nil
		}
		pat := e.Pattern
		if strings.Contains(e.Flags, "i") {
			pat = "(?i)" + pat
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return value{}, &Error{Msg: "bad REGEX pattern: " + err.Error()}
		}
		return value{term: rdf.Boolean(re.MatchString(termText(v.term))), valid: true}, nil
	case BinaryExpr:
		return evalBinary(e, b)
	}
	return value{}, &Error{Msg: "unknown expression node"}
}

func evalBinary(e BinaryExpr, b env) (value, error) {
	switch e.Op {
	case "&&", "||":
		lv, err := evalBool(e.L, b)
		if err != nil {
			return value{}, err
		}
		if e.Op == "&&" && !lv {
			return value{term: rdf.Boolean(false), valid: true}, nil
		}
		if e.Op == "||" && lv {
			return value{term: rdf.Boolean(true), valid: true}, nil
		}
		rv, err := evalBool(e.R, b)
		if err != nil {
			return value{}, err
		}
		return value{term: rdf.Boolean(rv), valid: true}, nil
	}
	lv, err := evalExpr(e.L, b)
	if err != nil {
		return value{}, err
	}
	rv, err := evalExpr(e.R, b)
	if err != nil {
		return value{}, err
	}
	if !lv.valid || !rv.valid {
		return value{}, nil
	}
	var c int
	ln, lok := numericValue(lv.term)
	rn, rok := numericValue(rv.term)
	if lok && rok {
		switch {
		case ln < rn:
			c = -1
		case ln > rn:
			c = 1
		}
	} else if e.Op == "=" || e.Op == "!=" {
		if lv.term.Equal(rv.term) {
			c = 0
		} else {
			c = 1
		}
	} else {
		lt, rt := termText(lv.term), termText(rv.term)
		switch {
		case lt < rt:
			c = -1
		case lt > rt:
			c = 1
		}
	}
	var out bool
	switch e.Op {
	case "=":
		out = c == 0
	case "!=":
		out = c != 0
	case "<":
		out = c < 0
	case ">":
		out = c > 0
	case "<=":
		out = c <= 0
	case ">=":
		out = c >= 0
	default:
		return value{}, &Error{Msg: "unknown operator " + e.Op}
	}
	return value{term: rdf.Boolean(out), valid: true}, nil
}

// termText is the plain text content of a term (IRI string or literal
// lexical form).
func termText(t rdf.Term) string { return t.Value }
