package sparql

import (
	"regexp"
	"sort"
	"strconv"
	"strings"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// Binding maps variable names to terms.
type Binding map[string]rdf.Term

// clone copies a binding.
func (b Binding) clone() Binding {
	nb := make(Binding, len(b)+1)
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

// Result is the solution sequence of a SELECT query.
type Result struct {
	// Vars are the projected variable names in order.
	Vars []string
	// Rows are the solutions; each row maps projected vars (a var may be
	// unbound in a row when it comes from an OPTIONAL group).
	Rows []Binding
}

// Exec parses and evaluates a query against g in one call.
func Exec(g *rdf.Graph, query string, base *rdf.Namespaces) (*Result, error) {
	q, err := Parse(query, base)
	if err != nil {
		return nil, err
	}
	return Eval(g, q)
}

// Eval evaluates a parsed query against a graph.
func Eval(g *rdf.Graph, q *Query) (*Result, error) {
	bindings, err := evalGroup(g, q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}

	// COUNT projection collapses the solution sequence to a single row.
	if q.CountAs != "" {
		n := 0
		if q.CountAll {
			n = len(bindings)
		} else {
			seen := make(map[rdf.Term]struct{})
			for _, b := range bindings {
				if t, ok := b[q.Count]; ok {
					if q.Distinct {
						seen[t] = struct{}{}
					} else {
						n++
					}
				}
			}
			if q.Distinct {
				n = len(seen)
			}
		}
		return &Result{
			Vars: []string{q.CountAs},
			Rows: []Binding{{q.CountAs: rdf.Integer(int64(n))}},
		}, nil
	}

	vars := q.Vars
	if len(vars) == 0 { // SELECT *
		set := map[string]struct{}{}
		collectVars(q.Where, set)
		for v := range set {
			vars = append(vars, v)
		}
		sort.Strings(vars)
	}

	rows := make([]Binding, 0, len(bindings))
	for _, b := range bindings {
		row := make(Binding, len(vars))
		for _, v := range vars {
			if t, ok := b[v]; ok {
				row[v] = t
			}
		}
		rows = append(rows, row)
	}

	if q.Distinct {
		rows = dedupeRows(vars, rows)
	}
	if len(q.OrderBy) > 0 {
		sortRows(rows, q.OrderBy)
	} else {
		// Deterministic output even without ORDER BY: sort by projected
		// values. SPARQL leaves this unspecified; determinism helps tests
		// and reproducible experiment output.
		sortRows(rows, orderKeysFor(vars))
	}
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}
	return &Result{Vars: vars, Rows: rows}, nil
}

func orderKeysFor(vars []string) []OrderKey {
	ks := make([]OrderKey, len(vars))
	for i, v := range vars {
		ks[i] = OrderKey{Var: v}
	}
	return ks
}

func collectVars(g *Group, set map[string]struct{}) {
	for _, e := range g.Elems {
		switch e := e.(type) {
		case TriplePattern:
			if e.S.IsVar() {
				set[e.S.Var] = struct{}{}
			}
			if e.P.IsVar() {
				set[e.P.Var] = struct{}{}
			}
			if e.O.IsVar() {
				set[e.O.Var] = struct{}{}
			}
		case OptionalElem:
			collectVars(e.Group, set)
		case UnionElem:
			for _, alt := range e.Alternatives {
				collectVars(alt, set)
			}
		}
	}
}

func dedupeRows(vars []string, rows []Binding) []Binding {
	seen := make(map[string]struct{}, len(rows))
	out := rows[:0]
	for _, r := range rows {
		k := rowKey(vars, r)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	return out
}

func rowKey(vars []string, r Binding) string {
	var b strings.Builder
	for _, v := range vars {
		if t, ok := r[v]; ok {
			b.WriteString(t.String())
		}
		b.WriteByte('\x00')
	}
	return b.String()
}

func sortRows(rows []Binding, keys []OrderKey) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			a, aok := rows[i][k.Var]
			b, bok := rows[j][k.Var]
			if !aok && !bok {
				continue
			}
			if !aok {
				return !k.Desc // unbound sorts first ascending
			}
			if !bok {
				return k.Desc
			}
			c := compareTerms(a, b)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// compareTerms orders terms: numerics numerically when both are numeric,
// otherwise by kind then string form.
func compareTerms(a, b rdf.Term) int {
	if av, aok := numericValue(a); aok {
		if bv, bok := numericValue(b); bok {
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			default:
				return 0
			}
		}
	}
	as, bs := a.String(), b.String()
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

func numericValue(t rdf.Term) (float64, bool) {
	if !t.IsLiteral() {
		return 0, false
	}
	switch t.Datatype {
	case rdf.XSDInteger, rdf.XSDDouble, rdf.XSDLong:
		v, err := strconv.ParseFloat(t.Value, 64)
		return v, err == nil
	}
	return 0, false
}

// ---- group evaluation ----

func evalGroup(g *rdf.Graph, grp *Group, in []Binding) ([]Binding, error) {
	cur := in
	var bgp []TriplePattern
	flushBGP := func() {
		if len(bgp) > 0 {
			cur = evalBGP(g, bgp, cur)
			bgp = nil
		}
	}
	for _, e := range grp.Elems {
		var err error
		switch e := e.(type) {
		case TriplePattern:
			// Consecutive triple patterns form a basic graph pattern;
			// they are join-order independent, so they are batched and
			// reordered by selectivity in evalBGP.
			bgp = append(bgp, e)
			continue
		case FilterElem:
			flushBGP()
			cur, err = applyFilter(e.Expr, cur)
		case OptionalElem:
			flushBGP()
			cur, err = applyOptional(g, e.Group, cur)
		case UnionElem:
			flushBGP()
			cur, err = applyUnion(g, e.Alternatives, cur)
		}
		if err != nil {
			return nil, err
		}
		if len(cur) == 0 {
			return nil, nil
		}
	}
	flushBGP()
	if len(cur) == 0 {
		return nil, nil
	}
	return cur, nil
}

// evalBGP evaluates a basic graph pattern with greedy join ordering: at each
// step the most selective remaining pattern (most constant/already-bound
// positions) runs next. This avoids the Cartesian blowups a naive
// left-to-right evaluation hits when a query lists an unconstrained pattern
// first — the difference between seconds and milliseconds on DASSA-sized
// lineage graphs.
func evalBGP(g *rdf.Graph, patterns []TriplePattern, in []Binding) []Binding {
	bound := map[string]bool{}
	for _, b := range in {
		for v := range b {
			bound[v] = true
		}
	}
	remaining := append([]TriplePattern(nil), patterns...)
	cur := in
	for len(remaining) > 0 && len(cur) > 0 {
		best, bestScore := 0, -1
		for i, tp := range remaining {
			s := selectivity(tp, bound)
			if s > bestScore {
				best, bestScore = i, s
			}
		}
		tp := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		cur = evalTriplePattern(g, tp, cur)
		markBound(tp, bound)
	}
	return cur
}

// selectivity scores a pattern by how constrained it is under the current
// bound-variable set: constants and bound variables count, with the
// predicate position weighted highest (predicate-indexed lookups are the
// cheapest in the store).
func selectivity(tp TriplePattern, bound map[string]bool) int {
	score := 0
	posScore := func(n NodePattern, w int) int {
		if !n.IsVar() || bound[n.Var] {
			return w
		}
		return 0
	}
	score += posScore(tp.S, 2)
	score += posScore(tp.O, 2)
	if !tp.P.IsVar() {
		score += 3
		// Property paths with closure modifiers are costlier; prefer plain
		// predicates at equal boundness.
		for _, st := range tp.P.Steps {
			if st.Mod != PathOnce {
				score--
				break
			}
		}
	} else if bound[tp.P.Var] {
		score += 3
	}
	return score
}

func markBound(tp TriplePattern, bound map[string]bool) {
	if tp.S.IsVar() {
		bound[tp.S.Var] = true
	}
	if tp.P.IsVar() {
		bound[tp.P.Var] = true
	}
	if tp.O.IsVar() {
		bound[tp.O.Var] = true
	}
}

func applyFilter(expr Expr, in []Binding) ([]Binding, error) {
	out := in[:0]
	for _, b := range in {
		ok, err := evalBool(expr, b)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, b)
		}
	}
	return out, nil
}

func applyOptional(g *rdf.Graph, sub *Group, in []Binding) ([]Binding, error) {
	var out []Binding
	for _, b := range in {
		matched, err := evalGroup(g, sub, []Binding{b})
		if err != nil {
			return nil, err
		}
		if len(matched) == 0 {
			out = append(out, b)
		} else {
			out = append(out, matched...)
		}
	}
	return out, nil
}

func applyUnion(g *rdf.Graph, alts []*Group, in []Binding) ([]Binding, error) {
	var out []Binding
	for _, alt := range alts {
		matched, err := evalGroup(g, alt, cloneBindings(in))
		if err != nil {
			return nil, err
		}
		out = append(out, matched...)
	}
	return out, nil
}

func cloneBindings(in []Binding) []Binding {
	out := make([]Binding, len(in))
	for i, b := range in {
		out[i] = b.clone()
	}
	return out
}

// evalTriplePattern extends each input binding with all graph matches.
func evalTriplePattern(g *rdf.Graph, tp TriplePattern, in []Binding) []Binding {
	var out []Binding
	for _, b := range in {
		out = append(out, matchPattern(g, tp, b)...)
	}
	return out
}

func matchPattern(g *rdf.Graph, tp TriplePattern, b Binding) []Binding {
	// Resolve bound positions.
	s := resolveNode(tp.S, b)
	o := resolveNode(tp.O, b)

	if tp.P.IsVar() {
		return matchVarPredicate(g, tp, s, o, b)
	}
	if len(tp.P.Steps) == 1 && tp.P.Steps[0].Mod == PathOnce && !tp.P.Steps[0].Inverse {
		return matchSimple(g, tp, s, tp.P.Steps[0].IRI, o, b)
	}
	return matchPath(g, tp, s, o, b)
}

// resolveNode returns the concrete term for a pattern position, or nil if it
// is an unbound variable.
func resolveNode(n NodePattern, b Binding) *rdf.Term {
	if n.IsVar() {
		if t, ok := b[n.Var]; ok {
			tt := t
			return &tt
		}
		return nil
	}
	tt := n.Term
	return &tt
}

func matchSimple(g *rdf.Graph, tp TriplePattern, s *rdf.Term, p rdf.Term, o *rdf.Term, b Binding) []Binding {
	var out []Binding
	g.ForEachMatch(s, &p, o, func(t rdf.Triple) bool {
		nb := b.clone()
		if tp.S.IsVar() {
			nb[tp.S.Var] = t.S
		}
		if tp.O.IsVar() {
			nb[tp.O.Var] = t.O
		}
		out = append(out, nb)
		return true
	})
	return out
}

func matchVarPredicate(g *rdf.Graph, tp TriplePattern, s, o *rdf.Term, b Binding) []Binding {
	var pTerm *rdf.Term
	if t, ok := b[tp.P.Var]; ok {
		pTerm = &t
	}
	var out []Binding
	g.ForEachMatch(s, pTerm, o, func(t rdf.Triple) bool {
		nb := b.clone()
		if tp.S.IsVar() {
			nb[tp.S.Var] = t.S
		}
		nb[tp.P.Var] = t.P
		if tp.O.IsVar() {
			nb[tp.O.Var] = t.O
		}
		out = append(out, nb)
		return true
	})
	return out
}

// matchPath evaluates a property path (sequence of steps with modifiers).
func matchPath(g *rdf.Graph, tp TriplePattern, s, o *rdf.Term, b Binding) []Binding {
	// Enumerate start nodes.
	starts := map[rdf.Term]struct{}{}
	if s != nil {
		starts[*s] = struct{}{}
	} else {
		// All subjects (and objects, for inverse-starting or zero-length
		// paths) are candidate starts; to stay tractable we enumerate nodes
		// reachable as subjects of the first step (or objects if inverted).
		first := tp.P.Steps[0]
		pred := first.IRI
		g.ForEachMatch(nil, &pred, nil, func(t rdf.Triple) bool {
			if first.Inverse {
				starts[t.O] = struct{}{}
			} else {
				starts[t.S] = struct{}{}
			}
			return true
		})
	}

	var out []Binding
	for start := range starts {
		ends := map[rdf.Term]struct{}{start: {}}
		for _, step := range tp.P.Steps {
			ends = walkStep(g, step, ends)
			if len(ends) == 0 {
				break
			}
		}
		for end := range ends {
			if o != nil && !o.Equal(end) {
				continue
			}
			nb := b.clone()
			if tp.S.IsVar() {
				nb[tp.S.Var] = start
			}
			if tp.O.IsVar() {
				nb[tp.O.Var] = end
			}
			out = append(out, nb)
		}
	}
	return out
}

// walkStep advances a frontier of nodes across one path step.
func walkStep(g *rdf.Graph, step PathStep, frontier map[rdf.Term]struct{}) map[rdf.Term]struct{} {
	oneHop := func(nodes map[rdf.Term]struct{}) map[rdf.Term]struct{} {
		next := map[rdf.Term]struct{}{}
		pred := step.IRI
		for n := range nodes {
			nn := n
			if step.Inverse {
				g.ForEachMatch(nil, &pred, &nn, func(t rdf.Triple) bool {
					next[t.S] = struct{}{}
					return true
				})
			} else {
				g.ForEachMatch(&nn, &pred, nil, func(t rdf.Triple) bool {
					next[t.O] = struct{}{}
					return true
				})
			}
		}
		return next
	}

	switch step.Mod {
	case PathOnce:
		return oneHop(frontier)
	case PathZeroOrOne:
		out := copySet(frontier)
		for n := range oneHop(frontier) {
			out[n] = struct{}{}
		}
		return out
	case PathOneOrMore, PathZeroOrMore:
		out := map[rdf.Term]struct{}{}
		if step.Mod == PathZeroOrMore {
			out = copySet(frontier)
		}
		cur := frontier
		for {
			next := oneHop(cur)
			fresh := map[rdf.Term]struct{}{}
			for n := range next {
				if _, seen := out[n]; !seen {
					out[n] = struct{}{}
					fresh[n] = struct{}{}
				}
			}
			if len(fresh) == 0 {
				return out
			}
			cur = fresh
		}
	}
	return nil
}

func copySet(s map[rdf.Term]struct{}) map[rdf.Term]struct{} {
	out := make(map[rdf.Term]struct{}, len(s))
	for k := range s {
		out[k] = struct{}{}
	}
	return out
}

// ---- FILTER expression evaluation ----

// value is the evaluated form of an expression: a term or an error state.
type value struct {
	term  rdf.Term
	valid bool
}

func evalBool(e Expr, b Binding) (bool, error) {
	v, err := evalExpr(e, b)
	if err != nil {
		return false, err
	}
	if !v.valid {
		return false, nil
	}
	return effectiveBool(v.term), nil
}

// effectiveBool implements SPARQL's effective boolean value for our types.
func effectiveBool(t rdf.Term) bool {
	if !t.IsLiteral() {
		return true // bound IRI/blank counts as true in our subset
	}
	switch t.Datatype {
	case rdf.XSDBoolean:
		return t.Value == "true"
	case rdf.XSDInteger, rdf.XSDDouble, rdf.XSDLong:
		v, err := strconv.ParseFloat(t.Value, 64)
		return err == nil && v != 0
	default:
		return t.Value != ""
	}
}

func evalExpr(e Expr, b Binding) (value, error) {
	switch e := e.(type) {
	case VarExpr:
		t, ok := b[e.Name]
		return value{term: t, valid: ok}, nil
	case TermExpr:
		return value{term: e.Term, valid: true}, nil
	case BoundExpr:
		_, ok := b[e.Name]
		return value{term: rdf.Boolean(ok), valid: true}, nil
	case StrExpr:
		v, err := evalExpr(e.X, b)
		if err != nil || !v.valid {
			return value{}, err
		}
		return value{term: rdf.Literal(termText(v.term)), valid: true}, nil
	case NotExpr:
		v, err := evalExpr(e.X, b)
		if err != nil {
			return value{}, err
		}
		if !v.valid {
			return value{}, nil
		}
		return value{term: rdf.Boolean(!effectiveBool(v.term)), valid: true}, nil
	case RegexExpr:
		v, err := evalExpr(e.X, b)
		if err != nil {
			return value{}, err
		}
		if !v.valid {
			return value{}, nil
		}
		pat := e.Pattern
		if strings.Contains(e.Flags, "i") {
			pat = "(?i)" + pat
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return value{}, &Error{Msg: "bad REGEX pattern: " + err.Error()}
		}
		return value{term: rdf.Boolean(re.MatchString(termText(v.term))), valid: true}, nil
	case BinaryExpr:
		return evalBinary(e, b)
	}
	return value{}, &Error{Msg: "unknown expression node"}
}

func evalBinary(e BinaryExpr, b Binding) (value, error) {
	switch e.Op {
	case "&&", "||":
		lv, err := evalBool(e.L, b)
		if err != nil {
			return value{}, err
		}
		if e.Op == "&&" && !lv {
			return value{term: rdf.Boolean(false), valid: true}, nil
		}
		if e.Op == "||" && lv {
			return value{term: rdf.Boolean(true), valid: true}, nil
		}
		rv, err := evalBool(e.R, b)
		if err != nil {
			return value{}, err
		}
		return value{term: rdf.Boolean(rv), valid: true}, nil
	}
	lv, err := evalExpr(e.L, b)
	if err != nil {
		return value{}, err
	}
	rv, err := evalExpr(e.R, b)
	if err != nil {
		return value{}, err
	}
	if !lv.valid || !rv.valid {
		return value{}, nil
	}
	var c int
	ln, lok := numericValue(lv.term)
	rn, rok := numericValue(rv.term)
	if lok && rok {
		switch {
		case ln < rn:
			c = -1
		case ln > rn:
			c = 1
		}
	} else if e.Op == "=" || e.Op == "!=" {
		if lv.term.Equal(rv.term) {
			c = 0
		} else {
			c = 1
		}
	} else {
		lt, rt := termText(lv.term), termText(rv.term)
		switch {
		case lt < rt:
			c = -1
		case lt > rt:
			c = 1
		}
	}
	var out bool
	switch e.Op {
	case "=":
		out = c == 0
	case "!=":
		out = c != 0
	case "<":
		out = c < 0
	case ">":
		out = c > 0
	case "<=":
		out = c <= 0
	case ">=":
		out = c >= 0
	default:
		return value{}, &Error{Msg: "unknown operator " + e.Op}
	}
	return value{term: rdf.Boolean(out), valid: true}, nil
}

// termText is the plain text content of a term (IRI string or literal
// lexical form).
func termText(t rdf.Term) string { return t.Value }
