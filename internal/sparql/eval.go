package sparql

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// Binding maps variable names to terms.
type Binding map[string]rdf.Term

// clone copies a binding.
func (b Binding) clone() Binding {
	nb := make(Binding, len(b)+1)
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

// lookupVar implements env for the legacy term-space evaluator.
func (b Binding) lookupVar(name string) (rdf.Term, bool) {
	t, ok := b[name]
	return t, ok
}

// Result is the solution sequence of a SELECT query.
type Result struct {
	// Vars are the projected variable names in order.
	Vars []string
	// Rows are the solutions; each row maps projected vars (a var may be
	// unbound in a row when it comes from an OPTIONAL group).
	Rows []Binding
}

// ExecInfo reports how one Exec/ExecParallel call was executed: whether the
// epoch-keyed result cache answered it, and if not, whether the plan was
// morsel-parallelized or why it stayed serial.
type ExecInfo struct {
	// Workers is the requested worker count.
	Workers int
	// CacheHit marks a result served from the snapshot's result cache.
	CacheHit bool
	// Parallel marks morsel-parallel execution; Tasks is the number of
	// independent pipelines the plan decomposed into.
	Parallel bool
	Tasks    int
	// SerialReason names why execution stayed serial (empty when Parallel
	// or CacheHit).
	SerialReason string
}

// Summary renders the one-line execution summary the CLI prints.
func (i ExecInfo) Summary() string {
	switch {
	case i.CacheHit:
		return "result cache hit (snapshot epochs unchanged)"
	case i.Parallel:
		return fmt.Sprintf("parallel: %d worker(s) over %d task(s)", i.Workers, i.Tasks)
	default:
		return "serial: " + i.SerialReason
	}
}

// Exec parses and evaluates a query against g in one call, through the
// epoch-keyed result cache (see cache.go).
func Exec(g *rdf.Graph, query string, base *rdf.Namespaces) (*Result, error) {
	res, _, err := ExecParallelInfo(g, query, base, 1)
	return res, err
}

// ExecParallel is Exec with a morsel-parallel executor: the leading
// operator's domain is partitioned across a pool of `workers` goroutines
// (see EvalParallel). workers <= 1 is the serial path. Results go through
// the epoch-keyed cache like Exec's.
func ExecParallel(g *rdf.Graph, query string, base *rdf.Namespaces, workers int) (*Result, error) {
	res, _, err := ExecParallelInfo(g, query, base, workers)
	return res, err
}

// Eval evaluates a parsed query against a graph.
//
// Evaluation is split into two phases (the paper's "user engine" read path,
// §4.4): Compile builds a Plan whose basic graph patterns are join-ordered
// by index-cardinality estimates, and the executor runs the plan entirely in
// dictionary-ID space — bindings are fixed-width []rdf.ID registers, and
// terms are rehydrated only when the Result is materialized. EvalLegacy
// keeps the previous term-space evaluator as a baseline.
//
// The plan runs against g.Snapshot(): the graph lock is taken once to pin
// the view, and every index probe after that is lock-free, so queries no
// longer serialize against concurrent ingest (and ingest no longer stalls
// behind long scans). The result reflects exactly the triples present when
// Eval was called.
func Eval(g *rdf.Graph, q *Query) (*Result, error) {
	return EvalOn(g.Snapshot(), q)
}

// EvalOn evaluates a parsed query against an explicit Source — a pinned
// *rdf.Snapshot (what Eval uses) or a live *rdf.Graph, where every index
// probe takes the graph read lock. The live form is the lock-per-probe
// baseline the parallel-query ablation measures against.
func EvalOn(src Source, q *Query) (*Result, error) {
	return runPlan(src, Compile(src, q))
}

// EvalParallel evaluates a parsed query with the morsel-driven parallel
// executor: the plan decomposes into independent pipeline tasks (a leading
// scan partitioned into morsels; a leading UNION flattened into
// per-alternative tasks; a leading property path morselized over its start
// domain) fanned out to `workers` goroutines, each running the identical
// operator pipeline with its own register arena. The finish path's
// multiset contract makes the output byte-identical to Eval. workers <= 1,
// empty plans, dead leading constants, and domains below the parallel
// threshold stay serial (decideParallel names the reason).
func EvalParallel(g *rdf.Graph, q *Query, workers int) (*Result, error) {
	snap := g.Snapshot()
	res, _, err := runPlanParallelInfo(snap, Compile(snap, q), workers)
	return res, err
}

// EvalParallelOnInfo evaluates a parsed query with the morsel-driven
// parallel executor against an explicit ScanSource — a pinned
// *rdf.Snapshot or a federated out-of-core source such as core's
// LazySource — returning the execution info alongside the result. The
// same finish-path multiset contract applies: output bytes depend only on
// the solution multiset, so any conforming ScanSource yields output
// byte-identical to the eager snapshot path.
func EvalParallelOnInfo(src ScanSource, q *Query, workers int) (*Result, ExecInfo, error) {
	return runPlanParallelInfo(src, Compile(src, q), workers)
}

// Explain parses the query and returns the planner's EXPLAIN rendering —
// the operator pipeline with cardinality estimates — without executing it.
func Explain(g *rdf.Graph, query string, base *rdf.Namespaces) (string, error) {
	return ExplainWorkers(g, query, base, 1)
}

// ExplainWorkers is Explain plus the parallel-decomposition verdict for a
// worker count: the number of independent tasks and the morsel domain when
// the plan parallelizes, or the named reason it stays serial.
func ExplainWorkers(g *rdf.Graph, query string, base *rdf.Namespaces, workers int) (string, error) {
	return ExplainWorkersOn(g.Snapshot(), query, base, workers)
}

// ExplainWorkersOn is ExplainWorkers against an explicit ScanSource, so
// plans can be explained over a federated out-of-core source as well as a
// pinned snapshot.
func ExplainWorkersOn(src ScanSource, query string, base *rdf.Namespaces, workers int) (string, error) {
	q, err := Parse(query, base)
	if err != nil {
		return "", err
	}
	p := Compile(src, q)
	dec := decideParallel(src, p, workers)
	s := p.String()
	if dec.reason != "" {
		return s + fmt.Sprintf("parallel: serial (%s)\n", dec.reason), nil
	}
	return s + fmt.Sprintf("parallel: %d task(s) over a domain of %d with %d worker(s)\n",
		len(dec.tasks), dec.domain, workers), nil
}

func orderKeysFor(vars []string) []OrderKey {
	ks := make([]OrderKey, len(vars))
	for i, v := range vars {
		ks[i] = OrderKey{Var: v}
	}
	return ks
}

func collectVars(g *Group, set map[string]struct{}) {
	for _, e := range g.Elems {
		switch e := e.(type) {
		case TriplePattern:
			if e.S.IsVar() {
				set[e.S.Var] = struct{}{}
			}
			if e.P.IsVar() {
				set[e.P.Var] = struct{}{}
			}
			if e.O.IsVar() {
				set[e.O.Var] = struct{}{}
			}
		case OptionalElem:
			collectVars(e.Group, set)
		case UnionElem:
			for _, alt := range e.Alternatives {
				collectVars(alt, set)
			}
		}
	}
}

// projectedVars resolves the projection list: the explicit SELECT vars, or
// every variable of the WHERE clause (sorted) for SELECT *.
func projectedVars(q *Query) []string {
	if len(q.Vars) > 0 {
		return q.Vars
	}
	set := map[string]struct{}{}
	collectVars(q.Where, set)
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

// compareTerms orders terms: numerics numerically when both are numeric,
// otherwise by string form. It is a total order on distinct terms —
// numerically equal but lexically different terms (e.g. "1"^^xsd:integer vs
// "1.0"^^xsd:double) fall through to the lexical comparison instead of
// tying. A total order is what makes the finish sort's output a pure
// function of the solution multiset (see finishSortKeys).
func compareTerms(a, b rdf.Term) int {
	if av, aok := numericValue(a); aok {
		if bv, bok := numericValue(b); bok {
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			}
			// equal numerics: fall through to the lexical tie-break
		}
	}
	as, bs := a.String(), b.String()
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

func numericValue(t rdf.Term) (float64, bool) {
	if !t.IsLiteral() {
		return 0, false
	}
	switch t.Datatype {
	case rdf.XSDInteger, rdf.XSDDouble, rdf.XSDLong, rdf.XSDDecimal:
		v, err := strconv.ParseFloat(t.Value, 64)
		return v, err == nil
	}
	return 0, false
}

// finishSortKeys returns the deterministic finish-path sort keys for a
// query: the explicit ORDER BY keys followed by every projected output name
// as a tie-breaker. With the total-order comparators this pins the output
// byte-for-byte to the solution multiset, which is the contract that lets
// the serial, morsel-parallel, and legacy engines produce identical results
// regardless of the order each one generates rows in. Under DISTINCT the
// ORDER BY keys are restricted to projected variables (as the SPARQL
// grammar requires): a non-projected sort key would make the output depend
// on which duplicate DISTINCT kept.
func finishSortKeys(q *Query, project []string) []OrderKey {
	keys := make([]OrderKey, 0, len(q.OrderBy)+len(project))
	if q.Distinct {
		proj := make(map[string]bool, len(project))
		for _, v := range project {
			proj[v] = true
		}
		for _, k := range q.OrderBy {
			if proj[k.Var] {
				keys = append(keys, k)
			}
		}
	} else {
		keys = append(keys, q.OrderBy...)
	}
	return append(keys, orderKeysFor(project)...)
}

// ---- aggregate arithmetic (shared by the ID-space and legacy engines) ----

// aggNumeric classifies a term for SUM/AVG accumulation: integer datatypes
// parse exactly to int64, other numeric datatypes to float64.
func aggNumeric(t rdf.Term) (i int64, f float64, isInt, ok bool) {
	if !t.IsLiteral() {
		return 0, 0, false, false
	}
	switch t.Datatype {
	case rdf.XSDInteger, rdf.XSDLong:
		v, err := strconv.ParseInt(t.Value, 10, 64)
		if err != nil {
			return 0, 0, false, false
		}
		return v, float64(v), true, true
	case rdf.XSDDouble, rdf.XSDDecimal:
		v, err := strconv.ParseFloat(t.Value, 64)
		if err != nil {
			return 0, 0, false, false
		}
		return 0, v, false, true
	}
	return 0, 0, false, false
}

// foldNumeric folds a multiset of terms for SUM or AVG. The values are
// summed in compareTerms order — float addition is not associative, so a
// canonical summation order is required for the engines (which produce rows
// in different orders) to agree bit-for-bit. An all-integer SUM yields
// xsd:integer, anything else xsd:decimal; AVG always yields xsd:decimal.
// The empty sequence yields 0 (per the SPARQL definitions of Sum/Avg);
// any non-numeric value makes the aggregate error out — ok=false, an
// unbound output column.
func foldNumeric(fn AggFunc, vals []rdf.Term) (rdf.Term, bool) {
	if len(vals) == 0 {
		return rdf.Integer(0), true
	}
	sort.SliceStable(vals, func(i, j int) bool { return compareTerms(vals[i], vals[j]) < 0 })
	var sumI int64
	var sumF float64
	allInt := true
	for _, t := range vals {
		i64, f, isInt, ok := aggNumeric(t)
		if !ok {
			return rdf.Term{}, false
		}
		if isInt {
			sumI += i64
		} else {
			allInt = false
		}
		sumF += f
	}
	if fn == AggAvg {
		if allInt {
			return rdf.Decimal(float64(sumI) / float64(len(vals))), true
		}
		return rdf.Decimal(sumF / float64(len(vals))), true
	}
	if allInt {
		return rdf.Integer(sumI), true
	}
	return rdf.Decimal(sumF), true
}

// finishTermRows runs the shared term-space finish tail on materialized
// output rows: DISTINCT, the deterministic sort, OFFSET/LIMIT. Both the
// ID-space aggregate finisher and the legacy evaluator end here, so their
// tails cannot diverge.
func finishTermRows(q *Query, project []string, rows []Binding) *Result {
	if q.Distinct {
		rows = dedupeRows(project, rows)
	}
	sortRows(rows, finishSortKeys(q, project))
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}
	return &Result{Vars: project, Rows: rows}
}

// ---- FILTER expression evaluation ----

// env resolves variable references during FILTER evaluation. The legacy
// evaluator passes Binding maps; the ID-space executor passes register rows
// that hydrate terms on demand.
type env interface {
	lookupVar(name string) (rdf.Term, bool)
}

// value is the evaluated form of an expression: a term or an error state.
type value struct {
	term  rdf.Term
	valid bool
}

func evalBool(e Expr, b env) (bool, error) {
	v, err := evalExpr(e, b)
	if err != nil {
		return false, err
	}
	if !v.valid {
		return false, nil
	}
	return effectiveBool(v.term), nil
}

// effectiveBool implements SPARQL's effective boolean value for our types.
func effectiveBool(t rdf.Term) bool {
	if !t.IsLiteral() {
		return true // bound IRI/blank counts as true in our subset
	}
	switch t.Datatype {
	case rdf.XSDBoolean:
		return t.Value == "true"
	case rdf.XSDInteger, rdf.XSDDouble, rdf.XSDLong:
		v, err := strconv.ParseFloat(t.Value, 64)
		return err == nil && v != 0
	default:
		return t.Value != ""
	}
}

func evalExpr(e Expr, b env) (value, error) {
	switch e := e.(type) {
	case VarExpr:
		t, ok := b.lookupVar(e.Name)
		return value{term: t, valid: ok}, nil
	case TermExpr:
		return value{term: e.Term, valid: true}, nil
	case BoundExpr:
		_, ok := b.lookupVar(e.Name)
		return value{term: rdf.Boolean(ok), valid: true}, nil
	case StrExpr:
		v, err := evalExpr(e.X, b)
		if err != nil || !v.valid {
			return value{}, err
		}
		return value{term: rdf.Literal(termText(v.term)), valid: true}, nil
	case NotExpr:
		v, err := evalExpr(e.X, b)
		if err != nil {
			return value{}, err
		}
		if !v.valid {
			return value{}, nil
		}
		return value{term: rdf.Boolean(!effectiveBool(v.term)), valid: true}, nil
	case RegexExpr:
		v, err := evalExpr(e.X, b)
		if err != nil {
			return value{}, err
		}
		if !v.valid {
			return value{}, nil
		}
		pat := e.Pattern
		if strings.Contains(e.Flags, "i") {
			pat = "(?i)" + pat
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return value{}, &Error{Msg: "bad REGEX pattern: " + err.Error()}
		}
		return value{term: rdf.Boolean(re.MatchString(termText(v.term))), valid: true}, nil
	case BinaryExpr:
		return evalBinary(e, b)
	}
	return value{}, &Error{Msg: "unknown expression node"}
}

func evalBinary(e BinaryExpr, b env) (value, error) {
	switch e.Op {
	case "&&", "||":
		lv, err := evalBool(e.L, b)
		if err != nil {
			return value{}, err
		}
		if e.Op == "&&" && !lv {
			return value{term: rdf.Boolean(false), valid: true}, nil
		}
		if e.Op == "||" && lv {
			return value{term: rdf.Boolean(true), valid: true}, nil
		}
		rv, err := evalBool(e.R, b)
		if err != nil {
			return value{}, err
		}
		return value{term: rdf.Boolean(rv), valid: true}, nil
	}
	lv, err := evalExpr(e.L, b)
	if err != nil {
		return value{}, err
	}
	rv, err := evalExpr(e.R, b)
	if err != nil {
		return value{}, err
	}
	if !lv.valid || !rv.valid {
		return value{}, nil
	}
	var c int
	ln, lok := numericValue(lv.term)
	rn, rok := numericValue(rv.term)
	if lok && rok {
		switch {
		case ln < rn:
			c = -1
		case ln > rn:
			c = 1
		}
	} else if e.Op == "=" || e.Op == "!=" {
		if lv.term.Equal(rv.term) {
			c = 0
		} else {
			c = 1
		}
	} else {
		lt, rt := termText(lv.term), termText(rv.term)
		switch {
		case lt < rt:
			c = -1
		case lt > rt:
			c = 1
		}
	}
	var out bool
	switch e.Op {
	case "=":
		out = c == 0
	case "!=":
		out = c != 0
	case "<":
		out = c < 0
	case ">":
		out = c > 0
	case "<=":
		out = c <= 0
	case ">=":
		out = c >= 0
	default:
		return value{}, &Error{Msg: "unknown operator " + e.Op}
	}
	return value{term: rdf.Boolean(out), valid: true}, nil
}

// termText is the plain text content of a term (IRI string or literal
// lexical form).
func termText(t rdf.Term) string { return t.Value }
