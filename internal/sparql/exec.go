package sparql

import (
	"sort"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// The executor runs a compiled Plan entirely in dictionary-ID space: a
// solution row is a fixed-width []rdf.ID register file indexed by the
// plan's var→slot table (rdf.NoID = unbound), graph probes go through
// ForEachMatchIDs, and DISTINCT/ORDER BY/aggregation compare raw IDs. Terms
// are rehydrated — through a per-query cache — only for FILTER expressions,
// ORDER BY comparisons between distinct IDs, aggregate arithmetic, and final
// Result materialization. Fixed-width ID keys also close the
// separator-collision hazard of the legacy evaluator's string rowKey.
//
// Every operator of the pipeline is implemented exactly once, as a physOp
// run method on this executor; the morsel-parallel path (parallel.go) runs
// the same methods over partitioned inputs. The output contract that makes
// that sound: the finish path sorts with the ORDER BY keys plus every
// projected variable as tie-breakers, under a total-order comparator, so the
// final bytes depend only on the solution multiset — never on the order rows
// were produced in.
//
// Rows are immutable once appended to a result set: every extension copies.
// That lets OPTIONAL/UNION share row storage without the deep clones the
// map-based evaluator needed.

// idRow is one solution: a register per query variable.
type idRow []rdf.ID

type executor struct {
	g     Source
	plan  *Plan
	width int
	cache map[rdf.ID]rdf.Term
	// strs caches Term.String() per ID for ORDER BY comparisons — String
	// re-renders on every call, which would otherwise dominate allocations
	// when sorting large results.
	strs map[rdf.ID]string
	// arena block-allocates rows: rows are append-only and live until the
	// Result materializes, so carving them out of shared slabs turns one
	// heap allocation per row into one per arenaRows rows.
	arena []rdf.ID
	// sortHook, when set, replaces the stable sort inside sortRows — the
	// morsel-parallel path installs its chunked sorter here so the shared
	// finish path stays identical otherwise. The hook must order rows
	// exactly as sort.SliceStable with rowLess would.
	sortHook func(rows []idRow, keys []OrderKey, slots []int)
}

// newExecutor is the one construction site for executors: serial run,
// per-worker, and merge executors all go through it, so the arena and
// term-cache setup cannot drift between paths.
func newExecutor(g Source, p *Plan) *executor {
	return &executor{g: g, plan: p, width: len(p.vars), cache: make(map[rdf.ID]rdf.Term)}
}

// arenaRows is the slab size of the row arena, in rows.
const arenaRows = 512

// newRow carves a copy of src out of the arena.
func (e *executor) newRow(src idRow) idRow {
	w := e.width
	if w == 0 {
		return nil
	}
	if len(e.arena) < w {
		e.arena = make([]rdf.ID, arenaRows*w)
	}
	r := e.arena[:w:w]
	e.arena = e.arena[w:]
	copy(r, src)
	return r
}

// seedRow returns the all-unbound input row of a pipeline.
func seedRow(width int) idRow {
	seed := make(idRow, width)
	for i := range seed {
		seed[i] = rdf.NoID
	}
	return seed
}

// runPlan executes a compiled plan serially and materializes the Result.
func runPlan(g Source, p *Plan) (*Result, error) {
	e := newExecutor(g, p)
	rows, err := e.runOps(p.ops, []idRow{seedRow(e.width)})
	if err != nil {
		return nil, err
	}
	return e.finish(rows)
}

// runOps pushes the input rows through a pipeline of operators.
func (e *executor) runOps(ops []physOp, in []idRow) ([]idRow, error) {
	cur := in
	for _, op := range ops {
		if len(cur) == 0 {
			return nil, nil
		}
		var err error
		cur, err = op.run(e, cur)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// finish applies the solution modifiers — aggregation, DISTINCT, sort,
// OFFSET/LIMIT — and materializes the Result. It is shared by the serial and
// morsel-parallel paths; because the sort keys extend ORDER BY with every
// projected variable (see finishSortKeys), the result depends only on the
// row multiset, which both paths produce identically.
func (e *executor) finish(rows []idRow) (*Result, error) {
	p, q := e.plan, e.plan.q

	if q.isAggregate() {
		return e.finishAggregate(rows)
	}

	if q.Distinct {
		rows = e.dedupe(rows)
	}
	e.sortRows(rows, finishSortKeys(q, p.project))
	rows = clipIDRows(q, rows)

	res := &Result{Vars: p.project, Rows: make([]Binding, 0, len(rows))}
	for _, r := range rows {
		row := make(Binding, len(p.project))
		for i, v := range p.project {
			if s := p.projSlots[i]; s >= 0 && r[s] != rdf.NoID {
				row[v] = e.term(r[s])
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// clipIDRows applies OFFSET/LIMIT to ID rows.
func clipIDRows(q *Query, rows []idRow) []idRow {
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}
	return rows
}

// term rehydrates an ID through the per-query cache.
func (e *executor) term(id rdf.ID) rdf.Term {
	if t, ok := e.cache[id]; ok {
		return t
	}
	t := e.g.TermOf(id)
	e.cache[id] = t
	return t
}

// ---- aggregation ----

// aggState accumulates one aggregate within one group.
type aggState struct {
	count int64
	seen  map[rdf.ID]struct{} // distinct values (COUNT/SUM/AVG DISTINCT)
	vals  []rdf.ID            // collected values (SUM/AVG)
	best  rdf.ID              // running MIN/MAX
	has   bool
}

// groupAcc is one GROUP BY group: a representative row for the group-key
// columns plus one accumulator per aggregate.
type groupAcc struct {
	rep  idRow
	aggs []aggState
}

// finishAggregate groups the solution rows by the GROUP BY registers and
// folds each aggregate, then renders one output row per group. Output rows
// are materialized into term space and finished with the legacy helpers
// (dedupeRows/sortRows), so the ID-space and term-space engines share the
// exact same tail.
func (e *executor) finishAggregate(rows []idRow) (*Result, error) {
	p, q := e.plan, e.plan.q

	groups := make(map[string]*groupAcc)
	var order []*groupAcc
	keyBuf := make([]byte, 0, 4*len(p.groupSlots))
	for _, r := range rows {
		keyBuf = keyBuf[:0]
		for _, s := range p.groupSlots {
			id := slotVal(r, s)
			keyBuf = append(keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		g, ok := groups[string(keyBuf)]
		if !ok {
			g = &groupAcc{rep: r, aggs: make([]aggState, len(p.aggSpecs))}
			groups[string(keyBuf)] = g
			order = append(order, g)
		}
		for i := range p.aggSpecs {
			e.accumulate(&p.aggSpecs[i], &g.aggs[i], r)
		}
	}
	// Ungrouped aggregation over zero solutions still yields one row
	// (COUNT=0, SUM=0); GROUP BY over zero solutions yields zero groups.
	if len(order) == 0 && len(q.GroupBy) == 0 {
		order = append(order, &groupAcc{aggs: make([]aggState, len(p.aggSpecs))})
	}

	out := make([]Binding, 0, len(order))
	for _, g := range order {
		row := make(Binding, len(p.project))
		for i, v := range p.project {
			col := p.aggCols[i]
			if col.agg >= 0 {
				if t, ok := e.aggValue(&p.aggSpecs[col.agg], &g.aggs[col.agg]); ok {
					row[v] = t
				}
				continue
			}
			if col.slot >= 0 && g.rep != nil && g.rep[col.slot] != rdf.NoID {
				row[v] = e.term(g.rep[col.slot])
			}
		}
		out = append(out, row)
	}
	return finishTermRows(q, p.project, out), nil
}

// slotVal reads a register, treating absent slots as unbound.
func slotVal(r idRow, slot int) rdf.ID {
	if slot < 0 {
		return rdf.NoID
	}
	return r[slot]
}

// accumulate folds one row into one aggregate's state.
func (e *executor) accumulate(spec *aggSpec, st *aggState, r idRow) {
	if spec.fn == AggCount && spec.star {
		st.count++
		return
	}
	id := slotVal(r, spec.slot)
	if id == rdf.NoID {
		return // unbound values are skipped by every aggregate
	}
	if spec.distinct {
		if st.seen == nil {
			st.seen = make(map[rdf.ID]struct{})
		}
		if _, dup := st.seen[id]; dup {
			return
		}
		st.seen[id] = struct{}{}
	}
	switch spec.fn {
	case AggCount:
		st.count++
	case AggSum, AggAvg:
		st.vals = append(st.vals, id)
	case AggMin:
		if !st.has || e.compareIDs(id, st.best) < 0 {
			st.best = id
		}
		st.has = true
	case AggMax:
		if !st.has || e.compareIDs(id, st.best) > 0 {
			st.best = id
		}
		st.has = true
	}
}

// aggValue renders one aggregate's final value; ok=false leaves the output
// column unbound (MIN/MAX of an empty group, SUM/AVG over non-numerics).
func (e *executor) aggValue(spec *aggSpec, st *aggState) (rdf.Term, bool) {
	switch spec.fn {
	case AggCount:
		n := st.count
		if spec.distinct {
			n = int64(len(st.seen))
		}
		return rdf.Integer(n), true
	case AggSum, AggAvg:
		vals := make([]rdf.Term, len(st.vals))
		for i, id := range st.vals {
			vals[i] = e.term(id)
		}
		return foldNumeric(spec.fn, vals)
	case AggMin, AggMax:
		if !st.has {
			return rdf.Term{}, false
		}
		return e.term(st.best), true
	}
	return rdf.Term{}, false
}

// ---- group execution: physical operators ----

// resolveRef resolves a compiled position against a row: the constant's ID,
// the register value for a bound variable, or the NoID wildcard for an
// unbound one. dead reports a constant that is not interned in the graph
// (the pattern can never match).
func resolveRef(p posRef, r idRow) (id rdf.ID, dead bool) {
	if p.isVar() {
		return r[p.slot], false
	}
	if p.id == rdf.NoID {
		return 0, true
	}
	return p.id, false
}

// trySet writes id into the row's register for a variable position,
// reporting false on a conflict with an already-set value (the same
// variable matched two different terms within one pattern).
func trySet(r idRow, slot int, id rdf.ID) bool {
	if slot < 0 {
		return true
	}
	if cur := r[slot]; cur != rdf.NoID {
		return cur == id
	}
	r[slot] = id
	return true
}

// run joins the scan's pattern against every input row.
func (o *scanOp) run(e *executor, in []idRow) ([]idRow, error) {
	cp := o.cp
	var out []idRow
	for _, r := range in {
		s, dead := resolveRef(cp.s, r)
		if dead {
			continue
		}
		oo, dead := resolveRef(cp.o, r)
		if dead {
			continue
		}
		var p rdf.ID
		if cp.p.isVar() {
			p = r[cp.p.slot] // NoID when unbound: wildcard
		} else {
			if cp.p.id == rdf.NoID {
				continue
			}
			p = cp.p.id
		}
		e.g.ForEachMatchIDs(s, p, oo, func(si, pi, oi rdf.ID) bool {
			nr := e.newRow(r)
			if trySet(nr, cp.s.slot, si) && trySet(nr, cp.p.slot, pi) && trySet(nr, cp.o.slot, oi) {
				out = append(out, nr)
			}
			return true
		})
	}
	return out, nil
}

// run evaluates the property-path pattern for every input row.
func (o *pathOp) run(e *executor, in []idRow) ([]idRow, error) {
	cp := o.cp
	var out []idRow
	for _, r := range in {
		s, dead := resolveRef(cp.s, r)
		if dead {
			continue
		}
		oo, dead := resolveRef(cp.o, r)
		if dead {
			continue
		}
		for _, start := range pathStarts(e.g, cp, s) {
			out = e.extendPathFrom(cp, r, start, oo, out)
		}
	}
	return out, nil
}

// pathStarts returns the deterministic start-node domain of a path pattern
// for subject value s (rdf.NoID = unbound). An unbound subject enumerates
// the subjects of the first step (objects if inverted) in first-seen scan
// order — the same enumeration as the legacy evaluator, which keeps
// unanchored closures tractable. The parallel executor morselizes over this
// same list.
func pathStarts(g Source, cp compiledPattern, s rdf.ID) []rdf.ID {
	if s != rdf.NoID {
		return []rdf.ID{s}
	}
	firstID := cp.p.stepIDs[0]
	if firstID == rdf.NoID {
		return nil
	}
	first := cp.p.steps[0]
	var starts []rdf.ID
	seen := map[rdf.ID]struct{}{}
	g.ForEachMatchIDs(rdf.NoID, firstID, rdf.NoID, func(si, _, oi rdf.ID) bool {
		n := si
		if first.Inverse {
			n = oi
		}
		if _, dup := seen[n]; !dup {
			seen[n] = struct{}{}
			starts = append(starts, n)
		}
		return true
	})
	return starts
}

// extendPathFrom walks the path closure from one start node and appends the
// resulting rows. Reached ends are emitted in ascending ID order so the row
// order is a pure function of (input row, start), independent of map
// iteration.
func (e *executor) extendPathFrom(cp compiledPattern, r idRow, start, o rdf.ID, out []idRow) []idRow {
	ends := map[rdf.ID]struct{}{start: {}}
	for i, step := range cp.p.steps {
		ends = e.walkStep(step, cp.p.stepIDs[i], ends)
		if len(ends) == 0 {
			break
		}
	}
	sorted := make([]rdf.ID, 0, len(ends))
	for end := range ends {
		if o != rdf.NoID && o != end {
			continue
		}
		sorted = append(sorted, end)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, end := range sorted {
		nr := e.newRow(r)
		if trySet(nr, cp.s.slot, start) && trySet(nr, cp.o.slot, end) {
			out = append(out, nr)
		}
	}
	return out
}

// walkStep advances a frontier of node IDs across one path step. pid is the
// step predicate's dictionary ID (rdf.NoID when the predicate is absent
// from the graph: a hop matches nothing, zero-length passes survive).
func (e *executor) walkStep(step PathStep, pid rdf.ID, frontier map[rdf.ID]struct{}) map[rdf.ID]struct{} {
	oneHop := func(nodes map[rdf.ID]struct{}) map[rdf.ID]struct{} {
		next := map[rdf.ID]struct{}{}
		if pid == rdf.NoID {
			return next
		}
		for n := range nodes {
			if step.Inverse {
				e.g.ForEachMatchIDs(rdf.NoID, pid, n, func(si, _, _ rdf.ID) bool {
					next[si] = struct{}{}
					return true
				})
			} else {
				e.g.ForEachMatchIDs(n, pid, rdf.NoID, func(_, _, oi rdf.ID) bool {
					next[oi] = struct{}{}
					return true
				})
			}
		}
		return next
	}

	switch step.Mod {
	case PathOnce:
		return oneHop(frontier)
	case PathZeroOrOne:
		out := copyIDSet(frontier)
		for n := range oneHop(frontier) {
			out[n] = struct{}{}
		}
		return out
	case PathOneOrMore, PathZeroOrMore:
		out := map[rdf.ID]struct{}{}
		if step.Mod == PathZeroOrMore {
			out = copyIDSet(frontier)
		}
		cur := frontier
		for {
			next := oneHop(cur)
			fresh := map[rdf.ID]struct{}{}
			for n := range next {
				if _, seen := out[n]; !seen {
					out[n] = struct{}{}
					fresh[n] = struct{}{}
				}
			}
			if len(fresh) == 0 {
				return out
			}
			cur = fresh
		}
	}
	return nil
}

func copyIDSet(s map[rdf.ID]struct{}) map[rdf.ID]struct{} {
	out := make(map[rdf.ID]struct{}, len(s))
	for k := range s {
		out[k] = struct{}{}
	}
	return out
}

// ---- FILTER / OPTIONAL / UNION ----

// rowEnv adapts a register row to the FILTER env, hydrating terms lazily.
type rowEnv struct {
	e *executor
	r idRow
}

func (re rowEnv) lookupVar(name string) (rdf.Term, bool) {
	slot, ok := re.e.plan.slots[name]
	if !ok {
		return rdf.Term{}, false
	}
	id := re.r[slot]
	if id == rdf.NoID {
		return rdf.Term{}, false
	}
	return re.e.term(id), true
}

// run keeps the rows satisfying the filter, compacting in place.
func (o *filterOp) run(e *executor, in []idRow) ([]idRow, error) {
	out := in[:0]
	for _, r := range in {
		ok, err := evalBool(o.expr, rowEnv{e: e, r: r})
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// run left-joins the nested pipeline per input row: rows the sub-pipeline
// matches are replaced by the extended rows, unmatched rows pass through.
func (o *optionalOp) run(e *executor, in []idRow) ([]idRow, error) {
	var out []idRow
	for _, r := range in {
		matched, err := e.runOps(o.ops, []idRow{r})
		if err != nil {
			return nil, err
		}
		if len(matched) == 0 {
			out = append(out, r)
		} else {
			out = append(out, matched...)
		}
	}
	return out, nil
}

// run evaluates every alternative per input row (row-major). The finish
// path's multiset contract makes row-major and alternative-major outputs
// byte-identical, and row-major is what lets the parallel executor flatten
// a leading UNION into independent per-alternative tasks.
func (o *unionOp) run(e *executor, in []idRow) ([]idRow, error) {
	var out []idRow
	for _, r := range in {
		for _, alt := range o.alts {
			matched, err := e.runOps(alt, []idRow{r})
			if err != nil {
				return nil, err
			}
			out = append(out, matched...)
		}
	}
	return out, nil
}

// ---- DISTINCT / ORDER BY in ID space ----

// projKey appends the DISTINCT key of r to buf[:0]: the fixed-width
// little-endian byte image of the projected IDs — collision free by
// construction, unlike the legacy separator-joined string key.
func (e *executor) projKey(buf []byte, r idRow) []byte {
	buf = buf[:0]
	for _, s := range e.plan.projSlots {
		id := rdf.NoID
		if s >= 0 {
			id = r[s]
		}
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return buf
}

// dedupe removes rows whose projected registers are identical, keeping the
// first occurrence in row order.
func (e *executor) dedupe(rows []idRow) []idRow {
	seen := make(map[string]struct{}, len(rows))
	buf := make([]byte, 0, 4*len(e.plan.projSlots))
	out := rows[:0]
	for _, r := range rows {
		buf = e.projKey(buf, r)
		k := string(buf)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	return out
}

// compareIDs orders two distinct term IDs with compareTerms semantics,
// memoizing the rendered string forms. Like compareTerms it is a total
// order: numerically equal but lexically different terms fall through to
// the string comparison instead of tying.
func (e *executor) compareIDs(a, b rdf.ID) int {
	ta, tb := e.term(a), e.term(b)
	if av, aok := numericValue(ta); aok {
		if bv, bok := numericValue(tb); bok {
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			}
			// equal numerics: fall through to the lexical tie-break
		}
	}
	as, bs := e.termStr(a, ta), e.termStr(b, tb)
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

func (e *executor) termStr(id rdf.ID, t rdf.Term) string {
	if s, ok := e.strs[id]; ok {
		return s
	}
	if e.strs == nil {
		e.strs = make(map[rdf.ID]string)
	}
	s := t.String()
	e.strs[id] = s
	return s
}

// sortRows orders rows by the keys, comparing IDs first (equal IDs are the
// same term) and rehydrating terms only when IDs differ.
func (e *executor) sortRows(rows []idRow, keys []OrderKey) {
	slots := make([]int, len(keys))
	for i, k := range keys {
		if s, ok := e.plan.slots[k.Var]; ok {
			slots[i] = s
		} else {
			slots[i] = -1
		}
	}
	if e.sortHook != nil {
		e.sortHook(rows, keys, slots)
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return e.rowLess(rows[i], rows[j], keys, slots)
	})
}

// rowLess is the sort comparator behind sortRows: a sorts strictly before b
// under the keys. Ties (all keys compare equal) report false, so stable
// sorts preserve input order.
func (e *executor) rowLess(ra, rb idRow, keys []OrderKey, slots []int) bool {
	for ki, k := range keys {
		s := slots[ki]
		a, b := rdf.NoID, rdf.NoID
		if s >= 0 {
			a, b = ra[s], rb[s]
		}
		aok, bok := a != rdf.NoID, b != rdf.NoID
		if !aok && !bok {
			continue
		}
		if !aok {
			return !k.Desc // unbound sorts first ascending
		}
		if !bok {
			return k.Desc
		}
		if a == b {
			continue
		}
		c := e.compareIDs(a, b)
		if c == 0 {
			continue
		}
		if k.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}
