package sparql

import (
	"sort"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// The executor runs a compiled Plan entirely in dictionary-ID space: a
// solution row is a fixed-width []rdf.ID register file indexed by the
// plan's var→slot table (rdf.NoID = unbound), graph probes go through
// ForEachMatchIDs, and DISTINCT/ORDER BY/COUNT compare raw IDs. Terms are
// rehydrated — through a per-query cache — only for FILTER expressions,
// ORDER BY comparisons between distinct IDs, and final Result
// materialization. Fixed-width ID keys also close the separator-collision
// hazard of the legacy evaluator's string rowKey.
//
// Rows are immutable once appended to a result set: every extension copies.
// That lets OPTIONAL/UNION share row storage without the deep clones the
// map-based evaluator needed.

// idRow is one solution: a register per query variable.
type idRow []rdf.ID

type executor struct {
	g     Source
	plan  *Plan
	width int
	cache map[rdf.ID]rdf.Term
	// strs caches Term.String() per ID for ORDER BY comparisons — String
	// re-renders on every call, which would otherwise dominate allocations
	// when sorting large results.
	strs map[rdf.ID]string
	// arena block-allocates rows: rows are append-only and live until the
	// Result materializes, so carving them out of shared slabs turns one
	// heap allocation per row into one per arenaRows rows.
	arena []rdf.ID
	// sortHook, when set, replaces the stable sort inside sortRows — the
	// morsel-parallel path installs its chunked sorter here so the shared
	// finish path stays identical otherwise. The hook must order rows
	// exactly as sort.SliceStable with rowLess would.
	sortHook func(rows []idRow, keys []OrderKey, slots []int)
}

// arenaRows is the slab size of the row arena, in rows.
const arenaRows = 512

// newRow carves a copy of src out of the arena.
func (e *executor) newRow(src idRow) idRow {
	w := e.width
	if w == 0 {
		return nil
	}
	if len(e.arena) < w {
		e.arena = make([]rdf.ID, arenaRows*w)
	}
	r := e.arena[:w:w]
	e.arena = e.arena[w:]
	copy(r, src)
	return r
}

// runPlan executes a compiled plan and materializes the Result.
func runPlan(g Source, p *Plan) (*Result, error) {
	e := &executor{g: g, plan: p, width: len(p.vars), cache: make(map[rdf.ID]rdf.Term)}
	seed := make(idRow, e.width)
	for i := range seed {
		seed[i] = rdf.NoID
	}
	rows, err := e.execGroup(p.root, []idRow{seed})
	if err != nil {
		return nil, err
	}
	return e.finish(rows)
}

// finish applies the solution modifiers — COUNT collapse, DISTINCT, sort,
// OFFSET/LIMIT — and materializes the Result. It is shared by the serial and
// morsel-parallel paths: the parallel executor concatenates its per-morsel
// buckets into serial row order and hands them here, so everything
// order-sensitive happens identically on both paths.
func (e *executor) finish(rows []idRow) (*Result, error) {
	p, q := e.plan, e.plan.q

	// COUNT projection collapses the solution sequence to a single row.
	if q.CountAs != "" {
		n := 0
		if q.CountAll {
			n = len(rows)
		} else if slot, ok := p.slots[q.Count]; ok {
			if q.Distinct {
				seen := make(map[rdf.ID]struct{})
				for _, r := range rows {
					if r[slot] != rdf.NoID {
						seen[r[slot]] = struct{}{}
					}
				}
				n = len(seen)
			} else {
				for _, r := range rows {
					if r[slot] != rdf.NoID {
						n++
					}
				}
			}
		}
		return &Result{
			Vars: []string{q.CountAs},
			Rows: []Binding{{q.CountAs: rdf.Integer(int64(n))}},
		}, nil
	}

	if q.Distinct {
		rows = e.dedupe(rows)
	}
	if len(q.OrderBy) > 0 {
		e.sortRows(rows, q.OrderBy)
	} else {
		// Deterministic output even without ORDER BY: sort by projected
		// values (same contract as the legacy evaluator).
		e.sortRows(rows, orderKeysFor(p.project))
	}
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}

	res := &Result{Vars: p.project, Rows: make([]Binding, 0, len(rows))}
	for _, r := range rows {
		row := make(Binding, len(p.project))
		for i, v := range p.project {
			if s := p.projSlots[i]; s >= 0 && r[s] != rdf.NoID {
				row[v] = e.term(r[s])
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// term rehydrates an ID through the per-query cache.
func (e *executor) term(id rdf.ID) rdf.Term {
	if t, ok := e.cache[id]; ok {
		return t
	}
	t := e.g.TermOf(id)
	e.cache[id] = t
	return t
}

// ---- group execution ----

func (e *executor) execGroup(grp *planGroup, in []idRow) ([]idRow, error) {
	cur := in
	for _, st := range grp.steps {
		var err error
		switch st := st.(type) {
		case *bgpStep:
			for _, cp := range st.patterns {
				if len(cur) == 0 {
					break
				}
				cur = e.extend(cp, cur)
			}
		case *filterStep:
			cur, err = e.applyFilter(st.expr, cur)
		case *optionalStep:
			cur, err = e.applyOptional(st.group, cur)
		case *unionStep:
			cur, err = e.applyUnion(st.alts, cur)
		}
		if err != nil {
			return nil, err
		}
		if len(cur) == 0 {
			return nil, nil
		}
	}
	return cur, nil
}

// resolveRef resolves a compiled position against a row: the constant's ID,
// the register value for a bound variable, or the NoID wildcard for an
// unbound one. dead reports a constant that is not interned in the graph
// (the pattern can never match).
func resolveRef(p posRef, r idRow) (id rdf.ID, dead bool) {
	if p.isVar() {
		return r[p.slot], false
	}
	if p.id == rdf.NoID {
		return 0, true
	}
	return p.id, false
}

// trySet writes id into the row's register for a variable position,
// reporting false on a conflict with an already-set value (the same
// variable matched two different terms within one pattern).
func trySet(r idRow, slot int, id rdf.ID) bool {
	if slot < 0 {
		return true
	}
	if cur := r[slot]; cur != rdf.NoID {
		return cur == id
	}
	r[slot] = id
	return true
}

// extend joins one compiled pattern against every input row.
func (e *executor) extend(cp compiledPattern, in []idRow) []idRow {
	var out []idRow
	for _, r := range in {
		s, dead := resolveRef(cp.s, r)
		if dead {
			continue
		}
		o, dead := resolveRef(cp.o, r)
		if dead {
			continue
		}
		if cp.p.isPath() {
			out = e.extendPath(cp, r, s, o, out)
			continue
		}
		var p rdf.ID
		if cp.p.isVar() {
			p = r[cp.p.slot] // NoID when unbound: wildcard
		} else {
			if cp.p.id == rdf.NoID {
				continue
			}
			p = cp.p.id
		}
		e.g.ForEachMatchIDs(s, p, o, func(si, pi, oi rdf.ID) bool {
			nr := e.newRow(r)
			if trySet(nr, cp.s.slot, si) && trySet(nr, cp.p.slot, pi) && trySet(nr, cp.o.slot, oi) {
				out = append(out, nr)
			}
			return true
		})
	}
	return out
}

// extendPath evaluates a property-path pattern for one row, in ID space.
func (e *executor) extendPath(cp compiledPattern, r idRow, s, o rdf.ID, out []idRow) []idRow {
	starts := map[rdf.ID]struct{}{}
	if s != rdf.NoID {
		starts[s] = struct{}{}
	} else {
		// Candidate starts: subjects of the first step (objects if the
		// first step is inverted) — same enumeration as the legacy
		// evaluator, which keeps unanchored closures tractable.
		first := cp.p.steps[0]
		if firstID := cp.p.stepIDs[0]; firstID != rdf.NoID {
			e.g.ForEachMatchIDs(rdf.NoID, firstID, rdf.NoID, func(si, _, oi rdf.ID) bool {
				if first.Inverse {
					starts[oi] = struct{}{}
				} else {
					starts[si] = struct{}{}
				}
				return true
			})
		}
	}
	for start := range starts {
		ends := map[rdf.ID]struct{}{start: {}}
		for i, step := range cp.p.steps {
			ends = e.walkStep(step, cp.p.stepIDs[i], ends)
			if len(ends) == 0 {
				break
			}
		}
		for end := range ends {
			if o != rdf.NoID && o != end {
				continue
			}
			nr := e.newRow(r)
			if trySet(nr, cp.s.slot, start) && trySet(nr, cp.o.slot, end) {
				out = append(out, nr)
			}
		}
	}
	return out
}

// walkStep advances a frontier of node IDs across one path step. pid is the
// step predicate's dictionary ID (rdf.NoID when the predicate is absent
// from the graph: a hop matches nothing, zero-length passes survive).
func (e *executor) walkStep(step PathStep, pid rdf.ID, frontier map[rdf.ID]struct{}) map[rdf.ID]struct{} {
	oneHop := func(nodes map[rdf.ID]struct{}) map[rdf.ID]struct{} {
		next := map[rdf.ID]struct{}{}
		if pid == rdf.NoID {
			return next
		}
		for n := range nodes {
			if step.Inverse {
				e.g.ForEachMatchIDs(rdf.NoID, pid, n, func(si, _, _ rdf.ID) bool {
					next[si] = struct{}{}
					return true
				})
			} else {
				e.g.ForEachMatchIDs(n, pid, rdf.NoID, func(_, _, oi rdf.ID) bool {
					next[oi] = struct{}{}
					return true
				})
			}
		}
		return next
	}

	switch step.Mod {
	case PathOnce:
		return oneHop(frontier)
	case PathZeroOrOne:
		out := copyIDSet(frontier)
		for n := range oneHop(frontier) {
			out[n] = struct{}{}
		}
		return out
	case PathOneOrMore, PathZeroOrMore:
		out := map[rdf.ID]struct{}{}
		if step.Mod == PathZeroOrMore {
			out = copyIDSet(frontier)
		}
		cur := frontier
		for {
			next := oneHop(cur)
			fresh := map[rdf.ID]struct{}{}
			for n := range next {
				if _, seen := out[n]; !seen {
					out[n] = struct{}{}
					fresh[n] = struct{}{}
				}
			}
			if len(fresh) == 0 {
				return out
			}
			cur = fresh
		}
	}
	return nil
}

func copyIDSet(s map[rdf.ID]struct{}) map[rdf.ID]struct{} {
	out := make(map[rdf.ID]struct{}, len(s))
	for k := range s {
		out[k] = struct{}{}
	}
	return out
}

// ---- FILTER / OPTIONAL / UNION ----

// rowEnv adapts a register row to the FILTER env, hydrating terms lazily.
type rowEnv struct {
	e *executor
	r idRow
}

func (re rowEnv) lookupVar(name string) (rdf.Term, bool) {
	slot, ok := re.e.plan.slots[name]
	if !ok {
		return rdf.Term{}, false
	}
	id := re.r[slot]
	if id == rdf.NoID {
		return rdf.Term{}, false
	}
	return re.e.term(id), true
}

func (e *executor) applyFilter(expr Expr, in []idRow) ([]idRow, error) {
	out := in[:0]
	for _, r := range in {
		ok, err := evalBool(expr, rowEnv{e: e, r: r})
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

func (e *executor) applyOptional(sub *planGroup, in []idRow) ([]idRow, error) {
	var out []idRow
	for _, r := range in {
		matched, err := e.execGroup(sub, []idRow{r})
		if err != nil {
			return nil, err
		}
		if len(matched) == 0 {
			out = append(out, r)
		} else {
			out = append(out, matched...)
		}
	}
	return out, nil
}

func (e *executor) applyUnion(alts []*planGroup, in []idRow) ([]idRow, error) {
	var out []idRow
	for _, alt := range alts {
		// Rows are immutable, but a FILTER inside an alternative compacts
		// its input slice in place — give each alternative its own slice.
		cp := append([]idRow(nil), in...)
		matched, err := e.execGroup(alt, cp)
		if err != nil {
			return nil, err
		}
		out = append(out, matched...)
	}
	return out, nil
}

// ---- DISTINCT / ORDER BY in ID space ----

// projKey appends the DISTINCT key of r to buf[:0]: the fixed-width
// little-endian byte image of the projected IDs — collision free by
// construction, unlike the legacy separator-joined string key.
func (e *executor) projKey(buf []byte, r idRow) []byte {
	buf = buf[:0]
	for _, s := range e.plan.projSlots {
		id := rdf.NoID
		if s >= 0 {
			id = r[s]
		}
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return buf
}

// dedupe removes rows whose projected registers are identical, keeping the
// first occurrence in row order.
func (e *executor) dedupe(rows []idRow) []idRow {
	seen := make(map[string]struct{}, len(rows))
	buf := make([]byte, 0, 4*len(e.plan.projSlots))
	out := rows[:0]
	for _, r := range rows {
		buf = e.projKey(buf, r)
		k := string(buf)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	return out
}

// compareIDs orders two distinct term IDs with compareTerms semantics,
// memoizing the rendered string forms.
func (e *executor) compareIDs(a, b rdf.ID) int {
	ta, tb := e.term(a), e.term(b)
	if av, aok := numericValue(ta); aok {
		if bv, bok := numericValue(tb); bok {
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			default:
				return 0
			}
		}
	}
	as, bs := e.termStr(a, ta), e.termStr(b, tb)
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

func (e *executor) termStr(id rdf.ID, t rdf.Term) string {
	if s, ok := e.strs[id]; ok {
		return s
	}
	if e.strs == nil {
		e.strs = make(map[rdf.ID]string)
	}
	s := t.String()
	e.strs[id] = s
	return s
}

// sortRows orders rows by the keys, comparing IDs first (equal IDs are the
// same term) and rehydrating terms only when IDs differ.
func (e *executor) sortRows(rows []idRow, keys []OrderKey) {
	slots := make([]int, len(keys))
	for i, k := range keys {
		if s, ok := e.plan.slots[k.Var]; ok {
			slots[i] = s
		} else {
			slots[i] = -1
		}
	}
	if e.sortHook != nil {
		e.sortHook(rows, keys, slots)
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return e.rowLess(rows[i], rows[j], keys, slots)
	})
}

// rowLess is the sort comparator behind sortRows: a sorts strictly before b
// under the keys. Ties (all keys compare equal) report false, so stable
// sorts preserve input order.
func (e *executor) rowLess(ra, rb idRow, keys []OrderKey, slots []int) bool {
	for ki, k := range keys {
		s := slots[ki]
		a, b := rdf.NoID, rdf.NoID
		if s >= 0 {
			a, b = ra[s], rb[s]
		}
		aok, bok := a != rdf.NoID, b != rdf.NoID
		if !aok && !bok {
			continue
		}
		if !aok {
			return !k.Desc // unbound sorts first ascending
		}
		if !bok {
			return k.Desc
		}
		if a == b {
			continue
		}
		c := e.compareIDs(a, b)
		if c == 0 {
			continue
		}
		if k.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}
