package sparql

import (
	"testing"
)

func parseQ(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src, nil)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

func TestPrunePatternsBasic(t *testing.T) {
	q := parseQ(t, `SELECT ?s WHERE { ?s <urn:p> "x" . <urn:a> ?p ?o }`)
	pats, ok := q.PrunePatterns()
	if !ok || len(pats) != 2 {
		t.Fatalf("ok=%v pats=%d, want 2 patterns", ok, len(pats))
	}
	if pats[0][0] != nil || pats[0][1] == nil || pats[0][1].Value != "urn:p" || pats[0][2] == nil {
		t.Fatalf("pattern 0 = %v", pats[0])
	}
	if pats[1][0] == nil || pats[1][0].Value != "urn:a" || pats[1][1] != nil || pats[1][2] != nil {
		t.Fatalf("pattern 1 = %v", pats[1])
	}
}

func TestPrunePatternsOptionalAndUnion(t *testing.T) {
	q := parseQ(t, `SELECT ?s WHERE {
		?s <urn:p> ?o .
		OPTIONAL { ?s <urn:q> ?n }
		{ ?s <urn:r1> ?x } UNION { ?s <urn:r2> ?x }
	}`)
	pats, ok := q.PrunePatterns()
	if !ok || len(pats) != 4 {
		t.Fatalf("ok=%v pats=%d, want 4 patterns (OPTIONAL and UNION included)", ok, len(pats))
	}
	preds := map[string]bool{}
	for _, p := range pats {
		if p[1] != nil {
			preds[p[1].Value] = true
		}
	}
	for _, want := range []string{"urn:p", "urn:q", "urn:r1", "urn:r2"} {
		if !preds[want] {
			t.Errorf("predicate %s missing from hint", want)
		}
	}
}

func TestPrunePatternsSequencePath(t *testing.T) {
	q := parseQ(t, `SELECT ?o WHERE { <urn:a> <urn:p>/<urn:q> ?o }`)
	pats, ok := q.PrunePatterns()
	if !ok || len(pats) != 2 {
		t.Fatalf("ok=%v pats=%d, want per-step decomposition", ok, len(pats))
	}
	// Step 1: subject bound, object (the intermediate node) unbound.
	if pats[0][0] == nil || pats[0][0].Value != "urn:a" || pats[0][1].Value != "urn:p" || pats[0][2] != nil {
		t.Fatalf("step 1 = %v", pats[0])
	}
	// Step 2: subject unbound, object is the pattern object (a variable here).
	if pats[1][0] != nil || pats[1][1].Value != "urn:q" || pats[1][2] != nil {
		t.Fatalf("step 2 = %v", pats[1])
	}
}

func TestPrunePatternsInversePath(t *testing.T) {
	q := parseQ(t, `SELECT ?s WHERE { ?s ^<urn:p> <urn:a> }`)
	pats, ok := q.PrunePatterns()
	if !ok || len(pats) != 1 {
		t.Fatalf("ok=%v pats=%d", ok, len(pats))
	}
	// ^iri traverses object→subject: the bound <urn:a> sits in the SUBJECT
	// position of the underlying triples.
	if pats[0][0] == nil || pats[0][0].Value != "urn:a" || pats[0][2] != nil {
		t.Fatalf("inverse step = %v", pats[0])
	}
}

func TestPrunePatternsModifierBails(t *testing.T) {
	for _, src := range []string{
		`SELECT ?o WHERE { <urn:a> <urn:p>* ?o }`,
		`SELECT ?o WHERE { <urn:a> <urn:p>+ ?o }`,
		`SELECT ?o WHERE { <urn:a> <urn:p>? ?o }`,
	} {
		q := parseQ(t, src)
		if pats, ok := q.PrunePatterns(); ok {
			t.Errorf("%s: ok=true (pats=%d), want bail — zero/extended-length paths must disable pruning", src, len(pats))
		}
	}
}

func TestPrunePatternsLiteralObject(t *testing.T) {
	q := parseQ(t, `SELECT ?s WHERE { ?s <urn:p> 42 }`)
	pats, ok := q.PrunePatterns()
	if !ok || len(pats) != 1 || pats[0][2] == nil {
		t.Fatalf("ok=%v pats=%v", ok, pats)
	}
	if !pats[0][2].IsLiteral() {
		t.Fatalf("object hint is not a literal: %v", pats[0][2])
	}
}
