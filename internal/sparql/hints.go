package sparql

import "github.com/hpc-io/prov-io/internal/rdf"

// PrunePatterns derives the query's segment-pushdown hint: the union of
// every triple pattern its WHERE clause could touch, as (S, P, O) triples
// with nil in unbound positions. The store's segment pruner may skip a
// segment only when NO returned pattern can match it — triples matching no
// pattern cannot participate in any binding, so the query's results over the
// pruned store equal the results over the full store.
//
// Property paths decompose per step: in a sequence path only the first step
// sees the subject binding and only the last sees the object, intermediate
// nodes are unbound, and an inverse step (^iri) swaps its subject and object
// sides. ok is false — prune nothing — when any step carries a cardinality
// modifier (*, +, ?): zero-length paths match node-to-itself without
// touching any triple, so their results depend on the graph's node domain,
// which pruning would shrink.
func (q *Query) PrunePatterns() ([][3]*rdf.Term, bool) {
	if q.Where == nil {
		return nil, true
	}
	var pats [][3]*rdf.Term
	if !collectPrunePatterns(q.Where, &pats) {
		return nil, false
	}
	return pats, true
}

func collectPrunePatterns(g *Group, out *[][3]*rdf.Term) bool {
	for _, e := range g.Elems {
		switch e := e.(type) {
		case TriplePattern:
			if !patternHints(e, out) {
				return false
			}
		case OptionalElem:
			if !collectPrunePatterns(e.Group, out) {
				return false
			}
		case UnionElem:
			for _, alt := range e.Alternatives {
				if !collectPrunePatterns(alt, out) {
					return false
				}
			}
		}
	}
	return true
}

func patternHints(tp TriplePattern, out *[][3]*rdf.Term) bool {
	var s, o *rdf.Term
	if !tp.S.IsVar() {
		t := tp.S.Term
		s = &t
	}
	if !tp.O.IsVar() {
		t := tp.O.Term
		o = &t
	}
	if tp.P.IsVar() || len(tp.P.Steps) == 0 {
		*out = append(*out, [3]*rdf.Term{s, nil, o})
		return true
	}
	steps := tp.P.Steps
	for i, st := range steps {
		if st.Mod != PathOnce {
			return false
		}
		var ss, oo *rdf.Term
		if i == 0 {
			ss = s
		}
		if i == len(steps)-1 {
			oo = o
		}
		p := st.IRI
		if st.Inverse {
			ss, oo = oo, ss
		}
		*out = append(*out, [3]*rdf.Term{ss, &p, oo})
	}
	return true
}
