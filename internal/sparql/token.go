// Package sparql implements the SPARQL SELECT subset PROV-IO's user engine
// needs: basic graph patterns with predicate-object lists, property-path
// modifiers (+, *) for transitive lineage queries, FILTER expressions,
// OPTIONAL and UNION groups, DISTINCT, COUNT, ORDER BY, LIMIT and OFFSET.
package sparql

import "fmt"

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokKeyword
	tokVar     // ?name
	tokIRI     // <...>
	tokPName   // prefix:local or prefix: or :local
	tokString  // "..."
	tokNumber  // 42, 3.5, -1
	tokA       // the keyword 'a'
	tokLBrace  // {
	tokRBrace  // }
	tokLParen  // (
	tokRParen  // )
	tokDot     // .
	tokSemi    // ;
	tokComma   // ,
	tokStar    // *
	tokPlus    // +
	tokQuest   // ?  (only as path modifier; lexer resolves vars first)
	tokCaret   // ^
	tokSlash   // /
	tokPipe    // |
	tokEq      // =
	tokNeq     // !=
	tokLt      // <  (in expression context)
	tokGt      // >
	tokLe      // <=
	tokGe      // >=
	tokAndAnd  // &&
	tokOrOr    // ||
	tokBang    // !
	tokLangTag // @en
	tokDTSep   // ^^
)

type token struct {
	kind tokenKind
	text string // keyword upper-cased; var without '?'; IRI without <>
	line int
}

func (t token) String() string {
	return fmt.Sprintf("%d:%q", t.kind, t.text)
}
