package sparql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/hpc-io/prov-io/internal/rdf"
)

var parityWorkers = []int{1, 2, 4, 8}

// identicalResults checks bit-identical results: same vars, same rows in the
// same order, term for term. Stricter than the multiset oracle — the
// parallel executor promises Eval's exact output, not a reordering of it.
func identicalResults(a, b *Result) bool {
	if len(a.Vars) != len(b.Vars) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i, v := range a.Vars {
		if b.Vars[i] != v {
			return false
		}
	}
	for i, ra := range a.Rows {
		rb := b.Rows[i]
		if len(ra) != len(rb) {
			return false
		}
		for k, ta := range ra {
			tb, ok := rb[k]
			if !ok || !ta.Equal(tb) {
				return false
			}
		}
	}
	return true
}

// bigParityGraph builds a graph large enough that leading scans clear the
// minParallelScan threshold, with enough value skew to exercise joins,
// DISTINCT collapses, and numeric sorts.
func bigParityGraph(rng *rand.Rand, n int) *rdf.Graph {
	g := rdf.NewGraph()
	for i := 0; i < n; i++ {
		s := rdf.IRI(fmt.Sprintf("%ss%d", parityNS, rng.Intn(n/4+1)))
		g.Add(rdf.Triple{S: s, P: rdf.IRI(parityNS + "p0"), O: rdf.IRI(fmt.Sprintf("%so%d", parityNS, rng.Intn(7)))})
		g.Add(rdf.Triple{S: s, P: rdf.IRI(parityNS + "p1"), O: rdf.Integer(int64(rng.Intn(50)))})
		if rng.Intn(3) == 0 {
			g.Add(rdf.Triple{S: s, P: rdf.IRI(parityNS + "p2"), O: rdf.IRI(fmt.Sprintf("%ss%d", parityNS, rng.Intn(n/4+1)))})
		}
	}
	return g
}

// TestParallelParityRandomBGP: over randomized graphs and BGPs, EvalParallel
// at every worker count returns Eval's exact rows and EvalLegacyNaive's
// multiset.
func TestParallelParityRandomBGP(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 40; iter++ {
		g := bigParityGraph(rng, 150+rng.Intn(300))
		patterns := randomBGP(rng)
		distinct := ""
		if rng.Intn(3) == 0 {
			distinct = "DISTINCT "
		}
		query := "SELECT " + distinct + "* WHERE { " + strings.Join(patterns, " ") + " }"
		q, err := Parse(query, nil)
		if err != nil {
			t.Fatalf("iter %d: parse %q: %v", iter, query, err)
		}
		serial, err := Eval(g, q)
		if err != nil {
			t.Fatalf("iter %d: serial eval %q: %v", iter, query, err)
		}
		naive, err := EvalLegacyNaive(g, q)
		if err != nil {
			t.Fatalf("iter %d: naive eval %q: %v", iter, query, err)
		}
		if !multisetsEqual(rowMultiset(serial), rowMultiset(naive)) {
			t.Fatalf("iter %d: serial vs naive diverge for %q", iter, query)
		}
		for _, w := range parityWorkers {
			par, err := EvalParallel(g, q, w)
			if err != nil {
				t.Fatalf("iter %d: parallel(%d) eval %q: %v", iter, w, query, err)
			}
			if !identicalResults(serial, par) {
				t.Fatalf("iter %d workers=%d: parallel result differs from serial\nquery: %s\nserial %d rows, parallel %d rows",
					iter, w, query, len(serial.Rows), len(par.Rows))
			}
		}
	}
}

// TestParallelParityStructured covers the specially-compiled forms: FILTER,
// OPTIONAL, UNION and property paths (both task-decomposed, no serial
// fallback), ORDER BY/LIMIT/OFFSET, DISTINCT, and GROUP BY/aggregates.
func TestParallelParityStructured(t *testing.T) {
	g := lineageGraph()
	// Pad the graph so leading scans, paths, and UNION alternatives cross
	// the parallel threshold.
	derived := rdf.IRI("http://www.w3.org/ns/prov#wasDerivedFrom")
	attr := rdf.IRI("http://www.w3.org/ns/prov#wasAttributedTo")
	for i := 0; i < 300; i++ {
		s := rdf.IRI(fmt.Sprintf("http://example.org/pad%d", i))
		g.Add(rdf.Triple{S: s, P: rdf.IRI("http://example.org/size"), O: rdf.Integer(int64(i % 97))})
		g.Add(rdf.Triple{S: s, P: derived, O: rdf.IRI(fmt.Sprintf("http://example.org/pad%d", i/2))})
		g.Add(rdf.Triple{S: s, P: attr, O: rdf.IRI(fmt.Sprintf("http://example.org/prog%d", i%2))})
	}
	queries := []string{
		`SELECT ?e ?s WHERE { ?e ex:size ?s . FILTER(?s > 100) }`,
		`SELECT ?e ?s WHERE { ?e ex:size ?s . FILTER(?s > 40 && ?s < 90) }`,
		`SELECT ?e ?p WHERE { ?e ex:size ?s . OPTIONAL { ?e prov:wasAttributedTo ?p } }`,
		`SELECT ?x WHERE { { ?x prov:wasAttributedTo ex:prog0 } UNION { ?x prov:wasAttributedTo ex:prog1 } }`,
		`SELECT ?x ?s WHERE { { ?x prov:wasAttributedTo ex:prog0 } UNION { ?x prov:wasDerivedFrom+ ?s } }`,
		`SELECT ?src WHERE { ex:decimate.h5 prov:wasDerivedFrom+ ?src . }`,
		`SELECT ?s ?anc WHERE { ?s prov:wasDerivedFrom+ ?anc . }`,
		`SELECT ?s ?anc WHERE { ?s prov:wasDerivedFrom/prov:wasDerivedFrom ?anc . }`,
		`SELECT ?e ?s WHERE { ?e ex:size ?s . } ORDER BY DESC(?s) LIMIT 2`,
		`SELECT ?e ?s WHERE { ?e ex:size ?s . } ORDER BY ?s OFFSET 5 LIMIT 10`,
		`SELECT DISTINCT ?p WHERE { ?e ?p ?o . }`,
		`SELECT DISTINCT ?s WHERE { ?e ex:size ?s . }`,
		`SELECT (COUNT(?e) AS ?n) WHERE { ?e ex:size ?s . }`,
		`SELECT ?p (COUNT(?e) AS ?n) WHERE { ?e ?p ?o . } GROUP BY ?p ORDER BY ?p`,
		`SELECT (SUM(?s) AS ?total) (AVG(?s) AS ?mean) (MIN(?s) AS ?lo) (MAX(?s) AS ?hi) WHERE { ?e ex:size ?s . }`,
		`SELECT ?prog (COUNT(*) AS ?n) WHERE { { ?x prov:wasAttributedTo ?prog } UNION { ?x prov:wasDerivedFrom ?prog } } GROUP BY ?prog`,
		`SELECT ?anc (COUNT(?s) AS ?n) WHERE { ?s prov:wasDerivedFrom+ ?anc . } GROUP BY ?anc`,
		`SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`,
	}
	for _, query := range queries {
		q, err := Parse(query, testNS())
		if err != nil {
			t.Fatalf("parse %q: %v", query, err)
		}
		serial, err := Eval(g, q)
		if err != nil {
			t.Fatalf("serial eval %q: %v", query, err)
		}
		for _, w := range parityWorkers {
			par, err := EvalParallel(g, q, w)
			if err != nil {
				t.Fatalf("parallel(%d) eval %q: %v", w, query, err)
			}
			if !identicalResults(serial, par) {
				t.Errorf("workers=%d: parallel differs from serial for %q\nserial:   %v\nparallel: %v",
					w, query, rowMultiset(serial), rowMultiset(par))
			}
		}
	}
}

// TestParallelSortLargeResult pushes the result set past minParallelSort so
// the chunked stable sort + pairwise merge path actually runs, and checks
// bit-identical output (the stable order is unique, so any instability or
// merge tie-break bug shows up as a diff).
func TestParallelSortLargeResult(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := rdf.NewGraph()
	for i := 0; i < 6000; i++ {
		g.Add(rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("%sitem%d", parityNS, i)),
			P: rdf.IRI(parityNS + "val"),
			// Few distinct values: lots of sort ties to break by input order.
			O: rdf.Integer(int64(rng.Intn(5))),
		})
	}
	query := "SELECT ?s ?v WHERE { ?s <" + parityNS + "val> ?v . } ORDER BY ?v"
	q, err := Parse(query, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	serial, err := Eval(g, q)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	if len(serial.Rows) != 6000 {
		t.Fatalf("serial returned %d rows, want 6000", len(serial.Rows))
	}
	for _, w := range parityWorkers {
		par, err := EvalParallel(g, q, w)
		if err != nil {
			t.Fatalf("parallel(%d): %v", w, err)
		}
		if !identicalResults(serial, par) {
			t.Fatalf("workers=%d: large sorted result differs from serial", w)
		}
	}
}

// TestParallelFilterError: a FILTER error inside a morsel worker surfaces
// from EvalParallel just as it does from Eval.
func TestParallelFilterError(t *testing.T) {
	g := rdf.NewGraph()
	for i := 0; i < 400; i++ {
		g.Add(rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("%sx%d", parityNS, i)),
			P: rdf.IRI(parityNS + "p"),
			O: rdf.Literal("v"),
		})
	}
	query := `SELECT ?s WHERE { ?s <` + parityNS + `p> ?o . FILTER(REGEX(?o, "[")) }`
	q, err := Parse(query, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Eval(g, q); err == nil {
		t.Fatal("serial eval accepted bad regex")
	}
	for _, w := range parityWorkers {
		if _, err := EvalParallel(g, q, w); err == nil {
			t.Fatalf("workers=%d: parallel eval swallowed the FILTER error", w)
		}
	}
}
