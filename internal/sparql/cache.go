package sparql

import (
	"github.com/hpc-io/prov-io/internal/rdf"
)

// Materialized result cache, keyed on the snapshot epoch pair.
//
// Every Graph mutation moves the (watermark, removeEpoch) pair — Add bumps
// the watermark, Remove bumps removeEpoch — and Graph.Snapshot only reuses a
// *Snapshot while that pair is unchanged. Memoizing a query's *Result on the
// snapshot itself therefore gives epoch-keyed invalidation for free: a
// repeated query against an unchanged graph lands on the same snapshot and
// hits; any Add or Remove produces a fresh snapshot with an empty memo and
// misses. The epochs are still stored and compared on lookup as a belt —
// if a caller holds a stale snapshot pointer across mutations the entry is
// rejected rather than served.
//
// Cached *Result values are shared between callers and must be treated as
// read-only; Exec returns them without copying.

// cacheEntry is one memoized query result plus the epochs it was computed at.
type cacheEntry struct {
	watermark   int
	removeEpoch uint64
	res         *Result
}

// cacheKey namespaces SPARQL results within the snapshot memo (the lineage
// reducer shares the same memo with its own prefix).
const cacheKeyPrefix = "sparql\x00"

// ExecParallelInfo parses and runs a query with the epoch-keyed result
// cache in front of the executor, reporting how the query was served.
func ExecParallelInfo(g *rdf.Graph, query string, base *rdf.Namespaces, workers int) (*Result, ExecInfo, error) {
	q, err := Parse(query, base)
	if err != nil {
		return nil, ExecInfo{Workers: workers}, err
	}
	snap := g.Snapshot()
	key := cacheKeyPrefix + query
	if v, ok := snap.Memo(key); ok {
		if e, ok := v.(cacheEntry); ok && e.watermark == snap.Watermark() && e.removeEpoch == snap.RemoveEpoch() {
			return e.res, ExecInfo{Workers: workers, CacheHit: true}, nil
		}
	}
	p := Compile(snap, q)
	res, info, err := runPlanParallelInfo(snap, p, workers)
	if err != nil {
		return nil, info, err
	}
	snap.SetMemo(key, cacheEntry{watermark: snap.Watermark(), removeEpoch: snap.RemoveEpoch(), res: res})
	return res, info, nil
}
