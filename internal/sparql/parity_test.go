package sparql

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// Parity property: for randomized graphs and every permutation of the basic
// graph pattern, the planner-ordered ID-space engine (Eval) returns exactly
// the row multiset of the naive left-to-right term-space evaluator
// (EvalLegacyNaive). This pins the refactor to the legacy semantics — join
// order and ID-space execution may change performance, never results.

const parityNS = "http://parity.example/"

// rowMultiset flattens a result into a canonical multiset of row keys.
func rowMultiset(res *Result) map[string]int {
	vars := append([]string(nil), res.Vars...)
	sort.Strings(vars)
	m := map[string]int{}
	for _, r := range res.Rows {
		parts := make([]string, 0, len(vars))
		for _, v := range vars {
			if t, ok := r[v]; ok {
				parts = append(parts, fmt.Sprintf("%s=%q", v, t.String()))
			} else {
				parts = append(parts, v+"=∅")
			}
		}
		m[strings.Join(parts, " ")]++
	}
	return m
}

func multisetsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// randomParityGraph builds a small graph over fixed subject/predicate/object
// pools so random patterns have a real chance of matching.
func randomParityGraph(rng *rand.Rand) *rdf.Graph {
	g := rdf.NewGraph()
	n := 1 + rng.Intn(40)
	for i := 0; i < n; i++ {
		g.Add(rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("%ss%d", parityNS, rng.Intn(5))),
			P: rdf.IRI(fmt.Sprintf("%sp%d", parityNS, rng.Intn(3))),
			O: rdf.IRI(fmt.Sprintf("%so%d", parityNS, rng.Intn(5))),
		})
	}
	return g
}

// randomBGP returns 1–3 random triple patterns in SPARQL text form. Each
// pattern mixes variables and constants; a variable never repeats within one
// pattern (the legacy evaluator silently overwrites such bindings — the ID
// engine enforces equality — so self-joins within a pattern are out of the
// parity contract).
func randomBGP(rng *rand.Rand) []string {
	vars := []string{"?a", "?b", "?c"}
	npat := 1 + rng.Intn(3)
	patterns := make([]string, npat)
	for i := range patterns {
		used := map[string]bool{}
		pick := func(pool string, poolSize int) string {
			if rng.Intn(2) == 0 {
				for tries := 0; tries < 4; tries++ {
					v := vars[rng.Intn(len(vars))]
					if !used[v] {
						used[v] = true
						return v
					}
				}
			}
			return fmt.Sprintf("<%s%s%d>", parityNS, pool, rng.Intn(poolSize))
		}
		s := pick("s", 5)
		p := pick("p", 3)
		o := pick("o", 5)
		patterns[i] = s + " " + p + " " + o + " ."
	}
	return patterns
}

func permutations(items []string) [][]string {
	if len(items) <= 1 {
		return [][]string{append([]string(nil), items...)}
	}
	var out [][]string
	for i := range items {
		rest := make([]string, 0, len(items)-1)
		rest = append(rest, items[:i]...)
		rest = append(rest, items[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]string{items[i]}, p...))
		}
	}
	return out
}

func TestPlannerParityWithNaiveOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 150; iter++ {
		g := randomParityGraph(rng)
		patterns := randomBGP(rng)
		distinct := ""
		if rng.Intn(3) == 0 {
			distinct = "DISTINCT "
		}

		var want map[string]int
		var wantQuery string
		for pi, perm := range permutations(patterns) {
			query := "SELECT " + distinct + "* WHERE { " + strings.Join(perm, " ") + " }"
			q, err := Parse(query, nil)
			if err != nil {
				t.Fatalf("iter %d: parse %q: %v", iter, query, err)
			}
			naive, err := EvalLegacyNaive(g, q)
			if err != nil {
				t.Fatalf("iter %d: naive eval %q: %v", iter, query, err)
			}
			planned, err := Eval(g, q)
			if err != nil {
				t.Fatalf("iter %d: planned eval %q: %v", iter, query, err)
			}
			nm, pm := rowMultiset(naive), rowMultiset(planned)
			if !multisetsEqual(nm, pm) {
				t.Fatalf("iter %d: planner result diverges from naive order\nquery: %s\nnaive:   %v\nplanned: %v",
					iter, query, nm, pm)
			}
			// Every permutation of the same BGP must produce the same rows.
			if pi == 0 {
				want, wantQuery = pm, query
			} else if !multisetsEqual(want, pm) {
				t.Fatalf("iter %d: permutation changes results\nfirst: %s -> %v\nthis:  %s -> %v",
					iter, wantQuery, want, query, pm)
			}
		}
	}
}

// Parity must also hold for the structured forms the planner compiles
// specially: FILTER, OPTIONAL, UNION, property paths, ORDER BY/LIMIT.
func TestPlannerParityStructured(t *testing.T) {
	g := lineageGraph()
	queries := []string{
		`SELECT ?e ?s WHERE { ?e ex:size ?s . FILTER(?s > 100) }`,
		`SELECT ?e ?p WHERE { ?e ex:size ?s . OPTIONAL { ?e prov:wasAttributedTo ?p } }`,
		`SELECT ?x WHERE { { ?x prov:wasAttributedTo ex:decimate } UNION { ?x prov:wasAttributedTo ex:tdms2h5 } }`,
		`SELECT ?src WHERE { ex:decimate.h5 prov:wasDerivedFrom+ ?src . }`,
		`SELECT ?e ?s WHERE { ?e ex:size ?s . } ORDER BY DESC(?s) LIMIT 2`,
		`SELECT DISTINCT ?p WHERE { ?e ?p ?o . }`,
		`SELECT (COUNT(?e) AS ?n) WHERE { ?e ex:size ?s . }`,
		`SELECT ?p (COUNT(?e) AS ?n) WHERE { ?e ?p ?o . } GROUP BY ?p`,
		`SELECT (SUM(?s) AS ?total) (AVG(?s) AS ?mean) WHERE { ?e ex:size ?s . }`,
		`SELECT (MIN(?s) AS ?lo) (MAX(?s) AS ?hi) (COUNT(DISTINCT ?e) AS ?n) WHERE { ?e ex:size ?s . }`,
		`SELECT ?anc (COUNT(?s) AS ?n) WHERE { ?s prov:wasDerivedFrom+ ?anc . } GROUP BY ?anc`,
	}
	for _, query := range queries {
		q, err := Parse(query, testNS())
		if err != nil {
			t.Fatalf("parse %q: %v", query, err)
		}
		naive, err := EvalLegacyNaive(g, q)
		if err != nil {
			t.Fatalf("naive eval %q: %v", query, err)
		}
		planned, err := Eval(g, q)
		if err != nil {
			t.Fatalf("planned eval %q: %v", query, err)
		}
		if !multisetsEqual(rowMultiset(naive), rowMultiset(planned)) {
			t.Errorf("parity failure for %q\nnaive:   %v\nplanned: %v",
				query, rowMultiset(naive), rowMultiset(planned))
		}
	}
}
