package sparql

import "github.com/hpc-io/prov-io/internal/rdf"

// Source is the read surface the planner and executor run against: the
// ID-level scan/count/stats API shared by the live *rdf.Graph (every probe
// takes the graph read lock) and the immutable *rdf.Snapshot (lock-free).
//
// Eval compiles and executes against a Snapshot, so a query acquires the
// graph lock exactly once — when the snapshot is pinned — instead of once
// per triple-pattern probe. EvalOn accepts either implementation, which
// keeps the lock-per-probe live path available as an ablation baseline.
type Source interface {
	// TermID resolves a term to its dictionary ID, reporting whether it is
	// interned (visible to this source).
	TermID(t rdf.Term) (rdf.ID, bool)
	// TermOf rehydrates a dictionary ID (zero Term when out of range).
	TermOf(id rdf.ID) rdf.Term
	// ForEachMatchIDs streams matching triples in ID space; rdf.NoID is the
	// wildcard, fn returning false stops early.
	ForEachMatchIDs(s, p, o rdf.ID, fn func(s, p, o rdf.ID) bool)
	// CountMatchIDs is the planner's exact cardinality oracle.
	CountMatchIDs(s, p, o rdf.ID) int
	// PredStats returns a predicate's triple/distinct-subject/distinct-object
	// counts.
	PredStats(p rdf.ID) (triples, subjects, objects int)
	// IndexStats returns the global distinct subject/predicate/object counts.
	IndexStats() (subjects, predicates, objects int)
	// Len returns the triple count.
	Len() int
}

// ScanSource is a Source whose pattern scans expose an exact, partitionable
// morsel domain — the surface the morsel-parallel executor fans out over.
// The contract (inherited from rdf.Snapshot, the reference implementation):
//
//   - ScanLen(s, p, o) is the number of base index items a full enumeration
//     of the pattern walks, each item emitting at most one triple;
//   - ScanRange(s, p, o, lo, hi, fn) enumerates [lo, hi) of that domain, and
//     concatenating adjacent ranges reproduces the full scan exactly (items
//     failing a residual filter emit nothing);
//   - both are safe for concurrent use and deterministic for the source's
//     lifetime — ScanLen must not change between the partitioning call and
//     the per-morsel ScanRange calls.
//
// core's out-of-core LazySource federates many per-unit snapshots behind
// this interface, which is how a store larger than RAM runs the unchanged
// parallel executor.
type ScanSource interface {
	Source
	ScanLen(s, p, o rdf.ID) int
	ScanRange(s, p, o rdf.ID, lo, hi int, fn func(s, p, o rdf.ID) bool) bool
}

var (
	_ Source     = (*rdf.Graph)(nil)
	_ Source     = (*rdf.Snapshot)(nil)
	_ ScanSource = (*rdf.Snapshot)(nil)
)
