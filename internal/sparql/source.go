package sparql

import "github.com/hpc-io/prov-io/internal/rdf"

// Source is the read surface the planner and executor run against: the
// ID-level scan/count/stats API shared by the live *rdf.Graph (every probe
// takes the graph read lock) and the immutable *rdf.Snapshot (lock-free).
//
// Eval compiles and executes against a Snapshot, so a query acquires the
// graph lock exactly once — when the snapshot is pinned — instead of once
// per triple-pattern probe. EvalOn accepts either implementation, which
// keeps the lock-per-probe live path available as an ablation baseline.
type Source interface {
	// TermID resolves a term to its dictionary ID, reporting whether it is
	// interned (visible to this source).
	TermID(t rdf.Term) (rdf.ID, bool)
	// TermOf rehydrates a dictionary ID (zero Term when out of range).
	TermOf(id rdf.ID) rdf.Term
	// ForEachMatchIDs streams matching triples in ID space; rdf.NoID is the
	// wildcard, fn returning false stops early.
	ForEachMatchIDs(s, p, o rdf.ID, fn func(s, p, o rdf.ID) bool)
	// CountMatchIDs is the planner's exact cardinality oracle.
	CountMatchIDs(s, p, o rdf.ID) int
	// PredStats returns a predicate's triple/distinct-subject/distinct-object
	// counts.
	PredStats(p rdf.ID) (triples, subjects, objects int)
	// IndexStats returns the global distinct subject/predicate/object counts.
	IndexStats() (subjects, predicates, objects int)
	// Len returns the triple count.
	Len() int
}

var (
	_ Source = (*rdf.Graph)(nil)
	_ Source = (*rdf.Snapshot)(nil)
)
