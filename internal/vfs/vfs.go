// Package vfs implements the parallel-file-system substrate the reproduction
// uses in place of the paper's Lustre backend: an in-memory POSIX-like
// filesystem with directories, regular files, hard and symbolic links, and
// inode extended attributes (the paper's Attribute entity maps to xattrs on
// the POSIX side).
//
// A single Store holds the shared namespace; each simulated process or MPI
// rank obtains a View bound to its own virtual clock, so I/O costs modeled
// by simclock.CostModel are charged to the rank that issued the call — the
// same accounting a real Lustre client gives each node.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync"

	"github.com/hpc-io/prov-io/internal/simclock"
)

// Open flags, mirroring the POSIX subset the workloads need.
const (
	O_RDONLY = 0x0
	O_WRONLY = 0x1
	O_RDWR   = 0x2
	O_CREATE = 0x40
	O_TRUNC  = 0x200
	O_APPEND = 0x400
	O_EXCL   = 0x80
)

// Sentinel errors (wrapping the io/fs canonical ones where they exist).
var (
	ErrNotExist   = fs.ErrNotExist
	ErrExist      = fs.ErrExist
	ErrIsDir      = errors.New("is a directory")
	ErrNotDir     = errors.New("not a directory")
	ErrNotEmpty   = errors.New("directory not empty")
	ErrClosed     = fs.ErrClosed
	ErrReadOnly   = errors.New("file opened read-only")
	ErrWriteOnly  = errors.New("file opened write-only")
	ErrNoAttr     = errors.New("no such attribute")
	ErrLinkLoop   = errors.New("too many levels of symbolic links")
	ErrBadPattern = errors.New("invalid path")
)

// FileInfo describes a file, directory, or symlink.
type FileInfo struct {
	Name   string
	Size   int64
	IsDir  bool
	IsLink bool
	Nlink  int
	Target string // symlink target
	Xattrs int    // number of extended attributes
}

// node is an inode.
type node struct {
	mu     sync.RWMutex
	dir    bool
	sym    bool
	target string // symlink target
	data   []byte
	// children maps name -> child node for directories.
	children map[string]*node
	xattrs   map[string][]byte
	nlink    int
}

func newDir() *node {
	return &node{dir: true, children: make(map[string]*node), xattrs: make(map[string][]byte), nlink: 1}
}

func newFile() *node {
	return &node{xattrs: make(map[string][]byte), nlink: 1}
}

// Store is the shared filesystem state.
type Store struct {
	mu   sync.RWMutex
	root *node
}

// NewStore returns an empty filesystem.
func NewStore() *Store {
	return &Store{root: newDir()}
}

// View is a process/rank-local handle on a Store. Operations charge modeled
// I/O costs to the attached clock (if any).
type View struct {
	store *Store
	clock *simclock.Clock
	cost  simclock.CostModel
	// chargeEnabled gates cost accounting; a View without a clock simply
	// performs the operations.
	chargeEnabled bool
}

// NewView returns a view without cost accounting (unit tests, tooling).
func (s *Store) NewView() *View {
	return &View{store: s}
}

// NewChargedView returns a view that charges modeled costs to clock.
func (s *Store) NewChargedView(clock *simclock.Clock, cost simclock.CostModel) *View {
	return &View{store: s, clock: clock, cost: cost, chargeEnabled: clock != nil}
}

// Clock returns the attached clock (nil when uncharged).
func (v *View) Clock() *simclock.Clock { return v.clock }

// CostModel returns the view's cost model.
func (v *View) CostModel() simclock.CostModel { return v.cost }

func (v *View) chargeMeta() {
	if v.chargeEnabled {
		v.clock.Advance(v.cost.MetadataLatency)
	}
}

func (v *View) chargeRead(n int64) {
	if v.chargeEnabled {
		v.clock.Advance(v.cost.ReadCost(n))
	}
}

func (v *View) chargeWrite(n int64) {
	if v.chargeEnabled {
		v.clock.Advance(v.cost.WriteCost(n))
	}
}

// splitPath cleans p and returns its components. An empty result means the
// root directory.
func splitPath(p string) ([]string, error) {
	if p == "" {
		return nil, &fs.PathError{Op: "resolve", Path: p, Err: ErrBadPattern}
	}
	clean := path.Clean("/" + p)
	if clean == "/" {
		return nil, nil
	}
	return strings.Split(strings.TrimPrefix(clean, "/"), "/"), nil
}

const maxSymlinkDepth = 16

// resolve walks the tree to the node for p. When followLast is false a final
// symlink component is returned unresolved (lstat semantics).
func (s *Store) resolve(p string, followLast bool) (*node, error) {
	return s.resolveDepth(p, followLast, 0)
}

func (s *Store) resolveDepth(p string, followLast bool, depth int) (*node, error) {
	if depth > maxSymlinkDepth {
		return nil, &fs.PathError{Op: "resolve", Path: p, Err: ErrLinkLoop}
	}
	parts, err := splitPath(p)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	cur := s.root
	s.mu.RUnlock()
	for i, part := range parts {
		cur.mu.RLock()
		if !cur.dir {
			cur.mu.RUnlock()
			return nil, &fs.PathError{Op: "resolve", Path: p, Err: ErrNotDir}
		}
		child, ok := cur.children[part]
		cur.mu.RUnlock()
		if !ok {
			return nil, &fs.PathError{Op: "resolve", Path: p, Err: ErrNotExist}
		}
		last := i == len(parts)-1
		child.mu.RLock()
		isSym := child.sym
		target := child.target
		child.mu.RUnlock()
		if isSym && (!last || followLast) {
			rest := path.Join(parts[i+1:]...)
			next := target
			if !strings.HasPrefix(target, "/") {
				next = path.Join("/", path.Join(parts[:i]...), target)
			}
			if rest != "" {
				next = path.Join(next, rest)
			}
			return s.resolveDepth(next, followLast, depth+1)
		}
		cur = child
	}
	return cur, nil
}

// resolveParent returns the directory node containing p and p's base name.
func (s *Store) resolveParent(p string) (*node, string, error) {
	parts, err := splitPath(p)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", &fs.PathError{Op: "resolve", Path: p, Err: ErrIsDir}
	}
	dirPath := "/" + path.Join(parts[:len(parts)-1]...)
	dir, err := s.resolve(dirPath, true)
	if err != nil {
		return nil, "", err
	}
	dir.mu.RLock()
	isDir := dir.dir
	dir.mu.RUnlock()
	if !isDir {
		return nil, "", &fs.PathError{Op: "resolve", Path: p, Err: ErrNotDir}
	}
	return dir, parts[len(parts)-1], nil
}

// Mkdir creates a single directory.
func (v *View) Mkdir(p string) error {
	v.chargeMeta()
	dir, name, err := v.store.resolveParent(p)
	if err != nil {
		return err
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	if _, ok := dir.children[name]; ok {
		return &fs.PathError{Op: "mkdir", Path: p, Err: ErrExist}
	}
	dir.children[name] = newDir()
	return nil
}

// MkdirAll creates a directory and any missing parents.
func (v *View) MkdirAll(p string) error {
	parts, err := splitPath(p)
	if err != nil {
		return err
	}
	cur := "/"
	for _, part := range parts {
		cur = path.Join(cur, part)
		if err := v.Mkdir(cur); err != nil {
			if errors.Is(err, ErrExist) {
				// Must be a directory to continue.
				n, rerr := v.store.resolve(cur, true)
				if rerr != nil {
					return rerr
				}
				n.mu.RLock()
				isDir := n.dir
				n.mu.RUnlock()
				if !isDir {
					return &fs.PathError{Op: "mkdir", Path: cur, Err: ErrNotDir}
				}
				continue
			}
			return err
		}
	}
	return nil
}

// Create creates or truncates a file for writing (POSIX creat).
func (v *View) Create(p string) (*File, error) {
	return v.OpenFile(p, O_RDWR|O_CREATE|O_TRUNC)
}

// Open opens a file read-only.
func (v *View) Open(p string) (*File, error) {
	return v.OpenFile(p, O_RDONLY)
}

// OpenFile opens p with POSIX-style flags.
func (v *View) OpenFile(p string, flag int) (*File, error) {
	v.chargeMeta()
	n, err := v.store.resolve(p, true)
	switch {
	case err == nil:
		if flag&O_EXCL != 0 && flag&O_CREATE != 0 {
			return nil, &fs.PathError{Op: "open", Path: p, Err: ErrExist}
		}
	case errors.Is(err, ErrNotExist) && flag&O_CREATE != 0:
		dir, name, perr := v.store.resolveParent(p)
		if perr != nil {
			return nil, perr
		}
		dir.mu.Lock()
		if existing, ok := dir.children[name]; ok {
			n = existing
		} else {
			n = newFile()
			dir.children[name] = n
		}
		dir.mu.Unlock()
	default:
		return nil, err
	}
	n.mu.Lock()
	if n.dir {
		n.mu.Unlock()
		return nil, &fs.PathError{Op: "open", Path: p, Err: ErrIsDir}
	}
	if flag&O_TRUNC != 0 && flag&(O_WRONLY|O_RDWR) != 0 {
		n.data = nil
	}
	var off int64
	if flag&O_APPEND != 0 {
		off = int64(len(n.data))
	}
	n.mu.Unlock()
	return &File{view: v, node: n, name: path.Clean("/" + p), flag: flag, off: off}, nil
}

// Remove deletes a file, symlink, or empty directory.
func (v *View) Remove(p string) error {
	v.chargeMeta()
	dir, name, err := v.store.resolveParent(p)
	if err != nil {
		return err
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	child, ok := dir.children[name]
	if !ok {
		return &fs.PathError{Op: "remove", Path: p, Err: ErrNotExist}
	}
	child.mu.Lock()
	if child.dir && len(child.children) > 0 {
		child.mu.Unlock()
		return &fs.PathError{Op: "remove", Path: p, Err: ErrNotEmpty}
	}
	child.nlink--
	child.mu.Unlock()
	delete(dir.children, name)
	return nil
}

// Rename moves oldp to newp (replacing a non-directory target).
func (v *View) Rename(oldp, newp string) error {
	v.chargeMeta()
	odir, oname, err := v.store.resolveParent(oldp)
	if err != nil {
		return err
	}
	ndir, nname, err := v.store.resolveParent(newp)
	if err != nil {
		return err
	}
	// Lock ordering: always lock the two parents in pointer order to avoid
	// deadlock between concurrent cross-directory renames.
	first, second := odir, ndir
	if first == second {
		first.mu.Lock()
		defer first.mu.Unlock()
	} else {
		if fmt.Sprintf("%p", first) > fmt.Sprintf("%p", second) {
			first, second = second, first
		}
		first.mu.Lock()
		second.mu.Lock()
		defer first.mu.Unlock()
		defer second.mu.Unlock()
	}
	child, ok := odir.children[oname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldp, Err: ErrNotExist}
	}
	if existing, ok := ndir.children[nname]; ok {
		existing.mu.RLock()
		isDir := existing.dir
		existing.mu.RUnlock()
		if isDir {
			return &fs.PathError{Op: "rename", Path: newp, Err: ErrIsDir}
		}
	}
	delete(odir.children, oname)
	ndir.children[nname] = child
	return nil
}

// Symlink creates a symbolic link at linkp pointing at target.
func (v *View) Symlink(target, linkp string) error {
	v.chargeMeta()
	dir, name, err := v.store.resolveParent(linkp)
	if err != nil {
		return err
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	if _, ok := dir.children[name]; ok {
		return &fs.PathError{Op: "symlink", Path: linkp, Err: ErrExist}
	}
	n := newFile()
	n.sym = true
	n.target = target
	dir.children[name] = n
	return nil
}

// Link creates a hard link at newp to the file at oldp.
func (v *View) Link(oldp, newp string) error {
	v.chargeMeta()
	n, err := v.store.resolve(oldp, true)
	if err != nil {
		return err
	}
	n.mu.Lock()
	if n.dir {
		n.mu.Unlock()
		return &fs.PathError{Op: "link", Path: oldp, Err: ErrIsDir}
	}
	n.nlink++
	n.mu.Unlock()
	dir, name, err := v.store.resolveParent(newp)
	if err != nil {
		return err
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	if _, ok := dir.children[name]; ok {
		n.mu.Lock()
		n.nlink--
		n.mu.Unlock()
		return &fs.PathError{Op: "link", Path: newp, Err: ErrExist}
	}
	dir.children[name] = n
	return nil
}

// Stat returns information about the file at p, following symlinks.
func (v *View) Stat(p string) (FileInfo, error) {
	v.chargeMeta()
	n, err := v.store.resolve(p, true)
	if err != nil {
		return FileInfo{}, err
	}
	return infoOf(path.Base(path.Clean("/"+p)), n), nil
}

// Lstat is Stat without following a final symlink.
func (v *View) Lstat(p string) (FileInfo, error) {
	v.chargeMeta()
	n, err := v.store.resolve(p, false)
	if err != nil {
		return FileInfo{}, err
	}
	return infoOf(path.Base(path.Clean("/"+p)), n), nil
}

func infoOf(name string, n *node) FileInfo {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return FileInfo{
		Name:   name,
		Size:   int64(len(n.data)),
		IsDir:  n.dir,
		IsLink: n.sym,
		Nlink:  n.nlink,
		Target: n.target,
		Xattrs: len(n.xattrs),
	}
}

// ReadDir lists the entries of the directory at p in sorted order.
func (v *View) ReadDir(p string) ([]FileInfo, error) {
	v.chargeMeta()
	n, err := v.store.resolve(p, true)
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	if !n.dir {
		return nil, &fs.PathError{Op: "readdir", Path: p, Err: ErrNotDir}
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]FileInfo, len(names))
	for i, name := range names {
		out[i] = infoOf(name, n.children[name])
	}
	return out, nil
}

// Setxattr sets an extended attribute on the file or directory at p.
func (v *View) Setxattr(p, name string, value []byte) error {
	v.chargeMeta()
	n, err := v.store.resolve(p, true)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.xattrs[name] = append([]byte(nil), value...)
	return nil
}

// Getxattr reads an extended attribute.
func (v *View) Getxattr(p, name string) ([]byte, error) {
	v.chargeMeta()
	n, err := v.store.resolve(p, true)
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	val, ok := n.xattrs[name]
	if !ok {
		return nil, &fs.PathError{Op: "getxattr", Path: p, Err: ErrNoAttr}
	}
	return append([]byte(nil), val...), nil
}

// Listxattr lists extended attribute names in sorted order.
func (v *View) Listxattr(p string) ([]string, error) {
	v.chargeMeta()
	n, err := v.store.resolve(p, true)
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	names := make([]string, 0, len(n.xattrs))
	for name := range n.xattrs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// ReadFile reads the whole file at p.
func (v *View) ReadFile(p string) ([]byte, error) {
	f, err := v.Open(p)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// WriteFile writes data to the file at p, creating or truncating it.
func (v *View) WriteFile(p string, data []byte) error {
	f, err := v.Create(p)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Exists reports whether a path resolves.
func (v *View) Exists(p string) bool {
	_, err := v.store.resolve(p, true)
	return err == nil
}

// File is an open file handle.
type File struct {
	view *View
	node *node
	name string
	flag int

	mu     sync.Mutex
	off    int64
	closed bool
}

// Name returns the cleaned path the file was opened with.
func (f *File) Name() string { return f.name }

func (f *File) readable() bool {
	return f.flag&(O_WRONLY|O_RDWR) != O_WRONLY
}

func (f *File) writable() bool {
	return f.flag&(O_WRONLY|O_RDWR) != 0
}

// Read reads from the current offset.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, &fs.PathError{Op: "read", Path: f.name, Err: ErrClosed}
	}
	if !f.readable() {
		return 0, &fs.PathError{Op: "read", Path: f.name, Err: ErrWriteOnly}
	}
	n, err := f.readAtLocked(p, f.off)
	f.off += int64(n)
	return n, err
}

// ReadAt reads len(p) bytes at offset off.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, &fs.PathError{Op: "read", Path: f.name, Err: ErrClosed}
	}
	if !f.readable() {
		return 0, &fs.PathError{Op: "read", Path: f.name, Err: ErrWriteOnly}
	}
	n, err := f.readAtLocked(p, off)
	if err == nil && n < len(p) {
		err = io.EOF
	}
	return n, err
}

func (f *File) readAtLocked(p []byte, off int64) (int, error) {
	f.node.mu.RLock()
	defer f.node.mu.RUnlock()
	if off >= int64(len(f.node.data)) {
		if len(p) == 0 {
			return 0, nil
		}
		return 0, io.EOF
	}
	n := copy(p, f.node.data[off:])
	f.view.chargeRead(int64(n))
	return n, nil
}

// Write writes at the current offset (or end, for O_APPEND files).
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, &fs.PathError{Op: "write", Path: f.name, Err: ErrClosed}
	}
	if !f.writable() {
		return 0, &fs.PathError{Op: "write", Path: f.name, Err: ErrReadOnly}
	}
	if f.flag&O_APPEND != 0 {
		f.node.mu.Lock()
		f.off = int64(len(f.node.data))
		f.node.mu.Unlock()
	}
	n, err := f.writeAtLocked(p, f.off)
	f.off += int64(n)
	return n, err
}

// WriteAt writes p at offset off.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, &fs.PathError{Op: "write", Path: f.name, Err: ErrClosed}
	}
	if !f.writable() {
		return 0, &fs.PathError{Op: "write", Path: f.name, Err: ErrReadOnly}
	}
	return f.writeAtLocked(p, off)
}

func (f *File) writeAtLocked(p []byte, off int64) (int, error) {
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(f.node.data)) {
		if end <= int64(cap(f.node.data)) {
			// Grow within capacity; the extension is already zeroed
			// because shrinking Truncate re-zeroes abandoned bytes.
			f.node.data = f.node.data[:end]
		} else {
			// Amortized doubling so sequences of extending writes (the
			// common append pattern) cost O(total bytes), not O(n²).
			newCap := int64(cap(f.node.data)) * 2
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, f.node.data)
			f.node.data = grown
		}
	}
	copy(f.node.data[off:end], p)
	f.view.chargeWrite(int64(len(p)))
	return len(p), nil
}

// Seek sets the file offset.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, &fs.PathError{Op: "seek", Path: f.name, Err: ErrClosed}
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		f.node.mu.RLock()
		base = int64(len(f.node.data))
		f.node.mu.RUnlock()
	default:
		return 0, &fs.PathError{Op: "seek", Path: f.name, Err: ErrBadPattern}
	}
	pos := base + offset
	if pos < 0 {
		return 0, &fs.PathError{Op: "seek", Path: f.name, Err: ErrBadPattern}
	}
	f.off = pos
	return pos, nil
}

// Truncate resizes the file.
func (f *File) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return &fs.PathError{Op: "truncate", Path: f.name, Err: ErrClosed}
	}
	if !f.writable() {
		return &fs.PathError{Op: "truncate", Path: f.name, Err: ErrReadOnly}
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	switch {
	case size < 0:
		return &fs.PathError{Op: "truncate", Path: f.name, Err: ErrBadPattern}
	case size <= int64(len(f.node.data)):
		// Zero the abandoned tail: capacity-based growth in writeAtLocked
		// may re-expose these bytes, and POSIX says they read as zero.
		tail := f.node.data[size:]
		for i := range tail {
			tail[i] = 0
		}
		f.node.data = f.node.data[:size]
	default:
		grown := make([]byte, size)
		copy(grown, f.node.data)
		f.node.data = grown
	}
	return nil
}

// Sync models fsync: it charges the metadata latency (data is already
// durable in memory).
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return &fs.PathError{Op: "fsync", Path: f.name, Err: ErrClosed}
	}
	f.view.chargeMeta()
	return nil
}

// Size returns the current file size.
func (f *File) Size() int64 {
	f.node.mu.RLock()
	defer f.node.mu.RUnlock()
	return int64(len(f.node.data))
}

// Close closes the handle. Double close returns ErrClosed.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return &fs.PathError{Op: "close", Path: f.name, Err: ErrClosed}
	}
	f.closed = true
	return nil
}
