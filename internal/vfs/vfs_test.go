package vfs

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/hpc-io/prov-io/internal/simclock"
)

func newTestView() *View { return NewStore().NewView() }

func TestCreateWriteReadRoundTrip(t *testing.T) {
	v := newTestView()
	if err := v.WriteFile("/a.txt", []byte("hello lustre")); err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadFile("/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello lustre" {
		t.Errorf("content = %q", got)
	}
}

func TestOpenMissingFile(t *testing.T) {
	v := newTestView()
	_, err := v.Open("/missing")
	if !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v, want ErrNotExist", err)
	}
}

func TestMkdirAndNesting(t *testing.T) {
	v := newTestView()
	if err := v.Mkdir("/data"); err != nil {
		t.Fatal(err)
	}
	if err := v.Mkdir("/data"); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate mkdir err = %v", err)
	}
	if err := v.Mkdir("/data/sub/deep"); !errors.Is(err, ErrNotExist) {
		t.Errorf("mkdir without parent err = %v", err)
	}
	if err := v.MkdirAll("/data/sub/deep"); err != nil {
		t.Fatal(err)
	}
	info, err := v.Stat("/data/sub/deep")
	if err != nil || !info.IsDir {
		t.Errorf("deep dir stat = %+v, %v", info, err)
	}
	if err := v.MkdirAll("/data/sub/deep"); err != nil {
		t.Errorf("MkdirAll idempotency: %v", err)
	}
}

func TestMkdirAllThroughFileFails(t *testing.T) {
	v := newTestView()
	v.WriteFile("/f", nil)
	if err := v.MkdirAll("/f/sub"); err == nil {
		t.Error("MkdirAll through a file succeeded")
	}
}

func TestOpenFlags(t *testing.T) {
	v := newTestView()
	v.WriteFile("/f", []byte("0123456789"))

	t.Run("rdonly-write-fails", func(t *testing.T) {
		f, _ := v.Open("/f")
		defer f.Close()
		if _, err := f.Write([]byte("x")); !errors.Is(err, ErrReadOnly) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("wronly-read-fails", func(t *testing.T) {
		f, _ := v.OpenFile("/f", O_WRONLY)
		defer f.Close()
		if _, err := f.Read(make([]byte, 1)); !errors.Is(err, ErrWriteOnly) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("trunc", func(t *testing.T) {
		f, _ := v.OpenFile("/f", O_RDWR|O_TRUNC)
		f.Close()
		data, _ := v.ReadFile("/f")
		if len(data) != 0 {
			t.Errorf("after trunc len = %d", len(data))
		}
	})
	t.Run("excl", func(t *testing.T) {
		v.WriteFile("/g", nil)
		if _, err := v.OpenFile("/g", O_CREATE|O_EXCL|O_RDWR); !errors.Is(err, ErrExist) {
			t.Errorf("O_EXCL on existing file err = %v", err)
		}
	})
	t.Run("open-dir-fails", func(t *testing.T) {
		v.Mkdir("/d")
		if _, err := v.Open("/d"); !errors.Is(err, ErrIsDir) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestAppendMode(t *testing.T) {
	v := newTestView()
	v.WriteFile("/log", []byte("aaa"))
	f, err := v.OpenFile("/log", O_WRONLY|O_APPEND)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("bbb"))
	f.Write([]byte("ccc"))
	f.Close()
	data, _ := v.ReadFile("/log")
	if string(data) != "aaabbbccc" {
		t.Errorf("content = %q", data)
	}
}

func TestConcurrentAppendersInterleaveWithoutLoss(t *testing.T) {
	v := newTestView()
	v.WriteFile("/log", nil)
	var wg sync.WaitGroup
	const writers, per = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f, err := v.OpenFile("/log", O_WRONLY|O_APPEND)
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			for i := 0; i < per; i++ {
				f.Write([]byte{byte('a' + w)})
			}
		}(w)
	}
	wg.Wait()
	data, _ := v.ReadFile("/log")
	if len(data) != writers*per {
		t.Errorf("len = %d, want %d (appends lost)", len(data), writers*per)
	}
}

func TestReadWriteAtAndSeek(t *testing.T) {
	v := newTestView()
	f, _ := v.Create("/f")
	f.WriteAt([]byte("world"), 6)
	f.WriteAt([]byte("hello"), 0)
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 6); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Errorf("ReadAt = %q", buf)
	}
	pos, err := f.Seek(-5, io.SeekEnd)
	if err != nil || pos != 6 {
		t.Fatalf("Seek = %d, %v", pos, err)
	}
	n, _ := f.Read(buf)
	if string(buf[:n]) != "world" {
		t.Errorf("Read after seek = %q", buf[:n])
	}
	if _, err := f.Seek(-100, io.SeekStart); err == nil {
		t.Error("negative seek allowed")
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Error("bad whence allowed")
	}
}

func TestReadAtEOFSemantics(t *testing.T) {
	v := newTestView()
	v.WriteFile("/f", []byte("abc"))
	f, _ := v.Open("/f")
	defer f.Close()
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if n != 3 || err != io.EOF {
		t.Errorf("short ReadAt = %d, %v; want 3, EOF", n, err)
	}
	if _, err := f.ReadAt(buf, 100); err != io.EOF {
		t.Errorf("past-end ReadAt err = %v", err)
	}
}

func TestTruncate(t *testing.T) {
	v := newTestView()
	f, _ := v.Create("/f")
	f.Write([]byte("0123456789"))
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 4 {
		t.Errorf("Size = %d", f.Size())
	}
	if err := f.Truncate(8); err != nil {
		t.Fatal(err)
	}
	data, _ := v.ReadFile("/f")
	if string(data) != "0123\x00\x00\x00\x00" {
		t.Errorf("grown content = %q", data)
	}
	if err := f.Truncate(-1); err == nil {
		t.Error("negative truncate allowed")
	}
}

func TestTruncateThenGrowReadsZeros(t *testing.T) {
	// Shrinking must zero the abandoned region even though the underlying
	// capacity is reused by later extending writes.
	v := newTestView()
	f, _ := v.Create("/f")
	f.Write([]byte("SECRETDATA"))
	if err := f.Truncate(2); err != nil {
		t.Fatal(err)
	}
	// Extend within old capacity by writing at a later offset.
	f.WriteAt([]byte("ZZ"), 8)
	data, _ := v.ReadFile("/f")
	want := []byte{'S', 'E', 0, 0, 0, 0, 0, 0, 'Z', 'Z'}
	if string(data) != string(want) {
		t.Errorf("data = %q, want %q (stale bytes re-exposed)", data, want)
	}
}

func TestManyExtendingWritesAmortized(t *testing.T) {
	// 20k small appends must complete quickly (amortized growth, not
	// O(n²) whole-file copies).
	v := newTestView()
	f, _ := v.OpenFile("/big", O_RDWR|O_CREATE|O_APPEND)
	chunk := make([]byte, 256)
	for i := 0; i < 20000; i++ {
		if _, err := f.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if f.Size() != 20000*256 {
		t.Errorf("size = %d", f.Size())
	}
	f.Close()
}

func TestCloseSemantics(t *testing.T) {
	v := newTestView()
	f, _ := v.Create("/f")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double close err = %v", err)
	}
	if _, err := f.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("read after close err = %v", err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close err = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("sync after close err = %v", err)
	}
}

func TestRemove(t *testing.T) {
	v := newTestView()
	v.WriteFile("/f", nil)
	if err := v.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if v.Exists("/f") {
		t.Error("file still exists")
	}
	if err := v.Remove("/f"); !errors.Is(err, ErrNotExist) {
		t.Errorf("remove twice err = %v", err)
	}
	v.MkdirAll("/d/sub")
	if err := v.Remove("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("remove non-empty dir err = %v", err)
	}
	v.Remove("/d/sub")
	if err := v.Remove("/d"); err != nil {
		t.Errorf("remove emptied dir err = %v", err)
	}
}

func TestRename(t *testing.T) {
	v := newTestView()
	v.MkdirAll("/a")
	v.MkdirAll("/b")
	v.WriteFile("/a/f", []byte("data"))
	if err := v.Rename("/a/f", "/b/g"); err != nil {
		t.Fatal(err)
	}
	if v.Exists("/a/f") {
		t.Error("old path still exists")
	}
	data, err := v.ReadFile("/b/g")
	if err != nil || string(data) != "data" {
		t.Errorf("renamed content = %q, %v", data, err)
	}
	if err := v.Rename("/a/f", "/b/h"); !errors.Is(err, ErrNotExist) {
		t.Errorf("rename missing err = %v", err)
	}
	// Replace existing file.
	v.WriteFile("/b/h", []byte("old"))
	if err := v.Rename("/b/g", "/b/h"); err != nil {
		t.Fatal(err)
	}
	data, _ = v.ReadFile("/b/h")
	if string(data) != "data" {
		t.Errorf("replaced content = %q", data)
	}
	// Renaming onto a directory fails.
	v.WriteFile("/b/x", nil)
	if err := v.Rename("/b/x", "/a"); !errors.Is(err, ErrIsDir) {
		t.Errorf("rename onto dir err = %v", err)
	}
}

func TestHardLink(t *testing.T) {
	v := newTestView()
	v.WriteFile("/f", []byte("shared"))
	if err := v.Link("/f", "/g"); err != nil {
		t.Fatal(err)
	}
	info, _ := v.Stat("/f")
	if info.Nlink != 2 {
		t.Errorf("nlink = %d, want 2", info.Nlink)
	}
	// Write through one name, read through the other.
	f, _ := v.OpenFile("/g", O_RDWR)
	f.WriteAt([]byte("SHARED"), 0)
	f.Close()
	data, _ := v.ReadFile("/f")
	if string(data) != "SHARED" {
		t.Errorf("content via original = %q", data)
	}
	// Removing one name keeps the other.
	v.Remove("/f")
	if !v.Exists("/g") {
		t.Error("hard link vanished with original")
	}
	if err := v.Link("/g", "/g"); !errors.Is(err, ErrExist) {
		t.Errorf("link onto existing err = %v", err)
	}
	v.Mkdir("/d")
	if err := v.Link("/d", "/d2"); !errors.Is(err, ErrIsDir) {
		t.Errorf("hard link to dir err = %v", err)
	}
}

func TestSymlink(t *testing.T) {
	v := newTestView()
	v.MkdirAll("/data")
	v.WriteFile("/data/real.h5", []byte("h5data"))
	if err := v.Symlink("/data/real.h5", "/latest"); err != nil {
		t.Fatal(err)
	}
	data, err := v.ReadFile("/latest")
	if err != nil || string(data) != "h5data" {
		t.Fatalf("read through symlink = %q, %v", data, err)
	}
	li, err := v.Lstat("/latest")
	if err != nil || !li.IsLink || li.Target != "/data/real.h5" {
		t.Errorf("Lstat = %+v, %v", li, err)
	}
	si, err := v.Stat("/latest")
	if err != nil || si.IsLink || si.Size != 6 {
		t.Errorf("Stat = %+v, %v", si, err)
	}
}

func TestSymlinkRelative(t *testing.T) {
	v := newTestView()
	v.MkdirAll("/data")
	v.WriteFile("/data/real", []byte("x"))
	if err := v.Symlink("real", "/data/alias"); err != nil {
		t.Fatal(err)
	}
	data, err := v.ReadFile("/data/alias")
	if err != nil || string(data) != "x" {
		t.Errorf("relative symlink read = %q, %v", data, err)
	}
}

func TestSymlinkDirectoryTraversal(t *testing.T) {
	v := newTestView()
	v.MkdirAll("/real/dir")
	v.WriteFile("/real/dir/f", []byte("y"))
	v.Symlink("/real", "/alias")
	data, err := v.ReadFile("/alias/dir/f")
	if err != nil || string(data) != "y" {
		t.Errorf("read through dir symlink = %q, %v", data, err)
	}
}

func TestSymlinkLoopDetected(t *testing.T) {
	v := newTestView()
	v.Symlink("/b", "/a")
	v.Symlink("/a", "/b")
	if _, err := v.ReadFile("/a"); !errors.Is(err, ErrLinkLoop) {
		t.Errorf("loop err = %v", err)
	}
}

func TestXattrs(t *testing.T) {
	v := newTestView()
	v.WriteFile("/f", nil)
	if err := v.Setxattr("/f", "user.units", []byte("m/s")); err != nil {
		t.Fatal(err)
	}
	v.Setxattr("/f", "user.origin", []byte("sensor7"))
	val, err := v.Getxattr("/f", "user.units")
	if err != nil || string(val) != "m/s" {
		t.Errorf("Getxattr = %q, %v", val, err)
	}
	if _, err := v.Getxattr("/f", "user.missing"); !errors.Is(err, ErrNoAttr) {
		t.Errorf("missing attr err = %v", err)
	}
	names, _ := v.Listxattr("/f")
	if len(names) != 2 || names[0] != "user.origin" || names[1] != "user.units" {
		t.Errorf("Listxattr = %v", names)
	}
	info, _ := v.Stat("/f")
	if info.Xattrs != 2 {
		t.Errorf("Xattrs = %d", info.Xattrs)
	}
	// Values are copied, not aliased.
	val[0] = 'X'
	val2, _ := v.Getxattr("/f", "user.units")
	if string(val2) != "m/s" {
		t.Error("xattr value aliased caller buffer")
	}
}

func TestReadDirSorted(t *testing.T) {
	v := newTestView()
	v.MkdirAll("/d")
	for _, name := range []string{"c.h5", "a.h5", "b.tdms"} {
		v.WriteFile("/d/"+name, nil)
	}
	v.Mkdir("/d/sub")
	infos, err := v.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, fi := range infos {
		names = append(names, fi.Name)
	}
	want := []string{"a.h5", "b.tdms", "c.h5", "sub"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ReadDir = %v, want %v", names, want)
		}
	}
	if _, err := v.ReadDir("/d/a.h5"); !errors.Is(err, ErrNotDir) {
		t.Errorf("ReadDir on file err = %v", err)
	}
}

func TestPathCleaning(t *testing.T) {
	v := newTestView()
	v.MkdirAll("/a/b")
	v.WriteFile("/a/b/f", []byte("z"))
	for _, p := range []string{"/a/b/f", "a/b/f", "/a//b/f", "/a/./b/f", "/a/b/../b/f"} {
		data, err := v.ReadFile(p)
		if err != nil || string(data) != "z" {
			t.Errorf("path %q: %q, %v", p, data, err)
		}
	}
	if _, err := v.Open(""); err == nil {
		t.Error("empty path accepted")
	}
}

func TestChargedViewAdvancesClock(t *testing.T) {
	store := NewStore()
	clock := simclock.NewClock()
	cost := simclock.Default()
	v := store.NewChargedView(clock, cost)

	v.WriteFile("/f", make([]byte, 1<<20))
	afterWrite := clock.Now()
	if afterWrite <= 0 {
		t.Fatal("write charged nothing")
	}
	// Expect at least metadata + 1MB/bandwidth.
	minWrite := cost.MetadataLatency + cost.WriteCost(1<<20)
	if afterWrite < minWrite {
		t.Errorf("write charged %v, want >= %v", afterWrite, minWrite)
	}
	v.ReadFile("/f")
	if clock.Now() <= afterWrite {
		t.Error("read charged nothing")
	}
}

func TestUnchargedViewSharesData(t *testing.T) {
	store := NewStore()
	clock := simclock.NewClock()
	charged := store.NewChargedView(clock, simclock.Default())
	plain := store.NewView()

	charged.WriteFile("/f", []byte("visible"))
	data, err := plain.ReadFile("/f")
	if err != nil || string(data) != "visible" {
		t.Errorf("cross-view read = %q, %v", data, err)
	}
	before := clock.Now()
	plain.ReadFile("/f")
	if clock.Now() != before {
		t.Error("uncharged view advanced the charged view's clock")
	}
}

func TestPerRankClockIsolation(t *testing.T) {
	store := NewStore()
	cost := simclock.Default()
	c0, c1 := simclock.NewClock(), simclock.NewClock()
	v0 := store.NewChargedView(c0, cost)
	v1 := store.NewChargedView(c1, cost)

	v0.WriteFile("/rank0", make([]byte, 4096))
	if c1.Now() != 0 {
		t.Error("rank 1 clock charged for rank 0 I/O")
	}
	v1.ReadFile("/rank0")
	if c1.Now() == 0 {
		t.Error("rank 1 clock not charged for its own I/O")
	}
}

func TestSyncChargesMetadata(t *testing.T) {
	store := NewStore()
	clock := simclock.NewClock()
	v := store.NewChargedView(clock, simclock.Default())
	f, _ := v.Create("/f")
	before := clock.Now()
	f.Sync()
	if clock.Now() != before+v.CostModel().MetadataLatency {
		t.Errorf("Sync charged %v", clock.Now()-before)
	}
}

func TestConcurrentMixedOperations(t *testing.T) {
	store := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := store.NewView()
			dir := fmt.Sprintf("/w%d", w)
			if err := v.MkdirAll(dir); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 30; i++ {
				p := fmt.Sprintf("%s/f%d", dir, i)
				if err := v.WriteFile(p, []byte("x")); err != nil {
					t.Error(err)
				}
				v.Setxattr(p, "user.k", []byte("v"))
				v.Stat(p)
				v.ReadDir(dir)
				if i%3 == 0 {
					v.Rename(p, p+".renamed")
				}
			}
		}(w)
	}
	wg.Wait()
}

// Property: WriteFile then ReadFile returns identical bytes for any content.
func TestWriteReadProperty(t *testing.T) {
	v := newTestView()
	f := func(data []byte, nameSeed uint8) bool {
		p := fmt.Sprintf("/prop/f%d", nameSeed)
		v.MkdirAll("/prop")
		if err := v.WriteFile(p, data); err != nil {
			return false
		}
		got, err := v.ReadFile(p)
		if err != nil {
			return false
		}
		if len(got) != len(data) {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: WriteAt at arbitrary offsets yields a file whose size is
// max(end of writes) and whose holes read as zero.
func TestWriteAtHolesProperty(t *testing.T) {
	f := func(off uint16, payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		v := newTestView()
		fh, err := v.Create("/f")
		if err != nil {
			return false
		}
		defer fh.Close()
		if _, err := fh.WriteAt(payload, int64(off)); err != nil {
			return false
		}
		if fh.Size() != int64(off)+int64(len(payload)) {
			return false
		}
		data, err := v.ReadFile("/f")
		if err != nil {
			return false
		}
		for i := 0; i < int(off); i++ {
			if data[i] != 0 {
				return false
			}
		}
		return string(data[off:]) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestClockViewAccessors(t *testing.T) {
	store := NewStore()
	clock := simclock.NewClock()
	cost := simclock.Default()
	v := store.NewChargedView(clock, cost)
	if v.Clock() != clock {
		t.Error("Clock accessor wrong")
	}
	if v.CostModel().MetadataLatency != cost.MetadataLatency {
		t.Error("CostModel accessor wrong")
	}
	clock.Advance(time.Second)
	if v.Clock().Now() != time.Second {
		t.Error("clock not shared")
	}
}
