package core

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/vfs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// buildGoldenStore deterministically populates a three-process store, one
// process per flush pipeline, so the golden bytes pin segment writing,
// compaction, and canonical serialization together.
func buildGoldenStore(t *testing.T) *Store {
	t.Helper()
	view := vfs.NewStore().NewView()
	store, err := NewStore(VFSBackend{View: view}, "/prov", FormatTurtle)
	if err != nil {
		t.Fatal(err)
	}
	pipelines := []Pipeline{PipelineAsync, PipelineDelta, PipelineInline}
	for pid := 0; pid < 3; pid++ {
		cfg := DefaultConfig()
		cfg.Mode = ModePeriodic
		cfg.FlushEvery = 4
		cfg.Pipeline = pipelines[pid]
		tr := NewTracker(cfg, store, pid)
		user := tr.RegisterUser("alice")
		prog := tr.RegisterProgram("golden.exe", user)
		thr := tr.RegisterThread(pid, prog)
		for i := 0; i < 5; i++ {
			obj := tr.TrackDataObject(model.Dataset,
				fmt.Sprintf("/golden.h5/ts%d/x", i), fmt.Sprintf("/ts%d/x", i), rdf.Term{}, prog)
			tr.TrackIO(model.Write, "H5Dwrite", obj, thr,
				time.Duration(i)*time.Millisecond, 250*time.Microsecond)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run 'go test ./internal/core -run Golden -update' to create)", err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("%s: serialization drifted from golden bytes (run with -update if intentional)", name)
	}
}

// TestGoldenMergedRoundTrip pins the canonical serialization of a merged
// multi-process store and proves the chain Turtle -> parse -> N-Triples ->
// parse -> Turtle is byte-stable.
func TestGoldenMergedRoundTrip(t *testing.T) {
	store := buildGoldenStore(t)
	merged, err := store.MergeParallel(4)
	if err != nil {
		t.Fatal(err)
	}

	var ttl bytes.Buffer
	if err := rdf.WriteTurtle(&ttl, merged, model.Namespaces()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_merged.ttl", ttl.Bytes())

	reparsed, _, err := rdf.ParseTurtle(bytes.NewReader(ttl.Bytes()))
	if err != nil {
		t.Fatalf("parsing our own Turtle: %v", err)
	}
	var nt bytes.Buffer
	if err := rdf.WriteNTriples(&nt, reparsed); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_merged.nt", nt.Bytes())

	fromNT, err := rdf.ParseNTriples(bytes.NewReader(nt.Bytes()))
	if err != nil {
		t.Fatalf("parsing our own N-Triples: %v", err)
	}
	var ttl2 bytes.Buffer
	if err := rdf.WriteTurtle(&ttl2, fromNT, model.Namespaces()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ttl.Bytes(), ttl2.Bytes()) {
		t.Error("Turtle -> N-Triples -> Turtle round trip is not byte-stable")
	}
	if fromNT.Len() != merged.Len() {
		t.Errorf("round trip changed triple count: %d -> %d", merged.Len(), fromNT.Len())
	}
}
