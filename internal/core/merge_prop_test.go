package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// buildMultiProcessStore populates a store with procs sub-graphs sharing
// some nodes (users, files) and holding private ones (activities). Periodic
// delta mode leaves uncompacted segments for odd pids, so merges see a mix
// of canonical files and segments.
func buildMultiProcessStore(t *testing.T, procs int) *Store {
	t.Helper()
	view := vfs.NewStore().NewView()
	store, err := NewStore(VFSBackend{View: view}, "/prov", FormatTurtle)
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < procs; pid++ {
		cfg := DefaultConfig()
		if pid%2 == 1 {
			cfg.Mode = ModePeriodic
			cfg.FlushEvery = 3
			cfg.Pipeline = PipelineDelta
		}
		tr := NewTracker(cfg, store, pid)
		user := tr.RegisterUser("shared-user")
		prog := tr.RegisterProgram(fmt.Sprintf("prog-%d", pid%3), user)
		for i := 0; i < 10; i++ {
			obj := tr.TrackDataObject(model.File, fmt.Sprintf("/shared/f%d", i%4), "", rdf.Term{}, prog)
			tr.TrackIO(model.Read, "read", obj, prog, 0, 0)
		}
		if pid%2 == 1 {
			// Leave the segments in place: no Close, just a drain of
			// nothing (PipelineDelta writes inline). The canonical file for
			// this pid never exists.
			continue
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

// ntBytes canonicalizes a graph to sorted N-Triples for byte comparison.
func ntBytes(t *testing.T, g *rdf.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rdf.WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMergeParallelMatchesSequential(t *testing.T) {
	store := buildMultiProcessStore(t, 9)
	seq, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	want := ntBytes(t, seq)
	for _, workers := range []int{2, 3, 8, 64} {
		par, err := store.MergeParallel(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(want, ntBytes(t, par)) {
			t.Errorf("workers=%d: parallel merge differs from sequential", workers)
		}
	}
}

// TestMergeIdempotent: merging the same store repeatedly yields
// triple-identical graphs (merge is a pure function of the store).
func TestMergeIdempotent(t *testing.T) {
	store := buildMultiProcessStore(t, 5)
	first, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	want := ntBytes(t, first)
	for i := 0; i < 3; i++ {
		again, err := store.MergeParallel(4)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, ntBytes(t, again)) {
			t.Fatalf("merge %d differs", i)
		}
	}
}

// TestMergeOrderIndependent: merging shuffled file lists yields
// triple-identical graphs — graph union commutes.
func TestMergeOrderIndependent(t *testing.T) {
	store := buildMultiProcessStore(t, 7)
	files, err := store.subgraphFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("want several files, got %v", files)
	}
	base, err := store.mergeFiles(files, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := ntBytes(t, base)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]string(nil), files...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for _, workers := range []int{1, 4} {
			g, err := store.mergeFiles(shuffled, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, ntBytes(t, g)) {
				t.Fatalf("trial %d workers %d: shuffled merge differs", trial, workers)
			}
		}
	}
}

// TestMergeParallelPropagatesErrors: a corrupt file fails the parallel
// merge just like the sequential one.
func TestMergeParallelPropagatesErrors(t *testing.T) {
	view := vfs.NewStore().NewView()
	store, err := NewStore(VFSBackend{View: view}, "/prov", FormatTurtle)
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < 6; pid++ {
		tr := NewTracker(DefaultConfig(), store, pid)
		tr.RegisterUser("u")
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := view.WriteFile("/prov/prov_p000003.ttl", []byte("@prefix broken <oops")); err != nil {
		t.Fatal(err)
	}
	if _, err := store.MergeParallel(4); err == nil {
		t.Error("parallel merge accepted a corrupt sub-graph")
	}
}

// TestCompactFoldsSegments: Store.Compact folds orphaned segments (a
// crashed run's leftovers) into canonical files without changing the merged
// graph.
func TestCompactFoldsSegments(t *testing.T) {
	store := buildMultiProcessStore(t, 6)
	before, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	files, err := store.subgraphFiles()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if bytes.Contains([]byte(f), []byte(".seg")) {
			t.Errorf("segment survived compaction: %s", f)
		}
	}
	after, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ntBytes(t, before), ntBytes(t, after)) {
		t.Error("compaction changed the merged graph")
	}
}
