package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// stressTracker hammers one Tracker from many goroutines with periodic
// flushing enabled and asserts that no record is lost or duplicated: the
// in-memory stats, the in-memory graph, and the merged store contents must
// all agree exactly.
func stressTracker(t *testing.T, pipeline Pipeline, workers, perWorker int) {
	t.Helper()
	view := vfs.NewStore().NewView()
	store, err := NewStore(VFSBackend{View: view}, "/prov", FormatTurtle)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Mode = ModePeriodic
	cfg.FlushEvery = 7 // deliberately not a divisor of the record count
	cfg.Pipeline = pipeline
	cfg.FlushQueue = 2 // small queue to exercise backpressure blocking
	tr := NewTracker(cfg, store, 0)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prog := tr.RegisterProgram(fmt.Sprintf("worker-%d", w), rdf.Term{})
			for i := 0; i < perWorker; i++ {
				// Distinct object per (worker, i): duplicates in the store
				// would be visible as extra activity nodes.
				obj := tr.TrackDataObject(model.Dataset,
					fmt.Sprintf("/f.h5/w%d/d%d", w, i), "", rdf.Term{}, prog)
				tr.TrackIO(model.Write, "H5Dwrite", obj, prog, 0, 0)
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	wantRecords := int64(workers * (1 + 2*perWorker))
	recs, triples := tr.Stats()
	if recs != wantRecords {
		t.Errorf("records = %d, want %d", recs, wantRecords)
	}
	g := tr.Graph()
	if triples != int64(g.Len()) {
		// Every record's triples are distinct here, so tracked triples must
		// equal the graph size exactly.
		t.Errorf("triples = %d, graph holds %d", triples, g.Len())
	}
	if g.LogLen() != g.Len() {
		t.Errorf("insertion log %d != graph size %d (unexpected duplicates)", g.LogLen(), g.Len())
	}

	acts := g.Find(nil, rdf.IRI(rdf.RDFType).Ptr(), model.Write.IRI().Ptr())
	if len(acts) != workers*perWorker {
		t.Errorf("activities in memory = %d, want %d", len(acts), workers*perWorker)
	}

	// The store must hold exactly the in-memory graph: nothing lost by the
	// async writer, nothing duplicated by overlapping periodic flushes.
	merged, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != g.Len() {
		t.Fatalf("store holds %d triples, tracker graph %d", merged.Len(), g.Len())
	}
	missing := 0
	g.ForEachMatch(nil, nil, nil, func(tr rdf.Triple) bool {
		if !merged.Has(tr) {
			missing++
		}
		return missing < 5
	})
	if missing > 0 {
		t.Errorf("%d in-memory triples missing from the store", missing)
	}
}

func TestStressAsyncPipeline(t *testing.T) {
	workers, perWorker := 8, 150
	if testing.Short() {
		workers, perWorker = 4, 60
	}
	stressTracker(t, PipelineAsync, workers, perWorker)
}

func TestStressDeltaPipeline(t *testing.T) {
	workers, perWorker := 8, 100
	if testing.Short() {
		workers, perWorker = 4, 40
	}
	stressTracker(t, PipelineDelta, workers, perWorker)
}

func TestStressInlinePipeline(t *testing.T) {
	workers, perWorker := 4, 40
	stressTracker(t, PipelineInline, workers, perWorker)
}

// TestStressFlushDuringTracking interleaves explicit Flush/Drain calls with
// concurrent tracking: the final Close must still persist everything
// exactly once.
func TestStressFlushDuringTracking(t *testing.T) {
	view := vfs.NewStore().NewView()
	store, err := NewStore(VFSBackend{View: view}, "/prov", FormatTurtle)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Mode = ModePeriodic
	cfg.FlushEvery = 5
	tr := NewTracker(cfg, store, 0)

	const workers, perWorker = 6, 80
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.TrackIO(model.Write, "H5Dwrite", rdf.Term{}, rdf.Term{}, 0, 0)
				if i%17 == 0 {
					if err := tr.Flush(); err != nil {
						t.Error(err)
					}
				}
				if i%13 == 0 {
					if err := tr.Drain(); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	merged, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	acts := merged.Find(nil, rdf.IRI(rdf.RDFType).Ptr(), model.Write.IRI().Ptr())
	if len(acts) != workers*perWorker {
		t.Errorf("persisted activities = %d, want %d", len(acts), workers*perWorker)
	}
}
