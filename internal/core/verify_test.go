package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/rdf/segcodec"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// smallHistory writes a compact but complete chain for one process: a closed
// run (sealed canonical root) followed by a drained periodic run (sealed
// delta segments anchored at the canonical). This is the smallest store shape
// exercising every chain feature, and small files keep the exhaustive
// flip/truncation matrices fast.
func smallHistory(t *testing.T, store *Store, pid int) {
	t.Helper()
	tr := NewTracker(DefaultConfig(), store, pid)
	user := tr.RegisterUser("alice")
	prog := tr.RegisterProgram("verify.exe", user)
	tr.TrackIO(model.Write, "H5Dwrite", prog, rdf.Term{}, time.Millisecond, 0)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Mode = ModePeriodic
	cfg.FlushEvery = 1
	tr = NewTracker(cfg, store, pid)
	for i := 0; i < 3; i++ {
		tr.TrackIO(model.Read, "H5Dread", rdf.Term{}, rdf.Term{},
			time.Duration(i)*time.Millisecond, 0)
	}
	if err := tr.Drain(); err != nil {
		t.Fatal(err)
	}
}

// storeFiles snapshots every file of a store directory (sidecars included).
func storeFiles(t *testing.T, store *Store) map[string][]byte {
	t.Helper()
	names, err := store.backend.List(store.dir)
	if err != nil {
		t.Fatal(err)
	}
	files := make(map[string][]byte, len(names))
	for _, n := range names {
		data, err := store.backend.ReadFile(store.dir + "/" + n)
		if err != nil {
			t.Fatal(err)
		}
		files[n] = data
	}
	return files
}

// openDir materializes a file snapshot in a fresh view and opens it with
// format auto-detection, exactly as provio-verify does.
func openDir(t *testing.T, files map[string][]byte) *Store {
	t.Helper()
	backend := VFSBackend{View: vfs.NewStore().NewView()}
	if err := backend.MkdirAll("/prov"); err != nil {
		t.Fatal(err)
	}
	for n, data := range files {
		if err := backend.WriteFile("/prov/"+n, data); err != nil {
			t.Fatal(err)
		}
	}
	store, err := NewStore(backend, "/prov", FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func mustVerify(t *testing.T, store *Store) *VerifyReport {
	t.Helper()
	rep, err := store.Verify()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestVerifyCleanMatrix pins the zero-false-positive requirement: stores
// built by every format and flush pipeline — canonical-only, segments-only,
// and full histories, before and after Compact — must verify clean, fully
// sealed, and stable against their own recorded heads.
func TestVerifyCleanMatrix(t *testing.T) {
	for _, format := range []Format{FormatTurtle, FormatNTriples, FormatBinary} {
		for _, shape := range []string{"close", "drain", "history"} {
			t.Run(fmt.Sprintf("%v/%s", format, shape), func(t *testing.T) {
				view := vfs.NewStore().NewView()
				store, err := NewStore(VFSBackend{View: view}, "/prov", format)
				if err != nil {
					t.Fatal(err)
				}
				for pid := 0; pid < 2; pid++ {
					switch shape {
					case "close":
						trackInto(t, store, pid, DefaultConfig(), false)
					case "drain":
						cfg := DefaultConfig()
						cfg.Mode = ModePeriodic
						cfg.FlushEvery = 3
						trackInto(t, store, pid, cfg, true)
					case "history":
						smallHistory(t, store, pid)
					}
				}
				rep := mustVerify(t, store)
				if !rep.Clean() {
					t.Fatalf("clean store has defects: %v", rep.Defects)
				}
				if rep.Processes != 2 || rep.Files == 0 {
					t.Fatalf("Processes=%d Files=%d", rep.Processes, rep.Files)
				}
				if rep.Sealed != rep.Files || len(rep.Unsealed) != 0 {
					t.Fatalf("Sealed=%d of %d files, unsealed %v", rep.Sealed, rep.Files, rep.Unsealed)
				}
				if shape == "drain" && rep.Segments == 0 {
					t.Fatal("drained store has no segments")
				}
				// The recorded heads must re-verify, survive the text
				// round-trip, and stay clean across Compact + re-audit.
				heads, err := ParseHeads(rep.FormatHeads())
				if err != nil {
					t.Fatal(err)
				}
				if rep2, err := store.VerifyAgainst(heads); err != nil || !rep2.Clean() {
					t.Fatalf("VerifyAgainst own heads: %v, %v", err, rep2.Defects)
				}
				if err := store.Compact(); err != nil {
					t.Fatalf("Compact on clean store: %v", err)
				}
				rep3 := mustVerify(t, store)
				if !rep3.Clean() || rep3.Sealed != rep3.Files {
					t.Fatalf("post-Compact: defects %v, sealed %d/%d", rep3.Defects, rep3.Sealed, rep3.Files)
				}
			})
		}
	}
}

// TestVerifyLegacyUnsealedTolerated: a store written before the integrity
// layer (no seals anywhere) verifies clean — there is nothing to contradict —
// but every file is reported unsealed, so strict auditing can flag it. New
// sealed segments written on top of the legacy canonical (the upgrade path)
// keep the store clean.
func TestVerifyLegacyUnsealedTolerated(t *testing.T) {
	for _, format := range []Format{FormatTurtle, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			view := vfs.NewStore().NewView()
			store, err := NewStore(VFSBackend{View: view}, "/prov", format)
			if err != nil {
				t.Fatal(err)
			}
			trackInto(t, store, 0, DefaultConfig(), false)
			// Strip the seals: remove sidecars, strip embedded chain frames.
			legacy := make(map[string][]byte)
			for n, data := range storeFiles(t, store) {
				if strings.HasSuffix(n, chainSidecarExt) {
					continue
				}
				legacy[n] = segcodec.StripChain(data)
			}
			lstore := openDir(t, legacy)
			rep := mustVerify(t, lstore)
			if !rep.Clean() {
				t.Fatalf("legacy store has defects: %v", rep.Defects)
			}
			if rep.Sealed != 0 || len(rep.Unsealed) != rep.Files {
				t.Fatalf("legacy store: sealed %d, unsealed %v of %d files",
					rep.Sealed, rep.Unsealed, rep.Files)
			}

			// Upgrade path: a new periodic run chains onto the legacy canonical.
			cfg := DefaultConfig()
			cfg.Mode = ModePeriodic
			cfg.FlushEvery = 1
			tr := NewTracker(cfg, lstore, 0)
			tr.TrackIO(model.Write, "write", rdf.Term{}, rdf.Term{}, 0, 0)
			tr.TrackIO(model.Write, "write", rdf.Term{}, rdf.Term{}, time.Millisecond, 0)
			if err := tr.Drain(); err != nil {
				t.Fatal(err)
			}
			rep = mustVerify(t, lstore)
			if !rep.Clean() {
				t.Fatalf("upgraded store has defects: %v", rep.Defects)
			}
			if rep.Sealed == 0 || len(rep.Unsealed) == 0 {
				t.Fatalf("upgrade should mix sealed segments (%d) with the unsealed canonical (%v)",
					rep.Sealed, rep.Unsealed)
			}
		})
	}
}

// TestVerifyFlipMatrix is the exhaustive single-byte tamper matrix: for every
// file of a sealed store — data files and sidecars alike — flipping one bit
// of any byte must be detected. Detection kinds vary (a flipped frame length
// reads as truncation), but no flip may verify clean.
func TestVerifyFlipMatrix(t *testing.T) {
	for _, format := range []Format{FormatTurtle, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			view := vfs.NewStore().NewView()
			store, err := NewStore(VFSBackend{View: view}, "/prov", format)
			if err != nil {
				t.Fatal(err)
			}
			smallHistory(t, store, 0)
			clean := storeFiles(t, store)
			total, missed := 0, 0
			for name, data := range clean {
				for i := range data {
					mut := make(map[string][]byte, len(clean))
					for n, d := range clean {
						mut[n] = d
					}
					flipped := append([]byte(nil), data...)
					flipped[i] ^= 1 << (i % 8)
					mut[name] = flipped
					total++
					if rep := mustVerify(t, openDir(t, mut)); rep.Clean() {
						missed++
						if missed <= 5 {
							t.Errorf("flip of %s byte %d verified clean", name, i)
						}
					}
				}
			}
			if missed > 0 {
				t.Fatalf("%d of %d single-bit flips undetected", missed, total)
			}
		})
	}
}

// TestVerifyTruncationMatrix: every strict prefix of every store file must be
// detected — locally where possible, and by heads-anchored verification in
// the one documented blind spot (a binary canonical truncated exactly at a
// frame boundary is indistinguishable from a legacy unsealed file).
func TestVerifyTruncationMatrix(t *testing.T) {
	for _, format := range []Format{FormatTurtle, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			view := vfs.NewStore().NewView()
			store, err := NewStore(VFSBackend{View: view}, "/prov", format)
			if err != nil {
				t.Fatal(err)
			}
			smallHistory(t, store, 0)
			clean := storeFiles(t, store)
			heads := mustVerify(t, store).Heads
			total, missed := 0, 0
			for name, data := range clean {
				for n := 0; n < len(data); n++ {
					mut := make(map[string][]byte, len(clean))
					for fn, d := range clean {
						mut[fn] = d
					}
					mut[name] = append([]byte(nil), data[:n]...)
					total++
					tstore := openDir(t, mut)
					rep := mustVerify(t, tstore)
					if rep.Clean() {
						anchored, err := tstore.VerifyAgainst(heads)
						if err != nil {
							t.Fatal(err)
						}
						if anchored.Clean() {
							missed++
							if missed <= 5 {
								t.Errorf("truncating %s to %d bytes verified clean even against recorded heads", name, n)
							}
						}
					}
				}
			}
			if missed > 0 {
				t.Fatalf("%d of %d truncations undetected", missed, total)
			}
		})
	}
}

// TestVerifyDeletionMatrix: removing any single chain file (and, for tail
// files, the whole file+sidecar pair) must be detected locally or against
// recorded heads; deleting only a sidecar must at least demote its file to
// the unsealed list so strict auditing flags it.
func TestVerifyDeletionMatrix(t *testing.T) {
	for _, format := range []Format{FormatTurtle, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			view := vfs.NewStore().NewView()
			store, err := NewStore(VFSBackend{View: view}, "/prov", format)
			if err != nil {
				t.Fatal(err)
			}
			smallHistory(t, store, 0)
			clean := storeFiles(t, store)
			heads := mustVerify(t, store).Heads
			for name := range clean {
				victims := []string{name}
				if !strings.HasSuffix(name, chainSidecarExt) {
					// Also try deleting the file together with its sidecar.
					if _, ok := clean[name+chainSidecarExt]; ok {
						victims = append(victims, name+chainSidecarExt)
					}
				}
				for _, pair := range [][]string{victims[:1], victims} {
					mut := make(map[string][]byte, len(clean))
					for fn, d := range clean {
						mut[fn] = d
					}
					for _, v := range pair {
						delete(mut, v)
					}
					dstore := openDir(t, mut)
					rep := mustVerify(t, dstore)
					detected := !rep.Clean()
					if !detected {
						anchored, err := dstore.VerifyAgainst(heads)
						if err != nil {
							t.Fatal(err)
						}
						detected = !anchored.Clean()
					}
					if !detected && strings.HasSuffix(pair[len(pair)-1], chainSidecarExt) && len(pair) == 1 {
						// Sidecar-only deletion: must surface as unsealed.
						detected = len(rep.Unsealed) > 0
					}
					if !detected {
						t.Errorf("deleting %v verified clean", pair)
					}
				}
			}

			// Deleting an entire process's files is locally invisible but must
			// fail against recorded heads.
			empty := openDir(t, map[string][]byte{})
			rep, err := empty.VerifyAgainst(heads)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Clean() || rep.Worst() != DefectMissing {
				t.Errorf("whole-chain deletion: defects %v", rep.Defects)
			}
		})
	}
}

// TestVerifyReorderAndSplice: segments moved within a chain, replayed under a
// later name, or spliced in from another process must all be rejected.
func TestVerifyReorderAndSplice(t *testing.T) {
	view := vfs.NewStore().NewView()
	store, err := NewStore(VFSBackend{View: view}, "/prov", FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	smallHistory(t, store, 0)
	smallHistory(t, store, 1)
	clean := storeFiles(t, store)
	seg := func(pid, n int) string { return fmt.Sprintf("prov_p%06d.seg%04d.pbs", pid, n) }

	cases := []struct {
		name   string
		mutate func(map[string][]byte)
	}{
		{"swap adjacent segments", func(m map[string][]byte) {
			m[seg(0, 0)], m[seg(0, 1)] = m[seg(0, 1)], m[seg(0, 0)]
		}},
		{"replay old segment under tail name", func(m map[string][]byte) {
			m[seg(0, 2)] = m[seg(0, 0)]
		}},
		{"duplicate tail as new segment", func(m map[string][]byte) {
			m[seg(0, 3)] = m[seg(0, 2)]
		}},
		{"splice segment from another process", func(m map[string][]byte) {
			m[seg(0, 1)] = m[seg(1, 1)]
		}},
		{"graft foreign chain suffix", func(m map[string][]byte) {
			m[seg(0, 1)], m[seg(0, 2)] = m[seg(1, 1)], m[seg(1, 2)]
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := make(map[string][]byte, len(clean))
			for n, d := range clean {
				mut[n] = d
			}
			tc.mutate(mut)
			rep := mustVerify(t, openDir(t, mut))
			if rep.Clean() {
				t.Fatal("manipulated chain verified clean")
			}
			if rep.Worst() != DefectTampered {
				t.Errorf("worst defect %v, want tampered (defects: %v)", rep.Worst(), rep.Defects)
			}
		})
	}

	// Cross-store splice: an extra process forged wholesale is invisible
	// locally (its chain is self-consistent) but caught by recorded heads.
	heads := mustVerify(t, store).Heads
	delete(heads, 1)
	rep, err := store.VerifyAgainst(heads)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.Worst() != DefectTampered {
		t.Errorf("spliced-in process: defects %v", rep.Defects)
	}
}

// TestCompactRecoversDroppableTail: Compact drops a torn, unacknowledged tail
// segment and returns the store to a verifiably clean state, but refuses —
// with an IntegrityError naming the damage — when the defect is not confined
// to the unacknowledged tail.
func TestCompactRecoversDroppableTail(t *testing.T) {
	for _, format := range []Format{FormatTurtle, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			view := vfs.NewStore().NewView()
			store, err := NewStore(VFSBackend{View: view}, "/prov", format)
			if err != nil {
				t.Fatal(err)
			}
			smallHistory(t, store, 0)
			clean := storeFiles(t, store)

			// Tear the newest segment (simulating a crash mid-write).
			var tail string
			for n := range clean {
				if strings.Contains(n, ".seg") && !strings.HasSuffix(n, chainSidecarExt) {
					if tail == "" || n > tail {
						tail = n
					}
				}
			}
			mut := make(map[string][]byte, len(clean))
			for n, d := range clean {
				mut[n] = d
			}
			mut[tail] = mut[tail][:len(mut[tail])/2]
			delete(mut, tail+chainSidecarExt) // the sidecar write never happened
			tstore := openDir(t, mut)
			if rep := mustVerify(t, tstore); rep.Clean() {
				t.Fatal("torn tail verified clean")
			}
			if err := tstore.Compact(); err != nil {
				t.Fatalf("Compact must recover a torn tail: %v", err)
			}
			rep := mustVerify(t, tstore)
			if !rep.Clean() || rep.Segments != 0 {
				t.Fatalf("post-recovery: defects %v, %d segments", rep.Defects, rep.Segments)
			}

			// Acknowledged-history damage: tearing a MIDDLE segment must make
			// Compact refuse with an IntegrityError.
			mut = make(map[string][]byte, len(clean))
			for n, d := range clean {
				mut[n] = d
			}
			first := strings.Replace(tail, ".seg0002", ".seg0000", 1)
			mut[first] = mut[first][:len(mut[first])/2]
			bstore := openDir(t, mut)
			err = bstore.Compact()
			var ierr *IntegrityError
			if err == nil || !errors.As(err, &ierr) {
				t.Fatalf("Compact on damaged history: err=%v, want IntegrityError", err)
			}
			if len(ierr.Defects) == 0 {
				t.Fatal("IntegrityError carries no defects")
			}
		})
	}
}
