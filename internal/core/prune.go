package core

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/rdf/segcodec"
)

// This file is the statistics-pushdown read path of the leveled store
// (DESIGN.md "Leveled segments & pushdown"): reads that know what they are
// looking for consult each segment's embedded stats frame — and each pack's
// header — to skip whole segments whose zone maps, predicate lists, and
// Bloom filters prove the answer cannot be there. Pruning is strictly
// conservative: a unit without stats (legacy .pbs, text segments) always
// matches, a Bloom filter has false positives only, and the codec layer
// rejects any stats frame that does not byte-match its segment's contents —
// so a pruned read returns exactly what the exhaustive read would.

// PrunePattern is one triple pattern of a pruning hint; nil positions are
// unbound. The zero pattern matches everything.
type PrunePattern struct {
	S, P, O *rdf.Term
}

// SegmentPruner is the pushdown hint a read derives from its query: the
// union of every triple pattern the query could touch. A segment is skipped
// only when NO pattern can match it — triples matching no pattern cannot
// influence the result, so skipping such segments is sound for any query the
// patterns over-approximate. A nil pruner (or one with no patterns) prunes
// nothing.
type SegmentPruner struct {
	Patterns []PrunePattern
}

// wantStats reports whether any pattern could match a unit with these stats.
func (pr *SegmentPruner) wantStats(st *segcodec.SegStats) bool {
	if pr == nil || len(pr.Patterns) == 0 {
		return true
	}
	for _, p := range pr.Patterns {
		if st.CanMatch(p.S, p.P, p.O) {
			return true
		}
	}
	return false
}

// LevelScan is one level's slice of a ScanStats.
type LevelScan struct {
	Units   int `json:"units"`
	Decoded int `json:"decoded"`
}

// ScanStats reports what a pruned read touched: how many decodable units
// (loose files and pack members) the store holds, how many were actually
// decoded, and how the work split across levels (level 0 = loose files,
// level N = members of an L-N pack). provio-query -plan and provio-stats
// render it; the abl-lsm benchmark records it.
type ScanStats struct {
	Files        int                `json:"files"`         // store files listed (a pack counts once)
	Packs        int                `json:"packs"`         // pack containers among Files
	PacksSkipped int                `json:"packs_skipped"` // packs skipped whole at their header
	Units        int                `json:"units"`         // decodable units (loose files + pack members)
	Decoded      int                `json:"decoded"`
	Skipped      int                `json:"skipped"`
	PerLevel     map[int]*LevelScan `json:"per_level,omitempty"`

	// Decoded-unit cache counters, populated only by the out-of-core read
	// path (LazySource.Stats, LazyView reads); zero on eager reads.
	CacheHits          uint64 `json:"cache_hits,omitempty"`
	CacheMisses        uint64 `json:"cache_misses,omitempty"`
	CacheEvictions     uint64 `json:"cache_evictions,omitempty"`
	CacheResidentBytes int64  `json:"cache_resident_bytes,omitempty"`
	CachePeakBytes     int64  `json:"cache_peak_bytes,omitempty"`
	CacheBudgetBytes   int64  `json:"cache_budget_bytes,omitempty"`
}

// CacheHitRatio returns the cache hit fraction, or -1 when no lazy read ran.
func (st *ScanStats) CacheHitRatio() float64 {
	total := st.CacheHits + st.CacheMisses
	if total == 0 {
		return -1
	}
	return float64(st.CacheHits) / float64(total)
}

func (st *ScanStats) level(l int) *LevelScan {
	if st.PerLevel == nil {
		st.PerLevel = make(map[int]*LevelScan)
	}
	ls := st.PerLevel[l]
	if ls == nil {
		ls = &LevelScan{}
		st.PerLevel[l] = ls
	}
	return ls
}

// String renders the skip report one line, e.g. "decoded 3/41 units (38
// skipped; 2/5 packs pruned whole) [L0 1/1 L1 2/40]".
func (st *ScanStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "decoded %d/%d units (%d skipped", st.Decoded, st.Units, st.Skipped)
	if st.Packs > 0 {
		fmt.Fprintf(&b, "; %d/%d packs pruned whole", st.PacksSkipped, st.Packs)
	}
	b.WriteString(")")
	if len(st.PerLevel) > 0 {
		levels := make([]int, 0, len(st.PerLevel))
		for l := range st.PerLevel {
			levels = append(levels, l)
		}
		sort.Ints(levels)
		b.WriteString(" [")
		for i, l := range levels {
			if i > 0 {
				b.WriteString(" ")
			}
			ls := st.PerLevel[l]
			fmt.Fprintf(&b, "L%d %d/%d", l, ls.Decoded, ls.Units)
		}
		b.WriteString("]")
	}
	if st.CacheHits+st.CacheMisses > 0 {
		fmt.Fprintf(&b, "; cache %d hit / %d miss (%.0f%%), %d evicted, %d bytes resident",
			st.CacheHits, st.CacheMisses, 100*st.CacheHitRatio(), st.CacheEvictions, st.CacheResidentBytes)
		if st.CacheBudgetBytes > 0 {
			fmt.Fprintf(&b, " of %d budget", st.CacheBudgetBytes)
		}
	}
	return b.String()
}

// scanUnit is one decodable unit of the store: a loose provenance file, or
// one member of a pack. Units carry whatever was already read to stat them
// (loose files: the whole file; pack members: nothing until fetched).
type scanUnit struct {
	path   string // backend path of the file holding the unit
	member string // member name inside a pack; "" for a loose file
	off    int64  // member extent (pack members only)
	size   int64
	level  int
	stats  *segcodec.SegStats // nil = no stats, always matches
	data   []byte             // unit bytes when already in hand
}

// rangeReadable returns the backend's partial-read capability, or nil. Only
// the outermost backend is consulted — never unwrapped decorators — so a
// fault-injection or accounting wrapper that lacks the method keeps seeing
// every read as a whole-file ReadFile.
func rangeReadable(b StoreBackend) interface {
	ReadFileRange(path string, off, n int64) ([]byte, error)
} {
	rr, ok := any(b).(interface {
		ReadFileRange(path string, off, n int64) ([]byte, error)
	})
	if !ok {
		return nil
	}
	return rr
}

// readPackHeader fetches and parses a pack's header. With a range-capable
// backend only a prefix of the file is read (retried larger while the
// header is truncated); otherwise the whole file is read and returned so
// member fetches can slice it instead of re-reading.
func (s *Store) readPackHeader(path string) (*segcodec.PackHeader, []byte, error) {
	if rr := rangeReadable(s.backend); rr != nil {
		for n := int64(64 << 10); ; n *= 2 {
			buf, err := rr.ReadFileRange(path, 0, n)
			if err != nil {
				return nil, nil, err
			}
			h, err := segcodec.DecodePackHeader(buf)
			if err == nil {
				// The header parsed from a prefix; check the file is whole.
				size, serr := s.backend.Stat(path)
				if serr != nil {
					return nil, nil, serr
				}
				if size != h.WantSize {
					return nil, nil, fmt.Errorf("core: %s: file is %d bytes, pack header implies %d: %w",
						path, size, h.WantSize, segcodec.ErrTruncated)
				}
				return h, nil, nil
			}
			if errors.Is(err, segcodec.ErrTruncated) && int64(len(buf)) == n {
				continue // header larger than the prefix: read more
			}
			return nil, nil, fmt.Errorf("core: %s: %w", path, err)
		}
	}
	data, err := s.backend.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	h, err := segcodec.DecodePackHeader(data)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %s: %w", path, err)
	}
	if int64(len(data)) != h.WantSize {
		return nil, nil, fmt.Errorf("core: %s: file is %d bytes, pack header implies %d: %w",
			path, len(data), h.WantSize, segcodec.ErrTruncated)
	}
	return h, data, nil
}

// fetch returns the unit's bytes, range-reading pack members on capable
// backends so untouched members never enter memory.
func (u *scanUnit) fetch(s *Store) ([]byte, error) {
	if u.data != nil {
		return u.data, nil
	}
	if u.member == "" {
		data, err := s.backend.ReadFile(u.path)
		if err != nil && errors.Is(err, fs.ErrNotExist) {
			// The file was listed but is gone by decode time: a concurrent
			// Compact/PackSegments moved the layout under this scan. Classify
			// so racing readers can distinguish maintenance from damage.
			return nil, fmt.Errorf("core: %s vanished during scan: %w (%v)", u.path, ErrStaleView, err)
		}
		return data, err
	}
	if rr := rangeReadable(s.backend); rr != nil {
		data, err := rr.ReadFileRange(u.path, u.off, u.size)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil, fmt.Errorf("core: pack %s vanished during scan: %w (%v)", u.path, ErrStaleView, err)
			}
			return nil, err
		}
		if int64(len(data)) != u.size {
			return nil, fmt.Errorf("core: %s!%s: member extent short: %w", u.path, u.member, segcodec.ErrTruncated)
		}
		return data, nil
	}
	data, err := s.backend.ReadFile(u.path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("core: pack %s vanished during scan: %w (%v)", u.path, ErrStaleView, err)
		}
		return nil, err
	}
	if int64(len(data)) < u.off+u.size {
		return nil, fmt.Errorf("core: %s!%s: member extent past EOF: %w", u.path, u.member, segcodec.ErrTruncated)
	}
	return data[u.off : u.off+u.size], nil
}

// decodeInto decodes the unit's triples into g.
func (u *scanUnit) decodeInto(s *Store, g *rdf.Graph) error {
	data, err := u.fetch(s)
	if err != nil {
		return err
	}
	if err := segcodec.Detect(data).Decode(bytes.NewReader(data), g); err != nil {
		name := u.path
		if u.member != "" {
			name += "!" + u.member
			// Members were decodable when the pack was written, so any decode
			// failure here is pack damage — classify it as such when the
			// codec layer hasn't already (a flipped magic byte, for example,
			// demotes a binary member to a failed text parse).
			if !errors.Is(err, segcodec.ErrCorrupt) && !errors.Is(err, segcodec.ErrTruncated) {
				err = fmt.Errorf("%w: %v", segcodec.ErrCorrupt, err)
			}
		}
		return fmt.Errorf("core: parsing %s: %w", name, err)
	}
	return nil
}

// scanUnits lists the store's decodable units, expanding packs into member
// units through their headers (lazily: member bytes are not read). Loose
// files are read whole — their stats frame sits in the footer — and the
// bytes are kept on the unit so a later decode does not re-read them.
// Whole-pack pruning happens here: when the pack-level stats already rule
// every pattern out, the pack's members are counted but never listed.
func (s *Store) scanUnits(pr *SegmentPruner, st *ScanStats) ([]scanUnit, error) {
	files, err := s.subgraphFiles()
	if err != nil {
		return nil, err
	}
	var units []scanUnit
	for _, f := range files {
		st.Files++
		if filepath.Ext(f) == segcodec.Pack.Ext() {
			st.Packs++
			h, data, err := s.readPackHeader(f)
			if err != nil {
				return nil, err
			}
			rdfMembers := 0
			for _, m := range h.Members {
				if isCodecFile(m.Name) {
					rdfMembers++
				}
			}
			if h.HasStats && pr != nil && len(pr.Patterns) > 0 && !pr.wantStats(&h.Stats) {
				st.PacksSkipped++
				st.Units += rdfMembers
				st.level(h.Level).Units += rdfMembers
				continue
			}
			for _, m := range h.Members {
				if !isCodecFile(m.Name) {
					continue // opaque member (.sum sidecar)
				}
				u := scanUnit{path: f, member: m.Name, off: m.Off, size: m.Size, level: h.Level}
				if m.HasStats {
					ms := m.Stats
					u.stats = &ms
				}
				if data != nil {
					u.data = data[m.Off : m.Off+m.Size]
				}
				units = append(units, u)
			}
			continue
		}
		data, err := s.backend.ReadFile(f)
		if err != nil {
			return nil, err
		}
		u := scanUnit{path: f, size: int64(len(data)), data: data}
		if fst, ok := segcodec.StatsOf(data); ok {
			u.stats = &fst
		}
		units = append(units, u)
	}
	return units, nil
}

// MergePruned is MergeParallel with statistics pushdown: units whose stats
// prove no pattern of the pruner can match are never decoded (pack members
// on a range-capable backend are never even read). The merged graph is
// exactly the exhaustive merge restricted to triples the pruner's patterns
// could use — for a nil pruner it IS the exhaustive merge, which is how
// Merge and MergeParallel route here (the one pruner-aware listing/merge
// path of the store).
func (s *Store) MergePruned(pr *SegmentPruner, workers int) (*rdf.Graph, *ScanStats, error) {
	st := &ScanStats{}
	units, err := s.scanUnits(pr, st)
	if err != nil {
		return nil, nil, err
	}
	var keep []scanUnit
	for _, u := range units {
		st.Units++
		st.level(u.level).Units++
		if u.stats != nil && !pr.wantStats(u.stats) {
			continue
		}
		keep = append(keep, u)
	}
	g, err := s.decodeUnits(keep, workers)
	if err != nil {
		return nil, nil, err
	}
	st.Decoded = len(keep)
	st.Skipped = st.Units - st.Decoded
	for _, u := range keep {
		st.level(u.level).Decoded++
	}
	return g, st, nil
}

// decodeUnits unions the units' triples into one graph with a worker pool:
// each worker owns a private accumulator (parsing and union parallelize with
// no contention; accumulators arrive GUID-deduplicated at the final
// combine). workers <= 1 decodes sequentially. The result is order-
// independent: graph union is commutative and idempotent.
func (s *Store) decodeUnits(units []scanUnit, workers int) (*rdf.Graph, error) {
	if workers <= 1 || len(units) < 2 {
		merged := rdf.NewGraph()
		for i := range units {
			if err := units[i].decodeInto(s, merged); err != nil {
				return nil, err
			}
		}
		return merged, nil
	}
	if workers > len(units) {
		workers = len(units)
	}
	jobs := make(chan *scanUnit)
	accs := make([]*rdf.Graph, workers)
	var (
		workerWG sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}
	for w := 0; w < workers; w++ {
		accs[w] = rdf.NewGraph()
		workerWG.Add(1)
		go func(acc *rdf.Graph) {
			defer workerWG.Done()
			for u := range jobs {
				if failed() {
					continue // drain remaining jobs after an error
				}
				if err := u.decodeInto(s, acc); err != nil {
					fail(err)
				}
			}
		}(accs[w])
	}
	for i := range units {
		jobs <- &units[i]
	}
	close(jobs)
	workerWG.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	merged := accs[0]
	for _, acc := range accs[1:] {
		merged.Merge(acc)
	}
	return merged, nil
}

// ReduceLineagePruned answers a lineage question without merging the whole
// store: it loads only units that can contain a node already known to be in
// the queried neighborhood, expanding to a fixpoint. Each round probes the
// still-unloaded units with the frontier of kept nodes (Bloom + S/O zone
// maps via CanContainNode) and re-runs the reduction over everything loaded
// so far; when a round loads nothing new, every store unit that could touch
// a kept node has been folded in, so the result equals
// ReduceLineage(Merge(), roots, maxHops) exactly (induction over BFS depth:
// a node kept at depth d is reached through an edge incident to a depth-d-1
// node, and the unit holding that edge cannot be pruned once the d-1 node is
// in the probe set — stats have no false negatives).
func (s *Store) ReduceLineagePruned(roots []rdf.Term, maxHops, workers int) (*rdf.Graph, *ScanStats, error) {
	st := &ScanStats{}
	units, err := s.scanUnits(nil, st)
	if err != nil {
		return nil, nil, err
	}
	for _, u := range units {
		st.Units++
		st.level(u.level).Units++
	}

	loaded := rdf.NewGraph()
	pending := make([]scanUnit, len(units))
	copy(pending, units)
	probes := append([]rdf.Term(nil), roots...)
	var reduced *rdf.Graph
	for {
		var take []scanUnit
		var rest []scanUnit
		for _, u := range pending {
			want := u.stats == nil
			if !want {
				for _, t := range probes {
					if u.stats.CanContainNode(t) {
						want = true
						break
					}
				}
			}
			if want {
				take = append(take, u)
			} else {
				rest = append(rest, u)
			}
		}
		if len(take) == 0 && reduced != nil {
			break
		}
		pending = rest
		if len(take) > 0 {
			g, err := s.decodeUnits(take, workers)
			if err != nil {
				return nil, nil, err
			}
			loaded.Merge(g)
			st.Decoded += len(take)
			for _, u := range take {
				st.level(u.level).Decoded++
			}
		}
		var kept []rdf.Term
		reduced, kept = reduceLineageKept(loaded, roots, maxHops)
		probes = kept
	}
	st.Skipped = st.Units - st.Decoded
	return reduced, st, nil
}
