package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// TestStressIngestWithConcurrentReaders drives the batched ingest path
// (AddBatch + striped term dictionary + pooled record scratch) from many
// writer goroutines while reader goroutines concurrently scan, query, and
// replay the same live graph. Run under -race in CI, this is the
// lock-striping torture test: readers take the graph RLock and dictionary shard
// locks in every order the query planner can produce while writers intern
// terms and append to the insertion log.
func TestStressIngestWithConcurrentReaders(t *testing.T) {
	workers, perWorker := 8, 150
	if testing.Short() {
		workers, perWorker = 4, 50
	}

	view := vfs.NewStore().NewView()
	store, err := NewStore(VFSBackend{View: view}, "/prov", FormatNTriples)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Mode = ModePeriodic
	cfg.FlushEvery = 9
	cfg.Pipeline = PipelineAsync
	cfg.FlushQueue = 2
	tr := NewTracker(cfg, store, 0)
	g := tr.Graph()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			typeT := rdf.IRI(rdf.RDFType)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Bounded full scan through the type index.
				n := 0
				g.ForEachMatch(nil, typeT.Ptr(), nil, func(rdf.Triple) bool {
					n++
					return n < 64
				})
				// ID-space statistics and cardinality estimates race against
				// term interning and stat maintenance.
				if id, ok := g.TermID(model.WasWrittenBy.IRI()); ok {
					g.PredStats(id)
					g.CountMatchIDs(rdf.NoID, id, rdf.NoID)
				}
				// Insertion-log replay from a moving cursor, as the flush
				// pipeline does (tail window only — a half-log replay per
				// spin is quadratic and drowns the race run in allocation).
				cursor := g.LogLen() - 96
				if cursor < 0 {
					cursor = 0
				}
				g.TriplesSince(cursor)
				g.Len()
				g.TermCount()
				g.IndexStats()
			}
		}()
	}

	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			prog := tr.RegisterProgram(fmt.Sprintf("reader-stress-%d", w), rdf.Term{})
			for i := 0; i < perWorker; i++ {
				obj := tr.TrackDataObject(model.Dataset,
					fmt.Sprintf("/f.h5/rw%d/d%d", w, i), "", rdf.Term{}, prog)
				tr.TrackIO(model.Write, "H5Dwrite", obj, prog, 0, 0)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// Readers must not have perturbed ingest: exact record accounting, no
	// duplicate log entries, and the store agrees with memory.
	wantRecords := int64(workers * (1 + 2*perWorker))
	recs, triples := tr.Stats()
	if recs != wantRecords {
		t.Errorf("records = %d, want %d", recs, wantRecords)
	}
	if triples != int64(g.Len()) {
		t.Errorf("triples = %d, graph holds %d", triples, g.Len())
	}
	if g.LogLen() != g.Len() {
		t.Errorf("insertion log %d != graph size %d (unexpected duplicates)", g.LogLen(), g.Len())
	}
	acts := g.Find(nil, rdf.IRI(rdf.RDFType).Ptr(), model.Write.IRI().Ptr())
	if len(acts) != workers*perWorker {
		t.Errorf("activities in memory = %d, want %d", len(acts), workers*perWorker)
	}
	merged, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != g.Len() {
		t.Fatalf("store holds %d triples, tracker graph %d", merged.Len(), g.Len())
	}
}
