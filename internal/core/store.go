package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// Backend abstracts where the Provenance Store keeps its files: the
// simulated Lustre namespace (vfs) during experiments, or the real OS
// filesystem for the CLI tools and examples.
type Backend interface {
	MkdirAll(dir string) error
	WriteFile(path string, data []byte) error
	ReadFile(path string) ([]byte, error)
	// List returns the file names (not paths) inside dir, sorted.
	List(dir string) ([]string, error)
	Remove(path string) error
}

// VFSBackend stores provenance in a vfs view (the simulated PFS).
type VFSBackend struct{ View *vfs.View }

// MkdirAll implements Backend.
func (b VFSBackend) MkdirAll(dir string) error { return b.View.MkdirAll(dir) }

// WriteFile implements Backend.
func (b VFSBackend) WriteFile(path string, data []byte) error { return b.View.WriteFile(path, data) }

// ReadFile implements Backend.
func (b VFSBackend) ReadFile(path string) ([]byte, error) { return b.View.ReadFile(path) }

// Remove implements Backend.
func (b VFSBackend) Remove(path string) error { return b.View.Remove(path) }

// List implements Backend.
func (b VFSBackend) List(dir string) ([]string, error) {
	infos, err := b.View.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(infos))
	for _, fi := range infos {
		if !fi.IsDir {
			names = append(names, fi.Name)
		}
	}
	return names, nil
}

// OSBackend stores provenance on the host filesystem.
type OSBackend struct{}

// MkdirAll implements Backend.
func (OSBackend) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// WriteFile implements Backend.
func (OSBackend) WriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// ReadFile implements Backend.
func (OSBackend) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// Remove implements Backend.
func (OSBackend) Remove(path string) error { return os.Remove(path) }

// List implements Backend.
func (OSBackend) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Store is the Provenance Store component: a directory of per-process
// sub-graph files plus merge support.
type Store struct {
	backend Backend
	dir     string
	format  Format
	ns      *rdf.Namespaces
}

// NewStore creates (and mkdir-alls) a provenance store.
func NewStore(backend Backend, dir string, format Format) (*Store, error) {
	if err := backend.MkdirAll(dir); err != nil {
		return nil, err
	}
	return &Store{backend: backend, dir: dir, format: format, ns: model.Namespaces()}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// processFile returns the sub-graph file path for a process.
func (s *Store) processFile(pid int) string {
	ext := ".ttl"
	if s.format == FormatNTriples {
		ext = ".nt"
	}
	return filepath.ToSlash(filepath.Join(s.dir, fmt.Sprintf("prov_p%06d%s", pid, ext)))
}

// WriteSubgraph serializes a process sub-graph to its store file, replacing
// any previous flush from the same process.
func (s *Store) WriteSubgraph(pid int, g *rdf.Graph) error {
	var buf bytes.Buffer
	var err error
	if s.format == FormatNTriples {
		err = rdf.WriteNTriples(&buf, g)
	} else {
		err = rdf.WriteTurtle(&buf, g, s.ns)
	}
	if err != nil {
		return err
	}
	return s.backend.WriteFile(s.processFile(pid), buf.Bytes())
}

// subgraphFiles lists the per-process provenance files in the store.
func (s *Store) subgraphFiles() ([]string, error) {
	names, err := s.backend.List(s.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, n := range names {
		if strings.HasPrefix(n, "prov_p") && (strings.HasSuffix(n, ".ttl") || strings.HasSuffix(n, ".nt")) {
			out = append(out, filepath.ToSlash(filepath.Join(s.dir, n)))
		}
	}
	sort.Strings(out)
	return out, nil
}

// Merge parses every per-process sub-graph and unions them into a single
// graph. GUID-based node identity makes this deduplicate shared nodes
// (paper §5): agents and data objects minted by several processes collapse
// into single nodes.
func (s *Store) Merge() (*rdf.Graph, error) {
	files, err := s.subgraphFiles()
	if err != nil {
		return nil, err
	}
	merged := rdf.NewGraph()
	for _, f := range files {
		data, err := s.backend.ReadFile(f)
		if err != nil {
			return nil, err
		}
		g, _, err := rdf.ParseTurtle(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("core: parsing %s: %w", f, err)
		}
		merged.Merge(g)
	}
	return merged, nil
}

// WriteMerged merges all sub-graphs and writes the result as
// prov_merged.ttl, returning the merged graph.
func (s *Store) WriteMerged() (*rdf.Graph, error) {
	g, err := s.Merge()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if s.format == FormatNTriples {
		err = rdf.WriteNTriples(&buf, g)
	} else {
		err = rdf.WriteTurtle(&buf, g, s.ns)
	}
	if err != nil {
		return nil, err
	}
	name := "prov_merged.ttl"
	if s.format == FormatNTriples {
		name = "prov_merged.nt"
	}
	if err := s.backend.WriteFile(filepath.ToSlash(filepath.Join(s.dir, name)), buf.Bytes()); err != nil {
		return nil, err
	}
	return g, nil
}

// TotalBytes returns the summed size of all per-process provenance files —
// the storage metric of the paper's Figure 7.
func (s *Store) TotalBytes() (int64, error) {
	files, err := s.subgraphFiles()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, f := range files {
		data, err := s.backend.ReadFile(f)
		if err != nil {
			return 0, err
		}
		total += int64(len(data))
	}
	return total, nil
}
