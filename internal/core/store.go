package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/rdf/segcodec"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// Backend abstracts where the Provenance Store keeps its files: the
// simulated Lustre namespace (vfs) during experiments, or the real OS
// filesystem for the CLI tools and examples.
type Backend interface {
	MkdirAll(dir string) error
	WriteFile(path string, data []byte) error
	ReadFile(path string) ([]byte, error)
	// List returns the file names (not paths) inside dir, sorted.
	List(dir string) ([]string, error)
	Remove(path string) error
}

// VFSBackend stores provenance in a vfs view (the simulated PFS).
type VFSBackend struct{ View *vfs.View }

// MkdirAll implements Backend.
func (b VFSBackend) MkdirAll(dir string) error { return b.View.MkdirAll(dir) }

// WriteFile implements Backend.
func (b VFSBackend) WriteFile(path string, data []byte) error { return b.View.WriteFile(path, data) }

// ReadFile implements Backend.
func (b VFSBackend) ReadFile(path string) ([]byte, error) { return b.View.ReadFile(path) }

// Remove implements Backend.
func (b VFSBackend) Remove(path string) error { return b.View.Remove(path) }

// List implements Backend.
func (b VFSBackend) List(dir string) ([]string, error) {
	infos, err := b.View.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(infos))
	for _, fi := range infos {
		if !fi.IsDir {
			names = append(names, fi.Name)
		}
	}
	return names, nil
}

// OSBackend stores provenance on the host filesystem.
type OSBackend struct{}

// MkdirAll implements Backend.
func (OSBackend) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// WriteFile implements Backend.
func (OSBackend) WriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// ReadFile implements Backend.
func (OSBackend) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// Remove implements Backend.
func (OSBackend) Remove(path string) error { return os.Remove(path) }

// List implements Backend.
func (OSBackend) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Store is the Provenance Store component: a directory of per-process
// sub-graph files plus merge support.
//
// The store's write format is one of the registered segment codecs
// (DESIGN.md "Store codecs"); reads never consult it — every file is
// decoded by the codec its magic bytes identify (text files, which carry no
// magic, fall back to the N-Triples/Turtle superset parser), so mixed-format
// directories merge correctly.
type Store struct {
	backend Backend
	dir     string
	format  Format
	codec   segcodec.Codec // canonical sub-graph + merged-output codec
	seg     segcodec.Codec // delta-segment codec
	ns      *rdf.Namespaces
}

// codec returns the segment codec serializing a store format.
func (f Format) codecOf() segcodec.Codec {
	switch f {
	case FormatNTriples:
		return segcodec.NTriples
	case FormatBinary:
		return segcodec.Binary
	default:
		return segcodec.Turtle
	}
}

// NewStore creates (and mkdir-alls) a provenance store. FormatAuto resolves
// to the format of the canonical files already in dir (Turtle when empty).
func NewStore(backend Backend, dir string, format Format) (*Store, error) {
	if err := backend.MkdirAll(dir); err != nil {
		return nil, err
	}
	if format == FormatAuto {
		format = detectDirFormat(backend, dir)
	}
	s := &Store{backend: backend, dir: dir, format: format, ns: model.Namespaces()}
	s.codec = format.codecOf()
	// Delta segments stay N-Triples for both text formats (the historical
	// segment format); the binary format carries its own segments.
	if format == FormatBinary {
		s.seg = segcodec.Binary
	} else {
		s.seg = segcodec.NTriples
	}
	return s, nil
}

// detectDirFormat resolves FormatAuto: the codec extension of the first
// canonical sub-graph file present (segments decide only if no canonical
// file exists), defaulting to Turtle for an empty directory.
func detectDirFormat(backend Backend, dir string) Format {
	names, err := backend.List(dir)
	if err != nil {
		return FormatTurtle
	}
	fromExt := func(name string) (Format, bool) {
		c, ok := segcodec.ByExt(filepath.Ext(name))
		if !ok {
			return FormatTurtle, false
		}
		f, err := ParseFormat(c.Name())
		if err != nil {
			return FormatTurtle, false
		}
		return f, true
	}
	segFormat, haveSeg := FormatTurtle, false
	for _, n := range names {
		if !strings.HasPrefix(n, "prov_p") {
			continue
		}
		f, ok := fromExt(n)
		if !ok {
			continue
		}
		if !strings.Contains(n, ".seg") {
			return f
		}
		if !haveSeg {
			segFormat, haveSeg = f, true
		}
	}
	return segFormat
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Format returns the store's resolved write format.
func (s *Store) Format() Format { return s.format }

// processFile returns the sub-graph file path for a process.
func (s *Store) processFile(pid int) string {
	return filepath.ToSlash(filepath.Join(s.dir, fmt.Sprintf("prov_p%06d%s", pid, s.codec.Ext())))
}

// WriteSubgraph serializes a process sub-graph to its canonical store file,
// replacing any previous flush from the same process.
func (s *Store) WriteSubgraph(pid int, g *rdf.Graph) error {
	var buf bytes.Buffer
	if err := s.codec.Encode(&buf, g, s.ns); err != nil {
		return err
	}
	return s.backend.WriteFile(s.processFile(pid), buf.Bytes())
}

// segmentFile returns the path of one delta segment of a process.
func (s *Store) segmentFile(pid, seg int) string {
	return filepath.ToSlash(filepath.Join(s.dir, fmt.Sprintf("prov_p%06d.seg%04d%s", pid, seg, s.seg.Ext())))
}

// segmentPrefix is the file-name prefix of every delta segment of pid.
func segmentPrefix(pid int) string { return fmt.Sprintf("prov_p%06d.seg", pid) }

// WriteDeltaSegment appends one delta segment for a process: the triples a
// periodic flush captured since the previous flush, as N-Triples. Segments
// are append-only — each flush writes a fresh file — so concurrent periodic
// flushes never rewrite earlier data, and the union of a process's canonical
// file and its segments is its full sub-graph. Compaction (tracker Close or
// Store.Compact) folds segments back into the canonical file.
func (s *Store) WriteDeltaSegment(pid, seg int, triples []rdf.Triple) error {
	te, ok := s.seg.(segcodec.TriplesEncoder)
	if !ok {
		return fmt.Errorf("core: segment codec %s cannot encode bare triples", s.seg.Name())
	}
	var buf bytes.Buffer
	if err := te.EncodeTriples(&buf, triples); err != nil {
		return err
	}
	return s.backend.WriteFile(s.segmentFile(pid, seg), buf.Bytes())
}

// WriteDeltaSegmentRefs is WriteDeltaSegment in ID space: the delta arrives
// as insertion-log refs. Under a text segment codec they are rendered
// through the tracker's memoized per-ID term cache, so a flush materializes
// no []rdf.Triple and re-renders no term an earlier flush already rendered
// (byte-identical to WriteDeltaSegment on the materialized triples). Under
// the binary codec the refs are serialized straight to ID columns with no
// term rendering at all.
func (s *Store) WriteDeltaSegmentRefs(pid, seg int, refs []rdf.TripleID, r *rdf.TermRenderer) error {
	var buf bytes.Buffer
	var err error
	if re, ok := s.seg.(segcodec.RefsEncoder); ok {
		err = re.EncodeRefs(&buf, refs, r.Graph())
	} else {
		err = r.WriteNTriples(&buf, refs)
	}
	if err != nil {
		return err
	}
	return s.backend.WriteFile(s.segmentFile(pid, seg), buf.Bytes())
}

// RemoveSegments deletes every delta segment of a process (after its
// contents were folded into the canonical file).
func (s *Store) RemoveSegments(pid int) error {
	names, err := s.backend.List(s.dir)
	if err != nil {
		return err
	}
	prefix := segmentPrefix(pid)
	for _, n := range names {
		if strings.HasPrefix(n, prefix) && isCodecFile(n) {
			if err := s.backend.Remove(filepath.ToSlash(filepath.Join(s.dir, n))); err != nil {
				return err
			}
		}
	}
	return nil
}

// isCodecFile reports whether a file name carries a registered codec
// extension — the single source of truth for which store files hold
// provenance, shared by sub-graph listing and segment removal.
func isCodecFile(name string) bool {
	_, ok := segcodec.ByExt(filepath.Ext(name))
	return ok
}

// subgraphFiles lists the per-process provenance files in the store,
// including delta segments not yet compacted. Accepted extensions come from
// the codec registry, so new codecs are picked up without touching the
// listing logic.
func (s *Store) subgraphFiles() ([]string, error) {
	names, err := s.backend.List(s.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, n := range names {
		if strings.HasPrefix(n, "prov_p") && isCodecFile(n) {
			out = append(out, filepath.ToSlash(filepath.Join(s.dir, n)))
		}
	}
	sort.Strings(out)
	return out, nil
}

// decodeFileInto reads one provenance file and unions its triples into g,
// routing through the codec the file's magic bytes identify (text files
// fall back to the N-Triples/Turtle superset parser). Binary segments
// decode straight into g via AddBatch with no string parsing.
func (s *Store) decodeFileInto(f string, g *rdf.Graph) error {
	data, err := s.backend.ReadFile(f)
	if err != nil {
		return err
	}
	if err := segcodec.Detect(data).Decode(bytes.NewReader(data), g); err != nil {
		return fmt.Errorf("core: parsing %s: %w", f, err)
	}
	return nil
}

// Merge parses every per-process sub-graph (canonical files and pending
// delta segments) and unions them into a single graph. GUID-based node
// identity makes this deduplicate shared nodes (paper §5): agents and data
// objects minted by several processes collapse into single nodes.
func (s *Store) Merge() (*rdf.Graph, error) {
	return s.MergeParallel(1)
}

// MergeParallel is Merge with a worker pool: up to workers goroutines each
// parse sub-graph files and union them into a private accumulator graph
// (no lock contention), and the per-worker accumulators — already
// GUID-deduplicated — are unioned at the end. The result is
// triple-identical to Merge(): graph union is order-independent and
// idempotent. workers <= 1 merges sequentially.
func (s *Store) MergeParallel(workers int) (*rdf.Graph, error) {
	files, err := s.subgraphFiles()
	if err != nil {
		return nil, err
	}
	return s.mergeFiles(files, workers)
}

func (s *Store) mergeFiles(files []string, workers int) (*rdf.Graph, error) {
	if workers <= 1 || len(files) < 2 {
		merged := rdf.NewGraph()
		for _, f := range files {
			if err := s.decodeFileInto(f, merged); err != nil {
				return nil, err
			}
		}
		return merged, nil
	}
	if workers > len(files) {
		workers = len(files)
	}

	// Each worker owns a private accumulator graph: parsing AND union both
	// parallelize with zero cross-worker contention, and because each
	// accumulator is already GUID-deduplicated, the sequential combine at
	// the end touches far fewer triples than the files contained.
	jobs := make(chan string)
	accs := make([]*rdf.Graph, workers)
	var (
		workerWG sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}
	for w := 0; w < workers; w++ {
		accs[w] = rdf.NewGraph()
		workerWG.Add(1)
		go func(acc *rdf.Graph) {
			defer workerWG.Done()
			for f := range jobs {
				if failed() {
					continue // drain remaining jobs after an error
				}
				if err := s.decodeFileInto(f, acc); err != nil {
					fail(err)
				}
			}
		}(accs[w])
	}
	for _, f := range files {
		jobs <- f
	}
	close(jobs)
	workerWG.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	merged := accs[0]
	for _, acc := range accs[1:] {
		merged.Merge(acc)
	}
	return merged, nil
}

// Compact folds every process's delta segments into its canonical sub-graph
// file and removes the segments. It is the store-level recovery path for
// runs that crashed between a periodic flush and Close (trackers compact
// their own process on Close). Canonical files are rewritten in the store's
// own format, and a pid whose canonical file carries a different codec's
// extension is rewritten even when it has no segments — so compacting with a
// binary store migrates a text store to .pbs (and vice versa), the
// format-migration path of the codec layer. Same-format pids with no
// segments are left untouched.
func (s *Store) Compact() error {
	files, err := s.subgraphFiles()
	if err != nil {
		return err
	}
	// Group by process: canonical file (if any) plus segments.
	byPid := make(map[int][]string)
	dirty := make(map[int]bool)
	for _, f := range files {
		base := filepath.Base(f)
		var pid int
		if _, err := fmt.Sscanf(base, "prov_p%06d", &pid); err != nil {
			continue
		}
		byPid[pid] = append(byPid[pid], f)
		if strings.Contains(base, ".seg") || filepath.Ext(base) != s.codec.Ext() {
			dirty[pid] = true
		}
	}
	pids := make([]int, 0, len(dirty))
	for pid := range dirty {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		g := rdf.NewGraph()
		for _, f := range byPid[pid] {
			if err := s.decodeFileInto(f, g); err != nil {
				return err
			}
		}
		if err := s.WriteSubgraph(pid, g); err != nil {
			return err
		}
		if err := s.RemoveSegments(pid); err != nil {
			return err
		}
		// Drop the old-format canonical file the rewrite replaced.
		for _, f := range byPid[pid] {
			if !strings.Contains(filepath.Base(f), ".seg") && f != s.processFile(pid) {
				if err := s.backend.Remove(f); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteMerged merges all sub-graphs and writes the result as
// prov_merged.ttl, returning the merged graph.
func (s *Store) WriteMerged() (*rdf.Graph, error) {
	return s.WriteMergedParallel(1)
}

// WriteMergedParallel is WriteMerged with a parse worker pool.
func (s *Store) WriteMergedParallel(workers int) (*rdf.Graph, error) {
	g, err := s.MergeParallel(workers)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := s.codec.Encode(&buf, g, s.ns); err != nil {
		return nil, err
	}
	name := "prov_merged" + s.codec.Ext()
	if err := s.backend.WriteFile(filepath.ToSlash(filepath.Join(s.dir, name)), buf.Bytes()); err != nil {
		return nil, err
	}
	return g, nil
}

// TotalBytes returns the summed size of all per-process provenance files —
// the storage metric of the paper's Figure 7.
func (s *Store) TotalBytes() (int64, error) {
	files, err := s.subgraphFiles()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, f := range files {
		data, err := s.backend.ReadFile(f)
		if err != nil {
			return 0, err
		}
		total += int64(len(data))
	}
	return total, nil
}
