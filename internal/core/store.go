package core

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/hpc-io/prov-io/internal/backend"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/rdf/segcodec"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// StoreBackend abstracts where the Provenance Store keeps its files: a
// directory on the real filesystem, the simulated Lustre namespace (vfs)
// during experiments, an in-memory namespace, a single-file archive, or a
// mount spanning several of those (see internal/backend and DESIGN.md
// "Store backends & mounts"). The store's whole write model fits this
// interface — whole-file reads and writes of named files inside one logical
// directory — which is what keeps the chain, verification, and recovery code
// backend-agnostic.
//
// The method set is the structural twin of backend.Storage (and of the
// Backend interface internal/faultfs decorates); it is stated here rather
// than aliased so core does not depend on the backend package for its
// central abstraction, and so fault-injection wrappers satisfy it without
// adapters. Keep the three in sync.
//
// Contract:
//   - WriteFile replaces the whole file; whether the replacement is atomic
//     is advertised by the CapAtomicWrite bit of Caps.
//   - ReadFile and Stat report a missing file with an error satisfying
//     errors.Is(err, fs.ErrNotExist).
//   - List returns the sorted file names (not paths) directly inside dir.
//   - Remove fails if the file does not exist.
type StoreBackend interface {
	MkdirAll(dir string) error
	WriteFile(path string, data []byte) error
	ReadFile(path string) ([]byte, error)
	// List returns the file names (not paths) inside dir, sorted.
	List(dir string) ([]string, error)
	Remove(path string) error
	// Stat returns the file's size in bytes.
	Stat(path string) (int64, error)
	// Caps advertises the backend's capability flags (backend.Cap* bits).
	Caps() uint32
}

// Backend is the StoreBackend interface's historical name, kept for the
// existing construction call sites.
type Backend = StoreBackend

// Capability bits re-exported from the backend package so callers holding
// only a core.StoreBackend can interpret Caps.
const (
	CapAtomicWrite = backend.CapAtomicWrite
	CapPersistent  = backend.CapPersistent
	CapArchive     = backend.CapArchive
)

// CapsString renders capability bits for tooling output.
func CapsString(caps uint32) string { return backend.CapsString(caps) }

// VFSBackend stores provenance in a vfs view (the simulated PFS).
type VFSBackend struct{ View *vfs.View }

// MkdirAll implements StoreBackend.
func (b VFSBackend) MkdirAll(dir string) error { return b.View.MkdirAll(dir) }

// WriteFile implements StoreBackend.
func (b VFSBackend) WriteFile(path string, data []byte) error { return b.View.WriteFile(path, data) }

// ReadFile implements StoreBackend.
func (b VFSBackend) ReadFile(path string) ([]byte, error) { return b.View.ReadFile(path) }

// ReadFileRange reads [off, off+n) of a file, clamped to its size — the
// partial-read capability pruned and lazy pack reads probe for, so stores on
// the simulated PFS exercise the same range-read path as dir/mem/file
// backends. The vfs keeps whole files in memory, so the range is a slice.
func (b VFSBackend) ReadFileRange(path string, off, n int64) ([]byte, error) {
	data, err := b.View.ReadFile(path)
	if err != nil {
		return nil, err
	}
	size := int64(len(data))
	if off < 0 {
		off = 0
	}
	if off > size {
		off = size
	}
	if n < 0 || off+n > size {
		n = size - off
	}
	return data[off : off+n], nil
}

// Remove implements StoreBackend.
func (b VFSBackend) Remove(path string) error { return b.View.Remove(path) }

// List implements StoreBackend.
func (b VFSBackend) List(dir string) ([]string, error) {
	infos, err := b.View.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(infos))
	for _, fi := range infos {
		if !fi.IsDir {
			names = append(names, fi.Name)
		}
	}
	return names, nil
}

// Stat implements StoreBackend.
func (b VFSBackend) Stat(path string) (int64, error) {
	fi, err := b.View.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size, nil
}

// Caps implements StoreBackend. The vfs models a crash-consistent PFS whose
// writes are whole-file and journaled, but its contents die with the process.
func (VFSBackend) Caps() uint32 { return backend.CapAtomicWrite }

// OSBackend stores provenance on the host filesystem; it is the directory
// backend of the backend package under its historical core name.
type OSBackend = backend.Dir

// Store is the Provenance Store component: a directory of per-process
// sub-graph files plus merge support.
//
// The store's write format is one of the registered segment codecs
// (DESIGN.md "Store codecs"); reads never consult it — every file is
// decoded by the codec its magic bytes identify (text files, which carry no
// magic, fall back to the N-Triples/Turtle superset parser), so mixed-format
// directories merge correctly.
type Store struct {
	backend Backend
	dir     string
	format  Format
	codec   segcodec.Codec // canonical sub-graph + merged-output codec
	seg     segcodec.Codec // delta-segment codec
	ns      *rdf.Namespaces

	// Per-process hash-chain heads (DESIGN.md "Integrity & fault
	// injection"): the SHA-256 of the last file sealed for each pid. Every
	// canonical rewrite and delta segment commits to the head it extends;
	// chainMu serializes the read-head/write-file/update-head step so
	// concurrent periodic flushes of one process chain linearly.
	chainMu   sync.Mutex
	chainHead map[int][32]byte
}

// codec returns the segment codec serializing a store format.
func (f Format) codecOf() segcodec.Codec {
	switch f {
	case FormatNTriples:
		return segcodec.NTriples
	case FormatBinary:
		return segcodec.Binary
	default:
		return segcodec.Turtle
	}
}

// NewStore creates (and mkdir-alls) a provenance store. FormatAuto resolves
// to the format of the canonical files already in dir (Turtle when empty).
func NewStore(backend Backend, dir string, format Format) (*Store, error) {
	if err := backend.MkdirAll(dir); err != nil {
		return nil, err
	}
	if format == FormatAuto {
		format = detectDirFormat(backend, dir)
	}
	s := &Store{backend: backend, dir: dir, format: format, ns: model.Namespaces(),
		chainHead: make(map[int][32]byte)}
	s.codec = format.codecOf()
	// Delta segments stay N-Triples for both text formats (the historical
	// segment format); the binary format carries its own segments.
	if format == FormatBinary {
		s.seg = segcodec.Binary
	} else {
		s.seg = segcodec.NTriples
	}
	return s, nil
}

// OpenStore opens a store from a spec string — the URI-style form every CLI
// tool and the config file accept (backend.ParseSpec grammar):
//
//	dir:/path (or a bare path)   directory store
//	mem:                         in-memory store
//	file:/path.pvs               single-file archive store
//	mount:hot=SPEC,cold=SPEC     mounted store spanning two backends
//
// The spec names both the backend and the logical store directory, so this
// is the one call sites need instead of pairing NewStore with a hand-built
// backend.
func OpenStore(spec string, format Format) (*Store, error) {
	b, dir, err := backend.Open(spec)
	if err != nil {
		return nil, err
	}
	return NewStore(b, dir, format)
}

// detectDirFormat resolves FormatAuto: the codec extension of the first
// canonical sub-graph file present (segments decide only if no canonical
// file exists), defaulting to Turtle for an empty directory.
func detectDirFormat(backend Backend, dir string) Format {
	names, err := backend.List(dir)
	if err != nil {
		return FormatTurtle
	}
	fromExt := func(name string) (Format, bool) {
		c, ok := segcodec.ByExt(filepath.Ext(name))
		if !ok {
			return FormatTurtle, false
		}
		f, err := ParseFormat(c.Name())
		if err != nil {
			return FormatTurtle, false
		}
		return f, true
	}
	segFormat, haveSeg := FormatTurtle, false
	for _, n := range names {
		if !strings.HasPrefix(n, "prov_p") {
			continue
		}
		f, ok := fromExt(n)
		if !ok {
			continue
		}
		if !strings.Contains(n, ".seg") {
			return f
		}
		if !haveSeg {
			segFormat, haveSeg = f, true
		}
	}
	return segFormat
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Backend returns the store's backend.
func (s *Store) Backend() StoreBackend { return s.backend }

// Format returns the store's resolved write format.
func (s *Store) Format() Format { return s.format }

// processFile returns the sub-graph file path for a process.
func (s *Store) processFile(pid int) string {
	return filepath.ToSlash(filepath.Join(s.dir, fmt.Sprintf("prov_p%06d%s", pid, s.codec.Ext())))
}

// WriteSubgraph serializes a process sub-graph to its canonical store file,
// replacing any previous flush from the same process. The write seals a new
// chain root: its seal's prev is the chain head it supersedes, which is what
// authenticates segments a crash strands between the canonical rewrite and
// their removal.
func (s *Store) WriteSubgraph(pid int, g *rdf.Graph) error {
	var buf bytes.Buffer
	if err := s.codec.Encode(&buf, g, s.ns); err != nil {
		return err
	}
	return s.writeChained(s.codec, s.processFile(pid), buf.Bytes(), true, 0, pid)
}

// chainPrevLocked returns pid's current chain head, lazily initializing it
// for a store object that did not write the history so far (a restarted
// process, a recovery tool): the chain continues from the digest of the
// pid's existing canonical file, or from zero for a brand-new process.
// Caller holds s.chainMu.
func (s *Store) chainPrevLocked(pid int) [32]byte {
	if h, ok := s.chainHead[pid]; ok {
		return h
	}
	var head [32]byte
	base := fmt.Sprintf("prov_p%06d", pid)
	exts := []string{s.codec.Ext()}
	for _, c := range segcodec.All() {
		if c.Ext() != s.codec.Ext() {
			exts = append(exts, c.Ext())
		}
	}
	for _, ext := range exts {
		data, err := s.backend.ReadFile(filepath.ToSlash(filepath.Join(s.dir, base+ext)))
		if err == nil {
			head = fileDigest(data)
			break
		}
	}
	s.chainHead[pid] = head
	return head
}

// writeChained writes one store file sealed into pid's hash chain. Binary
// codecs embed the seal as a trailing chain frame (file and seal are
// atomic); text codecs get a .sum sidecar written after the file. The chain
// head advances as soon as the file itself is durable, so a failed sidecar
// write leaves a file later writes still chain to (verification confirms
// such a file through its successor's seal).
func (s *Store) writeChained(c segcodec.Codec, path string, payload []byte, root bool, seq uint64, pid int) error {
	s.chainMu.Lock()
	defer s.chainMu.Unlock()
	prev := s.chainPrevLocked(pid)
	ch := segcodec.Chain{Root: root, Seq: seq, Prev: prev}
	if len(c.Magic()) > 0 {
		sealed := segcodec.AppendChain(payload, ch)
		if err := s.backend.WriteFile(path, sealed); err != nil {
			return err
		}
		s.chainHead[pid] = fileDigest(sealed)
		return nil
	}
	if err := s.backend.WriteFile(path, payload); err != nil {
		return err
	}
	d := fileDigest(payload)
	s.chainHead[pid] = d
	return s.backend.WriteFile(path+chainSidecarExt, marshalSidecar(ch, int64(len(payload)), d))
}

// segmentFile returns the path of one delta segment of a process.
func (s *Store) segmentFile(pid, seg int) string {
	return filepath.ToSlash(filepath.Join(s.dir, fmt.Sprintf("prov_p%06d.seg%04d%s", pid, seg, s.seg.Ext())))
}

// segmentPrefix is the file-name prefix of every delta segment of pid.
func segmentPrefix(pid int) string { return fmt.Sprintf("prov_p%06d.seg", pid) }

// WriteDeltaSegment appends one delta segment for a process: the triples a
// periodic flush captured since the previous flush, as N-Triples. Segments
// are append-only — each flush writes a fresh file — so concurrent periodic
// flushes never rewrite earlier data, and the union of a process's canonical
// file and its segments is its full sub-graph. Compaction (tracker Close or
// Store.Compact) folds segments back into the canonical file.
func (s *Store) WriteDeltaSegment(pid, seg int, triples []rdf.Triple) error {
	te, ok := s.seg.(segcodec.TriplesEncoder)
	if !ok {
		return fmt.Errorf("core: segment codec %s cannot encode bare triples", s.seg.Name())
	}
	var buf bytes.Buffer
	if err := te.EncodeTriples(&buf, triples); err != nil {
		return err
	}
	return s.writeChained(s.seg, s.segmentFile(pid, seg), buf.Bytes(), false, uint64(seg), pid)
}

// WriteDeltaSegmentRefs is WriteDeltaSegment in ID space: the delta arrives
// as insertion-log refs. Under a text segment codec they are rendered
// through the tracker's memoized per-ID term cache, so a flush materializes
// no []rdf.Triple and re-renders no term an earlier flush already rendered
// (byte-identical to WriteDeltaSegment on the materialized triples). Under
// the binary codec the refs are serialized straight to ID columns with no
// term rendering at all.
func (s *Store) WriteDeltaSegmentRefs(pid, seg int, refs []rdf.TripleID, r *rdf.TermRenderer) error {
	var buf bytes.Buffer
	var err error
	if re, ok := s.seg.(segcodec.RefsEncoder); ok {
		err = re.EncodeRefs(&buf, refs, r.Graph())
	} else {
		err = r.WriteNTriples(&buf, refs)
	}
	if err != nil {
		return err
	}
	return s.writeChained(s.seg, s.segmentFile(pid, seg), buf.Bytes(), false, uint64(seg), pid)
}

// RemoveSegments deletes every delta segment of a process (after its
// contents were folded into the canonical file), integrity sidecars
// included. Each segment's sidecar goes before the segment itself, so a
// crash mid-removal strands at worst a sidecar-less segment — a state the
// verifier already authenticates through successor seals — never a sidecar
// whose segment is gone.
func (s *Store) RemoveSegments(pid int) error {
	names, err := s.backend.List(s.dir)
	if err != nil {
		return err
	}
	prefix := segmentPrefix(pid)
	present := make(map[string]bool, len(names))
	for _, n := range names {
		present[n] = true
	}
	for _, n := range names {
		if !strings.HasPrefix(n, prefix) {
			continue
		}
		isSum := strings.HasSuffix(n, chainSidecarExt) &&
			isCodecFile(strings.TrimSuffix(n, chainSidecarExt))
		if !isSum && !isCodecFile(n) {
			continue
		}
		if isSum && present[strings.TrimSuffix(n, chainSidecarExt)] {
			continue // removed just before its segment below
		}
		if !isSum && present[n+chainSidecarExt] {
			if err := s.backend.Remove(filepath.ToSlash(filepath.Join(s.dir, n+chainSidecarExt))); err != nil {
				return err
			}
		}
		if err := s.backend.Remove(filepath.ToSlash(filepath.Join(s.dir, n))); err != nil {
			return err
		}
	}
	return nil
}

// isCodecFile reports whether a file name carries a registered codec
// extension — the single source of truth for which store files hold
// provenance, shared by sub-graph listing and segment removal.
func isCodecFile(name string) bool {
	_, ok := segcodec.ByExt(filepath.Ext(name))
	return ok
}

// subgraphFiles lists the per-process provenance files in the store,
// including delta segments not yet compacted. Accepted extensions come from
// the codec registry, so new codecs are picked up without touching the
// listing logic.
func (s *Store) subgraphFiles() ([]string, error) {
	names, err := s.backend.List(s.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, n := range names {
		if strings.HasPrefix(n, "prov_p") && isCodecFile(n) {
			out = append(out, filepath.ToSlash(filepath.Join(s.dir, n)))
		}
	}
	sort.Strings(out)
	return out, nil
}

// decodeFileInto reads one provenance file and unions its triples into g,
// routing through the codec the file's magic bytes identify (text files
// fall back to the N-Triples/Turtle superset parser). Binary segments
// decode straight into g via AddBatch with no string parsing.
func (s *Store) decodeFileInto(f string, g *rdf.Graph) error {
	data, err := s.backend.ReadFile(f)
	if err != nil {
		return err
	}
	if err := segcodec.Detect(data).Decode(bytes.NewReader(data), g); err != nil {
		return fmt.Errorf("core: parsing %s: %w", f, err)
	}
	return nil
}

// Merge parses every per-process sub-graph (canonical files and pending
// delta segments) and unions them into a single graph. GUID-based node
// identity makes this deduplicate shared nodes (paper §5): agents and data
// objects minted by several processes collapse into single nodes.
func (s *Store) Merge() (*rdf.Graph, error) {
	return s.MergeParallel(1)
}

// MergeParallel is Merge with a worker pool: up to workers goroutines each
// parse sub-graph files and union them into a private accumulator graph
// (no lock contention), and the per-worker accumulators — already
// GUID-deduplicated — are unioned at the end. The result is
// triple-identical to Merge(): graph union is order-independent and
// idempotent. workers <= 1 merges sequentially.
func (s *Store) MergeParallel(workers int) (*rdf.Graph, error) {
	g, _, err := s.MergePruned(nil, workers)
	return g, err
}

// mergeFiles decodes an explicit file list (packs included, through the
// codec registry) into one graph — the order-independence property-test
// entry point. Listing-driven merges go through MergePruned instead, the
// store's one pruner-aware merge path.
func (s *Store) mergeFiles(files []string, workers int) (*rdf.Graph, error) {
	units := make([]scanUnit, len(files))
	for i, f := range files {
		units[i] = scanUnit{path: f}
	}
	return s.decodeUnits(units, workers)
}

// Compact folds every process's delta segments into its canonical sub-graph
// file and removes the segments. It is the store-level recovery path for
// runs that crashed between a periodic flush and Close (trackers compact
// their own process on Close). Canonical files are rewritten in the store's
// own format, and a pid whose canonical file carries a different codec's
// extension is rewritten even when it has no segments — so compacting with a
// binary store migrates a text store to .pbs (and vice versa), the
// format-migration path of the codec layer. Same-format pids with no
// segments are left untouched — unless the store is mounted and their files
// sit outside their routed tier, in which case Compact relocates them
// verbatim, the cross-backend migration path of the mount layer.
//
// Compact audits before it folds (the same audit provio-verify runs) and
// recovers exactly the damage an interrupted write of unacknowledged data
// can cause: a defective newest segment — torn, bit-flipped before its seal
// landed, or sealed-but-unconfirmable — is dropped (it was never
// acknowledged: acknowledgement happens strictly after the write completes),
// and stale sidecars a crash stranded are collected. Any other defect means
// the store's acknowledged history itself is damaged or manipulated; Compact
// refuses with an *IntegrityError rather than guess, and provio-verify
// classifies the damage.
func (s *Store) Compact() error {
	a, err := s.audit(true)
	if err != nil {
		return err
	}
	// Drop unacknowledged torn tails (at most the newest segment per pid),
	// then re-audit so chain analysis sees the repaired state.
	dropped := false
	for _, pa := range a.pids {
		if len(pa.defects) == 0 || len(pa.drop) == 0 {
			continue
		}
		for _, n := range pa.drop {
			if err := s.backend.Remove(filepath.ToSlash(filepath.Join(s.dir, n))); err != nil {
				return err
			}
		}
		dropped = true
	}
	if dropped {
		if a, err = s.audit(true); err != nil {
			return err
		}
	}
	var defects []Defect
	for _, pa := range a.pids {
		defects = append(defects, pa.defects...)
	}
	defects = append(defects, a.packDefects...)
	if len(defects) > 0 {
		sortDefects(defects)
		return &IntegrityError{Defects: defects}
	}

	pids := make([]int, 0, len(a.pids))
	for pid := range a.pids {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	mis := misplacer(s.backend)
	for _, pid := range pids {
		pa := a.pids[pid]
		dirty := len(pa.segs) > 0 || len(pa.staleSums) > 0 || len(pa.canonicals) > 1
		for _, c := range pa.canonicals {
			if filepath.Ext(c.name) != s.codec.Ext() || c.packed != "" {
				dirty = true
			}
		}
		// On a mounted store, a clean pid whose canonical file (or its
		// sidecar) lives outside its routed tier is migration work: rewrite
		// the same bytes through the mount, which homes them on the routed
		// tier and drops the stale copy (write-through cleanup). The files
		// move verbatim — no re-encode, no new seal — so chain heads survive
		// a cross-backend migration byte-for-byte.
		if !dirty && mis != nil {
			var moves []string
			for _, c := range pa.canonicals {
				for _, n := range []string{c.name, c.sumName} {
					if n == "" {
						continue
					}
					if p := filepath.ToSlash(filepath.Join(s.dir, n)); mis.Misplaced(p) {
						moves = append(moves, p)
					}
				}
			}
			for _, p := range moves {
				data, err := s.backend.ReadFile(p)
				if err != nil {
					return err
				}
				if err := s.backend.WriteFile(p, data); err != nil {
					return err
				}
			}
		}
		if !dirty {
			continue
		}
		g := rdf.NewGraph()
		for _, f := range append(append([]*auditFile{}, pa.canonicals...), pa.segs...) {
			if f.graph != nil {
				g.Merge(f.graph)
			} else if err := s.decodeFileInto(filepath.ToSlash(filepath.Join(s.dir, f.name)), g); err != nil {
				return err
			}
		}
		// Seal the new root against the pid's actual chain head (the newest
		// authenticated file the audit found), not whatever canonical this
		// store object last saw — recovery with a fresh Store must not fork
		// the chain, or a crash inside Compact itself would be unrecoverable.
		s.chainMu.Lock()
		s.chainHead[pid] = pa.head
		s.chainMu.Unlock()
		if err := s.WriteSubgraph(pid, g); err != nil {
			return err
		}
		if err := s.RemoveSegments(pid); err != nil {
			return err
		}
		// Drop the old-format canonical files the rewrite replaced, their
		// sidecars included. Packed copies have no loose file to remove —
		// their container goes below.
		for _, c := range pa.canonicals {
			if c.name == filepath.Base(s.processFile(pid)) || c.packed != "" {
				continue
			}
			if c.sumName != "" {
				if err := s.backend.Remove(filepath.ToSlash(filepath.Join(s.dir, c.sumName))); err != nil {
					return err
				}
			}
			if err := s.backend.Remove(filepath.ToSlash(filepath.Join(s.dir, c.name))); err != nil {
				return err
			}
		}
	}
	// Every packed member is folded above (a pid with packed files is always
	// dirty), so the pack containers are now superseded history.
	for _, n := range a.packFiles {
		if err := s.backend.Remove(filepath.ToSlash(filepath.Join(s.dir, n))); err != nil {
			return err
		}
	}
	return nil
}

// WriteMerged merges all sub-graphs and writes the result as
// prov_merged.ttl, returning the merged graph.
func (s *Store) WriteMerged() (*rdf.Graph, error) {
	return s.WriteMergedParallel(1)
}

// WriteMergedParallel is WriteMerged with a parse worker pool.
func (s *Store) WriteMergedParallel(workers int) (*rdf.Graph, error) {
	g, err := s.MergeParallel(workers)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := s.codec.Encode(&buf, g, s.ns); err != nil {
		return nil, err
	}
	name := "prov_merged" + s.codec.Ext()
	if err := s.backend.WriteFile(filepath.ToSlash(filepath.Join(s.dir, name)), buf.Bytes()); err != nil {
		return nil, err
	}
	return g, nil
}

// sizedFile is one provenance file with its size, from a single List+Stat
// pass shared by TotalBytes and Levels (one round of backend metadata
// traffic instead of one per consumer — visible on mount:/file: backends
// where List re-reads the archive journal).
type sizedFile struct {
	path string
	size int64
}

// sizedSubgraphFiles lists the store's provenance files with their sizes.
func (s *Store) sizedSubgraphFiles() ([]sizedFile, error) {
	files, err := s.subgraphFiles()
	if err != nil {
		return nil, err
	}
	out := make([]sizedFile, len(files))
	for i, f := range files {
		n, err := s.backend.Stat(f)
		if err != nil {
			return nil, err
		}
		out[i] = sizedFile{path: f, size: n}
	}
	return out, nil
}

// TotalBytes returns the summed size of all per-process provenance files —
// the storage metric of the paper's Figure 7.
func (s *Store) TotalBytes() (int64, error) {
	files, err := s.sizedSubgraphFiles()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, f := range files {
		total += f.size
	}
	return total, nil
}

// misplacer unwraps decorator chains (anything exposing Inner() any, such as
// the fault-injection wrapper) to find a backend that reports tier
// misplacement — the Mount overlay.
func misplacer(b StoreBackend) interface{ Misplaced(string) bool } {
	v := any(b)
	for v != nil {
		if m, ok := v.(interface{ Misplaced(string) bool }); ok {
			return m
		}
		in, ok := v.(interface{ Inner() any })
		if !ok {
			return nil
		}
		v = in.Inner()
	}
	return nil
}
