package core

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/sparql"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// TestQueryUnderIngestStress runs SPARQL queries (serial on a pinned
// snapshot, and through the morsel-driven parallel executor) against one
// tracker's graph while rank-style goroutines ingest records and another
// goroutine periodically flushes to the store. Designed for -race, and
// asserts the snapshot guarantees queries rely on:
//
//   - the watermark never tears: successive snapshots observe monotonically
//     non-decreasing log positions;
//   - records are atomic: a TrackIO(Write) commits its rdf:type triple, its
//     provio:wasWrittenBy edge, and its prov:wasAssociatedWith edge in one
//     batch, so in ANY snapshot the typed-write count equals the join count
//     over the other two edges — a partial record would split them;
//   - counts only grow: a query pinned after another query's snapshot can
//     never see fewer writes.
func TestQueryUnderIngestStress(t *testing.T) {
	workers, perWorker := 4, 1200
	if testing.Short() {
		perWorker = 300
	}

	view := vfs.NewStore().NewView()
	store, err := NewStore(VFSBackend{View: view}, "/prov", FormatNTriples)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Mode = ModeAtEnd // flushing is driven explicitly by the flusher goroutine
	tr := NewTracker(cfg, store, 0)
	g := tr.Graph()

	joinQ, err := sparql.Parse(fmt.Sprintf(
		`SELECT (COUNT(?api) AS ?n) WHERE {
			?obj <%s> ?api .
			?api <%s> ?prog .
		}`, model.WasWrittenBy.IRI().Value, model.AssociatedWith.IRI().Value),
		model.Namespaces())
	if err != nil {
		t.Fatal(err)
	}
	countOf := func(res *sparql.Result) (int, error) {
		if len(res.Rows) != 1 {
			return 0, fmt.Errorf("count query returned %d rows", len(res.Rows))
		}
		return strconv.Atoi(res.Rows[0]["n"].Value)
	}

	ingestDone := make(chan struct{})
	errCh := make(chan error, workers+2)

	// Rank-style ingest: distinct objects, one Write activity per object.
	var ingest sync.WaitGroup
	for w := 0; w < workers; w++ {
		ingest.Add(1)
		go func(w int) {
			defer ingest.Done()
			prog := tr.RegisterProgram(fmt.Sprintf("stress-w%d", w), rdf.Term{})
			for i := 0; i < perWorker; i++ {
				obj := tr.TrackDataObject(model.Dataset,
					fmt.Sprintf("/stress/w%d/d%d", w, i), "", rdf.Term{}, prog)
				tr.TrackIO(model.Write, "H5Dwrite", obj, prog, 0, 0)
			}
		}(w)
	}

	// Periodic flusher: synchronous store rewrites racing the readers.
	var aux sync.WaitGroup
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-ingestDone:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if err := tr.Flush(); err != nil {
				errCh <- fmt.Errorf("flush: %w", err)
				return
			}
		}
	}()

	// Querier: pin a snapshot, check invariants, and every few rounds push
	// the same count through the parallel executor.
	aux.Add(1)
	go func() {
		defer aux.Done()
		lastWatermark, lastCount := -1, -1
		for iter := 0; ; iter++ {
			select {
			case <-ingestDone:
				return
			default:
			}
			snap := g.Snapshot()
			if snap.Watermark() < lastWatermark {
				errCh <- fmt.Errorf("watermark tore: %d after %d", snap.Watermark(), lastWatermark)
				return
			}
			lastWatermark = snap.Watermark()

			typed := -1
			if typeID, ok := snap.TermID(rdf.IRI(rdf.RDFType)); ok {
				if writeID, ok := snap.TermID(model.Write.IRI()); ok {
					typed = snap.CountMatchIDs(rdf.NoID, typeID, writeID)
				}
			}
			res, err := sparql.EvalOn(snap, joinQ)
			if err != nil {
				errCh <- fmt.Errorf("EvalOn: %w", err)
				return
			}
			joined, err := countOf(res)
			if err != nil {
				errCh <- err
				return
			}
			if typed >= 0 && joined != typed {
				errCh <- fmt.Errorf("torn record visible: %d typed writes but %d joined (watermark %d)",
					typed, joined, snap.Watermark())
				return
			}
			if joined < lastCount {
				errCh <- fmt.Errorf("write count shrank: %d after %d", joined, lastCount)
				return
			}
			lastCount = joined

			if iter%4 == 0 {
				pres, err := sparql.EvalParallel(g, joinQ, 4)
				if err != nil {
					errCh <- fmt.Errorf("EvalParallel: %w", err)
					return
				}
				pn, err := countOf(pres)
				if err != nil {
					errCh <- err
					return
				}
				// The parallel call pinned a snapshot at least as new as ours.
				if pn < joined {
					errCh <- fmt.Errorf("parallel count went backwards: %d after %d", pn, joined)
					return
				}
				lastCount = pn
			}
		}
	}()

	ingest.Wait()
	close(ingestDone)
	aux.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// Final ground truth: every write made it, atomically.
	wantWrites := workers * perWorker
	res, err := sparql.EvalParallel(g, joinQ, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := countOf(res)
	if err != nil {
		t.Fatal(err)
	}
	if got != wantWrites {
		t.Fatalf("final write count = %d, want %d", got, wantWrites)
	}
}
