package core

import (
	"sync"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// The decoded-unit cache is the memory governor of the out-of-core read path
// (DESIGN.md "Out-of-core execution"): a LazyView materializes store units —
// loose segments and pack members — into decoded, query-ready snapshots on
// demand, and this cache bounds how many of them stay resident at once.
//
// Keying: a unit is identified by (path, member, extent, content digest).
// The digest binds a cache entry to the exact bytes the view saw when it was
// opened, so a Compact that rewrites a canonical file in place — the one
// store operation that reuses a file name for new content — can never be
// served from a stale entry: the re-fetch digest check fails first and the
// view reports ErrStaleView instead.
//
// Eviction is CLOCK (second-chance): every hit sets the slot's reference
// bit, and the hand sweeps the ring clearing bits until it finds an unset
// one to evict. This approximates LRU with O(1) hits and no per-access list
// surgery, which matters because every morsel of a parallel scan touches the
// cache concurrently.

// CacheConfig bounds a LazyView's decoded-unit cache.
type CacheConfig struct {
	// MaxBytes is the decoded-footprint budget; <= 0 means unbounded.
	MaxBytes int64
}

// CacheStats is a point-in-time report of a LazyView's cache counters.
type CacheStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	ResidentUnits int    `json:"resident_units"`
	ResidentBytes int64  `json:"resident_bytes"`
	PeakBytes     int64  `json:"peak_bytes"`
	BudgetBytes   int64  `json:"budget_bytes"`
}

// unitKey identifies one decodable unit pinned to its open-time content.
type unitKey struct {
	path      string
	member    string // "" for a loose file
	off, size int64
	digest    [32]byte
}

// decodedUnit is one store unit materialized for querying: its private
// snapshot plus the bridge between the unit's local term-ID space and the
// view's shared global dictionary. Both remap directions are immutable once
// built, and rebuilding from identical bytes against the same (append-only)
// dictionary reproduces them exactly — so an evicted unit that reloads keeps
// serving the same global IDs.
type decodedUnit struct {
	snap     *rdf.Snapshot
	toGlobal []rdf.ID          // local ID -> global ID (dense)
	toLocal  map[rdf.ID]rdf.ID // global ID -> local ID (exactly the unit's terms)
	bytes    int64             // decoded-footprint estimate the budget charges
}

// cacheSlot is one resident cache entry plus its CLOCK reference bit.
type cacheSlot struct {
	key unitKey
	val *decodedUnit
	ref bool
}

// cacheFlight coalesces concurrent loads of one unit: the first caller
// decodes, everyone else blocks on done and shares the result.
type cacheFlight struct {
	done chan struct{}
	val  *decodedUnit
	err  error
}

// segCache is the byte-budgeted decoded-unit cache of one LazyView.
type segCache struct {
	budget int64 // <= 0: unbounded

	mu       sync.Mutex
	slots    map[unitKey]*cacheSlot
	ring     []*cacheSlot // CLOCK ring, hand sweeps it
	hand     int
	flights  map[unitKey]*cacheFlight
	resident int64

	hits, misses, evictions uint64
	peak                    int64
}

func newSegCache(budget int64) *segCache {
	return &segCache{
		budget:  budget,
		slots:   make(map[unitKey]*cacheSlot),
		flights: make(map[unitKey]*cacheFlight),
	}
}

// get returns the decoded unit under k, loading it via load on a miss.
// Concurrent misses of the same key share one load (joiners count as hits:
// they paid no decode). A unit larger than the whole budget is returned but
// never inserted, so the resident-bytes invariant holds unconditionally.
func (c *segCache) get(k unitKey, load func() (*decodedUnit, error)) (*decodedUnit, error) {
	c.mu.Lock()
	if s, ok := c.slots[k]; ok {
		s.ref = true
		c.hits++
		v := s.val
		c.mu.Unlock()
		return v, nil
	}
	if f, ok := c.flights[k]; ok {
		c.hits++
		c.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &cacheFlight{done: make(chan struct{})}
	c.flights[k] = f
	c.misses++
	c.mu.Unlock()

	f.val, f.err = load()

	c.mu.Lock()
	delete(c.flights, k)
	if f.err == nil {
		c.insertLocked(k, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, f.err
}

// insertLocked admits v under k, evicting with the CLOCK hand until it fits.
// Caller holds c.mu.
func (c *segCache) insertLocked(k unitKey, v *decodedUnit) {
	if _, ok := c.slots[k]; ok {
		return // raced in while we loaded outside a flight (defensive)
	}
	if c.budget > 0 && v.bytes > c.budget {
		return // oversized: serve transiently, never resident
	}
	for c.budget > 0 && c.resident+v.bytes > c.budget && len(c.ring) > 0 {
		s := c.ring[c.hand]
		if s.ref {
			s.ref = false
			c.hand = (c.hand + 1) % len(c.ring)
			continue
		}
		delete(c.slots, s.key)
		c.resident -= s.val.bytes
		c.evictions++
		c.ring = append(c.ring[:c.hand], c.ring[c.hand+1:]...)
		if len(c.ring) > 0 {
			c.hand %= len(c.ring)
		} else {
			c.hand = 0
		}
	}
	slot := &cacheSlot{key: k, val: v, ref: true}
	c.slots[k] = slot
	c.ring = append(c.ring, slot)
	c.resident += v.bytes
	if c.resident > c.peak {
		c.peak = c.resident
	}
}

// stats returns a point-in-time counter snapshot.
func (c *segCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		ResidentUnits: len(c.slots),
		ResidentBytes: c.resident,
		PeakBytes:     c.peak,
		BudgetBytes:   c.budget,
	}
}

// forEachResident visits every resident entry with its charged bytes.
func (c *segCache) forEachResident(fn func(k unitKey, bytes int64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, s := range c.slots {
		fn(k, s.val.bytes)
	}
}

// decodedBytesEstimate charges a decoded unit for what it actually pins:
// the snapshot's term table (string headers + bytes) and triple refs, plus
// the remap tables. The estimate is deliberately on the heavy side — the
// adjacency index a scan builds lazily is proportional to the refs — so a
// budget of B keeps true resident memory near B rather than a multiple.
func decodedBytesEstimate(snap *rdf.Snapshot, toLocalLen int) int64 {
	var b int64
	n := snap.TermCount()
	for i := 0; i < n; i++ {
		t := snap.TermOf(rdf.ID(i))
		b += 48 + int64(len(t.Value)+len(t.Lang)+len(t.Datatype))
	}
	b += int64(snap.Len()) * 64 // refs + lazily built index postings
	b += int64(n) * 8           // toGlobal
	b += int64(toLocalLen) * 32 // toLocal map entries
	return b
}
