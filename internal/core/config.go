// Package core implements the PROV-IO Library (paper §4.2/§5): the
// configurable provenance tracker that the VOL connector, the POSIX syscall
// wrapper, and the user-facing PROV-IO APIs all feed, the provenance store
// that persists per-process sub-graphs as Turtle, and the merge step that
// unifies sub-graphs after a run.
package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/hpc-io/prov-io/internal/backend"
	"github.com/hpc-io/prov-io/internal/model"
)

// Format selects the on-disk serialization codec of a store's canonical
// files (DESIGN.md "Store codecs"). Reading never depends on it: every read
// path auto-detects each file's codec from its magic bytes, so directories
// mixing formats merge correctly whatever a store was opened with.
type Format uint8

// Supported store formats.
const (
	FormatTurtle Format = iota
	FormatNTriples
	// FormatBinary writes the ID-space binary segment format (.pbs):
	// dictionary-delta blocks plus varint-encoded triple ID columns, so
	// flushes render no term text and merges re-parse none.
	FormatBinary

	// FormatAuto resolves, at NewStore, to the format of the canonical
	// files already present in the store directory (Turtle when empty).
	// It is only meaningful as a NewStore/config input, never a stored
	// state: Store.Format() reports the resolved format.
	FormatAuto Format = 0xFF
)

// String returns the short format name (the -format flag vocabulary).
func (f Format) String() string {
	switch f {
	case FormatNTriples:
		return "nt"
	case FormatBinary:
		return "pbs"
	case FormatAuto:
		return "auto"
	default:
		return "ttl"
	}
}

// ParseFormat parses a format name as accepted by the CLI -format flags and
// the config file's format key: auto | nt | ttl | pbs, plus the historical
// long names ntriples | turtle and the alias binary.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "turtle", "ttl":
		return FormatTurtle, nil
	case "ntriples", "nt":
		return FormatNTriples, nil
	case "pbs", "binary":
		return FormatBinary, nil
	case "auto":
		return FormatAuto, nil
	default:
		return FormatTurtle, fmt.Errorf("core: unknown format %q (want auto|nt|ttl|pbs)", s)
	}
}

// Mode selects when the in-memory sub-graph is serialized (paper §4.2: "the
// serialization operation may be triggered either periodically or by the end
// of the workflow").
type Mode uint8

// Serialization modes.
const (
	// ModeAtEnd serializes once, on Close/Flush.
	ModeAtEnd Mode = iota
	// ModePeriodic serializes every FlushEvery records.
	ModePeriodic
)

// Pipeline selects how a periodic flush reaches the store (DESIGN.md "Flush
// pipeline"). The paper's prototype overlaps periodic serialization with
// computation; PipelineAsync is the faithful (and default) rendering.
type Pipeline uint8

// Flush pipelines.
const (
	// PipelineAsync snapshots the delta since the last flush and hands it
	// to a per-tracker background writer over a bounded queue; the writer
	// appends it to the store as an N-Triples delta segment. The hot path
	// pays only the handoff, plus backpressure when the queue is full.
	PipelineAsync Pipeline = iota
	// PipelineDelta writes the delta segment inline on the tracking thread.
	PipelineDelta
	// PipelineInline re-serializes the entire sub-graph inline on every
	// periodic flush (the original behavior; kept for comparison).
	PipelineInline
)

// String names the pipeline.
func (p Pipeline) String() string {
	switch p {
	case PipelineDelta:
		return "delta"
	case PipelineInline:
		return "inline"
	default:
		return "async"
	}
}

// Config selects which PROV-IO model sub-classes are tracked and how the
// provenance is persisted. This is the paper's User Engine switchboard:
// "allows users to enable/disable individual sub-classes defined in the
// PROV-IO model", enabling the completeness/overhead tradeoff.
type Config struct {
	// enabled holds per-sub-class switches keyed by model class name.
	enabled map[string]bool
	// Duration additionally tracks per-I/O-API elapsed time (the paper's
	// H5bench usage scenario 2).
	Duration bool

	// StoreDir is the directory provenance files are written to.
	StoreDir string
	// Store, when non-empty, selects the store backend and location as a
	// spec string (the OpenStore grammar): dir:/path, mem:, file:/path.pvs,
	// or mount:hot=SPEC,cold=SPEC. It supersedes StoreDir; StoreDir remains
	// the plain-directory shorthand.
	Store  string
	Format Format
	Mode   Mode
	// FlushEvery triggers a periodic flush after this many records when
	// Mode is ModePeriodic.
	FlushEvery int
	// Pipeline selects how periodic flushes reach the store.
	Pipeline Pipeline
	// FlushQueue bounds the async pipeline's writer queue (in delta
	// segments); <= 0 means the default of 4.
	FlushQueue int
}

// DefaultConfig enables every sub-class, Turtle format, at-end flushing.
func DefaultConfig() *Config {
	c := &Config{
		enabled:    make(map[string]bool),
		StoreDir:   "/provenance",
		Format:     FormatTurtle,
		Mode:       ModeAtEnd,
		FlushEvery: 4096,
		Pipeline:   PipelineAsync,
		FlushQueue: 4,
	}
	for _, cls := range model.AllClasses() {
		c.enabled[cls.Name] = true
	}
	return c
}

// Enable turns on tracking for the named sub-classes.
func (c *Config) Enable(names ...string) *Config {
	for _, n := range names {
		c.enabled[n] = true
	}
	return c
}

// Disable turns off tracking for the named sub-classes.
func (c *Config) Disable(names ...string) *Config {
	for _, n := range names {
		c.enabled[n] = false
	}
	return c
}

// DisableAll turns off every sub-class (callers then Enable selectively,
// like the paper's per-scenario configurations).
func (c *Config) DisableAll() *Config {
	for n := range c.enabled {
		c.enabled[n] = false
	}
	c.Duration = false
	return c
}

// Enabled reports whether a sub-class is tracked.
func (c *Config) Enabled(class model.Class) bool { return c.enabled[class.Name] }

// EnabledName reports whether the named sub-class is tracked.
func (c *Config) EnabledName(name string) bool { return c.enabled[name] }

// EnabledClasses returns the names of all enabled sub-classes in Table 2
// order.
func (c *Config) EnabledClasses() []string {
	var out []string
	for _, cls := range model.AllClasses() {
		if c.enabled[cls.Name] {
			out = append(out, cls.Name)
		}
	}
	return out
}

// StoreSpec resolves the config's store selection to a spec string: the
// store key verbatim when set, otherwise the StoreDir directory.
func (c *Config) StoreSpec() string {
	if c.Store != "" {
		return c.Store
	}
	return "dir:" + c.StoreDir
}

// OpenStore opens the store the config selects, in the config's format.
func (c *Config) OpenStore() (*Store, error) {
	return OpenStore(c.StoreSpec(), c.Format)
}

// Clone returns a deep copy.
func (c *Config) Clone() *Config {
	nc := *c
	nc.enabled = make(map[string]bool, len(c.enabled))
	for k, v := range c.enabled {
		nc.enabled[k] = v
	}
	return &nc
}

// LoadConfig parses the PROV-IO configuration file format: one "key = value"
// per line, '#' comments. Recognized keys:
//
//	store_dir   = /path/to/store
//	store       = dir:/path | mem: | file:/path.pvs | mount:hot=SPEC,cold=SPEC
//	format      = auto | nt | ttl | pbs   (also: turtle, ntriples, binary)
//	mode        = at_end | periodic
//	flush_every = 4096
//	pipeline    = async | delta | inline
//	flush_queue = 4
//	duration    = on | off
//	track       = Class[,Class...]     (exclusive allow-list)
//	enable      = Class[,Class...]
//	disable     = Class[,Class...]
//
// This is the "configuration file" transparency mechanism Table 4 credits
// PROV-IO with: users select provenance features without touching workflow
// source.
func LoadConfig(r io.Reader) (*Config, error) {
	cfg := DefaultConfig()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("core: config line %d: missing '=': %q", lineNo, line)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "store_dir":
			cfg.StoreDir = val
		case "store":
			if _, err := backend.ParseSpec(val); err != nil {
				return nil, fmt.Errorf("core: config line %d: key store: %v", lineNo, err)
			}
			cfg.Store = val
		case "format":
			f, err := ParseFormat(val)
			if err != nil {
				return nil, fmt.Errorf("core: config line %d: unknown format %q", lineNo, val)
			}
			cfg.Format = f
		case "mode":
			switch val {
			case "at_end":
				cfg.Mode = ModeAtEnd
			case "periodic":
				cfg.Mode = ModePeriodic
			default:
				return nil, fmt.Errorf("core: config line %d: unknown mode %q", lineNo, val)
			}
		case "flush_every":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("core: config line %d: bad flush_every %q", lineNo, val)
			}
			cfg.FlushEvery = n
		case "pipeline":
			switch val {
			case "async":
				cfg.Pipeline = PipelineAsync
			case "delta":
				cfg.Pipeline = PipelineDelta
			case "inline":
				cfg.Pipeline = PipelineInline
			default:
				return nil, fmt.Errorf("core: config line %d: unknown pipeline %q", lineNo, val)
			}
		case "flush_queue":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("core: config line %d: bad flush_queue %q", lineNo, val)
			}
			cfg.FlushQueue = n
		case "duration":
			switch val {
			case "on", "true":
				cfg.Duration = true
			case "off", "false":
				cfg.Duration = false
			default:
				return nil, fmt.Errorf("core: config line %d: bad duration %q", lineNo, val)
			}
		case "track", "enable", "disable":
			names := strings.Split(val, ",")
			if key == "track" {
				// track resets the class allow-list; the standalone
				// duration switch is preserved unless the list names it.
				dur := cfg.Duration
				cfg.DisableAll()
				cfg.Duration = dur
			}
			for _, n := range names {
				n = strings.TrimSpace(n)
				if n == "" {
					continue
				}
				if n == "Duration" {
					cfg.Duration = key != "disable"
					continue
				}
				if _, ok := model.ClassByName(n); !ok {
					return nil, fmt.Errorf("core: config line %d: unknown class %q", lineNo, n)
				}
				if key == "disable" {
					cfg.Disable(n)
				} else {
					cfg.Enable(n)
				}
			}
		default:
			return nil, fmt.Errorf("core: config line %d: unknown key %q", lineNo, key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// ScenarioConfig builds the configurations used throughout the paper's
// evaluation (Table 3). It starts from everything-off and enables exactly
// the listed classes.
func ScenarioConfig(duration bool, classes ...string) *Config {
	cfg := DefaultConfig().DisableAll()
	cfg.Enable(classes...)
	cfg.Duration = duration
	return cfg
}
