package core

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/simclock"
)

// Tracker is the PROV-IO Library instance owned by one process: it builds
// the in-memory provenance sub-graph, applies the Config's sub-class
// switches, charges modeled tracking cost to the process's virtual clock,
// and flushes to the Provenance Store.
//
// A Tracker is safe for concurrent use by the threads (simulated MPI ranks /
// OpenMP workers) of its process.
type Tracker struct {
	cfg   *Config
	store *Store
	pid   int

	mu      sync.Mutex
	graph   *rdf.Graph
	records int // records since last flush
	closed  bool

	// seqs holds the per-API invocation counters off the tracker mutex:
	// apiName -> *atomic.Int64. TrackIO is the hottest tracking call, and
	// with the graph's own ingest path batched and striped, a shared map
	// under mu would be the one remaining cross-thread serialization point.
	seqs sync.Map

	// render memoizes the N-Triples rendering of this tracker's terms by
	// dictionary ID, so across all delta flushes each distinct term is
	// rendered once (the read path's memoization trick applied to the write
	// side).
	render *rdf.TermRenderer

	// Flush pipeline state (all guarded by mu).
	cursor   int   // graph insertion-log position already handed to the store
	segSeq   int   // next delta segment number
	deferred error // first error from a periodic/async flush, surfaced on Flush/Close/Drain

	// Async writer. flushCh is nil until the first async flush and again
	// after Close stops the writer; pendingN counts enqueued-but-unwritten
	// segments (incremented under mu, so a drain observes every prior
	// enqueue), and drained is signalled when it returns to zero.
	flushCh  chan flushJob
	pendingN int
	drained  *sync.Cond

	// Modeled writer timeline for deterministic simclock accounting: the
	// virtual completion times of queued segments. Backpressure is charged
	// from this model, not from real goroutine scheduling, so experiment
	// results stay reproducible. wHead indexes the oldest live entry —
	// retiring advances it instead of re-slicing, so the backing array is
	// reused rather than leaked entry by entry, and the slice is reset
	// whenever it fully drains.
	wQueue []time.Duration
	wHead  int

	clock *simclock.Clock
	cost  simclock.CostModel
	// charge gates virtual-time accounting.
	charge bool

	// stats
	nRecords int64
	nTriples int64
}

// flushJob is one delta segment handed to the background writer: the
// insertion-log refs of the delta (12 bytes per triple — the terms are
// rehydrated by the tracker's memoized renderer at write time, not
// materialized at snapshot time).
type flushJob struct {
	seg  int
	refs []rdf.TripleID
}

// NewTracker creates a tracker for process pid writing to store. A nil
// store is allowed (in-memory only, flush becomes a no-op).
func NewTracker(cfg *Config, store *Store, pid int) *Tracker {
	t := &Tracker{
		cfg:   cfg,
		store: store,
		pid:   pid,
		graph: rdf.NewGraph(),
	}
	t.render = rdf.NewTermRenderer(t.graph)
	t.drained = sync.NewCond(&t.mu)
	return t
}

// WithClock attaches a virtual clock so tracking operations charge modeled
// cost, and returns the tracker for chaining. The one-time provenance
// library initialization cost (store setup, Redland-analog startup) is
// charged immediately.
func (t *Tracker) WithClock(clock *simclock.Clock, cost simclock.CostModel) *Tracker {
	t.clock = clock
	t.cost = cost
	t.charge = clock != nil
	if t.charge {
		clock.Advance(cost.TrackerInit)
	}
	return t
}

// Config returns the tracker's configuration.
func (t *Tracker) Config() *Config { return t.cfg }

// PID returns the tracked process ID.
func (t *Tracker) PID() int { return t.pid }

// Graph returns the live in-memory sub-graph. Callers must treat it as
// read-only.
func (t *Tracker) Graph() *rdf.Graph { return t.graph }

// Stats returns the number of records and triples tracked so far.
func (t *Tracker) Stats() (records, triples int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nRecords, t.nTriples
}

// recordScratch recycles the per-record triple slice across tracking calls.
// A record's triples are copied into the graph's dictionary and indexes by
// AddBatch, so once addRecord returns nothing references the slice and it
// can be handed to the next record.
var scratchPool = sync.Pool{New: func() any { return &recordScratch{} }}

type recordScratch struct{ ts []rdf.Triple }

// addRecord inserts a record's triples, charges its cost, and handles
// periodic flushing. Caller passes the triples already built.
func (t *Tracker) addRecord(triples []rdf.Triple) {
	// One lock acquisition in the graph for the whole record; interning
	// happens against the striped dictionary before the graph lock is taken.
	t.graph.AddBatch(triples)
	graphSize := t.graph.Len()
	t.mu.Lock()
	t.nRecords++
	t.nTriples += int64(len(triples))
	t.records++
	needFlush := t.cfg.Mode == ModePeriodic && t.records >= t.cfg.FlushEvery && t.store != nil
	var job flushJob
	var ch chan flushJob
	if needFlush {
		t.records = 0
		switch t.cfg.Pipeline {
		case PipelineInline:
			// Handled below, outside the lock (full re-serialization).
		default:
			// Snapshot the delta since the last flush under mu: RefsSince
			// captures the refs and the end-of-log position under one graph
			// lock, and the cursor advances atomically with the extraction
			// under mu, so concurrent periodic flushes produce disjoint
			// segments and no record is lost or duplicated.
			job.refs, t.cursor = t.graph.RefsSince(t.cursor)
			if len(job.refs) == 0 {
				needFlush = false
				break
			}
			job.seg = t.segSeq
			t.segSeq++
			if t.cfg.Pipeline == PipelineAsync && !t.closed {
				ch = t.startWriterLocked()
				t.pendingN++
				t.chargeAsyncFlushLocked(len(job.refs))
			}
		}
	}
	t.mu.Unlock()

	if t.charge {
		t.clock.Advance(t.cost.TrackCostAt(len(triples), graphSize))
	}
	if !needFlush {
		return
	}
	switch {
	case ch != nil:
		// Real backpressure: block on the bounded queue (virtual-time
		// backpressure was already charged from the modeled writer above).
		ch <- job
	case t.cfg.Pipeline == PipelineInline:
		// The original behavior: re-serialize the whole sub-graph inline,
		// charging the overlap-visible fraction of the cost.
		if t.charge {
			t.clock.Advance(t.cost.SerializeCost(t.graph.Len()) / 8)
		}
		t.recordFlushErr(t.store.WriteSubgraph(t.pid, t.graph))
	default:
		// Inline delta (PipelineDelta, or async after Close stopped the
		// writer): the write is on the critical path but only O(delta).
		if t.charge {
			t.clock.Advance(t.cost.SerializeCost(len(job.refs)))
		}
		t.recordFlushErr(t.store.WriteDeltaSegmentRefs(t.pid, job.seg, job.refs, t.render))
	}
}

// startWriterLocked lazily starts the background flush writer and returns
// its queue. Caller holds t.mu.
func (t *Tracker) startWriterLocked() chan flushJob {
	if t.flushCh == nil {
		qcap := t.cfg.FlushQueue
		if qcap <= 0 {
			qcap = 4
		}
		t.flushCh = make(chan flushJob, qcap)
		go t.writerLoop(t.flushCh)
	}
	return t.flushCh
}

// writerLoop is the per-tracker background writer: it drains delta segments
// off the bounded queue and appends them to the store. Errors are recorded
// and surface on the next Flush/Close/Drain instead of being dropped.
func (t *Tracker) writerLoop(ch chan flushJob) {
	for job := range ch {
		t.recordFlushErr(t.store.WriteDeltaSegmentRefs(t.pid, job.seg, job.refs, t.render))
		t.mu.Lock()
		t.pendingN--
		if t.pendingN == 0 {
			t.drained.Broadcast()
		}
		t.mu.Unlock()
	}
}

// waitDrained blocks until every enqueued delta segment has been written.
func (t *Tracker) waitDrained() {
	t.mu.Lock()
	for t.pendingN > 0 {
		t.drained.Wait()
	}
	t.mu.Unlock()
}

// chargeAsyncFlushLocked charges the virtual-time cost of handing a delta
// to the async writer: the enqueue itself, plus a stall when the modeled
// bounded queue is full (backpressure — the writer has not caught up).
// The model is driven entirely by the virtual clock, so results are
// deterministic regardless of real goroutine scheduling. Caller holds t.mu.
func (t *Tracker) chargeAsyncFlushLocked(deltaTriples int) {
	if !t.charge {
		return
	}
	t.clock.Advance(t.cost.FlushEnqueue)
	now := t.clock.Now()
	// Retire modeled segments the writer has already finished by advancing
	// the head index. Re-slicing (wQueue = wQueue[1:]) would keep every
	// retired entry reachable through the backing array for the tracker's
	// lifetime; the head index lets the compaction below reuse the array.
	for t.wHead < len(t.wQueue) && t.wQueue[t.wHead] <= now {
		t.wHead++
	}
	qcap := t.cfg.FlushQueue
	if qcap <= 0 {
		qcap = 4
	}
	if len(t.wQueue)-t.wHead >= qcap {
		// Queue full: stall until the oldest modeled segment completes.
		t.clock.AdvanceTo(t.wQueue[t.wHead])
		now = t.wQueue[t.wHead]
		t.wHead++
	}
	start := now
	if n := len(t.wQueue); n > t.wHead && t.wQueue[n-1] > start {
		start = t.wQueue[n-1] // writer busy with earlier segments
	}
	// Compact: the live window is at most qcap entries, so slide it back to
	// the array start whenever the queue drains or the dead prefix grows,
	// keeping the backing array bounded by O(qcap) instead of O(flushes).
	if t.wHead == len(t.wQueue) {
		t.wQueue = t.wQueue[:0]
		t.wHead = 0
	} else if t.wHead >= 2*qcap {
		n := copy(t.wQueue, t.wQueue[t.wHead:])
		t.wQueue = t.wQueue[:n]
		t.wHead = 0
	}
	t.wQueue = append(t.wQueue, start+t.cost.SerializeCost(deltaTriples))
}

// recordFlushErr stores the first flush error for the next Flush/Close/Drain.
func (t *Tracker) recordFlushErr(err error) {
	if err == nil {
		return
	}
	t.mu.Lock()
	if t.deferred == nil {
		t.deferred = fmt.Errorf("core: deferred periodic flush error: %w", err)
	}
	t.mu.Unlock()
}

// takeDeferred returns primary if non-nil, else any deferred flush error
// (clearing it — the in-memory graph is intact, so a later Flush retries).
func (t *Tracker) takeDeferred(primary error) error {
	t.mu.Lock()
	def := t.deferred
	t.deferred = nil
	t.mu.Unlock()
	if primary != nil {
		return primary
	}
	return def
}

// record is any provenance record that can append its triples to a reusable
// slice, returning the record node. Generic (not an interface parameter) so
// the record value is not boxed on the hot path.
type record interface {
	AppendTriples([]rdf.Triple) ([]rdf.Triple, rdf.Term)
}

// track builds rec's triples into a pooled scratch slice, inserts them as
// one batch, recycles the scratch, and returns the record node.
func track[R record](t *Tracker, rec R) rdf.Term {
	sc := scratchPool.Get().(*recordScratch)
	ts, node := rec.AppendTriples(sc.ts[:0])
	t.addRecord(ts)
	sc.ts = ts
	scratchPool.Put(sc)
	return node
}

// nextSeq returns the next per-API invocation sequence number (1-based),
// using a lock-free counter per API name.
func (t *Tracker) nextSeq(apiName string) int {
	v, ok := t.seqs.Load(apiName)
	if !ok {
		v, _ = t.seqs.LoadOrStore(apiName, new(atomic.Int64))
	}
	return int(v.(*atomic.Int64).Add(1))
}

// RegisterUser records a User agent and returns its node.
func (t *Tracker) RegisterUser(name string) rdf.Term {
	if !t.cfg.Enabled(model.User) {
		return rdf.Term{}
	}
	return track(t, model.AgentRecord{Class: model.User, ID: name, Rank: -1})
}

// RegisterProgram records a Program agent (optionally on behalf of a user)
// and returns its node.
func (t *Tracker) RegisterProgram(name string, user rdf.Term) rdf.Term {
	if !t.cfg.Enabled(model.Program) {
		return rdf.Term{}
	}
	rec := model.AgentRecord{Class: model.Program, ID: name, Rank: -1}
	if !user.IsZero() {
		rec.OnBehalfOf = user.Value
	}
	return track(t, rec)
}

// RegisterThread records a Thread agent with its MPI rank (optionally on
// behalf of a program) and returns its node.
func (t *Tracker) RegisterThread(rank int, program rdf.Term) rdf.Term {
	if !t.cfg.Enabled(model.Thread) {
		return rdf.Term{}
	}
	rec := model.AgentRecord{
		Class: model.Thread,
		ID:    "MPI_rank_" + strconv.Itoa(rank),
		Rank:  rank,
	}
	if !program.IsZero() {
		rec.OnBehalfOf = program.Value
	}
	return track(t, rec)
}

// TrackDataObject records an Entity node of the given Data Object sub-class
// and returns its node. container and attributedTo may be zero.
func (t *Tracker) TrackDataObject(class model.Class, id, name string, container, attributedTo rdf.Term) rdf.Term {
	if !t.cfg.Enabled(class) {
		return rdf.Term{}
	}
	rec := model.DataObjectRecord{Class: class, ID: id, Name: name}
	if !container.IsZero() {
		rec.Container = container.Value
	}
	if !attributedTo.IsZero() {
		rec.AttributedTo = attributedTo.Value
	}
	return track(t, rec)
}

// TrackIO records one I/O API invocation of the given Activity sub-class.
// The object/agent may be zero terms when their classes are disabled.
// Returns the activity node (zero when the class is disabled).
func (t *Tracker) TrackIO(class model.Class, apiName string, object, agent rdf.Term, started, elapsed time.Duration) rdf.Term {
	if !t.cfg.Enabled(class) {
		return rdf.Term{}
	}
	rec := model.IOActivityRecord{
		Class: class, API: apiName, PID: t.pid, Seq: t.nextSeq(apiName),
		Object: object, Agent: agent,
		Started: started, Elapsed: elapsed,
		TrackDuration: t.cfg.Duration,
	}
	return track(t, rec)
}

// TrackDerivation records prov:wasDerivedFrom between two entities —
// the backward-lineage edge of the DASSA use case.
func (t *Tracker) TrackDerivation(product, source rdf.Term) {
	if product.IsZero() || source.IsZero() {
		return
	}
	sc := scratchPool.Get().(*recordScratch)
	ts := append(sc.ts[:0], rdf.Triple{S: product, P: model.WasDerivedFrom.IRI(), O: source})
	t.addRecord(ts)
	sc.ts = ts
	scratchPool.Put(sc)
}

// TrackType records the workflow Type extensible record.
func (t *Tracker) TrackType(owner rdf.Term, workflowType string) rdf.Term {
	if !t.cfg.Enabled(model.Type) {
		return rdf.Term{}
	}
	rec := model.ExtensibleRecord{
		Class: model.Type, Owner: owner.Value, Key: "type",
		Value: rdf.Literal(workflowType), Version: -1,
	}
	return track(t, rec)
}

// TrackConfiguration records one Configuration key/value at a version.
func (t *Tracker) TrackConfiguration(owner rdf.Term, key string, value rdf.Term, version int) rdf.Term {
	if !t.cfg.Enabled(model.Configuration) {
		return rdf.Term{}
	}
	rec := model.ExtensibleRecord{
		Class: model.Configuration, Owner: owner.Value, Key: key,
		Value: value, Version: version,
	}
	return track(t, rec)
}

// TrackConfigurationAccuracy records a Configuration version annotated with
// the training accuracy it produced (the Top Reco mapping need).
func (t *Tracker) TrackConfigurationAccuracy(owner rdf.Term, key string, value rdf.Term, version int, accuracy float64) rdf.Term {
	if !t.cfg.Enabled(model.Configuration) {
		return rdf.Term{}
	}
	rec := model.ExtensibleRecord{
		Class: model.Configuration, Owner: owner.Value, Key: key,
		Value: value, Version: version,
		Accuracy: accuracy, HasAccuracy: true,
	}
	return track(t, rec)
}

// TrackMetric records one Metrics key/value (e.g. training accuracy per
// epoch) at a version.
func (t *Tracker) TrackMetric(owner rdf.Term, key string, value rdf.Term, version int) rdf.Term {
	if !t.cfg.Enabled(model.Metrics) {
		return rdf.Term{}
	}
	rec := model.ExtensibleRecord{
		Class: model.Metrics, Owner: owner.Value, Key: key,
		Value: value, Version: version,
	}
	return track(t, rec)
}

// Drain blocks until the background flush writer has persisted every delta
// segment enqueued so far, then returns (and clears) any deferred periodic
// flush error. Unlike Flush it does not rewrite the canonical sub-graph
// file — it is the cheap synchronization point of the async pipeline.
func (t *Tracker) Drain() error {
	t.waitDrained()
	return t.takeDeferred(nil)
}

// Flush serializes the current sub-graph to the store synchronously: it
// drains the async writer, rewrites the canonical per-process file from the
// full in-memory graph, and compacts away any delta segments. It returns
// the first error of this flush or, failing that, any deferred error from
// earlier periodic flushes.
func (t *Tracker) Flush() error {
	if t.store == nil {
		return t.takeDeferred(nil)
	}
	t.waitDrained()
	// Advance the cursor before snapshotting: triples logged before the
	// cursor are guaranteed to be in the canonical write below; triples
	// racing in afterwards may be included too, and will simply reappear in
	// a later segment (the union dedupes).
	t.mu.Lock()
	prevCursor := t.cursor
	t.cursor = t.graph.LogLen()
	hadSegments := t.segSeq > 0
	t.mu.Unlock()
	// The graph is internally synchronized; serialization snapshots it via
	// SortedTriples without cloning (cloning would double peak memory when
	// thousands of rank trackers flush together).
	if t.charge {
		t.clock.Advance(t.cost.SerializeCost(t.graph.Len()))
	}
	err := t.store.WriteSubgraph(t.pid, t.graph)
	if err == nil && hadSegments {
		err = t.store.RemoveSegments(t.pid)
	}
	if err != nil {
		// Nothing was persisted for [prevCursor, cursor): roll back so a
		// later periodic flush re-captures those triples.
		t.mu.Lock()
		if prevCursor < t.cursor {
			t.cursor = prevCursor
		}
		t.mu.Unlock()
	}
	return t.takeDeferred(err)
}

// Close flushes, compacts the process's segments into its canonical file,
// stops the background writer, and marks the tracker closed. Further
// tracking calls still work (the paper's library tolerates trailing
// records; periodic flushes fall back to inline delta writes) but Close
// should be the last call.
func (t *Tracker) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.Flush()
	// Stop the writer. New periodic flushes observe closed under mu and
	// write inline, and Flush drained the queue, so closing is race-free:
	// every pending send completed before pending.Wait returned.
	t.mu.Lock()
	ch := t.flushCh
	t.flushCh = nil
	t.mu.Unlock()
	if ch != nil {
		close(ch)
	}
	return err
}
