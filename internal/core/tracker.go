package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/simclock"
)

// Tracker is the PROV-IO Library instance owned by one process: it builds
// the in-memory provenance sub-graph, applies the Config's sub-class
// switches, charges modeled tracking cost to the process's virtual clock,
// and flushes to the Provenance Store.
//
// A Tracker is safe for concurrent use by the threads (simulated MPI ranks /
// OpenMP workers) of its process.
type Tracker struct {
	cfg   *Config
	store *Store
	pid   int

	mu      sync.Mutex
	graph   *rdf.Graph
	seq     map[string]int // per-API invocation counters
	records int            // records since last flush
	closed  bool

	clock *simclock.Clock
	cost  simclock.CostModel
	// charge gates virtual-time accounting.
	charge bool

	// stats
	nRecords int64
	nTriples int64
}

// NewTracker creates a tracker for process pid writing to store. A nil
// store is allowed (in-memory only, flush becomes a no-op).
func NewTracker(cfg *Config, store *Store, pid int) *Tracker {
	return &Tracker{
		cfg:   cfg,
		store: store,
		pid:   pid,
		graph: rdf.NewGraph(),
		seq:   make(map[string]int),
	}
}

// WithClock attaches a virtual clock so tracking operations charge modeled
// cost, and returns the tracker for chaining. The one-time provenance
// library initialization cost (store setup, Redland-analog startup) is
// charged immediately.
func (t *Tracker) WithClock(clock *simclock.Clock, cost simclock.CostModel) *Tracker {
	t.clock = clock
	t.cost = cost
	t.charge = clock != nil
	if t.charge {
		clock.Advance(cost.TrackerInit)
	}
	return t
}

// Config returns the tracker's configuration.
func (t *Tracker) Config() *Config { return t.cfg }

// PID returns the tracked process ID.
func (t *Tracker) PID() int { return t.pid }

// Graph returns the live in-memory sub-graph. Callers must treat it as
// read-only.
func (t *Tracker) Graph() *rdf.Graph { return t.graph }

// Stats returns the number of records and triples tracked so far.
func (t *Tracker) Stats() (records, triples int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nRecords, t.nTriples
}

// addRecord inserts a record's triples, charges its cost, and handles
// periodic flushing. Caller passes the triples already built.
func (t *Tracker) addRecord(triples []rdf.Triple) {
	t.mu.Lock()
	for _, tr := range triples {
		t.graph.Add(tr)
	}
	graphSize := t.graph.Len()
	t.nRecords++
	t.nTriples += int64(len(triples))
	t.records++
	needFlush := t.cfg.Mode == ModePeriodic && t.records >= t.cfg.FlushEvery
	if needFlush {
		t.records = 0
	}
	t.mu.Unlock()

	if t.charge {
		t.clock.Advance(t.cost.TrackCostAt(len(triples), graphSize))
	}
	if needFlush {
		// Periodic serialization is asynchronous in the paper's prototype;
		// we run it inline but charge only the (small) async handoff cost,
		// while the serialization itself is charged via SerializeCost at
		// flush (representing the overlap-visible fraction).
		t.flush(true)
	}
}

// RegisterUser records a User agent and returns its node.
func (t *Tracker) RegisterUser(name string) rdf.Term {
	if !t.cfg.Enabled(model.User) {
		return rdf.Term{}
	}
	rec := model.AgentRecord{Class: model.User, ID: name, Rank: -1}
	t.addRecord(rec.Triples())
	return rec.IRI()
}

// RegisterProgram records a Program agent (optionally on behalf of a user)
// and returns its node.
func (t *Tracker) RegisterProgram(name string, user rdf.Term) rdf.Term {
	if !t.cfg.Enabled(model.Program) {
		return rdf.Term{}
	}
	rec := model.AgentRecord{Class: model.Program, ID: name, Rank: -1}
	if !user.IsZero() {
		rec.OnBehalfOf = user.Value
	}
	t.addRecord(rec.Triples())
	return rec.IRI()
}

// RegisterThread records a Thread agent with its MPI rank (optionally on
// behalf of a program) and returns its node.
func (t *Tracker) RegisterThread(rank int, program rdf.Term) rdf.Term {
	if !t.cfg.Enabled(model.Thread) {
		return rdf.Term{}
	}
	rec := model.AgentRecord{
		Class: model.Thread,
		ID:    fmt.Sprintf("MPI_rank_%d", rank),
		Rank:  rank,
	}
	if !program.IsZero() {
		rec.OnBehalfOf = program.Value
	}
	t.addRecord(rec.Triples())
	return rec.IRI()
}

// TrackDataObject records an Entity node of the given Data Object sub-class
// and returns its node. container and attributedTo may be zero.
func (t *Tracker) TrackDataObject(class model.Class, id, name string, container, attributedTo rdf.Term) rdf.Term {
	if !t.cfg.Enabled(class) {
		return rdf.Term{}
	}
	rec := model.DataObjectRecord{Class: class, ID: id, Name: name}
	if !container.IsZero() {
		rec.Container = container.Value
	}
	if !attributedTo.IsZero() {
		rec.AttributedTo = attributedTo.Value
	}
	t.addRecord(rec.Triples())
	return rec.IRI()
}

// TrackIO records one I/O API invocation of the given Activity sub-class.
// The object/agent may be zero terms when their classes are disabled.
// Returns the activity node (zero when the class is disabled).
func (t *Tracker) TrackIO(class model.Class, apiName string, object, agent rdf.Term, started, elapsed time.Duration) rdf.Term {
	if !t.cfg.Enabled(class) {
		return rdf.Term{}
	}
	t.mu.Lock()
	t.seq[apiName]++
	seq := t.seq[apiName]
	t.mu.Unlock()
	rec := model.IOActivityRecord{
		Class: class, API: apiName, PID: t.pid, Seq: seq,
		Object: object, Agent: agent,
		Started: started, Elapsed: elapsed,
		TrackDuration: t.cfg.Duration,
	}
	t.addRecord(rec.Triples())
	return rec.IRI()
}

// TrackDerivation records prov:wasDerivedFrom between two entities —
// the backward-lineage edge of the DASSA use case.
func (t *Tracker) TrackDerivation(product, source rdf.Term) {
	if product.IsZero() || source.IsZero() {
		return
	}
	t.addRecord([]rdf.Triple{{S: product, P: model.WasDerivedFrom.IRI(), O: source}})
}

// TrackType records the workflow Type extensible record.
func (t *Tracker) TrackType(owner rdf.Term, workflowType string) rdf.Term {
	if !t.cfg.Enabled(model.Type) {
		return rdf.Term{}
	}
	rec := model.ExtensibleRecord{
		Class: model.Type, Owner: owner.Value, Key: "type",
		Value: rdf.Literal(workflowType), Version: -1,
	}
	t.addRecord(rec.Triples())
	return rec.IRI()
}

// TrackConfiguration records one Configuration key/value at a version.
func (t *Tracker) TrackConfiguration(owner rdf.Term, key string, value rdf.Term, version int) rdf.Term {
	if !t.cfg.Enabled(model.Configuration) {
		return rdf.Term{}
	}
	rec := model.ExtensibleRecord{
		Class: model.Configuration, Owner: owner.Value, Key: key,
		Value: value, Version: version,
	}
	t.addRecord(rec.Triples())
	return rec.IRI()
}

// TrackConfigurationAccuracy records a Configuration version annotated with
// the training accuracy it produced (the Top Reco mapping need).
func (t *Tracker) TrackConfigurationAccuracy(owner rdf.Term, key string, value rdf.Term, version int, accuracy float64) rdf.Term {
	if !t.cfg.Enabled(model.Configuration) {
		return rdf.Term{}
	}
	rec := model.ExtensibleRecord{
		Class: model.Configuration, Owner: owner.Value, Key: key,
		Value: value, Version: version,
		Accuracy: accuracy, HasAccuracy: true,
	}
	t.addRecord(rec.Triples())
	return rec.IRI()
}

// TrackMetric records one Metrics key/value (e.g. training accuracy per
// epoch) at a version.
func (t *Tracker) TrackMetric(owner rdf.Term, key string, value rdf.Term, version int) rdf.Term {
	if !t.cfg.Enabled(model.Metrics) {
		return rdf.Term{}
	}
	rec := model.ExtensibleRecord{
		Class: model.Metrics, Owner: owner.Value, Key: key,
		Value: value, Version: version,
	}
	t.addRecord(rec.Triples())
	return rec.IRI()
}

// Flush serializes the current sub-graph to the store synchronously.
func (t *Tracker) Flush() error {
	return t.flush(false)
}

func (t *Tracker) flush(periodic bool) error {
	if t.store == nil {
		return nil
	}
	// The graph is internally synchronized; serialization snapshots it via
	// SortedTriples without cloning (cloning would double peak memory when
	// thousands of rank trackers flush together).
	if t.charge {
		cost := t.cost.SerializeCost(t.graph.Len())
		if periodic {
			// The paper overlaps periodic serialization with computation;
			// only a fraction of the cost lands on the critical path.
			cost /= 8
		}
		t.clock.Advance(cost)
	}
	return t.store.WriteSubgraph(t.pid, t.graph)
}

// Close flushes and marks the tracker closed. Further tracking calls still
// work (the paper's library tolerates trailing records) but Close should be
// the last call.
func (t *Tracker) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	return t.Flush()
}
