package core

import (
	"strings"
	"testing"
)

// TestCrashSweep enumerates every mutating-operation boundary of the fixed
// workload — torn-write variants included — for each store format, and
// requires every crash point to either recover cleanly with all invariants
// intact or be verifiably rejected. This is the acceptance harness for the
// integrity layer; it runs under -race in CI.
func TestCrashSweep(t *testing.T) {
	for _, format := range []Format{FormatTurtle, FormatNTriples, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			rep, err := RunCrashSweep(CrashSweepConfig{Seed: 1, Format: format, Torn: true})
			if err != nil {
				t.Fatal(err)
			}
			t.Log(rep)
			for _, v := range rep.Violations {
				t.Error(v)
			}
			if rep.Points == 0 || rep.Recovered == 0 {
				t.Fatalf("sweep exercised %d points, recovered %d", rep.Points, rep.Recovered)
			}
			if rep.Recovered+rep.Rejected != rep.Points-len(rep.Violations) {
				t.Fatalf("accounting: %s", rep)
			}
		})
	}
}

// TestCrashSweepBinaryUntornNeverRejects pins the all-or-nothing guarantee:
// with atomic writes (what OSBackend's temp-file+rename provides), a binary
// store recovers from EVERY crash point — rejection is only ever caused by
// torn writes, which atomic backends rule out.
func TestCrashSweepBinaryUntornNeverRejects(t *testing.T) {
	rep, err := RunCrashSweep(CrashSweepConfig{Seed: 1, Format: FormatBinary, Torn: false})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	for _, v := range rep.Violations {
		t.Error(v)
	}
	if rep.Rejected != 0 {
		t.Errorf("binary store rejected %d untorn crash points; atomic writes must always recover", rep.Rejected)
	}
}

// FuzzCrashPoint lets the fuzzer pick crash points, torn sizes, and workload
// shapes the fixed sweep does not enumerate.
func FuzzCrashPoint(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(10), uint8(2), uint8(0))
	f.Add(int64(7), uint8(14), uint8(5), uint8(1), uint8(40))
	f.Fuzz(func(t *testing.T, seed int64, point, records, flushEvery, torn uint8) {
		cfg := CrashSweepConfig{
			Seed:       seed,
			Format:     []Format{FormatTurtle, FormatNTriples, FormatBinary}[int(seed%3+3)%3],
			Records:    int(records%12) + 1,
			FlushEvery: int(flushEvery%4) + 1,
		}
		if _, violation := runCrashPoint(cfg, int(point), int(torn)); violation != "" {
			// A crash point beyond the schedule never fires; that is the one
			// acceptable non-outcome.
			if !strings.Contains(violation, "crash never fired") {
				t.Fatal(violation)
			}
		}
	})
}
