package core

import (
	"errors"
	"testing"

	"github.com/hpc-io/prov-io/internal/faultfs"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// The fault injector lives in internal/faultfs; these tests exercise the
// error paths a Lustre outage would hit mid-run through it. faultfs.FS
// satisfies core.Backend structurally — no adapter.
func newFaultBackend(view *vfs.View) *faultfs.FS {
	return faultfs.New(VFSBackend{View: view}, 1)
}

func TestFlushPropagatesWriteFailure(t *testing.T) {
	fb := newFaultBackend(vfs.NewStore().NewView())
	store, err := NewStore(fb, "/prov", FormatTurtle)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(DefaultConfig(), store, 0)
	tr.RegisterUser("u")
	fb.FailWrites(true)
	if err := tr.Flush(); !errors.Is(err, faultfs.ErrInjected) {
		t.Errorf("Flush err = %v, want injected", err)
	}
	if err := tr.Close(); !errors.Is(err, faultfs.ErrInjected) {
		t.Errorf("Close err = %v, want injected", err)
	}
	// Recovery: once the backend heals, a retry succeeds and the graph is
	// intact (nothing was lost from memory).
	fb.FailWrites(false)
	if err := tr.Flush(); err != nil {
		t.Errorf("Flush after recovery: %v", err)
	}
	n, err := store.TotalBytes()
	if err != nil || n == 0 {
		t.Errorf("provenance not persisted after recovery: %d, %v", n, err)
	}
}

func TestMergePropagatesReadFailure(t *testing.T) {
	fb := newFaultBackend(vfs.NewStore().NewView())
	store, _ := NewStore(fb, "/prov", FormatTurtle)
	tr := NewTracker(DefaultConfig(), store, 0)
	tr.RegisterUser("u")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	fb.FailReads(true)
	if _, err := store.Merge(); !errors.Is(err, faultfs.ErrInjected) {
		t.Errorf("Merge err = %v, want injected", err)
	}
	fb.FailReads(false)
	fb.FailList(true)
	if _, err := store.Merge(); !errors.Is(err, faultfs.ErrInjected) {
		t.Errorf("Merge with list failure err = %v", err)
	}
	if _, err := store.TotalBytes(); !errors.Is(err, faultfs.ErrInjected) {
		t.Errorf("TotalBytes with list failure err = %v", err)
	}
}

func TestMergeRejectsCorruptSubgraph(t *testing.T) {
	view := vfs.NewStore().NewView()
	store, _ := NewStore(VFSBackend{View: view}, "/prov", FormatTurtle)
	tr := NewTracker(DefaultConfig(), store, 0)
	tr.RegisterUser("u")
	tr.Close()
	// Corrupt the flushed file.
	view.WriteFile("/prov/prov_p000000.ttl", []byte("@prefix broken <oops"))
	if _, err := store.Merge(); err == nil {
		t.Error("corrupt sub-graph merged without error")
	}
}

func TestPeriodicFlushSurvivesTransientFailure(t *testing.T) {
	// A failing periodic flush must not corrupt the in-memory graph; the
	// final Close (after recovery) persists everything.
	fb := newFaultBackend(vfs.NewStore().NewView())
	store, _ := NewStore(fb, "/prov", FormatTurtle)
	cfg := DefaultConfig()
	cfg.Mode = ModePeriodic
	cfg.FlushEvery = 5
	tr := NewTracker(cfg, store, 0)
	fb.FailWrites(true)
	for i := 0; i < 20; i++ {
		tr.TrackIO(model.Write, "write", rdf.Term{}, rdf.Term{}, 0, 0)
	}
	// The async writer's failures are not dropped: Drain surfaces the first
	// one (and clears it) once every enqueued segment has been attempted.
	if err := tr.Drain(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Drain must surface the deferred periodic flush error, got %v", err)
	}
	fb.FailWrites(false)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	acts := g.Find(nil, rdf.IRI(rdf.RDFType).Ptr(), model.Write.IRI().Ptr())
	if len(acts) != 20 {
		t.Errorf("activities persisted = %d, want 20", len(acts))
	}
}

func TestPartialFlushThenFinalClose(t *testing.T) {
	fb := newFaultBackend(vfs.NewStore().NewView())
	// A text-store flush is two writes — canonical file, then its .sum
	// integrity sidecar. Let the first flush's pair through, fail later ones.
	fb.FailWritesAfter(2)
	store, _ := NewStore(fb, "/prov", FormatTurtle)
	tr := NewTracker(DefaultConfig(), store, 0)
	tr.RegisterUser("u")
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	tr.RegisterProgram("p", rdf.Term{})
	if err := tr.Flush(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("second flush err = %v", err)
	}
	// The store still holds the first flush's consistent snapshot.
	g, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	user := rdf.IRI(model.NodeIRI(model.User, "u"))
	if len(g.Find(user.Ptr(), nil, nil)) == 0 {
		t.Error("first flush's snapshot lost")
	}
	// And that snapshot verifies clean: the failed rewrite left no partial
	// state behind (the canonical write itself was rejected atomically).
	rep, err := store.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("store not clean after failed flush: %v", rep.Defects)
	}
}
