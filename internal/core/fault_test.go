package core

import (
	"errors"
	"fmt"
	"testing"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// faultBackend injects failures into store operations, exercising the
// error paths a Lustre outage would hit mid-run.
type faultBackend struct {
	inner      Backend
	failWrites bool
	failReads  bool
	failList   bool
	writeCount int
	// failAfterN fails writes only after N successful ones (partial-flush
	// scenarios). -1 disables.
	failAfterN int
}

var errInjected = errors.New("injected I/O error (OST down)")

func newFaultBackend(view *vfs.View) *faultBackend {
	return &faultBackend{inner: VFSBackend{View: view}, failAfterN: -1}
}

func (b *faultBackend) MkdirAll(dir string) error { return b.inner.MkdirAll(dir) }

func (b *faultBackend) WriteFile(path string, data []byte) error {
	b.writeCount++
	if b.failWrites || (b.failAfterN >= 0 && b.writeCount > b.failAfterN) {
		return fmt.Errorf("write %s: %w", path, errInjected)
	}
	return b.inner.WriteFile(path, data)
}

func (b *faultBackend) ReadFile(path string) ([]byte, error) {
	if b.failReads {
		return nil, errInjected
	}
	return b.inner.ReadFile(path)
}

func (b *faultBackend) List(dir string) ([]string, error) {
	if b.failList {
		return nil, errInjected
	}
	return b.inner.List(dir)
}

func (b *faultBackend) Remove(path string) error { return b.inner.Remove(path) }

func TestFlushPropagatesWriteFailure(t *testing.T) {
	fb := newFaultBackend(vfs.NewStore().NewView())
	store, err := NewStore(fb, "/prov", FormatTurtle)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(DefaultConfig(), store, 0)
	tr.RegisterUser("u")
	fb.failWrites = true
	if err := tr.Flush(); !errors.Is(err, errInjected) {
		t.Errorf("Flush err = %v, want injected", err)
	}
	if err := tr.Close(); !errors.Is(err, errInjected) {
		t.Errorf("Close err = %v, want injected", err)
	}
	// Recovery: once the backend heals, a retry succeeds and the graph is
	// intact (nothing was lost from memory).
	fb.failWrites = false
	if err := tr.Flush(); err != nil {
		t.Errorf("Flush after recovery: %v", err)
	}
	n, err := store.TotalBytes()
	if err != nil || n == 0 {
		t.Errorf("provenance not persisted after recovery: %d, %v", n, err)
	}
}

func TestMergePropagatesReadFailure(t *testing.T) {
	fb := newFaultBackend(vfs.NewStore().NewView())
	store, _ := NewStore(fb, "/prov", FormatTurtle)
	tr := NewTracker(DefaultConfig(), store, 0)
	tr.RegisterUser("u")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	fb.failReads = true
	if _, err := store.Merge(); !errors.Is(err, errInjected) {
		t.Errorf("Merge err = %v, want injected", err)
	}
	fb.failReads = false
	fb.failList = true
	if _, err := store.Merge(); !errors.Is(err, errInjected) {
		t.Errorf("Merge with list failure err = %v", err)
	}
	if _, err := store.TotalBytes(); !errors.Is(err, errInjected) {
		t.Errorf("TotalBytes with list failure err = %v", err)
	}
}

func TestMergeRejectsCorruptSubgraph(t *testing.T) {
	view := vfs.NewStore().NewView()
	store, _ := NewStore(VFSBackend{View: view}, "/prov", FormatTurtle)
	tr := NewTracker(DefaultConfig(), store, 0)
	tr.RegisterUser("u")
	tr.Close()
	// Corrupt the flushed file.
	view.WriteFile("/prov/prov_p000000.ttl", []byte("@prefix broken <oops"))
	if _, err := store.Merge(); err == nil {
		t.Error("corrupt sub-graph merged without error")
	}
}

func TestPeriodicFlushSurvivesTransientFailure(t *testing.T) {
	// A failing periodic flush must not corrupt the in-memory graph; the
	// final Close (after recovery) persists everything.
	fb := newFaultBackend(vfs.NewStore().NewView())
	store, _ := NewStore(fb, "/prov", FormatTurtle)
	cfg := DefaultConfig()
	cfg.Mode = ModePeriodic
	cfg.FlushEvery = 5
	tr := NewTracker(cfg, store, 0)
	fb.failWrites = true
	for i := 0; i < 20; i++ {
		tr.TrackIO(model.Write, "write", rdf.Term{}, rdf.Term{}, 0, 0)
	}
	// The async writer's failures are not dropped: Drain surfaces the first
	// one (and clears it) once every enqueued segment has been attempted.
	if err := tr.Drain(); !errors.Is(err, errInjected) {
		t.Fatalf("Drain must surface the deferred periodic flush error, got %v", err)
	}
	fb.failWrites = false
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	acts := g.Find(nil, rdf.IRI(rdf.RDFType).Ptr(), model.Write.IRI().Ptr())
	if len(acts) != 20 {
		t.Errorf("activities persisted = %d, want 20", len(acts))
	}
}

func TestPartialFlushThenFinalClose(t *testing.T) {
	fb := newFaultBackend(vfs.NewStore().NewView())
	fb.failAfterN = 1 // first flush succeeds, later ones fail
	store, _ := NewStore(fb, "/prov", FormatTurtle)
	tr := NewTracker(DefaultConfig(), store, 0)
	tr.RegisterUser("u")
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	tr.RegisterProgram("p", rdf.Term{})
	if err := tr.Flush(); !errors.Is(err, errInjected) {
		t.Fatalf("second flush err = %v", err)
	}
	// The store still holds the first flush's consistent snapshot.
	fb.failReads = false
	g, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	user := rdf.IRI(model.NodeIRI(model.User, "u"))
	if len(g.Find(user.Ptr(), nil, nil)) == 0 {
		t.Error("first flush's snapshot lost")
	}
}
