package core

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/rdf/segcodec"
)

// Leveled compaction (DESIGN.md "Leveled segments & pushdown"): level 0 is
// the loose-file tier every flush writes into; PackSegments folds L0 delta
// segments — and any lower-level packs — into one L-N pack container whose
// header carries per-member and pack-level statistics. Member bytes move
// VERBATIM (the same relocation property cross-backend Compact relies on):
// digests, seals, and chain heads survive packing byte-for-byte, so
// provio-verify against heads recorded before a compaction still passes.
// Canonical sub-graph files never enter packs — they are the chain anchors
// recovery rewrites in place.

// ErrNothingToPack is returned by PackSegments when the store holds no
// segments or lower-level packs to fold.
var ErrNothingToPack = errors.New("core: no segments to pack at this level")

// packName formats a pack file name. The "prov_p" prefix keeps packs inside
// the store's provenance-file listing (exhaustive merges pick them up through
// the codec registry); the name deliberately matches neither the canonical
// nor the segment pattern, so per-process chain logic never mistakes a pack
// for chain history.
func packName(level, seq int) string {
	return fmt.Sprintf("prov_pack.l%02d.%04d%s", level, seq, segcodec.Pack.Ext())
}

// parsePackName is packName's inverse; ok is false for non-pack names.
func parsePackName(name string) (level, seq int, ok bool) {
	if _, err := fmt.Sscanf(name, "prov_pack.l%02d.%04d.psk", &level, &seq); err != nil {
		return 0, 0, false
	}
	if name != packName(level, seq) {
		return 0, 0, false
	}
	return level, seq, true
}

// PackSegments folds every loose delta segment (sidecars included) and every
// pack below the target level into one new level-`level` pack, then removes
// the sources. It refuses on an unclean audit — packing damaged history
// would seal the damage in — and is an offline operation: run it on a
// quiescent store (no live trackers), like Compact. Returns the new pack's
// file name, or ErrNothingToPack when there is nothing to fold.
//
// A crash between the pack write and source removal leaves members
// duplicated as loose files; the audit treats byte-identical duplicates as
// one file, so verification stays clean and re-running PackSegments (or
// Compact) converges.
func (s *Store) PackSegments(level int) (string, error) {
	if level < 1 {
		return "", fmt.Errorf("core: pack level %d out of range (levels start at 1)", level)
	}
	a, err := s.audit(false)
	if err != nil {
		return "", err
	}
	var defects []Defect
	for _, pa := range a.pids {
		defects = append(defects, pa.defects...)
	}
	defects = append(defects, a.packDefects...)
	if len(defects) > 0 {
		sortDefects(defects)
		return "", &IntegrityError{Defects: defects}
	}

	names, err := s.backend.List(s.dir)
	if err != nil {
		return "", err
	}
	maxSeq := -1
	var sourceFiles []string // loose files to remove, sidecar before segment
	var oldPacks []string
	entries := make(map[string]segcodec.PackEntry) // by member name
	for _, n := range names {
		if lvl, seq, ok := parsePackName(n); ok {
			if lvl == level && seq > maxSeq {
				maxSeq = seq
			}
			if lvl >= level {
				continue
			}
			path := filepath.ToSlash(filepath.Join(s.dir, n))
			data, err := s.backend.ReadFile(path)
			if err != nil {
				return "", err
			}
			h, err := segcodec.DecodePackHeader(data)
			if err != nil || int64(len(data)) != h.WantSize {
				return "", fmt.Errorf("core: pack %s unreadable: %w", n, err)
			}
			for _, m := range h.Members {
				e := segcodec.PackEntry{Name: m.Name, Data: data[m.Off : m.Off+m.Size]}
				if m.HasStats {
					ms := m.Stats
					e.Stats = &ms
				}
				if prev, dup := entries[m.Name]; dup && !bytes.Equal(prev.Data, e.Data) {
					return "", fmt.Errorf("core: member %s differs between packs", m.Name)
				}
				entries[m.Name] = e
			}
			oldPacks = append(oldPacks, path)
			continue
		}
		_, seg, isSum, ok := parseStoreName(n)
		if !ok || seg < 0 {
			continue // canonical files and foreign names stay loose
		}
		path := filepath.ToSlash(filepath.Join(s.dir, n))
		data, err := s.backend.ReadFile(path)
		if err != nil {
			return "", err
		}
		e := segcodec.PackEntry{Name: n, Data: data}
		if !isSum {
			if st, ok := segcodec.StatsOf(data); ok {
				e.Stats = &st
			}
		}
		if prev, dup := entries[n]; dup && !bytes.Equal(prev.Data, e.Data) {
			return "", fmt.Errorf("core: member %s differs between source copies", n)
		}
		entries[n] = e
		sourceFiles = append(sourceFiles, path)
	}
	if len(entries) == 0 {
		return "", ErrNothingToPack
	}

	// Deterministic member order; zero-padded names sort by (pid, seg).
	memberNames := make([]string, 0, len(entries))
	for n := range entries {
		memberNames = append(memberNames, n)
	}
	sort.Strings(memberNames)
	ordered := make([]segcodec.PackEntry, 0, len(entries))
	union := rdf.NewGraph()
	for _, n := range memberNames {
		e := entries[n]
		ordered = append(ordered, e)
		if isCodecFile(e.Name) {
			if err := segcodec.Detect(e.Data).Decode(bytes.NewReader(e.Data), union); err != nil {
				return "", fmt.Errorf("core: packing %s: %w", e.Name, err)
			}
		}
	}
	packStats := segcodec.ComputeGraphStats(union)
	var buf bytes.Buffer
	if err := segcodec.EncodePack(&buf, level, ordered, &packStats); err != nil {
		return "", err
	}
	name := packName(level, maxSeq+1)
	if err := s.backend.WriteFile(filepath.ToSlash(filepath.Join(s.dir, name)), buf.Bytes()); err != nil {
		return "", err
	}

	// Sources go only after the pack is durable. Sidecars before their
	// segments (a crash must never strand a sidecar whose file is gone), old
	// packs last.
	sort.Slice(sourceFiles, func(i, j int) bool {
		si, sj := strings.HasSuffix(sourceFiles[i], chainSidecarExt), strings.HasSuffix(sourceFiles[j], chainSidecarExt)
		if si != sj {
			return si
		}
		return sourceFiles[i] < sourceFiles[j]
	})
	for _, p := range append(sourceFiles, oldPacks...) {
		if err := s.backend.Remove(p); err != nil {
			return "", err
		}
	}
	return name, nil
}

// LevelInfo is one level's occupancy in the store's layout.
type LevelInfo struct {
	Level int   `json:"level"`
	Files int   `json:"files"` // loose files at L0; pack containers at L>0
	Units int   `json:"units"` // decodable units (files / RDF members)
	Bytes int64 `json:"bytes"`
}

// Levels reports the store's leveled layout for tooling (provio-stats). It
// runs off the same single List+Stat pass TotalBytes uses.
func (s *Store) Levels() ([]LevelInfo, error) {
	files, err := s.sizedSubgraphFiles()
	if err != nil {
		return nil, err
	}
	byLevel := map[int]*LevelInfo{}
	at := func(l int) *LevelInfo {
		li := byLevel[l]
		if li == nil {
			li = &LevelInfo{Level: l}
			byLevel[l] = li
		}
		return li
	}
	for _, f := range files {
		if filepath.Ext(f.path) == segcodec.Pack.Ext() {
			h, _, err := s.readPackHeader(f.path)
			if err != nil {
				return nil, err
			}
			li := at(h.Level)
			li.Files++
			li.Bytes += f.size
			for _, m := range h.Members {
				if isCodecFile(m.Name) {
					li.Units++
				}
			}
			continue
		}
		li := at(0)
		li.Files++
		li.Units++
		li.Bytes += f.size
	}
	out := make([]LevelInfo, 0, len(byLevel))
	for _, li := range byLevel {
		out = append(out, *li)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Level < out[j].Level })
	return out, nil
}
