package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/hpc-io/prov-io/internal/faultfs"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/sparql"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// queryBytes runs q over src with the parallel executor and returns the
// serialized result rows — the byte-level fingerprint the out-of-core parity
// properties compare. The engine's finish path orders rows
// deterministically, so equal solution multisets serialize identically.
func queryBytes(t *testing.T, src sparql.ScanSource, query string, workers int) []byte {
	t.Helper()
	q, err := sparql.Parse(query, model.Namespaces())
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	res, _, err := sparql.EvalParallelOnInfo(src, q, workers)
	if err != nil {
		t.Fatalf("eval %q: %v", query, err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// buildScatteredStore writes a seeded random graph across delta segments,
// packs the first wave, and leaves a second wave loose — the mixed pack +
// loose layout every out-of-core read has to federate. Same generator family
// as TestPrunedVsExhaustiveProperty.
func buildScatteredStore(t *testing.T, rng *rand.Rand) *Store {
	t.Helper()
	store := newBinaryVFSStore(t)
	node := func() rdf.Term { return rdf.IRI(fmt.Sprintf("urn:n%d", rng.Intn(40))) }
	pred := func() rdf.Term {
		rels := model.AllRelations()
		if rng.Intn(4) == 0 {
			return rdf.IRI(fmt.Sprintf("urn:p%d", rng.Intn(6)))
		}
		return rels[rng.Intn(len(rels))].IRI()
	}
	writeSegments := func(pidBase, nSegs int) {
		for s := 0; s < nSegs; s++ {
			n := 1 + rng.Intn(8)
			triples := make([]rdf.Triple, 0, n)
			for i := 0; i < n; i++ {
				o := node()
				if rng.Intn(5) == 0 {
					o = rdf.Literal(fmt.Sprintf("v%d", rng.Intn(10)))
				}
				triples = append(triples, rdf.Triple{S: node(), P: pred(), O: o})
			}
			if err := store.WriteDeltaSegment(pidBase+s%3, s/3, triples); err != nil {
				t.Fatal(err)
			}
		}
	}
	writeSegments(0, 6+rng.Intn(6))
	if _, err := store.PackSegments(1); err != nil {
		t.Fatalf("PackSegments: %v", err)
	}
	writeSegments(10, 3+rng.Intn(4))
	return store
}

// lazyParityQueries is the fixed query mix of the parity property: full
// scans, bound positions, a join, and a union — enough shapes to exercise
// morsel partitioning, constant resolution through the shared dictionary,
// and cross-unit joins.
func lazyParityQueries(rng *rand.Rand) []string {
	rel := model.AllRelations()[rng.Intn(len(model.AllRelations()))].IRI().Value
	return []string{
		`SELECT ?s ?p ?o WHERE { ?s ?p ?o }`,
		fmt.Sprintf(`SELECT ?s ?o WHERE { ?s <urn:p%d> ?o }`, rng.Intn(6)),
		fmt.Sprintf(`SELECT ?p ?o WHERE { <urn:n%d> ?p ?o }`, rng.Intn(40)),
		fmt.Sprintf(`SELECT ?s ?p WHERE { ?s ?p <urn:n%d> }`, rng.Intn(40)),
		fmt.Sprintf(`SELECT ?a ?c WHERE { ?a <%s> ?b . ?b ?p ?c }`, rel),
		fmt.Sprintf(`SELECT ?s WHERE { { ?s <urn:p%d> ?o } UNION { ?s <%s> ?o } }`, rng.Intn(6), rel),
	}
}

// TestLazyParityProperty is the out-of-core equivalence property: for random
// mixed layouts, every query and lineage reduction over a LazyView must be
// byte-identical to the eager path, for cache budgets unbounded, half the
// decoded footprint, and an eighth of it, at 1 and 4 workers — and the
// resident decoded set must never exceed the budget.
func TestLazyParityProperty(t *testing.T) {
	sawEviction := false
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		store := buildScatteredStore(t, rng)

		full, scan, err := store.MergePruned(nil, 3)
		if err != nil {
			t.Fatal(err)
		}
		if scan.Packs != 1 {
			t.Fatalf("seed %d: layout lost its pack: %+v", seed, scan)
		}
		fullNT := ntBytes(t, full)
		queries := lazyParityQueries(rng)
		eager := make([][]byte, len(queries))
		for i, q := range queries {
			eager[i] = queryBytes(t, full.Snapshot(), q, 2)
		}

		// The unbounded view's resident bytes after full materialization are
		// the store's total decoded footprint — the yardstick the bounded
		// budgets divide.
		v0, err := store.OpenLazy(CacheConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if g0, _, err := v0.MaterializeGraph(2); err != nil {
			t.Fatal(err)
		} else if !bytes.Equal(fullNT, ntBytes(t, g0)) {
			t.Fatalf("seed %d: unbounded MaterializeGraph differs from eager merge", seed)
		}
		total := v0.Stats().ResidentBytes
		if total <= 0 {
			t.Fatalf("seed %d: empty decoded footprint", seed)
		}

		node := func() rdf.Term { return rdf.IRI(fmt.Sprintf("urn:n%d", rng.Intn(40))) }
		for _, budget := range []int64{0, total / 2, total / 8} {
			for _, workers := range []int{1, 4} {
				tag := fmt.Sprintf("seed %d budget %d workers %d", seed, budget, workers)
				v, err := store.OpenLazy(CacheConfig{MaxBytes: budget})
				if err != nil {
					t.Fatal(err)
				}
				src := v.Source(nil)
				for i, q := range queries {
					got := queryBytes(t, src, q, workers)
					if err := src.Err(); err != nil {
						t.Fatalf("%s query %d: view failed: %v", tag, i, err)
					}
					if !bytes.Equal(eager[i], got) {
						t.Fatalf("%s query %d (%s): lazy result differs from eager", tag, i, q)
					}
				}
				if g, _, err := v.MaterializeGraph(workers); err != nil {
					t.Fatalf("%s: MaterializeGraph: %v", tag, err)
				} else if !bytes.Equal(fullNT, ntBytes(t, g)) {
					t.Fatalf("%s: MaterializeGraph differs from eager merge", tag)
				}

				for trial := 0; trial < 2; trial++ {
					roots := []rdf.Term{node()}
					hops := 1 + rng.Intn(3)
					want, _, err := store.ReduceLineagePruned(roots, hops, workers)
					if err != nil {
						t.Fatal(err)
					}
					got, _, err := v.ReduceLineagePruned(roots, hops, workers)
					if err != nil {
						t.Fatalf("%s: lazy lineage: %v", tag, err)
					}
					if !bytes.Equal(ntBytes(t, want), ntBytes(t, got)) {
						t.Fatalf("%s: lazy lineage differs from eager (roots=%v hops=%d)", tag, roots, hops)
					}
				}

				// A pruner admits the same units lazily as eagerly: hydrating
				// the lazy source's unit list reproduces the pruned merge.
				p := PrunePattern{S: termPtr(node())}
				if rng.Intn(2) == 0 {
					p = PrunePattern{O: termPtr(node())}
				}
				pr := &SegmentPruner{Patterns: []PrunePattern{p}}
				wantPruned, _, err := store.MergePruned(pr, workers)
				if err != nil {
					t.Fatal(err)
				}
				ps := v.Source(pr)
				gotPruned := rdf.NewGraph()
				if err := v.hydrateUnits(ps.units, gotPruned, workers); err != nil {
					t.Fatalf("%s: hydrating pruned source: %v", tag, err)
				}
				if !bytes.Equal(ntBytes(t, wantPruned), ntBytes(t, gotPruned)) {
					t.Fatalf("%s: pruned lazy source differs from eager pruned merge", tag)
				}

				st := v.Stats()
				if budget > 0 {
					if st.PeakBytes > budget {
						t.Fatalf("%s: peak resident %d exceeds budget %d", tag, st.PeakBytes, budget)
					}
					if st.ResidentBytes > budget {
						t.Fatalf("%s: resident %d exceeds budget %d", tag, st.ResidentBytes, budget)
					}
					if st.Evictions > 0 {
						sawEviction = true
					}
				}
				if st.Hits+st.Misses == 0 {
					t.Fatalf("%s: cache never touched", tag)
				}
			}
		}
	}
	if !sawEviction {
		t.Fatal("no bounded run ever evicted: the budgets are not exercising the cache")
	}
}

// TestLazyScanRangePartitioning pins the ScanSource contract on the
// federation: concatenating adjacent ScanRange windows reproduces the full
// enumeration exactly, for arbitrary split points — the property the
// parallel executor's morsel scheduler relies on.
func TestLazyScanRangePartitioning(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	store := buildScatteredStore(t, rng)
	v, err := store.OpenLazy(CacheConfig{MaxBytes: 1}) // everything transient: worst case
	if err != nil {
		t.Fatal(err)
	}
	src := v.Source(nil)

	collect := func(s, p, o rdf.ID, cuts []int) []string {
		var out []string
		prev := 0
		for _, c := range append(cuts, src.ScanLen(s, p, o)) {
			src.ScanRange(s, p, o, prev, c, func(a, b, cc rdf.ID) bool {
				out = append(out, fmt.Sprintf("%d %d %d", a, b, cc))
				return true
			})
			prev = c
		}
		return out
	}
	pid, _ := src.TermID(rdf.IRI("urn:p1"))
	nid, _ := src.TermID(rdf.IRI("urn:n3"))
	patterns := [][3]rdf.ID{
		{rdf.NoID, rdf.NoID, rdf.NoID},
		{rdf.NoID, pid, rdf.NoID},
		{nid, rdf.NoID, rdf.NoID},
		{rdf.NoID, rdf.NoID, nid},
	}
	for _, pat := range patterns {
		n := src.ScanLen(pat[0], pat[1], pat[2])
		whole := collect(pat[0], pat[1], pat[2], nil)
		for trial := 0; trial < 4; trial++ {
			var cuts []int
			for c := 0; c < 1+rng.Intn(3); c++ {
				if n > 0 {
					cuts = append(cuts, rng.Intn(n+1))
				}
			}
			// ScanRange windows must be ordered; sort the cut points.
			for i := range cuts {
				for j := i + 1; j < len(cuts); j++ {
					if cuts[j] < cuts[i] {
						cuts[i], cuts[j] = cuts[j], cuts[i]
					}
				}
			}
			split := collect(pat[0], pat[1], pat[2], cuts)
			if len(split) != len(whole) {
				t.Fatalf("pattern %v cuts %v: %d emitted, want %d", pat, cuts, len(split), len(whole))
			}
			for i := range whole {
				if whole[i] != split[i] {
					t.Fatalf("pattern %v cuts %v: item %d is %s, want %s", pat, cuts, i, split[i], whole[i])
				}
			}
		}
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestLazyViewServesOldLayoutFromCache: a fully resident view must keep
// answering with its open-time layout after PackSegments and Compact rewrite
// the store underneath it — the "old consistent layout" half of the race
// contract.
func TestLazyViewServesOldLayoutFromCache(t *testing.T) {
	store := newBinaryVFSStore(t)
	for pid := 0; pid < 3; pid++ {
		smallHistory(t, store, pid)
	}
	baseline := ntBytes(t, mustMerge(t, store))
	v, err := store.OpenLazy(CacheConfig{}) // unbounded: everything stays resident
	if err != nil {
		t.Fatal(err)
	}
	if g, _, err := v.MaterializeGraph(2); err != nil {
		t.Fatal(err)
	} else if !bytes.Equal(baseline, ntBytes(t, g)) {
		t.Fatal("pre-maintenance materialization differs from merge")
	}
	if _, err := store.PackSegments(1); err != nil {
		t.Fatal(err)
	}
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	g, _, err := v.MaterializeGraph(2)
	if err != nil {
		t.Fatalf("resident view failed after maintenance: %v", err)
	}
	if !bytes.Equal(baseline, ntBytes(t, g)) {
		t.Fatal("resident view's answer changed under maintenance")
	}
	if err := v.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestLazyViewStaleAfterMaintenance: a view that must re-fetch (tiny budget,
// nothing resident) after Compact/PackSegments rewrote the layout fails with
// an error classified as ErrStaleView — the other half of the race contract:
// never a partial mixture of generations.
func TestLazyViewStaleAfterMaintenance(t *testing.T) {
	t.Run("compact", func(t *testing.T) {
		store := newBinaryVFSStore(t)
		smallHistory(t, store, 0)
		smallHistory(t, store, 1)
		v, err := store.OpenLazy(CacheConfig{MaxBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := v.MaterializeGraph(1); err != nil {
			t.Fatal(err)
		}
		if err := store.Compact(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := v.MaterializeGraph(1); !errors.Is(err, ErrStaleView) {
			t.Fatalf("materialize after Compact: err=%v, want ErrStaleView", err)
		}
	})
	t.Run("pack", func(t *testing.T) {
		store := newBinaryVFSStore(t)
		smallHistory(t, store, 0)
		smallHistory(t, store, 1)
		v, err := store.OpenLazy(CacheConfig{MaxBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		src := v.Source(nil)
		baseline := queryBytes(t, src, `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`, 2)
		if err := src.Err(); err != nil {
			t.Fatal(err)
		}
		if _, err := store.PackSegments(1); err != nil {
			t.Fatal(err)
		}
		// The segments the view pinned are gone; the sticky view error must
		// classify the staleness, and the discarded result must not be
		// mistaken for an answer.
		queryBytes(t, src, `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`, 2)
		if err := src.Err(); !errors.Is(err, ErrStaleView) {
			t.Fatalf("query after PackSegments: Err()=%v, want ErrStaleView", err)
		}
		// A fresh view over the new layout answers identically.
		v2, err := store.OpenLazy(CacheConfig{MaxBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		src2 := v2.Source(nil)
		if got := queryBytes(t, src2, `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`, 2); !bytes.Equal(baseline, got) {
			t.Fatal("reopened view answers differently over the packed layout")
		}
		if err := src2.Err(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestEagerScanStaleClassification: the eager scan path classifies a unit
// list raced by maintenance the same way — a pack that vanished between
// listing and decode surfaces ErrStaleView, not a bare read error.
func TestEagerScanStaleClassification(t *testing.T) {
	store := newBinaryVFSStore(t)
	smallHistory(t, store, 0)
	smallHistory(t, store, 1)
	if _, err := store.PackSegments(1); err != nil {
		t.Fatal(err)
	}
	var st ScanStats
	units, err := store.scanUnits(nil, &st)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Compact(); err != nil { // folds the pack away
		t.Fatal(err)
	}
	members := 0
	for i := range units {
		if units[i].member == "" {
			continue
		}
		members++
		units[i].data = nil
		if _, err := units[i].fetch(store); !errors.Is(err, ErrStaleView) {
			t.Fatalf("fetch of vanished pack member %s: err=%v, want ErrStaleView", units[i].member, err)
		}
	}
	if members == 0 {
		t.Fatal("layout grew no pack members; the race never happened")
	}
}

// TestLazyReadFaultInjection drives lazy reads through faultfs: injected
// read failures and a mid-read crash must surface as classified errors on a
// cold view while a warm view keeps serving its cached, consistent decode —
// never partial output.
func TestLazyReadFaultInjection(t *testing.T) {
	inner := VFSBackend{View: vfs.NewStore().NewView()}
	ffs := faultfs.New(inner, 1)
	store, err := NewStore(ffs, "/prov", FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	smallHistory(t, store, 0)
	smallHistory(t, store, 1)
	if _, err := store.PackSegments(1); err != nil {
		t.Fatal(err)
	}
	baseline := ntBytes(t, mustMerge(t, store))

	warm, err := store.OpenLazy(CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if g, _, err := warm.MaterializeGraph(2); err != nil || !bytes.Equal(baseline, ntBytes(t, g)) {
		t.Fatalf("warm view baseline: err=%v", err)
	}
	cold, err := store.OpenLazy(CacheConfig{MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}

	ffs.FailReads(true)
	if _, _, err := cold.MaterializeGraph(2); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("cold view under failing reads: err=%v, want ErrInjected", err)
	}
	if g, _, err := warm.MaterializeGraph(2); err != nil || !bytes.Equal(baseline, ntBytes(t, g)) {
		t.Fatalf("warm view under failing reads: err=%v (cache must serve)", err)
	}
	ffs.Heal()

	// Crash point during a lazy read epoch: the crash fires on the next
	// mutating operation, after which every backend read returns ErrCrashed.
	ffs.CrashAt(0, 0)
	if err := store.WriteDeltaSegment(9, 0, []rdf.Triple{
		{S: rdf.IRI("urn:a"), P: rdf.IRI("urn:p"), O: rdf.IRI("urn:b")},
	}); err == nil {
		t.Fatal("write survived the armed crash point")
	}
	cold2, err := store.OpenLazy(CacheConfig{MaxBytes: 1})
	if err == nil {
		if _, _, merr := cold2.MaterializeGraph(2); !errors.Is(merr, faultfs.ErrCrashed) {
			t.Fatalf("cold view across crash: err=%v, want ErrCrashed", merr)
		}
	}
	if g, _, err := warm.MaterializeGraph(2); err != nil || !bytes.Equal(baseline, ntBytes(t, g)) {
		t.Fatalf("warm view across crash: err=%v (cache must serve)", err)
	}
}
