package core

import (
	"fmt"
	"testing"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// chainTracker builds a lineage chain f0 <- f1 <- ... <- fN plus an
// unrelated island.
func chainTracker(n int) (*Tracker, []rdf.Term) {
	tr := NewTracker(DefaultConfig(), nil, 0)
	prog := tr.RegisterProgram("p", rdf.Term{})
	nodes := make([]rdf.Term, n)
	for i := 0; i < n; i++ {
		nodes[i] = tr.TrackDataObject(model.File, fmt.Sprintf("/f%d", i), "", rdf.Term{}, prog)
		if i > 0 {
			tr.TrackDerivation(nodes[i], nodes[i-1])
		}
	}
	// Unrelated island.
	island := tr.TrackDataObject(model.File, "/island", "", rdf.Term{}, rdf.Term{})
	tr.TrackIO(model.Write, "write", island, rdf.Term{}, 0, 0)
	return tr, nodes
}

func TestReduceLineageKeepsComponent(t *testing.T) {
	tr, nodes := chainTracker(5)
	g := tr.Graph()
	reduced := ReduceLineage(g, []rdf.Term{nodes[4]}, 0)
	if reduced.Len() >= g.Len() {
		t.Errorf("reduction did not shrink: %d >= %d", reduced.Len(), g.Len())
	}
	// The whole chain is kept.
	for i, n := range nodes {
		if len(reduced.Find(n.Ptr(), rdf.IRI(rdf.RDFType).Ptr(), nil)) != 1 {
			t.Errorf("chain node %d lost", i)
		}
	}
	// The island is gone.
	island := rdf.IRI(model.NodeIRI(model.File, "/island"))
	if len(reduced.Find(island.Ptr(), nil, nil)) != 0 {
		t.Error("island survived reduction")
	}
}

func TestReduceLineageHopBound(t *testing.T) {
	// A pure derivation chain (no shared agent hub that would shortcut
	// the hop count).
	tr := NewTracker(DefaultConfig(), nil, 0)
	nodes := make([]rdf.Term, 6)
	for i := range nodes {
		nodes[i] = tr.TrackDataObject(model.File, fmt.Sprintf("/c%d", i), "", rdf.Term{}, rdf.Term{})
		if i > 0 {
			tr.TrackDerivation(nodes[i], nodes[i-1])
		}
	}
	reduced := ReduceLineage(tr.Graph(), []rdf.Term{nodes[5]}, 2)
	// Nodes 5, 4, 3 kept (2 hops); node 0 dropped.
	if len(reduced.Find(nodes[3].Ptr(), nil, nil)) == 0 {
		t.Error("2-hop node dropped")
	}
	if len(reduced.Find(nodes[0].Ptr(), rdf.IRI(rdf.RDFType).Ptr(), nil)) != 0 {
		t.Error("far node survived hop bound")
	}
}

func TestReduceLineageAnnotationsKept(t *testing.T) {
	tr, nodes := chainTracker(2)
	reduced := ReduceLineage(tr.Graph(), []rdf.Term{nodes[1]}, 0)
	if len(reduced.Find(nodes[1].Ptr(), model.PropName.IRI().Ptr(), nil)) != 1 {
		t.Error("name annotation lost")
	}
}

func TestReduceLineageEmptyRoots(t *testing.T) {
	tr, _ := chainTracker(3)
	reduced := ReduceLineage(tr.Graph(), nil, 0)
	if reduced.Len() != 0 {
		t.Errorf("no roots should keep nothing, got %d", reduced.Len())
	}
	reduced = ReduceLineage(tr.Graph(), []rdf.Term{{}}, 0)
	if reduced.Len() != 0 {
		t.Errorf("zero-term root kept %d triples", reduced.Len())
	}
}

func TestMergeStoresCrossRun(t *testing.T) {
	// Two runs of the "same workflow" write to separate stores; the merged
	// graph unifies the program node and keeps both configuration versions
	// — the cross-run provenance of the paper's future-work section.
	view := vfs.NewStore().NewView()
	var stores []*Store
	for run := 0; run < 2; run++ {
		store, err := NewStore(VFSBackend{View: view}, fmt.Sprintf("/prov/run%d", run), FormatTurtle)
		if err != nil {
			t.Fatal(err)
		}
		tr := NewTracker(DefaultConfig(), store, 0)
		prog := tr.RegisterProgram("topreco", rdf.Term{})
		tr.TrackConfigurationAccuracy(prog, "learning_rate",
			rdf.Double(0.01*float64(run+1)), run, 0.8+0.05*float64(run))
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		stores = append(stores, store)
	}
	merged, err := MergeStores(stores...)
	if err != nil {
		t.Fatal(err)
	}
	// One program node.
	prog := rdf.IRI(model.NodeIRI(model.Program, "topreco"))
	if n := len(merged.Find(prog.Ptr(), rdf.IRI(rdf.RDFType).Ptr(), nil)); n != 1 {
		t.Errorf("program nodes = %d, want 1 (GUID merge)", n)
	}
	// Two accuracy-bearing configuration versions.
	if n := len(merged.Find(nil, model.PropAccuracy.IRI().Ptr(), nil)); n != 2 {
		t.Errorf("accuracy records = %d, want 2", n)
	}
}

// TestReduceLineageCache: a repeated lineage question against an unchanged
// graph is served from the snapshot memo; any mutation invalidates it.
func TestReduceLineageCache(t *testing.T) {
	tr, nodes := chainTracker(6)
	g := tr.Graph()
	cold := ReduceLineage(g, []rdf.Term{nodes[3]}, 2)
	if warm := ReduceLineage(g, []rdf.Term{nodes[3]}, 2); warm != cold {
		t.Fatal("repeat lineage question against an unchanged graph was recomputed")
	}
	// Different roots or hops are distinct cache entries.
	if other := ReduceLineage(g, []rdf.Term{nodes[3]}, 3); other == cold {
		t.Fatal("different maxHops returned the cached closure")
	}
	// A mutation moves the snapshot epoch pair: the cache must miss and the
	// fresh closure must see the new edge.
	g.Add(rdf.Triple{S: nodes[3], P: model.WasDerivedFrom.IRI(), O: rdf.IRI(model.NodeIRI(model.File, "/new-root"))})
	fresh := ReduceLineage(g, []rdf.Term{nodes[3]}, 2)
	if fresh == cold {
		t.Fatal("Add did not invalidate the lineage cache")
	}
	if fresh.Len() <= cold.Len() {
		t.Fatalf("post-Add closure has %d triples, want more than %d", fresh.Len(), cold.Len())
	}
	// Uncached variant always hands back a private graph.
	a := ReduceLineageUncached(g, []rdf.Term{nodes[3]}, 2)
	b := ReduceLineageUncached(g, []rdf.Term{nodes[3]}, 2)
	if a == b {
		t.Fatal("ReduceLineageUncached returned a shared graph")
	}
}
