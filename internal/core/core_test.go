package core

import (
	"strings"
	"testing"
	"time"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/simclock"
	"github.com/hpc-io/prov-io/internal/vfs"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(VFSBackend{View: vfs.NewStore().NewView()}, "/prov", FormatTurtle)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaultConfigEnablesEverything(t *testing.T) {
	cfg := DefaultConfig()
	for _, c := range model.AllClasses() {
		if !cfg.Enabled(c) {
			t.Errorf("class %s disabled by default", c.Name)
		}
	}
	if got := len(cfg.EnabledClasses()); got != 19 {
		t.Errorf("EnabledClasses = %d, want 19", got)
	}
}

func TestConfigEnableDisable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Disable("Attribute", "Datatype")
	if cfg.Enabled(model.Attribute) || cfg.Enabled(model.Datatype) {
		t.Error("Disable had no effect")
	}
	cfg.Enable("Attribute")
	if !cfg.Enabled(model.Attribute) {
		t.Error("Enable had no effect")
	}
	cfg.DisableAll()
	if len(cfg.EnabledClasses()) != 0 {
		t.Errorf("DisableAll left %v", cfg.EnabledClasses())
	}
}

func TestConfigClone(t *testing.T) {
	cfg := DefaultConfig()
	c2 := cfg.Clone()
	c2.Disable("File")
	if !cfg.Enabled(model.File) {
		t.Error("Clone shares the enabled map")
	}
}

func TestScenarioConfig(t *testing.T) {
	// H5bench scenario-1: only I/O API classes.
	cfg := ScenarioConfig(false, "Create", "Open", "Read", "Write", "Fsync", "Rename")
	if cfg.Enabled(model.File) || cfg.Enabled(model.User) {
		t.Error("scenario config leaked extra classes")
	}
	if !cfg.Enabled(model.Read) {
		t.Error("scenario config missing requested class")
	}
	if cfg.Duration {
		t.Error("duration should be off")
	}
}

func TestLoadConfig(t *testing.T) {
	doc := `
# PROV-IO configuration
store_dir = /run1/prov
format = ntriples
mode = periodic
flush_every = 128
duration = on
track = Create, Open, Read, Write
enable = File
disable = Open
`
	cfg, err := LoadConfig(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.StoreDir != "/run1/prov" || cfg.Format != FormatNTriples ||
		cfg.Mode != ModePeriodic || cfg.FlushEvery != 128 || !cfg.Duration {
		t.Errorf("config = %+v", cfg)
	}
	if got := cfg.StoreSpec(); got != "dir:/run1/prov" {
		t.Errorf("StoreSpec() = %q, want store_dir as a dir: alias", got)
	}
	cfg2, err := LoadConfig(strings.NewReader("store = mount:hot=mem:,cold=file:/hist.pvs\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg2.StoreSpec(); got != "mount:hot=mem:,cold=file:/hist.pvs" {
		t.Errorf("StoreSpec() = %q, want the configured spec verbatim", got)
	}
	if !cfg.Enabled(model.Create) || !cfg.Enabled(model.File) {
		t.Error("track/enable lists not applied")
	}
	if cfg.Enabled(model.Open) {
		t.Error("disable not applied after track")
	}
	if cfg.Enabled(model.User) {
		t.Error("track should be exclusive")
	}
}

func TestLoadConfigErrors(t *testing.T) {
	cases := []string{
		"no_equals_here",
		"format = json",
		"mode = sometimes",
		"flush_every = -3",
		"flush_every = abc",
		"duration = maybe",
		"track = NotAClass",
		"unknown_key = 1",
		"store = bogus:/x",
		"store = mount:hot=mem:",
	}
	for _, doc := range cases {
		if _, err := LoadConfig(strings.NewReader(doc)); err == nil {
			t.Errorf("LoadConfig(%q) succeeded", doc)
		} else if strings.HasPrefix(doc, "store =") && !strings.Contains(err.Error(), "key store") {
			t.Errorf("LoadConfig(%q) error %q does not name the store key", doc, err)
		}
	}
}

func TestLoadConfigDurationPseudoClass(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader("track = Create, Duration"))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Duration || !cfg.Enabled(model.Create) {
		t.Error("Duration pseudo-class not handled in track list")
	}
}

func TestTrackerAgentsAndIO(t *testing.T) {
	store := newTestStore(t)
	tr := NewTracker(DefaultConfig(), store, 0)
	user := tr.RegisterUser("Bob")
	prog := tr.RegisterProgram("vpicio_uni_h5.exe-a1", user)
	thr := tr.RegisterThread(0, prog)
	obj := tr.TrackDataObject(model.Dataset, "/f.h5/Timestep_0/x", "/Timestep_0/x", rdf.Term{}, prog)
	act := tr.TrackIO(model.Create, "H5Dcreate2", obj, thr, 0, time.Microsecond)

	if user.IsZero() || prog.IsZero() || thr.IsZero() || obj.IsZero() || act.IsZero() {
		t.Fatal("enabled classes returned zero nodes")
	}
	g := tr.Graph()
	if !g.Has(rdf.Triple{S: obj, P: model.WasCreatedBy.IRI(), O: act}) {
		t.Error("missing wasCreatedBy edge")
	}
	if !g.Has(rdf.Triple{S: act, P: model.AssociatedWith.IRI(), O: thr}) {
		t.Error("missing association edge")
	}
	if !g.Has(rdf.Triple{S: thr, P: model.ActedOnBehalfOf.IRI(), O: prog}) {
		t.Error("missing delegation edge")
	}
	recs, triples := tr.Stats()
	if recs != 5 || triples != int64(g.Len()) {
		t.Errorf("Stats = %d records, %d triples; graph has %d", recs, triples, g.Len())
	}
}

func TestTrackerSequenceNumbers(t *testing.T) {
	tr := NewTracker(DefaultConfig(), nil, 3)
	a1 := tr.TrackIO(model.Write, "H5Dwrite", rdf.Term{}, rdf.Term{}, 0, 0)
	a2 := tr.TrackIO(model.Write, "H5Dwrite", rdf.Term{}, rdf.Term{}, 0, 0)
	b1 := tr.TrackIO(model.Read, "H5Dread", rdf.Term{}, rdf.Term{}, 0, 0)
	if a1 == a2 {
		t.Error("repeated invocations minted same node")
	}
	if !strings.Contains(a1.Value, "-p3-b1") || !strings.Contains(a2.Value, "-p3-b2") {
		t.Errorf("sequence numbering wrong: %v %v", a1, a2)
	}
	if !strings.Contains(b1.Value, "H5Dread-p3-b1") {
		t.Errorf("per-API counters not independent: %v", b1)
	}
}

func TestTrackerRespectsDisabledClasses(t *testing.T) {
	cfg := ScenarioConfig(false, "Create") // only Create enabled
	tr := NewTracker(cfg, nil, 0)
	if got := tr.RegisterUser("Bob"); !got.IsZero() {
		t.Error("disabled User still tracked")
	}
	if got := tr.TrackDataObject(model.File, "/f", "", rdf.Term{}, rdf.Term{}); !got.IsZero() {
		t.Error("disabled File still tracked")
	}
	if got := tr.TrackIO(model.Read, "read", rdf.Term{}, rdf.Term{}, 0, 0); !got.IsZero() {
		t.Error("disabled Read still tracked")
	}
	if got := tr.TrackIO(model.Create, "open", rdf.Term{}, rdf.Term{}, 0, 0); got.IsZero() {
		t.Error("enabled Create not tracked")
	}
	if got := tr.TrackConfiguration(rdf.IRI("http://x"), "k", rdf.Literal("v"), 0); !got.IsZero() {
		t.Error("disabled Configuration still tracked")
	}
	if got := tr.TrackMetric(rdf.IRI("http://x"), "k", rdf.Literal("v"), 0); !got.IsZero() {
		t.Error("disabled Metrics still tracked")
	}
	if got := tr.TrackType(rdf.IRI("http://x"), "ML"); !got.IsZero() {
		t.Error("disabled Type still tracked")
	}
}

func TestTrackerDurationSwitch(t *testing.T) {
	cfgOn := ScenarioConfig(true, "Write")
	trOn := NewTracker(cfgOn, nil, 0)
	trOn.TrackIO(model.Write, "H5Dwrite", rdf.Term{}, rdf.Term{}, time.Second, time.Millisecond)
	if got := trOn.Graph().Find(nil, model.PropElapsed.IRI().Ptr(), nil); len(got) != 1 {
		t.Errorf("duration on: elapsed triples = %d", len(got))
	}

	cfgOff := ScenarioConfig(false, "Write")
	trOff := NewTracker(cfgOff, nil, 0)
	trOff.TrackIO(model.Write, "H5Dwrite", rdf.Term{}, rdf.Term{}, time.Second, time.Millisecond)
	if got := trOff.Graph().Find(nil, model.PropElapsed.IRI().Ptr(), nil); len(got) != 0 {
		t.Errorf("duration off: elapsed triples = %d", len(got))
	}
}

func TestTrackerDerivation(t *testing.T) {
	tr := NewTracker(DefaultConfig(), nil, 0)
	a, b := rdf.IRI("http://x/a"), rdf.IRI("http://x/b")
	tr.TrackDerivation(a, b)
	if !tr.Graph().Has(rdf.Triple{S: a, P: model.WasDerivedFrom.IRI(), O: b}) {
		t.Error("derivation edge missing")
	}
	tr.TrackDerivation(rdf.Term{}, b) // no-op, must not panic
	tr.TrackDerivation(a, rdf.Term{})
}

func TestTrackerConfigurationVersioning(t *testing.T) {
	tr := NewTracker(DefaultConfig(), nil, 0)
	owner := tr.RegisterProgram("topreco", rdf.Term{})
	v0 := tr.TrackConfigurationAccuracy(owner, "learning_rate", rdf.Double(0.01), 0, 0.81)
	v1 := tr.TrackConfigurationAccuracy(owner, "learning_rate", rdf.Double(0.02), 1, 0.88)
	if v0 == v1 {
		t.Fatal("versions collapsed")
	}
	g := tr.Graph()
	if !g.Has(rdf.Triple{S: v1, P: model.PropAccuracy.IRI(), O: rdf.Double(0.88)}) {
		t.Error("accuracy not recorded")
	}
	if !g.Has(rdf.Triple{S: owner, P: model.PropConfig.IRI(), O: v0}) {
		t.Error("owner link missing")
	}
}

func TestFlushAndMergeRoundTrip(t *testing.T) {
	store := newTestStore(t)
	// Two processes touching the same file: merge must deduplicate it.
	for pid := 0; pid < 2; pid++ {
		tr := NewTracker(DefaultConfig(), store, pid)
		user := tr.RegisterUser("Bob")
		prog := tr.RegisterProgram("dassa", user)
		obj := tr.TrackDataObject(model.File, "/data/westsac.h5", "", rdf.Term{}, prog)
		tr.TrackIO(model.Read, "H5Fread", obj, prog, 0, 0)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	fileNode := rdf.IRI(model.NodeIRI(model.File, "/data/westsac.h5"))
	typeEdges := merged.Find(fileNode.Ptr(), rdf.IRI(rdf.RDFType).Ptr(), nil)
	if len(typeEdges) != 1 {
		t.Errorf("file node duplicated after merge: %v", typeEdges)
	}
	// Each process's activity nodes are distinct (pid in the GUID).
	acts := merged.Find(nil, rdf.IRI(rdf.RDFType).Ptr(), model.Read.IRI().Ptr())
	if len(acts) != 2 {
		t.Errorf("activities = %d, want 2 (one per process)", len(acts))
	}
}

func TestWriteMergedProducesFile(t *testing.T) {
	view := vfs.NewStore().NewView()
	store, err := NewStore(VFSBackend{View: view}, "/prov", FormatTurtle)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(DefaultConfig(), store, 0)
	tr.RegisterUser("alice")
	tr.Close()
	g, err := store.WriteMerged()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() == 0 {
		t.Error("merged graph empty")
	}
	if !view.Exists("/prov/prov_merged.ttl") {
		t.Error("merged file not written")
	}
}

func TestStoreTotalBytesGrows(t *testing.T) {
	store := newTestStore(t)
	tr := NewTracker(DefaultConfig(), store, 0)
	tr.RegisterUser("u")
	tr.Flush()
	small, err := store.TotalBytes()
	if err != nil || small <= 0 {
		t.Fatalf("TotalBytes = %d, %v", small, err)
	}
	for i := 0; i < 100; i++ {
		tr.TrackIO(model.Write, "write", rdf.Term{}, rdf.Term{}, 0, 0)
	}
	tr.Flush()
	big, _ := store.TotalBytes()
	if big <= small {
		t.Errorf("TotalBytes did not grow: %d -> %d", small, big)
	}
}

func TestPeriodicModeFlushes(t *testing.T) {
	view := vfs.NewStore().NewView()
	store, _ := NewStore(VFSBackend{View: view}, "/prov", FormatTurtle)
	cfg := DefaultConfig()
	cfg.Mode = ModePeriodic
	cfg.FlushEvery = 10
	tr := NewTracker(cfg, store, 0)
	for i := 0; i < 15; i++ {
		tr.TrackIO(model.Write, "write", rdf.Term{}, rdf.Term{}, 0, 0)
	}
	// 10 records crossed the threshold: a delta segment must have been
	// enqueued without an explicit Flush call; Drain waits for the async
	// writer without rewriting the canonical file.
	if err := tr.Drain(); err != nil {
		t.Fatal(err)
	}
	n, err := store.TotalBytes()
	if err != nil || n == 0 {
		t.Errorf("periodic flush did not write: %d bytes, %v", n, err)
	}
	if view.Exists("/prov/prov_p000000.ttl") {
		t.Error("periodic delta flush rewrote the canonical file")
	}
	if !view.Exists("/prov/prov_p000000.seg0000.nt") {
		t.Error("delta segment not written")
	}
	// The merged view already includes the segment's records.
	g, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Find(nil, rdf.IRI(rdf.RDFType).Ptr(), model.Write.IRI().Ptr())); got != 10 {
		t.Errorf("activities visible mid-run = %d, want 10", got)
	}
	// Close compacts: segments fold into the canonical file.
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if view.Exists("/prov/prov_p000000.seg0000.nt") {
		t.Error("Close did not compact delta segments")
	}
	g, err = store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Find(nil, rdf.IRI(rdf.RDFType).Ptr(), model.Write.IRI().Ptr())); got != 15 {
		t.Errorf("activities after Close = %d, want 15", got)
	}
}

func TestTrackerChargesClock(t *testing.T) {
	clock := simclock.NewClock()
	cost := simclock.Default()
	tr := NewTracker(DefaultConfig(), nil, 0).WithClock(clock, cost)
	tr.RegisterUser("u")
	if clock.Now() == 0 {
		t.Fatal("tracking charged no time")
	}
	before := clock.Now()
	tr.TrackIO(model.Write, "write", rdf.Term{}, rdf.Term{}, 0, 0)
	if clock.Now() <= before {
		t.Error("TrackIO charged no time")
	}
	// Disabled classes charge nothing (the overhead knob of the paper).
	cfg := ScenarioConfig(false, "Create")
	tr2 := NewTracker(cfg, nil, 0).WithClock(clock, cost)
	before = clock.Now()
	tr2.TrackIO(model.Read, "read", rdf.Term{}, rdf.Term{}, 0, 0)
	if clock.Now() != before {
		t.Error("disabled class charged time")
	}
}

func TestTrackerConcurrentUse(t *testing.T) {
	tr := NewTracker(DefaultConfig(), nil, 0)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			prog := tr.RegisterProgram("p", rdf.Term{})
			for i := 0; i < 50; i++ {
				obj := tr.TrackDataObject(model.Dataset, "/f/d", "", rdf.Term{}, prog)
				tr.TrackIO(model.Write, "H5Dwrite", obj, prog, 0, 0)
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	acts := tr.Graph().Find(nil, rdf.IRI(rdf.RDFType).Ptr(), model.Write.IRI().Ptr())
	if len(acts) != 400 {
		t.Errorf("activities = %d, want 400", len(acts))
	}
}

func TestTrackerCloseIdempotent(t *testing.T) {
	store := newTestStore(t)
	tr := NewTracker(DefaultConfig(), store, 0)
	tr.RegisterUser("u")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second Close errored: %v", err)
	}
}

func TestNTriplesStoreFormat(t *testing.T) {
	view := vfs.NewStore().NewView()
	store, _ := NewStore(VFSBackend{View: view}, "/prov", FormatNTriples)
	tr := NewTracker(DefaultConfig(), store, 7)
	tr.RegisterUser("u")
	tr.Close()
	if !view.Exists("/prov/prov_p000007.nt") {
		t.Error(".nt file not written")
	}
	g, err := store.Merge()
	if err != nil || g.Len() == 0 {
		t.Errorf("merge over ntriples failed: %v", err)
	}
}

func TestOSBackend(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(OSBackend{}, dir+"/prov", FormatTurtle)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(DefaultConfig(), store, 0)
	tr.RegisterUser("os-user")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := store.Merge()
	if err != nil || g.Len() == 0 {
		t.Fatalf("OS-backend merge: %d triples, %v", g.Len(), err)
	}
	n, err := store.TotalBytes()
	if err != nil || n == 0 {
		t.Errorf("TotalBytes = %d, %v", n, err)
	}
}
