package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/rdf/segcodec"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// newBinaryVFSStore opens an empty binary-format store on a fresh VFS view.
func newBinaryVFSStore(t *testing.T) *Store {
	t.Helper()
	store, err := NewStore(VFSBackend{View: vfs.NewStore().NewView()}, "/prov", FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// matchSubset asserts every triple of full matching the pattern is present in
// pruned — the soundness contract of statistics pushdown: pruning may drop
// whole segments, never answers.
func matchSubset(t *testing.T, full, pruned *rdf.Graph, p PrunePattern, label string) {
	t.Helper()
	missing := 0
	full.ForEachMatch(p.S, p.P, p.O, func(tr rdf.Triple) bool {
		if !pruned.Has(tr) {
			missing++
			if missing <= 3 {
				t.Errorf("%s: pruned merge lost %v", label, tr)
			}
		}
		return true
	})
	if missing > 0 {
		t.Fatalf("%s: %d matching triples missing from pruned merge", label, missing)
	}
}

// TestPackPreservesHeadsAndMerge: leveled compaction relocates members
// verbatim, so the merged graph, the audit, and chain heads recorded BEFORE
// packing all survive PackSegments — at level 1 and again when level 2 folds
// the level-1 pack.
func TestPackPreservesHeadsAndMerge(t *testing.T) {
	store := newBinaryVFSStore(t)
	for pid := 0; pid < 3; pid++ {
		smallHistory(t, store, pid)
	}
	before, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	want := ntBytes(t, before)
	heads := mustVerify(t, store).Heads

	for i, level := range []int{1, 2} {
		name, err := store.PackSegments(level)
		if err != nil {
			t.Fatalf("PackSegments(%d): %v", level, err)
		}
		if lvl, _, ok := parsePackName(name); !ok || lvl != level {
			t.Fatalf("pack name %q does not parse back to level %d", name, level)
		}
		rep := mustVerify(t, store)
		if !rep.Clean() {
			t.Fatalf("after PackSegments(%d): %v", level, rep.Defects)
		}
		if rep.Packs != 1 {
			t.Fatalf("after PackSegments(%d): Packs=%d, want 1", level, rep.Packs)
		}
		anchored, err := store.VerifyAgainst(heads)
		if err != nil {
			t.Fatal(err)
		}
		if !anchored.Clean() {
			t.Fatalf("pre-pack heads rejected after PackSegments(%d): %v", level, anchored.Defects)
		}
		g, err := store.MergeParallel(1 + i*3)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, ntBytes(t, g)) {
			t.Fatalf("merged graph changed across PackSegments(%d)", level)
		}
	}

	// Loose segments are gone; the canonical anchors stay loose.
	files, err := store.subgraphFiles()
	if err != nil {
		t.Fatal(err)
	}
	packs, canonicals := 0, 0
	for _, f := range files {
		switch {
		case strings.HasSuffix(f, segcodec.Pack.Ext()):
			packs++
		case strings.Contains(f, ".seg"):
			t.Fatalf("loose segment survived packing: %s", f)
		default:
			canonicals++
		}
	}
	if packs != 1 || canonicals != 3 {
		t.Fatalf("layout after packing: %d packs, %d canonicals (want 1, 3): %v", packs, canonicals, files)
	}

	levels, err := store.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 2 || levels[0].Level != 0 || levels[1].Level != 2 {
		t.Fatalf("Levels() = %+v, want L0 + L2", levels)
	}
}

// TestCompactFoldsPacks: Compact is the inverse door of leveled compaction —
// it folds pack members back into canonical files, removes every pack, and
// preserves the merged graph and a clean audit.
func TestCompactFoldsPacks(t *testing.T) {
	store := newBinaryVFSStore(t)
	for pid := 0; pid < 3; pid++ {
		smallHistory(t, store, pid)
	}
	before, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.PackSegments(1); err != nil {
		t.Fatal(err)
	}
	if err := store.Compact(); err != nil {
		t.Fatalf("Compact on packed store: %v", err)
	}
	files, err := store.subgraphFiles()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.HasSuffix(f, segcodec.Pack.Ext()) {
			t.Fatalf("pack survived Compact: %s", f)
		}
		if strings.Contains(f, ".seg") {
			t.Fatalf("segment survived Compact: %s", f)
		}
	}
	after, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ntBytes(t, before), ntBytes(t, after)) {
		t.Fatal("Compact of a packed store changed the merged graph")
	}
	if rep := mustVerify(t, store); !rep.Clean() {
		t.Fatalf("post-Compact audit: %v", rep.Defects)
	}
}

// TestMixedFormatPruningNeverDropsResults is the always-match regression for
// stats-less units (satellite of the pushdown design): a store mixing text
// segments, legacy binary files with the stats frame stripped, and new
// stats-carrying binary files must answer every pattern identically with and
// without pruning — stats-less units always match, so they are always
// decoded. The same holds after the mixed population is packed.
func TestMixedFormatPruningNeverDropsResults(t *testing.T) {
	// Text store (pids 0,1) and binary store (pids 2,3), disjoint names,
	// merged into one directory; pid 2's files get their stats frames
	// stripped to fake a pre-stats binary store.
	text, err := NewStore(VFSBackend{View: vfs.NewStore().NewView()}, "/prov", FormatNTriples)
	if err != nil {
		t.Fatal(err)
	}
	smallHistory(t, text, 0)
	smallHistory(t, text, 1)
	binary := newBinaryVFSStore(t)
	smallHistory(t, binary, 2)
	smallHistory(t, binary, 3)

	combined := map[string][]byte{}
	statsless := 0
	for n, data := range storeFiles(t, text) {
		combined[n] = data
		if !strings.HasSuffix(n, chainSidecarExt) {
			statsless++
		}
	}
	for n, data := range storeFiles(t, binary) {
		if strings.Contains(n, "p000002") {
			// Full legacy treatment: no stats, no seal, no sidecar — a store
			// written before both the stats and the integrity layers.
			if strings.HasSuffix(n, chainSidecarExt) {
				continue
			}
			data = segcodec.StripChain(segcodec.StripStats(data))
			statsless++
		}
		combined[n] = data
	}
	store := openDir(t, combined)

	full, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}

	user := rdf.IRI(model.ProvIONS + "user/alice")
	patterns := []PrunePattern{
		{},                                  // match-all
		{O: &user},                          // object present in every pid's files
		{S: &user},                          // subject present everywhere
		{S: termPtr(rdf.IRI("urn:absent"))}, // matches nothing
		{P: termPtr(rdf.IRI(model.AssociatedWith.IRI().Value))}, // predicate hint
	}
	check := func(stage string) {
		t.Helper()
		for i, p := range patterns {
			pruned, scan, err := store.MergePruned(&SegmentPruner{Patterns: []PrunePattern{p}}, 1)
			if err != nil {
				t.Fatalf("%s pattern %d: %v", stage, i, err)
			}
			matchSubset(t, full, pruned, p, fmt.Sprintf("%s pattern %d", stage, i))
			// LOOSE stats-less units can never be skipped, no matter the
			// pattern. (Once packed, the pack header carries authoritative
			// stats computed from the members' actual contents, so even
			// stats-less members may be skipped through a whole-pack prune.)
			if stage == "loose" && scan.Decoded < statsless {
				t.Fatalf("%s pattern %d: decoded %d < %d stats-less units — a stats-less unit was pruned",
					stage, i, scan.Decoded, statsless)
			}
		}
		// And the nil pruner is exactly the exhaustive merge.
		all, scan, err := store.MergePruned(nil, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ntBytes(t, full), ntBytes(t, all)) {
			t.Fatalf("%s: nil-pruner merge differs from exhaustive", stage)
		}
		if scan.Skipped != 0 {
			t.Fatalf("%s: nil pruner skipped %d units", stage, scan.Skipped)
		}
	}
	check("loose")

	if _, err := store.PackSegments(1); err != nil {
		t.Fatalf("PackSegments on mixed store: %v", err)
	}
	check("packed")
}

func termPtr(t rdf.Term) *rdf.Term { return &t }

// TestPrunedVsExhaustiveProperty is the randomized equivalence property over
// mixed pack + loose layouts: for arbitrary graphs scattered across delta
// segments, (a) a nil-pruner MergePruned equals the exhaustive merge, (b) for
// random patterns the pruned merge retains every matching triple, and (c) the
// pruned lineage fixpoint is triple-identical to reducing the full graph.
func TestPrunedVsExhaustiveProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		store := newBinaryVFSStore(t)

		node := func() rdf.Term { return rdf.IRI(fmt.Sprintf("urn:n%d", rng.Intn(40))) }
		pred := func() rdf.Term {
			// Mostly lineage relations so ReduceLineage has edges to walk.
			rels := model.AllRelations()
			if rng.Intn(4) == 0 {
				return rdf.IRI(fmt.Sprintf("urn:p%d", rng.Intn(6)))
			}
			return rels[rng.Intn(len(rels))].IRI()
		}
		writeSegments := func(pidBase, nSegs int) {
			for s := 0; s < nSegs; s++ {
				n := 1 + rng.Intn(8)
				triples := make([]rdf.Triple, 0, n)
				for i := 0; i < n; i++ {
					o := node()
					if rng.Intn(5) == 0 {
						o = rdf.Literal(fmt.Sprintf("v%d", rng.Intn(10)))
					}
					triples = append(triples, rdf.Triple{S: node(), P: pred(), O: o})
				}
				if err := store.WriteDeltaSegment(pidBase+s%3, s/3, triples); err != nil {
					t.Fatal(err)
				}
			}
		}

		// First wave of segments gets packed; the second stays loose, so every
		// read crosses pack members and loose files.
		writeSegments(0, 6+rng.Intn(6))
		if _, err := store.PackSegments(1); err != nil {
			t.Fatalf("seed %d: PackSegments: %v", seed, err)
		}
		writeSegments(10, 3+rng.Intn(4))

		full, err := store.Merge()
		if err != nil {
			t.Fatal(err)
		}
		exhaustive, scan, err := store.MergePruned(nil, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ntBytes(t, full), ntBytes(t, exhaustive)) {
			t.Fatalf("seed %d: nil-pruner merge differs from exhaustive", seed)
		}
		if scan.Packs != 1 || scan.Units < 9 {
			t.Fatalf("seed %d: scan %+v does not cover pack + loose layout", seed, scan)
		}

		for trial := 0; trial < 8; trial++ {
			var p PrunePattern
			if rng.Intn(2) == 0 {
				p.S = termPtr(node())
			}
			if rng.Intn(2) == 0 {
				p.P = termPtr(pred())
			}
			if rng.Intn(3) == 0 {
				p.O = termPtr(node())
			}
			pruned, _, err := store.MergePruned(&SegmentPruner{Patterns: []PrunePattern{p}}, 1+rng.Intn(3))
			if err != nil {
				t.Fatalf("seed %d trial %d: %v", seed, trial, err)
			}
			matchSubset(t, full, pruned, p, fmt.Sprintf("seed %d trial %d", seed, trial))
		}

		for trial := 0; trial < 4; trial++ {
			roots := []rdf.Term{node()}
			if rng.Intn(2) == 0 {
				roots = append(roots, node())
			}
			hops := 1 + rng.Intn(3)
			want := ReduceLineage(full, roots, hops)
			got, lscan, err := store.ReduceLineagePruned(roots, hops, 1+rng.Intn(3))
			if err != nil {
				t.Fatalf("seed %d lineage %d: %v", seed, trial, err)
			}
			if !bytes.Equal(ntBytes(t, want), ntBytes(t, got)) {
				t.Fatalf("seed %d lineage %d (roots=%v hops=%d): pruned lineage differs from full reduction",
					seed, trial, roots, hops)
			}
			if lscan.Decoded > lscan.Units {
				t.Fatalf("seed %d lineage %d: scan accounting broken: %+v", seed, trial, lscan)
			}
		}
	}
}

// TestPackCorruptionMatrix flips one bit at every byte offset of a pack file
// and asserts the system never returns a wrong answer: each flip either
// surfaces a classified decode error (ErrCorrupt/ErrTruncated) from the read
// path, or — when the flip lands in bytes the read does not interpret — the
// merge is byte-identical to the intact baseline. The audit must flag every
// flip that the read path also rejects.
func TestPackCorruptionMatrix(t *testing.T) {
	store := newBinaryVFSStore(t)
	smallHistory(t, store, 0)
	smallHistory(t, store, 1)
	packFile, err := store.PackSegments(1)
	if err != nil {
		t.Fatal(err)
	}
	clean := storeFiles(t, store)
	baseline := ntBytes(t, mustMerge(t, store))

	data := clean[packFile]
	if len(data) == 0 {
		t.Fatalf("pack file %s missing from snapshot", packFile)
	}
	silentWrong, unclassified := 0, 0
	for i := range data {
		mut := make(map[string][]byte, len(clean))
		for n, d := range clean {
			mut[n] = d
		}
		flipped := append([]byte(nil), data...)
		flipped[i] ^= 1 << (i % 8)
		mut[packFile] = flipped
		tstore := openDir(t, mut)

		g, _, err := tstore.MergePruned(nil, 1)
		if err != nil {
			if !errors.Is(err, segcodec.ErrCorrupt) && !errors.Is(err, segcodec.ErrTruncated) {
				unclassified++
				if unclassified <= 3 {
					t.Errorf("flip at %d: unclassified error %v", i, err)
				}
			}
			continue
		}
		if !bytes.Equal(baseline, ntBytes(t, g)) {
			silentWrong++
			if silentWrong <= 3 {
				t.Errorf("flip at %d: merge succeeded with DIFFERENT triples", i)
			}
		}
	}
	if silentWrong > 0 || unclassified > 0 {
		t.Fatalf("%d silent wrong answers, %d unclassified errors over %d flips",
			silentWrong, unclassified, len(data))
	}
}

// TestStatsFrameCorruptionMatrix flips every byte of a LOOSE segment's stats
// frame region: the pruner-facing reader (StatsOf) must degrade to
// always-match (ok=false) or — if the damaged frame still parses — the strict
// decode must reject the segment as ErrCorrupt. A damaged stats frame must
// never silently mis-prune: a pruned merge for a pattern matching the
// segment's triples either errors or still returns them all.
func TestStatsFrameCorruptionMatrix(t *testing.T) {
	store := newBinaryVFSStore(t)
	triples := []rdf.Triple{
		{S: rdf.IRI("urn:a"), P: rdf.IRI("urn:p"), O: rdf.IRI("urn:b")},
		{S: rdf.IRI("urn:b"), P: rdf.IRI("urn:p"), O: rdf.Literal("x")},
	}
	if err := store.WriteDeltaSegment(0, 0, triples); err != nil {
		t.Fatal(err)
	}
	files, err := store.subgraphFiles()
	if err != nil {
		t.Fatal(err)
	}
	var segPath string
	for _, f := range files {
		if strings.Contains(f, ".seg") {
			segPath = f
		}
	}
	data, err := store.backend.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	stripped := segcodec.StripStats(data)
	frameLen := len(data) - len(stripped)
	if frameLen <= 0 {
		t.Fatalf("segment carries no stats frame (%d vs %d bytes)", len(data), len(stripped))
	}
	// StripStats splices the frame out, so the frame starts where data and
	// stripped first diverge and runs frameLen bytes (a chain frame may
	// follow it).
	statsOff := 0
	for statsOff < len(stripped) && data[statsOff] == stripped[statsOff] {
		statsOff++
	}

	subj := rdf.IRI("urn:a")
	pruner := &SegmentPruner{Patterns: []PrunePattern{{S: &subj}}}
	for i := statsOff; i < statsOff+frameLen; i++ {
		for bit := 0; bit < 8; bit++ {
			flipped := append([]byte(nil), data...)
			flipped[i] ^= 1 << bit
			if err := store.backend.WriteFile(segPath, flipped); err != nil {
				t.Fatal(err)
			}
			g, _, err := store.MergePruned(pruner, 1)
			if err != nil {
				if !errors.Is(err, segcodec.ErrCorrupt) && !errors.Is(err, segcodec.ErrTruncated) {
					t.Fatalf("flip %d/bit %d: unclassified error %v", i, bit, err)
				}
				continue
			}
			for _, tr := range triples {
				if tr.S == subj && !g.Has(tr) {
					t.Fatalf("flip %d/bit %d: damaged stats frame silently dropped %v", i, bit, tr)
				}
			}
		}
	}
	if err := store.backend.WriteFile(segPath, data); err != nil {
		t.Fatal(err)
	}
}

func mustMerge(t *testing.T, store *Store) *rdf.Graph {
	t.Helper()
	g, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPackedStoreQueryAfterCrashDuplicate: a crash between the pack write and
// source removal leaves members duplicated as loose files; reads and audits
// must treat the byte-identical pair as one unit and stay clean, and a re-run
// of PackSegments converges.
func TestPackedStoreQueryAfterCrashDuplicate(t *testing.T) {
	store := newBinaryVFSStore(t)
	smallHistory(t, store, 0)
	before := storeFiles(t, store)
	baseline := ntBytes(t, mustMerge(t, store))
	packFile, err := store.PackSegments(1)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the crash state: pack present AND sources still loose.
	crashed := make(map[string][]byte, len(before)+1)
	for n, d := range before {
		crashed[n] = d
	}
	pdata, err := store.backend.ReadFile("/prov/" + packFile)
	if err != nil {
		t.Fatal(err)
	}
	crashed[packFile] = pdata
	cstore := openDir(t, crashed)
	if rep := mustVerify(t, cstore); !rep.Clean() {
		t.Fatalf("crash-duplicated store audits dirty: %v", rep.Defects)
	}
	if got := ntBytes(t, mustMerge(t, cstore)); !bytes.Equal(baseline, got) {
		t.Fatal("crash-duplicated store merges differently (duplicates double-counted?)")
	}
	if _, err := cstore.PackSegments(2); err != nil {
		t.Fatalf("re-packing the crash state: %v", err)
	}
	if rep := mustVerify(t, cstore); !rep.Clean() {
		t.Fatalf("after re-pack: %v", rep.Defects)
	}
	if got := ntBytes(t, mustMerge(t, cstore)); !bytes.Equal(baseline, got) {
		t.Fatal("re-pack changed the merged graph")
	}
}
