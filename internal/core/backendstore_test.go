package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"github.com/hpc-io/prov-io/internal/backend"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// This file runs the integrity machinery of PR 6 — the tamper/truncation
// matrix, the crash-consistency sweep — over the pluggable backends, and pins
// the mount layer's core promise: a store spanning backends is
// byte-equivalent to the same history in a plain directory, and Compact
// doubles as cross-backend migration.

// openSnapshotOn materializes a file snapshot on a fresh backend of the
// given kind and opens it with format auto-detection, the cross-backend
// analogue of openDir.
func openSnapshotOn(t *testing.T, kind string, files map[string][]byte) *Store {
	t.Helper()
	var b Backend
	switch kind {
	case "vfs":
		b = VFSBackend{View: vfs.NewStore().NewView()}
	case "mem":
		b = backend.NewMem()
	case "file":
		a, err := backend.OpenArchive(filepath.Join(t.TempDir(), "store.pvs"))
		if err != nil {
			t.Fatal(err)
		}
		b = a
	case "mount":
		m, err := backend.NewMount("/prov",
			backend.Tier{Name: "hot", Hot: true, B: backend.NewMem(), Root: "/prov"},
			backend.Tier{Name: "cold", Hot: false, B: backend.NewMem(), Root: "/prov"})
		if err != nil {
			t.Fatal(err)
		}
		b = m
	default:
		t.Fatalf("unknown backend kind %q", kind)
	}
	if err := b.MkdirAll("/prov"); err != nil {
		t.Fatal(err)
	}
	for n, data := range files {
		if err := b.WriteFile("/prov/"+n, data); err != nil {
			t.Fatal(err)
		}
	}
	store, err := NewStore(b, "/prov", FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// TestVerifyMatrixAcrossBackends re-runs the single-byte tamper and
// truncation matrices with the store held by each pluggable backend. The
// same damage must be detected regardless of substrate — verification reads
// only through the StoreBackend interface, and this pins that. The in-memory
// substrates run the exhaustive per-byte matrix; the file backend (real disk
// I/O per snapshot) samples several offsets per file, every file covered.
func TestVerifyMatrixAcrossBackends(t *testing.T) {
	for _, format := range []Format{FormatTurtle, FormatBinary} {
		src, err := NewStore(VFSBackend{View: vfs.NewStore().NewView()}, "/prov", format)
		if err != nil {
			t.Fatal(err)
		}
		smallHistory(t, src, 0)
		clean := storeFiles(t, src)
		srcRep := mustVerify(t, src)
		heads := srcRep.Heads

		for _, kind := range []string{"mem", "file", "mount"} {
			t.Run(format.String()+"/"+kind, func(t *testing.T) {
				// The untouched snapshot verifies clean with identical heads:
				// chain digests depend on file bytes, never on the substrate.
				rep := mustVerify(t, openSnapshotOn(t, kind, clean))
				if !rep.Clean() {
					t.Fatalf("clean snapshot has defects on %s: %v", kind, rep.Defects)
				}
				if string(rep.FormatHeads()) != string(srcRep.FormatHeads()) {
					t.Fatalf("heads differ across backends:\n%s\nvs\n%s",
						rep.FormatHeads(), srcRep.FormatHeads())
				}

				offsets := func(n int) []int {
					if kind != "file" {
						out := make([]int, n)
						for i := range out {
							out[i] = i
						}
						return out
					}
					set := map[int]bool{0: true, n / 3: true, n / 2: true, 2 * n / 3: true, n - 1: true}
					out := make([]int, 0, len(set))
					for i := range set {
						if i >= 0 && i < n {
							out = append(out, i)
						}
					}
					return out
				}

				mutate := func(name string, data []byte) map[string][]byte {
					mut := make(map[string][]byte, len(clean))
					for n, d := range clean {
						mut[n] = d
					}
					mut[name] = data
					return mut
				}

				for name, data := range clean {
					for _, i := range offsets(len(data)) {
						flipped := append([]byte(nil), data...)
						flipped[i] ^= 1 << (i % 8)
						if rep := mustVerify(t, openSnapshotOn(t, kind, mutate(name, flipped))); rep.Clean() {
							t.Errorf("%s: flip of %s byte %d verified clean", kind, name, i)
						}

						tstore := openSnapshotOn(t, kind, mutate(name, append([]byte(nil), data[:i]...)))
						if rep := mustVerify(t, tstore); rep.Clean() {
							anchored, err := tstore.VerifyAgainst(heads)
							if err != nil {
								t.Fatal(err)
							}
							if anchored.Clean() {
								t.Errorf("%s: truncating %s to %d bytes verified clean even against recorded heads", kind, name, i)
							}
						}
					}
				}
			})
		}
	}
}

// TestCrashSweepBackends runs the full crash-consistency sweep with each
// pluggable substrate under the fault injector. The file sweep reopens the
// on-disk archive for every recovery, putting journal replay inside the
// crash loop; the mount sweep exercises tier routing and fallback at every
// crash point.
func TestCrashSweepBackends(t *testing.T) {
	cases := []struct {
		kind   string
		format Format
	}{
		{"mem", FormatBinary},
		{"mem", FormatTurtle},
		{"file", FormatBinary},
		{"mount", FormatBinary},
		{"mount", FormatTurtle},
	}
	for _, c := range cases {
		t.Run(c.kind+"/"+c.format.String(), func(t *testing.T) {
			rep, err := RunCrashSweep(CrashSweepConfig{Seed: 1, Format: c.format, Torn: true, Backend: c.kind})
			if err != nil {
				t.Fatal(err)
			}
			t.Log(rep)
			for _, v := range rep.Violations {
				t.Error(v)
			}
			if rep.Points == 0 || rep.Recovered == 0 {
				t.Fatalf("sweep exercised %d points, recovered %d", rep.Points, rep.Recovered)
			}
			if rep.Recovered+rep.Rejected != rep.Points-len(rep.Violations) {
				t.Fatalf("accounting: %s", rep)
			}
		})
	}
}

// mergedNT renders a store's merged graph as canonical N-Triples bytes — the
// byte-level fingerprint the parity tests compare (what provio-query and
// provio-export emit).
func mergedNT(t *testing.T, s *Store) []byte {
	t.Helper()
	g, err := s.Merge()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rdf.WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMountStoreParity is the mount-spanning round-trip property: the same
// workload written through a mounted store (hot deltas in mem, compacted
// history in a .pvs archive) and through a plain directory store must merge
// to byte-identical output — before Compact, after Compact (which drains the
// hot tier into the archive), and when the archive is reopened cold.
func TestMountStoreParity(t *testing.T) {
	for _, format := range []Format{FormatTurtle, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			plain, err := NewStore(VFSBackend{View: vfs.NewStore().NewView()}, "/prov", format)
			if err != nil {
				t.Fatal(err)
			}
			pvs := filepath.Join(t.TempDir(), "cold.pvs")
			mounted, err := OpenStore("mount:hot=mem:,cold=file:"+pvs, format)
			if err != nil {
				t.Fatal(err)
			}
			for pid := 0; pid < 2; pid++ {
				smallHistory(t, plain, pid)
				smallHistory(t, mounted, pid)
			}

			want := mergedNT(t, plain)
			if got := mergedNT(t, mounted); !bytes.Equal(got, want) {
				t.Fatal("mounted store merge differs from plain store before Compact")
			}
			rep := mustVerify(t, mounted)
			if !rep.Clean() {
				t.Fatalf("mounted store defects: %v", rep.Defects)
			}

			if err := mounted.Compact(); err != nil {
				t.Fatalf("Compact on mounted store: %v", err)
			}
			if got := mergedNT(t, mounted); !bytes.Equal(got, want) {
				t.Fatal("mounted store merge differs after Compact")
			}

			// After Compact every segment is folded: the whole history must
			// now live in the cold archive, readable on its own.
			cold, err := OpenStore("file:"+pvs, format)
			if err != nil {
				t.Fatal(err)
			}
			if got := mergedNT(t, cold); !bytes.Equal(got, want) {
				t.Fatal("cold archive alone does not reproduce the merged history")
			}
			crep := mustVerify(t, cold)
			if !crep.Clean() {
				t.Fatalf("cold archive defects: %v", crep.Defects)
			}
		})
	}
}

// TestCompactMigratesBetweenBackends drives a history between substrates in
// both directions with nothing but Compact on a mount: dir -> .pvs archive,
// then archive -> a fresh dir. At every stage the store verifies clean and
// the chain heads survive unchanged — migration moves bytes, never rewrites
// history it wasn't asked to (the canonical files' digests are the heads).
func TestCompactMigratesBetweenBackends(t *testing.T) {
	oldDir := filepath.Join(t.TempDir(), "old")
	src, err := OpenStore("dir:"+oldDir, FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	smallHistory(t, src, 0)
	// Compact first so the source is a canonical-only store; its head then
	// must survive both migrations byte-for-byte.
	if err := src.Compact(); err != nil {
		t.Fatal(err)
	}
	srcRep := mustVerify(t, src)
	heads := srcRep.Heads
	_ = heads
	want := mergedNT(t, src)

	// dir -> archive: mount the old dir as hot (segments' home; there are
	// none left) and the archive as cold, and let Compact re-home the
	// misplaced canonicals.
	pvs := filepath.Join(t.TempDir(), "hist.pvs")
	mig, err := OpenStore("mount:hot=dir:"+oldDir+",cold=file:"+pvs, FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig.Compact(); err != nil {
		t.Fatalf("migrating Compact: %v", err)
	}
	// The old directory is drained and the archive alone carries the store.
	if names, err := (backend.Dir{}).List(oldDir); err != nil || len(names) != 0 {
		t.Fatalf("old dir still holds %v (err %v) after migration", names, err)
	}
	arch, err := OpenStore("file:"+pvs, FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	rep := mustVerify(t, arch)
	if !rep.Clean() {
		t.Fatalf("migrated archive defects: %v", rep.Defects)
	}
	if string(rep.FormatHeads()) != string(srcRep.FormatHeads()) {
		t.Fatalf("migration changed chain heads:\n%s\nvs\n%s", rep.FormatHeads(), srcRep.FormatHeads())
	}
	if got := mergedNT(t, arch); !bytes.Equal(got, want) {
		t.Fatal("migrated archive merges differently")
	}

	// archive -> dir: the reverse mount moves it back onto a directory.
	newDir := filepath.Join(t.TempDir(), "new")
	back, err := OpenStore("mount:hot=file:"+pvs+",cold=dir:"+newDir, FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Compact(); err != nil {
		t.Fatalf("reverse migrating Compact: %v", err)
	}
	dst, err := OpenStore("dir:"+newDir, FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	rep = mustVerify(t, dst)
	if !rep.Clean() {
		t.Fatalf("reverse-migrated dir defects: %v", rep.Defects)
	}
	if string(rep.FormatHeads()) != string(srcRep.FormatHeads()) {
		t.Fatalf("reverse migration changed chain heads:\n%s\nvs\n%s", rep.FormatHeads(), srcRep.FormatHeads())
	}
	if got := mergedNT(t, dst); !bytes.Equal(got, want) {
		t.Fatal("reverse-migrated dir merges differently")
	}
}
