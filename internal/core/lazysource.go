package core

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"sync"

	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/rdf/segcodec"
)

// Out-of-core read path (DESIGN.md "Out-of-core execution"): a LazyView is a
// long-lived handle on the store's layout at open time that materializes
// decoded units on demand through the byte-budgeted cache in segcache.go,
// and LazySource federates the per-unit snapshots behind the sparql.Source
// surface — so the unchanged query engine runs over a store whose resident
// decoded set is bounded by the cache budget, with statistics pushdown
// deciding which units are touched at all and the cache deciding which of
// the touched ones stay decoded.
//
// ID bridging: every unit decodes into its own graph with a private, dense
// local term-ID space. At decode time the unit's terms are interned into the
// view's shared dictionary (rdf.SharedDict, append-only), producing a
// local->global slice and a global->local map. Scans emit global IDs, query
// constants resolve to global IDs, and joins across units just work — the
// executor never learns the store is not one graph. Because interning
// identical bytes against an append-only dictionary is deterministic, an
// evicted unit that reloads resumes serving exactly the same global IDs.

// ErrStaleView is the classification for a lazy read that found the store
// layout changed under an open view — a Compact rewrote a canonical file, a
// PackSegments replaced the packs, or a file vanished. A view that observes
// it is permanently stale: reopen the store with OpenLazy for the new
// layout. Reads that race such maintenance either see the old consistent
// layout (served from cache and digest-verified re-reads) or fail with an
// error matching this sentinel — never a partial mixture of generations.
var ErrStaleView = errors.New("core: store layout changed under lazy view")

// lazyUnit is one decodable unit of the view: its open-time identity
// (scanUnit metadata plus the pinned content key) and the per-unit memo
// state that must survive eviction so morsel offsets stay stable.
type lazyUnit struct {
	u         scanUnit // data dropped after open; stats retained for pruning
	key       unitKey
	packSize  int64              // container size recorded at open (pack members only)
	packStats *segcodec.SegStats // pack-level stats for whole-pack pruning (nil for loose)

	mu sync.Mutex
	// scanLens memoizes global-pattern -> unit morsel-domain size. It lives
	// on the unit, not the cached decode, because the parallel executor
	// partitions with ScanLen and later scans morsels with ScanRange: the
	// domain must not change in between even if the decode was evicted and
	// rebuilt. (Rebuilds are deterministic, so the memo is consistency
	// insurance plus a decode-free fast path for repeated patterns.)
	scanLens map[[3]rdf.ID]int
	decBytes int64 // decoded-footprint estimate, recorded on first decode
}

// LazyView is the out-of-core read handle returned by Store.OpenLazy: the
// store's unit layout pinned at open time, a shared interning dictionary,
// and the bounded decoded-unit cache. Views are safe for concurrent use; a
// staleness or corruption error observed by any read sticks (Err) and fails
// the queries that raced it.
type LazyView struct {
	store *Store
	cfg   CacheConfig
	dict  *rdf.SharedDict
	cache *segCache
	units []*lazyUnit
	base  ScanStats // file/pack listing counts from open

	errMu sync.Mutex
	err   error
}

// OpenLazy pins the store's current layout into a LazyView without decoding
// anything. Loose files are read once to record their content digest (their
// bytes are then dropped); packs contribute only their headers, fetched via
// range reads on capable backends. The returned view serves queries through
// Source and lineage through ReduceLineagePruned with at most cfg.MaxBytes
// of decoded units resident.
func (s *Store) OpenLazy(cfg CacheConfig) (*LazyView, error) {
	var st ScanStats
	units, err := s.scanUnits(nil, &st)
	if err != nil {
		return nil, err
	}
	v := &LazyView{
		store: s,
		cfg:   cfg,
		dict:  rdf.NewSharedDict(),
		cache: newSegCache(cfg.MaxBytes),
		base:  st,
	}
	type packMeta struct {
		size  int64
		stats *segcodec.SegStats
	}
	packs := make(map[string]packMeta)
	for i := range units {
		u := units[i]
		lu := &lazyUnit{u: u}
		if u.member == "" {
			lu.key = unitKey{path: u.path, size: u.size, digest: fileDigest(u.data)}
		} else {
			pm, ok := packs[u.path]
			if !ok {
				// readPackHeader verifies the file's size against the header's
				// WantSize, so this doubles as the open-time size recording.
				h, _, err := s.readPackHeader(u.path)
				if err != nil {
					return nil, err
				}
				pm = packMeta{size: h.WantSize}
				if h.HasStats {
					hs := h.Stats
					pm.stats = &hs
				}
				packs[u.path] = pm
			}
			lu.packSize = pm.size
			lu.packStats = pm.stats
			lu.key = memberKey(u.path, u.member, u.off, u.size, pm.size)
		}
		lu.u.data = nil // the cache re-fetches on demand; the view pins no bytes
		v.units = append(v.units, lu)
	}
	return v, nil
}

// memberKey derives a pack member's cache key. Packs are written once and
// never rewritten in place, so (path, container size, member extent) pins
// the member; a pack replaced by a different-size file fails the open-time
// size check on fetch, and a same-size replacement is caught by the
// member's own CRC framing at decode (see DESIGN.md for the residual
// name-reuse hazard).
func memberKey(path, member string, off, size, packSize int64) unitKey {
	h := sha256.New()
	h.Write([]byte("pack\x00"))
	h.Write([]byte(path))
	h.Write([]byte{0})
	h.Write([]byte(member))
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(off))
	binary.LittleEndian.PutUint64(buf[8:], uint64(size))
	binary.LittleEndian.PutUint64(buf[16:], uint64(packSize))
	h.Write(buf[:])
	k := unitKey{path: path, member: member, off: off, size: size}
	h.Sum(k.digest[:0])
	return k
}

// Err returns the first staleness/corruption error any read of the view
// observed, or nil. Source scans cannot return errors through the
// sparql.Source surface, so wrappers must check Err after evaluating and
// discard results when it is set.
func (v *LazyView) Err() error {
	v.errMu.Lock()
	defer v.errMu.Unlock()
	return v.err
}

func (v *LazyView) fail(err error) {
	v.errMu.Lock()
	if v.err == nil {
		v.err = err
	}
	v.errMu.Unlock()
}

// Stats returns the view's cache counters.
func (v *LazyView) Stats() CacheStats { return v.cache.stats() }

// loadUnit returns lu decoded, serving from the cache when resident.
func (v *LazyView) loadUnit(lu *lazyUnit) (*decodedUnit, error) {
	return v.cache.get(lu.key, func() (*decodedUnit, error) {
		data, err := v.fetchVerified(lu)
		if err != nil {
			return nil, err
		}
		g := rdf.NewGraph()
		su := lu.u
		su.data = data
		if err := su.decodeInto(v.store, g); err != nil {
			return nil, err
		}
		snap := g.Snapshot()
		toGlobal, toLocal := v.dict.RemapSnapshot(snap)
		du := &decodedUnit{snap: snap, toGlobal: toGlobal, toLocal: toLocal}
		du.bytes = decodedBytesEstimate(snap, len(toLocal))
		lu.mu.Lock()
		if lu.decBytes == 0 {
			lu.decBytes = du.bytes
		}
		lu.mu.Unlock()
		return du, nil
	})
}

// fetchVerified re-reads the unit's bytes and proves they are the bytes the
// view was opened over: loose files must digest-match (Compact rewrites
// canonicals in place), pack containers must still have their open-time
// size (packs are write-once; a different size means replacement). A
// mismatch or a vanished file classifies as ErrStaleView.
func (v *LazyView) fetchVerified(lu *lazyUnit) ([]byte, error) {
	if lu.u.member == "" {
		data, err := v.store.backend.ReadFile(lu.u.path)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil, fmt.Errorf("core: %s vanished under lazy view: %w (%v)", lu.u.path, ErrStaleView, err)
			}
			return nil, err
		}
		if fileDigest(data) != lu.key.digest {
			return nil, fmt.Errorf("core: %s rewritten under lazy view: %w", lu.u.path, ErrStaleView)
		}
		return data, nil
	}
	size, err := v.store.backend.Stat(lu.u.path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("core: pack %s vanished under lazy view: %w (%v)", lu.u.path, ErrStaleView, err)
		}
		return nil, err
	}
	if size != lu.packSize {
		return nil, fmt.Errorf("core: pack %s is %d bytes, was %d at open: %w", lu.u.path, size, lu.packSize, ErrStaleView)
	}
	data, err := lu.u.fetch(v.store)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("core: pack %s vanished under lazy view: %w (%v)", lu.u.path, ErrStaleView, err)
		}
		return nil, err
	}
	return data, nil
}

// LazySource federates the view's per-unit snapshots behind the
// sparql.Source / sparql.ScanSource surface for one query: the admitted
// unit list is fixed at construction by the same statistics predicate
// MergePruned uses, so a lazy query touches exactly the units the eager
// pruned merge would decode.
//
// The morsel domain of a pattern is the concatenation of the admitted
// units' local domains, in unit order. Each domain item is owned by the
// first admitted unit containing its triple: later units suppress
// duplicates (an item whose triple an earlier unit also holds emits
// nothing), which makes the federation's emitted triple set exactly the
// eager merged graph's — graph union deduplicates — while every ScanRange
// partition of the domain remains exact and deterministic.
type LazySource struct {
	view         *LazyView
	units        []*lazyUnit
	packsSkipped int // packs dropped whole at their header stats

	decMu   sync.Mutex
	decoded map[*lazyUnit]bool // units this source decoded (ScanStats)
}

// Source returns a query source over the view admitting exactly the units
// whose statistics the pruner cannot rule out (nil admits everything) — the
// same two-stage predicate MergePruned applies: a pack whose header stats
// exclude every pattern drops all its members (stats-less ones included),
// then surviving units are filtered on their own stats.
func (v *LazyView) Source(pr *SegmentPruner) *LazySource {
	ls := &LazySource{view: v, decoded: make(map[*lazyUnit]bool)}
	prunedPacks := make(map[string]bool)
	for _, lu := range v.units {
		if lu.packStats != nil && !pr.wantStats(lu.packStats) {
			prunedPacks[lu.u.path] = true
			continue
		}
		if lu.u.stats != nil && !pr.wantStats(lu.u.stats) {
			continue
		}
		ls.units = append(ls.units, lu)
	}
	ls.packsSkipped = len(prunedPacks)
	return ls
}

// Err returns the view's sticky error (see LazyView.Err).
func (ls *LazySource) Err() error { return ls.view.Err() }

// Admitted reports how many of the view's units the pruner admitted into
// this source — the units a query can touch at all (tooling/plan output).
func (ls *LazySource) Admitted() int { return len(ls.units) }

// load decodes lu through the view's cache, tracking it for scan stats.
func (ls *LazySource) load(lu *lazyUnit) (*decodedUnit, error) {
	du, err := ls.view.loadUnit(lu)
	if err != nil {
		return nil, err
	}
	ls.decMu.Lock()
	ls.decoded[lu] = true
	ls.decMu.Unlock()
	return du, nil
}

// termPtr rehydrates a bound pattern ID for the stats matchers; NoID is nil
// (wildcard).
func (ls *LazySource) termPtr(id rdf.ID) *rdf.Term {
	if id == rdf.NoID {
		return nil
	}
	t := ls.view.dict.TermAt(id)
	return &t
}

// mapLocal translates a global pattern ID into lu's local space; a bound
// global the unit never interned matches nothing in it.
func mapLocal(du *decodedUnit, g rdf.ID) (rdf.ID, bool) {
	if g == rdf.NoID {
		return rdf.NoID, true
	}
	l, ok := du.toLocal[g]
	return l, ok
}

// unitScanLen returns lu's morsel-domain size for the pattern, memoized for
// the unit's lifetime. Units whose statistics rule the pattern out answer 0
// without decoding — the per-unit half of statistics pushdown.
func (ls *LazySource) unitScanLen(lu *lazyUnit, s, p, o rdf.ID) int {
	key := [3]rdf.ID{s, p, o}
	lu.mu.Lock()
	if n, ok := lu.scanLens[key]; ok {
		lu.mu.Unlock()
		return n
	}
	lu.mu.Unlock()

	n, err := ls.computeUnitScanLen(lu, s, p, o)
	if err != nil {
		ls.view.fail(err)
		return 0
	}
	lu.mu.Lock()
	if lu.scanLens == nil {
		lu.scanLens = make(map[[3]rdf.ID]int)
	}
	if prev, ok := lu.scanLens[key]; ok {
		n = prev // first memoized value wins: the domain must never move
	} else {
		lu.scanLens[key] = n
	}
	lu.mu.Unlock()
	return n
}

func (ls *LazySource) computeUnitScanLen(lu *lazyUnit, s, p, o rdf.ID) (int, error) {
	if lu.u.stats != nil && !lu.u.stats.CanMatch(ls.termPtr(s), ls.termPtr(p), ls.termPtr(o)) {
		return 0, nil
	}
	du, err := ls.load(lu)
	if err != nil {
		return 0, err
	}
	lsid, ok := mapLocal(du, s)
	if !ok {
		return 0, nil
	}
	lpid, ok := mapLocal(du, p)
	if !ok {
		return 0, nil
	}
	loid, ok := mapLocal(du, o)
	if !ok {
		return 0, nil
	}
	return du.snap.ScanLen(lsid, lpid, loid), nil
}

// ownedByEarlier reports whether an admitted unit before index k also holds
// the triple — in which case unit k's domain item is a duplicate and emits
// nothing. The check is deterministic (it depends only on the fixed unit
// list and their immutable contents), which keeps the ScanRange
// concatenation contract intact under any morsel partitioning.
func (ls *LazySource) ownedByEarlier(k int, gs, gp, go_ rdf.ID) bool {
	if k == 0 {
		return false
	}
	var ts, tp, to rdf.Term
	haveTerms := false
	for _, uj := range ls.units[:k] {
		if uj.u.stats != nil {
			if !haveTerms {
				ts = ls.view.dict.TermAt(gs)
				tp = ls.view.dict.TermAt(gp)
				to = ls.view.dict.TermAt(go_)
				haveTerms = true
			}
			if !uj.u.stats.CanMatch(&ts, &tp, &to) {
				continue
			}
		}
		du, err := ls.load(uj)
		if err != nil {
			ls.view.fail(err)
			return true // results are discarded once the view is failed
		}
		lsid, ok := du.toLocal[gs]
		if !ok {
			continue
		}
		lpid, ok := du.toLocal[gp]
		if !ok {
			continue
		}
		loid, ok := du.toLocal[go_]
		if !ok {
			continue
		}
		if du.snap.CountMatchIDs(lsid, lpid, loid) > 0 {
			return true
		}
	}
	return false
}

// ---- sparql.Source / sparql.ScanSource (structural) ----

// TermID interns t into the view's shared dictionary. Interning always
// succeeds: a term present in no unit simply maps into no unit's local
// space, so its patterns scan empty. (Reporting ok=false would require
// proving absence from every unit, which statistics cannot do for all term
// positions.)
func (ls *LazySource) TermID(t rdf.Term) (rdf.ID, bool) {
	return ls.view.dict.Intern(t), true
}

// TermOf rehydrates a global dictionary ID.
func (ls *LazySource) TermOf(id rdf.ID) rdf.Term { return ls.view.dict.TermAt(id) }

// ScanLen returns the federated morsel-domain size: the sum of the admitted
// units' local domains for the pattern.
func (ls *LazySource) ScanLen(s, p, o rdf.ID) int {
	n := 0
	for _, lu := range ls.units {
		n += ls.unitScanLen(lu, s, p, o)
	}
	return n
}

// ScanRange enumerates [lo, hi) of the federated domain: unit sub-ranges in
// unit order, local IDs translated to global on emit, duplicate items
// suppressed by ownership. Concatenating adjacent ranges reproduces the
// full scan exactly.
func (ls *LazySource) ScanRange(s, p, o rdf.ID, lo, hi int, fn func(s, p, o rdf.ID) bool) bool {
	if ls.view.Err() != nil {
		return true
	}
	pos := 0
	for k, lu := range ls.units {
		if pos >= hi {
			break
		}
		n := ls.unitScanLen(lu, s, p, o)
		if n == 0 {
			continue
		}
		ulo, uhi := lo-pos, hi-pos
		if ulo < 0 {
			ulo = 0
		}
		if uhi > n {
			uhi = n
		}
		if ulo < uhi {
			du, err := ls.load(lu)
			if err != nil {
				ls.view.fail(err)
				return true
			}
			lsid, okS := mapLocal(du, s)
			lpid, okP := mapLocal(du, p)
			loid, okO := mapLocal(du, o)
			if !okS || !okP || !okO {
				// The memoized domain said n > 0, so the pattern's constants
				// mapped at memo time; the dictionary is append-only, so they
				// still do. Defensive only.
				pos += n
				continue
			}
			unitIdx := k
			cont := du.snap.ScanRange(lsid, lpid, loid, ulo, uhi, func(a, b, c rdf.ID) bool {
				gs, gp, gob := du.toGlobal[a], du.toGlobal[b], du.toGlobal[c]
				if ls.ownedByEarlier(unitIdx, gs, gp, gob) {
					return true
				}
				return fn(gs, gp, gob)
			})
			if !cont {
				return false
			}
		}
		pos += n
	}
	return true
}

// ForEachMatchIDs streams every distinct matching triple of the federation
// in global ID space.
func (ls *LazySource) ForEachMatchIDs(s, p, o rdf.ID, fn func(s, p, o rdf.ID) bool) {
	ls.ScanRange(s, p, o, 0, ls.ScanLen(s, p, o), fn)
}

// CountMatchIDs is the planner's cardinality oracle. For a lazy source it
// is a decode-free estimate from unit statistics (duplicates across units
// over-count): planning must not page units in, and the plan's correctness
// never depends on estimate precision — only join order does. Execution
// (ScanLen/ScanRange/ForEachMatchIDs) stays exact.
func (ls *LazySource) CountMatchIDs(s, p, o rdf.ID) int {
	sp, pp, op := ls.termPtr(s), ls.termPtr(p), ls.termPtr(o)
	n := 0
	for _, lu := range ls.units {
		n += lu.estimateTriples(sp, pp, op)
	}
	return n
}

// estimateTriples is the unit's decode-free triple estimate for a pattern.
func (lu *lazyUnit) estimateTriples(s, p, o *rdf.Term) int {
	if lu.u.stats != nil {
		if !lu.u.stats.CanMatch(s, p, o) {
			return 0
		}
		return int(lu.u.stats.Triples)
	}
	return int(lu.u.size/32) + 1 // stats-less (legacy/text) unit: size heuristic
}

// PredStats estimates a predicate's cardinalities from unit statistics.
func (ls *LazySource) PredStats(p rdf.ID) (triples, subjects, objects int) {
	t := ls.CountMatchIDs(rdf.NoID, p, rdf.NoID)
	return t, t, t
}

// IndexStats estimates the federation's distinct term counts from unit
// statistics (planner divisors only).
func (ls *LazySource) IndexStats() (subjects, predicates, objects int) {
	n := 0
	for _, lu := range ls.units {
		if lu.u.stats != nil {
			n += int(lu.u.stats.Terms)
		} else {
			n += int(lu.u.size/32) + 1
		}
	}
	if n == 0 {
		n = 1
	}
	return n, n, n
}

// Len estimates the federation's triple count (planner input only).
func (ls *LazySource) Len() int {
	return ls.CountMatchIDs(rdf.NoID, rdf.NoID, rdf.NoID)
}

// Stats reports what this source's scans touched, in MergePruned's terms —
// Units counts every unit of the view, Decoded the ones this source paged
// in — with the view-wide cache counters folded in.
func (ls *LazySource) Stats() *ScanStats {
	st := ls.view.newScanStats()
	ls.decMu.Lock()
	for lu := range ls.decoded {
		st.Decoded++
		st.level(lu.u.level).Decoded++
	}
	ls.decMu.Unlock()
	st.PacksSkipped = ls.packsSkipped
	st.Skipped = st.Units - st.Decoded
	ls.view.foldCacheStats(st)
	return st
}

// newScanStats seeds a ScanStats with the view's open-time layout counts.
func (v *LazyView) newScanStats() *ScanStats {
	st := &ScanStats{Files: v.base.Files, Packs: v.base.Packs}
	for _, lu := range v.units {
		st.Units++
		st.level(lu.u.level).Units++
	}
	return st
}

// foldCacheStats copies the view's cache counters into st.
func (v *LazyView) foldCacheStats(st *ScanStats) {
	cs := v.cache.stats()
	st.CacheHits = cs.Hits
	st.CacheMisses = cs.Misses
	st.CacheEvictions = cs.Evictions
	st.CacheResidentBytes = cs.ResidentBytes
	st.CachePeakBytes = cs.PeakBytes
	st.CacheBudgetBytes = cs.BudgetBytes
}

// ---- whole-graph consumers over the cache ----

// hydrateUnits decodes units through the cache and unions their triples
// into dst with a worker pool (graph union deduplicates, so no ownership
// filtering is needed on this path).
func (v *LazyView) hydrateUnits(units []*lazyUnit, dst *rdf.Graph, workers int) error {
	hydrate := func(lu *lazyUnit) error {
		du, err := v.loadUnit(lu)
		if err != nil {
			return err
		}
		ts := make([]rdf.Triple, 0, du.snap.Len())
		du.snap.ScanRange(rdf.NoID, rdf.NoID, rdf.NoID, 0, du.snap.Len(), func(a, b, c rdf.ID) bool {
			ts = append(ts, rdf.Triple{S: du.snap.TermOf(a), P: du.snap.TermOf(b), O: du.snap.TermOf(c)})
			return true
		})
		dst.AddBatch(ts)
		return nil
	}
	if workers <= 1 || len(units) < 2 {
		for _, lu := range units {
			if err := hydrate(lu); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > len(units) {
		workers = len(units)
	}
	jobs := make(chan *lazyUnit)
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for lu := range jobs {
				errMu.Lock()
				failed := firstErr != nil
				errMu.Unlock()
				if failed {
					continue
				}
				if err := hydrate(lu); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	for _, lu := range units {
		jobs <- lu
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// MaterializeGraph unions every unit of the view into one graph through the
// cache — the lazy counterpart of Merge for consumers that need the whole
// graph (provio-stats). Peak decoded-cache residency stays within the
// budget; the returned graph itself is of course O(store).
func (v *LazyView) MaterializeGraph(workers int) (*rdf.Graph, *ScanStats, error) {
	st := v.newScanStats()
	g := rdf.NewGraph()
	if err := v.hydrateUnits(v.units, g, workers); err != nil {
		return nil, nil, err
	}
	st.Decoded = len(v.units)
	for _, lu := range v.units {
		st.level(lu.u.level).Decoded++
	}
	v.foldCacheStats(st)
	return g, st, nil
}

// ReduceLineagePruned is Store.ReduceLineagePruned through the view's
// cache: the same probe-to-fixpoint expansion (identical results), but
// every decode is cache-served and budget-bounded, and repeated lineage
// queries on one view reuse resident units.
func (v *LazyView) ReduceLineagePruned(roots []rdf.Term, maxHops, workers int) (*rdf.Graph, *ScanStats, error) {
	st := v.newScanStats()
	loaded := rdf.NewGraph()
	pending := append([]*lazyUnit(nil), v.units...)
	probes := append([]rdf.Term(nil), roots...)
	var reduced *rdf.Graph
	for {
		var take, rest []*lazyUnit
		for _, lu := range pending {
			want := lu.u.stats == nil
			if !want {
				for _, t := range probes {
					if lu.u.stats.CanContainNode(t) {
						want = true
						break
					}
				}
			}
			if want {
				take = append(take, lu)
			} else {
				rest = append(rest, lu)
			}
		}
		if len(take) == 0 && reduced != nil {
			break
		}
		pending = rest
		if len(take) > 0 {
			if err := v.hydrateUnits(take, loaded, workers); err != nil {
				return nil, nil, err
			}
			st.Decoded += len(take)
			for _, lu := range take {
				st.level(lu.u.level).Decoded++
			}
		}
		var kept []rdf.Term
		reduced, kept = reduceLineageKept(loaded, roots, maxHops)
		probes = kept
	}
	st.Skipped = st.Units - st.Decoded
	v.foldCacheStats(st)
	return reduced, st, nil
}

// LevelResidency is one level's slice of the view's sizing report: what the
// level holds on disk, how much of it has a known decoded footprint, and
// how much is resident in the cache right now. provio-stats renders it so
// users can pick a -cache-bytes budget from real decoded sizes.
type LevelResidency struct {
	Level         int   `json:"level"`
	Units         int   `json:"units"`
	ResidentUnits int   `json:"resident_units"`
	DiskBytes     int64 `json:"disk_bytes"`
	DecodedBytes  int64 `json:"decoded_bytes"` // sum over units decoded at least once
	ResidentBytes int64 `json:"resident_bytes"`
}

// LevelResidency reports the per-level disk/decoded/resident byte
// breakdown of the view.
func (v *LazyView) LevelResidency() []LevelResidency {
	byLevel := map[int]*LevelResidency{}
	at := func(l int) *LevelResidency {
		lr := byLevel[l]
		if lr == nil {
			lr = &LevelResidency{Level: l}
			byLevel[l] = lr
		}
		return lr
	}
	byKey := make(map[unitKey]*lazyUnit, len(v.units))
	for _, lu := range v.units {
		lr := at(lu.u.level)
		lr.Units++
		lr.DiskBytes += lu.u.size
		lu.mu.Lock()
		lr.DecodedBytes += lu.decBytes
		lu.mu.Unlock()
		byKey[lu.key] = lu
	}
	v.cache.forEachResident(func(k unitKey, bytes int64) {
		if lu := byKey[k]; lu != nil {
			lr := at(lu.u.level)
			lr.ResidentUnits++
			lr.ResidentBytes += bytes
		}
	})
	out := make([]LevelResidency, 0, len(byLevel))
	for _, lr := range byLevel {
		out = append(out, *lr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Level < out[j].Level })
	return out
}
