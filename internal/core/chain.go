package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"

	"github.com/hpc-io/prov-io/internal/rdf/segcodec"
)

// The store's integrity layer (DESIGN.md "Integrity & fault injection"):
// every file a process writes — canonical sub-graph rewrites and delta
// segments alike — is sealed into a per-process hash chain. Each seal
// records the SHA-256 of the file that preceded it in the process's write
// history, so provio-verify can detect truncation, reordering, splicing,
// and deletion without trusting names or timestamps.
//
// Binary (.pbs) files embed the seal as a trailing chain frame
// (segcodec.AppendChain) and are therefore sealed atomically with their
// payload. Text files cannot carry a binary footer, so their seal lives in
// a sidecar: <file>.sum, a small key/value document describing the exact
// bytes of its companion. The sidecar is written after its file; the gap
// between the two writes is why segment recovery treats a trailing
// sidecar-less segment as unacknowledged (see Store.Compact).

// chainSidecarExt is the extension appended to a text store file's name to
// form its integrity sidecar. It is not a codec extension, so sidecars are
// invisible to merging, listing, and TotalBytes.
const chainSidecarExt = ".sum"

const sidecarHeader = "provio-chain v1"

// sidecarInfo is one parsed .sum sidecar: the seal of a text store file.
type sidecarInfo struct {
	root   bool
	seq    uint64
	bytes  int64
	digest [32]byte // SHA-256 of the companion file's bytes
	prev   [32]byte // chain predecessor's digest
}

func (si sidecarInfo) chain() segcodec.Chain {
	return segcodec.Chain{Root: si.root, Seq: si.seq, Prev: si.prev}
}

// marshalSidecar renders the sidecar document for a file of n bytes. The
// final "check" line is a CRC32 of every line above it, so any single-byte
// damage to the sidecar itself — the prev digest included, which no other
// file cross-references — is locally detectable.
func marshalSidecar(c segcodec.Chain, n int64, digest [32]byte) []byte {
	kind := "segment"
	if c.Root {
		kind = "root"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", sidecarHeader)
	fmt.Fprintf(&b, "kind: %s\n", kind)
	fmt.Fprintf(&b, "seq: %d\n", c.Seq)
	fmt.Fprintf(&b, "bytes: %d\n", n)
	fmt.Fprintf(&b, "sha256: %s\n", hex.EncodeToString(digest[:]))
	fmt.Fprintf(&b, "prev: %s\n", hex.EncodeToString(c.Prev[:]))
	fmt.Fprintf(&b, "check: %08x\n", crc32.ChecksumIEEE([]byte(b.String())))
	return []byte(b.String())
}

// parseSidecar decodes a sidecar document, rejecting anything malformed —
// a torn or tampered sidecar must read as damage, never as a weaker seal.
func parseSidecar(data []byte) (sidecarInfo, error) {
	var si sidecarInfo
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 7 || lines[0] != sidecarHeader {
		return si, fmt.Errorf("not a %q document", sidecarHeader)
	}
	check, ok := strings.CutPrefix(lines[6], "check: ")
	if !ok || len(check) != 8 {
		return si, fmt.Errorf("malformed check line %q", lines[6])
	}
	sum, err := strconv.ParseUint(check, 16, 32)
	if err != nil {
		return si, fmt.Errorf("check line: %v", err)
	}
	body := strings.Join(lines[:6], "\n") + "\n"
	if crc32.ChecksumIEEE([]byte(body)) != uint32(sum) {
		return si, fmt.Errorf("sidecar checksum mismatch")
	}
	seen := map[string]bool{}
	for _, line := range lines[1 : len(lines)-1] {
		key, val, ok := strings.Cut(line, ": ")
		if !ok || seen[key] {
			return si, fmt.Errorf("malformed line %q", line)
		}
		seen[key] = true
		var err error
		switch key {
		case "kind":
			switch val {
			case "root":
				si.root = true
			case "segment":
				si.root = false
			default:
				err = fmt.Errorf("unknown kind %q", val)
			}
		case "seq":
			si.seq, err = strconv.ParseUint(val, 10, 64)
		case "bytes":
			si.bytes, err = strconv.ParseInt(val, 10, 64)
		case "sha256":
			err = parseDigest(val, &si.digest)
		case "prev":
			err = parseDigest(val, &si.prev)
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return si, fmt.Errorf("field %q: %v", key, err)
		}
	}
	if len(seen) != 5 {
		return si, fmt.Errorf("missing fields (%d of 5 present)", len(seen))
	}
	// The document must be byte-identical to its canonical rendering: hex
	// case variants and newline games re-parse to the same seal and would
	// otherwise slip past every field check.
	if !bytes.Equal(data, marshalSidecar(si.chain(), si.bytes, si.digest)) {
		return si, fmt.Errorf("sidecar is not in canonical form")
	}
	return si, nil
}

func parseDigest(s string, out *[32]byte) error {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return err
	}
	if len(raw) != len(out) {
		return fmt.Errorf("digest is %d bytes, want %d", len(raw), len(out))
	}
	copy(out[:], raw)
	return nil
}

// fileDigest is the chain digest of a store file's complete bytes.
func fileDigest(data []byte) [32]byte { return sha256.Sum256(data) }
