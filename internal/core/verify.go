package core

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/rdf/segcodec"
)

// This file is the store auditor behind provio-verify and the recovery
// decisions of Compact (DESIGN.md "Integrity & fault injection"). Verify
// audits a store end-to-end: every file decodes through its codec (frames,
// CRCs), every seal is consistent with its file's bytes, and every
// process's files form one continuous hash chain. Defects are classified:
//
//   - tampered:  content contradicts its seal or chain — bit flips, CRC
//     mismatches, reordered or spliced segments, chain-head mismatches.
//   - truncated: a file is a strict prefix of what its seal or framing
//     promises — the torn-write signature.
//   - missing:   the chain or the name sequence references a file that is
//     gone — deleted segments, a deleted canonical file.
//   - orphaned:  a file is present but nothing authenticates it — no seal
//     of its own and no successor or canonical seal confirms its digest.
//
// A store written before the integrity layer existed carries no seals at
// all; such fully-unsealed processes are reported clean (there is nothing
// to contradict) but count zero sealed files, so auditors can see the
// difference.

// DefectKind classifies one integrity defect.
type DefectKind uint8

// Defect kinds, ordered by severity (Worst reports the highest).
const (
	// DefectOrphaned: a present file nothing authenticates.
	DefectOrphaned DefectKind = iota + 1
	// DefectMissing: a referenced file is gone.
	DefectMissing
	// DefectTruncated: a file is a strict prefix of its sealed form.
	DefectTruncated
	// DefectTampered: content contradicts its seal or chain.
	DefectTampered
)

func (k DefectKind) String() string {
	switch k {
	case DefectTampered:
		return "tampered"
	case DefectTruncated:
		return "truncated"
	case DefectMissing:
		return "missing"
	case DefectOrphaned:
		return "orphaned"
	}
	return fmt.Sprintf("defect(%d)", uint8(k))
}

// Defect is one verification finding.
type Defect struct {
	PID    int
	Name   string // file name inside the store directory; "" for process-level findings
	Kind   DefectKind
	Detail string
}

func (d Defect) String() string {
	name := d.Name
	if name == "" {
		name = fmt.Sprintf("p%06d", d.PID)
	}
	return fmt.Sprintf("[%s] %s: %s", d.Kind, name, d.Detail)
}

// VerifyReport is the result of auditing a store.
type VerifyReport struct {
	Dir       string
	Processes int
	Files     int // provenance files examined (sidecars not counted; pack members counted individually)
	Sealed    int // files carrying a valid chain seal
	Segments  int // delta segment files among Files
	Packs     int // pack containers examined (their members audited like loose files)
	// Unsealed lists intact files carrying no seal. Tolerated by default —
	// they are what pre-integrity stores look like — but provio-verify
	// -strict turns them into orphaned defects, closing the one local gap
	// tolerance leaves: a binary file truncated exactly at a frame boundary
	// before its seal is indistinguishable from a legacy file.
	Unsealed []string
	Defects  []Defect
	// Heads maps each process to its chain head: the SHA-256 of the newest
	// authenticated file of its history. Recording heads after a run and
	// re-verifying with VerifyAgainst closes the one gap local verification
	// cannot: deletion of an entire chain suffix (or chain).
	Heads map[int][32]byte
}

// Clean reports whether the audit found no defects.
func (r *VerifyReport) Clean() bool { return len(r.Defects) == 0 }

// Worst returns the most severe defect kind found (0 when clean).
func (r *VerifyReport) Worst() DefectKind {
	var w DefectKind
	for _, d := range r.Defects {
		if d.Kind > w {
			w = d.Kind
		}
	}
	return w
}

// FormatHeads renders the chain heads as a stable text document
// ("p%06d <hex>\n" per process), the anchor file provio-verify -write-heads
// emits and -heads consumes.
func (r *VerifyReport) FormatHeads() []byte {
	pids := make([]int, 0, len(r.Heads))
	for pid := range r.Heads {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	var b strings.Builder
	for _, pid := range pids {
		h := r.Heads[pid]
		fmt.Fprintf(&b, "p%06d %s\n", pid, hex.EncodeToString(h[:]))
	}
	return []byte(b.String())
}

// ParseHeads parses a FormatHeads document.
func ParseHeads(data []byte) (map[int][32]byte, error) {
	heads := make(map[int][32]byte)
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var pid int
		var hx string
		if _, err := fmt.Sscanf(line, "p%06d %s", &pid, &hx); err != nil {
			return nil, fmt.Errorf("heads line %d: %q", ln+1, line)
		}
		var h [32]byte
		if err := parseDigest(hx, &h); err != nil {
			return nil, fmt.Errorf("heads line %d: %v", ln+1, err)
		}
		heads[pid] = h
	}
	return heads, nil
}

// IntegrityError is returned by Compact when a store's damage is not
// attributable to an interrupted write of unacknowledged data — recovery
// refuses to guess, and the defects say what a human (or provio-verify) is
// looking at.
type IntegrityError struct{ Defects []Defect }

func (e *IntegrityError) Error() string {
	if len(e.Defects) == 1 {
		return fmt.Sprintf("core: store integrity: %s", e.Defects[0])
	}
	return fmt.Sprintf("core: store integrity: %s (and %d more defects)",
		e.Defects[0], len(e.Defects)-1)
}

// Verify audits the store and returns the report. The returned error covers
// operational failures only (unlistable directory, unreadable files);
// integrity findings land in the report's Defects.
func (s *Store) Verify() (*VerifyReport, error) {
	a, err := s.audit(false)
	if err != nil {
		return nil, err
	}
	return a.report(s.dir), nil
}

// VerifyAgainst is Verify anchored to externally recorded chain heads: on
// top of the local audit, every recorded process must still be present with
// exactly the recorded head, and no unrecorded process may have appeared —
// which is what catches deletion of a chain's newest files (locally
// indistinguishable from "the process never wrote them") and whole-chain
// forgery.
func (s *Store) VerifyAgainst(heads map[int][32]byte) (*VerifyReport, error) {
	rep, err := s.Verify()
	if err != nil {
		return nil, err
	}
	for pid, want := range heads {
		got, ok := rep.Heads[pid]
		if !ok {
			rep.Defects = append(rep.Defects, Defect{PID: pid, Kind: DefectMissing,
				Detail: "process chain recorded in heads is gone from the store"})
			continue
		}
		if got != want {
			rep.Defects = append(rep.Defects, Defect{PID: pid, Kind: DefectTampered,
				Detail: fmt.Sprintf("chain head %x does not match recorded head %x (suffix deleted or rewritten)", got[:4], want[:4])})
		}
	}
	for pid := range rep.Heads {
		if _, ok := heads[pid]; !ok {
			rep.Defects = append(rep.Defects, Defect{PID: pid, Kind: DefectTampered,
				Detail: "process is not in the recorded heads (spliced-in chain)"})
		}
	}
	sortDefects(rep.Defects)
	return rep, nil
}

// ---- audit engine ----

// auditFile is one examined store file.
type auditFile struct {
	name    string
	seg     int // segment number, -1 for a canonical file
	data    []byte
	digest  [32]byte
	meta    *segcodec.Chain // seal (embedded frame or sidecar), nil if unsealed
	sumName string          // sidecar name, "" if none
	graph   *rdf.Graph      // decoded content when audit(keepGraphs) and intact
	bad     bool            // at least one defect charged to this file
	packed  string          // pack file the bytes live in; "" for a loose file
}

// pidAudit is the audit state of one process.
type pidAudit struct {
	pid        int
	canonicals []*auditFile // canonical files (several only mid-migration)
	segs       []*auditFile // sorted by segment number
	staleSums  []string     // leftover sidecars recovery may GC
	defects    []Defect
	head       [32]byte
	// drop lists file names removable as an unacknowledged torn tail: set
	// only when every defect of the pid is confined to the newest segment.
	drop []string
}

func (pa *pidAudit) addDefect(kind DefectKind, name, format string, args ...any) {
	pa.defects = append(pa.defects, Defect{
		PID: pa.pid, Name: name, Kind: kind, Detail: fmt.Sprintf(format, args...),
	})
}

type storeAudit struct {
	pids                    map[int]*pidAudit
	files, sealed, segments int
	packs                   int
	packFiles               []string // pack names Compact deletes after folding
	// packDefects are structural findings against pack containers themselves
	// (unreadable header, foreign member names, conflicting duplicates) —
	// kept apart from per-pid defects so they never perturb chain heads.
	packDefects []Defect
}

func (a *storeAudit) addPackDefect(kind DefectKind, name, format string, args ...any) {
	a.packDefects = append(a.packDefects, Defect{
		Name: name, Kind: kind, Detail: fmt.Sprintf(format, args...),
	})
}

// parseStoreName splits a store file name into its parts. ok is false for
// names that are not provenance files (merged output, OS temp files, ...).
func parseStoreName(name string) (pid, seg int, isSum, ok bool) {
	base := name
	if strings.HasSuffix(base, chainSidecarExt) {
		isSum = true
		base = strings.TrimSuffix(base, chainSidecarExt)
	}
	ext := filepath.Ext(base)
	if _, codecOK := segcodec.ByExt(ext); !codecOK {
		return 0, 0, false, false
	}
	stem := strings.TrimSuffix(base, ext)
	if _, err := fmt.Sscanf(stem, "prov_p%06d.seg%04d", &pid, &seg); err == nil &&
		stem == fmt.Sprintf("prov_p%06d.seg%04d", pid, seg) {
		return pid, seg, isSum, true
	}
	if _, err := fmt.Sscanf(stem, "prov_p%06d", &pid); err == nil &&
		stem == fmt.Sprintf("prov_p%06d", pid) {
		return pid, -1, isSum, true
	}
	return 0, 0, false, false
}

// audit reads and checks every provenance file in the store. keepGraphs
// retains each intact file's decoded triples for Compact's fold step.
func (s *Store) audit(keepGraphs bool) (*storeAudit, error) {
	names, err := s.backend.List(s.dir)
	if err != nil {
		return nil, err
	}
	a := &storeAudit{pids: make(map[int]*pidAudit)}
	sums := make(map[string][]byte)
	sumFrom := make(map[string]string)
	type entry struct {
		name     string
		pid, seg int
		data     []byte
		packed   string // pack file the bytes came from; "" for loose
	}
	var entries []entry
	addSum := func(n string, data []byte, src string) {
		if prev, ok := sums[n]; ok {
			if !bytes.Equal(prev, data) {
				a.addPackDefect(DefectTampered, n,
					"sidecar copies differ between %s and %s", sumFrom[n], src)
			}
			return
		}
		sums[n] = data
		sumFrom[n] = src
	}
	for _, n := range names {
		if _, _, isPack := parsePackName(n); isPack {
			// A pack container: structural checks here, then its members join
			// the audit exactly as if they were loose files — packing must be
			// invisible to chain analysis.
			data, err := s.backend.ReadFile(filepath.ToSlash(filepath.Join(s.dir, n)))
			if err != nil {
				return nil, fmt.Errorf("core: reading %s: %w", n, err)
			}
			a.packs++
			a.packFiles = append(a.packFiles, n)
			h, herr := segcodec.DecodePackHeader(data)
			if herr == nil && int64(len(data)) != h.WantSize {
				werr := segcodec.ErrCorrupt
				if int64(len(data)) < h.WantSize {
					werr = segcodec.ErrTruncated
				}
				herr = fmt.Errorf("pack is %d bytes, header implies %d: %w", len(data), h.WantSize, werr)
			}
			if herr != nil {
				kind := DefectTampered
				if errors.Is(herr, segcodec.ErrTruncated) {
					kind = DefectTruncated
				}
				a.addPackDefect(kind, n, "%v", herr)
				continue
			}
			for _, m := range h.Members {
				mdata := data[m.Off : m.Off+m.Size]
				pid, seg, isSum, ok := parseStoreName(m.Name)
				if !ok {
					a.addPackDefect(DefectOrphaned, n, "pack member %s is not a store file name", m.Name)
					continue
				}
				if isSum {
					addSum(m.Name, mdata, n)
					continue
				}
				entries = append(entries, entry{m.Name, pid, seg, mdata, n})
			}
			continue
		}
		pid, seg, isSum, ok := parseStoreName(n)
		if !ok {
			continue
		}
		data, err := s.backend.ReadFile(filepath.ToSlash(filepath.Join(s.dir, n)))
		if err != nil {
			return nil, fmt.Errorf("core: reading %s: %w", n, err)
		}
		if isSum {
			addSum(n, data, "the store directory")
			continue
		}
		entries = append(entries, entry{n, pid, seg, data, ""})
	}
	// Same-name copies (a crash between a pack write and source removal
	// duplicates members as loose files) audit as one file when byte-identical
	// — preferring the loose copy, which recovery can remove — and as damage
	// when they conflict.
	byName := make(map[string]int, len(entries))
	deduped := entries[:0:0]
	for _, e := range entries {
		i, seen := byName[e.name]
		if !seen {
			byName[e.name] = len(deduped)
			deduped = append(deduped, e)
			continue
		}
		if !bytes.Equal(deduped[i].data, e.data) {
			a.addPackDefect(DefectTampered, e.name, "copies differ between %s and %s",
				packSrc(deduped[i].packed), packSrc(e.packed))
			continue
		}
		if deduped[i].packed != "" && e.packed == "" {
			deduped[i] = e
		}
	}
	entries = deduped
	pidOf := func(pid int) *pidAudit {
		pa := a.pids[pid]
		if pa == nil {
			pa = &pidAudit{pid: pid}
			a.pids[pid] = pa
		}
		return pa
	}
	for _, e := range entries {
		pa := pidOf(e.pid)
		f, err := s.auditOne(pa, e.name, e.seg, e.data, sums, keepGraphs)
		if err != nil {
			return nil, err
		}
		f.packed = e.packed
		a.files++
		if f.meta != nil {
			a.sealed++
		}
		if e.seg >= 0 {
			a.segments++
			pa.segs = append(pa.segs, f)
		} else {
			pa.canonicals = append(pa.canonicals, f)
		}
	}
	// Route sidecars whose companion file is gone.
	for sumName := range sums {
		pid, seg, _, _ := parseStoreName(sumName)
		fileName := strings.TrimSuffix(sumName, chainSidecarExt)
		claimed := false
		pa := a.pids[pid]
		if pa != nil {
			for _, f := range append(append([]*auditFile{}, pa.canonicals...), pa.segs...) {
				if f.name == fileName {
					claimed = true
					break
				}
			}
		}
		if claimed {
			continue
		}
		pa = pidOf(pid)
		// A segment sidecar below every present segment (or with none left),
		// next to a canonical file, is the residue of a crash inside segment
		// removal — the segment goes before its sidecar, so the sidecar can
		// outlive it. It references superseded history: GC material, not
		// evidence of loss.
		minSeg := -1
		for _, sf := range pa.segs {
			if minSeg == -1 || sf.seg < minSeg {
				minSeg = sf.seg
			}
		}
		stale := len(pa.canonicals) > 0 && seg >= 0 && (minSeg == -1 || seg < minSeg)
		if stale {
			pa.staleSums = append(pa.staleSums, sumName)
		} else {
			pa.addDefect(DefectMissing, fileName,
				"file is gone but its integrity sidecar %s remains", sumName)
		}
	}
	for _, pa := range a.pids {
		sort.Slice(pa.segs, func(i, j int) bool { return pa.segs[i].seg < pa.segs[j].seg })
		sort.Slice(pa.canonicals, func(i, j int) bool { return pa.canonicals[i].name < pa.canonicals[j].name })
		s.auditChain(pa)
		sortDefects(pa.defects)
	}
	return a, nil
}

// packSrc names where a duplicated file copy lives, for defect messages.
func packSrc(pack string) string {
	if pack == "" {
		return "the store directory"
	}
	return pack
}

// auditOne integrity-checks a single store file (loose or a pack member —
// the caller supplies the bytes either way).
func (s *Store) auditOne(pa *pidAudit, name string, seg int, data []byte, sums map[string][]byte, keepGraph bool) (*auditFile, error) {
	f := &auditFile{name: name, seg: seg, data: data, digest: fileDigest(data)}
	codec, _ := segcodec.ByExt(filepath.Ext(name))
	binary := len(codec.Magic()) > 0

	flag := func(kind DefectKind, fname, format string, args ...any) {
		f.bad = true
		pa.addDefect(kind, fname, format, args...)
	}

	if binary {
		if sumName := name + chainSidecarExt; sums[sumName] != nil {
			// Binary files are sealed in-band; a sidecar next to one was
			// planted (writes never produce it).
			flag(DefectOrphaned, sumName, "unexpected sidecar next to a binary file")
		}
		g := rdf.NewGraph()
		if err := codec.Decode(bytes.NewReader(data), g); err != nil {
			kind := DefectTampered
			if errors.Is(err, segcodec.ErrTruncated) {
				kind = DefectTruncated
			}
			flag(kind, name, "decode: %v", err)
		} else {
			if ch, ok := segcodec.ChainOf(data); ok {
				f.meta = &ch
			}
			if keepGraph {
				f.graph = g
			}
		}
	} else {
		if sumData, ok := sums[name+chainSidecarExt]; ok {
			f.sumName = name + chainSidecarExt
			si, err := parseSidecar(sumData)
			switch {
			case err != nil:
				flag(DefectTampered, f.sumName, "sidecar: %v", err)
			case int64(len(data)) < si.bytes:
				flag(DefectTruncated, name, "file is %d bytes, sealed length is %d", len(data), si.bytes)
			case int64(len(data)) > si.bytes:
				flag(DefectTampered, name, "file is %d bytes, sealed length is %d", len(data), si.bytes)
			case f.digest != si.digest:
				flag(DefectTampered, name, "content does not match its sealed sha256")
			default:
				ch := si.chain()
				f.meta = &ch
			}
		}
		g := rdf.NewGraph()
		if err := segcodec.Detect(data).Decode(bytes.NewReader(data), g); err != nil {
			if !f.bad {
				flag(DefectTampered, name, "parse: %v", err)
			}
		} else if keepGraph {
			f.graph = g
		}
	}

	// Seal sanity: a segment's seal must name its own position, a canonical
	// file's seal must be a root.
	if f.meta != nil {
		switch {
		case seg >= 0 && f.meta.Root:
			flag(DefectTampered, name, "segment is sealed as a chain root")
		case seg >= 0 && f.meta.Seq != uint64(seg):
			flag(DefectTampered, name, "seal names segment %d, file name says %d (reordered or spliced)", f.meta.Seq, seg)
		case seg < 0 && !f.meta.Root:
			flag(DefectTampered, name, "canonical file is sealed as a delta segment")
		}
	}
	return f, nil
}

// auditChain checks the per-process chain: segment-name contiguity, link
// continuity, run authentication, and computes the process head. It runs
// only when every per-file check passed — per-file defects already flag the
// pid, and a damaged file's seal cannot be trusted as chain evidence.
func (s *Store) auditChain(pa *pidAudit) {
	// Segment numbers must be contiguous among the present files (removal
	// only ever deletes a prefix of the live history).
	for i := 1; i < len(pa.segs); i++ {
		if pa.segs[i].seg != pa.segs[i-1].seg+1 {
			pa.addDefect(DefectMissing, "",
				"segments %d..%d are gone (present: ...%04d, %04d...)",
				pa.segs[i-1].seg+1, pa.segs[i].seg-1, pa.segs[i-1].seg, pa.segs[i].seg)
		}
	}

	fileDefects := len(pa.defects) > 0

	// Default head: newest file by write order (segments after canonical).
	if n := len(pa.segs); n > 0 {
		pa.head = pa.segs[n-1].digest
	} else if len(pa.canonicals) > 0 {
		pa.head = pa.canonicals[len(pa.canonicals)-1].digest
	}

	sealedAny := false
	for _, f := range append(append([]*auditFile{}, pa.canonicals...), pa.segs...) {
		if f.meta != nil {
			sealedAny = true
		}
	}
	if !sealedAny || fileDefects {
		if fileDefects {
			pa.markDroppableTail()
		}
		return // fully-unsealed legacy store, or chain evidence untrustworthy
	}

	// Anchors: digests of the present canonical files; cPrevs: the heads
	// their root seals superseded (what authenticates stale segment runs).
	// A canonical file without a seal is tolerated — it is what a process
	// upgraded from a pre-integrity store chains from — but it vouches for
	// nothing.
	anchors := make(map[[32]byte]bool)
	cPrevs := make(map[[32]byte]bool)
	for _, c := range pa.canonicals {
		anchors[c.digest] = true
		if c.meta != nil {
			cPrevs[c.meta.Prev] = true
		}
	}

	// Link classification per segment position.
	const (
		lLinked = iota // prev == digest of the previous present segment
		lAnchor        // prev == a canonical file's digest (run start)
		lZero          // prev == zero at segment 0 (history start)
		lFloat         // sealed, but prev matches nothing present
		lNone          // unsealed
	)
	link := make([]int, len(pa.segs))
	for i, f := range pa.segs {
		switch {
		case f.meta == nil:
			link[i] = lNone
		case i > 0 && f.meta.Prev == pa.segs[i-1].digest:
			link[i] = lLinked
		case anchors[f.meta.Prev]:
			link[i] = lAnchor
		case f.meta.PrevIsZero() && f.seg == 0:
			link[i] = lZero
		default:
			link[i] = lFloat
		}
	}

	// Split into runs at positions that are not simple continuations.
	var runs [][2]int // [start, end) index ranges
	start := 0
	for i := 1; i < len(pa.segs); i++ {
		if link[i] != lLinked && link[i] != lNone {
			runs = append(runs, [2]int{start, i})
			start = i
		}
	}
	if len(pa.segs) > 0 {
		runs = append(runs, [2]int{start, len(pa.segs)})
	}

	// Validate runs: at most one run may be live (anchored at a canonical
	// digest, or starting from zero when it IS the history); every earlier
	// run must be a stale remnant a canonical's root seal authenticates.
	liveRun := -1
	for ri, r := range runs {
		head := link[r[0]]
		isLast := ri == len(runs)-1
		if head == lAnchor || (head == lZero && len(pa.canonicals) == 0) {
			// The live run: the history currently being written. Trailing
			// unsealed members are checked by the orphan pass below.
			if !isLast {
				pa.addDefect(DefectTampered, pa.segs[runs[ri+1][0]].name,
					"chain restarts after the live segment run (spliced or replayed history)")
			}
			if liveRun >= 0 {
				pa.addDefect(DefectTampered, pa.segs[r[0]].name,
					"second live segment run (duplicated chain)")
			}
			liveRun = ri
			continue
		}
		if head == lNone {
			// The run starts with an unsealed segment: a sidecar write that
			// failed transiently while the run carried on, or a crash inside
			// segment removal (which deletes sidecars first). Either way its
			// sealed members still link and its unsealed ones answer to the
			// orphan pass below, so the run is tolerated like a legacy store;
			// -strict surfaces the missing seals.
			continue
		}
		if head == lFloat && r[0] > 0 {
			pa.addDefect(DefectTampered, pa.segs[r[0]].name,
				"chain broken: seal's predecessor digest matches neither the previous segment nor a canonical file")
			continue
		}
		// Everything else is a stale remnant claim: a run a crash stranded
		// between a canonical rewrite and segment removal. Its newest sealed
		// member must be the head some canonical root seal superseded.
		// Trailing unsealed members (a torn tail on top of the remnant) are
		// left to the orphan pass.
		last := r[1] - 1
		for last >= r[0] && link[last] == lNone {
			last--
		}
		if last < r[0] {
			continue // fully unsealed run: the orphan pass owns it
		}
		if len(pa.canonicals) == 0 {
			pa.addDefect(DefectMissing, "",
				"segments reference history that is gone (no canonical file; run head %s)", pa.segs[r[0]].name)
		} else if !cPrevs[pa.segs[last].digest] {
			pa.addDefect(DefectTampered, pa.segs[r[0]].name,
				"segment run is not authenticated by any canonical root seal")
		}
	}

	// Unsealed segments must be confirmed by a successor's seal or by a
	// canonical root seal; the one at the very tail has no successor — it is
	// the torn-tail signature, orphaned and droppable.
	for i, f := range pa.segs {
		if link[i] != lNone {
			continue
		}
		confirmed := (i+1 < len(pa.segs) && link[i+1] == lLinked) || cPrevs[f.digest]
		if !confirmed {
			pa.addDefect(DefectOrphaned, f.name,
				"segment has no seal and no successor or root seal confirms it")
		}
	}

	// The process head: the tail of the live run; with no live segments, the
	// newest canonical file.
	if liveRun >= 0 {
		pa.head = pa.segs[runs[liveRun][1]-1].digest
	} else if len(pa.canonicals) > 0 {
		pa.head = pa.canonicals[len(pa.canonicals)-1].digest
	}
	pa.markDroppableTail()
}

// markDroppableTail decides whether every defect of the pid is confined to
// the newest segment file (or its sidecar) — the only damage an interrupted
// write of unacknowledged data can leave — and if so records the files
// recovery may drop.
func (pa *pidAudit) markDroppableTail() {
	if len(pa.defects) == 0 || len(pa.segs) == 0 {
		return
	}
	tail := pa.segs[len(pa.segs)-1]
	if tail.packed != "" {
		return // a packed member is not individually removable
	}
	tailNames := map[string]bool{tail.name: true, tail.name + chainSidecarExt: true}
	for _, d := range pa.defects {
		if d.Kind == DefectMissing || !tailNames[d.Name] {
			return
		}
	}
	pa.drop = []string{tail.name}
	if tail.sumName != "" {
		pa.drop = append(pa.drop, tail.sumName)
	}
}

func sortDefects(ds []Defect) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].PID != ds[j].PID {
			return ds[i].PID < ds[j].PID
		}
		if ds[i].Name != ds[j].Name {
			return ds[i].Name < ds[j].Name
		}
		return ds[i].Detail < ds[j].Detail
	})
}

// report packages an audit into the public VerifyReport.
func (a *storeAudit) report(dir string) *VerifyReport {
	rep := &VerifyReport{
		Dir: dir, Processes: len(a.pids),
		Files: a.files, Sealed: a.sealed, Segments: a.segments, Packs: a.packs,
		Heads: make(map[int][32]byte, len(a.pids)),
	}
	rep.Defects = append(rep.Defects, a.packDefects...)
	for pid, pa := range a.pids {
		rep.Defects = append(rep.Defects, pa.defects...)
		rep.Heads[pid] = pa.head
		for _, f := range append(append([]*auditFile{}, pa.canonicals...), pa.segs...) {
			if f.meta == nil && !f.bad {
				rep.Unsealed = append(rep.Unsealed, f.name)
			}
		}
	}
	sort.Strings(rep.Unsealed)
	sortDefects(rep.Defects)
	return rep
}
